# Empty dependencies file for bench_run_ratios.
# This may be replaced when dependencies are built.
