file(REMOVE_RECURSE
  "CMakeFiles/bench_run_ratios.dir/bench_run_ratios.cc.o"
  "CMakeFiles/bench_run_ratios.dir/bench_run_ratios.cc.o.d"
  "bench_run_ratios"
  "bench_run_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_run_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
