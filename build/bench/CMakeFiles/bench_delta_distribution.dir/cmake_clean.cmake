file(REMOVE_RECURSE
  "CMakeFiles/bench_delta_distribution.dir/bench_delta_distribution.cc.o"
  "CMakeFiles/bench_delta_distribution.dir/bench_delta_distribution.cc.o.d"
  "bench_delta_distribution"
  "bench_delta_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delta_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
