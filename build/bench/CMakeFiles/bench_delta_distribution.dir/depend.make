# Empty dependencies file for bench_delta_distribution.
# This may be replaced when dependencies are built.
