file(REMOVE_RECURSE
  "CMakeFiles/bench_single_study.dir/bench_single_study.cc.o"
  "CMakeFiles/bench_single_study.dir/bench_single_study.cc.o.d"
  "bench_single_study"
  "bench_single_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_single_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
