# Empty compiler generated dependencies file for bench_single_study.
# This may be replaced when dependencies are built.
