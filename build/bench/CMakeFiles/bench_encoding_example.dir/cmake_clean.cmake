file(REMOVE_RECURSE
  "CMakeFiles/bench_encoding_example.dir/bench_encoding_example.cc.o"
  "CMakeFiles/bench_encoding_example.dir/bench_encoding_example.cc.o.d"
  "bench_encoding_example"
  "bench_encoding_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encoding_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
