# Empty compiler generated dependencies file for bench_encoding_example.
# This may be replaced when dependencies are built.
