file(REMOVE_RECURSE
  "CMakeFiles/bench_codes.dir/bench_codes.cc.o"
  "CMakeFiles/bench_codes.dir/bench_codes.cc.o.d"
  "bench_codes"
  "bench_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
