# Empty dependencies file for bench_codes.
# This may be replaced when dependencies are built.
