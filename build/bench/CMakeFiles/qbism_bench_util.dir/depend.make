# Empty dependencies file for qbism_bench_util.
# This may be replaced when dependencies are built.
