file(REMOVE_RECURSE
  "libqbism_bench_util.a"
)
