file(REMOVE_RECURSE
  "CMakeFiles/qbism_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/qbism_bench_util.dir/bench_util.cc.o.d"
  "libqbism_bench_util.a"
  "libqbism_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbism_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
