file(REMOVE_RECURSE
  "CMakeFiles/bench_study_scaling.dir/bench_study_scaling.cc.o"
  "CMakeFiles/bench_study_scaling.dir/bench_study_scaling.cc.o.d"
  "bench_study_scaling"
  "bench_study_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_study_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
