# Empty dependencies file for bench_study_scaling.
# This may be replaced when dependencies are built.
