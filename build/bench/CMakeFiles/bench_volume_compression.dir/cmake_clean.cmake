file(REMOVE_RECURSE
  "CMakeFiles/bench_volume_compression.dir/bench_volume_compression.cc.o"
  "CMakeFiles/bench_volume_compression.dir/bench_volume_compression.cc.o.d"
  "bench_volume_compression"
  "bench_volume_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_volume_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
