file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_study.dir/bench_multi_study.cc.o"
  "CMakeFiles/bench_multi_study.dir/bench_multi_study.cc.o.d"
  "bench_multi_study"
  "bench_multi_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
