# Empty dependencies file for bench_multi_study.
# This may be replaced when dependencies are built.
