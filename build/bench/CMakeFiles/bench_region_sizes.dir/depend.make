# Empty dependencies file for bench_region_sizes.
# This may be replaced when dependencies are built.
