file(REMOVE_RECURSE
  "CMakeFiles/bench_region_sizes.dir/bench_region_sizes.cc.o"
  "CMakeFiles/bench_region_sizes.dir/bench_region_sizes.cc.o.d"
  "bench_region_sizes"
  "bench_region_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_region_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
