# Empty compiler generated dependencies file for bench_volume_order.
# This may be replaced when dependencies are built.
