file(REMOVE_RECURSE
  "CMakeFiles/bench_volume_order.dir/bench_volume_order.cc.o"
  "CMakeFiles/bench_volume_order.dir/bench_volume_order.cc.o.d"
  "bench_volume_order"
  "bench_volume_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_volume_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
