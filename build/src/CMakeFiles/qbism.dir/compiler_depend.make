# Empty compiler generated dependencies file for qbism.
# This may be replaced when dependencies are built.
