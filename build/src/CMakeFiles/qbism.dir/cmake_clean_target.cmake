file(REMOVE_RECURSE
  "libqbism.a"
)
