
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bitstream.cc" "src/CMakeFiles/qbism.dir/common/bitstream.cc.o" "gcc" "src/CMakeFiles/qbism.dir/common/bitstream.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/qbism.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/qbism.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/qbism.dir/common/status.cc.o" "gcc" "src/CMakeFiles/qbism.dir/common/status.cc.o.d"
  "/root/repo/src/compress/codes.cc" "src/CMakeFiles/qbism.dir/compress/codes.cc.o" "gcc" "src/CMakeFiles/qbism.dir/compress/codes.cc.o.d"
  "/root/repo/src/curve/curve.cc" "src/CMakeFiles/qbism.dir/curve/curve.cc.o" "gcc" "src/CMakeFiles/qbism.dir/curve/curve.cc.o.d"
  "/root/repo/src/geometry/affine.cc" "src/CMakeFiles/qbism.dir/geometry/affine.cc.o" "gcc" "src/CMakeFiles/qbism.dir/geometry/affine.cc.o.d"
  "/root/repo/src/geometry/shapes.cc" "src/CMakeFiles/qbism.dir/geometry/shapes.cc.o" "gcc" "src/CMakeFiles/qbism.dir/geometry/shapes.cc.o.d"
  "/root/repo/src/med/loader.cc" "src/CMakeFiles/qbism.dir/med/loader.cc.o" "gcc" "src/CMakeFiles/qbism.dir/med/loader.cc.o.d"
  "/root/repo/src/med/phantom.cc" "src/CMakeFiles/qbism.dir/med/phantom.cc.o" "gcc" "src/CMakeFiles/qbism.dir/med/phantom.cc.o.d"
  "/root/repo/src/med/schema.cc" "src/CMakeFiles/qbism.dir/med/schema.cc.o" "gcc" "src/CMakeFiles/qbism.dir/med/schema.cc.o.d"
  "/root/repo/src/mining/apriori.cc" "src/CMakeFiles/qbism.dir/mining/apriori.cc.o" "gcc" "src/CMakeFiles/qbism.dir/mining/apriori.cc.o.d"
  "/root/repo/src/mining/knn.cc" "src/CMakeFiles/qbism.dir/mining/knn.cc.o" "gcc" "src/CMakeFiles/qbism.dir/mining/knn.cc.o.d"
  "/root/repo/src/net/channel.cc" "src/CMakeFiles/qbism.dir/net/channel.cc.o" "gcc" "src/CMakeFiles/qbism.dir/net/channel.cc.o.d"
  "/root/repo/src/qbism/medical_server.cc" "src/CMakeFiles/qbism.dir/qbism/medical_server.cc.o" "gcc" "src/CMakeFiles/qbism.dir/qbism/medical_server.cc.o.d"
  "/root/repo/src/qbism/spatial_extension.cc" "src/CMakeFiles/qbism.dir/qbism/spatial_extension.cc.o" "gcc" "src/CMakeFiles/qbism.dir/qbism/spatial_extension.cc.o.d"
  "/root/repo/src/region/encoding.cc" "src/CMakeFiles/qbism.dir/region/encoding.cc.o" "gcc" "src/CMakeFiles/qbism.dir/region/encoding.cc.o.d"
  "/root/repo/src/region/region.cc" "src/CMakeFiles/qbism.dir/region/region.cc.o" "gcc" "src/CMakeFiles/qbism.dir/region/region.cc.o.d"
  "/root/repo/src/region/stats.cc" "src/CMakeFiles/qbism.dir/region/stats.cc.o" "gcc" "src/CMakeFiles/qbism.dir/region/stats.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/qbism.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/qbism.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/catalog.cc" "src/CMakeFiles/qbism.dir/sql/catalog.cc.o" "gcc" "src/CMakeFiles/qbism.dir/sql/catalog.cc.o.d"
  "/root/repo/src/sql/database.cc" "src/CMakeFiles/qbism.dir/sql/database.cc.o" "gcc" "src/CMakeFiles/qbism.dir/sql/database.cc.o.d"
  "/root/repo/src/sql/executor.cc" "src/CMakeFiles/qbism.dir/sql/executor.cc.o" "gcc" "src/CMakeFiles/qbism.dir/sql/executor.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/qbism.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/qbism.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/qbism.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/qbism.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/schema.cc" "src/CMakeFiles/qbism.dir/sql/schema.cc.o" "gcc" "src/CMakeFiles/qbism.dir/sql/schema.cc.o.d"
  "/root/repo/src/sql/udf.cc" "src/CMakeFiles/qbism.dir/sql/udf.cc.o" "gcc" "src/CMakeFiles/qbism.dir/sql/udf.cc.o.d"
  "/root/repo/src/sql/value.cc" "src/CMakeFiles/qbism.dir/sql/value.cc.o" "gcc" "src/CMakeFiles/qbism.dir/sql/value.cc.o.d"
  "/root/repo/src/storage/bptree.cc" "src/CMakeFiles/qbism.dir/storage/bptree.cc.o" "gcc" "src/CMakeFiles/qbism.dir/storage/bptree.cc.o.d"
  "/root/repo/src/storage/buddy_allocator.cc" "src/CMakeFiles/qbism.dir/storage/buddy_allocator.cc.o" "gcc" "src/CMakeFiles/qbism.dir/storage/buddy_allocator.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/qbism.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/qbism.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_device.cc" "src/CMakeFiles/qbism.dir/storage/disk_device.cc.o" "gcc" "src/CMakeFiles/qbism.dir/storage/disk_device.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/qbism.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/qbism.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/long_field.cc" "src/CMakeFiles/qbism.dir/storage/long_field.cc.o" "gcc" "src/CMakeFiles/qbism.dir/storage/long_field.cc.o.d"
  "/root/repo/src/storage/slotted_page.cc" "src/CMakeFiles/qbism.dir/storage/slotted_page.cc.o" "gcc" "src/CMakeFiles/qbism.dir/storage/slotted_page.cc.o.d"
  "/root/repo/src/viz/dx.cc" "src/CMakeFiles/qbism.dir/viz/dx.cc.o" "gcc" "src/CMakeFiles/qbism.dir/viz/dx.cc.o.d"
  "/root/repo/src/viz/image.cc" "src/CMakeFiles/qbism.dir/viz/image.cc.o" "gcc" "src/CMakeFiles/qbism.dir/viz/image.cc.o.d"
  "/root/repo/src/viz/isosurface.cc" "src/CMakeFiles/qbism.dir/viz/isosurface.cc.o" "gcc" "src/CMakeFiles/qbism.dir/viz/isosurface.cc.o.d"
  "/root/repo/src/viz/mesh.cc" "src/CMakeFiles/qbism.dir/viz/mesh.cc.o" "gcc" "src/CMakeFiles/qbism.dir/viz/mesh.cc.o.d"
  "/root/repo/src/viz/renderer.cc" "src/CMakeFiles/qbism.dir/viz/renderer.cc.o" "gcc" "src/CMakeFiles/qbism.dir/viz/renderer.cc.o.d"
  "/root/repo/src/volume/compressed_volume.cc" "src/CMakeFiles/qbism.dir/volume/compressed_volume.cc.o" "gcc" "src/CMakeFiles/qbism.dir/volume/compressed_volume.cc.o.d"
  "/root/repo/src/volume/vector_volume.cc" "src/CMakeFiles/qbism.dir/volume/vector_volume.cc.o" "gcc" "src/CMakeFiles/qbism.dir/volume/vector_volume.cc.o.d"
  "/root/repo/src/volume/volume.cc" "src/CMakeFiles/qbism.dir/volume/volume.cc.o" "gcc" "src/CMakeFiles/qbism.dir/volume/volume.cc.o.d"
  "/root/repo/src/warp/warp.cc" "src/CMakeFiles/qbism.dir/warp/warp.cc.o" "gcc" "src/CMakeFiles/qbism.dir/warp/warp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
