
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/region/clustering_test.cc" "tests/CMakeFiles/region_test.dir/region/clustering_test.cc.o" "gcc" "tests/CMakeFiles/region_test.dir/region/clustering_test.cc.o.d"
  "/root/repo/tests/region/encoding_test.cc" "tests/CMakeFiles/region_test.dir/region/encoding_test.cc.o" "gcc" "tests/CMakeFiles/region_test.dir/region/encoding_test.cc.o.d"
  "/root/repo/tests/region/octant_test.cc" "tests/CMakeFiles/region_test.dir/region/octant_test.cc.o" "gcc" "tests/CMakeFiles/region_test.dir/region/octant_test.cc.o.d"
  "/root/repo/tests/region/paper_example_test.cc" "tests/CMakeFiles/region_test.dir/region/paper_example_test.cc.o" "gcc" "tests/CMakeFiles/region_test.dir/region/paper_example_test.cc.o.d"
  "/root/repo/tests/region/property_test.cc" "tests/CMakeFiles/region_test.dir/region/property_test.cc.o" "gcc" "tests/CMakeFiles/region_test.dir/region/property_test.cc.o.d"
  "/root/repo/tests/region/region_ops_test.cc" "tests/CMakeFiles/region_test.dir/region/region_ops_test.cc.o" "gcc" "tests/CMakeFiles/region_test.dir/region/region_ops_test.cc.o.d"
  "/root/repo/tests/region/region_test.cc" "tests/CMakeFiles/region_test.dir/region/region_test.cc.o" "gcc" "tests/CMakeFiles/region_test.dir/region/region_test.cc.o.d"
  "/root/repo/tests/region/stats_test.cc" "tests/CMakeFiles/region_test.dir/region/stats_test.cc.o" "gcc" "tests/CMakeFiles/region_test.dir/region/stats_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qbism.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
