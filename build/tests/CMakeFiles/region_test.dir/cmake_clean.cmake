file(REMOVE_RECURSE
  "CMakeFiles/region_test.dir/region/clustering_test.cc.o"
  "CMakeFiles/region_test.dir/region/clustering_test.cc.o.d"
  "CMakeFiles/region_test.dir/region/encoding_test.cc.o"
  "CMakeFiles/region_test.dir/region/encoding_test.cc.o.d"
  "CMakeFiles/region_test.dir/region/octant_test.cc.o"
  "CMakeFiles/region_test.dir/region/octant_test.cc.o.d"
  "CMakeFiles/region_test.dir/region/paper_example_test.cc.o"
  "CMakeFiles/region_test.dir/region/paper_example_test.cc.o.d"
  "CMakeFiles/region_test.dir/region/property_test.cc.o"
  "CMakeFiles/region_test.dir/region/property_test.cc.o.d"
  "CMakeFiles/region_test.dir/region/region_ops_test.cc.o"
  "CMakeFiles/region_test.dir/region/region_ops_test.cc.o.d"
  "CMakeFiles/region_test.dir/region/region_test.cc.o"
  "CMakeFiles/region_test.dir/region/region_test.cc.o.d"
  "CMakeFiles/region_test.dir/region/stats_test.cc.o"
  "CMakeFiles/region_test.dir/region/stats_test.cc.o.d"
  "region_test"
  "region_test.pdb"
  "region_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
