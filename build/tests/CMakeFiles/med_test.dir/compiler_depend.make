# Empty compiler generated dependencies file for med_test.
# This may be replaced when dependencies are built.
