
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage/bptree_test.cc" "tests/CMakeFiles/storage_test.dir/storage/bptree_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/bptree_test.cc.o.d"
  "/root/repo/tests/storage/buddy_allocator_test.cc" "tests/CMakeFiles/storage_test.dir/storage/buddy_allocator_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/buddy_allocator_test.cc.o.d"
  "/root/repo/tests/storage/buffer_pool_test.cc" "tests/CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o.d"
  "/root/repo/tests/storage/disk_device_test.cc" "tests/CMakeFiles/storage_test.dir/storage/disk_device_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/disk_device_test.cc.o.d"
  "/root/repo/tests/storage/fault_injection_test.cc" "tests/CMakeFiles/storage_test.dir/storage/fault_injection_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/fault_injection_test.cc.o.d"
  "/root/repo/tests/storage/heap_file_test.cc" "tests/CMakeFiles/storage_test.dir/storage/heap_file_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/heap_file_test.cc.o.d"
  "/root/repo/tests/storage/long_field_test.cc" "tests/CMakeFiles/storage_test.dir/storage/long_field_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/long_field_test.cc.o.d"
  "/root/repo/tests/storage/slotted_page_test.cc" "tests/CMakeFiles/storage_test.dir/storage/slotted_page_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/slotted_page_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qbism.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
