file(REMOVE_RECURSE
  "CMakeFiles/storage_test.dir/storage/bptree_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/bptree_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/buddy_allocator_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/buddy_allocator_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/disk_device_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/disk_device_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/fault_injection_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/fault_injection_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/heap_file_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/heap_file_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/long_field_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/long_field_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/slotted_page_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/slotted_page_test.cc.o.d"
  "storage_test"
  "storage_test.pdb"
  "storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
