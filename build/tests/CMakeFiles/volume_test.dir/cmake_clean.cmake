file(REMOVE_RECURSE
  "CMakeFiles/volume_test.dir/volume/banding_test.cc.o"
  "CMakeFiles/volume_test.dir/volume/banding_test.cc.o.d"
  "CMakeFiles/volume_test.dir/volume/compressed_volume_test.cc.o"
  "CMakeFiles/volume_test.dir/volume/compressed_volume_test.cc.o.d"
  "CMakeFiles/volume_test.dir/volume/vector_volume_test.cc.o"
  "CMakeFiles/volume_test.dir/volume/vector_volume_test.cc.o.d"
  "CMakeFiles/volume_test.dir/volume/volume_test.cc.o"
  "CMakeFiles/volume_test.dir/volume/volume_test.cc.o.d"
  "volume_test"
  "volume_test.pdb"
  "volume_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volume_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
