file(REMOVE_RECURSE
  "CMakeFiles/warp_test.dir/warp/warp_test.cc.o"
  "CMakeFiles/warp_test.dir/warp/warp_test.cc.o.d"
  "warp_test"
  "warp_test.pdb"
  "warp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
