file(REMOVE_RECURSE
  "CMakeFiles/qbism_test.dir/qbism/fuzz_decode_test.cc.o"
  "CMakeFiles/qbism_test.dir/qbism/fuzz_decode_test.cc.o.d"
  "CMakeFiles/qbism_test.dir/qbism/integration_test.cc.o"
  "CMakeFiles/qbism_test.dir/qbism/integration_test.cc.o.d"
  "CMakeFiles/qbism_test.dir/qbism/medical_server_test.cc.o"
  "CMakeFiles/qbism_test.dir/qbism/medical_server_test.cc.o.d"
  "CMakeFiles/qbism_test.dir/qbism/spatial_extension_test.cc.o"
  "CMakeFiles/qbism_test.dir/qbism/spatial_extension_test.cc.o.d"
  "qbism_test"
  "qbism_test.pdb"
  "qbism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
