# Empty dependencies file for qbism_test.
# This may be replaced when dependencies are built.
