# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/curve_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/region_test[1]_include.cmake")
include("/root/repo/build/tests/volume_test[1]_include.cmake")
include("/root/repo/build/tests/warp_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/viz_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/mining_test[1]_include.cmake")
include("/root/repo/build/tests/med_test[1]_include.cmake")
include("/root/repo/build/tests/qbism_test[1]_include.cmake")
