file(REMOVE_RECURSE
  "CMakeFiles/multi_study_analysis.dir/multi_study_analysis.cpp.o"
  "CMakeFiles/multi_study_analysis.dir/multi_study_analysis.cpp.o.d"
  "multi_study_analysis"
  "multi_study_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_study_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
