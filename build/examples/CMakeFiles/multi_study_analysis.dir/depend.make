# Empty dependencies file for multi_study_analysis.
# This may be replaced when dependencies are built.
