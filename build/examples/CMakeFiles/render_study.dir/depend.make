# Empty dependencies file for render_study.
# This may be replaced when dependencies are built.
