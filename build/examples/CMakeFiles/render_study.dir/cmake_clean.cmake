file(REMOVE_RECURSE
  "CMakeFiles/render_study.dir/render_study.cpp.o"
  "CMakeFiles/render_study.dir/render_study.cpp.o.d"
  "render_study"
  "render_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
