file(REMOVE_RECURSE
  "CMakeFiles/brain_mapping.dir/brain_mapping.cpp.o"
  "CMakeFiles/brain_mapping.dir/brain_mapping.cpp.o.d"
  "brain_mapping"
  "brain_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brain_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
