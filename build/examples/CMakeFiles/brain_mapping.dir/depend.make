# Empty dependencies file for brain_mapping.
# This may be replaced when dependencies are built.
