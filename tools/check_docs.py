#!/usr/bin/env python3
"""Documentation cross-reference checker (ctest: docs_check).

Run from the repository root (the ctest registration sets the working
directory). Verifies, over every tracked markdown file:

1. Relative markdown links resolve to files that exist.
2. Every `DESIGN.md §N` reference names an existing `## N.` section
   of DESIGN.md. (Bare `§N` references are paper sections and are not
   checked.)
3. Every experiment id `E<N>` mentioned anywhere has a row in
   DESIGN.md's experiment index table and a `## E<N>` section in
   EXPERIMENTS.md.
4. Every file under docs/ is listed in DOC_FILES (a new reference doc
   cannot silently escape the checks or the README index).
5. Every `ctest -L <label>` recipe quoted in the docs names a label
   actually attached to a test in tests/CMakeLists.txt or
   bench/CMakeLists.txt.

Exits non-zero with one line per problem.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "PAPER.md",
    "docs/OBSERVABILITY.md",
    "docs/NETWORK.md",
    "docs/DURABILITY.md",
    "docs/INDEXING.md",
]

CMAKE_FILES = ["tests/CMakeLists.txt", "bench/CMakeLists.txt",
               "CMakeLists.txt"]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
DESIGN_SECTION_REF_RE = re.compile(r"DESIGN\.md\s*§+\s*(\d+)")
DESIGN_SECTION_DEF_RE = re.compile(r"^##\s+(\d+)\.", re.MULTILINE)
EXPERIMENT_REF_RE = re.compile(r"\bE(\d+)\b")
EXPERIMENT_INDEX_ROW_RE = re.compile(r"^\|\s*E(\d+)\s*\|", re.MULTILINE)
EXPERIMENT_SECTION_RE = re.compile(r"^##\s+E(\d+)\b", re.MULTILINE)
CTEST_LABEL_RE = re.compile(r"ctest\s+(?:--test-dir\s+\S+\s+)?-L\s+`?([\w-]+)")
# LABELS in qbism_add_test(... LABELS a b), set_tests_properties(...
# LABELS "a;b"), and the free-form preset notes don't define labels —
# only the first two forms do.
CMAKE_LABELS_RE = re.compile(r"LABELS\s+((?:\"[^\"]*\"|[\w-]+)(?:\s+[\w-]+)*)")


def main() -> int:
    problems = []
    texts = {}
    for rel in DOC_FILES:
        path = ROOT / rel
        if not path.is_file():
            problems.append(f"{rel}: listed in check_docs.py but missing")
            continue
        texts[rel] = path.read_text(encoding="utf-8")

    # 4. docs/ holds no file the list (and so the checks) doesn't cover.
    for path in sorted((ROOT / "docs").glob("*.md")):
        rel = f"docs/{path.name}"
        if rel not in DOC_FILES:
            problems.append(f"{rel}: exists but is not listed in check_docs.py")

    # Labels defined in the build: qbism_add_test(... LABELS a b) and
    # set_tests_properties(... LABELS "a;b").
    defined_labels = set()
    for rel in CMAKE_FILES:
        cmake = (ROOT / rel).read_text(encoding="utf-8")
        for group in CMAKE_LABELS_RE.findall(cmake):
            for token in group.replace('"', " ").replace(";", " ").split():
                defined_labels.add(token)

    design = texts.get("DESIGN.md", "")
    experiments = texts.get("EXPERIMENTS.md", "")
    design_sections = set(DESIGN_SECTION_DEF_RE.findall(design))
    index_rows = set(EXPERIMENT_INDEX_ROW_RE.findall(design))
    experiment_sections = set(EXPERIMENT_SECTION_RE.findall(experiments))

    for rel, text in texts.items():
        base = (ROOT / rel).parent

        # 1. Relative links resolve.
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            if not (base / target_path).exists():
                problems.append(f"{rel}: broken link -> {target}")

        # 2. DESIGN.md §N references name real sections.
        for num in DESIGN_SECTION_REF_RE.findall(text):
            if num not in design_sections:
                problems.append(
                    f"{rel}: reference to DESIGN.md §{num}, but DESIGN.md "
                    f"has no '## {num}.' section"
                )

        # 5. Quoted `ctest -L <label>` recipes name real labels.
        for label in CTEST_LABEL_RE.findall(text):
            if label not in defined_labels:
                problems.append(
                    f"{rel}: `ctest -L {label}`, but no test in the build "
                    f"carries the label '{label}'"
                )

        # 3. Experiment ids resolve in both the index and EXPERIMENTS.md.
        for num in set(EXPERIMENT_REF_RE.findall(text)):
            if num not in index_rows:
                problems.append(
                    f"{rel}: experiment E{num} is not in DESIGN.md's "
                    f"experiment index"
                )
            if num not in experiment_sections:
                problems.append(
                    f"{rel}: experiment E{num} has no '## E{num}' section "
                    f"in EXPERIMENTS.md"
                )

    if problems:
        for p in sorted(set(problems)):
            print(p)
        print(f"docs_check: {len(set(problems))} problem(s)")
        return 1
    n_links = sum(len(LINK_RE.findall(t)) for t in texts.values())
    print(
        f"docs_check: OK ({len(texts)} files, {n_links} links, "
        f"{len(design_sections)} DESIGN sections, "
        f"{len(experiment_sections)} experiments, "
        f"{len(defined_labels)} ctest labels)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
