// Quickstart: the smallest end-to-end QBISM program.
//
// Creates an extensible database, installs the spatial extension,
// stores a synthetic VOLUME and a REGION, and runs a spatial SQL query
// with the EXTRACT_DATA operator — the §3.2/§3.4 flow in ~80 lines.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/macros.h"
#include "qbism/spatial_extension.h"

using qbism::SpatialConfig;
using qbism::SpatialExtension;
using qbism::curve::CurveKind;
using qbism::geometry::Vec3i;
using qbism::region::GridSpec;
using qbism::region::Region;
using qbism::sql::Value;
using qbism::volume::Volume;

int main() {
  // 1. An extensible DBMS instance with the QBISM spatial extension on
  //    a 64^3 grid (the paper's atlas space is 128^3; smaller is
  //    snappier for a demo).
  qbism::sql::Database db;
  SpatialConfig config;
  config.grid = GridSpec{3, 6};
  auto ext = SpatialExtension::Install(&db, config).MoveValue();

  // 2. A table holding one scalar-field study as a VOLUME long field.
  QBISM_CHECK_OK(db.Execute("create table study (id int, data longfield)")
                     .status());

  // 3. A synthetic 3-D scalar field: a bright ball in a dim box,
  //    linearized in Hilbert order (§4.1).
  Volume volume = Volume::FromFunction(
      config.grid, CurveKind::kHilbert, [](const Vec3i& p) {
        double dx = p.x - 32.0, dy = p.y - 32.0, dz = p.z - 32.0;
        bool inside = dx * dx + dy * dy + dz * dz < 15.0 * 15.0;
        return static_cast<uint8_t>(inside ? 200 : 20);
      });
  auto volume_field = ext->StoreVolume(volume).MoveValue();
  QBISM_CHECK_OK(db.Insert("study", {Value::Int(1),
                                     Value::LongField(volume_field)}));

  // 4. A REGION of interest stored as compressed Hilbert runs, plus two
  //    spatial queries through plain SQL and the registered UDFs.
  QBISM_CHECK_OK(db.Execute("create table roi (name string, reg longfield)")
                     .status());
  Region box = Region::FromBox(config.grid, CurveKind::kHilbert,
                               {{20, 20, 20}, {43, 43, 43}});
  QBISM_CHECK_OK(db.Insert(
      "roi", {Value::String("center-box"),
              Value::LongField(ext->StoreRegion(box).MoveValue())}));

  auto result = db.Execute(
      "select voxelcount(reg), runcount(reg),"
      " meanintensity(extractvoxels(s.data, reg))"
      " from roi, study s where s.id = 1");
  QBISM_CHECK(result.ok());
  std::printf("ROI voxels:        %s\n",
              result->rows[0][0].ToString().c_str());
  std::printf("ROI hilbert runs:  %s\n",
              result->rows[0][1].ToString().c_str());
  std::printf("mean intensity:    %s\n",
              result->rows[0][2].ToString().c_str());

  // 5. A mixed query: high-intensity voxels inside the ROI, composed
  //    from bandregion() and intersection() exactly like §3.4's
  //    "complicated user query".
  auto mixed = db.Execute(
      "select voxelcount(intersection(reg, bandregion(s.data, 128, 255)))"
      " from roi, study s where s.id = 1");
  QBISM_CHECK(mixed.ok());
  std::printf("bright voxels in ROI: %s (the ball's overlap with the box)\n",
              mixed->rows[0][0].ToString().c_str());

  // 6. Early filtering in action: pages touched by the extraction
  //    versus a full-volume read.
  uint64_t roi_pages = ext->ExtractionPages(volume_field, box).MoveValue();
  uint64_t full_pages = config.grid.NumCells() / qbism::storage::kPageSize;
  std::printf("LFM pages: ROI extraction %llu vs full study %llu\n",
              static_cast<unsigned long long>(roi_pages),
              static_cast<unsigned long long>(full_pages));
  return 0;
}
