// Concurrent query service demo: stands up the thread-pooled front end
// over a loaded database, fires a burst of mixed clinical queries from
// several client threads, and prints the per-request accounting and the
// service-wide metrics — admission control, the shared result cache,
// and a deadline in action. See DESIGN.md ("Service layer").

#include <cstdio>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "med/loader.h"
#include "med/schema.h"
#include "service/query_service.h"

using qbism::service::QueryService;
using qbism::service::ServiceOptions;
using qbism::service::ServiceRequest;
using qbism::service::Ticket;

int main() {
  std::printf("QBISM service demo: loading 3 PET studies...\n");
  qbism::sql::Database db;
  auto ext =
      qbism::SpatialExtension::Install(&db, qbism::SpatialConfig{}).MoveValue();
  QBISM_CHECK_OK(qbism::med::BootstrapSchema(&db));
  qbism::med::LoadOptions load;
  load.num_pet_studies = 3;
  load.num_mri_studies = 0;
  load.build_meshes = false;
  auto dataset = qbism::med::PopulateDatabase(ext.get(), load).MoveValue();

  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 16;
  QueryService service(ext.get(), options);
  std::printf("Service up: %d workers, queue capacity %zu.\n\n",
              service.num_workers(), options.queue_capacity);

  // A small clinical review session: each client repeatedly asks for a
  // structure restriction of its study — the second round of each is
  // served by the shared cache no matter which worker picks it up.
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&service, &dataset, c] {
      for (int round = 0; round < 2; ++round) {
        ServiceRequest request;
        request.spec.study_id = dataset.pet_study_ids[c];
        request.spec.structure_name = dataset.structure_names[c];
        auto reply = service.Execute(request);
        QBISM_CHECK(reply.ok());
        std::printf(
            "client %d round %d: study %d/%s -> %llu voxels "
            "(worker %d, %s, %.1f ms)\n",
            c, round, request.spec.study_id,
            dataset.structure_names[c].c_str(),
            static_cast<unsigned long long>(reply->result.result_voxels),
            reply->worker_id, reply->cache_hit ? "cache hit" : "executed",
            1e3 * reply->total_seconds);
      }
    });
  }
  for (std::thread& client : clients) client.join();

  // A hopeless deadline is refused before it costs anything.
  ServiceRequest rushed;
  rushed.spec.study_id = dataset.pet_study_ids[0];
  rushed.deadline_seconds = 1e-12;
  auto reply = service.Execute(rushed);
  std::printf("\nrushed request: %s\n", reply.status().ToString().c_str());

  auto metrics = service.metrics();
  std::printf("\nService metrics: %s\n", metrics.ToJson().c_str());
  auto cache = service.cache_stats();
  std::printf("Result cache: %llu hits, %llu misses, %llu entries\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.entries));
  service.Shutdown();
  std::printf("Service shut down cleanly.\n");
  return 0;
}
