// Brain mapping session: walks the §2.1 scenario end to end on the
// synthetic corpus — select atlas structures, view a patient's PET data
// inside them, texture-map the data onto the structure surface
// (Figure 6), histogram-segment an intensity range, and compare
// regions across studies. Writes PPM images next to the binary.
//
// Build & run:  ./build/examples/brain_mapping

#include <cstdio>

#include "common/macros.h"
#include "med/loader.h"
#include "med/schema.h"
#include "qbism/medical_server.h"

using qbism::MedicalServer;
using qbism::QuerySpec;
using qbism::SpatialConfig;
using qbism::SpatialExtension;

namespace {

void SaveImage(const qbism::viz::Image& image, const char* path) {
  QBISM_CHECK_OK(image.WritePpm(path));
  std::printf("  wrote %s (%dx%d, %.1f%% lit)\n", path, image.width(),
              image.height(), 100 * image.NonBlackFraction());
}

}  // namespace

int main() {
  std::printf("QBISM brain-mapping session (the §2.1 scenario).\n");
  std::printf("Loading the medical database (atlas + 3 PET studies)...\n");

  qbism::sql::Database db;
  auto ext = SpatialExtension::Install(&db, SpatialConfig{}).MoveValue();
  QBISM_CHECK_OK(qbism::med::BootstrapSchema(&db));
  qbism::med::LoadOptions options;
  options.num_pet_studies = 3;
  options.num_mri_studies = 0;
  auto dataset = qbism::med::PopulateDatabase(ext.get(), options);
  QBISM_CHECK(dataset.ok());
  MedicalServer server(ext.get());
  qbism::viz::Camera camera{0.5, 0.35, 384};

  // --- Step 1: select a structure from the standard atlas and render
  //     it (Figure 6a: "the atlas structure ntal1").
  std::printf("\n[1] Render atlas structure ntal1 (one hemisphere):\n");
  auto mesh_rows = db.Execute(
      "select ast.mesh, ast.region from atlasStructure ast,"
      " neuralStructure ns where ast.structureId = ns.structureId"
      " and ns.structureName = 'ntal1'");
  QBISM_CHECK(mesh_rows.ok());
  auto mesh_bytes =
      db.lfm()->Read(mesh_rows->rows[0][0].AsLongField().MoveValue());
  auto mesh =
      qbism::viz::TriangleMesh::Deserialize(mesh_bytes.MoveValue()).MoveValue();
  std::printf("  surface mesh: %zu vertices, %zu triangles\n",
              mesh.VertexCount(), mesh.TriangleCount());
  SaveImage(server.dx()
                ->RenderSurface(mesh, camera, ext->config().grid)
                .image,
            "brain_structure.ppm");

  // --- Step 2: the patient's PET data inside the structure
  //     (Figure 6b), via the MedicalServer query path.
  std::printf("\n[2] PET study 53 inside ntal1 (spatial query):\n");
  QuerySpec spec;
  spec.study_id = 53;
  spec.structure_name = "ntal1";
  auto result = server.RunStudyQuery(spec, /*render=*/true, camera);
  QBISM_CHECK(result.ok());
  std::printf("  generated SQL: %s\n", result->data_sql.c_str());
  std::printf("  %llu voxels in %llu h-runs; %llu LFM pages; "
              "mean intensity %.1f\n",
              static_cast<unsigned long long>(result->result_voxels),
              static_cast<unsigned long long>(result->result_runs),
              static_cast<unsigned long long>(result->timing.lfm_pages),
              result->data.MeanIntensity());
  SaveImage(result->image, "brain_pet_in_structure.ppm");

  // --- Step 3: texture-map the PET data onto the structure surface
  //     (Figure 6c).
  std::printf("\n[3] PET data mapped onto the structure surface:\n");
  auto imported = server.dx()->ImportVolume(result->data);
  SaveImage(server.dx()
                ->RenderSurface(mesh, camera, ext->config().grid,
                                &imported.dense)
                .image,
            "brain_textured_surface.ppm");

  // --- Step 4: histogram-segment an intensity range and find other
  //     regions of the study in that range (attribute query).
  std::printf("\n[4] High-activity regions (band 224-255) anywhere:\n");
  QuerySpec band;
  band.study_id = 53;
  band.intensity_range = {224, 255};
  auto band_result = server.RunStudyQuery(band, /*render=*/true, camera);
  QBISM_CHECK(band_result.ok());
  std::printf("  %llu voxels of peak activity in %llu runs\n",
              static_cast<unsigned long long>(band_result->result_voxels),
              static_cast<unsigned long long>(band_result->result_runs));
  SaveImage(band_result->image, "brain_high_activity.ppm");

  // --- Step 5: compare a region across two studies of different
  //     patients, both warped to the same atlas (§2.2's payoff).
  std::printf("\n[5] Same structure in another patient's study:\n");
  QuerySpec other = spec;
  other.study_id = 54;
  auto other_result = server.RunStudyQuery(other, /*render=*/false);
  QBISM_CHECK(other_result.ok());
  std::printf("  study 53 mean %.1f vs study 54 mean %.1f inside ntal1\n",
              result->data.MeanIntensity(),
              other_result->data.MeanIntensity());

  // --- Step 6: target a radiation beam and list the anatomical
  //     structures it intersects (the §2.1 scenario's targeting step).
  std::printf("\n[6] Beam from (20,20,110) to (100,100,30), radius 3:\n");
  auto beam_shape = qbism::geometry::MakeTube(
      {{20, 20, 110}, {100, 100, 30}}, 3.0);
  auto beam = qbism::region::Region::FromShape(
      ext->config().grid, ext->config().curve, *beam_shape);
  auto structures = db.Execute(
      "select ns.structureName, ast.region from atlasStructure ast,"
      " neuralStructure ns where ast.structureId = ns.structureId");
  QBISM_CHECK(structures.ok());
  for (const auto& row : structures->rows) {
    auto region =
        ext->LoadRegion(row[1].AsLongField().MoveValue()).MoveValue();
    auto hit = beam.IntersectWith(region).MoveValue();
    if (!hit.Empty()) {
      std::printf("  beam crosses %-14s (%llu voxels)\n",
                  row[0].AsString().value().c_str(),
                  static_cast<unsigned long long>(hit.VoxelCount()));
    }
  }

  // --- Step 7: review a cached result with no database reaccess.
  std::printf("\n[7] DX cache holds %zu recent query results; re-viewing "
              "'%s' needs no DB access.\n",
              server.dx()->CacheSize(), spec.Describe().c_str());
  QBISM_CHECK(server.dx()->CacheGet(spec.Describe()) != nullptr);

  std::printf("\nDone. View the .ppm files with any image viewer.\n");
  return 0;
}
