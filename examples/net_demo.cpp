// Socket front-end demo: stands up the real TCP server (framed binary
// protocol, sessions, per-tenant admission) over a loaded database,
// then talks to it through NetClient exactly the way a remote display
// station would — login, a few queries with chunked answers, a rogue
// login that bounces, and the server's wire accounting at the end.
// See docs/NETWORK.md for the protocol.

#include <cstdio>

#include "common/macros.h"
#include "med/loader.h"
#include "med/schema.h"
#include "server/client.h"
#include "server/server.h"

using qbism::server::NetClient;
using qbism::server::QbismServer;
using qbism::server::ServerOptions;
using qbism::server::ServerStats;
using qbism::server::TenantConfig;

int main() {
  std::printf("QBISM net demo: loading 2 PET studies...\n");
  qbism::sql::Database db;
  auto ext =
      qbism::SpatialExtension::Install(&db, qbism::SpatialConfig{}).MoveValue();
  QBISM_CHECK_OK(qbism::med::BootstrapSchema(&db));
  qbism::med::LoadOptions load;
  load.num_pet_studies = 2;
  load.num_mri_studies = 0;
  load.build_meshes = false;
  auto dataset = qbism::med::PopulateDatabase(ext.get(), load).MoveValue();

  // One tenant, small chunks so the streaming is visible.
  ServerOptions options;
  TenantConfig clinic;
  clinic.name = "clinic";
  clinic.secret = "clinic-secret";
  options.tenants = {clinic};
  options.chunk_bytes = 8 << 10;
  options.service.num_workers = 2;
  QbismServer server(ext.get(), options);
  QBISM_CHECK_OK(server.Start());
  std::printf("Server listening on 127.0.0.1:%u.\n\n", server.port());

  // A display station dials in and authenticates.
  auto client = NetClient::Connect("127.0.0.1", server.port()).MoveValue();
  QBISM_CHECK_OK(client.Login("clinic", "clinic-secret"));
  std::printf("Logged in: session token %016llx, ttl %.0fs, chunk %u B.\n",
              static_cast<unsigned long long>(client.session_token()),
              client.session_ttl_seconds(), client.server_chunk_bytes());

  // Structure queries over the wire: each answer streams back as
  // result_header + N result_chunk frames + result_end.
  for (int i = 0; i < 3; ++i) {
    qbism::QuerySpec spec;
    spec.study_id = dataset.pet_study_ids[i % dataset.pet_study_ids.size()];
    spec.structure_name = dataset.structure_names[static_cast<size_t>(i)];
    auto outcome = client.RunQuery(spec).MoveValue();
    std::printf(
        "query %d: %-18s -> %llu voxels, %llu B shipped in %u chunks "
        "(%.1f ms on the wire)\n",
        i, dataset.structure_names[static_cast<size_t>(i)].c_str(),
        static_cast<unsigned long long>(outcome.data.VoxelCount()),
        static_cast<unsigned long long>(outcome.shipped_bytes),
        outcome.chunks, 1e3 * outcome.wire_seconds);
  }

  // A stranger with the wrong secret is turned away at the door.
  auto rogue = NetClient::Connect("127.0.0.1", server.port()).MoveValue();
  auto denied = rogue.Login("clinic", "wrong-secret");
  std::printf("\nrogue login: %s\n", denied.ToString().c_str());
  rogue.Bye();

  client.Bye();
  ServerStats stats = server.stats();
  std::printf(
      "\nServer accounting: %llu connections, %llu frames out, "
      "%llu answer bytes shipped, %llu ok / %llu failed queries.\n",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.frames_written),
      static_cast<unsigned long long>(stats.ship_bytes),
      static_cast<unsigned long long>(stats.queries_ok),
      static_cast<unsigned long long>(stats.queries_failed));
  std::printf("Edge metrics: %s\n", server.metrics().ToJson().c_str());
  server.Shutdown();
  std::printf("Server shut down cleanly.\n");
  return 0;
}
