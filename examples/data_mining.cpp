// Data mining: the §2.1 "data mining queries" class and the §7 future
// directions, implemented — similarity search over study feature
// vectors ("find the PET studies ... similar to Ms. Smith's latest PET
// study") and association-rule mining over per-study activity patterns
// ("find PET study intensity patterns that are associated with any
// neurological condition in any subpopulation").
//
// Build & run:  ./build/examples/data_mining

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/macros.h"
#include "med/loader.h"
#include "med/schema.h"
#include "mining/apriori.h"
#include "qbism/medical_server.h"

using qbism::MedicalServer;
using qbism::SpatialConfig;
using qbism::SpatialExtension;

int main() {
  std::printf("QBISM data-mining session.\n");
  std::printf("Loading the medical database (8 PET studies)...\n");

  qbism::sql::Database db;
  auto ext = SpatialExtension::Install(&db, SpatialConfig{}).MoveValue();
  QBISM_CHECK_OK(qbism::med::BootstrapSchema(&db));
  qbism::med::LoadOptions options;
  options.num_pet_studies = 8;  // a slightly larger population
  options.num_mri_studies = 0;
  options.build_meshes = false;
  auto dataset = qbism::med::PopulateDatabase(ext.get(), options);
  QBISM_CHECK(dataset.ok());
  MedicalServer server(ext.get());
  const std::vector<int>& studies = dataset->pet_study_ids;

  // --- 1. Feature vectors: mean intensity per atlas structure. --------
  std::printf("\n[1] Study feature vectors (mean intensity per structure):\n");
  std::map<int, std::vector<double>> features;
  for (int study : studies) {
    features[study] = server.StudyFeatureVector(study).MoveValue();
    std::printf("  study %d: [", study);
    for (size_t i = 0; i < features[study].size(); ++i) {
      std::printf("%s%.0f", i ? " " : "", features[study][i]);
    }
    std::printf("]\n");
  }

  // --- 2. Similarity search: who resembles study 53? ------------------
  std::printf("\n[2] 3 studies most similar to study 53 (kd-tree kNN):\n");
  auto neighbors = server.FindSimilarStudies(53, studies, 3).MoveValue();
  for (const auto& n : neighbors) {
    std::printf("  study %lld at feature distance %.2f\n",
                static_cast<long long>(n.id), n.distance);
  }

  // --- 3. Association rules over activity patterns. -------------------
  // Items: "high activity in structure S" (feature > population mean),
  // one item id per structure, plus a synthetic "condition" flag for
  // patients whose hippocampus activity tops the population (the kind
  // of label a clinical archive would join in).
  std::printf("\n[3] Association rules over high-activity patterns:\n");
  size_t dims = features.begin()->second.size();
  std::vector<double> mean(dims, 0.0);
  for (const auto& [study, f] : features) {
    for (size_t i = 0; i < dims; ++i) mean[i] += f[i];
  }
  for (double& m : mean) m /= static_cast<double>(features.size());

  auto structure_names =
      db.Execute("select structureName from neuralStructure"
                 " order by structureName")
          .MoveValue();
  auto item_name = [&](uint32_t item) -> std::string {
    if (item < dims) {
      return "high(" +
             structure_names.rows[item][0].AsString().value() + ")";
    }
    return "condition";
  };

  std::vector<qbism::mining::Transaction> transactions;
  for (const auto& [study, f] : features) {
    qbism::mining::Transaction t;
    for (size_t i = 0; i < dims; ++i) {
      if (f[i] > mean[i]) t.push_back(static_cast<uint32_t>(i));
    }
    // Synthetic condition label correlated with hippocampal activity
    // (structure index found by name).
    for (size_t i = 0; i < dims; ++i) {
      if (structure_names.rows[i][0].AsString().value() == "hippocampus" &&
          f[i] > mean[i] * 1.02) {
        t.push_back(static_cast<uint32_t>(dims));  // the condition item
      }
    }
    transactions.push_back(std::move(t));
  }
  auto rules =
      qbism::mining::MineAssociationRules(transactions, 0.3, 0.8).MoveValue();
  int shown = 0;
  for (const auto& rule : rules) {
    if (shown++ >= 10) break;
    std::string lhs, rhs;
    for (uint32_t item : rule.lhs) lhs += item_name(item) + " ";
    for (uint32_t item : rule.rhs) rhs += item_name(item) + " ";
    std::printf("  %s=> %s (support %.2f, confidence %.2f)\n", lhs.c_str(),
                rhs.c_str(), rule.support, rule.confidence);
  }
  if (rules.empty()) {
    std::printf("  (no rules at support>=0.3, confidence>=0.8)\n");
  }
  std::printf("\n%zu rules mined from %zu studies.\n", rules.size(),
              transactions.size());
  return 0;
}
