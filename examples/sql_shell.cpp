// SQL shell: an interactive console over the loaded medical database —
// type the paper's queries (§3.4) against the live schema, with the
// spatial UDFs available. `.plan` toggles EXPLAIN-style access-path
// notes, `.tables` lists the catalog, `.quit` exits (EOF works too).
//
// Build & run:  ./build/examples/sql_shell
// Try:
//   select count(*) from intensityBand
//   select ns.structureName, voxelcount(ast.region) v from atlasStructure
//     ast, neuralStructure ns where ast.structureId = ns.structureId
//     order by v desc limit 5
//   select meanintensity(extractvoxels(wv.data, boxregion(30,30,30,
//     100,100,100))) from warpedVolume wv where wv.studyId = 53

#include <cstdio>
#include <iostream>
#include <string>

#include "common/macros.h"
#include "common/timer.h"
#include "med/loader.h"
#include "med/schema.h"
#include "qbism/spatial_extension.h"

int main() {
  std::printf("QBISM SQL shell. Loading the medical database...\n");
  qbism::sql::Database db;
  auto ext =
      qbism::SpatialExtension::Install(&db, qbism::SpatialConfig{}).MoveValue();
  QBISM_CHECK_OK(qbism::med::BootstrapSchema(&db));
  qbism::med::LoadOptions options;
  options.num_pet_studies = 2;
  options.num_mri_studies = 0;
  options.build_meshes = false;
  QBISM_CHECK(qbism::med::PopulateDatabase(ext.get(), options).ok());
  std::printf("Loaded. PET studies 53-54; 11 atlas structures; type .help\n");

  bool show_plan = false;
  std::string line;
  while (true) {
    std::printf("qbism> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == ".quit" || line == ".exit") break;
    if (line == ".help") {
      std::printf(".tables  list tables\n.plan    toggle access-path "
                  "notes\n.quit    exit\nanything else is SQL\n");
      continue;
    }
    if (line == ".plan") {
      show_plan = !show_plan;
      std::printf("plan notes %s\n", show_plan ? "on" : "off");
      continue;
    }
    if (line == ".tables") {
      for (const std::string& name : db.catalog()->TableNames()) {
        std::printf("  %s\n", name.c_str());
      }
      continue;
    }
    qbism::WallTimer timer;
    auto result = db.Execute(line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (!result->columns.empty()) {
      std::printf("%s", result->ToString().c_str());
      std::printf("(%zu row(s) in %.3f s)\n", result->rows.size(),
                  timer.Seconds());
    } else {
      std::printf("ok (%llu row(s) affected)\n",
                  static_cast<unsigned long long>(result->rows_affected));
    }
    if (show_plan) {
      for (const std::string& note : result->plan) {
        std::printf("  plan: %s\n", note.c_str());
      }
    }
  }
  std::printf("\nbye\n");
  return 0;
}
