// Multi-study analysis: the population-scale queries the paper's
// introduction motivates — "display the PET studies of 40-year old
// females that show high physiological activity inside the
// hippocampus" — plus the n-way consistency intersection (Table 4) and
// voxel-wise averaging (§6.4), all against the relational schema.
//
// Build & run:  ./build/examples/multi_study_analysis

#include <cstdio>

#include "common/macros.h"
#include "med/loader.h"
#include "med/schema.h"
#include "qbism/medical_server.h"

using qbism::MedicalServer;
using qbism::SpatialConfig;
using qbism::SpatialExtension;

int main() {
  std::printf("QBISM multi-study analysis.\n");
  std::printf("Loading the medical database (5 PET studies)...\n");

  qbism::sql::Database db;
  auto ext = SpatialExtension::Install(&db, SpatialConfig{}).MoveValue();
  QBISM_CHECK_OK(qbism::med::BootstrapSchema(&db));
  qbism::med::LoadOptions options;
  options.num_mri_studies = 0;
  options.build_meshes = false;
  auto dataset = qbism::med::PopulateDatabase(ext.get(), options);
  QBISM_CHECK(dataset.ok());
  MedicalServer server(ext.get());

  // --- 1. A demographic + spatial + attribute query in one SQL
  //     statement: mean activity inside the hippocampus for every
  //     female patient's study, with patient details joined in.
  std::printf("\n[1] Activity inside the hippocampus per female patient:\n");
  auto result = db.Execute(
      "select p.name, p.age, rv.studyId,"
      " meanintensity(extractvoxels(wv.data, ast.region)) as activity"
      " from patient p, rawVolume rv, warpedVolume wv,"
      " atlasStructure ast, neuralStructure ns"
      " where rv.patientId = p.patientId and wv.studyId = rv.studyId"
      " and ast.atlasId = wv.atlasId"
      " and ast.structureId = ns.structureId"
      " and ns.structureName = 'hippocampus' and p.sex = 'F'");
  QBISM_CHECK(result.ok());
  std::printf("%s", result->ToString().c_str());

  // --- 2. Rank all studies by peak-band activity inside a structure
  //     (which patients light up the visual cortex?).
  std::printf("\n[2] Peak-band voxels inside visual_cortex per study:\n");
  auto ranking = db.Execute(
      "select wv.studyId,"
      " voxelcount(intersection(ib.region, ast.region)) as peak_voxels"
      " from warpedVolume wv, intensityBand ib,"
      " atlasStructure ast, neuralStructure ns"
      " where ib.studyId = wv.studyId and ib.atlasId = wv.atlasId"
      " and ib.lo = 192 and ib.hi = 223"
      " and ast.atlasId = wv.atlasId"
      " and ast.structureId = ns.structureId"
      " and ns.structureName = 'visual_cortex'");
  QBISM_CHECK(ranking.ok());
  std::printf("%s", ranking->ToString().c_str());

  // --- 3. Table-4-style consistency: where do ALL studies agree on the
  //     background band?
  std::printf("\n[3] Region where all 5 studies have intensities 32-63:\n");
  auto consistent = server.ConsistentBandRegion(dataset->pet_study_ids, 32, 63);
  QBISM_CHECK(consistent.ok());
  std::printf("  %llu voxels in %zu h-runs; %llu LFM I/Os; db real %.3f s\n",
              static_cast<unsigned long long>(
                  consistent->region.VoxelCount()),
              consistent->region.RunCount(),
              static_cast<unsigned long long>(consistent->lfm_pages),
              consistent->db_real_seconds);
  std::printf("  SQL: %.120s...\n", consistent->sql.c_str());

  // --- 4. §6.4: voxel-wise average inside ntal across the population —
  //     the database ships one averaged result, not 5 studies.
  std::printf("\n[4] Voxel-wise average inside ntal across 5 studies:\n");
  auto average = server.AverageInStructure(dataset->pet_study_ids, "ntal");
  QBISM_CHECK(average.ok());
  std::printf("  %llu voxels averaged; %llu LFM I/Os;"
              " %llu network messages (vs ~%llu to ship 5 studies whole)\n",
              static_cast<unsigned long long>(average->result_voxels),
              static_cast<unsigned long long>(average->timing.lfm_pages),
              static_cast<unsigned long long>(
                  average->timing.network_messages),
              static_cast<unsigned long long>(5 * 2048));
  std::printf("  population mean activity in ntal: %.1f\n",
              average->data.MeanIntensity());

  // --- 5. Spatial containment over the atlas itself: which structures
  //     lie entirely inside the left hemisphere?
  std::printf("\n[5] Structures contained in ntal1 (one hemisphere):\n");
  auto contained = db.Execute(
      "select ns.structureName, contains(hemi.region, ast.region) as inside"
      " from atlasStructure ast, neuralStructure ns,"
      " atlasStructure hemi, neuralStructure hns"
      " where ast.structureId = ns.structureId"
      " and hemi.structureId = hns.structureId"
      " and hns.structureName = 'ntal1'"
      " and ns.structureName <> 'ntal1'");
  QBISM_CHECK(contained.ok());
  std::printf("%s", contained->ToString().c_str());
  return 0;
}
