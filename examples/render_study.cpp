// Render study: the visualization side of QBISM on its own — loads one
// synthetic PET study, warps it to atlas space, and renders maximum
// intensity projections from several viewpoints plus per-band overlays,
// writing PPM images. No database involved: this exercises the viz
// substrate directly against the public volume/region API.
//
// Build & run:  ./build/examples/render_study

#include <cstdio>
#include <string>

#include "common/macros.h"
#include "med/phantom.h"
#include "viz/dx.h"
#include "viz/isosurface.h"
#include "viz/renderer.h"
#include "warp/warp.h"

using qbism::curve::CurveKind;
using qbism::region::GridSpec;
using qbism::region::Region;
using qbism::viz::Camera;
using qbism::volume::Volume;

int main() {
  const GridSpec grid{3, 7};
  std::printf("Generating and warping a synthetic PET study...\n");
  auto raw = qbism::med::GeneratePetStudy(1234);
  auto warp_tx = qbism::med::StudyWarp(1234, raw.nx(), raw.ny(), raw.nz());
  Volume study =
      qbism::warp::WarpToAtlas(raw, warp_tx, grid, CurveKind::kHilbert);

  auto histogram = study.Histogram();
  uint64_t nonzero = grid.NumCells() - histogram[0];
  std::printf("study: %llu signal voxels of %llu\n",
              static_cast<unsigned long long>(nonzero),
              static_cast<unsigned long long>(grid.NumCells()));

  // MIPs from three viewpoints.
  struct View {
    const char* name;
    Camera camera;
  } views[] = {
      {"render_front.ppm", {0.0, 0.0, 384}},
      {"render_oblique.ppm", {0.6, 0.4, 384}},
      {"render_top.ppm", {0.0, 1.4, 384}},
  };
  for (const View& v : views) {
    auto image = qbism::viz::RenderMip(study, v.camera);
    QBISM_CHECK_OK(image.WritePpm(v.name));
    std::printf("wrote %s (%.1f%% lit)\n", v.name,
                100 * image.NonBlackFraction());
  }

  // Band-restricted MIPs: the paper's attribute queries, visualized.
  std::printf("\nper-band projections (width-64 bands):\n");
  for (int lo = 0; lo < 256; lo += 64) {
    int hi = lo + 63;
    Region band = study.BandRegion(static_cast<uint8_t>(lo),
                                   static_cast<uint8_t>(hi));
    if (band.Empty()) {
      std::printf("  band %3d-%3d: empty\n", lo, hi);
      continue;
    }
    auto data = study.Extract(band).MoveValue();
    auto image = qbism::viz::RenderMipDataRegion(data, Camera{0.6, 0.4, 256});
    std::string path = "render_band_" + std::to_string(lo) + ".ppm";
    QBISM_CHECK_OK(image.WritePpm(path));
    std::printf("  band %3d-%3d: %9llu voxels in %7zu runs -> %s\n", lo, hi,
                static_cast<unsigned long long>(band.VoxelCount()),
                band.RunCount(), path.c_str());
  }

  // Cutting planes through the study (the §2.1 scenario step).
  std::printf("\ncutting planes:\n");
  for (int axis = 0; axis < 3; ++axis) {
    auto slice = qbism::viz::RenderSlice(study, axis, 64).MoveValue();
    std::string path = "render_slice_" + std::string(1, "xyz"[axis]) + ".ppm";
    QBISM_CHECK_OK(slice.WritePpm(path));
    std::printf("  %s (%.1f%% lit)\n", path.c_str(),
                100 * slice.NonBlackFraction());
  }

  // Smooth iso-surface of the activity level set (marching tetrahedra).
  std::printf("\niso-surface of the 140-intensity level set:\n");
  auto iso = qbism::viz::ExtractIsoSurface(study, 140.0);
  if (iso.TriangleCount() > 0) {
    auto image = qbism::viz::RenderMesh(iso, Camera{0.6, 0.4, 384}, grid);
    QBISM_CHECK_OK(image.WritePpm("render_isosurface.ppm"));
    std::printf("  %zu smooth triangles -> render_isosurface.ppm\n",
                iso.TriangleCount());
  }

  // Surface extraction + textured rendering of the brightest blob.
  std::printf("\nsurface of the high-activity region:\n");
  Region bright = study.BandRegion(160, 255).WithMinGap(16);
  if (!bright.Empty()) {
    auto mesh = qbism::viz::ExtractSurface(bright);
    auto image = qbism::viz::RenderMesh(mesh, Camera{0.6, 0.4, 384}, grid,
                                        &study);
    QBISM_CHECK_OK(image.WritePpm("render_hotspot_surface.ppm"));
    std::printf("  %zu triangles -> render_hotspot_surface.ppm\n",
                mesh.TriangleCount());
  }
  std::printf("\nDone. View the .ppm files with any image viewer.\n");
  return 0;
}
