#include <gtest/gtest.h>

#include "common/macros.h"
#include "qbism/spatial_extension.h"
#include "region/encoded_ops.h"

namespace qbism {
namespace {

using curve::CurveKind;
using geometry::Vec3i;
using region::GridSpec;
using region::Region;
using region::RegionEncoding;
using sql::Value;
using volume::DataRegion;
using volume::Volume;

/// End-to-end coverage of encoded-domain query execution: with regions
/// stored elias-deltas, set-op chains run on the γ-coded streams and
/// pass ENCODED_REGION values between UDFs; results must match a
/// naive-runs (always-materialized) configuration exactly.
class EncodedQueryTest : public ::testing::Test {
 protected:
  EncodedQueryTest() {
    SpatialConfig config;
    config.grid = GridSpec{3, 5};  // 32^3
    config.region_encoding = RegionEncoding::kEliasDeltas;
    auto ext = SpatialExtension::Install(&db_, config);
    QBISM_CHECK(ext.ok());
    ext_ = ext.MoveValue();
  }

  Region Box(int lo, int hi) {
    return Region::FromBox(
        ext_->config().grid, CurveKind::kHilbert,
        {{lo, lo, lo}, {hi, hi, hi}});
  }

  void StoreTwoRegions(const Region& a, const Region& b) {
    ASSERT_TRUE(db_.Execute("create table r (id int, reg longfield)").ok());
    ASSERT_TRUE(
        db_.Insert("r", {Value::Int(1),
                         Value::LongField(ext_->StoreRegion(a).MoveValue())})
            .ok());
    ASSERT_TRUE(
        db_.Insert("r", {Value::Int(2),
                         Value::LongField(ext_->StoreRegion(b).MoveValue())})
            .ok());
  }

  sql::Database db_;
  std::unique_ptr<SpatialExtension> ext_;
};

TEST_F(EncodedQueryTest, SetOpsOnStoredEliasRegionsStayEncoded) {
  Region a = Box(0, 15);
  Region b = Box(8, 23);
  StoreTwoRegions(a, b);
  // The raw UDF result carries an ENCODED_REGION object — the chain
  // never materialized a run list.
  auto result = db_.Execute(
      "select intersection(a.reg, b.reg) from r a, r b "
      "where a.id = 1 and b.id = 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Value& value = result->rows[0][0];
  ASSERT_EQ(value.kind(), Value::Kind::kObject);
  EXPECT_EQ(value.object_type(), sql::kEncodedRegionTypeName);
  auto encoded =
      value.AsObject<region::EncodedRegion>(sql::kEncodedRegionTypeName);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ((*encoded)->Decode().MoveValue(),
            a.IntersectWith(b).MoveValue());
}

TEST_F(EncodedQueryTest, EncodedChainsMatchMaterializedResults) {
  Region a = Box(0, 15);
  Region b = Box(8, 23);
  StoreTwoRegions(a, b);
  auto result = db_.Execute(
      "select voxelcount(intersection(a.reg, b.reg)),"
      " voxelcount(regionunion(a.reg, regiondifference(b.reg, a.reg))),"
      " contains(a.reg, intersection(a.reg, b.reg)),"
      " runcount(regionunion(a.reg, b.reg))"
      " from r a, r b where a.id = 1 and b.id = 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Region inter = a.IntersectWith(b).MoveValue();
  Region uni = a.UnionWith(b).MoveValue();
  EXPECT_EQ(result->rows[0][0].AsInt().value(),
            static_cast<int64_t>(inter.VoxelCount()));
  EXPECT_EQ(result->rows[0][1].AsInt().value(),
            static_cast<int64_t>(uni.VoxelCount()));
  EXPECT_EQ(result->rows[0][2].AsInt().value(), 1);
  EXPECT_EQ(result->rows[0][3].AsInt().value(),
            static_cast<int64_t>(uni.RunCount()));
}

TEST_F(EncodedQueryTest, MixedEncodedAndTransientOperandsFallBack) {
  Region a = Box(0, 15);
  Region b = Box(8, 23);
  StoreTwoRegions(a, b);
  // fullregion() is a transient materialized REGION; mixing it with a
  // stored elias operand must take the decoded path and still be right.
  auto result = db_.Execute(
      "select voxelcount(intersection(a.reg, fullregion())) from r a "
      "where a.id = 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows[0][0].AsInt().value(),
            static_cast<int64_t>(a.VoxelCount()));
}

TEST_F(EncodedQueryTest, ExtractAttachesEncodedPayloadForShipping) {
  Region a = Box(0, 15);
  Region b = Box(8, 23);
  StoreTwoRegions(a, b);
  Volume v = Volume::FromFunction(
      ext_->config().grid, ext_->config().curve,
      [](const Vec3i& p) { return static_cast<uint8_t>(p.x + p.y); });
  ASSERT_TRUE(db_.Execute("create table v (id int, data longfield)").ok());
  ASSERT_TRUE(
      db_.Insert("v", {Value::Int(1),
                       Value::LongField(ext_->StoreVolume(v).MoveValue())})
          .ok());
  auto result = db_.Execute(
      "select extractvoxels(v.data, intersection(a.reg, b.reg)) "
      "from v, r a, r b where v.id = 1 and a.id = 1 and b.id = 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto dr =
      result->rows[0][0].AsObject<DataRegion>(sql::kDataRegionTypeName);
  ASSERT_TRUE(dr.ok());
  Region inter = a.IntersectWith(b).MoveValue();
  EXPECT_EQ((*dr)->region(), inter);
  EXPECT_EQ((*dr)->values(), v.Extract(inter).MoveValue().values());
  // The γ-coded payload of the chain's result rides along, so the
  // answer codec ships it without re-encoding.
  EXPECT_EQ(
      (*dr)->encoded_region(),
      region::EncodeRegion(inter, RegionEncoding::kEliasDeltas).MoveValue());
}

TEST_F(EncodedQueryTest, EncodedRegionArgAcceptedByMaterializingUdfs) {
  Region a = Box(0, 15);
  Region b = Box(8, 23);
  StoreTwoRegions(a, b);
  // mingapregion has no encoded path; it must transparently decode the
  // ENCODED_REGION produced by the nested intersection.
  auto result = db_.Execute(
      "select voxelcount(mingapregion(intersection(a.reg, b.reg), 4)) "
      "from r a, r b where a.id = 1 and b.id = 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Region ref = a.IntersectWith(b).MoveValue().WithMinGap(4);
  EXPECT_EQ(result->rows[0][0].AsInt().value(),
            static_cast<int64_t>(ref.VoxelCount()));
}

TEST_F(EncodedQueryTest, StoreEncodedRegionRoundTrips) {
  Region a = Box(2, 9);
  auto encoded = region::EncodedRegion::FromRegion(a).MoveValue();
  auto field = ext_->StoreEncodedRegion(encoded);
  ASSERT_TRUE(field.ok());
  auto back = ext_->LoadRegion(field.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), a);
}

}  // namespace
}  // namespace qbism
