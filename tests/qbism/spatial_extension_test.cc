#include "qbism/spatial_extension.h"

#include <gtest/gtest.h>

#include "common/macros.h"

namespace qbism {
namespace {

using curve::CurveKind;
using geometry::Vec3i;
using region::GridSpec;
using region::Region;
using region::RegionEncoding;
using sql::Value;
using volume::Volume;

/// Small grid so tests are fast; the extension is grid-agnostic. 32^3
/// spans 8 LFM pages, so page-level assertions are meaningful.
SpatialConfig SmallConfig() {
  SpatialConfig config;
  config.grid = GridSpec{3, 5};  // 32^3
  return config;
}

class SpatialExtensionTest : public ::testing::Test {
 protected:
  SpatialExtensionTest() {
    auto ext = SpatialExtension::Install(&db_, SmallConfig());
    QBISM_CHECK(ext.ok());
    ext_ = ext.MoveValue();
  }

  Volume RampVolume() {
    return Volume::FromFunction(
        ext_->config().grid, ext_->config().curve, [](const Vec3i& p) {
          return static_cast<uint8_t>(p.x * 16 + p.y);
        });
  }

  sql::Database db_;
  std::unique_ptr<SpatialExtension> ext_;
};

TEST_F(SpatialExtensionTest, RegionStoreLoadRoundTripAllEncodings) {
  geometry::Ellipsoid blob({8, 8, 8}, {5, 4, 3});
  Region r = Region::FromShape(ext_->config().grid, CurveKind::kHilbert, blob);
  for (RegionEncoding enc :
       {RegionEncoding::kNaiveRuns, RegionEncoding::kEliasDeltas,
        RegionEncoding::kOctants, RegionEncoding::kOblongOctants}) {
    auto field = ext_->StoreRegionAs(r, enc);
    ASSERT_TRUE(field.ok());
    auto back = ext_->LoadRegion(field.value());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), r) << RegionEncodingToString(enc);
  }
}

TEST_F(SpatialExtensionTest, VolumeStoreLoadRoundTrip) {
  Volume v = RampVolume();
  auto field = ext_->StoreVolume(v).MoveValue();
  auto back = ext_->LoadVolume(field);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->data(), v.data());
}

TEST_F(SpatialExtensionTest, StoreVolumeValidatesGrid) {
  Volume wrong = Volume::FromFunction(GridSpec{3, 4}, CurveKind::kHilbert,
                                      [](const Vec3i&) { return uint8_t{0}; });
  EXPECT_FALSE(ext_->StoreVolume(wrong).ok());
}

TEST_F(SpatialExtensionTest, ExtractFromLongFieldMatchesInMemory) {
  Volume v = RampVolume();
  auto field = ext_->StoreVolume(v).MoveValue();
  Region r = Region::FromBox(ext_->config().grid, CurveKind::kHilbert,
                             {{3, 3, 3}, {10, 10, 10}});
  auto from_disk = ext_->ExtractFromLongField(field, r).MoveValue();
  auto in_memory = v.Extract(r).MoveValue();
  EXPECT_EQ(from_disk.values(), in_memory.values());
}

TEST_F(SpatialExtensionTest, ExtractionPagesBoundedByRegionSpread) {
  Volume v = RampVolume();
  auto field = ext_->StoreVolume(v).MoveValue();
  Region small = Region::FromBox(ext_->config().grid, CurveKind::kHilbert,
                                 {{0, 0, 0}, {3, 3, 3}});
  Region full = Region::Full(ext_->config().grid, CurveKind::kHilbert);
  uint64_t small_pages = ext_->ExtractionPages(field, small).MoveValue();
  uint64_t full_pages = ext_->ExtractionPages(field, full).MoveValue();
  EXPECT_LT(small_pages, full_pages);
  EXPECT_EQ(full_pages, ext_->config().grid.NumCells() / storage::kPageSize);
}

TEST_F(SpatialExtensionTest, UdfIntersectionViaSql) {
  ASSERT_TRUE(db_.Execute("create table r (id int, reg longfield)").ok());
  Region a = Region::FromBox(ext_->config().grid, CurveKind::kHilbert,
                             {{0, 0, 0}, {7, 15, 15}});
  Region b = Region::FromBox(ext_->config().grid, CurveKind::kHilbert,
                             {{4, 0, 0}, {15, 15, 15}});
  auto fa = ext_->StoreRegion(a).MoveValue();
  auto fb = ext_->StoreRegion(b).MoveValue();
  ASSERT_TRUE(db_.Insert("r", {Value::Int(1), Value::LongField(fa)}).ok());
  ASSERT_TRUE(db_.Insert("r", {Value::Int(2), Value::LongField(fb)}).ok());

  auto result = db_.Execute(
      "select voxelcount(intersection(a.reg, b.reg)) from r a, r b "
      "where a.id = 1 and b.id = 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  // Overlap is x in [4,7]: 4 * 16 * 16 voxels.
  EXPECT_EQ(result->rows[0][0].AsInt().value(), 4 * 16 * 16);
}

TEST_F(SpatialExtensionTest, UdfContainsAndCounts) {
  ASSERT_TRUE(db_.Execute("create table r (id int, reg longfield)").ok());
  Region big = Region::FromBox(ext_->config().grid, CurveKind::kHilbert,
                               {{0, 0, 0}, {15, 15, 15}});
  Region small = Region::FromBox(ext_->config().grid, CurveKind::kHilbert,
                                 {{2, 2, 2}, {5, 5, 5}});
  ASSERT_TRUE(db_.Insert("r", {Value::Int(1),
                               Value::LongField(ext_->StoreRegion(big)
                                                    .MoveValue())})
                  .ok());
  ASSERT_TRUE(db_.Insert("r", {Value::Int(2),
                               Value::LongField(ext_->StoreRegion(small)
                                                    .MoveValue())})
                  .ok());
  auto result = db_.Execute(
      "select contains(a.reg, b.reg), contains(b.reg, a.reg),"
      " runcount(b.reg) from r a, r b where a.id = 1 and b.id = 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows[0][0].AsInt().value(), 1);
  EXPECT_EQ(result->rows[0][1].AsInt().value(), 0);
  EXPECT_GT(result->rows[0][2].AsInt().value(), 0);
}

TEST_F(SpatialExtensionTest, UdfUnionDifferenceCompose) {
  ASSERT_TRUE(db_.Execute("create table r (id int, reg longfield)").ok());
  Region a = Region::FromBox(ext_->config().grid, CurveKind::kHilbert,
                             {{0, 0, 0}, {7, 7, 7}});
  Region b = Region::FromBox(ext_->config().grid, CurveKind::kHilbert,
                             {{4, 4, 4}, {11, 11, 11}});
  ASSERT_TRUE(db_.Insert("r", {Value::Int(1),
                               Value::LongField(
                                   ext_->StoreRegion(a).MoveValue())})
                  .ok());
  ASSERT_TRUE(db_.Insert("r", {Value::Int(2),
                               Value::LongField(
                                   ext_->StoreRegion(b).MoveValue())})
                  .ok());
  auto result = db_.Execute(
      "select voxelcount(regionunion(a.reg, b.reg)),"
      " voxelcount(regiondifference(a.reg, b.reg))"
      " from r a, r b where a.id = 1 and b.id = 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  int64_t u = result->rows[0][0].AsInt().value();
  int64_t d = result->rows[0][1].AsInt().value();
  EXPECT_EQ(u, 512 + 512 - 64);  // |A| + |B| - |A ∩ B|
  EXPECT_EQ(d, 512 - 64);
}

TEST_F(SpatialExtensionTest, UdfExtractAndMeanViaSql) {
  ASSERT_TRUE(db_.Execute("create table v (id int, data longfield)").ok());
  Volume v = Volume::FromFunction(ext_->config().grid, CurveKind::kHilbert,
                                  [](const Vec3i&) { return uint8_t{40}; });
  auto field = ext_->StoreVolume(v).MoveValue();
  ASSERT_TRUE(db_.Insert("v", {Value::Int(1), Value::LongField(field)}).ok());
  auto result = db_.Execute(
      "select meanintensity(extractvoxels(data,"
      " boxregion(0, 0, 0, 3, 3, 3))) from v where id = 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result->rows[0][0].AsDouble().value(), 40.0);
}

TEST_F(SpatialExtensionTest, UdfBandRegion) {
  ASSERT_TRUE(db_.Execute("create table v (id int, data longfield)").ok());
  Volume v = Volume::FromFunction(
      ext_->config().grid, CurveKind::kHilbert, [](const Vec3i& p) {
        return static_cast<uint8_t>(p.z >= 16 ? 200 : 10);
      });
  ASSERT_TRUE(db_.Insert("v", {Value::Int(1),
                               Value::LongField(
                                   ext_->StoreVolume(v).MoveValue())})
                  .ok());
  auto result = db_.Execute(
      "select voxelcount(bandregion(data, 128, 255)) from v where id = 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows[0][0].AsInt().value(),
            static_cast<int64_t>(ext_->config().grid.NumCells() / 2));
  // Bad ranges rejected.
  EXPECT_FALSE(
      db_.Execute("select bandregion(data, 200, 100) from v").ok());
  EXPECT_FALSE(
      db_.Execute("select bandregion(data, 0, 300) from v").ok());
}

TEST_F(SpatialExtensionTest, UdfFullRegion) {
  ASSERT_TRUE(db_.Execute("create table t (x int)").ok());
  ASSERT_TRUE(db_.Execute("insert into t values (1)").ok());
  auto result = db_.Execute("select voxelcount(fullregion()) from t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt().value(),
            static_cast<int64_t>(ext_->config().grid.NumCells()));
}

TEST_F(SpatialExtensionTest, ArityAndTypeErrorsSurface) {
  ASSERT_TRUE(db_.Execute("create table t (x int)").ok());
  ASSERT_TRUE(db_.Execute("insert into t values (1)").ok());
  EXPECT_FALSE(db_.Execute("select intersection(fullregion()) from t").ok());
  EXPECT_FALSE(db_.Execute("select voxelcount(x) from t").ok());
  EXPECT_FALSE(db_.Execute("select boxregion(1, 2, 3) from t").ok());
}

TEST_F(SpatialExtensionTest, DataRegionStoreLoadRoundTrip) {
  Volume v = RampVolume();
  geometry::Ellipsoid blob({16, 16, 16}, {9, 7, 8});
  Region r = Region::FromShape(ext_->config().grid, CurveKind::kHilbert, blob);
  volume::DataRegion dr = v.Extract(r).MoveValue();
  auto field = ext_->StoreDataRegion(dr);
  ASSERT_TRUE(field.ok()) << field.status().ToString();
  auto back = ext_->LoadDataRegion(field.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->region(), dr.region());
  EXPECT_EQ(back->values(), dr.values());
}

TEST_F(SpatialExtensionTest, LoadDataRegionDetectsCorruption) {
  auto short_field = db_.lfm()->Create({1, 2}).MoveValue();
  EXPECT_TRUE(ext_->LoadDataRegion(short_field).status().IsCorruption());
  // Valid header claiming more region bytes than present.
  auto truncated = db_.lfm()->Create({0, 0xFF, 0xFF, 0, 0, 1, 2}).MoveValue();
  EXPECT_FALSE(ext_->LoadDataRegion(truncated).ok());
}

TEST_F(SpatialExtensionTest, ApproximationUdfs) {
  ASSERT_TRUE(db_.Execute("create table r2 (id int, reg longfield)").ok());
  geometry::Ellipsoid blob({16, 16, 16}, {10, 8, 9});
  Region r = Region::FromShape(ext_->config().grid, CurveKind::kHilbert, blob);
  ASSERT_TRUE(db_.Insert("r2", {Value::Int(1),
                                Value::LongField(
                                    ext_->StoreRegion(r).MoveValue())})
                  .ok());
  auto result = db_.Execute(
      "select runcount(reg), runcount(mingapregion(reg, 8)),"
      " octantcount(reg), oblongoctantcount(reg),"
      " voxelcount(minoctantregion(reg, 1)),"
      " contains(minoctantregion(reg, 1), reg)"
      " from r2 where id = 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& row = result->rows[0];
  EXPECT_LE(row[1].AsInt().value(), row[0].AsInt().value());  // fewer runs
  EXPECT_GE(row[2].AsInt().value(), row[3].AsInt().value());  // oct >= oblong
  EXPECT_GE(row[4].AsInt().value(),
            static_cast<int64_t>(r.VoxelCount()));  // superset
  EXPECT_EQ(row[5].AsInt().value(), 1);             // contains original
  // Validation.
  EXPECT_FALSE(db_.Execute("select mingapregion(reg, 0) from r2").ok());
  EXPECT_FALSE(db_.Execute("select minoctantregion(reg, 99) from r2").ok());
}

TEST_F(SpatialExtensionTest, LoadRegionDetectsGarbage) {
  auto field = db_.lfm()->Create({0x7F, 1, 2, 3}).MoveValue();
  EXPECT_FALSE(ext_->LoadRegion(field).ok());
}

TEST_F(SpatialExtensionTest, VectoredExtractMatchesSerialAcrossShapes) {
  Volume v = RampVolume();
  auto field = ext_->StoreVolume(v).MoveValue();
  const GridSpec& grid = ext_->config().grid;
  std::vector<Region> shapes = {
      Region::FromBox(grid, CurveKind::kHilbert, {{3, 3, 3}, {10, 10, 10}}),
      Region::FromShape(grid, CurveKind::kHilbert,
                        geometry::Ellipsoid({16, 16, 16}, {10, 6, 4})),
      Region::Full(grid, CurveKind::kHilbert),
      Region::FromBox(grid, CurveKind::kHilbert, {{0, 0, 0}, {0, 0, 0}}),
  };
  for (const Region& r : shapes) {
    auto vectored = ext_->ExtractFromLongField(field, r);
    auto serial = ext_->ExtractFromLongFieldSerial(field, r);
    ASSERT_TRUE(vectored.ok()) << vectored.status().ToString();
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(vectored->values(), serial->values());
    EXPECT_EQ(vectored->values(), v.Extract(r).MoveValue().values());
  }
}

TEST_F(SpatialExtensionTest, VectoredExtractReadsNoMorePagesThanSerial) {
  Volume v = RampVolume();
  auto field = ext_->StoreVolume(v).MoveValue();
  // A sparse region: many short runs scattered over the curve, the shape
  // where per-run reads pay one page per run.
  Region r = Region::FromShape(ext_->config().grid, CurveKind::kHilbert,
                               geometry::Ellipsoid({16, 16, 16}, {14, 2, 2}));
  storage::DiskDevice* device = db_.lfm()->device();
  storage::IoStats before = device->stats();
  ASSERT_TRUE(ext_->ExtractFromLongFieldSerial(field, r).ok());
  uint64_t serial_pages = (device->stats() - before).pages_read;
  before = device->stats();
  ASSERT_TRUE(ext_->ExtractFromLongField(field, r).ok());
  uint64_t vectored_pages = (device->stats() - before).pages_read;
  EXPECT_LE(vectored_pages, serial_pages);
  // And never more than the planner's own upper bound, the per-run sum.
  uint64_t demanded = ext_->ExtractionPages(field, r).MoveValue();
  EXPECT_LE(vectored_pages, demanded);
}

TEST_F(SpatialExtensionTest, StreamingBandRegionMatchesAndBoundsPages) {
  Volume v = Volume::FromFunction(
      ext_->config().grid, CurveKind::kHilbert, [](const Vec3i& p) {
        return static_cast<uint8_t>((p.x * 7 + p.y * 3 + p.z) & 0xFF);
      });
  auto field = ext_->StoreVolume(v).MoveValue();
  storage::DiskDevice* device = db_.lfm()->device();
  storage::IoStats before = device->stats();
  auto banded = ext_->BandRegionFromField(field, 64, 191);
  storage::IoStats delta = device->stats() - before;
  ASSERT_TRUE(banded.ok()) << banded.status().ToString();
  EXPECT_EQ(banded.value(), v.BandRegion(64, 191));
  // The streaming scan touches each of the volume's pages exactly once —
  // it must not fall back to materializing through LoadVolume (which
  // would read the same pages but hold NumCells bytes) or re-read pages.
  EXPECT_EQ(delta.pages_read,
            ext_->config().grid.NumCells() / storage::kPageSize);
}

TEST_F(SpatialExtensionTest, UdfBandRegionStreamsOverTheStoredVolume) {
  ASSERT_TRUE(db_.Execute("create table v (id int, data longfield)").ok());
  Volume v = Volume::FromFunction(
      ext_->config().grid, CurveKind::kHilbert, [](const Vec3i& p) {
        return static_cast<uint8_t>(p.x * 16 + p.z);
      });
  ASSERT_TRUE(db_.Insert("v", {Value::Int(1),
                               Value::LongField(
                                   ext_->StoreVolume(v).MoveValue())})
                  .ok());
  ExtractorStatsSnapshot before = ext_->extractor()->stats();
  auto result = db_.Execute(
      "select voxelcount(bandregion(data, 100, 200)) from v where id = 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows[0][0].AsInt().value(),
            static_cast<int64_t>(v.BandRegion(100, 200).VoxelCount()));
  // The UDF went through the chunked scan path, not LoadVolume.
  ExtractorStatsSnapshot delta = ext_->extractor()->stats() - before;
  EXPECT_EQ(delta.scans, 1u);
}

TEST_F(SpatialExtensionTest, UdfVolumeMean) {
  ASSERT_TRUE(db_.Execute("create table v (id int, data longfield)").ok());
  Volume v = RampVolume();
  ASSERT_TRUE(db_.Insert("v", {Value::Int(1),
                               Value::LongField(
                                   ext_->StoreVolume(v).MoveValue())})
                  .ok());
  double sum = 0.0;
  for (uint8_t b : v.data()) sum += b;
  auto result = db_.Execute("select volumemean(data) from v where id = 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result->rows[0][0].AsDouble().value(),
                   sum / static_cast<double>(v.data().size()));
  EXPECT_FALSE(db_.Execute("select volumemean(1) from v").ok());
}

}  // namespace
}  // namespace qbism
