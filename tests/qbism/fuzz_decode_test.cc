// Decode fuzzing: every deserializer in the system must handle
// arbitrary bytes by returning a Status (or a valid object), never by
// crashing or reading out of bounds. Stored data is the trust boundary
// of a DBMS; a corrupt long field must surface as Corruption, not UB.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "qbism/spatial_extension.h"
#include "region/encoding.h"
#include "sql/parser.h"
#include "viz/mesh.h"

namespace qbism {
namespace {

using curve::CurveKind;
using region::GridSpec;
using region::RegionEncoding;

std::vector<uint8_t> RandomBytes(Rng* rng, size_t max_len) {
  std::vector<uint8_t> bytes(rng->NextBounded(max_len + 1));
  for (auto& b : bytes) b = static_cast<uint8_t>(rng->Next());
  return bytes;
}

TEST(FuzzDecodeTest, RegionDecodersNeverCrash) {
  Rng rng(101);
  const GridSpec grid{3, 5};
  for (int trial = 0; trial < 3000; ++trial) {
    auto bytes = RandomBytes(&rng, 200);
    for (RegionEncoding enc :
         {RegionEncoding::kNaiveRuns, RegionEncoding::kEliasDeltas,
          RegionEncoding::kOctants, RegionEncoding::kOblongOctants}) {
      auto result = region::DecodeRegion(grid, CurveKind::kHilbert, enc,
                                         bytes);
      if (result.ok()) {
        // Whatever decoded must satisfy the canonical invariants.
        const auto& runs = result->runs();
        for (size_t i = 0; i < runs.size(); ++i) {
          ASSERT_LE(runs[i].start, runs[i].end);
          ASSERT_LT(runs[i].end, grid.NumCells());
        }
      }
    }
  }
}

TEST(FuzzDecodeTest, MeshDeserializeNeverCrashes) {
  Rng rng(102);
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = RandomBytes(&rng, 300);
    auto mesh = viz::TriangleMesh::Deserialize(bytes);
    if (mesh.ok()) {
      for (const auto& t : mesh->triangles) {
        for (uint32_t idx : t) ASSERT_LT(idx, mesh->VertexCount());
      }
    }
  }
}

TEST(FuzzDecodeTest, ValueDeserializeNeverCrashes) {
  Rng rng(103);
  for (int trial = 0; trial < 5000; ++trial) {
    auto bytes = RandomBytes(&rng, 64);
    size_t pos = 0;
    while (pos < bytes.size()) {
      auto value = sql::Value::DeserializeFrom(bytes, &pos);
      if (!value.ok()) break;
    }
  }
}

TEST(FuzzDecodeTest, LongFieldRegionAndDataRegionLoaders) {
  sql::Database db;
  SpatialConfig config;
  config.grid = GridSpec{3, 4};
  auto ext = SpatialExtension::Install(&db, config).MoveValue();
  Rng rng(104);
  for (int trial = 0; trial < 500; ++trial) {
    auto field = db.lfm()->Create(RandomBytes(&rng, 150)).MoveValue();
    auto region = ext->LoadRegion(field);
    auto data_region = ext->LoadDataRegion(field);
    // No crash; OK results must be internally consistent.
    if (data_region.ok()) {
      EXPECT_EQ(data_region->values().size(),
                data_region->region().VoxelCount());
    }
    (void)region;
  }
}

TEST(FuzzDecodeTest, SqlParserNeverCrashesOnGarbage) {
  Rng rng(105);
  const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 ()*,.'=<>+-/\n_";
  for (int trial = 0; trial < 5000; ++trial) {
    std::string sql;
    size_t len = rng.NextBounded(120);
    for (size_t i = 0; i < len; ++i) {
      sql += alphabet[rng.NextBounded(sizeof(alphabet) - 1)];
    }
    auto statement = sql::ParseStatement(sql);
    (void)statement;  // either parses or errors; never crashes
  }
}

TEST(FuzzDecodeTest, MutatedValidRegionsEitherFailOrStayCanonical) {
  // Bit-flip corruption of genuinely valid encodings.
  Rng rng(106);
  const GridSpec grid{3, 4};
  geometry::Ellipsoid blob({8, 8, 8}, {5, 4, 3});
  auto region = region::Region::FromShape(grid, CurveKind::kHilbert, blob);
  for (RegionEncoding enc :
       {RegionEncoding::kNaiveRuns, RegionEncoding::kEliasDeltas,
        RegionEncoding::kOctants, RegionEncoding::kOblongOctants}) {
    auto bytes = region::EncodeRegion(region, enc).MoveValue();
    for (int trial = 0; trial < 500; ++trial) {
      auto mutated = bytes;
      size_t flips = 1 + rng.NextBounded(4);
      for (size_t f = 0; f < flips; ++f) {
        mutated[rng.NextBounded(mutated.size())] ^=
            static_cast<uint8_t>(1u << rng.NextBounded(8));
      }
      auto result = region::DecodeRegion(grid, CurveKind::kHilbert, enc,
                                         mutated);
      if (result.ok()) {
        const auto& runs = result->runs();
        for (size_t i = 0; i < runs.size(); ++i) {
          ASSERT_LE(runs[i].start, runs[i].end);
          ASSERT_LT(runs[i].end, grid.NumCells());
          if (i > 0) {
            ASSERT_GT(runs[i].start, runs[i - 1].end + 1);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace qbism
