// Crash recovery (docs/DURABILITY.md): clone the platters at a crash
// point, rebuild a fresh database over the surviving bytes, replay the
// WAL, and require that every committed ingest is visible byte-for-byte
// while every uncommitted one left no trace — including a kill at every
// single page-transfer site of an in-flight ingest, on the data device
// and on the log device.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "med/loader.h"
#include "med/schema.h"
#include "qbism/ingest.h"
#include "qbism/spatial_extension.h"
#include "sql/database.h"
#include "storage/disk_device.h"
#include "storage/fault_plan.h"

namespace qbism {
namespace {

constexpr int kGridOrder = 3;
constexpr int kGridMaxLevel = 5;

sql::DatabaseOptions WalOptions() {
  sql::DatabaseOptions dbo;
  dbo.relational_pages = 1 << 10;
  dbo.long_field_pages = 1 << 10;
  dbo.buffer_pool_pages = 64;
  dbo.enable_wal = true;
  dbo.wal_pages = 1 << 9;
  return dbo;
}

struct World {
  sql::Database db;
  std::unique_ptr<SpatialExtension> ext;
  std::unique_ptr<IngestManager> ingest;

  World() : db(WalOptions()) {}
};

Result<std::shared_ptr<World>> BuildWorld() {
  auto world = std::make_shared<World>();
  SpatialConfig config;
  config.grid = region::GridSpec{kGridOrder, kGridMaxLevel};
  QBISM_ASSIGN_OR_RETURN(world->ext,
                         SpatialExtension::Install(&world->db, config));
  QBISM_RETURN_NOT_OK(med::BootstrapSchema(&world->db));
  world->ingest = std::make_unique<IngestManager>(world->ext.get());
  return world;
}

/// A small deterministic study: distinct seeds produce distinct bytes,
/// so byte-identity across recovery is a real check.
med::StudyRecord MakeRecord(int study_id, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data(24 * 24 * 12);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  med::StudyRecord record;
  record.study_id = study_id;
  record.patient_id = 100 + study_id;
  record.date = "1993-07-01";
  record.modality = "PET";
  record.raw = warp::RawVolume::Create(24, 24, 12, std::move(data)).value();
  record.warp_seed = seed;
  record.band_width = 64;
  return record;
}

/// What a power failure preserves: the LFM and WAL platters. The
/// relational device is deliberately absent — its rows are rebuilt
/// entirely from the log, which is the stronger recovery claim.
struct CrashImage {
  std::vector<uint8_t> lfm;
  std::vector<uint8_t> wal;
};

CrashImage Snapshot(World* world) {
  return CrashImage{world->db.long_field_device()->CloneContents(),
                    world->db.wal_device()->CloneContents()};
}

Result<std::shared_ptr<World>> RecoverWorld(const CrashImage& image,
                                            sql::RecoveryStats* stats_out) {
  QBISM_ASSIGN_OR_RETURN(std::shared_ptr<World> world, BuildWorld());
  QBISM_RETURN_NOT_OK(
      world->db.long_field_device()->RestoreContents(image.lfm));
  QBISM_RETURN_NOT_OK(world->db.wal_device()->RestoreContents(image.wal));
  QBISM_ASSIGN_OR_RETURN(sql::RecoveryStats stats, world->db.Recover());
  if (stats_out != nullptr) *stats_out = stats;
  return world;
}

/// Committed-implies-visible: the study's raw bytes round-trip exactly.
Status ExpectStudyIntact(World* world, const med::StudyRecord& record) {
  QBISM_ASSIGN_OR_RETURN(warp::RawVolume raw,
                         med::LoadRawVolume(world->ext.get(), record.study_id));
  if (raw.data() != record.raw.data()) {
    return Status::Internal("study " + std::to_string(record.study_id) +
                            " recovered with different bytes");
  }
  return Status::OK();
}

TEST(CrashRecoveryTest, CommittedIngestSurvivesCrash) {
  auto world = BuildWorld().MoveValue();
  med::StudyRecord a = MakeRecord(1, 11);
  med::StudyRecord b = MakeRecord(2, 22);
  ASSERT_TRUE(world->ingest->IngestStudy(a).ok());
  ASSERT_TRUE(world->ingest->IngestStudy(b).ok());

  sql::RecoveryStats stats;
  auto recovered = RecoverWorld(Snapshot(world.get()), &stats).MoveValue();
  EXPECT_EQ(stats.committed_txns, 2u);
  EXPECT_GE(stats.lfm_sets, 4u);  // raw + warped + bands, per study
  EXPECT_GT(stats.rows_inserted, 0u);
  EXPECT_FALSE(stats.torn_tail);
  ASSERT_TRUE(ExpectStudyIntact(recovered.get(), a).ok());
  ASSERT_TRUE(ExpectStudyIntact(recovered.get(), b).ok());
  ASSERT_TRUE(recovered->db.lfm()->CheckPageAccounting().ok());

  // The recovered world is live: it accepts further ingests.
  ASSERT_TRUE(recovered->ingest->IngestStudy(MakeRecord(3, 33)).ok());
}

TEST(CrashRecoveryTest, CommittedReplaceRecoversNewContentOnly) {
  auto world = BuildWorld().MoveValue();
  med::StudyRecord a = MakeRecord(1, 11);
  med::StudyRecord a2 = MakeRecord(1, 99);  // same id, different bytes
  ASSERT_TRUE(world->ingest->IngestStudy(a).ok());
  ASSERT_TRUE(world->ingest->ReplaceStudy(a2).ok());

  auto recovered =
      RecoverWorld(Snapshot(world.get()), /*stats_out=*/nullptr).MoveValue();
  ASSERT_TRUE(ExpectStudyIntact(recovered.get(), a2).ok());
  // Exactly one row set survives — the replace's deletes replayed too.
  auto rows = recovered->db
                  .Execute("select studyId from rawVolume where studyId = 1")
                  .MoveValue();
  EXPECT_EQ(rows.rows.size(), 1u);
  ASSERT_TRUE(recovered->db.lfm()->CheckPageAccounting().ok());
}

TEST(CrashRecoveryTest, UncommittedIngestLeavesNoTrace) {
  auto world = BuildWorld().MoveValue();
  med::StudyRecord a = MakeRecord(1, 11);
  ASSERT_TRUE(world->ingest->IngestStudy(a).ok());

  // The data device dies mid-ingest of study 2; the transaction aborts.
  world->db.long_field_device()->InstallFaultPlan(
      storage::FaultPlan::FailAtTransfer(2,
                                         storage::FaultDurability::kPersistent));
  ASSERT_FALSE(world->ingest->IngestStudy(MakeRecord(2, 22)).ok());
  world->db.long_field_device()->ClearFault();

  auto recovered =
      RecoverWorld(Snapshot(world.get()), /*stats_out=*/nullptr).MoveValue();
  ASSERT_TRUE(ExpectStudyIntact(recovered.get(), a).ok());
  EXPECT_TRUE(med::LoadRawVolume(recovered->ext.get(), 2).status().IsNotFound());
  ASSERT_TRUE(recovered->db.lfm()->CheckPageAccounting().ok());
}

TEST(CrashRecoveryTest, FailedReplaceRecoversTheOriginalStudy) {
  auto world = BuildWorld().MoveValue();
  med::StudyRecord a = MakeRecord(1, 11);
  ASSERT_TRUE(world->ingest->IngestStudy(a).ok());

  // The log volume dies at the replace's commit sync: the swap must be
  // withdrawn. In memory the study is quarantined (its eager row
  // deletes diverged from the durable state)...
  world->db.wal_device()->InstallFaultPlan(
      storage::FaultPlan::FailAtTransfer(0,
                                         storage::FaultDurability::kPersistent));
  ASSERT_FALSE(world->ingest->ReplaceStudy(MakeRecord(1, 99)).ok());
  world->db.wal_device()->ClearFault();
  EXPECT_FALSE(world->ingest->IsVisible(1));
  EXPECT_EQ(world->ingest->stats().quarantined, 1u);

  // ...but recovery restores exactly the original committed study.
  auto recovered =
      RecoverWorld(Snapshot(world.get()), /*stats_out=*/nullptr).MoveValue();
  ASSERT_TRUE(ExpectStudyIntact(recovered.get(), a).ok());
  EXPECT_TRUE(recovered->ingest->IsVisible(1));
  ASSERT_TRUE(recovered->db.lfm()->CheckPageAccounting().ok());
}

TEST(CrashRecoveryTest, VacuumedAndReusedPagesDoNotFailReplay) {
  // Replace the same study repeatedly with Vacuum between: the retired
  // versions' pages are freed and reused by the later versions, so at
  // crash time the platter bytes of the superseded WAL Sets are gone.
  // Replay must verify content only against each field's final record —
  // a regression test for recovery spuriously reporting Corruption on
  // any log with vacuumed history.
  auto world = BuildWorld().MoveValue();
  med::StudyRecord last;
  ASSERT_TRUE(world->ingest->IngestStudy(MakeRecord(1, 11)).ok());
  for (uint64_t round = 0; round < 4; ++round) {
    last = MakeRecord(1, 100 + round);
    ASSERT_TRUE(world->ingest->ReplaceStudy(last).ok());
    world->ingest->Vacuum();
  }

  sql::RecoveryStats stats;
  auto recovered = RecoverWorld(Snapshot(world.get()), &stats).MoveValue();
  EXPECT_EQ(stats.committed_txns, 5u);
  ASSERT_TRUE(ExpectStudyIntact(recovered.get(), last).ok());
  ASSERT_TRUE(recovered->db.lfm()->CheckPageAccounting().ok());
}

// ---------------------------------------------------------------------
// The adversarial matrix: one crash per page-transfer site. A clean run
// enumerates every transfer the ingest of study B performs on the data
// device and on the log device; each point then re-runs the pipeline in
// a fresh world with a persistent fault at exactly that transfer,
// "crashes" (clones the platters), recovers, and asserts the invariant
// pair: committed study A is byte-identical, study B left no trace.

struct MatrixOutcome {
  uint64_t points = 0;
  uint64_t ingest_failures = 0;
};

Result<MatrixOutcome> RunCrashMatrix(bool fault_log_device) {
  med::StudyRecord a = MakeRecord(1, 11);
  med::StudyRecord b = MakeRecord(2, 22);

  // Clean run: count study B's transfers on the chosen device.
  QBISM_ASSIGN_OR_RETURN(std::shared_ptr<World> world, BuildWorld());
  QBISM_RETURN_NOT_OK(world->ingest->IngestStudy(a));
  storage::DiskDevice* device = fault_log_device
                                    ? world->db.wal_device()
                                    : world->db.long_field_device();
  storage::FaultStats before = device->fault_stats();
  QBISM_RETURN_NOT_OK(world->ingest->IngestStudy(b));
  uint64_t transfers = (device->fault_stats() - before).transfers;
  if (transfers == 0) {
    return Status::Internal("clean ingest performed no transfers");
  }

  MatrixOutcome outcome;
  for (uint64_t point = 0; point < transfers; ++point) {
    QBISM_ASSIGN_OR_RETURN(world, BuildWorld());
    QBISM_RETURN_NOT_OK(world->ingest->IngestStudy(a));
    device = fault_log_device ? world->db.wal_device()
                              : world->db.long_field_device();
    device->InstallFaultPlan(storage::FaultPlan::FailAtTransfer(
        point, storage::FaultDurability::kPersistent));
    Status status = world->ingest->IngestStudy(b);
    device->ClearFault();
    if (status.ok()) {
      return Status::Internal("ingest survived a persistent fault at site " +
                              std::to_string(point));
    }
    ++outcome.ingest_failures;

    // Crash here: only the platters survive.
    sql::RecoveryStats stats;
    QBISM_ASSIGN_OR_RETURN(std::shared_ptr<World> recovered,
                           RecoverWorld(Snapshot(world.get()), &stats));
    if (stats.committed_txns != 1) {
      return Status::Internal("site " + std::to_string(point) + ": expected 1 "
                              "committed txn, replayed " +
                              std::to_string(stats.committed_txns));
    }
    QBISM_RETURN_NOT_OK(ExpectStudyIntact(recovered.get(), a));
    if (!med::LoadRawVolume(recovered->ext.get(), 2).status().IsNotFound()) {
      return Status::Internal("site " + std::to_string(point) +
                              ": uncommitted study 2 visible after recovery");
    }
    QBISM_RETURN_NOT_OK(recovered->db.lfm()->CheckPageAccounting());
    ++outcome.points;
  }
  return outcome;
}

TEST(CrashRecoveryTest, KillAtEveryDataDeviceTransferSite) {
  auto outcome = RunCrashMatrix(/*fault_log_device=*/false);
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_GT(outcome->points, 0u);
  EXPECT_EQ(outcome->points, outcome->ingest_failures);
}

TEST(CrashRecoveryTest, KillAtEveryLogDeviceTransferSite) {
  auto outcome = RunCrashMatrix(/*fault_log_device=*/true);
  ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  EXPECT_GT(outcome->points, 0u);
  EXPECT_EQ(outcome->points, outcome->ingest_failures);
}

}  // namespace
}  // namespace qbism
