#include "qbism/parallel_extractor.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/task_pool.h"
#include "storage/fault_plan.h"

namespace qbism {
namespace {

using storage::ByteRange;
using storage::DiskDevice;
using storage::FaultPlan;
using storage::kPageSize;
using storage::LongFieldId;
using storage::LongFieldManager;

/// A field of pseudo-random bytes plus the oracle copy.
struct TestField {
  std::vector<uint8_t> bytes;
  LongFieldId id;
};

TestField MakeField(LongFieldManager* lfm, size_t size, uint64_t seed) {
  TestField f;
  Rng rng(seed);
  f.bytes.resize(size);
  for (auto& b : f.bytes) b = static_cast<uint8_t>(rng.Next());
  f.id = lfm->Create(f.bytes).MoveValue();
  return f;
}

/// What ExtractBytes must return: the ranges' bytes concatenated.
std::vector<uint8_t> Oracle(const TestField& f,
                            const std::vector<ByteRange>& ranges) {
  std::vector<uint8_t> out;
  for (const ByteRange& r : ranges) {
    out.insert(out.end(), f.bytes.begin() + static_cast<ptrdiff_t>(r.offset),
               f.bytes.begin() + static_cast<ptrdiff_t>(r.offset + r.length));
  }
  return out;
}

/// Random sorted disjoint range list over [0, size).
std::vector<ByteRange> RandomRanges(Rng* rng, uint64_t size) {
  std::vector<ByteRange> ranges;
  uint64_t cursor = rng->Next() % (kPageSize / 2);
  while (cursor < size) {
    uint64_t len = 1 + rng->Next() % (3 * kPageSize);
    if (cursor + len > size) len = size - cursor;
    if (len > 0) ranges.push_back({cursor, len});
    cursor += len + 1 + rng->Next() % (2 * kPageSize);
  }
  return ranges;
}

TEST(ParallelExtractorTest, MatchesOracleAcrossShapesSerial) {
  DiskDevice device(1024);
  LongFieldManager lfm(&device);
  ParallelExtractor extractor(&lfm);
  TestField f = MakeField(&lfm, 100 * kPageSize + 123, 1);

  std::vector<std::vector<ByteRange>> shapes = {
      {},                                  // empty region
      {{0, f.bytes.size()}},               // full field (one run)
      {{0, 1}},                            // single voxel at start
      {{f.bytes.size() - 1, 1}},           // single voxel at field end
      {{kPageSize - 1, 2}},                // page-straddling pair
      {{0, kPageSize}, {kPageSize, 10}},   // boundary-exact neighbors
      {{5, 10}, {kPageSize + 5, 10}, {50 * kPageSize, 4 * kPageSize}},
  };
  for (const auto& ranges : shapes) {
    auto got = extractor.ExtractBytes(f.id, ranges);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(), Oracle(f, ranges));
  }
}

TEST(ParallelExtractorTest, MatchesOracleRandomizedAllGapFills) {
  DiskDevice device(1024);
  LongFieldManager lfm(&device);
  TestField f = MakeField(&lfm, 64 * kPageSize + 777, 2);
  Rng rng(3);
  for (uint64_t gap : {uint64_t{0}, uint64_t{1}, uint64_t{4}, uint64_t{1000}}) {
    ExtractOptions options;
    options.gap_fill_pages = gap;
    ParallelExtractor extractor(&lfm, options);
    for (int trial = 0; trial < 25; ++trial) {
      std::vector<ByteRange> ranges = RandomRanges(&rng, f.bytes.size());
      auto got = extractor.ExtractBytes(f.id, ranges);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(got.value(), Oracle(f, ranges)) << "gap " << gap;
    }
  }
}

TEST(ParallelExtractorTest, ParallelMatchesSerial) {
  DiskDevice device(2048);
  LongFieldManager lfm(&device);
  TestField f = MakeField(&lfm, 1024 * kPageSize, 4);
  TaskPool pool(4);
  ExtractOptions options;
  options.min_parallel_pages = 1;  // force sharding even for small plans
  ParallelExtractor extractor(&lfm, options);
  extractor.set_pool(&pool);

  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<ByteRange> ranges = RandomRanges(&rng, f.bytes.size());
    auto got = extractor.ExtractBytes(f.id, ranges);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got.value(), Oracle(f, ranges));
  }
  // The full field as one run: the all-direct fast path, sharded.
  auto full = extractor.ExtractBytes(f.id, {{0, f.bytes.size()}});
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value(), f.bytes);
  EXPECT_GT(extractor.stats().shard_tasks, extractor.stats().extractions);
}

TEST(ParallelExtractorTest, ConcurrentExtractionsAreIsolated) {
  DiskDevice device(4096);
  LongFieldManager lfm(&device);
  TaskPool pool(4);
  ExtractOptions options;
  options.min_parallel_pages = 1;
  ParallelExtractor extractor(&lfm, options);
  extractor.set_pool(&pool);

  std::vector<TestField> fields;
  for (int i = 0; i < 4; ++i) {
    fields.push_back(MakeField(&lfm, 256 * kPageSize + 31 * i, 10 + i));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(100 + c);
      for (int trial = 0; trial < 8; ++trial) {
        const TestField& f = fields[static_cast<size_t>(c)];
        std::vector<ByteRange> ranges = RandomRanges(&rng, f.bytes.size());
        auto got = extractor.ExtractBytes(f.id, ranges);
        if (!got.ok() || got.value() != Oracle(f, ranges)) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ParallelExtractorTest, StatsTrackCoalescingAndParallelism) {
  DiskDevice device(2048);
  LongFieldManager lfm(&device);
  TestField f = MakeField(&lfm, 512 * kPageSize, 6);
  TaskPool pool(4);
  ExtractOptions options;
  options.min_parallel_pages = 1;
  ParallelExtractor extractor(&lfm, options);
  extractor.set_pool(&pool);

  // Many short runs per page: the per-run path would pay one page read
  // per run, the planner reads each page once.
  std::vector<ByteRange> ranges;
  for (uint64_t off = 0; off + 64 <= 128 * kPageSize; off += 512) {
    ranges.push_back({off, 64});
  }
  auto got = extractor.ExtractBytes(f.id, ranges);
  ASSERT_TRUE(got.ok());
  ExtractorStatsSnapshot stats = extractor.stats();
  EXPECT_EQ(stats.extractions, 1u);
  EXPECT_EQ(stats.runs, ranges.size());
  EXPECT_EQ(stats.pages_read, 128u);            // each page exactly once
  EXPECT_EQ(stats.pages_demanded, ranges.size());  // one page per short run
  EXPECT_GT(stats.CoalescingRatio(), 7.0);
  EXPECT_LE(stats.pages_read, stats.pages_demanded);
  EXPECT_EQ(stats.bytes_moved, static_cast<uint64_t>(ranges.size()) * 64);
  EXPECT_GE(stats.extents_planned, 1u);
  EXPECT_GT(stats.shard_tasks, 1u);
}

TEST(ParallelExtractorTest, HelperIoIsReattributedToTheCallingThread) {
  DiskDevice device(2048);
  LongFieldManager lfm(&device);
  TestField f = MakeField(&lfm, 512 * kPageSize, 7);
  TaskPool pool(4);
  ExtractOptions options;
  options.min_parallel_pages = 1;
  ParallelExtractor extractor(&lfm, options);
  extractor.set_pool(&pool);

  // The ledger invariant must hold on every extraction; repeat until at
  // least one helper actually grabbed a task (the caller can in
  // principle drain a whole batch before a helper wakes, so a single
  // attempt would be timing-dependent).
  for (int attempt = 0;
       attempt < 200 && extractor.stats().helper_tasks == 0; ++attempt) {
    device.ResetThreadStats();
    storage::IoStats device_before = device.stats();
    auto got = extractor.ExtractBytes(f.id, {{0, f.bytes.size()}});
    ASSERT_TRUE(got.ok());
    storage::IoStats device_delta = device.stats() - device_before;
    storage::IoStats thread_delta = device.thread_stats();
    // Every page a helper read must show up in this thread's ledger,
    // which is what the server's per-request accounting is built on.
    EXPECT_EQ(thread_delta.pages_read, device_delta.pages_read);
    EXPECT_EQ(thread_delta.pages_read, 512u);
  }
  EXPECT_GT(extractor.stats().helper_tasks, 0u);
}

TEST(ParallelExtractorTest, RejectsUnsortedOrOverlappingRanges) {
  DiskDevice device(64);
  LongFieldManager lfm(&device);
  ParallelExtractor extractor(&lfm);
  TestField f = MakeField(&lfm, 4 * kPageSize, 8);
  EXPECT_FALSE(extractor.ExtractBytes(f.id, {{100, 10}, {50, 10}}).ok());
  EXPECT_FALSE(extractor.ExtractBytes(f.id, {{0, 100}, {50, 100}}).ok());
  EXPECT_FALSE(
      extractor.ExtractBytes(f.id, {{0, 5 * kPageSize}}).ok());  // past end
  EXPECT_FALSE(extractor.ExtractBytes(LongFieldId{999}, {{0, 1}}).ok());
}

TEST(ParallelExtractorTest, ThreadInterruptAbortsExtraction) {
  DiskDevice device(2048);
  LongFieldManager lfm(&device);
  TestField f = MakeField(&lfm, 256 * kPageSize, 9);
  ParallelExtractor extractor(&lfm);
  {
    ParallelExtractor::ScopedThreadInterrupt interrupt(
        []() -> Status { return Status::Cancelled("client went away"); });
    auto got = extractor.ExtractBytes(f.id, {{0, f.bytes.size()}});
    ASSERT_FALSE(got.ok());
    EXPECT_TRUE(got.status().IsCancelled());
  }
  // Hook cleared on scope exit: the same call succeeds.
  EXPECT_TRUE(extractor.ExtractBytes(f.id, {{0, f.bytes.size()}}).ok());
}

TEST(ParallelExtractorTest, DefaultSurfacesInjectedFaults) {
  DiskDevice device(2048);
  LongFieldManager lfm(&device);
  TestField f = MakeField(&lfm, 64 * kPageSize, 11);
  ParallelExtractor extractor(&lfm);  // max_io_retries = 0
  device.InstallFaultPlan(FaultPlan::FailAtTransfer(0));
  auto got = extractor.ExtractBytes(f.id, {{0, f.bytes.size()}});
  device.ClearFault();
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsIOError());
  EXPECT_EQ(extractor.stats().io_retries, 0u);
}

TEST(ParallelExtractorTest, OptInRetryAbsorbsTransientFault) {
  DiskDevice device(2048);
  LongFieldManager lfm(&device);
  TestField f = MakeField(&lfm, 64 * kPageSize, 12);
  ExtractOptions options;
  options.max_io_retries = 2;
  ParallelExtractor extractor(&lfm, options);
  device.InstallFaultPlan(FaultPlan::FailAtTransfer(0));
  auto got = extractor.ExtractBytes(f.id, {{0, f.bytes.size()}});
  device.ClearFault();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), f.bytes);
  EXPECT_EQ(extractor.stats().io_retries, 1u);
}

TEST(ParallelExtractorTest, ScanFieldStreamsEveryByteOnce) {
  DiskDevice device(1024);
  LongFieldManager lfm(&device);
  TestField f = MakeField(&lfm, 37 * kPageSize + 1234, 13);  // unaligned tail
  ParallelExtractor extractor(&lfm);
  for (uint64_t chunk : {kPageSize / 2, kPageSize, 8 * kPageSize,
                         64 * kPageSize, uint64_t{1} << 30}) {
    std::vector<uint8_t> streamed;
    uint64_t expected_offset = 0;
    Status status = extractor.ScanField(
        f.id, chunk,
        [&](uint64_t offset, const uint8_t* data, uint64_t len) -> Status {
          EXPECT_EQ(offset, expected_offset);
          expected_offset += len;
          streamed.insert(streamed.end(), data, data + len);
          return Status::OK();
        });
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(streamed, f.bytes) << "chunk " << chunk;
  }
}

TEST(ParallelExtractorTest, ScanFieldPropagatesCallbackAndInterrupt) {
  DiskDevice device(1024);
  LongFieldManager lfm(&device);
  TestField f = MakeField(&lfm, 16 * kPageSize, 14);
  ParallelExtractor extractor(&lfm);
  Status status = extractor.ScanField(
      f.id, kPageSize, [](uint64_t, const uint8_t*, uint64_t) -> Status {
        return Status::InvalidArgument("stop");
      });
  EXPECT_TRUE(status.IsInvalidArgument());

  int chunks_seen = 0;
  ParallelExtractor::ScopedThreadInterrupt interrupt([&]() -> Status {
    return chunks_seen >= 2 ? Status::Cancelled("deadline") : Status::OK();
  });
  status = extractor.ScanField(
      f.id, kPageSize, [&](uint64_t, const uint8_t*, uint64_t) -> Status {
        ++chunks_seen;
        return Status::OK();
      });
  EXPECT_TRUE(status.IsCancelled());
  EXPECT_EQ(chunks_seen, 2);
}

}  // namespace
}  // namespace qbism
