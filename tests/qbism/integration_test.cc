// End-to-end integration: a fresh database, schema bootstrap, corpus
// load, the paper's §3.4 two-query flow executed as raw SQL, and the
// full pipeline through the DX substitute.

#include <gtest/gtest.h>

#include "med/loader.h"
#include "med/schema.h"
#include "qbism/medical_server.h"

namespace qbism {
namespace {

TEST(IntegrationTest, PaperSection34FlowAsRawSql) {
  sql::Database db;
  auto ext = SpatialExtension::Install(&db, SpatialConfig{}).MoveValue();
  ASSERT_TRUE(med::BootstrapSchema(&db).ok());
  med::LoadOptions options;
  options.num_pet_studies = 1;
  options.num_mri_studies = 0;
  options.build_meshes = false;
  ASSERT_TRUE(med::PopulateDatabase(ext.get(), options).ok());

  // First §3.4 query: atlas/patient info for study 53.
  auto info = db.Execute(
      "select a.n, a.x0, a.y0, a.z0, a.dx, a.dy, a.dz, a.atlasId,"
      " p.name, p.patientId, rv.date"
      " from atlas a, rawVolume rv, warpedVolume wv, patient p"
      " where a.atlasId = wv.atlasId and wv.studyId = rv.studyId"
      " and rv.patientId = p.patientId and rv.studyId = 53"
      " and a.atlasName = 'Talairach'");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ASSERT_EQ(info->rows.size(), 1u);
  EXPECT_EQ(info->rows[0][0].AsInt().value(), 128);

  // Second §3.4 query: region + extracted voxels for the putamen.
  auto data = db.Execute(
      "select ast.region, extractvoxels(wv.data, ast.region)"
      " from warpedVolume wv, atlasStructure ast, neuralStructure ns"
      " where wv.studyId = 53 and ast.structureId = ns.structureId"
      " and ns.structureName = 'putamen' and ast.atlasId = wv.atlasId");
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  ASSERT_EQ(data->rows.size(), 1u);
  auto dr = data->rows[0][1]
                .AsObject<volume::DataRegion>(sql::kDataRegionTypeName)
                .MoveValue();
  EXPECT_GT(dr->VoxelCount(), 1000u);

  // The "more complicated" variant with intersection() in the select
  // list and additional joins (band 128-159 within the putamen).
  auto mixed = db.Execute(
      "select extractvoxels(wv.data, intersection(ib.region, ast.region))"
      " from warpedVolume wv, atlasStructure ast, neuralStructure ns,"
      " intensityBand ib"
      " where wv.studyId = 53 and ast.structureId = ns.structureId"
      " and ns.structureName = 'putamen' and ast.atlasId = wv.atlasId"
      " and ib.studyId = wv.studyId and ib.atlasId = wv.atlasId"
      " and ib.lo = 128 and ib.hi = 159");
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  ASSERT_EQ(mixed->rows.size(), 1u);
  auto mixed_dr = mixed->rows[0][0]
                      .AsObject<volume::DataRegion>(sql::kDataRegionTypeName)
                      .MoveValue();
  EXPECT_LE(mixed_dr->VoxelCount(), dr->VoxelCount());
  for (uint8_t v : mixed_dr->values()) {
    EXPECT_GE(v, 128);
    EXPECT_LE(v, 159);
  }
}

TEST(IntegrationTest, EndToEndPipelineWithRendering) {
  sql::Database db;
  auto ext = SpatialExtension::Install(&db, SpatialConfig{}).MoveValue();
  ASSERT_TRUE(med::BootstrapSchema(&db).ok());
  med::LoadOptions options;
  options.num_pet_studies = 1;
  options.num_mri_studies = 0;
  ASSERT_TRUE(med::PopulateDatabase(ext.get(), options).ok());
  MedicalServer server(ext.get());

  QuerySpec spec;
  spec.study_id = 53;
  spec.structure_name = "ntal1";
  auto result = server.RunStudyQuery(spec, /*render=*/true);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Every timing component is populated and the total adds up.
  const TimingBreakdown& t = result->timing;
  EXPECT_GT(t.lfm_pages, 0u);
  EXPECT_GT(t.db_real_seconds, 0.0);
  EXPECT_GT(t.network_seconds, 0.0);
  EXPECT_GT(t.render_seconds, 0.0);
  EXPECT_NEAR(t.total_seconds,
              t.other_seconds + t.db_real_seconds + t.network_seconds +
                  t.import_cpu_seconds + t.render_seconds,
              1e-9);

  // The image shows the hemisphere.
  EXPECT_GT(result->image.NonBlackFraction(), 0.002);

  // Texture-mapped surface rendering over the same result (Figure 6c).
  auto mesh_rows = db.Execute(
      "select ast.mesh from atlasStructure ast, neuralStructure ns"
      " where ast.structureId = ns.structureId"
      " and ns.structureName = 'ntal1'");
  ASSERT_TRUE(mesh_rows.ok());
  auto mesh_bytes =
      db.lfm()->Read(mesh_rows->rows[0][0].AsLongField().MoveValue());
  ASSERT_TRUE(mesh_bytes.ok());
  auto mesh = viz::TriangleMesh::Deserialize(mesh_bytes.value()).MoveValue();
  auto imported = server.dx()->ImportVolume(result->data);
  auto rendered = server.dx()->RenderSurface(mesh, viz::Camera{},
                                             ext->config().grid,
                                             &imported.dense);
  EXPECT_GT(rendered.image.NonBlackFraction(), 0.002);
}

TEST(IntegrationTest, DifferentCurveConfiguration) {
  // The whole stack also runs Z-ordered (the §4.1 ablation).
  sql::Database db;
  SpatialConfig config;
  config.curve = curve::CurveKind::kZ;
  auto ext = SpatialExtension::Install(&db, config).MoveValue();
  ASSERT_TRUE(med::BootstrapSchema(&db).ok());
  med::LoadOptions options;
  options.num_pet_studies = 1;
  options.num_mri_studies = 0;
  options.build_meshes = false;
  ASSERT_TRUE(med::PopulateDatabase(ext.get(), options).ok());
  MedicalServer server(ext.get());
  QuerySpec spec;
  spec.study_id = 53;
  spec.structure_name = "ntal";
  auto result = server.RunStudyQuery(spec, false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->result_voxels, 5000u);
}

}  // namespace
}  // namespace qbism
