#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/macros.h"
#include "qbism/spatial_extension.h"
#include "region/encoded_ops.h"

namespace qbism {
namespace {

using curve::CurveKind;
using region::EncodedRegion;
using region::GridSpec;
using region::Region;
using region::RegionEncoding;
using sql::Value;

/// n-way intersection: the streaming encoded operator, the SQL UDF on
/// both storage encodings, and equivalence with the pairwise fold.
class IntersectionNTest : public ::testing::TestWithParam<RegionEncoding> {
 protected:
  IntersectionNTest() {
    SpatialConfig config;
    config.grid = GridSpec{3, 5};  // 32^3
    config.region_encoding = GetParam();
    auto ext = SpatialExtension::Install(&db_, config);
    QBISM_CHECK(ext.ok());
    ext_ = ext.MoveValue();
  }

  Region Box(int x0, int y0, int z0, int x1, int y1, int z1) {
    return Region::FromBox(ext_->config().grid, CurveKind::kHilbert,
                           {{x0, y0, z0}, {x1, y1, z1}});
  }

  void StoreThreeRegions(const Region& a, const Region& b, const Region& c) {
    ASSERT_TRUE(db_.Execute("create table r (id int, reg longfield)").ok());
    int id = 1;
    for (const Region* reg : {&a, &b, &c}) {
      ASSERT_TRUE(
          db_.Insert("r",
                     {Value::Int(id++),
                      Value::LongField(ext_->StoreRegion(*reg).MoveValue())})
              .ok());
    }
  }

  sql::Database db_;
  std::unique_ptr<SpatialExtension> ext_;
};

TEST_P(IntersectionNTest, UdfMatchesPairwiseFold) {
  Region a = Box(0, 0, 0, 20, 20, 20);
  Region b = Box(6, 2, 4, 28, 24, 26);
  Region c = Box(3, 8, 1, 22, 30, 18);
  StoreThreeRegions(a, b, c);
  Region expected = a.IntersectWith(b).MoveValue();
  expected = expected.IntersectWith(c).MoveValue();

  auto result = db_.Execute(
      "select voxelcount(intersection_n(x.reg, y.reg, z.reg)) "
      "from r x, r y, r z where x.id = 1 and y.id = 2 and z.id = 3");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt().MoveValue(),
            static_cast<int64_t>(expected.VoxelCount()));

  // And it must agree with the nested pairwise UDF chain.
  auto pairwise = db_.Execute(
      "select voxelcount(intersection(intersection(x.reg, y.reg), z.reg)) "
      "from r x, r y, r z where x.id = 1 and y.id = 2 and z.id = 3");
  ASSERT_TRUE(pairwise.ok()) << pairwise.status().ToString();
  EXPECT_EQ(pairwise->rows[0][0].ToString(), result->rows[0][0].ToString());
}

TEST_P(IntersectionNTest, EmptyIntersectionIsEmpty) {
  Region a = Box(0, 0, 0, 10, 10, 10);
  Region b = Box(12, 12, 12, 30, 30, 30);  // disjoint from a
  Region c = Box(0, 0, 0, 30, 30, 30);
  StoreThreeRegions(a, b, c);
  auto result = db_.Execute(
      "select voxelcount(intersection_n(x.reg, y.reg, z.reg)) "
      "from r x, r y, r z where x.id = 1 and y.id = 2 and z.id = 3");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows[0][0].AsInt().MoveValue(), 0);
}

TEST_P(IntersectionNTest, RejectsFewerThanTwoArguments) {
  Region a = Box(0, 0, 0, 10, 10, 10);
  StoreThreeRegions(a, a, a);
  auto result = db_.Execute("select intersection_n(reg) from r");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("at least 2"), std::string::npos)
      << result.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(Encodings, IntersectionNTest,
                         ::testing::Values(RegionEncoding::kNaiveRuns,
                                           RegionEncoding::kEliasDeltas));

TEST(EncodedIntersectAllTest, StreamingNWayIsByteIdenticalToPairwise) {
  GridSpec grid{3, 5};
  Region a = Region::FromBox(grid, CurveKind::kHilbert,
                             {{0, 0, 0}, {25, 19, 27}});
  Region b = Region::FromBox(grid, CurveKind::kHilbert,
                             {{4, 2, 6}, {31, 29, 31}});
  Region c = Region::FromBox(grid, CurveKind::kHilbert,
                             {{1, 7, 3}, {23, 25, 21}});
  Region d = Region::FromBox(grid, CurveKind::kHilbert,
                             {{0, 0, 0}, {31, 31, 31}});

  EncodedRegion ea = EncodedRegion::FromRegion(a).MoveValue();
  EncodedRegion eb = EncodedRegion::FromRegion(b).MoveValue();
  EncodedRegion ec = EncodedRegion::FromRegion(c).MoveValue();
  EncodedRegion ed = EncodedRegion::FromRegion(d).MoveValue();

  std::vector<const EncodedRegion*> all = {&ea, &eb, &ec, &ed};
  EncodedRegion streamed = EncodedRegion::IntersectAll(all).MoveValue();

  EncodedRegion folded = ea.IntersectWith(eb).MoveValue();
  folded = folded.IntersectWith(ec).MoveValue();
  folded = folded.IntersectWith(ed).MoveValue();

  EXPECT_EQ(streamed.bytes(), folded.bytes());

  Region expected = a.IntersectWith(b).MoveValue();
  expected = expected.IntersectWith(c).MoveValue();
  expected = expected.IntersectWith(d).MoveValue();
  EXPECT_EQ(streamed.Decode().MoveValue(), expected);
}

}  // namespace
}  // namespace qbism
