#include "qbism/medical_server.h"

#include <gtest/gtest.h>

#include <set>

#include "med/loader.h"
#include "med/schema.h"

namespace qbism {
namespace {

/// One shared loaded database for all MedicalServer tests (loading takes
/// a few seconds; the queries themselves are fast).
class MedicalServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new sql::Database();
    auto ext = SpatialExtension::Install(db_, SpatialConfig{});
    ASSERT_TRUE(ext.ok());
    ext_ = ext.MoveValue().release();
    ASSERT_TRUE(med::BootstrapSchema(db_).ok());
    med::LoadOptions options;
    options.num_pet_studies = 3;
    options.num_mri_studies = 0;
    options.build_meshes = false;  // not needed here; speeds setup
    auto dataset = med::PopulateDatabase(ext_, options);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    ServerCostModel costs;
    costs.sql_compile_seconds = 3.0;
    server_ = new MedicalServer(ext_, net::NetworkCostModel{}, costs);
  }

  static void TearDownTestSuite() {
    delete server_;
    delete ext_;
    delete db_;
  }

  static sql::Database* db_;
  static SpatialExtension* ext_;
  static MedicalServer* server_;
};

sql::Database* MedicalServerTest::db_ = nullptr;
SpatialExtension* MedicalServerTest::ext_ = nullptr;
MedicalServer* MedicalServerTest::server_ = nullptr;

TEST_F(MedicalServerTest, FullStudyQueryShipsWholeVolume) {
  QuerySpec spec;
  spec.study_id = 53;
  auto result = server_->RunStudyQuery(spec, /*render=*/false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->result_voxels, uint64_t{128} * 128 * 128);
  EXPECT_EQ(result->result_runs, 1u);
  // Full volume = 512 LFM pages (2 MB / 4 KB), like the paper's Q1.
  EXPECT_GE(result->timing.lfm_pages, 512u);
  EXPECT_GT(result->timing.network_messages, 2000u);
  EXPECT_GT(result->timing.total_seconds, 0.0);
}

TEST_F(MedicalServerTest, StructureQueryFiltersEarly) {
  QuerySpec full;
  full.study_id = 53;
  QuerySpec spatial;
  spatial.study_id = 53;
  spatial.structure_name = "ntal";
  auto full_result = server_->RunStudyQuery(full, false).MoveValue();
  auto result = server_->RunStudyQuery(spatial, false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result->result_voxels, full_result.result_voxels / 10);
  EXPECT_LT(result->timing.lfm_pages, full_result.timing.lfm_pages);
  EXPECT_LT(result->timing.network_messages,
            full_result.timing.network_messages);
  // The data really is the study restricted to the structure.
  EXPECT_GT(result->result_voxels, 5000u);
  EXPECT_GT(result->data.MeanIntensity(), 0.0);
}

TEST_F(MedicalServerTest, BoxQueryWorks) {
  QuerySpec spec;
  spec.study_id = 53;
  spec.box = geometry::Box3i{{30, 30, 30}, {100, 100, 100}};
  auto result = server_->RunStudyQuery(spec, false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->result_voxels, 71ull * 71 * 71);  // the paper's Q2
}

TEST_F(MedicalServerTest, BandQueryUsesStoredIndex) {
  QuerySpec spec;
  spec.study_id = 53;
  spec.intensity_range = {224, 255};
  auto result = server_->RunStudyQuery(spec, false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Every returned voxel is in the band.
  for (uint8_t v : result->data.values()) EXPECT_GE(v, 224);
  // Reading band region + its voxels is far cheaper than the study.
  EXPECT_LT(result->timing.lfm_pages, 512u);
}

TEST_F(MedicalServerTest, BandQueryWithoutIndexScansVolume) {
  QuerySpec indexed;
  indexed.study_id = 53;
  indexed.intensity_range = {224, 255};
  QuerySpec scanned = indexed;
  scanned.use_band_index = false;
  auto a = server_->RunStudyQuery(indexed, false).MoveValue();
  auto b = server_->RunStudyQuery(scanned, false);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  // Same answer either way.
  EXPECT_EQ(a.result_voxels, b->result_voxels);
  EXPECT_EQ(a.data.values(), b->data.values());
  // But the scan reads the whole volume: many more pages.
  EXPECT_GT(b->timing.lfm_pages, a.timing.lfm_pages * 2);
}

TEST_F(MedicalServerTest, MixedQueryIntersects) {
  QuerySpec spec;
  spec.study_id = 53;
  spec.structure_name = "ntal1";
  spec.intensity_range = {224, 255};
  auto result = server_->RunStudyQuery(spec, false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  QuerySpec structure_only;
  structure_only.study_id = 53;
  structure_only.structure_name = "ntal1";
  QuerySpec band_only;
  band_only.study_id = 53;
  band_only.intensity_range = {224, 255};
  auto s = server_->RunStudyQuery(structure_only, false).MoveValue();
  auto b = server_->RunStudyQuery(band_only, false).MoveValue();
  // Q6 result is contained in both Q4 and Q5 results.
  EXPECT_LE(result->result_voxels,
            std::min(s.result_voxels, b.result_voxels));
  EXPECT_TRUE(
      s.data.region().Contains(result->data.region()).value());
  EXPECT_TRUE(
      b.data.region().Contains(result->data.region()).value());
}

TEST_F(MedicalServerTest, UnknownStudyOrStructureReported) {
  QuerySpec spec;
  spec.study_id = 9999;
  EXPECT_TRUE(server_->RunStudyQuery(spec, false).status().IsNotFound());
  QuerySpec bad_structure;
  bad_structure.study_id = 53;
  bad_structure.structure_name = "nonexistent";
  EXPECT_TRUE(
      server_->RunStudyQuery(bad_structure, false).status().IsNotFound());
  QuerySpec bad_band;
  bad_band.study_id = 53;
  bad_band.intensity_range = {100, 200};  // no stored band matches
  EXPECT_TRUE(server_->RunStudyQuery(bad_band, false).status().IsNotFound());
}

TEST_F(MedicalServerTest, RenderingProducesImageAndCaches) {
  QuerySpec spec;
  spec.study_id = 53;
  spec.structure_name = "ntal1";
  server_->dx()->FlushCache();
  auto result = server_->RunStudyQuery(spec, /*render=*/true);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->image.NonBlackFraction(), 0.0);
  EXPECT_GT(result->timing.render_seconds, 0.0);
  EXPECT_NE(server_->dx()->CacheGet(spec.Describe()), nullptr);
}

TEST_F(MedicalServerTest, GeneratedSqlMatchesPaperShape) {
  QuerySpec spec;
  spec.study_id = 53;
  spec.structure_name = "putamen";
  auto result = server_->RunStudyQuery(spec, false).MoveValue();
  EXPECT_NE(result.info_sql.find("atlasName = 'Talairach'"),
            std::string::npos);
  EXPECT_NE(result.data_sql.find("extractvoxels(wv.data"), std::string::npos);
  EXPECT_NE(result.data_sql.find("structureName = 'putamen'"),
            std::string::npos);
}

TEST_F(MedicalServerTest, ConsistentBandRegionAcrossStudies) {
  auto result = server_->ConsistentBandRegion({53, 54, 55}, 32, 63);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The n-way intersection is contained in each study's own band.
  for (int study : {53, 54, 55}) {
    QuerySpec spec;
    spec.study_id = study;
    spec.intensity_range = {32, 63};
    auto band = server_->RunStudyQuery(spec, false).MoveValue();
    EXPECT_TRUE(band.data.region().Contains(result->region).value());
  }
  EXPECT_GT(result->lfm_pages, 0u);
  EXPECT_GT(result->db_real_seconds, 0.0);
}

TEST_F(MedicalServerTest, ConsistentBandRejectsBadInput) {
  EXPECT_FALSE(server_->ConsistentBandRegion({}, 32, 63).ok());
  EXPECT_TRUE(server_->ConsistentBandRegion({53}, 33, 64).status()
                  .IsNotFound());  // not a stored band
}

TEST_F(MedicalServerTest, AverageInStructure) {
  auto result = server_->AverageInStructure({53, 54, 55}, "ntal");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->result_voxels, 5000u);
  // The average lies between the per-study extremes at a probe point.
  QuerySpec spec;
  spec.study_id = 53;
  spec.structure_name = "ntal";
  auto one = server_->RunStudyQuery(spec, false).MoveValue();
  EXPECT_EQ(result->result_voxels, one.result_voxels);
  EXPECT_GT(result->data.MeanIntensity(), 0.0);
  // Network ships one result set, not three.
  EXPECT_LT(result->timing.network_messages,
            3 * one.timing.network_messages);
}

TEST_F(MedicalServerTest, WideAlignedBandIntervalUnionsStoredBands) {
  // [192, 255] spans two stored width-32 bands: the server must answer
  // from the band index via an in-database UNION, not a volume scan.
  QuerySpec wide;
  wide.study_id = 53;
  wide.intensity_range = {192, 255};
  auto result = server_->RunStudyQuery(wide, false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->data_sql.find("regionunion"), std::string::npos);
  for (uint8_t v : result->data.values()) EXPECT_GE(v, 192);
  // It must equal the sum of the two narrow band queries.
  QuerySpec a = wide, b = wide;
  a.intensity_range = {192, 223};
  b.intensity_range = {224, 255};
  auto ra = server_->RunStudyQuery(a, false).MoveValue();
  auto rb = server_->RunStudyQuery(b, false).MoveValue();
  EXPECT_EQ(result->result_voxels, ra.result_voxels + rb.result_voxels);
  // Reading two band REGIONs is still far cheaper than the full study.
  EXPECT_LT(result->timing.lfm_pages, 512u);
  // Misaligned intervals still report NotFound under the index.
  QuerySpec misaligned = wide;
  misaligned.intensity_range = {190, 255};
  EXPECT_TRUE(
      server_->RunStudyQuery(misaligned, false).status().IsNotFound());
}

TEST_F(MedicalServerTest, DxCacheShortCircuitsDatabase) {
  QuerySpec spec;
  spec.study_id = 53;
  spec.structure_name = "ntal";
  server_->dx()->FlushCache();
  auto first = server_->RunStudyQuery(spec, false).MoveValue();
  EXPECT_GT(first.timing.lfm_pages, 0u);
  // Second issue with allow_cached: zero DB and network activity.
  QuerySpec cached = spec;
  cached.allow_cached = true;
  auto second = server_->RunStudyQuery(cached, false).MoveValue();
  EXPECT_EQ(second.timing.lfm_pages, 0u);
  EXPECT_EQ(second.timing.network_messages, 0u);
  EXPECT_EQ(second.timing.db_real_seconds, 0.0);
  EXPECT_EQ(second.result_voxels, first.result_voxels);
  EXPECT_EQ(second.data.values(), first.data.values());
  // Without allow_cached the database is consulted again.
  auto third = server_->RunStudyQuery(spec, false).MoveValue();
  EXPECT_GT(third.timing.lfm_pages, 0u);
}

TEST_F(MedicalServerTest, StudyFeatureVectors) {
  auto features = server_->StudyFeatureVector(53);
  ASSERT_TRUE(features.ok()) << features.status().ToString();
  EXPECT_EQ(features->size(), 11u);  // one mean per atlas structure
  for (double f : *features) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 255.0);
  }
  // Deterministic.
  auto again = server_->StudyFeatureVector(53).MoveValue();
  EXPECT_EQ(*features, again);
  EXPECT_TRUE(server_->StudyFeatureVector(12345).status().IsNotFound());
}

TEST_F(MedicalServerTest, FindSimilarStudies) {
  auto neighbors = server_->FindSimilarStudies(53, {53, 54, 55}, 2);
  ASSERT_TRUE(neighbors.ok()) << neighbors.status().ToString();
  ASSERT_EQ(neighbors->size(), 2u);
  // The query study itself is excluded.
  for (const auto& n : *neighbors) {
    EXPECT_NE(n.id, 53);
    EXPECT_GE(n.distance, 0.0);
  }
  EXPECT_LE((*neighbors)[0].distance, (*neighbors)[1].distance);
  // A study is its own nearest neighbour when allowed in as candidate
  // under a different id? Instead: distances to itself would be zero,
  // so any other study's distance must be positive (different seeds).
  EXPECT_GT((*neighbors)[0].distance, 0.0);
}

TEST_F(MedicalServerTest, DescribeLabels) {
  QuerySpec spec;
  spec.study_id = 5;
  EXPECT_NE(spec.Describe().find("entire study"), std::string::npos);
  spec.structure_name = "ntal";
  spec.intensity_range = {10, 20};
  std::string label = spec.Describe();
  EXPECT_NE(label.find("ntal"), std::string::npos);
  EXPECT_NE(label.find("10-20"), std::string::npos);
}

TEST_F(MedicalServerTest, DescribeIsACanonicalCacheKey) {
  // Describe() doubles as the result-cache key: two specs that can
  // return different data must never collide. Flip each result-affecting
  // field one at a time and check the key moves.
  QuerySpec base;
  base.study_id = 53;
  base.structure_name = "ntal";
  base.intensity_range = {224, 255};
  base.box = geometry::Box3i{{0, 0, 0}, {63, 63, 63}};

  QuerySpec other_study = base;
  other_study.study_id = 54;
  QuerySpec other_atlas = base;
  other_atlas.atlas_name = "Schaltenbrand";
  QuerySpec other_structure = base;
  other_structure.structure_name = "putamen";
  QuerySpec other_band = base;
  other_band.intensity_range = {192, 223};
  QuerySpec other_box = base;
  other_box.box = geometry::Box3i{{0, 0, 0}, {31, 63, 63}};
  QuerySpec no_box = base;
  no_box.box.reset();
  QuerySpec scanned = base;
  scanned.use_band_index = false;

  const QuerySpec* variants[] = {&other_study,     &other_atlas, &other_box,
                                 &no_box,          &other_structure,
                                 &other_band,      &scanned};
  for (const QuerySpec* variant : variants) {
    EXPECT_NE(variant->Describe(), base.Describe());
  }
  // ...and all variants are pairwise distinct too.
  std::set<std::string> keys = {base.Describe()};
  for (const QuerySpec* variant : variants) keys.insert(variant->Describe());
  EXPECT_EQ(keys.size(), 1 + std::size(variants));

  // allow_cached is a hint, not a result-affecting field: same key.
  QuerySpec hinted = base;
  hinted.allow_cached = true;
  EXPECT_EQ(hinted.Describe(), base.Describe());
}

}  // namespace
}  // namespace qbism
