// The fault-injection sweep (the tentpole): re-run a load -> query ->
// render pipeline once per page-transfer site with a fault targeting
// exactly that transfer, and require clean Status propagation, intact
// buddy-allocator accounting, an unpoisoned result cache, and errors
// counted in the service metrics at every single site.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "common/macros.h"
#include "common/rng.h"
#include "common/task_pool.h"
#include "med/loader.h"
#include "qbism/parallel_extractor.h"
#include "med/schema.h"
#include "qbism/fault_sweep.h"
#include "qbism/medical_server.h"
#include "qbism/spatial_extension.h"
#include "service/query_service.h"
#include "sql/database.h"

namespace qbism {
namespace {

// A 32^3 grid keeps one pipeline run ~30 ms so sweeping every one of
// its ~30 transfer sites stays inside a unit-test budget.
constexpr int kSweepOrder = 3;
constexpr int kSweepMaxLevel = 5;

/// A small but complete QBISM world: database, spatial extension, one
/// loaded PET study, and a server to query it with.
struct World {
  sql::Database db;
  std::unique_ptr<SpatialExtension> ext;
  med::LoadedDataset dataset;
  std::unique_ptr<MedicalServer> server;

  explicit World(sql::DatabaseOptions dbo) : db(dbo) {}
};

sql::DatabaseOptions SmallDeviceOptions() {
  sql::DatabaseOptions dbo;
  dbo.relational_pages = 1 << 10;
  dbo.long_field_pages = 1 << 10;
  dbo.buffer_pool_pages = 64;
  return dbo;
}

Result<std::shared_ptr<World>> BuildWorld(bool load) {
  auto world = std::make_shared<World>(SmallDeviceOptions());
  SpatialConfig config;
  config.grid = region::GridSpec{kSweepOrder, kSweepMaxLevel};
  QBISM_ASSIGN_OR_RETURN(world->ext,
                         SpatialExtension::Install(&world->db, config));
  QBISM_RETURN_NOT_OK(med::BootstrapSchema(&world->db));
  if (load) {
    med::LoadOptions options;
    options.num_pet_studies = 1;
    options.num_mri_studies = 0;
    options.build_meshes = false;
    options.store_raw_volumes = false;
    QBISM_ASSIGN_OR_RETURN(world->dataset,
                           med::PopulateDatabase(world->ext.get(), options));
  }
  world->server = std::make_unique<MedicalServer>(
      world->ext.get(), net::NetworkCostModel{}, ServerCostModel{});
  return world;
}

Status LoadStudy(World* world) {
  med::LoadOptions options;
  options.num_pet_studies = 1;
  options.num_mri_studies = 0;
  options.build_meshes = false;
  options.store_raw_volumes = false;
  QBISM_ASSIGN_OR_RETURN(world->dataset,
                         med::PopulateDatabase(world->ext.get(), options));
  return Status::OK();
}

QuerySpec SweepQuery(const World& world) {
  // A box query rather than a named structure: the atlas shapes are
  // parameterized in 128^3 atlas coordinates and discretize to empty
  // regions on this deliberately tiny grid, while a box always
  // intersects the study volume — so the query arm really does read
  // voxel pages from the LFM.
  QuerySpec spec;
  spec.study_id = world.dataset.pet_study_ids[0];
  spec.box = geometry::Box3i{{4, 4, 4}, {27, 27, 27}};
  return spec;
}

Status RunQueryAndRender(World* world) {
  QBISM_ASSIGN_OR_RETURN(
      StudyQueryResult result,
      world->server->RunStudyQuery(SweepQuery(*world), /*render=*/true));
  if (result.result_voxels == 0) {
    return Status::Internal("query returned an empty structure");
  }
  if (result.image.width() == 0) {
    return Status::Internal("render produced no image");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// Arm 1: the full pipeline — bootstrap, load a study, query, render —
// with a fresh world per fault point so load-phase writes are swept too.

TEST(FaultSweepTest, FullPipelineSurvivesAFaultAtEveryTransfer) {
  auto factory = []() -> Result<FaultSweepInstance> {
    QBISM_ASSIGN_OR_RETURN(std::shared_ptr<World> world,
                           BuildWorld(/*load=*/false));
    FaultSweepInstance instance;
    instance.devices = {world->db.relational_device(),
                        world->db.long_field_device()};
    instance.run = [world]() -> Status {
      QBISM_RETURN_NOT_OK(LoadStudy(world.get()));
      return RunQueryAndRender(world.get());
    };
    instance.verify = [world](const Status&) {
      return world->db.lfm()->CheckPageAccounting();
    };
    instance.state = world;
    return instance;
  };

  auto report = RunFaultSweep(factory).MoveValue();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_EQ(report.violations.size(), 0u);
  // Both devices saw traffic on the clean run.
  ASSERT_EQ(report.clean_transfers.size(), 2u);
  EXPECT_GT(report.clean_transfers[0], 0u);
  EXPECT_GT(report.clean_transfers[1], 0u);
  EXPECT_EQ(report.points_tested, report.total_clean_transfers());
  // The pipeline re-executes the same transfer sequence, so every
  // targeted fault must actually fire...
  EXPECT_EQ(report.faults_fired, report.points_tested);
  // ...and with no retry layer in this arm, every fault must surface.
  EXPECT_EQ(report.surfaced, report.points_tested);
  EXPECT_EQ(report.absorbed, 0u);
}

// ---------------------------------------------------------------------
// Arms 2 and 3: query + render over a shared pre-loaded world — the
// read path swept with transient and with persistent faults. The world
// is warmed by one query so buffered relational reads settle before the
// baseline enumerates transfer sites.

FaultSweepFactory QueryFactory(const std::shared_ptr<World>& world) {
  return [world]() -> Result<FaultSweepInstance> {
    FaultSweepInstance instance;
    instance.devices = {world->db.relational_device(),
                        world->db.long_field_device()};
    instance.run = [world] { return RunQueryAndRender(world.get()); };
    instance.verify = [world](const Status&) {
      return world->db.lfm()->CheckPageAccounting();
    };
    instance.state = world;
    return instance;
  };
}

TEST(FaultSweepTest, QueryPathSurvivesTransientFaults) {
  auto world = BuildWorld(/*load=*/true).MoveValue();
  ASSERT_TRUE(RunQueryAndRender(world.get()).ok());  // warm the pool

  auto report = RunFaultSweep(QueryFactory(world)).MoveValue();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  // The LFM is unbuffered, so the query path always reads the volume.
  ASSERT_EQ(report.clean_transfers.size(), 2u);
  EXPECT_GT(report.clean_transfers[1], 0u);
  EXPECT_GT(report.points_tested, 0u);
  EXPECT_EQ(report.faults_fired, report.points_tested);
  EXPECT_EQ(report.surfaced, report.points_tested);

  // The shared world is still fully usable after the whole sweep.
  EXPECT_TRUE(RunQueryAndRender(world.get()).ok());
}

TEST(FaultSweepTest, QueryPathSurvivesPersistentFaults) {
  auto world = BuildWorld(/*load=*/true).MoveValue();
  ASSERT_TRUE(RunQueryAndRender(world.get()).ok());

  FaultSweepOptions options;
  options.persistent = true;  // the device stays dead until ClearFault
  auto report = RunFaultSweep(QueryFactory(world), options).MoveValue();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_GT(report.points_tested, 0u);
  EXPECT_EQ(report.surfaced, report.points_tested);
  EXPECT_TRUE(RunQueryAndRender(world.get()).ok());
}

// ---------------------------------------------------------------------
// Arm 4: the sweep through the whole service stack. A fresh one-worker
// QueryService per point (so the shared result cache never hides the
// I/O), with retries on: every transient fault must be absorbed by a
// retry, counted in the metrics, and must never poison the cache.

TEST(FaultSweepTest, ServiceRetriesAbsorbEveryTransientFault) {
  auto world = BuildWorld(/*load=*/true).MoveValue();
  ASSERT_TRUE(RunQueryAndRender(world.get()).ok());
  const std::string key = SweepQuery(*world).Describe();

  auto factory = [world, key]() -> Result<FaultSweepInstance> {
    service::ServiceOptions options;
    options.num_workers = 1;
    options.max_retries = 2;
    options.retry_backoff_seconds = 0.0;  // no need to sleep in tests
    auto service =
        std::make_shared<service::QueryService>(world->ext.get(), options);

    FaultSweepInstance instance;
    instance.devices = {world->db.long_field_device()};
    instance.run = [world, service]() -> Status {
      service::ServiceRequest request;
      request.spec = SweepQuery(*world);
      request.render = true;
      QBISM_ASSIGN_OR_RETURN(service::ServiceReply reply,
                             service->Execute(request));
      (void)reply;
      return Status::OK();
    };
    instance.verify = [world, service, key](const Status& run_status) {
      QBISM_RETURN_NOT_OK(world->db.lfm()->CheckPageAccounting());
      service::MetricsSnapshot metrics = service->metrics();
      if (!run_status.ok()) {
        // A failed query must be counted and must never be cached.
        if (service->CacheContains(key)) {
          return Status::Internal("failed query's reply was cached");
        }
        if (metrics.failed + metrics.deadline_expired + metrics.cancelled ==
            0) {
          return Status::Internal("failed query not counted in metrics");
        }
      } else if (!service->CacheContains(key)) {
        return Status::Internal("successful query's reply was not cached");
      }
      return Status::OK();
    };
    instance.state = std::make_shared<
        std::pair<std::shared_ptr<World>, decltype(service)>>(world, service);
    return instance;
  };

  auto report = RunFaultSweep(factory).MoveValue();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_GT(report.points_tested, 0u);
  EXPECT_EQ(report.faults_fired, report.points_tested);
  // Retries turn every single transient fault into a success.
  EXPECT_EQ(report.absorbed, report.points_tested);
  EXPECT_EQ(report.surfaced, 0u);
}

// ---------------------------------------------------------------------
// Arm 5: the vectored, parallel extraction path in isolation. Every
// transfer here is a ReadPagesBatch op issued from shard tasks running
// on pool helpers, so the sweep covers the scatter-gather sites
// specifically: a mid-batch fault on any op (on any thread) must
// surface as IOError from ExtractBytes, page accounting must stay
// intact, and a clean re-run must deliver uncorrupted bytes.

struct ExtractWorld {
  storage::DiskDevice device{1 << 10};
  storage::LongFieldManager lfm{&device};
  TaskPool pool{4};
  std::unique_ptr<ParallelExtractor> extractor;
  std::vector<uint8_t> bytes;
  storage::LongFieldId field;
  std::vector<storage::ByteRange> sparse;

  static Result<std::shared_ptr<ExtractWorld>> Build(int max_io_retries) {
    auto world = std::make_shared<ExtractWorld>();
    world->bytes.resize(256 * storage::kPageSize);
    Rng rng(99);
    for (auto& b : world->bytes) b = static_cast<uint8_t>(rng.Next());
    QBISM_ASSIGN_OR_RETURN(world->field, world->lfm.Create(world->bytes));
    // Short runs with page-scale gaps: the plan coalesces some, splits
    // others, so the sweep hits single- and multi-extent batches.
    for (uint64_t off = 100; off + 600 < world->bytes.size();
         off += 3 * storage::kPageSize) {
      world->sparse.push_back({off, 600});
    }
    ExtractOptions options;
    options.min_parallel_pages = 1;
    options.max_io_retries = max_io_retries;
    world->extractor =
        std::make_unique<ParallelExtractor>(&world->lfm, options);
    world->extractor->set_pool(&world->pool);
    return world;
  }

  Status RunExtractions() {
    QBISM_ASSIGN_OR_RETURN(
        std::vector<uint8_t> full,
        extractor->ExtractBytes(field, {{0, bytes.size()}}));
    if (full != bytes) return Status::Internal("full extraction corrupted");
    QBISM_ASSIGN_OR_RETURN(std::vector<uint8_t> got,
                           extractor->ExtractBytes(field, sparse));
    uint64_t at = 0;
    for (const storage::ByteRange& r : sparse) {
      if (std::memcmp(got.data() + at, bytes.data() + r.offset, r.length) !=
          0) {
        return Status::Internal("sparse extraction corrupted");
      }
      at += r.length;
    }
    return Status::OK();
  }
};

FaultSweepFactory ExtractFactory(const std::shared_ptr<ExtractWorld>& world) {
  return [world]() -> Result<FaultSweepInstance> {
    FaultSweepInstance instance;
    instance.devices = {&world->device};
    instance.run = [world] { return world->RunExtractions(); };
    instance.verify = [world](const Status&) {
      return world->lfm.CheckPageAccounting();
    };
    instance.state = world;
    return instance;
  };
}

TEST(FaultSweepTest, ParallelExtractionSurfacesEveryBatchFault) {
  auto world = ExtractWorld::Build(/*max_io_retries=*/0).MoveValue();
  ASSERT_TRUE(world->RunExtractions().ok());

  auto report = RunFaultSweep(ExtractFactory(world)).MoveValue();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_GT(report.points_tested, 0u);
  // Shard scheduling varies run to run but the batch op count does not,
  // so every targeted transfer exists and fires...
  EXPECT_EQ(report.faults_fired, report.points_tested);
  // ...and with executor retries off, every fault surfaces.
  EXPECT_EQ(report.surfaced, report.points_tested);
  EXPECT_EQ(report.absorbed, 0u);
  // The world is healthy after the sweep.
  EXPECT_TRUE(world->RunExtractions().ok());
}

TEST(FaultSweepTest, ExtractorRetriesAbsorbEveryTransientBatchFault) {
  auto world = ExtractWorld::Build(/*max_io_retries=*/2).MoveValue();
  ASSERT_TRUE(world->RunExtractions().ok());

  auto report = RunFaultSweep(ExtractFactory(world)).MoveValue();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_GT(report.points_tested, 0u);
  EXPECT_EQ(report.faults_fired, report.points_tested);
  // Opt-in shard retries turn every transient batch fault into a
  // success, and the retried bytes are verified against the oracle by
  // RunExtractions itself.
  EXPECT_EQ(report.absorbed, report.points_tested);
  EXPECT_EQ(report.surfaced, 0u);
}

// ---------------------------------------------------------------------
// Arm 6: the long-field *lifecycle* including Delete — the PR-2 sweep
// covered Create/Update only, which is how a pre-sync mutation in the
// Delete path could have slipped through. A durable LFM (WAL + epochs)
// runs create/update/delete/re-create with a fault at every transfer
// site on the data device and the log device; at every point the page
// accounting must balance and a vacuum must leave no dead extents
// pinned by nobody.

struct LifecycleWorld {
  storage::DiskDevice device{256};
  storage::DiskDevice log_device{64};
  storage::WriteAheadLog wal{&log_device};
  storage::EpochManager epochs;
  storage::LongFieldManager lfm{
      &device, storage::LfmDurabilityHooks{&wal, &epochs}};

  Status Run() {
    auto payload = [](uint64_t bytes, uint8_t fill) {
      return std::vector<uint8_t>(bytes, fill);
    };
    QBISM_ASSIGN_OR_RETURN(storage::LongFieldId a,
                           lfm.Create(payload(3 * storage::kPageSize, 1)));
    QBISM_ASSIGN_OR_RETURN(storage::LongFieldId b,
                           lfm.Create(payload(storage::kPageSize, 2)));
    QBISM_RETURN_NOT_OK(lfm.Update(a, payload(2 * storage::kPageSize, 3)));
    QBISM_RETURN_NOT_OK(lfm.Delete(b));
    QBISM_ASSIGN_OR_RETURN(storage::LongFieldId c,
                           lfm.Create(payload(storage::kPageSize, 4)));
    QBISM_RETURN_NOT_OK(lfm.Delete(a));
    QBISM_ASSIGN_OR_RETURN(std::vector<uint8_t> got, lfm.Read(c));
    if (got != payload(storage::kPageSize, 4)) {
      return Status::Internal("lifecycle read-back corrupted");
    }
    return Status::OK();
  }
};

TEST(FaultSweepTest, DeleteLifecycleKeepsAccountingAtEveryFaultSite) {
  auto factory = []() -> Result<FaultSweepInstance> {
    auto world = std::make_shared<LifecycleWorld>();
    FaultSweepInstance instance;
    instance.devices = {&world->device, &world->log_device};
    instance.run = [world] { return world->Run(); };
    instance.verify = [world](const Status&) -> Status {
      QBISM_RETURN_NOT_OK(world->lfm.CheckPageAccounting());
      // No reader is pinned, so vacuum must fully drain the retirement
      // queue — a failed Delete that half-retired an extent would trip
      // either this or the accounting above.
      world->lfm.Vacuum();
      if (world->lfm.dead_extents() != 0) {
        return Status::Internal("vacuum left unreclaimable dead extents");
      }
      return world->lfm.CheckPageAccounting();
    };
    instance.state = world;
    return instance;
  };

  auto report = RunFaultSweep(factory).MoveValue();
  EXPECT_TRUE(report.ok()) << report.violations.front();
  ASSERT_EQ(report.clean_transfers.size(), 2u);
  EXPECT_GT(report.clean_transfers[0], 0u);  // data-device writes
  EXPECT_GT(report.clean_transfers[1], 0u);  // WAL commit syncs
  EXPECT_EQ(report.points_tested, report.total_clean_transfers());
  EXPECT_EQ(report.faults_fired, report.points_tested);
  EXPECT_EQ(report.surfaced, report.points_tested);
  EXPECT_EQ(report.absorbed, 0u);
}

// ---------------------------------------------------------------------
// Harness self-checks.

TEST(FaultSweepTest, CleanRunFailureIsASetupError) {
  auto factory = []() -> Result<FaultSweepInstance> {
    FaultSweepInstance instance;
    instance.run = [] { return Status::Internal("always broken"); };
    storage::DiskDevice* device = nullptr;
    (void)device;
    instance.devices = {};
    return instance;
  };
  // An always-failing pipeline cannot establish a baseline.
  auto report = RunFaultSweep(factory);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInvalidArgument());
}

TEST(FaultSweepTest, SwallowedFaultIsReportedAsViolation) {
  // A pipeline that ignores I/O errors: the sweep must flag every point
  // where the fault fired but the run still claimed success... which it
  // counts as "absorbed"; the violation machinery is for *status
  // mistranslation*, so instead check a wrong-code pipeline.
  auto device = std::make_shared<storage::DiskDevice>(8);
  auto factory = [device]() -> Result<FaultSweepInstance> {
    FaultSweepInstance instance;
    instance.devices = {device.get()};
    instance.run = [device]() -> Status {
      std::vector<uint8_t> buf(storage::kPageSize);
      Status status = device->ReadPage(0, buf.data());
      if (!status.ok()) {
        // The bug under test: a layer that rewrites the error code.
        return Status::Internal("something went wrong");
      }
      return Status::OK();
    };
    instance.state = device;
    return instance;
  };
  auto report = RunFaultSweep(factory).MoveValue();
  ASSERT_EQ(report.points_tested, 1u);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].find("instead of IOError"), std::string::npos);
}

}  // namespace
}  // namespace qbism
