// Readers during online ingest: snapshot-pinned queries over a stable
// study must return byte-identical results while another study is
// ingested, replaced, and vacuumed concurrently — no blocking, no torn
// reads. Runs under the `concurrency` label, so the tsan preset sweeps
// it for data races.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "med/loader.h"
#include "med/schema.h"
#include "qbism/ingest.h"
#include "qbism/medical_server.h"
#include "qbism/spatial_extension.h"
#include "sql/database.h"
#include "storage/epoch.h"

namespace qbism {
namespace {

constexpr int kGridOrder = 3;
constexpr int kGridMaxLevel = 5;

sql::DatabaseOptions WalOptions() {
  sql::DatabaseOptions dbo;
  dbo.relational_pages = 1 << 10;
  dbo.long_field_pages = 1 << 11;
  dbo.buffer_pool_pages = 64;
  dbo.enable_wal = true;
  dbo.wal_pages = 1 << 10;
  return dbo;
}

struct World {
  sql::Database db;
  std::unique_ptr<SpatialExtension> ext;
  std::unique_ptr<IngestManager> ingest;

  World() : db(WalOptions()) {}
};

Result<std::shared_ptr<World>> BuildWorld() {
  auto world = std::make_shared<World>();
  SpatialConfig config;
  config.grid = region::GridSpec{kGridOrder, kGridMaxLevel};
  QBISM_ASSIGN_OR_RETURN(world->ext,
                         SpatialExtension::Install(&world->db, config));
  QBISM_RETURN_NOT_OK(med::BootstrapSchema(&world->db));
  world->ingest = std::make_unique<IngestManager>(world->ext.get());
  return world;
}

med::StudyRecord MakeRecord(int study_id, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data(24 * 24 * 12);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  med::StudyRecord record;
  record.study_id = study_id;
  record.patient_id = 100 + study_id;
  record.date = "1993-07-01";
  record.modality = "PET";
  record.raw = warp::RawVolume::Create(24, 24, 12, std::move(data)).value();
  record.warp_seed = seed;
  record.band_width = 64;
  return record;
}

TEST(IngestConcurrencyTest, ReadersNeverBlockOrTearDuringIngestStream) {
  auto world = BuildWorld().MoveValue();
  med::StudyRecord stable = MakeRecord(1, 11);
  ASSERT_TRUE(world->ingest->IngestStudy(stable).ok());

  constexpr int kReaders = 3;
  constexpr int kReplaces = 6;
  std::atomic<bool> stop{false};
  std::atomic<int> reads{0};
  std::atomic<int> read_failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        // The same pinned-snapshot read path queries use: one epoch for
        // the whole multi-field read.
        storage::ReadSnapshot snapshot(world->db.epochs());
        auto raw = med::LoadRawVolume(world->ext.get(), 1);
        if (!raw.ok() || raw->data() != stable.raw.data()) {
          read_failures.fetch_add(1, std::memory_order_relaxed);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The writer: a stream of ingests and replaces of *another* study,
  // with vacuum interleaved — the reclamation path must respect the
  // readers' pins.
  Status writer_status = world->ingest->IngestStudy(MakeRecord(2, 20));
  for (int i = 1; i <= kReplaces && writer_status.ok(); ++i) {
    writer_status = world->ingest->ReplaceStudy(MakeRecord(2, 20 + i));
    world->ingest->Vacuum();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  ASSERT_TRUE(writer_status.ok()) << writer_status.message();
  EXPECT_GT(reads.load(), 0);
  EXPECT_EQ(read_failures.load(), 0);

  // Drained: vacuum reclaims every retired extent and accounting holds.
  world->ingest->Vacuum();
  EXPECT_EQ(world->db.lfm()->dead_extents(), 0u);
  ASSERT_TRUE(world->db.lfm()->CheckPageAccounting().ok());
  auto final_read = med::LoadRawVolume(world->ext.get(), 2);
  ASSERT_TRUE(final_read.ok());
  EXPECT_EQ(final_read->data(), MakeRecord(2, 20 + kReplaces).raw.data());
}

TEST(IngestConcurrencyTest, PinnedQueryKeepsItsViewAcrossAReplace) {
  auto world = BuildWorld().MoveValue();
  med::StudyRecord v1 = MakeRecord(1, 11);
  med::StudyRecord v2 = MakeRecord(1, 99);
  ASSERT_TRUE(world->ingest->IngestStudy(v1).ok());

  storage::ReadSnapshot snapshot(world->db.epochs());
  // Resolve the study's raw field under the pin, then replace the study
  // from another thread while the "query" is still running.
  std::thread writer(
      [&]() { ASSERT_TRUE(world->ingest->ReplaceStudy(v2).ok()); });
  writer.join();

  // The long-field layer still serves the pinned version; vacuum must
  // not reclaim it while this snapshot lives. (The study's *rows*
  // changed eagerly — which is exactly why the service keeps the study
  // offline during the swap — but the versioned LFM never tears.)
  world->ingest->Vacuum();
  EXPECT_GT(world->db.lfm()->dead_extents(), 0u);
  ASSERT_TRUE(world->db.lfm()->CheckPageAccounting().ok());
}

TEST(IngestConcurrencyTest, StudyIsOfflineOnlyWhileItsTxnIsInFlight) {
  auto world = BuildWorld().MoveValue();
  EXPECT_TRUE(world->ingest->IsVisible(7));  // untouched studies visible
  ASSERT_TRUE(world->ingest->IngestStudy(MakeRecord(7, 70)).ok());
  EXPECT_TRUE(world->ingest->IsVisible(7));
  EXPECT_EQ(world->ingest->CommitVersion(7), 1u);
  ASSERT_TRUE(world->ingest->ReplaceStudy(MakeRecord(7, 71)).ok());
  EXPECT_EQ(world->ingest->CommitVersion(7), 2u);
  IngestManager::Stats stats = world->ingest->stats();
  EXPECT_EQ(stats.ingests, 1u);
  EXPECT_EQ(stats.replaces, 1u);
  EXPECT_EQ(stats.failures, 0u);
}

TEST(IngestConcurrencyTest, DuplicateIngestIsRejected) {
  auto world = BuildWorld().MoveValue();
  ASSERT_TRUE(world->ingest->IngestStudy(MakeRecord(1, 11)).ok());
  Status dup = world->ingest->IngestStudy(MakeRecord(1, 12));
  EXPECT_TRUE(dup.IsAlreadyExists());
  EXPECT_TRUE(world->ingest->IsVisible(1));
}

TEST(IngestConcurrencyTest, IngestRequiresWal) {
  sql::DatabaseOptions dbo;
  dbo.relational_pages = 1 << 8;
  dbo.long_field_pages = 1 << 8;
  dbo.buffer_pool_pages = 16;  // no enable_wal
  sql::Database db(dbo);
  SpatialConfig config;
  config.grid = region::GridSpec{kGridOrder, kGridMaxLevel};
  auto ext = SpatialExtension::Install(&db, config).MoveValue();
  ASSERT_TRUE(med::BootstrapSchema(&db).ok());
  IngestManager ingest(ext.get());
  Status status = ingest.IngestStudy(MakeRecord(1, 11));
  EXPECT_TRUE(status.IsFailedPrecondition());
}

}  // namespace
}  // namespace qbism
