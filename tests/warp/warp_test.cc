#include "warp/warp.h"

#include <gtest/gtest.h>

namespace qbism::warp {
namespace {

using curve::CurveKind;
using geometry::Affine3;
using geometry::Vec3i;
using region::GridSpec;

TEST(RawVolumeTest, CreateValidatesSize) {
  EXPECT_FALSE(RawVolume::Create(2, 2, 2, std::vector<uint8_t>(7)).ok());
  EXPECT_FALSE(RawVolume::Create(0, 2, 2, std::vector<uint8_t>(0)).ok());
  EXPECT_TRUE(RawVolume::Create(2, 3, 4, std::vector<uint8_t>(24)).ok());
}

RawVolume Ramp(int nx, int ny, int nz) {
  std::vector<uint8_t> data(static_cast<size_t>(nx) * ny * nz);
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        data[(static_cast<size_t>(z) * ny + y) * nx + x] =
            static_cast<uint8_t>((x + 2 * y + 3 * z) % 256);
      }
    }
  }
  return RawVolume::Create(nx, ny, nz, std::move(data)).MoveValue();
}

TEST(RawVolumeTest, AtClampedClampsBorders) {
  RawVolume v = Ramp(4, 4, 4);
  EXPECT_EQ(v.AtClamped(-5, 0, 0), v.AtClamped(0, 0, 0));
  EXPECT_EQ(v.AtClamped(99, 3, 3), v.AtClamped(3, 3, 3));
}

TEST(RawVolumeTest, TrilinearInterpolatesExactAtGridPoints) {
  RawVolume v = Ramp(8, 8, 8);
  for (int z = 0; z < 8; z += 2) {
    for (int y = 0; y < 8; y += 2) {
      for (int x = 0; x < 8; x += 2) {
        EXPECT_NEAR(v.Trilinear(x, y, z), v.AtClamped(x, y, z), 1e-9);
      }
    }
  }
}

TEST(RawVolumeTest, TrilinearMidpointIsAverage) {
  // Linear ramp: midpoint value is the average of neighbours.
  RawVolume v = Ramp(8, 8, 8);
  double mid = v.Trilinear(2.5, 3.0, 1.0);
  double expected =
      (v.AtClamped(2, 3, 1) + v.AtClamped(3, 3, 1)) / 2.0;
  EXPECT_NEAR(mid, expected, 1e-9);
}

TEST(WarpTest, IdentityScaleWarpPreservesValues) {
  // A raw volume already in atlas dimensions warped with identity.
  const GridSpec grid{3, 3};  // 8^3
  RawVolume raw = Ramp(8, 8, 8);
  volume::Volume warped =
      WarpToAtlas(raw, Affine3::Identity(), grid, CurveKind::kHilbert);
  // Atlas voxel centers are at +0.5, so the identity mapping samples at
  // half-integer points; values must sit between neighbouring samples.
  for (int32_t z = 1; z < 7; ++z) {
    for (int32_t y = 1; y < 7; ++y) {
      for (int32_t x = 1; x < 7; ++x) {
        double lo = 255, hi = 0;
        for (int dz = 0; dz <= 1; ++dz) {
          for (int dy = 0; dy <= 1; ++dy) {
            for (int dx = 0; dx <= 1; ++dx) {
              double s = raw.AtClamped(x + dx, y + dy, z + dz);
              lo = std::min(lo, s);
              hi = std::max(hi, s);
            }
          }
        }
        double v = warped.ValueAt({x, y, z}).value();
        EXPECT_GE(v + 1.0, lo);
        EXPECT_LE(v - 1.0, hi);
      }
    }
  }
}

TEST(WarpTest, OutsideStudyIsZero) {
  const GridSpec grid{3, 4};  // 16^3 atlas
  // Tiny 4x4x4 raw study: most of the atlas maps outside it.
  std::vector<uint8_t> data(64, 200);
  RawVolume raw = RawVolume::Create(4, 4, 4, std::move(data)).MoveValue();
  volume::Volume warped =
      WarpToAtlas(raw, Affine3::Identity(), grid, CurveKind::kHilbert);
  EXPECT_EQ(warped.ValueAt({1, 1, 1}).value(), 200);
  EXPECT_EQ(warped.ValueAt({10, 10, 10}).value(), 0);
}

TEST(WarpTest, ScalingWarpResamples) {
  const GridSpec grid{3, 4};  // 16^3 atlas
  // Raw 32^3 study; atlas -> patient doubles coordinates.
  std::vector<uint8_t> data(32 * 32 * 32);
  for (int z = 0; z < 32; ++z) {
    for (int y = 0; y < 32; ++y) {
      for (int x = 0; x < 32; ++x) {
        data[(static_cast<size_t>(z) * 32 + y) * 32 + x] =
            static_cast<uint8_t>(x < 16 ? 50 : 150);
      }
    }
  }
  RawVolume raw = RawVolume::Create(32, 32, 32, std::move(data)).MoveValue();
  volume::Volume warped = WarpToAtlas(raw, Affine3::Scaling(2, 2, 2), grid,
                                      CurveKind::kHilbert);
  // Atlas x < 8 maps to patient x < 16 (value 50); x >= 8 to 150.
  EXPECT_NEAR(warped.ValueAt({3, 8, 8}).value(), 50, 2);
  EXPECT_NEAR(warped.ValueAt({12, 8, 8}).value(), 150, 2);
}

TEST(WarpTest, TranslationShiftsContent) {
  const GridSpec grid{3, 3};
  RawVolume raw = Ramp(8, 8, 8);
  volume::Volume shifted = WarpToAtlas(
      raw, Affine3::Translation({2, 0, 0}), grid, CurveKind::kHilbert);
  volume::Volume plain =
      WarpToAtlas(raw, Affine3::Identity(), grid, CurveKind::kHilbert);
  // shifted(x) samples patient x+2, i.e. plain(x+2).
  EXPECT_NEAR(shifted.ValueAt({2, 3, 3}).value(),
              plain.ValueAt({4, 3, 3}).value(), 1);
}

}  // namespace
}  // namespace qbism::warp
