// The disk-resident Hilbert-packed R-tree (src/index/rtree.h):
// bulk-load shapes (empty, single leaf, multi-level), probe exactness
// against a linear reference filter on randomized corpora, and the
// pruning counters a selective probe must show.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "index/rtree.h"
#include "index/summary.h"
#include "storage/buffer_pool.h"
#include "storage/disk_device.h"
#include "storage/heap_file.h"

namespace qbism::index {
namespace {

using curve::CurveKind;
using region::GridSpec;

constexpr GridSpec kGrid{3, 7};  // the 128^3 atlas grid

class RTreeTest : public ::testing::Test {
 protected:
  RTreeTest() : device_(1 << 12), pool_(&device_, 128), alloc_(1 << 12) {}

  HilbertRTree Load(std::vector<HilbertRTree::Entry> entries) {
    auto tree = HilbertRTree::BulkLoad(&pool_, &alloc_, kGrid,
                                       CurveKind::kHilbert,
                                       std::move(entries));
    QBISM_CHECK(tree.ok());
    return tree.MoveValue();
  }

  /// Entries scattered deterministically over the grid: study s gets
  /// `bands` boxes of side ~8 whose position is a hash of (s, band).
  std::vector<HilbertRTree::Entry> MakeEntries(int studies, int bands) {
    std::vector<HilbertRTree::Entry> entries;
    Rng rng(99);
    for (int s = 0; s < studies; ++s) {
      for (int b = 0; b < bands; ++b) {
        HilbertRTree::Entry e;
        e.study_id = s;
        e.lo = uint8_t(b * 64);
        e.hi = uint8_t(b * 64 + 63);
        e.signature = rng.Next() | 1;  // never zero
        auto x = uint16_t(rng.Next() % 120);
        auto y = uint16_t(rng.Next() % 120);
        auto z = uint16_t(rng.Next() % 120);
        e.box = BoundingBox{{x, y, z},
                            {uint16_t(x + 7), uint16_t(y + 7),
                             uint16_t(z + 7)}};
        entries.push_back(e);
      }
    }
    return entries;
  }

  /// The probe contract, applied linearly.
  static std::vector<int64_t> Reference(
      const std::vector<HilbertRTree::Entry>& entries, const BoundingBox& box,
      uint64_t sig, uint8_t band_lo, uint8_t band_hi) {
    std::vector<int64_t> out;
    for (const auto& e : entries) {
      if (!e.box.Intersects(box)) continue;
      if ((e.signature & sig) == 0) continue;
      if (e.lo < band_lo || e.hi > band_hi) continue;
      out.push_back(e.study_id);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<int64_t> ProbeAll(const HilbertRTree& tree,
                                const BoundingBox& box, uint64_t sig,
                                uint8_t band_lo, uint8_t band_hi,
                                ProbeCounters* counters = nullptr) {
    ProbeCounters local;
    std::vector<int64_t> out;
    Status s = tree.Probe(
        box, sig, band_lo, band_hi,
        [&](int64_t id) { out.push_back(id); },
        counters != nullptr ? counters : &local);
    QBISM_CHECK(s.ok());
    std::sort(out.begin(), out.end());
    return out;
  }

  storage::DiskDevice device_;
  storage::BufferPool pool_;
  storage::PageAllocator alloc_;
};

const BoundingBox kFullBox{{0, 0, 0}, {127, 127, 127}};

TEST_F(RTreeTest, EmptyTreeHasNoPagesAndEmitsNothing) {
  HilbertRTree tree = Load({});
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.page_count(), 0u);
  EXPECT_EQ(tree.height(), 0);
  ProbeCounters counters;
  EXPECT_TRUE(ProbeAll(tree, kFullBox, ~uint64_t{0}, 0, 255, &counters)
                  .empty());
  EXPECT_EQ(counters.pages_visited, 0u);
}

TEST_F(RTreeTest, SingleLeafTree) {
  auto entries = MakeEntries(/*studies=*/40, /*bands=*/2);  // 80 <= 127
  HilbertRTree tree = Load(entries);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.page_count(), 1u);
  EXPECT_EQ(tree.leaf_entries(), entries.size());
  EXPECT_EQ(ProbeAll(tree, kFullBox, ~uint64_t{0}, 0, 255),
            Reference(entries, kFullBox, ~uint64_t{0}, 0, 255));
}

TEST_F(RTreeTest, MultiLevelTreeMatchesReferenceOnRandomProbes) {
  auto entries = MakeEntries(/*studies=*/400, /*bands=*/2);  // 7 leaves
  HilbertRTree tree = Load(entries);
  EXPECT_EQ(tree.height(), 2);
  EXPECT_GE(tree.page_count(),
            entries.size() / HilbertRTree::kLeafFanout + 1);
  Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    auto x = uint16_t(rng.Next() % 128);
    auto y = uint16_t(rng.Next() % 128);
    auto z = uint16_t(rng.Next() % 128);
    auto side = uint16_t(rng.Next() % 40);
    BoundingBox box{{x, y, z},
                    {uint16_t(std::min(127, x + side)),
                     uint16_t(std::min(127, y + side)),
                     uint16_t(std::min(127, z + side))}};
    uint64_t sig = trial % 3 == 0 ? rng.Next() : ~uint64_t{0};
    uint8_t band_lo = trial % 2 == 0 ? 0 : 64;
    uint8_t band_hi = trial % 2 == 0 ? 255 : 127;
    EXPECT_EQ(ProbeAll(tree, box, sig, band_lo, band_hi),
              Reference(entries, box, sig, band_lo, band_hi))
        << "trial " << trial;
  }
}

TEST_F(RTreeTest, DuplicateStudyEmittedOncePerQualifyingBand) {
  std::vector<HilbertRTree::Entry> entries;
  for (int b = 0; b < 3; ++b) {
    HilbertRTree::Entry e;
    e.study_id = 7;
    e.lo = 0;
    e.hi = 255;
    e.signature = 1;
    e.box = BoundingBox{{0, 0, 0}, {5, 5, 5}};
    entries.push_back(e);
  }
  HilbertRTree tree = Load(entries);
  auto got = ProbeAll(tree, kFullBox, ~uint64_t{0}, 0, 255);
  EXPECT_EQ(got, (std::vector<int64_t>{7, 7, 7}));
}

TEST_F(RTreeTest, SelectiveProbeSkipsMostLeafPages) {
  // Hilbert packing keeps spatially close entries in the same leaf, so
  // a corner probe must not read the whole leaf level.
  auto entries = MakeEntries(/*studies=*/2000, /*bands=*/1);  // 16 leaves
  HilbertRTree tree = Load(entries);
  ASSERT_EQ(tree.height(), 2);
  ProbeCounters counters;
  BoundingBox corner{{0, 0, 0}, {15, 15, 15}};
  ProbeAll(tree, corner, ~uint64_t{0}, 0, 255, &counters);
  EXPECT_GT(counters.pages_visited, 0u);
  EXPECT_LT(counters.pages_visited, tree.page_count())
      << "a corner probe read every page of the tree";
  EXPECT_GT(counters.pruned_box, 0u);
}

TEST_F(RTreeTest, SignatureAndBandPrunesAreCounted) {
  auto entries = MakeEntries(/*studies=*/50, /*bands=*/2);
  HilbertRTree tree = Load(entries);
  ProbeCounters counters;
  // sig=0 ANDs to zero with everything: every tested entry is rejected
  // at the signature level (after the box test passes on the full box).
  EXPECT_TRUE(ProbeAll(tree, kFullBox, 0, 0, 255, &counters).empty());
  EXPECT_GT(counters.pruned_sig, 0u);
  EXPECT_EQ(counters.emitted, 0u);
  counters = ProbeCounters{};
  // Band window [0,63] keeps band 0 and prunes band 1 at the leaves.
  auto got = ProbeAll(tree, kFullBox, ~uint64_t{0}, 0, 63, &counters);
  EXPECT_EQ(got.size(), 50u);
  EXPECT_GT(counters.pruned_band, 0u);
  EXPECT_EQ(counters.emitted, 50u);
}

}  // namespace
}  // namespace qbism::index
