// Concurrent build/probe of the cross-study index, written for the
// tsan preset (`ctest -L concurrency` in a -DQBISM_SANITIZE=tsan
// build): reader threads probe (directly and through SQL with the
// planner hook installed) while a writer ingests studies, rebuilds the
// packed tree, and vacuums retired versions. Probes must stay sound
// (a superset of the committed truth is re-checked by SQL, so the
// observable invariant is: results only ever grow as studies commit,
// and the final state equals a cold rebuild).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "index/manager.h"
#include "med/loader.h"
#include "med/schema.h"
#include "qbism/ingest.h"
#include "qbism/spatial_extension.h"
#include "sql/database.h"

namespace qbism::index {
namespace {

using region::GridSpec;
using region::Region;

sql::DatabaseOptions WalOptions() {
  sql::DatabaseOptions dbo;
  dbo.relational_pages = 1 << 10;
  dbo.long_field_pages = 1 << 11;
  dbo.buffer_pool_pages = 64;
  dbo.enable_wal = true;
  dbo.wal_pages = 1 << 10;
  return dbo;
}

med::StudyRecord MakeRecord(int study_id, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data(16 * 16 * 8);
  for (auto& b : data) b = uint8_t(rng.Next());
  med::StudyRecord record;
  record.study_id = study_id;
  record.patient_id = 100 + study_id;
  record.date = "1993-07-01";
  record.modality = "PET";
  record.raw = warp::RawVolume::Create(16, 16, 8, std::move(data)).value();
  record.warp_seed = seed;
  record.band_width = 64;
  record.store_raw = false;
  return record;
}

TEST(IndexConcurrencyTest, ProbesRaceIngestRebuildAndVacuum) {
  sql::Database db(WalOptions());
  SpatialConfig config;
  config.grid = GridSpec{3, 5};
  auto ext = SpatialExtension::Install(&db, config);
  ASSERT_TRUE(ext.ok());
  ASSERT_TRUE(med::BootstrapSchema(&db).ok());

  SpatialExtension* e = ext->get();
  SpatialIndexManager manager(e);
  ASSERT_TRUE(manager.BuildFromCatalog().ok());
  IngestManager ingest(e);
  ingest.set_index_manager(&manager);
  db.set_candidate_index_hook(manager.MakeHook());

  constexpr int kStudies = 6;
  constexpr int kReaders = 3;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> committed{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  Region full = Region::Full(config.grid, config.curve);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(uint64_t(1000 + r));
      uint64_t low_water = 0;
      while (!done.load(std::memory_order_acquire)) {
        uint64_t floor_now = committed.load(std::memory_order_acquire);
        if (rng.Next() % 2 == 0) {
          auto ids = manager.ProbeIntersect(full, 0, 255);
          ASSERT_TRUE(ids.ok());
          // Monotone growth: every study committed before the probe
          // started must be visible (probes never lose studies).
          ASSERT_GE(ids->size(), floor_now);
          ASSERT_GE(ids->size(), low_water);
          low_water = ids->size() > low_water ? ids->size() : low_water;
        } else {
          auto rows = db.Execute(
              "select studyId from intensityBand where "
              "intersects(region, boxregion(0, 0, 0, 31, 31, 31)) <> 0");
          // Raw SQL scans are not gated on in-flight ingests (that is
          // the service layer's offline-study gating, see
          // docs/DURABILITY.md): a scan can see the transaction's
          // eagerly inserted row while its long field is still staged,
          // and the decode then reports NotFound. That one outcome is
          // benign; anything else is a real failure.
          if (!rows.ok()) {
            ASSERT_TRUE(rows.status().IsNotFound())
                << rows.status().ToString();
          }
        }
      }
    });
  }

  std::thread churn([&] {
    // Rebuild + vacuum churn concurrent with both probes and publishes.
    // Rebuilds are capped: each one takes fresh pages from the shared
    // bump allocator (which never frees), so an unbounded loop would
    // run the device out of pages rather than find races.
    int rebuilds_left = 32;
    while (!done.load(std::memory_order_acquire)) {
      if (rebuilds_left > 0) {
        --rebuilds_left;
        ASSERT_TRUE(manager.RebuildPacked().ok());
      }
      manager.Vacuum();
      std::this_thread::yield();
    }
  });

  for (int s = 0; s < kStudies; ++s) {
    ASSERT_TRUE(ingest.IngestStudy(MakeRecord(300 + s, uint64_t(s))).ok());
    committed.fetch_add(1, std::memory_order_release);
  }
  // One replace to exercise version retirement under concurrency.
  ASSERT_TRUE(ingest.ReplaceStudy(MakeRecord(300, 999)).ok());
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  churn.join();

  // Quiesced: the maintained index equals a cold rebuild.
  SpatialIndexManager fresh(e);
  ASSERT_TRUE(fresh.BuildFromCatalog().ok());
  manager.Vacuum();
  auto maintained = manager.ProbeIntersect(full, 0, 255);
  auto cold = fresh.ProbeIntersect(full, 0, 255);
  ASSERT_TRUE(maintained.ok());
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(*maintained, *cold);
  EXPECT_EQ(manager.stats().live_studies, uint64_t(kStudies));
}

}  // namespace
}  // namespace qbism::index
