// Unit coverage for the cross-study index's summary layer
// (docs/INDEXING.md): the hierarchical intensity bitmap, per-band
// bounding boxes and run signatures, and the StudySummary wire format
// that rides in kIndexUpsert WAL records.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "index/bitmap.h"
#include "index/summary.h"
#include "region/region.h"

namespace qbism::index {
namespace {

using curve::CurveKind;
using region::GridSpec;
using region::Region;

constexpr GridSpec kGrid{3, 5};  // 32^3

Region Box(int x0, int y0, int z0, int x1, int y1, int z1) {
  return Region::FromBox(kGrid, CurveKind::kHilbert,
                         {{x0, y0, z0}, {x1, y1, z1}});
}

// --- IntensityBitmap ----------------------------------------------------

TEST(IntensityBitmapTest, SetAndTestSingleValues) {
  IntensityBitmap bm;
  EXPECT_TRUE(bm.Empty());
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);  // word boundary
  bm.Set(255);
  EXPECT_FALSE(bm.Empty());
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(255));
  EXPECT_FALSE(bm.Test(1));
  EXPECT_FALSE(bm.Test(128));
}

TEST(IntensityBitmapTest, SetRangeMatchesPerValueSets) {
  // Ranges crossing word and group boundaries must equal value-by-value
  // construction bit for bit.
  const std::pair<int, int> kRanges[] = {
      {0, 0},  {0, 255},  {31, 32},  {63, 64},   {60, 70},
      {5, 58}, {127, 129}, {200, 255}, {32, 95},
  };
  for (auto [lo, hi] : kRanges) {
    IntensityBitmap ranged;
    ranged.SetRange(uint8_t(lo), uint8_t(hi));
    IntensityBitmap scalar;
    for (int v = lo; v <= hi; ++v) scalar.Set(uint8_t(v));
    EXPECT_EQ(ranged, scalar) << "range [" << lo << ", " << hi << "]";
  }
}

TEST(IntensityBitmapTest, AnyInRangeAgainstNaiveReference) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    IntensityBitmap bm;
    std::vector<bool> present(256, false);
    for (int i = 0; i < 8; ++i) {
      auto v = uint8_t(rng.Next() & 0xff);
      bm.Set(v);
      present[v] = true;
    }
    auto a = uint8_t(rng.Next() & 0xff);
    auto b = uint8_t(rng.Next() & 0xff);
    uint8_t lo = std::min(a, b), hi = std::max(a, b);
    bool naive = false;
    for (int v = lo; v <= hi; ++v) naive = naive || present[size_t(v)];
    EXPECT_EQ(bm.AnyInRange(lo, hi), naive)
        << "trial " << trial << " [" << int(lo) << ", " << int(hi) << "]";
  }
}

TEST(IntensityBitmapTest, AnyInRangeEdges) {
  IntensityBitmap bm;
  bm.SetRange(100, 120);
  EXPECT_FALSE(bm.AnyInRange(120, 100));  // inverted interval
  EXPECT_FALSE(bm.AnyInRange(0, 99));
  EXPECT_FALSE(bm.AnyInRange(121, 255));
  EXPECT_TRUE(bm.AnyInRange(120, 120));
  EXPECT_TRUE(bm.AnyInRange(0, 100));
  EXPECT_TRUE(bm.AnyInRange(0, 255));
}

TEST(IntensityBitmapTest, UnionWithCombinesBothSides) {
  IntensityBitmap a, b;
  a.SetRange(0, 10);
  b.SetRange(200, 210);
  a.UnionWith(b);
  EXPECT_TRUE(a.AnyInRange(5, 5));
  EXPECT_TRUE(a.AnyInRange(205, 205));
  EXPECT_FALSE(a.AnyInRange(50, 150));
}

TEST(IntensityBitmapTest, SerializeRoundTrips) {
  IntensityBitmap bm;
  bm.SetRange(17, 91);
  bm.Set(250);
  std::vector<uint8_t> bytes;
  bm.Serialize(&bytes);
  ASSERT_EQ(bytes.size(), IntensityBitmap::kSerializedSize);
  IntensityBitmap back;
  back.Deserialize(bytes.data());
  EXPECT_EQ(back, bm);
}

// --- BoundingBox --------------------------------------------------------

TEST(BoundingBoxTest, IntersectsAndExpand) {
  BoundingBox a{{0, 0, 0}, {10, 10, 10}};
  BoundingBox b{{10, 10, 10}, {20, 20, 20}};  // touching corner counts
  BoundingBox c{{11, 0, 0}, {20, 10, 10}};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  a.ExpandTo(c);
  EXPECT_EQ(a.min[0], 0);
  EXPECT_EQ(a.max[0], 20);
  uint32_t mid[3];
  a.Centroid2(mid);
  EXPECT_EQ(mid[0], 20u);  // min + max
}

// --- Region-derived summaries -------------------------------------------

TEST(SummaryTest, RegionBoundsOfBoxIsExact) {
  Region r = Box(3, 5, 7, 12, 9, 20);
  BoundingBox box = RegionBounds(r);
  EXPECT_EQ(box.min[0], 3);
  EXPECT_EQ(box.min[1], 5);
  EXPECT_EQ(box.min[2], 7);
  EXPECT_EQ(box.max[0], 12);
  EXPECT_EQ(box.max[1], 9);
  EXPECT_EQ(box.max[2], 20);
}

TEST(SummaryTest, RegionBoundsOfEmptyIsDegenerate) {
  Region empty(kGrid, CurveKind::kHilbert);
  BoundingBox box = RegionBounds(empty);
  EXPECT_EQ(box, (BoundingBox{{0, 0, 0}, {0, 0, 0}}));
}

TEST(SummaryTest, SignatureSeparatesDistantRegions) {
  // Opposite corners of the grid land in different 1/64th chunks of the
  // curve id space, so their signatures must be AND-disjoint; a region
  // always ANDs non-zero with itself (unless empty).
  Region a = Box(0, 0, 0, 3, 3, 3);
  Region b = Box(28, 28, 28, 31, 31, 31);
  uint64_t sa = RegionSignature(a);
  uint64_t sb = RegionSignature(b);
  EXPECT_NE(sa, 0u);
  EXPECT_NE(sb, 0u);
  EXPECT_EQ(sa & sb, 0u);
  EXPECT_NE(sa & RegionSignature(a), 0u);
  EXPECT_EQ(RegionSignature(Region(kGrid, CurveKind::kHilbert)), 0u);
}

TEST(SummaryTest, SignatureOfFullGridSetsEveryChunk) {
  EXPECT_EQ(RegionSignature(Region::Full(kGrid, CurveKind::kHilbert)),
            ~uint64_t{0});
}

TEST(SummaryTest, SummarizeBandRegionFillsEveryField) {
  Region r = Box(2, 2, 2, 9, 9, 9);
  BandSummary bs = SummarizeBandRegion(32, 63, r);
  EXPECT_EQ(bs.lo, 32);
  EXPECT_EQ(bs.hi, 63);
  EXPECT_EQ(bs.voxels, r.VoxelCount());
  EXPECT_EQ(bs.runs, uint32_t(r.RunCount()));
  EXPECT_EQ(bs.signature, RegionSignature(r));
  EXPECT_EQ(bs.box, RegionBounds(r));
}

// --- StudySummary wire format -------------------------------------------

StudySummary MakeSummary() {
  StudySummary s;
  s.study_id = 53;
  s.atlas_id = 1;
  s.bitmap.SetRange(0, 31);
  s.bitmap.SetRange(96, 127);
  s.bands.push_back(SummarizeBandRegion(0, 31, Box(0, 0, 0, 7, 7, 7)));
  s.bands.push_back(SummarizeBandRegion(96, 127, Box(20, 20, 20, 31, 31, 31)));
  return s;
}

TEST(StudySummaryTest, SerializeRoundTrips) {
  StudySummary s = MakeSummary();
  std::vector<uint8_t> bytes;
  s.Serialize(&bytes);
  auto back = StudySummary::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, s);
}

TEST(StudySummaryTest, RoundTripsWithNoBands) {
  StudySummary s;
  s.study_id = -9;  // ids are signed on the wire
  s.atlas_id = 2;
  std::vector<uint8_t> bytes;
  s.Serialize(&bytes);
  auto back = StudySummary::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, s);
}

TEST(StudySummaryTest, DeserializeRejectsTruncation) {
  StudySummary s = MakeSummary();
  std::vector<uint8_t> bytes;
  s.Serialize(&bytes);
  for (size_t cut : {size_t{0}, size_t{4}, bytes.size() - 1}) {
    EXPECT_FALSE(StudySummary::Deserialize(bytes.data(), cut).ok())
        << "accepted a summary truncated to " << cut << " bytes";
  }
}

}  // namespace
}  // namespace qbism::index
