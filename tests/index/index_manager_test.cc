// SpatialIndexManager end to end (docs/INDEXING.md): build from the
// catalog, probe soundness, the planner hook's candidate pruning, and —
// the load-bearing suite — the randomized differential check that every
// index-pruned SQL result is byte-identical to the same query executed
// with no index installed. Also covers transactional maintenance under
// ingest (delta overlay, rebuild, versioning, vacuum).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "index/manager.h"
#include "med/loader.h"
#include "med/schema.h"
#include "qbism/ingest.h"
#include "qbism/spatial_extension.h"
#include "sql/database.h"

namespace qbism::index {
namespace {

using region::GridSpec;
using region::Region;
using sql::Value;

sql::DatabaseOptions WalOptions() {
  sql::DatabaseOptions dbo;
  dbo.relational_pages = 1 << 10;
  dbo.long_field_pages = 1 << 10;
  dbo.buffer_pool_pages = 64;
  dbo.enable_wal = true;
  dbo.wal_pages = 1 << 9;
  return dbo;
}

/// A populated corpus on the 32^3 grid: 3 PET studies, no MRI (they are
/// slow to synthesize and add nothing here), no meshes or raw copies.
class IndexManagerTest : public ::testing::Test {
 protected:
  IndexManagerTest() : db_(WalOptions()) {
    SpatialConfig config;
    config.grid = GridSpec{3, 5};
    auto ext = SpatialExtension::Install(&db_, config);
    QBISM_CHECK(ext.ok());
    ext_ = ext.MoveValue();
    QBISM_CHECK(med::BootstrapSchema(&db_).ok());
    med::LoadOptions options;
    options.num_pet_studies = 3;
    options.num_mri_studies = 0;
    options.build_meshes = false;
    options.store_raw_volumes = false;
    auto dataset = med::PopulateDatabase(ext_.get(), options);
    QBISM_CHECK(dataset.ok());
    dataset_ = dataset.MoveValue();
  }

  Region Box(int x0, int y0, int z0, int x1, int y1, int z1) {
    return Region::FromBox(ext_->config().grid, ext_->config().curve,
                           {{x0, y0, z0}, {x1, y1, z1}});
  }

  /// Renders a result set as one comparable string per row. Byte
  /// identity of these strings (including row order) is the acceptance
  /// bar for index pruning.
  static std::vector<std::string> Render(const sql::ResultSet& rs) {
    std::vector<std::string> out;
    for (const sql::Row& row : rs.rows) {
      std::string line;
      for (const Value& v : row) {
        line += v.ToString();
        line += '|';
      }
      out.push_back(std::move(line));
    }
    return out;
  }

  std::vector<std::string> Run(const std::string& sql) {
    auto result = db_.Execute(sql);
    QBISM_CHECK(result.ok());
    return Render(*result);
  }

  sql::Database db_;
  std::unique_ptr<SpatialExtension> ext_;
  med::LoadedDataset dataset_;
};

TEST_F(IndexManagerTest, BuildFromCatalogCoversEveryStudy) {
  SpatialIndexManager manager(ext_.get());
  EXPECT_FALSE(manager.authoritative());
  ASSERT_TRUE(manager.BuildFromCatalog().ok());
  EXPECT_TRUE(manager.authoritative());

  IndexStats stats = manager.stats();
  EXPECT_EQ(stats.live_studies, 3u);
  EXPECT_GT(stats.live_bands, 0u);
  // The packed tree holds one entry per *non-empty* band — an empty
  // band can never satisfy an intersects probe, so it is summarized but
  // not packed — while live_bands counts every catalog row.
  std::vector<std::string> nonempty =
      Run("select count(*) from intensityBand where voxelcount(region) > 0");
  ASSERT_EQ(nonempty.size(), 1u);
  EXPECT_EQ(std::to_string(stats.tree_entries) + "|", nonempty[0]);
  EXPECT_LE(stats.tree_entries, stats.live_bands);
  EXPECT_GT(stats.tree_entries, 0u);
  EXPECT_GT(stats.tree_pages, 0u);
  EXPECT_EQ(stats.delta_studies, 0u);

  // The full grid at the full intensity window is a superset probe: it
  // must return every study with any non-empty band.
  auto all = manager.ProbeIntersect(
      Region::Full(ext_->config().grid, ext_->config().curve), 0, 255);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
  EXPECT_TRUE(std::is_sorted(all->begin(), all->end()));
}

TEST_F(IndexManagerTest, ProbeRespectsIntensityWindow) {
  SpatialIndexManager manager(ext_.get());
  ASSERT_TRUE(manager.BuildFromCatalog().ok());
  Region full = Region::Full(ext_->config().grid, ext_->config().curve);
  // An intensity window no stored band lies inside (bands are width 32
  // aligned at multiples of 32, so [1, 30] contains no whole band).
  auto none = manager.ProbeIntersect(full, 1, 30);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  // An empty probe region intersects nothing.
  auto empty = manager.ProbeIntersect(
      Region(ext_->config().grid, ext_->config().curve), 0, 255);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_F(IndexManagerTest, HookPrunesPlansAndKeepsResultsIdentical) {
  // Pad the population with far-corner studies the probe box cannot
  // reach: the planner only adopts a candidate set that is a *strict*
  // subset of the studies (one covering everything prunes nothing), and
  // the three PET phantoms all straddle the probe box below.
  for (int64_t s = 0; s < 8; ++s) {
    auto field = ext_->StoreRegion(Box(24, 24, 24, 30, 30, 30));
    ASSERT_TRUE(field.ok());
    ASSERT_TRUE(db_.Insert("intensityBand",
                           {Value::Int(900 + s), Value::Int(1), Value::Int(0),
                            Value::Int(255), Value::LongField(field.MoveValue())})
                    .ok());
  }

  // Reference results first, with no index installed.
  const std::string query =
      "select studyId, lo, hi from intensityBand "
      "where intersects(region, boxregion(0, 0, 0, 10, 10, 10)) <> 0";
  std::vector<std::string> reference = Run(query);
  ASSERT_FALSE(reference.empty());

  SpatialIndexManager manager(ext_.get());
  ASSERT_TRUE(manager.BuildFromCatalog().ok());
  db_.set_candidate_index_hook(manager.MakeHook());

  // The hook answers and the plan says so (installation bumped the
  // index version, so the cached unpruned plan cannot be reused).
  auto lines = db_.Execute("explain " + query);
  ASSERT_TRUE(lines.ok());
  bool saw_candidates = false;
  std::string plan_text;
  for (const sql::Row& row : lines->rows) {
    plan_text += row[0].AsString().value() + "\n";
    saw_candidates = saw_candidates ||
        row[0].AsString().value().find("candidate probe") != std::string::npos;
  }
  EXPECT_TRUE(saw_candidates)
      << "EXPLAIN never mentioned the index; plan was:\n" << plan_text;

  uint64_t probes_before = manager.stats().probes;
  EXPECT_EQ(Run(query), reference);
  EXPECT_GT(manager.stats().probes, probes_before);
}

TEST_F(IndexManagerTest, RandomizedDifferentialAgainstUnindexedExecution) {
  // Every query shape the hook recognizes, over random probe boxes and
  // random intensity windows; run each against the bare database first,
  // then with the index installed. Rows must match byte for byte.
  std::vector<std::string> queries;
  Rng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    int x = int(rng.Next() % 28);
    int y = int(rng.Next() % 28);
    int z = int(rng.Next() % 28);
    int side = 1 + int(rng.Next() % 16);
    std::string box = "boxregion(" + std::to_string(x) + ", " +
                      std::to_string(y) + ", " + std::to_string(z) + ", " +
                      std::to_string(std::min(31, x + side)) + ", " +
                      std::to_string(std::min(31, y + side)) + ", " +
                      std::to_string(std::min(31, z + side)) + ")";
    std::string query = "select studyId, lo, hi, voxelcount(region) "
                        "from intensityBand where intersects(region, " +
                        box + ") <> 0";
    switch (trial % 4) {
      case 0:
        break;
      case 1:
        query += " and lo >= " + std::to_string(rng.Next() % 256);
        break;
      case 2:
        query += " and hi <= " + std::to_string(rng.Next() % 256);
        break;
      default:
        query += " and lo >= " + std::to_string(rng.Next() % 128) +
                 " and hi <= " + std::to_string(128 + rng.Next() % 128);
        break;
    }
    queries.push_back(std::move(query));
  }

  std::vector<std::vector<std::string>> reference;
  reference.reserve(queries.size());
  for (const std::string& q : queries) reference.push_back(Run(q));

  SpatialIndexManager manager(ext_.get());
  ASSERT_TRUE(manager.BuildFromCatalog().ok());
  db_.set_candidate_index_hook(manager.MakeHook());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(Run(queries[i]), reference[i]) << queries[i];
  }
}

TEST_F(IndexManagerTest, IngestMaintainsTheIndexThroughDeltaAndRebuild) {
  SpatialIndexManager manager(ext_.get());
  ASSERT_TRUE(manager.BuildFromCatalog().ok());
  IngestManager ingest(ext_.get());
  ingest.set_index_manager(&manager);

  Rng rng(31);
  std::vector<uint8_t> data(16 * 16 * 8);
  for (auto& b : data) b = uint8_t(rng.Next());
  med::StudyRecord record;
  record.study_id = 200;
  record.patient_id = 9;
  record.date = "1993-07-02";
  record.modality = "PET";
  record.raw = warp::RawVolume::Create(16, 16, 8, std::move(data)).value();
  record.warp_seed = 31;
  record.band_width = 64;
  record.store_raw = false;
  ASSERT_TRUE(ingest.IngestStudy(record).ok());

  // The new study is served from the delta overlay...
  IndexStats stats = manager.stats();
  EXPECT_EQ(stats.live_studies, 4u);
  EXPECT_EQ(stats.delta_studies, 1u);
  Region full = Region::Full(ext_->config().grid, ext_->config().curve);
  auto ids = manager.ProbeIntersect(full, 0, 255);
  ASSERT_TRUE(ids.ok());
  EXPECT_TRUE(std::binary_search(ids->begin(), ids->end(), int64_t{200}));

  // ...and folds into the packed tree on rebuild.
  ASSERT_TRUE(manager.RebuildPacked().ok());
  stats = manager.stats();
  EXPECT_EQ(stats.delta_studies, 0u);
  // One packed entry per non-empty band (see BuildFromCatalog test).
  std::vector<std::string> nonempty =
      Run("select count(*) from intensityBand where voxelcount(region) > 0");
  ASSERT_EQ(nonempty.size(), 1u);
  EXPECT_EQ(std::to_string(stats.tree_entries) + "|", nonempty[0]);
  auto after = manager.ProbeIntersect(full, 0, 255);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *ids);

  // An index-maintained catalog answers exactly like a fresh build.
  SpatialIndexManager fresh(ext_.get());
  ASSERT_TRUE(fresh.BuildFromCatalog().ok());
  auto expect = fresh.ProbeIntersect(full, 0, 255);
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(*after, *expect);
}

TEST_F(IndexManagerTest, ReplaceRetiresTheOldVersionAndVacuumDropsIt) {
  SpatialIndexManager manager(ext_.get());
  ASSERT_TRUE(manager.BuildFromCatalog().ok());
  IngestManager ingest(ext_.get());
  ingest.set_index_manager(&manager);

  Rng rng(77);
  std::vector<uint8_t> data(16 * 16 * 8);
  for (auto& b : data) b = uint8_t(rng.Next());
  med::StudyRecord record;
  record.study_id = dataset_.pet_study_ids.front();
  record.patient_id = 1;
  record.date = "1993-07-03";
  record.modality = "PET";
  record.raw = warp::RawVolume::Create(16, 16, 8, std::move(data)).value();
  record.warp_seed = 77;
  record.band_width = 64;
  record.store_raw = false;
  ASSERT_TRUE(ingest.ReplaceStudy(record).ok());

  IndexStats stats = manager.stats();
  EXPECT_EQ(stats.live_studies, 3u);
  EXPECT_GE(stats.dead_versions, 1u);

  manager.Vacuum();
  stats = manager.stats();
  EXPECT_EQ(stats.dead_versions, 0u);
  EXPECT_GE(stats.vacuumed_versions, 1u);
  EXPECT_EQ(stats.live_studies, 3u);
}

TEST_F(IndexManagerTest, HookDeclinesOtherTablesAndForeignPredicates) {
  SpatialIndexManager manager(ext_.get());
  ASSERT_TRUE(manager.BuildFromCatalog().ok());
  auto hook = manager.MakeHook();
  // Wrong table: no opinion.
  EXPECT_FALSE(hook("rawVolume", "rawVolume", {}).has_value());
  // Right table but no intersects conjunct: the bitmap alone may not
  // prune (an empty-region row still satisfies a plain lo/hi range).
  EXPECT_FALSE(hook("intensityBand", "intensityBand", {}).has_value());
}

TEST_F(IndexManagerTest, NonAuthoritativeManagerNeverAnswers) {
  SpatialIndexManager manager(ext_.get());
  auto hook = manager.MakeHook();
  EXPECT_FALSE(hook("intensityBand", "intensityBand", {}).has_value());
}

}  // namespace
}  // namespace qbism::index
