// Crash recovery of the cross-study index (docs/INDEXING.md): the
// kIndexUpsert records an ingest logs must commit atomically with the
// study's rows, and after any crash the replayed index (ApplyRecovered)
// must answer every probe exactly like a from-scratch rebuild over the
// recovered catalog (BuildFromCatalog). Includes the adversarial arm:
// a kill at every page-transfer site of an in-flight ingest, on the
// data device and on the log device.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "index/manager.h"
#include "med/loader.h"
#include "med/schema.h"
#include "qbism/ingest.h"
#include "qbism/spatial_extension.h"
#include "sql/database.h"
#include "storage/disk_device.h"
#include "storage/fault_plan.h"

namespace qbism::index {
namespace {

using region::GridSpec;
using region::Region;

sql::DatabaseOptions WalOptions() {
  sql::DatabaseOptions dbo;
  dbo.relational_pages = 1 << 10;
  dbo.long_field_pages = 1 << 10;
  dbo.buffer_pool_pages = 64;
  dbo.enable_wal = true;
  dbo.wal_pages = 1 << 9;
  return dbo;
}

struct World {
  sql::Database db;
  std::unique_ptr<SpatialExtension> ext;
  std::unique_ptr<IngestManager> ingest;
  std::unique_ptr<SpatialIndexManager> index;

  World() : db(WalOptions()) {}
};

Result<std::shared_ptr<World>> BuildWorld() {
  auto world = std::make_shared<World>();
  SpatialConfig config;
  config.grid = GridSpec{3, 5};
  QBISM_ASSIGN_OR_RETURN(world->ext,
                         SpatialExtension::Install(&world->db, config));
  QBISM_RETURN_NOT_OK(med::BootstrapSchema(&world->db));
  world->ingest = std::make_unique<IngestManager>(world->ext.get());
  world->index = std::make_unique<SpatialIndexManager>(world->ext.get());
  QBISM_RETURN_NOT_OK(world->index->BuildFromCatalog());
  world->ingest->set_index_manager(world->index.get());
  return world;
}

med::StudyRecord MakeRecord(int study_id, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data(16 * 16 * 8);
  for (auto& b : data) b = uint8_t(rng.Next());
  med::StudyRecord record;
  record.study_id = study_id;
  record.patient_id = 100 + study_id;
  record.date = "1993-07-01";
  record.modality = "PET";
  record.raw = warp::RawVolume::Create(16, 16, 8, std::move(data)).value();
  record.warp_seed = seed;
  record.band_width = 64;
  record.store_raw = false;
  return record;
}

struct CrashImage {
  std::vector<uint8_t> lfm;
  std::vector<uint8_t> wal;
};

CrashImage Snapshot(World* world) {
  return CrashImage{world->db.long_field_device()->CloneContents(),
                    world->db.wal_device()->CloneContents()};
}

/// Recovers a fresh world from the platters, replays the committed
/// index records into one manager, cold-builds a second from the
/// recovered catalog, and requires the two to agree on every probe of a
/// deterministic battery (the full grid plus random boxes and
/// intensity windows). Returns the replayed manager's world.
Result<std::shared_ptr<World>> RecoverAndCheck(const CrashImage& image,
                                               sql::RecoveryStats* stats_out) {
  auto world = std::make_shared<World>();
  SpatialConfig config;
  config.grid = GridSpec{3, 5};
  QBISM_ASSIGN_OR_RETURN(world->ext,
                         SpatialExtension::Install(&world->db, config));
  QBISM_RETURN_NOT_OK(med::BootstrapSchema(&world->db));
  QBISM_RETURN_NOT_OK(
      world->db.long_field_device()->RestoreContents(image.lfm));
  QBISM_RETURN_NOT_OK(world->db.wal_device()->RestoreContents(image.wal));
  QBISM_ASSIGN_OR_RETURN(sql::RecoveryStats stats, world->db.Recover());
  if (stats_out != nullptr) *stats_out = stats;

  world->index = std::make_unique<SpatialIndexManager>(world->ext.get());
  QBISM_RETURN_NOT_OK(
      world->index->ApplyRecovered(world->db.TakeRecoveredIndexRecords()));
  if (!world->index->authoritative()) {
    return Status::Internal("replayed index is not authoritative");
  }

  SpatialIndexManager rebuilt(world->ext.get());
  QBISM_RETURN_NOT_OK(rebuilt.BuildFromCatalog());

  GridSpec grid = world->ext->config().grid;
  curve::CurveKind kind = world->ext->config().curve;
  std::vector<Region> probes;
  probes.push_back(Region::Full(grid, kind));
  Rng rng(1234);
  for (int i = 0; i < 12; ++i) {
    int x = int(rng.Next() % 28), y = int(rng.Next() % 28),
        z = int(rng.Next() % 28);
    int s = 1 + int(rng.Next() % 12);
    probes.push_back(Region::FromBox(
        grid, kind,
        {{x, y, z},
         {std::min(31, x + s), std::min(31, y + s), std::min(31, z + s)}}));
  }
  for (size_t i = 0; i < probes.size(); ++i) {
    auto lo = uint8_t((i * 37) % 200);
    auto hi = uint8_t(lo + 55);
    QBISM_ASSIGN_OR_RETURN(std::vector<int64_t> replayed,
                           world->index->ProbeIntersect(probes[i], lo, hi));
    QBISM_ASSIGN_OR_RETURN(std::vector<int64_t> cold,
                           rebuilt.ProbeIntersect(probes[i], lo, hi));
    if (replayed != cold) {
      return Status::Internal(
          "probe " + std::to_string(i) +
          ": WAL-replayed index and catalog rebuild disagree");
    }
  }

  world->ingest = std::make_unique<IngestManager>(world->ext.get());
  world->ingest->set_index_manager(world->index.get());
  return world;
}

TEST(IndexCrashTest, CommittedIngestsRecoverIntoTheIndex) {
  auto world = BuildWorld().MoveValue();
  ASSERT_TRUE(world->ingest->IngestStudy(MakeRecord(1, 11)).ok());
  ASSERT_TRUE(world->ingest->IngestStudy(MakeRecord(2, 22)).ok());

  sql::RecoveryStats stats;
  auto recovered = RecoverAndCheck(Snapshot(world.get()), &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(stats.committed_txns, 2u);
  EXPECT_EQ(stats.index_records, 2u);
  IndexStats istats = (*recovered)->index->stats();
  EXPECT_EQ(istats.live_studies, 2u);

  // The recovered world keeps maintaining the index.
  ASSERT_TRUE((*recovered)->ingest->IngestStudy(MakeRecord(3, 33)).ok());
  EXPECT_EQ((*recovered)->index->stats().live_studies, 3u);
}

TEST(IndexCrashTest, ReplaceRecoversLastWins) {
  auto world = BuildWorld().MoveValue();
  ASSERT_TRUE(world->ingest->IngestStudy(MakeRecord(1, 11)).ok());
  ASSERT_TRUE(world->ingest->ReplaceStudy(MakeRecord(1, 99)).ok());

  sql::RecoveryStats stats;
  auto recovered = RecoverAndCheck(Snapshot(world.get()), &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(stats.index_records, 2u);  // both upserts replay, last wins
  EXPECT_EQ((*recovered)->index->stats().live_studies, 1u);
}

// The adversarial matrix: enumerate every page transfer the ingest of
// study 2 performs on one device, then re-run with a persistent fault
// at each site. The ingest must fail, and recovery must see exactly the
// one committed study — in the catalog AND in the replayed index.
Result<uint64_t> RunCrashMatrix(bool fault_log_device) {
  QBISM_ASSIGN_OR_RETURN(std::shared_ptr<World> world, BuildWorld());
  QBISM_RETURN_NOT_OK(world->ingest->IngestStudy(MakeRecord(1, 11)));
  storage::DiskDevice* device = fault_log_device
                                    ? world->db.wal_device()
                                    : world->db.long_field_device();
  storage::FaultStats before = device->fault_stats();
  QBISM_RETURN_NOT_OK(world->ingest->IngestStudy(MakeRecord(2, 22)));
  uint64_t transfers = (device->fault_stats() - before).transfers;
  if (transfers == 0) {
    return Status::Internal("clean ingest performed no transfers");
  }

  uint64_t points = 0;
  for (uint64_t point = 0; point < transfers; ++point) {
    QBISM_ASSIGN_OR_RETURN(world, BuildWorld());
    QBISM_RETURN_NOT_OK(world->ingest->IngestStudy(MakeRecord(1, 11)));
    device = fault_log_device ? world->db.wal_device()
                              : world->db.long_field_device();
    device->InstallFaultPlan(storage::FaultPlan::FailAtTransfer(
        point, storage::FaultDurability::kPersistent));
    Status status = world->ingest->IngestStudy(MakeRecord(2, 22));
    device->ClearFault();
    if (status.ok()) {
      return Status::Internal("ingest survived a persistent fault at site " +
                              std::to_string(point));
    }
    // The failed transaction's staged index entry must have been
    // dropped: the live manager still serves exactly study 1.
    if (world->index->stats().live_studies != 1) {
      return Status::Internal("site " + std::to_string(point) +
                              ": staged index entry leaked into the overlay");
    }

    sql::RecoveryStats stats;
    QBISM_ASSIGN_OR_RETURN(std::shared_ptr<World> recovered,
                           RecoverAndCheck(Snapshot(world.get()), &stats));
    if (stats.index_records != 1) {
      return Status::Internal(
          "site " + std::to_string(point) + ": expected 1 index record, got " +
          std::to_string(stats.index_records));
    }
    IndexStats istats = recovered->index->stats();
    if (istats.live_studies != 1) {
      return Status::Internal("site " + std::to_string(point) +
                              ": uncommitted study leaked into the index");
    }
    ++points;
  }
  return points;
}

TEST(IndexCrashTest, KillAtEveryDataDeviceTransferSite) {
  auto points = RunCrashMatrix(/*fault_log_device=*/false);
  ASSERT_TRUE(points.ok()) << points.status().message();
  EXPECT_GT(*points, 0u);
}

TEST(IndexCrashTest, KillAtEveryLogDeviceTransferSite) {
  auto points = RunCrashMatrix(/*fault_log_device=*/true);
  ASSERT_TRUE(points.ok()) << points.status().message();
  EXPECT_GT(*points, 0u);
}

}  // namespace
}  // namespace qbism::index
