#include "compress/codes.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qbism::compress {
namespace {

TEST(EliasGammaTest, PaperExamples) {
  // §4.2 lists the gamma codes of 1..4: 1, 010, 011, 00100.
  struct {
    uint64_t value;
    std::vector<int> bits;
  } cases[] = {
      {1, {1}},
      {2, {0, 1, 0}},
      {3, {0, 1, 1}},
      {4, {0, 0, 1, 0, 0}},
  };
  for (const auto& c : cases) {
    BitWriter writer;
    EliasGammaEncode(c.value, &writer);
    EXPECT_EQ(writer.bit_count(), c.bits.size()) << c.value;
    auto bytes = writer.Finish();
    BitReader reader(bytes);
    for (int expected : c.bits) {
      EXPECT_EQ(reader.GetBit().value(), expected) << c.value;
    }
  }
}

TEST(EliasGammaTest, LengthFormula) {
  EXPECT_EQ(EliasGammaLength(1), 1);
  EXPECT_EQ(EliasGammaLength(2), 3);
  EXPECT_EQ(EliasGammaLength(3), 3);
  EXPECT_EQ(EliasGammaLength(4), 5);
  EXPECT_EQ(EliasGammaLength(255), 15);
  EXPECT_EQ(EliasGammaLength(256), 17);
}

class CodeRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodeRoundTripTest, GammaRoundTrip) {
  uint64_t x = GetParam();
  BitWriter writer;
  EliasGammaEncode(x, &writer);
  EXPECT_EQ(writer.bit_count(), static_cast<size_t>(EliasGammaLength(x)));
  auto bytes = writer.Finish();
  BitReader reader(bytes);
  EXPECT_EQ(EliasGammaDecode(&reader).value(), x);
}

TEST_P(CodeRoundTripTest, DeltaRoundTrip) {
  uint64_t x = GetParam();
  BitWriter writer;
  EliasDeltaEncode(x, &writer);
  EXPECT_EQ(writer.bit_count(), static_cast<size_t>(EliasDeltaLength(x)));
  auto bytes = writer.Finish();
  BitReader reader(bytes);
  EXPECT_EQ(EliasDeltaDecode(&reader).value(), x);
}

TEST_P(CodeRoundTripTest, GolombRoundTripSeveralDivisors) {
  uint64_t x = GetParam();
  for (uint64_t m : {1ull, 2ull, 3ull, 4ull, 7ull, 16ull, 100ull}) {
    // Golomb's unary quotient is (x-1)/m bits; skip degenerate combos
    // whose code would be astronomically long (they are exactly why the
    // paper rejects geometric-tailored codes for power-law deltas).
    if ((x - 1) / m > 100000) continue;
    BitWriter writer;
    GolombEncode(x, m, &writer);
    EXPECT_EQ(static_cast<int64_t>(writer.bit_count()), GolombLength(x, m));
    auto bytes = writer.Finish();
    BitReader reader(bytes);
    EXPECT_EQ(GolombDecode(m, &reader).value(), x) << "x=" << x << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Values, CodeRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 64, 100,
                                           255, 256, 1000, 65535, 1u << 20,
                                           (1ull << 40) + 123));

TEST(CodesTest, StreamOfMixedCodesRoundTrips) {
  Rng rng(77);
  std::vector<uint64_t> values;
  BitWriter writer;
  for (int i = 0; i < 2000; ++i) {
    // Power-law-ish lengths, like REGION deltas (EQ 1).
    double u = rng.NextDouble();
    uint64_t x = static_cast<uint64_t>(std::pow(1.0 - u, -1.0 / 0.6));
    x = std::max<uint64_t>(1, std::min<uint64_t>(x, 1u << 20));
    values.push_back(x);
    EliasGammaEncode(x, &writer);
  }
  auto bytes = writer.Finish();
  BitReader reader(bytes);
  for (uint64_t x : values) {
    EXPECT_EQ(EliasGammaDecode(&reader).value(), x);
  }
}

TEST(CodesTest, GammaBeatsGolombOnPowerLaw) {
  // The paper rules out geometric-tailored codes for the power-law delta
  // distribution; verify gamma's total is smaller than Golomb's for
  // divisors tuned to geometric tails.
  Rng rng(99);
  uint64_t gamma_bits = 0;
  uint64_t golomb_bits_m8 = 0;
  for (int i = 0; i < 20000; ++i) {
    double u = rng.NextDouble();
    uint64_t x = static_cast<uint64_t>(std::pow(1.0 - u, -1.0 / 0.6));
    x = std::max<uint64_t>(1, std::min<uint64_t>(x, 1u << 22));
    gamma_bits += EliasGammaLength(x);
    golomb_bits_m8 += GolombLength(x, 8);
  }
  EXPECT_LT(gamma_bits, golomb_bits_m8);
}

TEST(EntropyTest, UniformDistribution) {
  // 4 equiprobable symbols -> 2 bits/symbol.
  std::vector<uint64_t> symbols;
  for (int i = 0; i < 1000; ++i) symbols.push_back(i % 4);
  EXPECT_NEAR(EmpiricalEntropyBitsPerSymbol(symbols), 2.0, 1e-9);
  EXPECT_NEAR(EntropyBoundBits(symbols), 2000.0, 1e-6);
}

TEST(EntropyTest, SingleSymbolIsZero) {
  std::vector<uint64_t> symbols(100, 42);
  EXPECT_EQ(EmpiricalEntropyBitsPerSymbol(symbols), 0.0);
}

TEST(EntropyTest, EmptyIsZero) {
  EXPECT_EQ(EmpiricalEntropyBitsPerSymbol({}), 0.0);
  EXPECT_EQ(EntropyBoundBits({}), 0.0);
}

TEST(EntropyTest, SkewedBelowUniform) {
  std::vector<uint64_t> symbols;
  for (int i = 0; i < 900; ++i) symbols.push_back(0);
  for (int i = 0; i < 100; ++i) symbols.push_back(1);
  double h = EmpiricalEntropyBitsPerSymbol(symbols);
  EXPECT_GT(h, 0.0);
  EXPECT_LT(h, 1.0);
  EXPECT_NEAR(h, -(0.9 * std::log2(0.9) + 0.1 * std::log2(0.1)), 1e-9);
}

TEST(CodesTest, DecodeCorruptStreamFails) {
  // A stream of all zeros never terminates its unary prefix.
  std::vector<uint8_t> zeros(4, 0);
  BitReader reader(zeros);
  EXPECT_FALSE(EliasGammaDecode(&reader).ok());
}

TEST(CodesTest, GolombRejectsBadDivisor) {
  std::vector<uint8_t> bytes{0xFF};
  BitReader reader(bytes);
  EXPECT_FALSE(GolombDecode(0, &reader).ok());
}

}  // namespace
}  // namespace qbism::compress
