#include "geometry/shapes.h"

#include <cmath>

#include <gtest/gtest.h>

namespace qbism::geometry {
namespace {

TEST(EllipsoidTest, ContainsCenterAndRespectsRadii) {
  Ellipsoid e({10, 10, 10}, {5, 3, 2});
  EXPECT_TRUE(e.Contains({10, 10, 10}));
  EXPECT_TRUE(e.Contains({14.9, 10, 10}));
  EXPECT_FALSE(e.Contains({15.1, 10, 10}));
  EXPECT_TRUE(e.Contains({10, 12.9, 10}));
  EXPECT_FALSE(e.Contains({10, 13.1, 10}));
  EXPECT_FALSE(e.Contains({10, 10, 12.1}));
}

TEST(EllipsoidTest, BoundsCoverShape) {
  Ellipsoid e({0, 0, 0}, {1, 2, 3});
  Box3d b = e.Bounds();
  EXPECT_LE(b.min.z, -3.0);
  EXPECT_GE(b.max.z, 3.0);
}

TEST(EllipsoidTest, RotatedEllipsoid) {
  // Long axis along x, rotated 90 degrees about z -> long axis along y.
  Ellipsoid e({0, 0, 0}, {10, 2, 2},
              Affine3::RotationAboutAxis(2, M_PI / 2));
  EXPECT_TRUE(e.Contains({0, 9, 0}));
  EXPECT_FALSE(e.Contains({9, 0, 0}));
}

TEST(HalfSpaceTest, DividesSpace) {
  HalfSpace h({1, 0, 0}, 5.0);  // x <= 5
  EXPECT_TRUE(h.Contains({5, 100, -3}));
  EXPECT_TRUE(h.Contains({-100, 0, 0}));
  EXPECT_FALSE(h.Contains({5.01, 0, 0}));
}

TEST(TubeTest, CapsuleAroundPolyline) {
  Tube t({{0, 0, 0}, {10, 0, 0}, {10, 10, 0}}, 1.0);
  EXPECT_TRUE(t.Contains({5, 0.5, 0}));
  EXPECT_TRUE(t.Contains({10, 5, 0.5}));
  EXPECT_FALSE(t.Contains({5, 2, 0}));
  EXPECT_TRUE(t.Contains({-0.9, 0, 0}));   // spherical cap at the start
  EXPECT_FALSE(t.Contains({-1.1, 0, 0}));
}

TEST(TubeTest, BoundsCoverRadius) {
  Tube t({{0, 0, 0}, {4, 0, 0}}, 2.0);
  Box3d b = t.Bounds();
  EXPECT_LE(b.min.x, -2.0);
  EXPECT_GE(b.max.x, 6.0);
  EXPECT_LE(b.min.y, -2.0);
}

TEST(CsgTest, UnionIntersectDifference) {
  ShapePtr a = MakeEllipsoid({0, 0, 0}, {2, 2, 2});
  ShapePtr b = MakeEllipsoid({3, 0, 0}, {2, 2, 2});
  ShapePtr u = Union(a, b);
  ShapePtr i = Intersect(a, b);
  ShapePtr d = Difference(a, b);

  EXPECT_TRUE(u->Contains({-1.5, 0, 0}));
  EXPECT_TRUE(u->Contains({4.5, 0, 0}));
  EXPECT_TRUE(i->Contains({1.5, 0, 0}));   // overlap zone
  EXPECT_FALSE(i->Contains({-1.5, 0, 0}));
  EXPECT_TRUE(d->Contains({-1.5, 0, 0}));
  EXPECT_FALSE(d->Contains({1.5, 0, 0}));  // removed by b
}

TEST(CsgTest, ShellViaDifference) {
  ShapePtr outer = MakeEllipsoid({0, 0, 0}, {5, 5, 5});
  ShapePtr inner = MakeEllipsoid({0, 0, 0}, {3, 3, 3});
  ShapePtr shell = Difference(outer, inner);
  EXPECT_FALSE(shell->Contains({0, 0, 0}));
  EXPECT_TRUE(shell->Contains({4, 0, 0}));
  EXPECT_FALSE(shell->Contains({5.5, 0, 0}));
}

TEST(CsgTest, IntersectionBoundsShrink) {
  ShapePtr a = MakeEllipsoid({0, 0, 0}, {10, 10, 10});
  ShapePtr clipped = Intersect(a, MakeHalfSpace({1, 0, 0}, 0.0));
  Box3d b = clipped->Bounds();
  EXPECT_LE(b.max.x, 0.0 + 1e-9);
}

}  // namespace
}  // namespace qbism::geometry
