#include "geometry/affine.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qbism::geometry {
namespace {

void ExpectNear(const Vec3d& a, const Vec3d& b, double tol = 1e-9) {
  EXPECT_NEAR(a.x, b.x, tol);
  EXPECT_NEAR(a.y, b.y, tol);
  EXPECT_NEAR(a.z, b.z, tol);
}

TEST(AffineTest, IdentityIsNoop) {
  Affine3 id;
  ExpectNear(id.Apply({1, 2, 3}), {1, 2, 3});
  EXPECT_NEAR(id.Determinant(), 1.0, 1e-12);
}

TEST(AffineTest, TranslationMovesPoints) {
  Affine3 t = Affine3::Translation({5, -2, 0.5});
  ExpectNear(t.Apply({1, 1, 1}), {6, -1, 1.5});
}

TEST(AffineTest, ScalingScales) {
  Affine3 s = Affine3::Scaling(2, 3, 4);
  ExpectNear(s.Apply({1, 1, 1}), {2, 3, 4});
  EXPECT_NEAR(s.Determinant(), 24.0, 1e-12);
}

TEST(AffineTest, RotationAboutZQuarterTurn) {
  Affine3 r = Affine3::RotationAboutAxis(2, M_PI / 2);
  ExpectNear(r.Apply({1, 0, 0}), {0, 1, 0});
  ExpectNear(r.Apply({0, 1, 0}), {-1, 0, 0});
  ExpectNear(r.Apply({0, 0, 1}), {0, 0, 1});
  EXPECT_NEAR(r.Determinant(), 1.0, 1e-12);
}

TEST(AffineTest, RotationAboutXAndY) {
  ExpectNear(Affine3::RotationAboutAxis(0, M_PI / 2).Apply({0, 1, 0}),
             {0, 0, 1});
  ExpectNear(Affine3::RotationAboutAxis(1, M_PI / 2).Apply({0, 0, 1}),
             {1, 0, 0});
}

TEST(AffineTest, ComposeAppliesRightFirst) {
  Affine3 scale = Affine3::Scaling(2, 2, 2);
  Affine3 shift = Affine3::Translation({1, 0, 0});
  // shift after scale: p -> 2p + (1,0,0)
  ExpectNear(shift.Compose(scale).Apply({1, 1, 1}), {3, 2, 2});
  // scale after shift: p -> 2(p + (1,0,0))
  ExpectNear(scale.Compose(shift).Apply({1, 1, 1}), {4, 2, 2});
}

TEST(AffineTest, InverseRoundTrips) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    Affine3 t =
        Affine3::Translation({rng.NextDoubleIn(-10, 10),
                              rng.NextDoubleIn(-10, 10),
                              rng.NextDoubleIn(-10, 10)})
            .Compose(Affine3::RotationAboutAxis(
                static_cast<int>(rng.NextBounded(3)),
                rng.NextDoubleIn(-3, 3)))
            .Compose(Affine3::Scaling(rng.NextDoubleIn(0.5, 3),
                                      rng.NextDoubleIn(0.5, 3),
                                      rng.NextDoubleIn(0.5, 3)));
    auto inv = t.Inverse();
    ASSERT_TRUE(inv.ok());
    Vec3d p{rng.NextDoubleIn(-5, 5), rng.NextDoubleIn(-5, 5),
            rng.NextDoubleIn(-5, 5)};
    ExpectNear(inv.value().Apply(t.Apply(p)), p, 1e-8);
    ExpectNear(t.Apply(inv.value().Apply(p)), p, 1e-8);
  }
}

TEST(AffineTest, SingularHasNoInverse) {
  Affine3 flat = Affine3::Scaling(1, 1, 0);
  EXPECT_FALSE(flat.Inverse().ok());
  EXPECT_TRUE(flat.Inverse().status().IsInvalidArgument());
}

TEST(Vec3Test, BasicOperations) {
  Vec3d a{1, 2, 3}, b{4, 5, 6};
  ExpectNear(a + b, {5, 7, 9});
  ExpectNear(b - a, {3, 3, 3});
  ExpectNear(a * 2, {2, 4, 6});
  EXPECT_NEAR(a.Dot(b), 32.0, 1e-12);
  ExpectNear(Vec3d{1, 0, 0}.Cross({0, 1, 0}), {0, 0, 1});
  EXPECT_NEAR((Vec3d{3, 4, 0}).Norm(), 5.0, 1e-12);
  EXPECT_NEAR((Vec3d{3, 4, 0}).Normalized().Norm(), 1.0, 1e-12);
}

TEST(Box3iTest, ContainsAndClip) {
  Box3i box{{0, 0, 0}, {9, 9, 9}};
  EXPECT_TRUE(box.Contains({0, 0, 0}));
  EXPECT_TRUE(box.Contains({9, 9, 9}));
  EXPECT_FALSE(box.Contains({10, 0, 0}));
  EXPECT_EQ(box.VoxelCount(), 1000);
  Box3i clipped = box.ClippedTo({{5, 5, 5}, {20, 20, 20}});
  EXPECT_EQ(clipped, (Box3i{{5, 5, 5}, {9, 9, 9}}));
  Box3i empty = box.ClippedTo({{20, 20, 20}, {30, 30, 30}});
  EXPECT_TRUE(empty.Empty());
  EXPECT_EQ(empty.VoxelCount(), 0);
}

}  // namespace
}  // namespace qbism::geometry
