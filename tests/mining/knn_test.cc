#include "mining/knn.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qbism::mining {
namespace {

TEST(DistanceTest, SquaredEuclidean) {
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}).value(), 25.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 2, 3}, {1, 2, 3}).value(), 0.0);
  EXPECT_FALSE(SquaredDistance({1}, {1, 2}).ok());
}

std::vector<FeatureVector> Grid2D() {
  std::vector<FeatureVector> out;
  int64_t id = 0;
  for (int x = 0; x < 5; ++x) {
    for (int y = 0; y < 5; ++y) {
      out.push_back({id++, {static_cast<double>(x), static_cast<double>(y)}});
    }
  }
  return out;
}

TEST(BruteForceKnnTest, FindsNearest) {
  auto neighbors = BruteForceKnn({2.1, 2.1}, Grid2D(), 1).MoveValue();
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0].id, 2 * 5 + 2);  // the point (2,2)
  EXPECT_NEAR(neighbors[0].distance, std::sqrt(0.02), 1e-9);
}

TEST(BruteForceKnnTest, KLargerThanPopulation) {
  auto neighbors = BruteForceKnn({0, 0}, Grid2D(), 100).MoveValue();
  EXPECT_EQ(neighbors.size(), 25u);
  // Sorted nearest-first.
  for (size_t i = 1; i < neighbors.size(); ++i) {
    EXPECT_GE(neighbors[i].distance, neighbors[i - 1].distance);
  }
}

TEST(KdTreeTest, BuildValidation) {
  EXPECT_FALSE(KdTree::Build({}).ok());
  EXPECT_FALSE(KdTree::Build({{1, {}}}).ok());
  EXPECT_FALSE(KdTree::Build({{1, {1.0}}, {2, {1.0, 2.0}}}).ok());
  EXPECT_TRUE(KdTree::Build({{1, {1.0}}}).ok());
}

TEST(KdTreeTest, SinglePoint) {
  KdTree tree = KdTree::Build({{7, {1, 2, 3}}}).MoveValue();
  auto neighbors = tree.Knn({0, 0, 0}, 3).MoveValue();
  ASSERT_EQ(neighbors.size(), 1u);
  EXPECT_EQ(neighbors[0].id, 7);
}

TEST(KdTreeTest, QueryDimensionChecked) {
  KdTree tree = KdTree::Build(Grid2D()).MoveValue();
  EXPECT_FALSE(tree.Knn({1, 2, 3}, 1).ok());
}

TEST(KdTreeTest, MatchesBruteForceOnRandomData) {
  Rng rng(17);
  for (size_t dims : {1u, 2u, 5u, 11u}) {
    std::vector<FeatureVector> points;
    for (int i = 0; i < 400; ++i) {
      FeatureVector v;
      v.id = i;
      for (size_t d = 0; d < dims; ++d) {
        v.values.push_back(rng.NextDoubleIn(-10, 10));
      }
      points.push_back(std::move(v));
    }
    KdTree tree = KdTree::Build(points).MoveValue();
    EXPECT_EQ(tree.size(), 400u);
    EXPECT_EQ(tree.dimensions(), dims);
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<double> query;
      for (size_t d = 0; d < dims; ++d) {
        query.push_back(rng.NextDoubleIn(-12, 12));
      }
      for (size_t k : {1u, 5u, 17u}) {
        auto expected = BruteForceKnn(query, points, k).MoveValue();
        auto got = tree.Knn(query, k).MoveValue();
        ASSERT_EQ(got.size(), expected.size());
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].id, expected[i].id)
              << "dims=" << dims << " k=" << k << " i=" << i;
          EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
        }
      }
    }
  }
}

TEST(KdTreeTest, DuplicatePointsAllReturned) {
  std::vector<FeatureVector> points{{1, {0, 0}}, {2, {0, 0}}, {3, {5, 5}}};
  KdTree tree = KdTree::Build(points).MoveValue();
  auto neighbors = tree.Knn({0, 0}, 2).MoveValue();
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0].distance, 0.0);
  EXPECT_EQ(neighbors[1].distance, 0.0);
  EXPECT_NE(neighbors[0].id, neighbors[1].id);
}

}  // namespace
}  // namespace qbism::mining
