#include "mining/apriori.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qbism::mining {
namespace {

std::vector<Transaction> MarketBasket() {
  // Classic toy data: {bread=1, milk=2, beer=3, eggs=4}.
  return {
      {1, 2},        // bread milk
      {1, 3, 4},     // bread beer eggs
      {2, 3},        // milk beer
      {1, 2, 3},     // bread milk beer
      {1, 2, 3, 4},  // everything
  };
}

uint64_t SupportOf(const std::vector<Itemset>& itemsets,
                   std::vector<uint32_t> items) {
  for (const Itemset& itemset : itemsets) {
    if (itemset.items == items) return itemset.support;
  }
  return 0;
}

TEST(AprioriTest, FrequentItemsetsExactCounts) {
  auto itemsets = MineFrequentItemsets(MarketBasket(), 0.4).MoveValue();
  // Threshold = ceil(0.4 * 5) = 2 transactions.
  EXPECT_EQ(SupportOf(itemsets, {1}), 4u);
  EXPECT_EQ(SupportOf(itemsets, {2}), 4u);
  EXPECT_EQ(SupportOf(itemsets, {3}), 4u);
  EXPECT_EQ(SupportOf(itemsets, {4}), 2u);
  EXPECT_EQ(SupportOf(itemsets, {1, 2}), 3u);
  EXPECT_EQ(SupportOf(itemsets, {1, 3}), 3u);
  EXPECT_EQ(SupportOf(itemsets, {2, 3}), 3u);
  EXPECT_EQ(SupportOf(itemsets, {1, 4}), 2u);
  EXPECT_EQ(SupportOf(itemsets, {1, 2, 3}), 2u);
  EXPECT_EQ(SupportOf(itemsets, {1, 3, 4}), 2u);
  // {2,4} appears only once: infrequent.
  EXPECT_EQ(SupportOf(itemsets, {2, 4}), 0u);
}

TEST(AprioriTest, HigherThresholdPrunesMore) {
  auto loose = MineFrequentItemsets(MarketBasket(), 0.4).MoveValue();
  auto strict = MineFrequentItemsets(MarketBasket(), 0.8).MoveValue();
  EXPECT_LT(strict.size(), loose.size());
  for (const Itemset& itemset : strict) {
    EXPECT_GE(itemset.support, 4u);
  }
}

TEST(AprioriTest, InputValidation) {
  EXPECT_FALSE(MineFrequentItemsets({{1, 2}}, 0.0).ok());
  EXPECT_FALSE(MineFrequentItemsets({{1, 2}}, 1.5).ok());
  EXPECT_FALSE(MineFrequentItemsets({{2, 1}}, 0.5).ok());  // unsorted
  EXPECT_FALSE(MineFrequentItemsets({{1, 1}}, 0.5).ok());  // duplicate
  EXPECT_TRUE(MineFrequentItemsets({}, 0.5).value().empty());
}

TEST(AprioriTest, MatchesBruteForceOnRandomData) {
  Rng rng(7);
  std::vector<Transaction> transactions;
  const uint32_t universe = 8;
  for (int i = 0; i < 60; ++i) {
    Transaction t;
    for (uint32_t item = 0; item < universe; ++item) {
      if (rng.NextDouble() < 0.35) t.push_back(item);
    }
    transactions.push_back(std::move(t));
  }
  double min_support = 0.15;
  auto mined = MineFrequentItemsets(transactions, min_support).MoveValue();
  std::map<std::vector<uint32_t>, uint64_t> mined_map;
  for (const Itemset& itemset : mined) {
    mined_map[itemset.items] = itemset.support;
  }
  // Brute force over all 2^8 - 1 candidate itemsets.
  uint64_t threshold = 9;  // ceil(0.15 * 60)
  for (uint32_t mask = 1; mask < (1u << universe); ++mask) {
    std::vector<uint32_t> items;
    for (uint32_t item = 0; item < universe; ++item) {
      if (mask & (1u << item)) items.push_back(item);
    }
    uint64_t count = 0;
    for (const Transaction& t : transactions) {
      if (std::includes(t.begin(), t.end(), items.begin(), items.end())) {
        ++count;
      }
    }
    if (count >= threshold) {
      EXPECT_EQ(mined_map.count(items), 1u) << "missing frequent itemset";
      EXPECT_EQ(mined_map[items], count);
    } else {
      EXPECT_EQ(mined_map.count(items), 0u) << "infrequent itemset reported";
    }
  }
}

TEST(AssociationRulesTest, RulesHaveCorrectMeasures) {
  auto rules = MineAssociationRules(MarketBasket(), 0.4, 0.6).MoveValue();
  ASSERT_FALSE(rules.empty());
  // Find the rule {4} => {1}: support({1,4}) = 2/5, confidence = 2/2.
  bool found = false;
  for (const AssociationRule& rule : rules) {
    EXPECT_GE(rule.confidence, 0.6);
    EXPECT_GT(rule.support, 0.0);
    if (rule.lhs == std::vector<uint32_t>{4} &&
        rule.rhs == std::vector<uint32_t>{1}) {
      EXPECT_DOUBLE_EQ(rule.support, 0.4);
      EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Sorted by confidence descending.
  for (size_t i = 1; i < rules.size(); ++i) {
    EXPECT_LE(rules[i].confidence, rules[i - 1].confidence);
  }
}

TEST(AssociationRulesTest, ConfidenceThresholdFilters) {
  auto all = MineAssociationRules(MarketBasket(), 0.4, 0.0).MoveValue();
  auto strict = MineAssociationRules(MarketBasket(), 0.4, 0.9).MoveValue();
  EXPECT_LT(strict.size(), all.size());
  for (const AssociationRule& rule : strict) {
    EXPECT_GE(rule.confidence, 0.9);
  }
}

TEST(AssociationRulesTest, Validation) {
  EXPECT_FALSE(MineAssociationRules(MarketBasket(), 0.4, 1.5).ok());
  EXPECT_FALSE(MineAssociationRules(MarketBasket(), 0.4, -0.1).ok());
}

}  // namespace
}  // namespace qbism::mining
