#include "sql/value.h"

#include <gtest/gtest.h>

#include "sql/schema.h"

namespace qbism::sql {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(7).AsInt().value(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble().value(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString().value(), "hi");
  EXPECT_EQ(Value::LongField({9}).AsLongField().value().value, 9u);
  // Int widens to double.
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble().value(), 3.0);
  // Mismatches fail.
  EXPECT_FALSE(Value::Int(1).AsString().ok());
  EXPECT_FALSE(Value::String("x").AsInt().ok());
  EXPECT_FALSE(Value::Null().AsInt().ok());
}

TEST(ValueTest, ObjectRoundTrip) {
  auto payload = std::make_shared<int>(42);
  Value v = Value::Object(payload, "ANSWER");
  EXPECT_EQ(v.kind(), Value::Kind::kObject);
  EXPECT_EQ(v.object_type(), "ANSWER");
  auto back = v.AsObject<int>("ANSWER");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back.value(), 42);
  EXPECT_FALSE(v.AsObject<int>("OTHER").ok());
}

TEST(ValueTest, CompareNumeric) {
  EXPECT_EQ(Value::Int(1).Compare(Value::Int(2)).value(), -1);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)).value(), 0);
  EXPECT_EQ(Value::Int(3).Compare(Value::Int(2)).value(), 1);
  // Mixed int/double.
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.5)).value(), -1);
  EXPECT_EQ(Value::Double(2.0).Compare(Value::Int(2)).value(), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_EQ(Value::String("abc").Compare(Value::String("abd")).value(), -1);
  EXPECT_EQ(Value::String("abc").Compare(Value::String("abc")).value(), 0);
  EXPECT_TRUE(Value::String("x").Equals(Value::String("x")).value());
}

TEST(ValueTest, CompareErrors) {
  EXPECT_FALSE(Value::Null().Compare(Value::Int(1)).ok());
  EXPECT_FALSE(Value::Int(1).Compare(Value::String("1")).ok());
  auto obj = Value::Object(std::make_shared<int>(1), "X");
  EXPECT_FALSE(obj.Compare(obj).ok());
}

TEST(ValueTest, SerializeDeserializeAllStorableKinds) {
  std::vector<Value> values{Value::Null(), Value::Int(-12345),
                            Value::Double(3.25), Value::String("hello world"),
                            Value::LongField({77})};
  std::vector<uint8_t> bytes;
  for (const Value& v : values) ASSERT_TRUE(v.SerializeTo(&bytes).ok());
  size_t pos = 0;
  for (const Value& expected : values) {
    auto v = Value::DeserializeFrom(bytes, &pos);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->kind(), expected.kind());
    EXPECT_EQ(v->ToString(), expected.ToString());
  }
  EXPECT_EQ(pos, bytes.size());
}

TEST(ValueTest, ObjectsNotStorable) {
  std::vector<uint8_t> bytes;
  Value obj = Value::Object(std::make_shared<int>(1), "X");
  EXPECT_FALSE(obj.SerializeTo(&bytes).ok());
}

TEST(ValueTest, DeserializeTruncatedFails) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(Value::Int(5).SerializeTo(&bytes).ok());
  bytes.pop_back();
  size_t pos = 0;
  EXPECT_FALSE(Value::DeserializeFrom(bytes, &pos).ok());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::String("ab").ToString(), "'ab'");
  EXPECT_EQ(Value::LongField({3}).ToString(), "<longfield:3>");
}

TEST(SchemaTest, ColumnTypeParsing) {
  EXPECT_EQ(ColumnTypeFromString("int").value(), ColumnType::kInt);
  EXPECT_EQ(ColumnTypeFromString("double").value(), ColumnType::kDouble);
  EXPECT_EQ(ColumnTypeFromString("string").value(), ColumnType::kString);
  EXPECT_EQ(ColumnTypeFromString("longfield").value(),
            ColumnType::kLongField);
  EXPECT_FALSE(ColumnTypeFromString("bogus").ok());
}

TEST(SchemaTest, ValueMatchesType) {
  EXPECT_TRUE(ValueMatchesType(Value::Int(1), ColumnType::kInt));
  EXPECT_TRUE(ValueMatchesType(Value::Int(1), ColumnType::kDouble));
  EXPECT_FALSE(ValueMatchesType(Value::Double(1), ColumnType::kInt));
  EXPECT_TRUE(ValueMatchesType(Value::Null(), ColumnType::kString));
  EXPECT_FALSE(ValueMatchesType(Value::String("x"), ColumnType::kLongField));
}

TEST(SchemaTest, RowSerializationRoundTrip) {
  TableSchema schema("t", {{"id", ColumnType::kInt},
                           {"name", ColumnType::kString},
                           {"score", ColumnType::kDouble},
                           {"data", ColumnType::kLongField}});
  Row row{Value::Int(1), Value::String("alpha"), Value::Double(0.5),
          Value::LongField({11})};
  auto bytes = SerializeRow(schema, row).MoveValue();
  Row back = DeserializeRow(schema, bytes).MoveValue();
  ASSERT_EQ(back.size(), 4u);
  EXPECT_EQ(back[0].AsInt().value(), 1);
  EXPECT_EQ(back[1].AsString().value(), "alpha");
  EXPECT_DOUBLE_EQ(back[2].AsDouble().value(), 0.5);
  EXPECT_EQ(back[3].AsLongField().value().value, 11u);
}

TEST(SchemaTest, SerializeValidatesArityAndTypes) {
  TableSchema schema("t", {{"id", ColumnType::kInt}});
  EXPECT_FALSE(SerializeRow(schema, {}).ok());
  EXPECT_FALSE(SerializeRow(schema, {Value::String("x")}).ok());
  EXPECT_TRUE(SerializeRow(schema, {Value::Null()}).ok());  // nullable
}

TEST(SchemaTest, ColumnIndexLookup) {
  TableSchema schema("t", {{"a", ColumnType::kInt}, {"b", ColumnType::kInt}});
  EXPECT_EQ(schema.ColumnIndex("a").value(), 0u);
  EXPECT_EQ(schema.ColumnIndex("b").value(), 1u);
  EXPECT_FALSE(schema.ColumnIndex("c").ok());
}

TEST(SchemaTest, DeserializeRejectsTrailingBytes) {
  TableSchema schema("t", {{"id", ColumnType::kInt}});
  auto bytes = SerializeRow(schema, {Value::Int(1)}).MoveValue();
  bytes.push_back(0);
  EXPECT_FALSE(DeserializeRow(schema, bytes).ok());
}

}  // namespace
}  // namespace qbism::sql
