#include <gtest/gtest.h>

#include "sql/database.h"

namespace qbism::sql {
namespace {

class DeleteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("create table t (id int, tag string)").ok());
    ASSERT_TRUE(db_.Execute("insert into t values (1, 'keep'), (2, 'drop'),"
                            " (3, 'keep'), (4, 'drop'), (5, 'keep')")
                    .ok());
  }

  uint64_t CountRows() {
    auto result = db_.Execute("select count(*) from t").MoveValue();
    return static_cast<uint64_t>(result.rows[0][0].AsInt().value());
  }

  Database db_;
};

TEST_F(DeleteTest, DeleteWithPredicate) {
  auto result = db_.Execute("delete from t where tag = 'drop'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_affected, 2u);
  EXPECT_EQ(CountRows(), 3u);
  auto remaining = db_.Execute("select id from t order by id").MoveValue();
  ASSERT_EQ(remaining.rows.size(), 3u);
  EXPECT_EQ(remaining.rows[0][0].AsInt().value(), 1);
  EXPECT_EQ(remaining.rows[1][0].AsInt().value(), 3);
  EXPECT_EQ(remaining.rows[2][0].AsInt().value(), 5);
}

TEST_F(DeleteTest, DeleteAllRows) {
  auto result = db_.Execute("delete from t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_affected, 5u);
  EXPECT_EQ(CountRows(), 0u);
}

TEST_F(DeleteTest, DeleteNothingMatches) {
  auto result = db_.Execute("delete from t where id = 999");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_affected, 0u);
  EXPECT_EQ(CountRows(), 5u);
}

TEST_F(DeleteTest, DeleteUnknownTableFails) {
  EXPECT_TRUE(db_.Execute("delete from nosuch").status().IsNotFound());
}

TEST_F(DeleteTest, InsertAfterDeleteWorks) {
  ASSERT_TRUE(db_.Execute("delete from t where id = 1").ok());
  ASSERT_TRUE(db_.Execute("insert into t values (6, 'new')").ok());
  EXPECT_EQ(CountRows(), 5u);
}

TEST_F(DeleteTest, IndexSkipsDeletedRows) {
  ASSERT_TRUE(db_.Execute("create index i on t (id)").ok());
  ASSERT_TRUE(db_.Execute("delete from t where id = 3").ok());
  // The stale index entry must not resurrect the row or fail the query.
  auto result = db_.Execute("select tag from t where id = 3");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->rows.empty());
  // Other indexed lookups still work.
  auto live = db_.Execute("select tag from t where id = 5").MoveValue();
  ASSERT_EQ(live.rows.size(), 1u);
}

TEST_F(DeleteTest, DeleteByIndexedColumnThenReinsert) {
  ASSERT_TRUE(db_.Execute("create index i on t (id)").ok());
  ASSERT_TRUE(db_.Execute("delete from t where id = 2").ok());
  ASSERT_TRUE(db_.Execute("insert into t values (2, 'reborn')").ok());
  auto result = db_.Execute("select tag from t where id = 2").MoveValue();
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsString().value(), "reborn");
}

}  // namespace
}  // namespace qbism::sql
