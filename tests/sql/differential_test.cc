#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "sql/database.h"

namespace qbism::sql {
namespace {

/// Differential suite for the two SELECT/UPDATE/DELETE engines: every
/// statement runs on a VM-engine database and on a tree-walker-engine
/// database loaded identically; results must match row for row. No
/// statistics are gathered, so the planner keeps FROM order and scan
/// order and both engines emit rows in the same sequence.
class DifferentialTest : public ::testing::Test {
 protected:
  DifferentialTest() { oracle_.set_engine(ExecEngine::kTreeWalker); }

  /// Runs `sql` on both engines and asserts identical outcomes:
  /// ok-ness, error text, columns, rows (in order), rows_affected.
  void ExecBoth(const std::string& sql) {
    auto vm = vm_.Execute(sql);
    auto tw = oracle_.Execute(sql);
    ASSERT_EQ(vm.ok(), tw.ok())
        << sql << "\nvm: " << vm.status().ToString()
        << "\ntree-walker: " << tw.status().ToString();
    if (!vm.ok()) {
      EXPECT_EQ(vm.status().ToString(), tw.status().ToString()) << sql;
      return;
    }
    EXPECT_EQ(vm->columns, tw->columns) << sql;
    EXPECT_EQ(vm->rows_affected, tw->rows_affected) << sql;
    ASSERT_EQ(vm->rows.size(), tw->rows.size()) << sql;
    for (size_t r = 0; r < vm->rows.size(); ++r) {
      ASSERT_EQ(vm->rows[r].size(), tw->rows[r].size()) << sql;
      for (size_t c = 0; c < vm->rows[r].size(); ++c) {
        EXPECT_EQ(vm->rows[r][c].ToString(), tw->rows[r][c].ToString())
            << sql << " row " << r << " col " << c;
      }
    }
  }

  void SeedTables() {
    ExecBoth("create table t0 (a int, b int, c double, d string)");
    ExecBoth("create table t1 (k int, v int)");
    InsertRandomRows(40, 8);
  }

  void InsertRandomRows(int t0_rows, int t1_rows) {
    static const char* kTags[] = {"x", "y", "z"};
    for (int i = 0; i < t0_rows; ++i) {
      ExecBoth("insert into t0 values (" +
               std::to_string(rng_.NextBounded(20)) + ", " +
               std::to_string(rng_.NextBounded(100)) + ", " +
               std::to_string(rng_.NextBounded(50)) + ".5, '" +
               kTags[rng_.NextBounded(3)] + "')");
    }
    for (int i = 0; i < t1_rows; ++i) {
      ExecBoth("insert into t1 values (" +
               std::to_string(rng_.NextBounded(20)) + ", " +
               std::to_string(rng_.NextBounded(1000)) + ")");
    }
  }

  /// Random integer-valued expression over t0's int columns.
  std::string IntExpr(int depth) {
    switch (rng_.NextBounded(depth > 0 ? 5 : 3)) {
      case 0:
        return std::to_string(rng_.NextBounded(100));
      case 1:
        return "a";
      case 2:
        return "b";
      case 3:
        return "(" + IntExpr(depth - 1) + " + " + IntExpr(depth - 1) + ")";
      default:
        return "(" + IntExpr(depth - 1) + " * " + IntExpr(depth - 1) + ")";
    }
  }

  /// Random boolean predicate over t0 (type-correct; never errors:
  /// division only by strictly positive divisors).
  std::string Pred(int depth) {
    static const char* kCmp[] = {"=", "<>", "<", "<=", ">", ">="};
    switch (rng_.NextBounded(depth > 0 ? 6 : 3)) {
      case 0:
      case 1:
        return "(" + IntExpr(1) + " " + kCmp[rng_.NextBounded(6)] + " " +
               IntExpr(1) + ")";
      case 2: {
        static const char* kTags[] = {"'x'", "'y'", "'z'"};
        return "(d = " + std::string(kTags[rng_.NextBounded(3)]) + ")";
      }
      case 3:
        return "(" + Pred(depth - 1) + " and " + Pred(depth - 1) + ")";
      case 4:
        return "(" + Pred(depth - 1) + " or " + Pred(depth - 1) + ")";
      default:
        return "(not " + Pred(depth - 1) + ")";
    }
  }

  Rng rng_{0x9b15d1ffu};
  Database vm_;
  Database oracle_;
};

TEST_F(DifferentialTest, RandomizedSelects) {
  SeedTables();
  for (int i = 0; i < 120; ++i) {
    std::string sql;
    switch (rng_.NextBounded(4)) {
      case 0:
        sql = "select * from t0 where " + Pred(2);
        break;
      case 1:
        sql = "select a, (a + b), ((b / (a + 1)) - 3) from t0 where " +
              Pred(2);
        break;
      case 2:
        sql = "select b, d from t0 where " + Pred(2) + " order by b, d";
        break;
      default:
        sql = "select a, b from t0 where " + Pred(1) + " limit " +
              std::to_string(1 + rng_.NextBounded(10));
        break;
    }
    ExecBoth(sql);
  }
}

TEST_F(DifferentialTest, RandomizedJoins) {
  SeedTables();
  for (int i = 0; i < 40; ++i) {
    ExecBoth("select t0.a, t0.b, t1.v from t0, t1 "
             "where t0.a = t1.k and " + Pred(1));
    ExecBoth("select * from t0 x, t1 y where x.a = y.k and x.b > " +
             std::to_string(rng_.NextBounded(100)));
  }
}

TEST_F(DifferentialTest, RandomizedAggregates) {
  SeedTables();
  for (int i = 0; i < 40; ++i) {
    ExecBoth("select count(*), sum(a), min(b), max(b), avg(b) from t0 "
             "where " + Pred(2));
    ExecBoth("select d, count(*), sum(b) from t0 where " + Pred(1) +
             " group by d");
  }
}

TEST_F(DifferentialTest, RandomizedMutations) {
  SeedTables();
  for (int i = 0; i < 30; ++i) {
    switch (rng_.NextBounded(3)) {
      case 0:
        ExecBoth("update t0 set b = " + IntExpr(1) + ", a = " + IntExpr(1) +
                 " where " + Pred(1));
        break;
      case 1:
        ExecBoth("update t0 set d = 'y' where " + Pred(1));
        break;
      default:
        ExecBoth("delete from t0 where a = " +
                 std::to_string(rng_.NextBounded(20)) + " and b > " +
                 std::to_string(rng_.NextBounded(100)));
        break;
    }
    // Both heaps must agree exactly after every mutation.
    ExecBoth("select * from t0");
    if (i % 10 == 9) InsertRandomRows(10, 0);
  }
}

TEST_F(DifferentialTest, RuntimeErrorsMatchInterpreterText) {
  SeedTables();
  // Division by zero surfaces mid-scan; the VM defers error resolution
  // so the message (and the first failing row) match the interpreter.
  ExecBoth("select b / (a - a) from t0");
  ExecBoth("select a from t0 where (b / (a - a)) > 0");
  ExecBoth("update t0 set b = b / (a - a) where a >= 0");
}

}  // namespace
}  // namespace qbism::sql
