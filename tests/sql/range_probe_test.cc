// Cost-based index selection for plain range predicates (the PR-9
// follow-on): a B+-tree on an integer column now serves `col >= lo and
// col <= hi` conjuncts through FindRange when the cost model says the
// touched fraction beats a full scan. The EXPLAIN goldens here pin the
// flip: unanalyzed tables probe (default range selectivity), analyzed
// wide ranges scan, analyzed narrow ranges probe — and results are
// byte-identical either way.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/macros.h"
#include "sql/database.h"
#include "sql/eval.h"
#include "sql/planner/cost.h"

namespace qbism::sql {
namespace {

std::vector<std::string> ExplainOf(Database* db, const std::string& sql) {
  auto result = db->Execute("explain " + sql);
  QBISM_CHECK(result.ok());
  std::vector<std::string> lines;
  for (const Row& row : result->rows) {
    lines.push_back(row[0].AsString().MoveValue());
  }
  return lines;
}

bool AnyLineContains(const std::vector<std::string>& lines,
                     const std::string& needle) {
  for (const std::string& line : lines) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::vector<std::string> Render(const ResultSet& rs) {
  std::vector<std::string> out;
  for (const Row& row : rs.rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.ToString();
      line += '|';
    }
    out.push_back(std::move(line));
  }
  return out;
}

class RangeProbeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.Execute("create table t (id int, v int)").ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db_.Insert("t", {Value::Int(i), Value::Int(i * 7)}).ok());
    }
    ASSERT_TRUE(db_.Execute("create index t_id on t (id)").ok());
  }

  void Analyze() {
    ASSERT_TRUE(db_.planner_stats()->AnalyzeTable(db_.catalog(), "t").ok());
  }

  Database db_;
};

TEST_F(RangeProbeTest, UnanalyzedTableChoosesTheRangeProbe) {
  auto lines =
      ExplainOf(&db_, "select v from t where id >= 90 and id <= 99");
  EXPECT_TRUE(AnyLineContains(lines, "index range probe on id in [90..99]"))
      << "plan was:\n" + lines.front();
}

TEST_F(RangeProbeTest, AnalyzedWideRangeFlipsBackToTheScan) {
  Analyze();
  // The statistics say every row falls in [0, 99]: probing buys nothing
  // and costs the descent, so the planner must keep the scan.
  auto lines = ExplainOf(&db_, "select v from t where id >= 0 and id <= 99");
  EXPECT_FALSE(AnyLineContains(lines, "index range probe"))
      << "plan was:\n" + lines.front();
  EXPECT_TRUE(AnyLineContains(lines, "scan"));
}

TEST_F(RangeProbeTest, AnalyzedNarrowRangeFlipsToTheProbe) {
  Analyze();
  auto lines =
      ExplainOf(&db_, "select v from t where id >= 90 and id <= 99");
  EXPECT_TRUE(AnyLineContains(lines, "index range probe on id in [90..99]"));
}

TEST_F(RangeProbeTest, StrictBoundsTightenByOne) {
  auto lines = ExplainOf(&db_, "select v from t where id > 5 and id < 9");
  EXPECT_TRUE(AnyLineContains(lines, "in [6..8]"))
      << "plan was:\n" + lines.front();
}

TEST_F(RangeProbeTest, HalfOpenRangesProbeToo) {
  Analyze();
  auto lines = ExplainOf(&db_, "select v from t where id >= 95");
  EXPECT_TRUE(AnyLineContains(lines, "index range probe on id"));
}

TEST_F(RangeProbeTest, ProbeResultsMatchScanResultsByteForByte) {
  // The same query before the index exists (scan) and after (probe)
  // must render identical rows in identical order.
  Database bare;
  ASSERT_TRUE(bare.Execute("create table t (id int, v int)").ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(bare.Insert("t", {Value::Int(i), Value::Int(i * 7)}).ok());
  }
  const std::string queries[] = {
      "select id, v from t where id >= 17 and id <= 42",
      "select id, v from t where id > 90",
      "select id, v from t where id < 4 and v >= 0",
      "select id, v from t where id >= 60 and id <= 60",
      "select id, v from t where id >= 70 and id <= 10",  // empty range
  };
  for (const std::string& q : queries) {
    auto scan = bare.Execute(q);
    auto probe = db_.Execute(q);
    ASSERT_TRUE(scan.ok());
    ASSERT_TRUE(probe.ok());
    EXPECT_EQ(Render(*probe), Render(*scan)) << q;
  }
}

TEST_F(RangeProbeTest, DeletedRowsDoNotResurfaceThroughTheProbe) {
  ASSERT_TRUE(db_.Execute("delete from t where id >= 30 and id <= 35").ok());
  auto rows = db_.Execute("select id from t where id >= 28 and id <= 37");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 4u);  // 28, 29, 36, 37
}

// --- FindIndexRangeSpec unit shapes -------------------------------------

TEST(FindIndexRangeSpecTest, RecognizesMirroredAndStrictForms) {
  Database db;
  ASSERT_TRUE(db.Execute("create table t (id int, v int)").ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(1), Value::Int(2)}).ok());
  ASSERT_TRUE(db.Execute("create index t_id on t (id)").ok());
  // Mirrored literals: `5 <= id` is `id >= 5`.
  auto lines = ExplainOf(&db, "select v from t where 5 <= id and 9 > id");
  EXPECT_TRUE(AnyLineContains(lines, "in [5..8]"))
      << "plan was:\n" + lines.front();
}

TEST(FindIndexRangeSpecTest, TightestBoundWinsAcrossConjuncts) {
  Database db;
  ASSERT_TRUE(db.Execute("create table t (id int)").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Insert("t", {Value::Int(i)}).ok());
  }
  ASSERT_TRUE(db.Execute("create index t_id on t (id)").ok());
  auto lines = ExplainOf(
      &db, "select id from t where id >= 3 and id >= 10 and id <= 20");
  EXPECT_TRUE(AnyLineContains(lines, "in [10..20]"))
      << "plan was:\n" + lines.front();
}

}  // namespace
}  // namespace qbism::sql
