#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/macros.h"
#include "qbism/spatial_extension.h"
#include "region/stats.h"
#include "sql/database.h"
#include "sql/planner/cost.h"
#include "sql/planner/stats.h"

namespace qbism::sql {
namespace {

using curve::CurveKind;
using region::GridSpec;
using region::Region;
using region::RegionEncoding;

/// Flattens an EXPLAIN result (one string row per plan line).
std::vector<std::string> ExplainOf(Database* db, const std::string& sql) {
  auto result = db->Execute(sql);
  QBISM_CHECK(result.ok());
  std::vector<std::string> lines;
  for (const Row& row : result->rows) {
    lines.push_back(row[0].AsString().MoveValue());
  }
  return lines;
}

/// Index of the first line containing `needle`, or npos.
size_t LineWith(const std::vector<std::string>& lines,
                const std::string& needle) {
  for (size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find(needle) != std::string::npos) return i;
  }
  return std::string::npos;
}

// --- Statistics layer ---------------------------------------------------

TEST(PlannerStatsTest, HistogramSelectivityAbove) {
  planner::RegionColumnStats stats;
  stats.rows = 100;
  // 50 rows with voxel counts in [8,16), 50 in [1024,2048).
  stats.voxels_log2[planner::RegionColumnStats::BucketOf(8)] = 50;
  stats.voxels_log2[planner::RegionColumnStats::BucketOf(1024)] = 50;
  EXPECT_NEAR(stats.VoxelCountSelectivityAbove(0.0), 1.0, 1e-9);
  EXPECT_NEAR(stats.VoxelCountSelectivityAbove(512.0), 0.5, 1e-9);
  EXPECT_NEAR(stats.VoxelCountSelectivityAbove(1 << 20), 0.0, 1e-9);
  // Monotone non-increasing in the threshold.
  double prev = 1.0;
  for (double t = 1.0; t < (1 << 14); t *= 2) {
    double sel = stats.VoxelCountSelectivityAbove(t);
    EXPECT_LE(sel, prev + 1e-12) << "threshold " << t;
    prev = sel;
  }
}

TEST(PlannerStatsTest, FitPowerLawRecoversExponent) {
  // Synthesize delta lengths following count = c * length^(-1.6), the
  // shape §4.2 reports for real atlas regions.
  std::vector<uint64_t> lengths;
  for (uint64_t len = 1; len <= 64; ++len) {
    auto count = static_cast<uint64_t>(2000.0 * std::pow(double(len), -1.6));
    for (uint64_t i = 0; i < count; ++i) lengths.push_back(len);
  }
  LinearFit fit = region::FitPowerLaw(lengths);
  // Log-binning steepens the raw exponent a little; the planner only
  // needs "clearly power-law-decaying", not the exact exponent.
  EXPECT_LT(fit.slope, -1.0);
  EXPECT_GT(fit.slope, -2.6);
  EXPECT_LT(fit.r, -0.9);  // strong log-log correlation
}

TEST(PlannerStatsTest, AnalyzeTableScalarStats) {
  Database db;
  ASSERT_TRUE(db.Execute("create table t (id int, grp int)").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        db.Insert("t", {Value::Int(i), Value::Int(i % 4)}).ok());
  }
  uint64_t before = db.planner_stats()->version();
  ASSERT_TRUE(db.planner_stats()->AnalyzeTable(db.catalog(), "t").ok());
  EXPECT_GT(db.planner_stats()->version(), before);

  auto stats = db.planner_stats()->Get("t");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->rows, 20u);
  const planner::ColumnStats& id = stats->columns.at("id");
  EXPECT_EQ(id.non_null, 20u);
  EXPECT_EQ(id.distinct_est, 20u);
  ASSERT_TRUE(id.has_range);
  EXPECT_EQ(id.min, 0.0);
  EXPECT_EQ(id.max, 19.0);
  EXPECT_EQ(stats->columns.at("grp").distinct_est, 4u);
}

// --- EXPLAIN golden shapes ----------------------------------------------

TEST(ExplainTest, IndexProbeRecognizesConstantFoldedKey) {
  Database db;
  ASSERT_TRUE(db.Execute("create table t (id int, v int)").ok());
  ASSERT_TRUE(db.Execute("create index idx_id on t (id)").ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db.Insert("t", {Value::Int(i), Value::Int(i * 10)}).ok());
  }
  // The probe key is an expression; the optimizer folds it once at
  // compile time and still picks the index.
  auto lines = ExplainOf(&db, "explain select v from t where id = 2 + 3");
  EXPECT_NE(LineWith(lines, "index probe on id = 5"), std::string::npos)
      << "got:\n" << ::testing::PrintToString(lines);
  // And the folded probe actually runs: one row, v = 50.
  auto result = db.Execute("select v from t where id = 2 + 3");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt().MoveValue(), 50);
}

TEST(ExplainTest, ReportsUnresolvableColumnInsteadOfAPlan) {
  Database db;
  ASSERT_TRUE(db.Execute("create table t (id int, v int)").ok());
  // Execution defers resolution errors until a row reaches them (the
  // interpreter contract), but EXPLAIN must not print a confident plan
  // over a column that does not exist.
  auto result = db.Execute("explain select v from t where bogus > 3");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("unknown column 'bogus'"),
            std::string::npos)
      << result.status().ToString();
  // Same for the select list and for unknown functions.
  EXPECT_FALSE(db.Execute("explain select bogus from t").ok());
  EXPECT_FALSE(db.Execute("explain select nosuchfn(v) from t").ok());
}

TEST(ExplainTest, JoinOrderStartsFromSmallerTable) {
  Database db;
  ASSERT_TRUE(db.Execute("create table big (id int, payload int)").ok());
  ASSERT_TRUE(db.Execute("create table small (k int, tag int)").ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.Insert("big", {Value::Int(i), Value::Int(i)}).ok());
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db.Insert("small", {Value::Int(i), Value::Int(-i)}).ok());
  }
  ASSERT_TRUE(db.planner_stats()->AnalyzeAll(db.catalog()).ok());
  auto lines = ExplainOf(
      &db, "explain select b.payload from big b, small s where b.id = s.k");
  EXPECT_NE(LineWith(lines, "join order: s, b"), std::string::npos)
      << "got:\n" << ::testing::PrintToString(lines);
  // The reordered join still answers correctly.
  auto result =
      db.Execute("select b.payload from big b, small s where b.id = s.k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 5u);
}

/// EXPLAIN shapes for the paper's Table 3/4 queries: spatial threshold
/// conjuncts over stored regions, with the optimizer ordering them by
/// the fitted power-law selectivity.
class SpatialExplainTest : public ::testing::Test {
 protected:
  SpatialExplainTest() {
    SpatialConfig config;
    config.grid = GridSpec{3, 5};  // 32^3
    config.region_encoding = RegionEncoding::kEliasDeltas;
    auto ext = SpatialExtension::Install(&db_, config);
    QBISM_CHECK(ext.ok());
    ext_ = ext.MoveValue();
  }

  /// Stores boxes of growing size: voxel counts (2i+1)^3 for
  /// i = 1..12, i.e. 27 .. 15625 voxels.
  void StoreGrowingBoxes() {
    ASSERT_TRUE(
        db_.Execute("create table r (id int, studyId int, reg longfield)")
            .ok());
    for (int i = 1; i <= 12; ++i) {
      Region box = Region::FromBox(
          ext_->config().grid, CurveKind::kHilbert,
          {{0, 0, 0}, {2 * i, 2 * i, 2 * i}});
      ASSERT_TRUE(
          db_.Insert("r",
                     {Value::Int(i), Value::Int(i % 3),
                      Value::LongField(ext_->StoreRegion(box).MoveValue())})
              .ok());
    }
    ASSERT_TRUE(ext_->RefreshPlannerStats().ok());
  }

  Database db_;
  std::unique_ptr<SpatialExtension> ext_;
};

TEST_F(SpatialExplainTest, RefreshBuildsRegionHistogramsAndFits) {
  StoreGrowingBoxes();
  auto stats = db_.planner_stats()->Get("r");
  ASSERT_NE(stats, nullptr);
  const planner::RegionColumnStats& reg = stats->regions.at("reg");
  EXPECT_EQ(reg.rows, 12u);
  EXPECT_GT(reg.total_voxels, 0u);
  EXPECT_GT(reg.total_bytes, 0u);
  // 27-voxel boxes are below 8000, the two largest are above.
  EXPECT_LT(reg.VoxelCountSelectivityAbove(8000.0),
            reg.VoxelCountSelectivityAbove(30.0));
  // Per-study fits are keyed by the studyId column.
  EXPECT_FALSE(reg.per_study.empty());
}

TEST_F(SpatialExplainTest, ReordersLowSelectivitySpatialConjunctFirst) {
  StoreGrowingBoxes();
  // Written with the unselective conjunct first; the optimizer must
  // flip them — voxelcount(reg) > 8000 passes 3/12 rows while > 30
  // passes 11/12, and both cost one streamed run count.
  auto lines = ExplainOf(&db_,
                         "explain select id from r "
                         "where voxelcount(reg) > 30 "
                         "and voxelcount(reg) > 8000");
  size_t selective = LineWith(lines, "filter (voxelcount(reg) > 8000)");
  size_t unselective = LineWith(lines, "filter (voxelcount(reg) > 30)");
  ASSERT_NE(selective, std::string::npos)
      << "got:\n" << ::testing::PrintToString(lines);
  ASSERT_NE(unselective, std::string::npos);
  EXPECT_LT(selective, unselective)
      << "got:\n" << ::testing::PrintToString(lines);
  // The reordered plan returns exactly the three largest regions
  // (21^3 = 9261, 23^3 = 12167, 25^3 = 15625 voxels).
  auto result = db_.Execute(
      "select id from r where voxelcount(reg) > 30 "
      "and voxelcount(reg) > 8000");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u);
}

TEST_F(SpatialExplainTest, SetOpChainPlansEncodedDomainExtraction) {
  StoreGrowingBoxes();
  // Table 3 shape: measure the overlap of two stored structures. With
  // elias-stored operands the plan keeps the whole chain encoded.
  auto lines = ExplainOf(&db_,
                         "explain select voxelcount("
                         "intersection(a.reg, b.reg)) "
                         "from r a, r b where a.id = 2 and b.id = 4");
  EXPECT_NE(LineWith(lines, "extraction: encoded-domain chain"),
            std::string::npos)
      << "got:\n" << ::testing::PrintToString(lines);
}

// --- Plan cache ---------------------------------------------------------

TEST(PlanCacheTest, RepeatedStatementHitsCachedPlan) {
  Database db;
  ASSERT_TRUE(db.Execute("create table t (id int, v int)").ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(1), Value::Int(10)}).ok());
  PlanCache* cache = db.plan_cache();
  EXPECT_EQ(cache->size(), 0u);

  const std::string q = "select v from t where id = 1";
  ASSERT_TRUE(db.Execute(q).ok());
  EXPECT_EQ(cache->size(), 1u);
  uint64_t hits = cache->hits();
  auto result = db.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(cache->hits(), hits + 1);
  EXPECT_EQ(result->rows[0][0].AsInt().MoveValue(), 10);
}

TEST(PlanCacheTest, DdlAndStatsRefreshInvalidate) {
  Database db;
  ASSERT_TRUE(db.Execute("create table t (id int, v int)").ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(1), Value::Int(10)}).ok());
  PlanCache* cache = db.plan_cache();
  const std::string q = "select v from t where id = 1";
  ASSERT_TRUE(db.Execute(q).ok());

  // DDL bumps the catalog version: the cached plan is stale, so the
  // next run replans instead of hitting.
  uint64_t hits = cache->hits();
  ASSERT_TRUE(db.Execute("create table other (x int)").ok());
  ASSERT_TRUE(db.Execute(q).ok());
  EXPECT_EQ(cache->hits(), hits);
  EXPECT_EQ(cache->size(), 1u);  // re-cached under the new version

  // A statistics refresh bumps the stats version with the same effect.
  hits = cache->hits();
  ASSERT_TRUE(db.planner_stats()->AnalyzeTable(db.catalog(), "t").ok());
  ASSERT_TRUE(db.Execute(q).ok());
  EXPECT_EQ(cache->hits(), hits);
}

TEST(PlanCacheTest, CachedPlanSeesRowMutations) {
  // Row DML bumps neither version: the cached plan must keep serving
  // and still observe the new data (plans re-resolve heaps by name).
  Database db;
  ASSERT_TRUE(db.Execute("create table t (id int, v int)").ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(1), Value::Int(10)}).ok());
  const std::string q = "select v from t where id = 1";
  ASSERT_TRUE(db.Execute(q).ok());

  ASSERT_TRUE(db.Execute("update t set v = 99 where id = 1").ok());
  uint64_t hits = db.plan_cache()->hits();
  auto result = db.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(db.plan_cache()->hits(), hits + 1);
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt().MoveValue(), 99);
}

// --- Cost model ---------------------------------------------------------

TEST(CostModelTest, PredicateRankOrdersBySelectivityPerCost) {
  // Hellerstein rank (sel - 1) / cost, ascending: cheap selective
  // predicates run first, and an expensive predicate ranks behind a
  // cheap one even when it filters more (its per-row payoff is lower).
  double selective_cheap = planner::PredicateRank(0.1, 1.0);
  double unselective_cheap = planner::PredicateRank(0.9, 1.0);
  double selective_costly = planner::PredicateRank(0.1, 100.0);
  EXPECT_LT(selective_cheap, unselective_cheap);
  EXPECT_LT(selective_cheap, selective_costly);
  EXPECT_LT(unselective_cheap, selective_costly);
}

}  // namespace
}  // namespace qbism::sql
