#include "sql/udf.h"

#include <gtest/gtest.h>

#include "sql/database.h"

namespace qbism::sql {
namespace {

TEST(UdfRegistryTest, RegisterAndLookup) {
  UdfRegistry registry;
  ASSERT_TRUE(registry
                  .Register("double_it",
                            [](UdfContext&, const std::vector<Value>& args)
                                -> Result<Value> {
                              return Value::Int(args[0].AsInt().value() * 2);
                            })
                  .ok());
  auto fn = registry.Lookup("double_it");
  ASSERT_TRUE(fn.ok());
  UdfContext ctx;
  EXPECT_EQ((*fn.value())(ctx, {Value::Int(21)}).value().AsInt().value(), 42);
}

TEST(UdfRegistryTest, LookupCaseInsensitive) {
  UdfRegistry registry;
  ASSERT_TRUE(registry
                  .Register("MixedCase",
                            [](UdfContext&, const std::vector<Value>&)
                                -> Result<Value> { return Value::Int(1); })
                  .ok());
  EXPECT_TRUE(registry.Lookup("mixedcase").ok());
  EXPECT_TRUE(registry.Lookup("MIXEDCASE").ok());
}

TEST(UdfRegistryTest, DuplicateRejected) {
  UdfRegistry registry;
  auto fn = [](UdfContext&, const std::vector<Value>&) -> Result<Value> {
    return Value::Int(0);
  };
  ASSERT_TRUE(registry.Register("f", fn).ok());
  EXPECT_TRUE(registry.Register("F", fn).IsAlreadyExists());
}

TEST(UdfRegistryTest, UnknownNameFails) {
  UdfRegistry registry;
  EXPECT_TRUE(registry.Lookup("nope").status().IsNotFound());
}

TEST(UdfRegistryTest, NamesEnumerated) {
  UdfRegistry registry;
  auto fn = [](UdfContext&, const std::vector<Value>&) -> Result<Value> {
    return Value::Int(0);
  };
  ASSERT_TRUE(registry.Register("b", fn).ok());
  ASSERT_TRUE(registry.Register("a", fn).ok());
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"a", "b"}));
}

TEST(UdfInSqlTest, FunctionsRunInsideQueries) {
  Database db;
  ASSERT_TRUE(db.udfs()
                  ->Register("plus",
                             [](UdfContext&, const std::vector<Value>& args)
                                 -> Result<Value> {
                               if (args.size() != 2) {
                                 return Status::InvalidArgument("arity");
                               }
                               return Value::Int(args[0].AsInt().value() +
                                                 args[1].AsInt().value());
                             })
                  .ok());
  ASSERT_TRUE(db.Execute("create table t (x int)").ok());
  ASSERT_TRUE(db.Execute("insert into t values (10), (20)").ok());
  auto result = db.Execute("select plus(x, 5) from t where plus(x, 0) = 20");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt().value(), 25);
}

TEST(UdfInSqlTest, UdfErrorsPropagate) {
  Database db;
  ASSERT_TRUE(db.udfs()
                  ->Register("boom",
                             [](UdfContext&, const std::vector<Value>&)
                                 -> Result<Value> {
                               return Status::Internal("kaboom");
                             })
                  .ok());
  ASSERT_TRUE(db.Execute("create table t (x int)").ok());
  ASSERT_TRUE(db.Execute("insert into t values (1)").ok());
  auto result = db.Execute("select boom() from t");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
}

TEST(UdfInSqlTest, UnknownFunctionReported) {
  Database db;
  ASSERT_TRUE(db.Execute("create table t (x int)").ok());
  ASSERT_TRUE(db.Execute("insert into t values (1)").ok());
  auto result = db.Execute("select nosuchfn(x) from t");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(UdfInSqlTest, ContextCarriesLfmAndExtensionState) {
  Database db;
  int sentinel = 1234;
  db.set_extension_state(&sentinel);
  ASSERT_TRUE(
      db.udfs()
          ->Register("probe",
                     [](UdfContext& ctx, const std::vector<Value>&)
                         -> Result<Value> {
                       if (ctx.lfm == nullptr) {
                         return Status::Internal("no lfm");
                       }
                       return Value::Int(
                           *static_cast<int*>(ctx.extension_state));
                     })
          .ok());
  ASSERT_TRUE(db.Execute("create table t (x int)").ok());
  ASSERT_TRUE(db.Execute("insert into t values (0)").ok());
  auto result = db.Execute("select probe() from t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt().value(), 1234);
}

}  // namespace
}  // namespace qbism::sql
