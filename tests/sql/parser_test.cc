#include "sql/parser.h"

#include <gtest/gtest.h>

namespace qbism::sql {
namespace {

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseStatement("select a, b from t").MoveValue();
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  ASSERT_EQ(select->items.size(), 2u);
  EXPECT_EQ(select->items[0].expr->kind, Expr::Kind::kColumnRef);
  EXPECT_EQ(select->items[0].expr->column, "a");
  ASSERT_EQ(select->tables.size(), 1u);
  EXPECT_EQ(select->tables[0].table, "t");
  EXPECT_EQ(select->tables[0].alias, "t");
  EXPECT_EQ(select->where, nullptr);
}

TEST(ParserTest, SelectStar) {
  auto stmt = ParseStatement("SELECT * FROM patients").MoveValue();
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  EXPECT_TRUE(select->star);
}

TEST(ParserTest, AliasesExplicitAndImplicit) {
  auto stmt =
      ParseStatement("select x as alpha, y beta from t u, s").MoveValue();
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->items[0].alias, "alpha");
  EXPECT_EQ(select->items[1].alias, "beta");
  EXPECT_EQ(select->tables[0].alias, "u");
  EXPECT_EQ(select->tables[1].alias, "s");
}

TEST(ParserTest, QualifiedColumnsAndWhere) {
  auto stmt = ParseStatement(
                  "select wv.data from warpedVolume wv "
                  "where wv.studyId = 53 and wv.atlasId <> 2")
                  .MoveValue();
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->items[0].expr->table, "wv");
  EXPECT_EQ(select->items[0].expr->column, "data");
  ASSERT_NE(select->where, nullptr);
  EXPECT_EQ(select->where->kind, Expr::Kind::kBinary);
  EXPECT_EQ(select->where->bin_op, Expr::BinOp::kAnd);
}

TEST(ParserTest, FunctionCalls) {
  auto stmt = ParseStatement(
                  "select extractVoxels(wv.data, ast.region) "
                  "from warpedVolume wv, atlasStructure ast")
                  .MoveValue();
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  const Expr& call = *select->items[0].expr;
  EXPECT_EQ(call.kind, Expr::Kind::kFunctionCall);
  EXPECT_EQ(call.function, "extractvoxels");  // lower-cased
  ASSERT_EQ(call.args.size(), 2u);
  EXPECT_EQ(call.args[0]->table, "wv");
  EXPECT_EQ(call.args[1]->column, "region");
}

TEST(ParserTest, NestedFunctionCalls) {
  auto stmt = ParseStatement(
                  "select intersection(a.r, intersection(b.r, c.r)) "
                  "from a, b, c")
                  .MoveValue();
  auto* select = std::get_if<SelectStmt>(&stmt);
  const Expr& outer = *select->items[0].expr;
  ASSERT_EQ(outer.args.size(), 2u);
  EXPECT_EQ(outer.args[1]->kind, Expr::Kind::kFunctionCall);
  EXPECT_EQ(outer.args[1]->function, "intersection");
}

TEST(ParserTest, ZeroArgFunction) {
  auto expr = ParseExpression("fullregion()").MoveValue();
  EXPECT_EQ(expr->kind, Expr::Kind::kFunctionCall);
  EXPECT_TRUE(expr->args.empty());
}

TEST(ParserTest, OperatorPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3).
  auto expr = ParseExpression("1 + 2 * 3").MoveValue();
  EXPECT_EQ(expr->bin_op, Expr::BinOp::kAdd);
  EXPECT_EQ(expr->rhs->bin_op, Expr::BinOp::kMul);
  // a = 1 or b = 2 and c = 3: AND binds tighter than OR.
  auto logic = ParseExpression("a = 1 or b = 2 and c = 3").MoveValue();
  EXPECT_EQ(logic->bin_op, Expr::BinOp::kOr);
  EXPECT_EQ(logic->rhs->bin_op, Expr::BinOp::kAnd);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto expr = ParseExpression("(1 + 2) * 3").MoveValue();
  EXPECT_EQ(expr->bin_op, Expr::BinOp::kMul);
  EXPECT_EQ(expr->lhs->bin_op, Expr::BinOp::kAdd);
}

TEST(ParserTest, UnaryOperators) {
  auto neg = ParseExpression("-5").MoveValue();
  EXPECT_EQ(neg->kind, Expr::Kind::kUnary);
  EXPECT_EQ(neg->un_op, Expr::UnOp::kNeg);
  auto stmt =
      ParseStatement("select a from t where not a = 1").MoveValue();
  auto* select = std::get_if<SelectStmt>(&stmt);
  EXPECT_EQ(select->where->kind, Expr::Kind::kUnary);
  EXPECT_EQ(select->where->un_op, Expr::UnOp::kNot);
}

TEST(ParserTest, Insert) {
  auto stmt = ParseStatement(
                  "insert into t values (1, 'x', 2.5), (2, 'y', 3.5)")
                  .MoveValue();
  auto* insert = std::get_if<InsertStmt>(&stmt);
  ASSERT_NE(insert, nullptr);
  EXPECT_EQ(insert->table, "t");
  ASSERT_EQ(insert->rows.size(), 2u);
  ASSERT_EQ(insert->rows[0].size(), 3u);
  EXPECT_EQ(insert->rows[0][0]->literal.AsInt().value(), 1);
  EXPECT_EQ(insert->rows[1][1]->literal.AsString().value(), "y");
}

TEST(ParserTest, CreateTable) {
  auto stmt = ParseStatement(
                  "create table t (id int, name string, score double,"
                  " blob longfield)")
                  .MoveValue();
  auto* create = std::get_if<CreateTableStmt>(&stmt);
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->table, "t");
  ASSERT_EQ(create->columns.size(), 4u);
  EXPECT_EQ(create->columns[0].type, ColumnType::kInt);
  EXPECT_EQ(create->columns[1].type, ColumnType::kString);
  EXPECT_EQ(create->columns[2].type, ColumnType::kDouble);
  EXPECT_EQ(create->columns[3].type, ColumnType::kLongField);
}

TEST(ParserTest, GroupOrderLimitClauses) {
  auto stmt = ParseStatement(
                  "select grp, count(*) from t where x > 0 group by grp"
                  " order by 2 desc, grp asc limit 10")
                  .MoveValue();
  auto* select = std::get_if<SelectStmt>(&stmt);
  ASSERT_NE(select, nullptr);
  ASSERT_EQ(select->group_by.size(), 1u);
  ASSERT_EQ(select->order_by.size(), 2u);
  EXPECT_EQ(select->order_by[0].position, 2);
  EXPECT_TRUE(select->order_by[0].descending);
  EXPECT_EQ(select->order_by[1].column, "grp");
  EXPECT_FALSE(select->order_by[1].descending);
  EXPECT_EQ(select->limit, 10);
}

TEST(ParserTest, CountStarParses) {
  auto expr = ParseExpression("count(*)").MoveValue();
  EXPECT_EQ(expr->kind, Expr::Kind::kFunctionCall);
  EXPECT_EQ(expr->function, "count");
  EXPECT_TRUE(expr->args.empty());
}

TEST(ParserTest, CreateIndexStatement) {
  auto stmt = ParseStatement("create index idx on t (col)").MoveValue();
  auto* create = std::get_if<CreateIndexStmt>(&stmt);
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->index_name, "idx");
  EXPECT_EQ(create->table, "t");
  EXPECT_EQ(create->column, "col");
  EXPECT_FALSE(ParseStatement("create index on t (col)").ok());
  EXPECT_FALSE(ParseStatement("create index idx on t ()").ok());
}

TEST(ParserTest, DeleteStatement) {
  auto stmt = ParseStatement("delete from t where x = 1").MoveValue();
  auto* del = std::get_if<DeleteStmt>(&stmt);
  ASSERT_NE(del, nullptr);
  EXPECT_EQ(del->table, "t");
  EXPECT_NE(del->where, nullptr);
  auto all = ParseStatement("delete from t").MoveValue();
  EXPECT_EQ(std::get_if<DeleteStmt>(&all)->where, nullptr);
  EXPECT_FALSE(ParseStatement("delete t").ok());
}

TEST(ParserTest, UpdateStatement) {
  auto stmt = ParseStatement(
                  "update t set a = a + 1, b = 'x' where c <> 0")
                  .MoveValue();
  auto* update = std::get_if<UpdateStmt>(&stmt);
  ASSERT_NE(update, nullptr);
  EXPECT_EQ(update->table, "t");
  ASSERT_EQ(update->assignments.size(), 2u);
  EXPECT_EQ(update->assignments[0].first, "a");
  EXPECT_EQ(update->assignments[1].first, "b");
  EXPECT_NE(update->where, nullptr);
  EXPECT_FALSE(ParseStatement("update t a = 1").ok());
  EXPECT_FALSE(ParseStatement("update t set").ok());
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  EXPECT_TRUE(ParseStatement("SeLeCt a FrOm t WhErE a = 1").ok());
  EXPECT_TRUE(ParseStatement("INSERT INTO t VALUES (1)").ok());
}

TEST(ParserTest, NullLiteral) {
  auto expr = ParseExpression("null").MoveValue();
  EXPECT_EQ(expr->kind, Expr::Kind::kLiteral);
  EXPECT_TRUE(expr->literal.is_null());
}

TEST(ParserTest, ErrorsAreInformative) {
  for (const char* bad :
       {"select", "select from t", "select a from", "insert t values (1)",
        "create table t", "select a from t where", "select a from t 1 2",
        "select a,, b from t", "insert into t values (1"}) {
    auto result = ParseStatement(bad);
    EXPECT_FALSE(result.ok()) << bad;
    EXPECT_TRUE(result.status().IsInvalidArgument()) << bad;
  }
}

TEST(ParserTest, PaperInfoQueryParses) {
  // The first §3.4 query, adapted to our dialect (alias "as" -> "ast").
  const char* sql =
      "select a.n, a.x0, a.y0, a.z0, a.dx, a.dy, a.dz, a.atlasId, p.name,"
      " p.patientId, rv.date"
      " from atlas a, rawVolume rv, warpedVolume wv, patient p"
      " where a.atlasId = wv.atlasId and wv.studyId = rv.studyId and"
      " rv.patientId = p.patientId and rv.studyId = 53 and"
      " a.atlasName = 'Talairach'";
  auto stmt = ParseStatement(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto* select = std::get_if<SelectStmt>(&stmt.value());
  EXPECT_EQ(select->items.size(), 11u);
  EXPECT_EQ(select->tables.size(), 4u);
}

TEST(ParserTest, PaperDataQueryParses) {
  const char* sql =
      "select ast.region, extractVoxels(wv.data, ast.region)"
      " from warpedVolume wv, atlasStructure ast, neuralStructure ns"
      " where wv.studyId = 53 and ast.structureId = ns.structureId and"
      " ns.structureName = 'putamen'";
  EXPECT_TRUE(ParseStatement(sql).ok());
}

}  // namespace
}  // namespace qbism::sql
