#include <gtest/gtest.h>

#include "sql/database.h"

namespace qbism::sql {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.Execute("create table studies (studyId int, patientId int,"
                    " modality string)")
            .ok());
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(db_.Insert("studies",
                             {Value::Int(i), Value::Int(i % 40),
                              Value::String(i % 3 ? "PET" : "MRI")})
                      .ok());
    }
  }

  Database db_;
};

TEST_F(IndexTest, CreateIndexStatementParsesAndExecutes) {
  EXPECT_TRUE(db_.Execute("create index idx_study on studies (studyId)").ok());
  // Duplicate rejected.
  auto again = db_.Execute("create index idx2 on studies (studyId)");
  EXPECT_TRUE(again.status().IsAlreadyExists());
}

TEST_F(IndexTest, CreateIndexValidation) {
  EXPECT_TRUE(db_.Execute("create index i on nosuch (x)").status()
                  .IsNotFound());
  EXPECT_TRUE(db_.Execute("create index i on studies (nosuch)").status()
                  .IsNotFound());
  // Only integer columns are indexable.
  EXPECT_TRUE(db_.Execute("create index i on studies (modality)").status()
                  .IsInvalidArgument());
}

TEST_F(IndexTest, BackfilledIndexAnswersEqualityQueries) {
  auto scan = db_.Execute("select patientId from studies where studyId = 123")
                  .MoveValue();
  ASSERT_TRUE(db_.Execute("create index i on studies (studyId)").ok());
  auto indexed =
      db_.Execute("select patientId from studies where studyId = 123")
          .MoveValue();
  ASSERT_EQ(indexed.rows.size(), 1u);
  EXPECT_EQ(indexed.rows[0][0].AsInt().value(),
            scan.rows[0][0].AsInt().value());
}

TEST_F(IndexTest, IndexMaintainedOnLaterInserts) {
  ASSERT_TRUE(db_.Execute("create index i on studies (studyId)").ok());
  ASSERT_TRUE(db_.Execute("insert into studies values (9999, 1, 'PET')").ok());
  auto result =
      db_.Execute("select modality from studies where studyId = 9999")
          .MoveValue();
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsString().value(), "PET");
}

TEST_F(IndexTest, DuplicateKeysAllReturned) {
  ASSERT_TRUE(db_.Execute("create index i on studies (patientId)").ok());
  auto result =
      db_.Execute("select studyId from studies where patientId = 7")
          .MoveValue();
  EXPECT_EQ(result.rows.size(), 13u);  // ids 7, 47, ..., 487
}

TEST_F(IndexTest, IndexCombinesWithOtherPredicates) {
  ASSERT_TRUE(db_.Execute("create index i on studies (patientId)").ok());
  auto result = db_.Execute(
                      "select studyId from studies"
                      " where patientId = 7 and modality = 'MRI'")
                    .MoveValue();
  for (const Row& row : result.rows) {
    EXPECT_EQ(row[0].AsInt().value() % 3, 0);  // MRI rows are i % 3 == 0
  }
  // Cross-check against the unindexed answer.
  Database fresh;
  ASSERT_TRUE(fresh
                  .Execute("create table studies (studyId int,"
                           " patientId int, modality string)")
                  .ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(fresh
                    .Insert("studies", {Value::Int(i), Value::Int(i % 40),
                                        Value::String(i % 3 ? "PET" : "MRI")})
                    .ok());
  }
  auto reference = fresh
                       .Execute("select studyId from studies"
                                " where patientId = 7 and modality = 'MRI'")
                       .MoveValue();
  EXPECT_EQ(result.rows.size(), reference.rows.size());
}

TEST_F(IndexTest, IndexUsedInJoins) {
  ASSERT_TRUE(db_.Execute("create table patients (patientId int,"
                          " name string)")
                  .ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(db_.Insert("patients", {Value::Int(i),
                                        Value::String("p" + std::to_string(i))})
                    .ok());
  }
  ASSERT_TRUE(db_.Execute("create index i on studies (studyId)").ok());
  auto result = db_.Execute(
                      "select p.name from studies s, patients p"
                      " where s.patientId = p.patientId and s.studyId = 77")
                    .MoveValue();
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsString().value(),
            "p" + std::to_string(77 % 40));
}

TEST_F(IndexTest, IndexReducesRelationalIo) {
  // Large table + index; compare device reads for an equality probe
  // against a full scan of a column with no index.
  DatabaseOptions options;
  options.buffer_pool_pages = 16;  // tiny pool so scans hit the device
  Database db(options);
  ASSERT_TRUE(db.Execute("create table big (k int, v int)").ok());
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(db.Insert("big", {Value::Int(i), Value::Int(i * 2)}).ok());
  }
  ASSERT_TRUE(db.Execute("create index i on big (k)").ok());

  db.relational_device()->ResetStats();
  ASSERT_TRUE(db.Execute("select v from big where k = 12345").ok());
  uint64_t indexed_reads = db.relational_device()->stats().pages_read;

  db.relational_device()->ResetStats();
  // v is unindexed: full scan.
  ASSERT_TRUE(db.Execute("select k from big where v = 24690").ok());
  uint64_t scan_reads = db.relational_device()->stats().pages_read;

  EXPECT_LT(indexed_reads * 10, scan_reads)
      << "indexed " << indexed_reads << " vs scan " << scan_reads;
}

TEST_F(IndexTest, NullKeysSkipped) {
  ASSERT_TRUE(db_.Execute("create table sparse (k int, v int)").ok());
  ASSERT_TRUE(db_.Insert("sparse", {Value::Null(), Value::Int(1)}).ok());
  ASSERT_TRUE(db_.Insert("sparse", {Value::Int(5), Value::Int(2)}).ok());
  ASSERT_TRUE(db_.Execute("create index i on sparse (k)").ok());
  auto result = db_.Execute("select v from sparse where k = 5").MoveValue();
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsInt().value(), 2);
}

}  // namespace
}  // namespace qbism::sql
