// Property tests: randomized tables, with SQL results checked against
// straightforward reference computations in C++.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/database.h"

namespace qbism::sql {
namespace {

struct RowData {
  int64_t a;
  int64_t b;
  double x;
};

class SqlPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    ASSERT_TRUE(db_.Execute("create table t (a int, b int, x double)").ok());
    int n = 50 + static_cast<int>(rng.NextBounded(150));
    for (int i = 0; i < n; ++i) {
      RowData row{static_cast<int64_t>(rng.NextBounded(20)),
                  static_cast<int64_t>(rng.NextBounded(1000)),
                  rng.NextDoubleIn(-5, 5)};
      data_.push_back(row);
      ASSERT_TRUE(db_.Insert("t", {Value::Int(row.a), Value::Int(row.b),
                                   Value::Double(row.x)})
                      .ok());
    }
  }

  Database db_;
  std::vector<RowData> data_;
};

TEST_P(SqlPropertyTest, FilterMatchesReference) {
  Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 5; ++trial) {
    int64_t k = static_cast<int64_t>(rng.NextBounded(20));
    auto result = db_.Execute("select b from t where a < " +
                              std::to_string(k) + " and b >= 100")
                      .MoveValue();
    size_t expected = 0;
    for (const RowData& row : data_) {
      if (row.a < k && row.b >= 100) ++expected;
    }
    EXPECT_EQ(result.rows.size(), expected) << "k=" << k;
  }
}

TEST_P(SqlPropertyTest, AggregatesMatchReference) {
  auto result =
      db_.Execute("select count(*), sum(b), min(b), max(b), avg(x) from t")
          .MoveValue();
  int64_t sum = 0, min_b = INT64_MAX, max_b = INT64_MIN;
  double sum_x = 0;
  for (const RowData& row : data_) {
    sum += row.b;
    min_b = std::min(min_b, row.b);
    max_b = std::max(max_b, row.b);
    sum_x += row.x;
  }
  const Row& r = result.rows[0];
  EXPECT_EQ(r[0].AsInt().value(), static_cast<int64_t>(data_.size()));
  EXPECT_EQ(r[1].AsInt().value(), sum);
  EXPECT_EQ(r[2].AsInt().value(), min_b);
  EXPECT_EQ(r[3].AsInt().value(), max_b);
  EXPECT_NEAR(r[4].AsDouble().value(),
              sum_x / static_cast<double>(data_.size()), 1e-9);
}

TEST_P(SqlPropertyTest, GroupByMatchesReference) {
  auto result =
      db_.Execute("select a, count(*), sum(b) from t group by a").MoveValue();
  std::map<int64_t, std::pair<int64_t, int64_t>> reference;  // a -> (n, sum)
  for (const RowData& row : data_) {
    reference[row.a].first += 1;
    reference[row.a].second += row.b;
  }
  ASSERT_EQ(result.rows.size(), reference.size());
  for (const Row& row : result.rows) {
    int64_t a = row[0].AsInt().value();
    ASSERT_TRUE(reference.count(a));
    EXPECT_EQ(row[1].AsInt().value(), reference[a].first);
    EXPECT_EQ(row[2].AsInt().value(), reference[a].second);
  }
}

TEST_P(SqlPropertyTest, OrderByIsSorted) {
  auto result = db_.Execute("select b from t order by b desc").MoveValue();
  ASSERT_EQ(result.rows.size(), data_.size());
  for (size_t i = 1; i < result.rows.size(); ++i) {
    EXPECT_LE(result.rows[i][0].AsInt().value(),
              result.rows[i - 1][0].AsInt().value());
  }
}

TEST_P(SqlPropertyTest, SelfJoinCountMatchesReference) {
  auto result =
      db_.Execute("select count(*) from t u, t v where u.a = v.a").MoveValue();
  std::map<int64_t, int64_t> by_a;
  for (const RowData& row : data_) ++by_a[row.a];
  int64_t expected = 0;
  for (const auto& [a, count] : by_a) expected += count * count;
  EXPECT_EQ(result.rows[0][0].AsInt().value(), expected);
}

TEST_P(SqlPropertyTest, IndexDoesNotChangeAnswers) {
  Rng rng(GetParam() + 2);
  int64_t probe = static_cast<int64_t>(rng.NextBounded(20));
  std::string sql =
      "select count(*), sum(b) from t where a = " + std::to_string(probe);
  auto before = db_.Execute(sql).MoveValue();
  ASSERT_TRUE(db_.Execute("create index ia on t (a)").ok());
  auto after = db_.Execute(sql).MoveValue();
  EXPECT_EQ(before.rows[0][0].AsInt().value(),
            after.rows[0][0].AsInt().value());
  EXPECT_EQ(before.rows[0][1].ToString(), after.rows[0][1].ToString());
}

TEST_P(SqlPropertyTest, DeleteThenCountConsistent) {
  Rng rng(GetParam() + 3);
  int64_t k = static_cast<int64_t>(rng.NextBounded(20));
  auto deleted = db_.Execute("delete from t where a = " + std::to_string(k))
                     .MoveValue();
  size_t expected_deleted = 0;
  for (const RowData& row : data_) {
    if (row.a == k) ++expected_deleted;
  }
  EXPECT_EQ(deleted.rows_affected, expected_deleted);
  auto remaining = db_.Execute("select count(*) from t").MoveValue();
  EXPECT_EQ(remaining.rows[0][0].AsInt().value(),
            static_cast<int64_t>(data_.size() - expected_deleted));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlPropertyTest,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace qbism::sql
