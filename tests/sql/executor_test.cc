#include "sql/executor.h"

#include <gtest/gtest.h>

#include "sql/database.h"
#include "sql/eval.h"

namespace qbism::sql {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("create table emp (id int, name string,"
                            " dept int, salary double)")
                    .ok());
    ASSERT_TRUE(db_.Execute("create table dept (id int, name string)").ok());
    ASSERT_TRUE(db_.Execute("insert into dept values (1, 'radiology'),"
                            " (2, 'neurology')")
                    .ok());
    ASSERT_TRUE(db_.Execute("insert into emp values"
                            " (1, 'ada', 1, 100.0),"
                            " (2, 'bob', 1, 90.0),"
                            " (3, 'eve', 2, 120.0)")
                    .ok());
  }

  ResultSet Run(const std::string& sql) {
    auto result = db_.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return result.ok() ? result.MoveValue() : ResultSet{};
  }

  Database db_;
};

TEST_F(ExecutorTest, CreateTableRejectsDuplicates) {
  auto result = db_.Execute("create table emp (id int)");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsAlreadyExists());
}

TEST_F(ExecutorTest, InsertReportsRowsAffected) {
  auto result = Run("insert into dept values (3, 'icu'), (4, 'er')");
  EXPECT_EQ(result.rows_affected, 2u);
}

TEST_F(ExecutorTest, InsertValidatesTypes) {
  EXPECT_FALSE(db_.Execute("insert into dept values ('x', 'y')").ok());
  EXPECT_FALSE(db_.Execute("insert into dept values (1)").ok());
  EXPECT_FALSE(db_.Execute("insert into nosuch values (1)").ok());
}

TEST_F(ExecutorTest, SelectAllRows) {
  auto result = Run("select id, name from emp");
  EXPECT_EQ(result.columns, (std::vector<std::string>{"id", "name"}));
  EXPECT_EQ(result.rows.size(), 3u);
}

TEST_F(ExecutorTest, SelectStar) {
  auto result = Run("select * from dept");
  EXPECT_EQ(result.columns.size(), 2u);
  EXPECT_EQ(result.columns[0], "dept.id");
  EXPECT_EQ(result.rows.size(), 2u);
}

TEST_F(ExecutorTest, WhereFilters) {
  auto result = Run("select name from emp where salary > 95.0");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][0].AsString().value(), "ada");
  EXPECT_EQ(result.rows[1][0].AsString().value(), "eve");
}

TEST_F(ExecutorTest, WhereWithAndOrNot) {
  EXPECT_EQ(Run("select id from emp where dept = 1 and salary >= 100.0")
                .rows.size(),
            1u);
  EXPECT_EQ(Run("select id from emp where dept = 2 or salary = 90.0")
                .rows.size(),
            2u);
  EXPECT_EQ(Run("select id from emp where not dept = 1").rows.size(), 1u);
  EXPECT_EQ(Run("select id from emp where id <> 2").rows.size(), 2u);
}

TEST_F(ExecutorTest, JoinTwoTables) {
  auto result = Run(
      "select e.name, d.name from emp e, dept d where e.dept = d.id and"
      " d.name = 'radiology'");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0][1].AsString().value(), "radiology");
}

TEST_F(ExecutorTest, CrossJoinWithoutPredicate) {
  auto result = Run("select e.id, d.id from emp e, dept d");
  EXPECT_EQ(result.rows.size(), 6u);  // 3 x 2
}

TEST_F(ExecutorTest, SelfJoinViaAliases) {
  auto result = Run(
      "select a.name, b.name from emp a, emp b "
      "where a.dept = b.dept and a.id < b.id");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsString().value(), "ada");
  EXPECT_EQ(result.rows[0][1].AsString().value(), "bob");
}

TEST_F(ExecutorTest, DuplicateAliasRejected) {
  EXPECT_FALSE(db_.Execute("select x.id from emp x, dept x").ok());
}

TEST_F(ExecutorTest, ArithmeticInSelectList) {
  auto result =
      Run("select salary * 2 + 1 as boosted from emp where id = 1");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.rows[0][0].AsDouble().value(), 201.0);
  EXPECT_EQ(result.columns[0], "boosted");
}

TEST_F(ExecutorTest, IntegerArithmetic) {
  auto result = Run("select id + 10, id - 1, id * 3, 7 / id from emp"
                    " where id = 2");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsInt().value(), 12);
  EXPECT_EQ(result.rows[0][1].AsInt().value(), 1);
  EXPECT_EQ(result.rows[0][2].AsInt().value(), 6);
  EXPECT_EQ(result.rows[0][3].AsInt().value(), 3);
}

TEST_F(ExecutorTest, DivisionByZeroFails) {
  EXPECT_FALSE(db_.Execute("select 1 / 0 from dept").ok());
  EXPECT_FALSE(db_.Execute("select 1.0 / 0.0 from dept").ok());
}

TEST_F(ExecutorTest, UnknownColumnAndAmbiguity) {
  EXPECT_FALSE(db_.Execute("select bogus from emp").ok());
  // "id" exists in both tables: ambiguous without qualification.
  EXPECT_FALSE(db_.Execute("select id from emp e, dept d").ok());
  // Qualified is fine.
  EXPECT_TRUE(db_.Execute("select e.id from emp e, dept d").ok());
  // "salary" exists only in emp: unqualified is fine in a join.
  EXPECT_TRUE(db_.Execute("select salary from emp e, dept d").ok());
}

TEST_F(ExecutorTest, EmptyTableYieldsNoRows) {
  ASSERT_TRUE(db_.Execute("create table empty (x int)").ok());
  EXPECT_EQ(Run("select x from empty").rows.size(), 0u);
  // Join with an empty table is empty.
  EXPECT_EQ(Run("select e.id from emp e, empty x").rows.size(), 0u);
}

TEST_F(ExecutorTest, StringComparisons) {
  EXPECT_EQ(Run("select id from emp where name = 'bob'").rows.size(), 1u);
  EXPECT_EQ(Run("select id from emp where name < 'bob'").rows.size(), 1u);
  EXPECT_EQ(Run("select id from emp where name >= 'bob'").rows.size(), 2u);
}

TEST_F(ExecutorTest, PredicatePushdownGivesSameAnswers) {
  // A three-way join whose single-table predicates must be pushed; the
  // answer is identical either way, and this exercises the pushdown
  // classification on qualified and unqualified columns.
  ASSERT_TRUE(db_.Execute("create table grade (emp int, grade int)").ok());
  ASSERT_TRUE(
      db_.Execute("insert into grade values (1, 5), (2, 4), (3, 5)").ok());
  auto result = Run(
      "select e.name from emp e, dept d, grade g "
      "where e.dept = d.id and g.emp = e.id and d.name = 'radiology' "
      "and g.grade = 5 and e.salary > 50.0");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsString().value(), "ada");
}

TEST_F(ExecutorTest, ResultSetToStringRendersTable) {
  auto result = Run("select id, name from dept where id = 1");
  std::string rendered = result.ToString();
  EXPECT_NE(rendered.find("id | name"), std::string::npos);
  EXPECT_NE(rendered.find("1 | 'radiology'"), std::string::npos);
}

TEST_F(ExecutorTest, PlanNotesDescribeAccessPaths) {
  auto scan = Run("select name from emp where salary > 95.0");
  ASSERT_EQ(scan.plan.size(), 1u);
  EXPECT_NE(scan.plan[0].find("emp emp: scan, 1 pushed predicate(s)"),
            std::string::npos);

  ASSERT_TRUE(db_.Execute("create index i on emp (id)").ok());
  auto probed = Run("select name from emp e where e.id = 2");
  ASSERT_EQ(probed.plan.size(), 1u);
  EXPECT_NE(probed.plan[0].find("emp e: index probe"), std::string::npos);

  auto joined = Run(
      "select e.name from emp e, dept d where e.dept = d.id and"
      " d.name = 'radiology'");
  ASSERT_EQ(joined.plan.size(), 3u);  // two tables + join note
  EXPECT_NE(joined.plan[2].find("join: 1 residual predicate(s)"),
            std::string::npos);
}

TEST(DatabaseFacadeTest, IoStatsAggregateBothDevices) {
  Database db;
  ASSERT_TRUE(db.Execute("create table t (x int, blob longfield)").ok());
  auto field = db.lfm()->Create(std::vector<uint8_t>(9000, 1)).MoveValue();
  ASSERT_TRUE(db.Insert("t", {Value::Int(1), Value::LongField(field)}).ok());
  ASSERT_TRUE(db.buffer_pool()->FlushAll().ok());
  ASSERT_TRUE(db.lfm()->Read(field).ok());
  storage::IoStats total = db.TotalIoStats();
  EXPECT_GT(total.pages_read + total.pages_written, 0u);
  EXPECT_GT(total.simulated_seconds, 0.0);
  EXPECT_EQ(total.pages_read + total.pages_written,
            db.relational_device()->stats().pages_read +
                db.relational_device()->stats().pages_written +
                db.long_field_device()->stats().pages_read +
                db.long_field_device()->stats().pages_written);
  db.ResetIoStats();
  storage::IoStats zero = db.TotalIoStats();
  EXPECT_EQ(zero.pages_read, 0u);
  EXPECT_EQ(zero.simulated_seconds, 0.0);
}

TEST(ValueIsTrueTest, Semantics) {
  EXPECT_FALSE(ValueIsTrue(Value::Null()).value());
  EXPECT_TRUE(ValueIsTrue(Value::Int(1)).value());
  EXPECT_FALSE(ValueIsTrue(Value::Int(0)).value());
  EXPECT_TRUE(ValueIsTrue(Value::Double(0.5)).value());
  EXPECT_FALSE(ValueIsTrue(Value::Double(0.0)).value());
  EXPECT_FALSE(ValueIsTrue(Value::String("x")).ok());
}

}  // namespace
}  // namespace qbism::sql
