#include <gtest/gtest.h>

#include "sql/database.h"

namespace qbism::sql {
namespace {

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("create table acct (id int, owner string,"
                            " balance int)")
                    .ok());
    ASSERT_TRUE(db_.Execute("insert into acct values"
                            " (1, 'ada', 100), (2, 'bob', 200),"
                            " (3, 'ada', 300)")
                    .ok());
  }

  int64_t BalanceOf(int id) {
    auto result = db_.Execute("select balance from acct where id = " +
                              std::to_string(id))
                      .MoveValue();
    return result.rows[0][0].AsInt().value();
  }

  Database db_;
};

TEST_F(UpdateTest, UpdateWithPredicate) {
  auto result = db_.Execute("update acct set balance = balance + 50"
                            " where owner = 'ada'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_affected, 2u);
  EXPECT_EQ(BalanceOf(1), 150);
  EXPECT_EQ(BalanceOf(2), 200);  // untouched
  EXPECT_EQ(BalanceOf(3), 350);
}

TEST_F(UpdateTest, UpdateAllRowsMultipleAssignments) {
  auto result =
      db_.Execute("update acct set balance = 0, owner = 'bank'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_affected, 3u);
  auto rows = db_.Execute("select owner, balance from acct").MoveValue();
  for (const Row& row : rows.rows) {
    EXPECT_EQ(row[0].AsString().value(), "bank");
    EXPECT_EQ(row[1].AsInt().value(), 0);
  }
}

TEST_F(UpdateTest, AssignmentsSeePreUpdateValues) {
  // Swap-like semantics: both expressions read the old row.
  ASSERT_TRUE(db_.Execute("create table p (a int, b int)").ok());
  ASSERT_TRUE(db_.Execute("insert into p values (1, 2)").ok());
  ASSERT_TRUE(db_.Execute("update p set a = b, b = a").ok());
  auto result = db_.Execute("select a, b from p").MoveValue();
  EXPECT_EQ(result.rows[0][0].AsInt().value(), 2);
  EXPECT_EQ(result.rows[0][1].AsInt().value(), 1);
}

TEST_F(UpdateTest, TypeMismatchRejected) {
  auto result = db_.Execute("update acct set balance = 'rich'");
  EXPECT_FALSE(result.ok());
  // No partial application: scan still sees consistent rows.
  auto rows = db_.Execute("select count(*) from acct").MoveValue();
  EXPECT_EQ(rows.rows[0][0].AsInt().value(), 3);
}

TEST_F(UpdateTest, UnknownTableOrColumnRejected) {
  EXPECT_TRUE(db_.Execute("update nosuch set x = 1").status().IsNotFound());
  EXPECT_TRUE(
      db_.Execute("update acct set nosuch = 1").status().IsNotFound());
}

TEST_F(UpdateTest, NoMatchesAffectsNothing) {
  auto result = db_.Execute("update acct set balance = 0 where id = 99");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_affected, 0u);
  EXPECT_EQ(BalanceOf(1), 100);
}

TEST_F(UpdateTest, IndexFollowsUpdatedKeys) {
  ASSERT_TRUE(db_.Execute("create index i on acct (id)").ok());
  ASSERT_TRUE(db_.Execute("update acct set id = 10 where id = 1").ok());
  // Old key gone, new key found, via the index path.
  EXPECT_TRUE(
      db_.Execute("select owner from acct where id = 1")->rows.empty());
  auto moved = db_.Execute("select owner from acct where id = 10").MoveValue();
  ASSERT_EQ(moved.rows.size(), 1u);
  EXPECT_EQ(moved.rows[0][0].AsString().value(), "ada");
}

TEST_F(UpdateTest, RepeatedUpdatesAccumulate) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        db_.Execute("update acct set balance = balance + 1 where id = 2")
            .ok());
  }
  EXPECT_EQ(BalanceOf(2), 210);
}

}  // namespace
}  // namespace qbism::sql
