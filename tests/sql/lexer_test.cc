#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace qbism::sql {
namespace {

TEST(LexerTest, EmptyInput) {
  auto tokens = Tokenize("").MoveValue();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, Token::Kind::kEnd);
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto tokens = Tokenize("select Foo _bar x9").MoveValue();
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, Token::Kind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "select");
  EXPECT_EQ(tokens[1].text, "Foo");
  EXPECT_EQ(tokens[2].text, "_bar");
  EXPECT_EQ(tokens[3].text, "x9");
}

TEST(LexerTest, IntegerAndFloatLiterals) {
  auto tokens = Tokenize("42 3.14 1e3 2.5e-2 7").MoveValue();
  EXPECT_EQ(tokens[0].kind, Token::Kind::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, Token::Kind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.14);
  EXPECT_EQ(tokens[2].kind, Token::Kind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 1000.0);
  EXPECT_EQ(tokens[3].kind, Token::Kind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 0.025);
  EXPECT_EQ(tokens[4].kind, Token::Kind::kInteger);
}

TEST(LexerTest, StringsWithEscapedQuotes) {
  auto tokens = Tokenize("'hello' 'it''s'").MoveValue();
  EXPECT_EQ(tokens[0].kind, Token::Kind::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, OperatorsAndSymbols) {
  auto tokens = Tokenize("= <> < <= > >= + - * / ( ) , . !=").MoveValue();
  const char* expected[] = {"=",  "<>", "<", "<=", ">", ">=", "+",
                            "-",  "*",  "/", "(",  ")", ",",  ".",
                            "<>"};  // != normalizes to <>
  for (size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].kind, Token::Kind::kSymbol) << i;
    EXPECT_EQ(tokens[i].text, expected[i]) << i;
  }
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens =
      Tokenize("select -- this is a comment\n x").MoveValue();
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "select");
  EXPECT_EQ(tokens[1].text, "x");
}

TEST(LexerTest, QualifiedColumnTokenizes) {
  auto tokens = Tokenize("wv.studyId").MoveValue();
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "wv");
  EXPECT_EQ(tokens[1].text, ".");
  EXPECT_EQ(tokens[2].text, "studyId");
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto result = Tokenize("select @ from");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(LexerTest, PositionsRecorded) {
  auto tokens = Tokenize("ab cd").MoveValue();
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 3u);
}

}  // namespace
}  // namespace qbism::sql
