#include <gtest/gtest.h>

#include "sql/database.h"

namespace qbism::sql {
namespace {

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("create table m (grp string, x int, y double)")
                    .ok());
    ASSERT_TRUE(db_.Execute("insert into m values"
                            " ('a', 1, 0.5), ('a', 2, 1.5), ('a', 3, 2.5),"
                            " ('b', 10, 5.0), ('b', 20, 10.0)")
                    .ok());
  }

  ResultSet Run(const std::string& sql) {
    auto result = db_.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return result.ok() ? result.MoveValue() : ResultSet{};
  }

  Database db_;
};

TEST_F(AggregateTest, CountStarWholeTable) {
  auto r = Run("select count(*) from m");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt().value(), 5);
}

TEST_F(AggregateTest, SumAvgMinMax) {
  auto r = Run("select sum(x), avg(x), min(x), max(x) from m");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt().value(), 36);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble().value(), 7.2);
  EXPECT_EQ(r.rows[0][2].AsInt().value(), 1);
  EXPECT_EQ(r.rows[0][3].AsInt().value(), 20);
}

TEST_F(AggregateTest, DoubleSumStaysDouble) {
  auto r = Run("select sum(y) from m");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble().value(), 19.5);
}

TEST_F(AggregateTest, GroupByProducesOneRowPerGroup) {
  auto r = Run("select grp, count(*), sum(x) from m group by grp");
  ASSERT_EQ(r.rows.size(), 2u);
  // First-seen order: 'a' then 'b'.
  EXPECT_EQ(r.rows[0][0].AsString().value(), "a");
  EXPECT_EQ(r.rows[0][1].AsInt().value(), 3);
  EXPECT_EQ(r.rows[0][2].AsInt().value(), 6);
  EXPECT_EQ(r.rows[1][0].AsString().value(), "b");
  EXPECT_EQ(r.rows[1][1].AsInt().value(), 2);
  EXPECT_EQ(r.rows[1][2].AsInt().value(), 30);
}

TEST_F(AggregateTest, GroupByWithWhere) {
  auto r = Run("select grp, avg(x) from m where x > 1 group by grp");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble().value(), 2.5);   // (2+3)/2
  EXPECT_DOUBLE_EQ(r.rows[1][1].AsDouble().value(), 15.0);  // (10+20)/2
}

TEST_F(AggregateTest, AggregatesOverEmptyInput) {
  auto r = Run("select count(*), sum(x), avg(x), min(x) from m"
               " where x > 1000");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt().value(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_TRUE(r.rows[0][2].is_null());
  EXPECT_TRUE(r.rows[0][3].is_null());
}

TEST_F(AggregateTest, GroupByEmptyInputYieldsNoRows) {
  auto r = Run("select grp, count(*) from m where x > 1000 group by grp");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(AggregateTest, CountExprSkipsNulls) {
  ASSERT_TRUE(db_.Execute("create table n (v int)").ok());
  ASSERT_TRUE(db_.Execute("insert into n values (1), (null), (3), (null)")
                  .ok());
  auto r = Run("select count(*), count(v), sum(v) from n");
  EXPECT_EQ(r.rows[0][0].AsInt().value(), 4);
  EXPECT_EQ(r.rows[0][1].AsInt().value(), 2);
  EXPECT_EQ(r.rows[0][2].AsInt().value(), 4);
}

TEST_F(AggregateTest, MinMaxOverStrings) {
  auto r = Run("select min(grp), max(grp) from m");
  EXPECT_EQ(r.rows[0][0].AsString().value(), "a");
  EXPECT_EQ(r.rows[0][1].AsString().value(), "b");
}

TEST_F(AggregateTest, AggregateOverJoin) {
  ASSERT_TRUE(db_.Execute("create table w (grp string, factor int)").ok());
  ASSERT_TRUE(db_.Execute("insert into w values ('a', 10), ('b', 100)").ok());
  auto r = Run(
      "select m.grp, sum(m.x * w.factor) from m, w"
      " where m.grp = w.grp group by m.grp");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsInt().value(), 60);     // (1+2+3)*10
  EXPECT_EQ(r.rows[1][1].AsInt().value(), 3000);   // (10+20)*100
}

TEST_F(AggregateTest, NestedAggregateRejected) {
  auto result = db_.Execute("select sum(x) + 1 from m");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnimplemented());
}

TEST_F(AggregateTest, StarWithAggregateRejected) {
  EXPECT_FALSE(db_.Execute("select * from m group by grp").ok());
}

TEST_F(AggregateTest, OrderByColumnName) {
  auto r = Run("select grp, x from m order by x desc");
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0][1].AsInt().value(), 20);
  EXPECT_EQ(r.rows[4][1].AsInt().value(), 1);
}

TEST_F(AggregateTest, OrderByPosition) {
  auto r = Run("select x, y from m order by 2 desc limit 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble().value(), 10.0);
  EXPECT_DOUBLE_EQ(r.rows[1][1].AsDouble().value(), 5.0);
}

TEST_F(AggregateTest, OrderByMultipleKeys) {
  auto r = Run("select grp, x from m order by grp desc, x asc");
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0][0].AsString().value(), "b");
  EXPECT_EQ(r.rows[0][1].AsInt().value(), 10);
  EXPECT_EQ(r.rows[2][0].AsString().value(), "a");
  EXPECT_EQ(r.rows[2][1].AsInt().value(), 1);
}

TEST_F(AggregateTest, OrderByAlias) {
  auto r = Run("select x * 2 as doubled from m order by doubled desc limit 1");
  EXPECT_EQ(r.rows[0][0].AsInt().value(), 40);
}

TEST_F(AggregateTest, OrderByQualifiedOutputColumn) {
  auto r = Run("select m.x from m order by x limit 1");
  EXPECT_EQ(r.rows[0][0].AsInt().value(), 1);
}

TEST_F(AggregateTest, OrderByValidation) {
  EXPECT_FALSE(db_.Execute("select x from m order by nosuch").ok());
  EXPECT_FALSE(db_.Execute("select x from m order by 5").ok());
  EXPECT_FALSE(db_.Execute("select x from m order by 0").ok());
  EXPECT_FALSE(db_.Execute("select x from m limit -1").ok());
}

TEST_F(AggregateTest, LimitTruncates) {
  EXPECT_EQ(Run("select x from m limit 3").rows.size(), 3u);
  EXPECT_EQ(Run("select x from m limit 0").rows.size(), 0u);
  EXPECT_EQ(Run("select x from m limit 99").rows.size(), 5u);
}

TEST_F(AggregateTest, GroupByOrderByAggregatePosition) {
  auto r = Run("select grp, sum(x) from m group by grp order by 2 desc");
  EXPECT_EQ(r.rows[0][0].AsString().value(), "b");
}

TEST_F(AggregateTest, NullsSortFirstAscending) {
  ASSERT_TRUE(db_.Execute("create table n (v int)").ok());
  ASSERT_TRUE(db_.Execute("insert into n values (2), (null), (1)").ok());
  auto r = Run("select v from n order by v");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_TRUE(r.rows[0][0].is_null());
  EXPECT_EQ(r.rows[1][0].AsInt().value(), 1);
}

}  // namespace
}  // namespace qbism::sql
