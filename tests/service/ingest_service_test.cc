// Online ingest through the query service: per-study cache
// invalidation at commit (the stale-cache regression), the
// commit-version guard on cache fills, offline/quarantine gating, and
// the ingest metrics.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "med/loader.h"
#include "med/schema.h"
#include "qbism/ingest.h"
#include "service/query_service.h"
#include "sql/database.h"
#include "storage/fault_plan.h"

namespace qbism::service {
namespace {

constexpr int kGridOrder = 3;
constexpr int kGridMaxLevel = 5;

sql::DatabaseOptions WalOptions() {
  sql::DatabaseOptions dbo;
  dbo.relational_pages = 1 << 10;
  dbo.long_field_pages = 1 << 11;
  dbo.buffer_pool_pages = 64;
  dbo.enable_wal = true;
  dbo.wal_pages = 1 << 10;
  return dbo;
}

struct IngestWorld {
  sql::Database db;
  std::unique_ptr<SpatialExtension> ext;
  std::unique_ptr<IngestManager> ingest;

  IngestWorld() : db(WalOptions()) {
    SpatialConfig config;
    config.grid = region::GridSpec{kGridOrder, kGridMaxLevel};
    ext = SpatialExtension::Install(&db, config).MoveValue();
    EXPECT_TRUE(med::BootstrapSchema(&db).ok());
    // The query path joins atlas and patient rows; ingest only brings
    // the study tables, so seed the reference data the way the bulk
    // loader would.
    double side = static_cast<double>(config.grid.SideLength());
    EXPECT_TRUE(db.Insert("atlas",
                          sql::Row{sql::Value::Int(1),
                                   sql::Value::String("Talairach"),
                                   sql::Value::Int(static_cast<int64_t>(side)),
                                   sql::Value::Double(0), sql::Value::Double(0),
                                   sql::Value::Double(0),
                                   sql::Value::Double(200.0 / side),
                                   sql::Value::Double(150.0 / side),
                                   sql::Value::Double(300.0 / side)})
                    .ok());
    for (int patient_id = 101; patient_id <= 110; ++patient_id) {
      EXPECT_TRUE(db.Insert("patient",
                            sql::Row{sql::Value::Int(patient_id),
                                     sql::Value::String("patient"),
                                     sql::Value::Int(40),
                                     sql::Value::String("F")})
                      .ok());
    }
    ingest = std::make_unique<IngestManager>(ext.get());
  }

  ServiceOptions Options(int workers) {
    ServiceOptions options;
    options.num_workers = workers;
    options.cost_model.sql_compile_seconds = 0.0;
    options.ingest = ingest.get();
    return options;
  }
};

med::StudyRecord MakeRecord(int study_id, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data(24 * 24 * 12);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  med::StudyRecord record;
  record.study_id = study_id;
  record.patient_id = 100 + study_id;
  record.date = "1993-07-01";
  record.modality = "PET";
  record.raw = warp::RawVolume::Create(24, 24, 12, std::move(data)).value();
  record.warp_seed = seed;
  record.band_width = 64;
  return record;
}

ServiceRequest BoxQuery(int study_id) {
  ServiceRequest request;
  request.spec.study_id = study_id;
  request.spec.box = geometry::Box3i{{4, 4, 4}, {27, 27, 27}};
  return request;
}

TEST(IngestServiceTest, IngestCommitInvalidatesStaleCachedResults) {
  IngestWorld world;
  QueryService service(world.ext.get(), world.Options(1));
  ASSERT_TRUE(service.RunIngest(MakeRecord(1, 11), /*replace=*/false).ok());

  ServiceRequest request = BoxQuery(1);
  const std::string key = request.spec.Describe();
  auto first = service.Execute(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->cache_hit);
  auto second = service.Execute(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->result.data.values(), first->result.data.values());

  // Replace the study: the committed ingest must evict the study's
  // cached results, so the next query recomputes against the new bytes
  // instead of serving the stale region.
  ASSERT_TRUE(service.RunIngest(MakeRecord(1, 99), /*replace=*/true).ok());
  EXPECT_FALSE(service.CacheContains(key));
  auto third = service.Execute(request);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->cache_hit);
  EXPECT_NE(third->result.data.values(), first->result.data.values());

  MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.ingests, 2u);
  EXPECT_EQ(metrics.ingest_failures, 0u);
  EXPECT_GT(metrics.cache_invalidations, 0u);
  EXPECT_EQ(service.cache_stats().invalidations, metrics.cache_invalidations);
}

TEST(IngestServiceTest, QuarantinedStudyIsRefusedNotServedStale) {
  IngestWorld world;
  QueryService service(world.ext.get(), world.Options(1));
  ASSERT_TRUE(service.RunIngest(MakeRecord(1, 11), /*replace=*/false).ok());
  ASSERT_TRUE(service.Execute(BoxQuery(1)).ok());

  // The replace's commit sync fails: the study's in-memory rows no
  // longer match its durable state, so it is quarantined.
  world.db.wal_device()->InstallFaultPlan(storage::FaultPlan::FailAtTransfer(
      0, storage::FaultDurability::kPersistent));
  ASSERT_FALSE(service.RunIngest(MakeRecord(1, 99), /*replace=*/true).ok());
  world.db.wal_device()->ClearFault();
  EXPECT_EQ(service.metrics().ingest_failures, 1u);

  // Every later query is refused outright — never a partial or stale
  // answer, and never a cache fill.
  auto refused = service.Execute(BoxQuery(1));
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsNotFound());
  EXPECT_FALSE(service.CacheContains(BoxQuery(1).spec.Describe()));
}

TEST(IngestServiceTest, FailedFreshIngestLeavesServiceClean) {
  IngestWorld world;
  QueryService service(world.ext.get(), world.Options(1));
  world.db.long_field_device()->InstallFaultPlan(
      storage::FaultPlan::FailAtTransfer(
          0, storage::FaultDurability::kPersistent));
  ASSERT_FALSE(service.RunIngest(MakeRecord(5, 55), /*replace=*/false).ok());
  world.db.long_field_device()->ClearFault();

  // A failed *fresh* ingest scrubs its tracks: the id is usable again.
  EXPECT_TRUE(world.ingest->IsVisible(5));
  ASSERT_TRUE(service.RunIngest(MakeRecord(5, 55), /*replace=*/false).ok());
  ASSERT_TRUE(service.Execute(BoxQuery(5)).ok());
  ASSERT_TRUE(world.db.lfm()->CheckPageAccounting().ok());
}

TEST(IngestServiceTest, RunIngestWithoutManagerIsRefused) {
  IngestWorld world;
  ServiceOptions options = world.Options(1);
  options.ingest = nullptr;
  QueryService service(world.ext.get(), options);
  Status status = service.RunIngest(MakeRecord(1, 11), /*replace=*/false);
  EXPECT_TRUE(status.IsFailedPrecondition());
}

}  // namespace
}  // namespace qbism::service
