// QueryService transient-fault recovery: retries absorb one-shot disk
// faults, persistent faults exhaust the budget and are counted as
// giveups, and a failed query's reply is never admitted to the shared
// result cache.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "med/loader.h"
#include "med/schema.h"
#include "service/query_service.h"
#include "storage/fault_plan.h"

namespace qbism::service {
namespace {

using storage::FaultDurability;
using storage::FaultPlan;

/// Shared loaded database; every test installs and clears its own fault
/// plan, and uses a private QueryService so metrics/cache start clean.
class FaultRecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sql::DatabaseOptions dbo;
    dbo.relational_pages = 1 << 12;
    dbo.long_field_pages = 1 << 12;
    db_ = new sql::Database(dbo);
    SpatialConfig config;
    config.grid = region::GridSpec{3, 5};  // 32^3: fast per-query I/O
    auto ext = SpatialExtension::Install(db_, config);
    ASSERT_TRUE(ext.ok());
    ext_ = ext.MoveValue().release();
    ASSERT_TRUE(med::BootstrapSchema(db_).ok());
    med::LoadOptions options;
    options.num_pet_studies = 1;
    options.num_mri_studies = 0;
    options.build_meshes = false;
    options.store_raw_volumes = false;
    auto dataset = med::PopulateDatabase(ext_, options);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    study_id_ = dataset->pet_study_ids[0];
  }

  static void TearDownTestSuite() {
    delete ext_;
    delete db_;
  }

  void TearDown() override {
    db_->long_field_device()->ClearFault();
    db_->relational_device()->ClearFault();
  }

  static ServiceOptions RetryOptions(int max_retries) {
    ServiceOptions options;
    options.num_workers = 1;
    options.max_retries = max_retries;
    options.retry_backoff_seconds = 0.0;  // tests need no real sleeping
    options.cost_model.sql_compile_seconds = 0.0;
    return options;
  }

  /// Box queries (never named structures): the atlas shapes live in
  /// 128^3 atlas coordinates and are empty on this tiny grid, while a
  /// box always reads real voxel pages. Distinct variants get distinct
  /// boxes and therefore distinct cache keys.
  static ServiceRequest Request(size_t variant = 0) {
    ServiceRequest request;
    request.spec.study_id = study_id_;
    int lo = static_cast<int>(variant % 8);
    request.spec.box = geometry::Box3i{{lo, 2, 2}, {lo + 16, 24, 24}};
    return request;
  }

  static sql::Database* db_;
  static SpatialExtension* ext_;
  static int study_id_;
};

sql::Database* FaultRecoveryTest::db_ = nullptr;
SpatialExtension* FaultRecoveryTest::ext_ = nullptr;
int FaultRecoveryTest::study_id_ = 0;

TEST_F(FaultRecoveryTest, TransientFaultIsAbsorbedByARetry) {
  QueryService service(ext_, RetryOptions(/*max_retries=*/2));
  db_->long_field_device()->InstallFaultPlan(FaultPlan::FailAtTransfer(0));

  auto reply = service.Execute(Request());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_GT(reply->result.result_voxels, 0u);

  MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.completed, 1u);
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_EQ(metrics.retries, 1u);  // exactly one re-execution
  EXPECT_EQ(metrics.giveups, 0u);
  // The recovered reply is cacheable like any success.
  EXPECT_TRUE(service.CacheContains(Request().spec.Describe()));
}

TEST_F(FaultRecoveryTest, PersistentFaultExhaustsTheRetryBudget) {
  QueryService service(ext_, RetryOptions(/*max_retries=*/2));
  db_->long_field_device()->InstallFaultPlan(
      FaultPlan::FailAtTransfer(0, FaultDurability::kPersistent));

  auto reply = service.Execute(Request());
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(reply.status().IsIOError());

  MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.completed, 0u);
  EXPECT_EQ(metrics.failed, 1u);
  EXPECT_EQ(metrics.retries, 2u);  // the full budget was spent
  EXPECT_EQ(metrics.giveups, 1u);
  // The failure must not have poisoned the shared cache.
  EXPECT_FALSE(service.CacheContains(Request().spec.Describe()));

  // The device recovers; the same service instance then serves (and
  // caches) the query normally.
  db_->long_field_device()->ClearFault();
  auto retry = service.Execute(Request());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE(service.CacheContains(Request().spec.Describe()));
  EXPECT_EQ(service.metrics().completed, 1u);
}

TEST_F(FaultRecoveryTest, ZeroRetriesFailsImmediately) {
  QueryService service(ext_, RetryOptions(/*max_retries=*/0));
  db_->long_field_device()->InstallFaultPlan(FaultPlan::FailAtTransfer(0));

  auto reply = service.Execute(Request());
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(reply.status().IsIOError());
  MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.retries, 0u);
  EXPECT_EQ(metrics.giveups, 1u);
  EXPECT_FALSE(service.CacheContains(Request().spec.Describe()));
}

TEST_F(FaultRecoveryTest, NonIoFailuresAreNotRetried) {
  QueryService service(ext_, RetryOptions(/*max_retries=*/3));
  ServiceRequest request = Request();
  request.spec.study_id = 999999;  // unknown study: a NotFound, not I/O

  auto reply = service.Execute(request);
  ASSERT_FALSE(reply.ok());
  EXPECT_FALSE(reply.status().IsIOError());
  MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.retries, 0u);  // the retry loop never engaged
  EXPECT_EQ(metrics.giveups, 0u);
  EXPECT_EQ(metrics.failed, 1u);
  EXPECT_FALSE(service.CacheContains(request.spec.Describe()));
}

TEST_F(FaultRecoveryTest, EveryKthFaultStreamIsSurvivable) {
  // A flaky device failing every 7th transfer, under a stream of
  // distinct queries (each misses the cache, so each really does I/O):
  // retries absorb every hit and the whole stream completes.
  QueryService service(ext_, RetryOptions(/*max_retries=*/3));
  db_->long_field_device()->InstallFaultPlan(FaultPlan::FailEveryKth(7));

  const size_t n = 8;  // distinct boxes, then a second lap of repeats
  uint64_t completed = 0;
  for (size_t i = 0; i < 2 * n; ++i) {
    if (service.Execute(Request(i % n)).ok()) ++completed;
  }
  db_->long_field_device()->ClearFault();
  MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(completed, 2 * n);
  EXPECT_EQ(metrics.completed, 2 * n);
  EXPECT_EQ(metrics.giveups, 0u);
  // Enough transfers flowed to trip the period at least once, and the
  // second lap was served from the cache (no I/O, no new faults).
  EXPECT_GT(metrics.retries, 0u);
  EXPECT_GE(metrics.cache_hits, n);
}

TEST_F(FaultRecoveryTest, MetricsJsonCarriesRetryCounters) {
  ServiceMetrics metrics;
  metrics.AddRetry();
  metrics.AddRetry();
  metrics.AddGiveup();
  std::string json = metrics.Snapshot().ToJson();
  EXPECT_NE(json.find("\"retries\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"giveups\":1"), std::string::npos) << json;
}

}  // namespace
}  // namespace qbism::service
