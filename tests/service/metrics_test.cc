// LatencyRecorder reservoir sampling: memory stays bounded at the
// configured capacity while count/mean/max remain exact, and the
// snapshot JSON carries the per-stage tracing summaries.

#include "service/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace qbism::service {
namespace {

TEST(LatencyRecorderTest, ExactUntilCapacity) {
  LatencyRecorder recorder(1024);
  for (int i = 1; i <= 100; ++i) recorder.Record(i * 1e-3);
  LatencySummary s = recorder.Summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean, 50.5e-3, 1e-9);
  EXPECT_NEAR(s.p50, 50.5e-3, 1e-3);
  EXPECT_NEAR(s.p95, 95e-3, 2e-3);
  EXPECT_DOUBLE_EQ(s.max, 100e-3);
  EXPECT_EQ(recorder.reservoir_size(), 100u);
}

TEST(LatencyRecorderTest, ReservoirCapsMemoryWithExactAggregates) {
  constexpr size_t kCapacity = 256;
  constexpr int kSamples = 50'000;
  LatencyRecorder recorder(kCapacity);
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    // Uniform ramp over [0, 1): percentiles are predictable.
    double sample = static_cast<double>(i % 1000) * 1e-3;
    sum += sample;
    recorder.Record(sample);
  }
  EXPECT_EQ(recorder.reservoir_size(), kCapacity);  // the cap held
  LatencySummary s = recorder.Summarize();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kSamples));  // exact
  EXPECT_NEAR(s.mean, sum / kSamples, 1e-12);           // exact
  EXPECT_DOUBLE_EQ(s.max, 0.999);                       // exact
  // Percentiles come from a 256-sample uniform reservoir: loose bounds.
  EXPECT_NEAR(s.p50, 0.5, 0.12);
  EXPECT_GT(s.p95, s.p50);
  EXPECT_LE(s.p99, s.max);
}

TEST(LatencyRecorderTest, DefaultCapacityBoundsUnboundedRecording) {
  LatencyRecorder recorder;
  for (int i = 0; i < 10'000; ++i) recorder.Record(1e-3);
  EXPECT_LE(recorder.reservoir_size(), LatencyRecorder::kDefaultCapacity);
  LatencySummary s = recorder.Summarize();
  EXPECT_EQ(s.count, 10'000u);
  EXPECT_NEAR(s.mean, 1e-3, 1e-12);
  EXPECT_DOUBLE_EQ(s.p50, 1e-3);
}

TEST(LatencyRecorderTest, ResetClearsEverything) {
  LatencyRecorder recorder(8);
  for (int i = 0; i < 100; ++i) recorder.Record(2.0);
  recorder.Reset();
  LatencySummary s = recorder.Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(recorder.reservoir_size(), 0u);
  recorder.Record(1.0);
  EXPECT_EQ(recorder.Summarize().count, 1u);
}

TEST(ServiceMetricsTest, EdgeRejectionCountersFlowIntoSnapshotAndJson) {
  ServiceMetrics metrics;
  metrics.AddUnauthorized();
  metrics.AddUnauthorized();
  metrics.AddQuotaRejected();
  metrics.AddSessionExpired();
  MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.unauthorized, 2u);
  EXPECT_EQ(snapshot.quota_rejected, 1u);
  EXPECT_EQ(snapshot.session_expired, 1u);
  std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"unauthorized\":2"), std::string::npos);
  EXPECT_NE(json.find("\"quota_rejected\":1"), std::string::npos);
  EXPECT_NE(json.find("\"session_expired\":1"), std::string::npos);
}

TEST(MetricsSnapshotTest, ToJsonOmitsStagesWhenUntraced) {
  MetricsSnapshot snapshot;
  std::string json = snapshot.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find("\"stages\""), std::string::npos);
}

TEST(MetricsSnapshotTest, ToJsonEmbedsStageSummaries) {
  MetricsSnapshot snapshot;
  obs::StageSummary io;
  io.stage = obs::Stage::kIo;
  io.count = 42;
  io.total_seconds = 1.5;
  io.pages = 640;
  snapshot.stages.push_back(io);
  std::string json = snapshot.ToJson();
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"stages\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"io\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":42"), std::string::npos);
  EXPECT_NE(json.find("\"pages\":640"), std::string::npos);
}

}  // namespace
}  // namespace qbism::service
