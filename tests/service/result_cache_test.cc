#include "service/result_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "region/region.h"

namespace qbism::service {
namespace {

/// A DATA_REGION of `voxels` voxels all holding `fill`, sized so the
/// cache's byte accounting scales with `voxels`.
std::shared_ptr<const volume::DataRegion> MakeData(uint64_t voxels,
                                                   uint8_t fill) {
  region::GridSpec grid{3, 7};  // 128^3: room for any run length here
  auto r = region::Region::FromRuns(grid, curve::CurveKind::kHilbert,
                                    {{0, voxels - 1}});
  EXPECT_TRUE(r.ok());
  return std::make_shared<const volume::DataRegion>(
      r.MoveValue(), std::vector<uint8_t>(voxels, fill));
}

TEST(ResultCacheTest, DisabledCacheNeverHitsAndNeverStores) {
  ResultCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Put("a", MakeData(10, 1));
  EXPECT_EQ(cache.Get("a"), nullptr);
  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);  // disabled probes are not even misses
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(ResultCacheTest, HitReturnsTheStoredValueAndCounts) {
  ResultCache cache(4);
  EXPECT_EQ(cache.Get("a"), nullptr);  // miss on empty
  auto value = MakeData(100, 7);
  cache.Put("a", value);
  auto hit = cache.Get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), value.get());  // shared, not copied
  EXPECT_EQ(hit->VoxelCount(), 100u);
  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedEntry) {
  ResultCache cache(2);
  cache.Put("a", MakeData(10, 1));
  cache.Put("b", MakeData(10, 2));
  ASSERT_NE(cache.Get("a"), nullptr);  // promote "a"; "b" is now LRU
  cache.Put("c", MakeData(10, 3));     // over capacity: evict "b"
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ResultCacheTest, ByteBudgetEvictsUntilItFits) {
  uint64_t unit = MakeData(1000, 1)->ApproxSizeBytes();
  ResultCache cache(100, 2 * unit + unit / 2);  // fits two, not three
  cache.Put("a", MakeData(1000, 1));
  cache.Put("b", MakeData(1000, 2));
  cache.Put("c", MakeData(1000, 3));
  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(cache.Get("a"), nullptr);  // oldest paid for "c"
  EXPECT_NE(cache.Get("c"), nullptr);
}

TEST(ResultCacheTest, OversizedValueIsNotAdmitted) {
  uint64_t unit = MakeData(1000, 1)->ApproxSizeBytes();
  ResultCache cache(100, unit / 2);
  cache.Put("big", MakeData(1000, 1));
  EXPECT_EQ(cache.Get("big"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);  // nothing was displaced for it
}

TEST(ResultCacheTest, PutRefreshesAnExistingKeyInPlace) {
  ResultCache cache(4);
  cache.Put("a", MakeData(10, 1));
  cache.Put("a", MakeData(20, 9));  // two workers raced on the same miss
  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.insertions, 1u);  // refresh, not a second insert
  auto hit = cache.Get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->VoxelCount(), 20u);
}

TEST(ResultCacheTest, EvictionDoesNotInvalidateHandedOutValues) {
  ResultCache cache(1);
  cache.Put("a", MakeData(50, 4));
  auto held = cache.Get("a");
  cache.Put("b", MakeData(50, 5));  // evicts "a"
  EXPECT_EQ(cache.Get("a"), nullptr);
  ASSERT_NE(held, nullptr);  // the shared_ptr keeps the value alive
  EXPECT_EQ(held->VoxelCount(), 50u);
  EXPECT_EQ(held->values()[0], 4);
}

TEST(ResultCacheTest, ClearEmptiesButKeepsCounters) {
  ResultCache cache(4);
  cache.Put("a", MakeData(10, 1));
  ASSERT_NE(cache.Get("a"), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Get("a"), nullptr);
  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);  // history survives Clear
}

TEST(ResultCacheTest, InvalidatePrefixDropsExactlyTheMatchingKeys) {
  ResultCache cache(8);
  cache.Put("study 5 atlas A box", MakeData(10, 1));
  cache.Put("study 5 atlas B structure x", MakeData(10, 2));
  cache.Put("study 53 atlas A box", MakeData(10, 3));  // NOT study 5
  cache.Put("study 6 atlas A box", MakeData(10, 4));
  uint64_t bytes_before = cache.stats().bytes;

  // The ingest path's key shape: "study <id> " with a trailing space,
  // so study 5 never sweeps study 53.
  EXPECT_EQ(cache.InvalidatePrefix("study 5 "), 2u);
  EXPECT_FALSE(cache.Contains("study 5 atlas A box"));
  EXPECT_FALSE(cache.Contains("study 5 atlas B structure x"));
  EXPECT_TRUE(cache.Contains("study 53 atlas A box"));
  EXPECT_TRUE(cache.Contains("study 6 atlas A box"));

  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 2u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LT(stats.bytes, bytes_before);  // byte accounting followed

  // No matches: a no-op that counts nothing.
  EXPECT_EQ(cache.InvalidatePrefix("study 999 "), 0u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  // Disabled caches are trivially invalidation-free.
  ResultCache disabled(0);
  EXPECT_EQ(disabled.InvalidatePrefix("study 5 "), 0u);
}

TEST(ResultCacheTest, ConcurrentGetPutStaysConsistent) {
  ResultCache cache(8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string key = "k" + std::to_string((t * 7 + i) % 16);
        if (auto hit = cache.Get(key)) {
          // Values must stay well-formed while other threads evict.
          EXPECT_EQ(hit->values().size(), hit->VoxelCount());
        } else {
          cache.Put(key, MakeData(8 + (t * 7 + i) % 16, uint8_t(t)));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ResultCacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, 8u);
  EXPECT_EQ(stats.hits + stats.misses,
            uint64_t{kThreads} * kOpsPerThread);
}

}  // namespace
}  // namespace qbism::service
