#include "service/query_service.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "med/loader.h"
#include "med/schema.h"
#include "service/workload.h"

namespace qbism::service {
namespace {

/// One shared loaded database for all service tests; the service treats
/// it as read-only, so suites can share it the way the MedicalServer
/// tests do.
class QueryServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new sql::Database();
    auto ext = SpatialExtension::Install(db_, SpatialConfig{});
    ASSERT_TRUE(ext.ok());
    ext_ = ext.MoveValue().release();
    ASSERT_TRUE(med::BootstrapSchema(db_).ok());
    med::LoadOptions options;
    options.num_pet_studies = 3;
    options.num_mri_studies = 0;
    options.build_meshes = false;
    auto dataset = med::PopulateDatabase(ext_, options);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    study_ids_ = new std::vector<int>(dataset->pet_study_ids);
    structures_ = new std::vector<std::string>(dataset->structure_names);
  }

  static void TearDownTestSuite() {
    delete structures_;
    delete study_ids_;
    delete ext_;
    delete db_;
  }

  static ServiceOptions FastOptions(int workers) {
    ServiceOptions options;
    options.num_workers = workers;
    options.cost_model.sql_compile_seconds = 0.0;  // modeled, not waited
    return options;
  }

  static sql::Database* db_;
  static SpatialExtension* ext_;
  static std::vector<int>* study_ids_;
  static std::vector<std::string>* structures_;
};

sql::Database* QueryServiceTest::db_ = nullptr;
SpatialExtension* QueryServiceTest::ext_ = nullptr;
std::vector<int>* QueryServiceTest::study_ids_ = nullptr;
std::vector<std::string>* QueryServiceTest::structures_ = nullptr;

TEST_F(QueryServiceTest, ConcurrentMixedWorkloadMatchesSerialExecution) {
  auto gen = WorkloadGenerator::Create(ext_, *study_ids_, *structures_,
                                       WorkloadMix{}, /*seed=*/2026);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  std::vector<QuerySpec> specs;
  for (int i = 0; i < 24; ++i) specs.push_back(gen->Next());

  // Serial ground truth from a plain single-threaded MedicalServer.
  MedicalServer serial(ext_, net::NetworkCostModel{}, ServerCostModel{});
  std::map<std::string, StudyQueryResult> expected;
  for (const QuerySpec& spec : specs) {
    auto result = serial.RunStudyQuery(spec, /*render=*/false);
    ASSERT_TRUE(result.ok()) << spec.Describe() << ": "
                             << result.status().ToString();
    expected.emplace(spec.Describe(), result.MoveValue());
  }

  QueryService service(ext_, FastOptions(4));
  std::vector<Ticket> tickets;
  for (const QuerySpec& spec : specs) {
    ServiceRequest request;
    request.spec = spec;
    auto ticket = service.Submit(request);
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    tickets.push_back(ticket.MoveValue());
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    auto reply = tickets[i].Wait();
    ASSERT_TRUE(reply.ok()) << specs[i].Describe() << ": "
                            << reply.status().ToString();
    const StudyQueryResult& truth = expected.at(specs[i].Describe());
    // Bit-identical payload regardless of worker, ordering, or whether
    // the shared cache served it.
    EXPECT_EQ(reply->result.data.values(), truth.data.values());
    EXPECT_EQ(reply->result.result_voxels, truth.result_voxels);
    EXPECT_EQ(reply->result.result_runs, truth.result_runs);
    EXPECT_GE(reply->worker_id, 0);
    EXPECT_LT(reply->worker_id, 4);
    if (!reply->cache_hit) {
      // A fresh execution must also reproduce the serial I/O footprint.
      EXPECT_EQ(reply->result.timing.lfm_pages, truth.timing.lfm_pages);
      EXPECT_EQ(reply->result.timing.network_messages,
                truth.timing.network_messages);
    }
  }
  MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.submitted, specs.size());
  EXPECT_EQ(metrics.completed, specs.size());
  EXPECT_EQ(metrics.rejected_queue_full, 0u);
  EXPECT_EQ(metrics.cache_hits + metrics.cache_misses, specs.size());
  EXPECT_EQ(metrics.latency.count, specs.size());
  service.Shutdown();
}

TEST_F(QueryServiceTest, CacheHitPathReturnsIdenticalData) {
  QueryService service(ext_, FastOptions(1));
  ServiceRequest request;
  request.spec.study_id = (*study_ids_)[0];
  request.spec.structure_name = (*structures_)[0];

  auto first = service.Execute(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->cache_hit);
  EXPECT_GT(first->result.timing.lfm_pages, 0u);

  auto second = service.Execute(request);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->cache_hit);
  // Same voxels, but no database or network work the second time.
  EXPECT_EQ(second->result.data.values(), first->result.data.values());
  EXPECT_EQ(second->result.result_voxels, first->result.result_voxels);
  EXPECT_EQ(second->result.timing.lfm_pages, 0u);
  EXPECT_EQ(second->result.timing.network_messages, 0u);
  EXPECT_NE(second->result.data_sql.find("cache"), std::string::npos);

  ResultCacheStats cache = service.cache_stats();
  EXPECT_EQ(cache.hits, 1u);
  EXPECT_EQ(cache.misses, 1u);
  MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.cache_hits, 1u);
  EXPECT_EQ(metrics.completed, 2u);
}

TEST_F(QueryServiceTest, CacheOffAlwaysExecutes) {
  ServiceOptions options = FastOptions(1);
  options.cache_entries = 0;
  QueryService service(ext_, options);
  ServiceRequest request;
  request.spec.study_id = (*study_ids_)[0];
  request.spec.structure_name = (*structures_)[0];
  for (int i = 0; i < 2; ++i) {
    auto reply = service.Execute(request);
    ASSERT_TRUE(reply.ok());
    EXPECT_FALSE(reply->cache_hit);
    EXPECT_GT(reply->result.timing.lfm_pages, 0u);
  }
  EXPECT_EQ(service.cache_stats().hits, 0u);
  EXPECT_EQ(service.metrics().cache_misses, 0u);  // cache-off: not counted
}

TEST_F(QueryServiceTest, FullQueueRejectsWithResourceExhausted) {
  // Zero workers: nothing drains, so admission control is deterministic.
  ServiceOptions options = FastOptions(0);
  options.queue_capacity = 2;
  QueryService service(ext_, options);
  ServiceRequest request;
  request.spec.study_id = (*study_ids_)[0];

  auto first = service.Submit(request);
  auto second = service.Submit(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(service.queue_depth(), 2u);

  auto third = service.Submit(request);
  ASSERT_FALSE(third.ok());
  EXPECT_TRUE(third.status().IsResourceExhausted())
      << third.status().ToString();
  EXPECT_EQ(service.metrics().rejected_queue_full, 1u);
  EXPECT_FALSE(first->Done());

  // Shutdown fails the queued work fast rather than abandoning callers.
  service.Shutdown();
  auto reply = first->Wait();
  EXPECT_TRUE(reply.status().IsCancelled()) << reply.status().ToString();
  EXPECT_TRUE(second->Wait().status().IsCancelled());
  EXPECT_EQ(service.metrics().cancelled, 2u);

  // And post-shutdown submissions are turned away immediately.
  EXPECT_TRUE(service.Submit(request).status().IsCancelled());
}

TEST_F(QueryServiceTest, ExpiredDeadlineSkipsExecution) {
  QueryService service(ext_, FastOptions(1));
  ServiceRequest request;
  request.spec.study_id = (*study_ids_)[0];
  // A deadline below the clock tick expires at admission time, so the
  // worker must refuse it at pickup without touching the database.
  request.deadline_seconds = 1e-12;
  auto reply = service.Execute(request);
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(reply.status().IsDeadlineExceeded())
      << reply.status().ToString();
  MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.deadline_expired, 1u);
  EXPECT_EQ(metrics.completed, 0u);
  EXPECT_EQ(metrics.cache_misses, 0u);  // never reached the cache probe
}

TEST_F(QueryServiceTest, CancelledTicketsAreReportedCancelled) {
  QueryService service(ext_, FastOptions(1));
  // A full-study blocker occupies the lone worker while we cancel the
  // queue behind it.
  ServiceRequest blocker;
  blocker.spec.study_id = (*study_ids_)[0];
  auto blocker_ticket = service.Submit(blocker);
  ASSERT_TRUE(blocker_ticket.ok());

  ServiceRequest request;
  request.spec.study_id = (*study_ids_)[0];
  request.spec.intensity_range = {224, 255};
  std::vector<Ticket> tickets;
  for (int i = 0; i < 5; ++i) {
    auto ticket = service.Submit(request);
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(ticket.MoveValue());
  }
  for (Ticket& ticket : tickets) ticket.Cancel();

  EXPECT_TRUE(blocker_ticket->Wait().ok());
  uint64_t cancelled = 0;
  for (Ticket& ticket : tickets) {
    auto reply = ticket.Wait();
    if (reply.ok()) continue;  // won the race to a worker before Cancel
    EXPECT_TRUE(reply.status().IsCancelled()) << reply.status().ToString();
    ++cancelled;
  }
  EXPECT_GE(cancelled, 1u);  // the blocker pinned the worker long enough
  MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.cancelled, cancelled);
  EXPECT_EQ(metrics.completed + metrics.cancelled, 6u);
  service.Shutdown();
}

TEST_F(QueryServiceTest, ShutdownIsIdempotentAndTicketsStayValid) {
  QueryService service(ext_, FastOptions(2));
  ServiceRequest request;
  request.spec.study_id = (*study_ids_)[0];
  request.spec.intensity_range = {224, 255};
  auto reply = service.Execute(request);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  service.Shutdown();
  service.Shutdown();  // second call is a no-op
  EXPECT_EQ(service.metrics().completed, 1u);
  EXPECT_FALSE(Ticket{}.Valid());
  EXPECT_TRUE(Ticket{}.Wait().status().IsInvalidArgument());
}

TEST_F(QueryServiceTest, WorkloadGeneratorIsDeterministicAndWellFormed) {
  auto a = WorkloadGenerator::Create(ext_, *study_ids_, *structures_,
                                     WorkloadMix{}, 7);
  auto b = WorkloadGenerator::Create(ext_, *study_ids_, *structures_,
                                     WorkloadMix{}, 7);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->DistinctSpecs(), 0u);
  MedicalServer probe(ext_, net::NetworkCostModel{}, ServerCostModel{});
  for (int i = 0; i < 40; ++i) {
    QuerySpec sa = a->Next();
    QuerySpec sb = b->Next();
    EXPECT_EQ(sa.Describe(), sb.Describe());  // same seed, same stream
    auto result = probe.RunStudyQuery(sa, /*render=*/false);
    EXPECT_TRUE(result.ok()) << sa.Describe() << ": "
                             << result.status().ToString();
  }
  auto c = WorkloadGenerator::Create(ext_, {}, *structures_, WorkloadMix{}, 7);
  EXPECT_TRUE(c.status().IsInvalidArgument());
}

}  // namespace
}  // namespace qbism::service
