#include <gtest/gtest.h>

#include "volume/volume.h"

namespace qbism::volume {
namespace {

using curve::CurveKind;
using geometry::Vec3i;
using region::GridSpec;
using region::Region;

const GridSpec kGrid{3, 4};

TEST(BandingTest, BandRegionMatchesPredicate) {
  Volume v = Volume::FromFunction(
      kGrid, CurveKind::kHilbert, [](const Vec3i& p) {
        return static_cast<uint8_t>((p.x * 16 + p.y) % 256);
      });
  Region band = v.BandRegion(32, 63);
  for (int32_t z = 0; z < 16; ++z) {
    for (int32_t y = 0; y < 16; ++y) {
      for (int32_t x = 0; x < 16; ++x) {
        uint8_t value = v.ValueAt({x, y, z}).value();
        EXPECT_EQ(band.ContainsPoint({x, y, z}), value >= 32 && value <= 63);
      }
    }
  }
}

TEST(BandingTest, UniformBandsPartitionTheGrid) {
  // The paper bands each study with 8 uniform intervals of width 32
  // covering 0-255; the bands must partition the volume exactly.
  Volume v = Volume::FromFunction(
      kGrid, CurveKind::kHilbert, [](const Vec3i& p) {
        return static_cast<uint8_t>((p.x * 31 + p.y * 7 + p.z * 3) % 256);
      });
  std::vector<Region> bands = v.UniformBands(32);
  ASSERT_EQ(bands.size(), 8u);
  uint64_t total = 0;
  for (const Region& band : bands) total += band.VoxelCount();
  EXPECT_EQ(total, kGrid.NumCells());
  // Pairwise disjoint.
  for (size_t i = 0; i < bands.size(); ++i) {
    for (size_t j = i + 1; j < bands.size(); ++j) {
      EXPECT_TRUE(bands[i].IntersectWith(bands[j]).MoveValue().Empty());
    }
  }
  // Their union is the full grid.
  Region u(kGrid, CurveKind::kHilbert);
  for (const Region& band : bands) u = u.UnionWith(band).MoveValue();
  EXPECT_EQ(u, Region::Full(kGrid, CurveKind::kHilbert));
}

TEST(BandingTest, ConstantVolumeHasOneNonEmptyBand) {
  Volume v = Volume::FromFunction(
      kGrid, CurveKind::kHilbert,
      [](const Vec3i&) { return static_cast<uint8_t>(100); });
  std::vector<Region> bands = v.UniformBands(32);
  // 100 falls in band 96-127 (index 3).
  for (size_t i = 0; i < bands.size(); ++i) {
    if (i == 3) {
      EXPECT_EQ(bands[i].VoxelCount(), kGrid.NumCells());
      EXPECT_EQ(bands[i].RunCount(), 1u);
    } else {
      EXPECT_TRUE(bands[i].Empty());
    }
  }
}

TEST(BandingTest, BandEdgeValuesInclusive) {
  Volume v = Volume::FromFunction(
      kGrid, CurveKind::kHilbert, [](const Vec3i& p) {
        if (p.x == 0) return static_cast<uint8_t>(32);
        if (p.x == 1) return static_cast<uint8_t>(63);
        return static_cast<uint8_t>(0);
      });
  Region band = v.BandRegion(32, 63);
  EXPECT_TRUE(band.ContainsPoint({0, 5, 5}));
  EXPECT_TRUE(band.ContainsPoint({1, 5, 5}));
  EXPECT_FALSE(band.ContainsPoint({2, 5, 5}));
}

TEST(BandingTest, FullRangeBandIsFullGrid) {
  Volume v = Volume::FromFunction(
      kGrid, CurveKind::kHilbert, [](const Vec3i& p) {
        return static_cast<uint8_t>((p.x + p.y + p.z) % 256);
      });
  EXPECT_EQ(v.BandRegion(0, 255), Region::Full(kGrid, CurveKind::kHilbert));
}

TEST(BandingTest, WorksOnZOrderedVolumes) {
  Volume v = Volume::FromFunction(
      kGrid, CurveKind::kZ, [](const Vec3i& p) {
        return static_cast<uint8_t>(p.z >= 8 ? 200 : 10);
      });
  Region band = v.BandRegion(128, 255);
  EXPECT_EQ(band.curve_kind(), CurveKind::kZ);
  EXPECT_EQ(band.VoxelCount(), kGrid.NumCells() / 2);
  EXPECT_TRUE(band.ContainsPoint({0, 0, 8}));
  EXPECT_FALSE(band.ContainsPoint({0, 0, 7}));
}

}  // namespace
}  // namespace qbism::volume
