#include "volume/vector_volume.h"

#include <cmath>

#include "volume/volume.h"

#include <gtest/gtest.h>

namespace qbism::volume {
namespace {

using curve::CurveKind;
using geometry::Vec3i;
using region::GridSpec;
using region::Region;

const GridSpec kGrid{3, 4};  // 16^3

void GradientField(const Vec3i& p, uint8_t* out) {
  out[0] = static_cast<uint8_t>(p.x * 10);
  out[1] = static_cast<uint8_t>(p.y * 10);
  out[2] = static_cast<uint8_t>(p.z * 10);
}

TEST(VectorVolumeTest, FromFunctionAndValueAt) {
  VectorVolume v =
      VectorVolume::FromFunction(kGrid, CurveKind::kHilbert, 3, GradientField);
  EXPECT_EQ(v.components(), 3);
  EXPECT_EQ(v.data().size(), kGrid.NumCells() * 3);
  auto value = v.ValueAt({3, 7, 11}).MoveValue();
  ASSERT_EQ(value.size(), 3u);
  EXPECT_EQ(value[0], 30);
  EXPECT_EQ(value[1], 70);
  EXPECT_EQ(value[2], 110);
  EXPECT_FALSE(v.ValueAt({16, 0, 0}).ok());
}

TEST(VectorVolumeTest, MagnitudeAt) {
  VectorVolume v =
      VectorVolume::FromFunction(kGrid, CurveKind::kHilbert, 2,
                                 [](const Vec3i&, uint8_t* out) {
                                   out[0] = 3;
                                   out[1] = 4;
                                 });
  EXPECT_DOUBLE_EQ(v.MagnitudeAt({5, 5, 5}).value(), 5.0);
}

TEST(VectorVolumeTest, FromCurveOrderedDataValidation) {
  EXPECT_FALSE(VectorVolume::FromCurveOrderedData(
                   kGrid, CurveKind::kHilbert, 3, std::vector<uint8_t>(10))
                   .ok());
  EXPECT_FALSE(VectorVolume::FromCurveOrderedData(
                   kGrid, CurveKind::kHilbert, 0,
                   std::vector<uint8_t>(kGrid.NumCells()))
                   .ok());
  EXPECT_TRUE(VectorVolume::FromCurveOrderedData(
                  kGrid, CurveKind::kHilbert, 2,
                  std::vector<uint8_t>(kGrid.NumCells() * 2))
                  .ok());
}

TEST(VectorVolumeTest, ExtractMatchesPointwise) {
  VectorVolume v =
      VectorVolume::FromFunction(kGrid, CurveKind::kHilbert, 3, GradientField);
  Region r = Region::FromBox(kGrid, CurveKind::kHilbert,
                             {{2, 2, 2}, {5, 5, 5}});
  auto extracted = v.Extract(r).MoveValue();
  ASSERT_EQ(extracted.size(), r.VoxelCount() * 3);
  // Walk the region in curve order and compare components.
  size_t cursor = 0;
  for (const auto& p : r.ToPoints()) {
    auto expected = v.ValueAt(p).MoveValue();
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(extracted[cursor++], expected[static_cast<size_t>(c)]);
    }
  }
  // Wrong-curve region rejected.
  Region z(kGrid, CurveKind::kZ);
  EXPECT_FALSE(v.Extract(z).ok());
}

TEST(VectorVolumeTest, MagnitudeBandRegion) {
  // Magnitude grows with x: thresholding selects a half space.
  VectorVolume v = VectorVolume::FromFunction(
      kGrid, CurveKind::kHilbert, 2, [](const Vec3i& p, uint8_t* out) {
        out[0] = static_cast<uint8_t>(p.x * 10);
        out[1] = 0;
      });
  Region strong = v.MagnitudeBandRegion(80.0, 1000.0);  // x >= 8
  EXPECT_EQ(strong.VoxelCount(), kGrid.NumCells() / 2);
  EXPECT_TRUE(strong.ContainsPoint({8, 0, 0}));
  EXPECT_FALSE(strong.ContainsPoint({7, 0, 0}));
  // Bands partition by construction.
  Region weak = v.MagnitudeBandRegion(0.0, 79.999);
  EXPECT_EQ(strong.VoxelCount() + weak.VoxelCount(), kGrid.NumCells());
}

TEST(VectorVolumeTest, ScalarCaseDegeneratesToVolume) {
  // m = 1 must agree with the scalar Volume type voxel-for-voxel.
  auto scalar_field = [](const Vec3i& p) {
    return static_cast<uint8_t>((p.x * 5 + p.y * 3 + p.z) % 256);
  };
  VectorVolume vec = VectorVolume::FromFunction(
      kGrid, CurveKind::kHilbert, 1, [&](const Vec3i& p, uint8_t* out) {
        out[0] = scalar_field(p);
      });
  Volume scalar = Volume::FromFunction(kGrid, CurveKind::kHilbert,
                                       scalar_field);
  EXPECT_EQ(vec.data(), scalar.data());
}

}  // namespace
}  // namespace qbism::volume
