#include "volume/volume.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qbism::volume {
namespace {

using curve::CurveKind;
using geometry::Vec3i;
using region::GridSpec;
using region::Region;

const GridSpec kGrid{3, 4};  // 16^3

uint8_t TestField(const Vec3i& p) {
  return static_cast<uint8_t>((p.x * 7 + p.y * 13 + p.z * 29) % 256);
}

TEST(VolumeTest, FromFunctionAndValueAt) {
  Volume v = Volume::FromFunction(kGrid, CurveKind::kHilbert, TestField);
  EXPECT_EQ(v.data().size(), kGrid.NumCells());
  for (int32_t z = 0; z < 16; z += 3) {
    for (int32_t y = 0; y < 16; y += 3) {
      for (int32_t x = 0; x < 16; x += 3) {
        EXPECT_EQ(v.ValueAt({x, y, z}).value(), TestField({x, y, z}));
      }
    }
  }
}

TEST(VolumeTest, ValueAtOutsideGridFails) {
  Volume v = Volume::FromFunction(kGrid, CurveKind::kHilbert, TestField);
  EXPECT_FALSE(v.ValueAt({16, 0, 0}).ok());
  EXPECT_FALSE(v.ValueAt({0, -1, 0}).ok());
}

TEST(VolumeTest, ScanlineRoundTrip) {
  Volume v = Volume::FromFunction(kGrid, CurveKind::kHilbert, TestField);
  std::vector<uint8_t> scanline = v.ToScanline();
  // Scanline order: x fastest.
  EXPECT_EQ(scanline[0], TestField({0, 0, 0}));
  EXPECT_EQ(scanline[1], TestField({1, 0, 0}));
  EXPECT_EQ(scanline[16], TestField({0, 1, 0}));
  EXPECT_EQ(scanline[16 * 16], TestField({0, 0, 1}));
  auto back = Volume::FromScanlineData(kGrid, CurveKind::kHilbert, scanline);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->data(), v.data());
}

TEST(VolumeTest, WrongSizeRejected) {
  EXPECT_FALSE(Volume::FromCurveOrderedData(kGrid, CurveKind::kHilbert,
                                            std::vector<uint8_t>(5))
                   .ok());
  EXPECT_FALSE(Volume::FromScanlineData(kGrid, CurveKind::kHilbert,
                                        std::vector<uint8_t>(5))
                   .ok());
  GridSpec flat{2, 4};
  EXPECT_FALSE(Volume::FromCurveOrderedData(
                   flat, CurveKind::kHilbert,
                   std::vector<uint8_t>(flat.NumCells()))
                   .ok());
}

TEST(VolumeTest, CurveConversionPreservesField) {
  Volume h = Volume::FromFunction(kGrid, CurveKind::kHilbert, TestField);
  Volume z = h.ConvertTo(CurveKind::kZ);
  EXPECT_EQ(z.curve_kind(), CurveKind::kZ);
  for (int32_t zc = 0; zc < 16; zc += 5) {
    for (int32_t y = 0; y < 16; y += 5) {
      for (int32_t x = 0; x < 16; x += 5) {
        EXPECT_EQ(z.ValueAt({x, y, zc}).value(), TestField({x, y, zc}));
      }
    }
  }
  // Data layout differs even though the field is the same.
  EXPECT_NE(z.data(), h.data());
}

TEST(VolumeTest, ExtractMatchesPointwise) {
  Volume v = Volume::FromFunction(kGrid, CurveKind::kHilbert, TestField);
  geometry::Ellipsoid blob({8, 8, 8}, {5, 4, 3});
  Region r = Region::FromShape(kGrid, CurveKind::kHilbert, blob);
  DataRegion dr = v.Extract(r).MoveValue();
  EXPECT_EQ(dr.VoxelCount(), r.VoxelCount());
  for (const Vec3i& p : r.ToPoints()) {
    EXPECT_EQ(dr.ValueAt(p).value(), TestField(p));
  }
}

TEST(VolumeTest, ExtractRejectsMismatchedRegion) {
  Volume v = Volume::FromFunction(kGrid, CurveKind::kHilbert, TestField);
  Region z_region(kGrid, CurveKind::kZ);
  EXPECT_FALSE(v.Extract(z_region).ok());
  Region other_grid(GridSpec{3, 5}, CurveKind::kHilbert);
  EXPECT_FALSE(v.Extract(other_grid).ok());
}

TEST(VolumeTest, ExtractEmptyRegion) {
  Volume v = Volume::FromFunction(kGrid, CurveKind::kHilbert, TestField);
  DataRegion dr =
      v.Extract(Region(kGrid, CurveKind::kHilbert)).MoveValue();
  EXPECT_EQ(dr.VoxelCount(), 0u);
  EXPECT_EQ(dr.MeanIntensity(), 0.0);
}

TEST(DataRegionTest, ToDenseVolumeRestoresInside) {
  Volume v = Volume::FromFunction(kGrid, CurveKind::kHilbert, TestField);
  geometry::Ellipsoid blob({8, 8, 8}, {4, 4, 4});
  Region r = Region::FromShape(kGrid, CurveKind::kHilbert, blob);
  DataRegion dr = v.Extract(r).MoveValue();
  Volume dense = dr.ToDenseVolume(0);
  for (int32_t z = 0; z < 16; ++z) {
    for (int32_t y = 0; y < 16; ++y) {
      for (int32_t x = 0; x < 16; ++x) {
        Vec3i p{x, y, z};
        uint8_t expected = r.ContainsPoint(p) ? TestField(p) : 0;
        EXPECT_EQ(dense.ValueAt(p).value(), expected);
      }
    }
  }
}

TEST(DataRegionTest, ValueAtOutsideRegionFails) {
  Volume v = Volume::FromFunction(kGrid, CurveKind::kHilbert, TestField);
  Region r = region::Region::FromBox(kGrid, CurveKind::kHilbert,
                                     {{0, 0, 0}, {3, 3, 3}});
  DataRegion dr = v.Extract(r).MoveValue();
  EXPECT_TRUE(dr.ValueAt({2, 2, 2}).ok());
  EXPECT_FALSE(dr.ValueAt({10, 10, 10}).ok());
}

TEST(DataRegionTest, MeanIntensity) {
  Volume v = Volume::FromFunction(
      kGrid, CurveKind::kHilbert,
      [](const Vec3i& p) { return static_cast<uint8_t>(p.x < 8 ? 10 : 30); });
  Region all = Region::Full(kGrid, CurveKind::kHilbert);
  DataRegion dr = v.Extract(all).MoveValue();
  EXPECT_NEAR(dr.MeanIntensity(), 20.0, 1e-9);
}

TEST(AverageExtractTest, AveragesVoxelwise) {
  Volume a = Volume::FromFunction(
      kGrid, CurveKind::kHilbert,
      [](const Vec3i&) { return static_cast<uint8_t>(10); });
  Volume b = Volume::FromFunction(
      kGrid, CurveKind::kHilbert,
      [](const Vec3i&) { return static_cast<uint8_t>(30); });
  Region r = region::Region::FromBox(kGrid, CurveKind::kHilbert,
                                     {{0, 0, 0}, {7, 7, 7}});
  DataRegion avg = AverageExtract({&a, &b}, r).MoveValue();
  EXPECT_EQ(avg.VoxelCount(), 512u);
  for (uint8_t value : avg.values()) EXPECT_EQ(value, 20);
}

TEST(AverageExtractTest, RejectsEmptyInput) {
  Region r(kGrid, CurveKind::kHilbert);
  EXPECT_FALSE(AverageExtract({}, r).ok());
}

TEST(VolumeTest, HistogramCountsEveryVoxel) {
  Volume v = Volume::FromFunction(kGrid, CurveKind::kHilbert, TestField);
  auto h = v.Histogram();
  uint64_t total = 0;
  for (uint64_t count : h) total += count;
  EXPECT_EQ(total, kGrid.NumCells());
}

}  // namespace
}  // namespace qbism::volume
