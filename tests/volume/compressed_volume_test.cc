#include "volume/compressed_volume.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qbism::volume {
namespace {

using curve::CurveKind;
using geometry::Vec3i;
using region::GridSpec;

const GridSpec kGrid{3, 4};

TEST(CompressedVolumeTest, RoundTripConstantVolume) {
  Volume v = Volume::FromFunction(kGrid, CurveKind::kHilbert,
                                  [](const Vec3i&) { return uint8_t{42}; });
  CompressedVolume c = CompressedVolume::FromVolume(v);
  EXPECT_EQ(c.RunCount(), 1u);
  EXPECT_LT(c.CompressedBytes(), 16u);
  EXPECT_EQ(c.RawBytes(), kGrid.NumCells());
  EXPECT_EQ(c.Decompress().data(), v.data());
  EXPECT_EQ(c.ValueAtId(0), 42);
  EXPECT_EQ(c.ValueAtId(kGrid.NumCells() - 1), 42);
}

TEST(CompressedVolumeTest, RoundTripRandomVolume) {
  Rng rng(3);
  Volume v = Volume::FromFunction(kGrid, CurveKind::kHilbert,
                                  [&](const Vec3i&) {
                                    return static_cast<uint8_t>(
                                        rng.NextBounded(4) * 60);
                                  });
  CompressedVolume c = CompressedVolume::FromVolume(v);
  EXPECT_EQ(c.Decompress().data(), v.data());
  // Probe every 97th id against the raw layout.
  for (uint64_t id = 0; id < kGrid.NumCells(); id += 97) {
    EXPECT_EQ(c.ValueAtId(id), v.ValueAtId(id));
  }
}

TEST(CompressedVolumeTest, ValueAtMatchesPointAccess) {
  Volume v = Volume::FromFunction(kGrid, CurveKind::kHilbert,
                                  [](const Vec3i& p) {
                                    return static_cast<uint8_t>(p.z * 16);
                                  });
  CompressedVolume c = CompressedVolume::FromVolume(v);
  EXPECT_EQ(c.ValueAt({3, 4, 5}).value(), v.ValueAt({3, 4, 5}).value());
  EXPECT_FALSE(c.ValueAt({99, 0, 0}).ok());
}

TEST(CompressedVolumeTest, SmoothDataCompressesRandomDoesNot) {
  Volume smooth = Volume::FromFunction(kGrid, CurveKind::kHilbert,
                                       [](const Vec3i& p) {
                                         return static_cast<uint8_t>(p.x / 4);
                                       });
  Rng rng(9);
  Volume noisy = Volume::FromFunction(kGrid, CurveKind::kHilbert,
                                      [&](const Vec3i&) {
                                        return static_cast<uint8_t>(rng.Next());
                                      });
  CompressedVolume cs = CompressedVolume::FromVolume(smooth);
  CompressedVolume cn = CompressedVolume::FromVolume(noisy);
  EXPECT_LT(cs.CompressedBytes() * 4, cs.RawBytes());
  EXPECT_GT(cn.CompressedBytes(), cn.RawBytes());  // RLE overhead on noise
}

TEST(CompressedVolumeTest, PreservesGridAndCurve) {
  Volume v = Volume::FromFunction(kGrid, CurveKind::kZ,
                                  [](const Vec3i& p) {
                                    return static_cast<uint8_t>(p.y);
                                  });
  CompressedVolume c = CompressedVolume::FromVolume(v);
  EXPECT_EQ(c.curve_kind(), CurveKind::kZ);
  EXPECT_EQ(c.grid(), kGrid);
  EXPECT_EQ(c.Decompress().curve_kind(), CurveKind::kZ);
}

}  // namespace
}  // namespace qbism::volume
