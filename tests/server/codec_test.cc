#include "server/codec.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "geometry/shapes.h"
#include "region/region.h"
#include "server/protocol.h"
#include "volume/volume.h"

namespace qbism::server {
namespace {

volume::DataRegion MakeTestRegion(uint64_t seed) {
  region::GridSpec grid{3, 4};  // 16^3
  Rng rng(seed);
  geometry::Vec3i lo{static_cast<int>(rng.NextBounded(8)),
                     static_cast<int>(rng.NextBounded(8)),
                     static_cast<int>(rng.NextBounded(8))};
  geometry::Vec3i hi{lo.x + 1 + static_cast<int>(rng.NextBounded(7)),
                     lo.y + 1 + static_cast<int>(rng.NextBounded(7)),
                     lo.z + 1 + static_cast<int>(rng.NextBounded(7))};
  region::Region reg = region::Region::FromBox(
      grid, curve::CurveKind::kHilbert, geometry::Box3i{lo, hi});
  std::vector<uint8_t> values(reg.VoxelCount());
  for (auto& v : values) v = static_cast<uint8_t>(rng.NextBounded(256));
  return volume::DataRegion(std::move(reg), std::move(values));
}

TEST(CodecTest, HelloRoundTrip) {
  HelloRequest hello;
  hello.tenant = "radiology";
  hello.secret = "s3cret";
  auto decoded = DecodeHello(EncodeHello(hello));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->tenant, "radiology");
  EXPECT_EQ(decoded->secret, "s3cret");
}

TEST(CodecTest, WelcomeRoundTrip) {
  WelcomeReply welcome;
  welcome.session_token = 0xFEEDFACE12345678ull;
  welcome.session_ttl_seconds = 300.5;
  welcome.chunk_bytes = 65536;
  auto decoded = DecodeWelcome(EncodeWelcome(welcome));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->session_token, welcome.session_token);
  EXPECT_EQ(decoded->session_ttl_seconds, welcome.session_ttl_seconds);
  EXPECT_EQ(decoded->chunk_bytes, welcome.chunk_bytes);
}

TEST(CodecTest, QueryRoundTripAllFields) {
  QueryRequest query;
  query.spec.study_id = 17;
  query.spec.atlas_name = "talairach";
  query.spec.structure_name = "left_hippocampus";
  query.spec.box = geometry::Box3i{geometry::Vec3i{1, 2, 3},
                                   geometry::Vec3i{10, 11, 12}};
  query.spec.intensity_range = {40, 200};
  query.spec.use_band_index = true;
  query.spec.allow_cached = false;
  query.render = true;
  query.deadline_seconds = 2.5;
  auto decoded = DecodeQuery(EncodeQuery(query));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->spec.Describe(), query.spec.Describe());
  EXPECT_EQ(decoded->spec.use_band_index, true);
  EXPECT_EQ(decoded->spec.allow_cached, false);
  EXPECT_EQ(decoded->render, true);
  EXPECT_EQ(decoded->deadline_seconds, 2.5);
}

TEST(CodecTest, QueryRoundTripOptionalFieldsAbsent) {
  QueryRequest query;
  query.spec.study_id = 3;
  query.spec.atlas_name = "atlas";
  auto decoded = DecodeQuery(EncodeQuery(query));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->spec.structure_name.has_value());
  EXPECT_FALSE(decoded->spec.box.has_value());
  EXPECT_FALSE(decoded->spec.intensity_range.has_value());
}

TEST(CodecTest, ResultHeaderRoundTrip) {
  ResultHeader rh;
  rh.result_runs = 123;
  rh.result_voxels = 45678;
  rh.payload_bytes = 99999;
  rh.chunk_count = 2;
  rh.chunk_bytes = 65536;
  rh.cache_hit = true;
  rh.worker_id = 3;
  rh.timing.total_seconds = 1.5;
  rh.timing.lfm_pages = 42;
  rh.timing.network_messages = 7;
  rh.info_sql = "SELECT * FROM studies";
  rh.data_sql = "EXTRACT_DATA(...)";
  auto decoded = DecodeResultHeader(EncodeResultHeader(rh));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->result_runs, rh.result_runs);
  EXPECT_EQ(decoded->result_voxels, rh.result_voxels);
  EXPECT_EQ(decoded->payload_bytes, rh.payload_bytes);
  EXPECT_EQ(decoded->chunk_count, rh.chunk_count);
  EXPECT_EQ(decoded->cache_hit, true);
  EXPECT_EQ(decoded->worker_id, 3);
  EXPECT_EQ(decoded->timing.lfm_pages, 42u);
  EXPECT_EQ(decoded->info_sql, rh.info_sql);
  EXPECT_EQ(decoded->data_sql, rh.data_sql);
}

TEST(CodecTest, ResultEndAndErrorRoundTrip) {
  ResultEnd end;
  end.payload_bytes = 1 << 20;
  end.chunk_count = 16;
  end.payload_crc = 0xCAFEF00Du;
  end.modeled_egress_seconds = 0.25;
  auto decoded_end = DecodeResultEnd(EncodeResultEnd(end));
  ASSERT_TRUE(decoded_end.ok());
  EXPECT_EQ(decoded_end->payload_crc, end.payload_crc);
  EXPECT_EQ(decoded_end->modeled_egress_seconds, 0.25);

  ErrorReply error;
  error.code = StatusCode::kResourceExhausted;
  error.reason = ErrorReason::kQuotaRejected;
  error.message = "tenant quota";
  auto decoded_err = DecodeError(EncodeError(error));
  ASSERT_TRUE(decoded_err.ok());
  EXPECT_EQ(decoded_err->code, StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded_err->reason, ErrorReason::kQuotaRejected);
  EXPECT_EQ(decoded_err->message, "tenant quota");
}

TEST(CodecTest, AnswerPayloadRoundTripPreservesRegionAndValues) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 42ull}) {
    volume::DataRegion data = MakeTestRegion(seed);
    auto payload = EncodeAnswerPayload(data);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    auto back = DecodeAnswerPayload(*payload);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->values(), data.values());
    EXPECT_EQ(back->VoxelCount(), data.VoxelCount());
    EXPECT_EQ(back->region().runs(), data.region().runs());
  }
}

TEST(CodecTest, AnswerPayloadEmptyRegion) {
  region::GridSpec grid{3, 4};
  volume::DataRegion empty(
      region::Region(grid, curve::CurveKind::kHilbert), {});
  auto payload = EncodeAnswerPayload(empty);
  ASSERT_TRUE(payload.ok());
  auto back = DecodeAnswerPayload(*payload);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->VoxelCount(), 0u);
}

TEST(CodecTest, AnswerPayloadRoundTripsUnderEveryEncoding) {
  volume::DataRegion data = MakeTestRegion(5);
  for (region::RegionEncoding enc :
       {region::RegionEncoding::kNaiveRuns,
        region::RegionEncoding::kEliasDeltas,
        region::RegionEncoding::kOctants,
        region::RegionEncoding::kOblongOctants}) {
    auto payload = EncodeAnswerPayload(data, enc);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    auto back = DecodeAnswerPayload(*payload);
    ASSERT_TRUE(back.ok()) << region::RegionEncodingToString(enc) << ": "
                           << back.status().ToString();
    EXPECT_EQ(back->region().runs(), data.region().runs());
    EXPECT_EQ(back->values(), data.values());
  }
}

TEST(CodecTest, AnswerPayloadRejectsUnknownEncodingTag) {
  auto payload = EncodeAnswerPayload(MakeTestRegion(5));
  ASSERT_TRUE(payload.ok());
  (*payload)[3] = 0xEE;  // encoding tag byte
  auto back = DecodeAnswerPayload(*payload);
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsCorruption());
}

TEST(CodecTest, AnswerPayloadShipsCachedEncodedRegionVerbatim) {
  volume::DataRegion data = MakeTestRegion(6);
  auto reference = EncodeAnswerPayload(data);
  ASSERT_TRUE(reference.ok());
  // Attach the elias payload (as an encoded-domain chain would) — the
  // shipped bytes must be identical to the re-encoding path.
  auto elias = region::EncodeRegion(data.region(),
                                    region::RegionEncoding::kEliasDeltas);
  ASSERT_TRUE(elias.ok());
  data.set_encoded_region(*elias);
  auto cached = EncodeAnswerPayload(data);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(*cached, *reference);
}

TEST(CodecTest, AnswerPayloadRejectsTrailingBytes) {
  auto payload = EncodeAnswerPayload(MakeTestRegion(9));
  ASSERT_TRUE(payload.ok());
  payload->push_back(0x00);
  auto back = DecodeAnswerPayload(*payload);
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsCorruption());
}

// --- Adversarial inputs -------------------------------------------------

// Every truncation of a valid answer payload must fail cleanly (the
// value bytes are a pure suffix, so no strict prefix can decode).
TEST(CodecAdversarialTest, TruncatedAnswerPayloadNeverDecodes) {
  auto payload = EncodeAnswerPayload(MakeTestRegion(7));
  ASSERT_TRUE(payload.ok());
  for (size_t n = 0; n < payload->size(); ++n) {
    std::vector<uint8_t> cut(payload->begin(),
                             payload->begin() + static_cast<ptrdiff_t>(n));
    auto back = DecodeAnswerPayload(cut);
    EXPECT_FALSE(back.ok()) << "decoded a " << n << "-byte prefix of "
                            << payload->size();
  }
}

// Seeded fuzz sweep over all frame-level attacks the reader must
// survive: truncation, bit flips anywhere (header or payload), and
// lying length prefixes. The reader may accept a mutation only if it
// left the frame semantically intact.
TEST(CodecAdversarialTest, FuzzedFramesNeverCrashTheReader) {
  Rng rng(20260808);
  HelloRequest hello;
  hello.tenant = "t";
  hello.secret = "s";
  QueryRequest query;
  query.spec.study_id = 1;
  query.spec.atlas_name = "atlas";
  std::vector<std::vector<uint8_t>> frames = {
      EncodeFrame(MessageType::kHello, 0, 1, EncodeHello(hello)),
      EncodeFrame(MessageType::kQuery, 99, 2, EncodeQuery(query)),
      EncodeFrame(MessageType::kPing, 99, 3, {}),
  };
  int accepted = 0, rejected = 0;
  for (int round = 0; round < 4000; ++round) {
    std::vector<uint8_t> wire = frames[rng.NextBounded(frames.size())];
    switch (rng.NextBounded(3)) {
      case 0:  // truncate
        wire.resize(rng.NextBounded(wire.size() + 1));
        break;
      case 1:  // flip a random bit
        if (!wire.empty()) {
          wire[rng.NextBounded(wire.size())] ^=
              static_cast<uint8_t>(1u << rng.NextBounded(8));
        }
        break;
      default: {  // lying length prefix
        if (wire.size() >= kHeaderBytes) {
          uint32_t lie = static_cast<uint32_t>(rng.Next());
          std::memcpy(wire.data() + 28, &lie, sizeof(lie));
        }
        break;
      }
    }
    if (wire.size() < kHeaderBytes) {
      EXPECT_FALSE(DecodeFrameHeader(wire.data(), wire.size()).ok());
      ++rejected;
      continue;
    }
    auto header = DecodeFrameHeader(wire.data(), wire.size());
    if (!header.ok()) {
      ++rejected;
      continue;
    }
    // Header parsed: the payload may still be short, corrupt, or
    // semantically broken. None of it may crash or accept bad bytes.
    std::vector<uint8_t> payload(
        wire.begin() + kHeaderBytes,
        wire.begin() + kHeaderBytes +
            static_cast<ptrdiff_t>(
                std::min<size_t>(wire.size() - kHeaderBytes,
                                 header->payload_bytes)));
    if (payload.size() != header->payload_bytes ||
        !VerifyPayload(*header, payload).ok()) {
      ++rejected;
      continue;
    }
    switch (header->type) {
      case MessageType::kHello: {
        auto decoded = DecodeHello(payload);
        if (decoded.ok()) ++accepted; else ++rejected;
        break;
      }
      case MessageType::kQuery: {
        auto decoded = DecodeQuery(payload);
        if (decoded.ok()) ++accepted; else ++rejected;
        break;
      }
      default:
        ++accepted;  // empty-payload types; nothing further to decode
        break;
    }
  }
  // Sanity on the sweep itself: mutations overwhelmingly get caught
  // (CRC + bounds checks), while some survivors (e.g. payload bit flip
  // repaired by... nothing — only no-op truncations at full length or
  // flips the CRC catches) still flow through.
  EXPECT_GT(rejected, 3000);
  EXPECT_GE(accepted, 0);
}

// Random byte soup thrown straight at every payload decoder.
TEST(CodecAdversarialTest, RandomPayloadsNeverCrashDecoders) {
  Rng rng(424242);
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint8_t> junk(rng.NextBounded(256));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.NextBounded(256));
    (void)DecodeHello(junk);
    (void)DecodeWelcome(junk);
    (void)DecodeQuery(junk);
    (void)DecodeResultHeader(junk);
    (void)DecodeResultEnd(junk);
    (void)DecodeError(junk);
    (void)DecodeAnswerPayload(junk);
  }
}

}  // namespace
}  // namespace qbism::server
