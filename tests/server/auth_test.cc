#include "server/auth.h"

#include <gtest/gtest.h>

#include <set>

namespace qbism::server {
namespace {

std::vector<TenantConfig> TwoTenants() {
  TenantConfig a;
  a.name = "alpha";
  a.secret = "alpha-secret";
  TenantConfig b;
  b.name = "beta";
  b.secret = "beta-secret";
  b.max_sessions = 2;
  return {a, b};
}

TEST(AuthTest, LoginIssuesDistinctTokensAndValidates) {
  AuthManager auth(TwoTenants(), /*session_ttl_seconds=*/60.0, /*seed=*/1);
  std::set<uint64_t> tokens;
  for (int i = 0; i < 32; ++i) {
    auto session = auth.Login("alpha", "alpha-secret");
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    EXPECT_NE(session->token, 0u);
    EXPECT_EQ(session->tenant, 0);
    tokens.insert(session->token);
  }
  EXPECT_EQ(tokens.size(), 32u);  // no collisions, no zero tokens
  EXPECT_EQ(auth.ActiveSessions(), 32u);
  for (uint64_t token : tokens) {
    auto tenant = auth.Validate(token);
    ASSERT_TRUE(tenant.ok());
    EXPECT_EQ(*tenant, 0);
  }
}

TEST(AuthTest, RejectsBadCredentialsUniformly) {
  AuthManager auth(TwoTenants(), 60.0);
  // Unknown tenant and wrong secret fail the same way, so a probe
  // cannot distinguish which half was wrong.
  auto unknown = auth.Login("gamma", "alpha-secret");
  auto wrong = auth.Login("alpha", "beta-secret");
  ASSERT_FALSE(unknown.ok());
  ASSERT_FALSE(wrong.ok());
  EXPECT_TRUE(unknown.status().IsInvalidArgument());
  EXPECT_TRUE(wrong.status().IsInvalidArgument());
  EXPECT_EQ(unknown.status().message(), wrong.status().message());
}

TEST(AuthTest, UnknownTokenIsUnauthorized) {
  AuthManager auth(TwoTenants(), 60.0);
  auto tenant = auth.Validate(0xDEADBEEFull);
  ASSERT_FALSE(tenant.ok());
  EXPECT_TRUE(tenant.status().IsInvalidArgument());
  EXPECT_FALSE(auth.Validate(0).ok());  // the pre-login placeholder
}

TEST(AuthTest, SessionExpiryOnInjectedClock) {
  double now = 1000.0;
  AuthManager auth(TwoTenants(), /*session_ttl_seconds=*/10.0, /*seed=*/0,
                   [&now] { return now; });
  auto session = auth.Login("alpha", "alpha-secret");
  ASSERT_TRUE(session.ok());

  now += 9.0;  // within TTL: validates and refreshes
  ASSERT_TRUE(auth.Validate(session->token).ok());
  now += 9.0;  // within the *refreshed* TTL
  ASSERT_TRUE(auth.Validate(session->token).ok());

  now += 10.5;  // past the idle TTL
  auto expired = auth.Validate(session->token);
  ASSERT_FALSE(expired.ok());
  EXPECT_TRUE(expired.status().IsDeadlineExceeded());
  // The expired session was removed: a retry is now merely unknown.
  EXPECT_TRUE(auth.Validate(session->token).status().IsInvalidArgument());
  EXPECT_EQ(auth.ActiveSessions(), 0u);
}

TEST(AuthTest, SessionQuotaPerTenant) {
  AuthManager auth(TwoTenants(), 60.0);
  auto s1 = auth.Login("beta", "beta-secret");
  auto s2 = auth.Login("beta", "beta-secret");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  auto s3 = auth.Login("beta", "beta-secret");  // max_sessions = 2
  ASSERT_FALSE(s3.ok());
  EXPECT_TRUE(s3.status().IsResourceExhausted());
  // Logout frees a slot.
  auth.Logout(s1->token);
  EXPECT_TRUE(auth.Login("beta", "beta-secret").ok());
  // And alpha's quota is independent.
  EXPECT_TRUE(auth.Login("alpha", "alpha-secret").ok());
}

TEST(AuthTest, SweepRemovesOnlyExpiredSessions) {
  double now = 0.0;
  AuthManager auth(TwoTenants(), /*session_ttl_seconds=*/10.0, /*seed=*/7,
                   [&now] { return now; });
  auto old_session = auth.Login("alpha", "alpha-secret");
  ASSERT_TRUE(old_session.ok());
  now = 8.0;
  auto fresh_session = auth.Login("alpha", "alpha-secret");
  ASSERT_TRUE(fresh_session.ok());
  now = 12.0;  // old expired at 10, fresh expires at 18
  EXPECT_EQ(auth.SweepExpired(), 1u);
  EXPECT_EQ(auth.ActiveSessions(), 1u);
  EXPECT_FALSE(auth.Validate(old_session->token).ok());
  EXPECT_TRUE(auth.Validate(fresh_session->token).ok());
  // The swept session released its quota slot.
  auto relogin = auth.Login("alpha", "alpha-secret");
  EXPECT_TRUE(relogin.ok());
}

TEST(AuthTest, SessionIsStillValidAtExactlyTheTtlBoundary) {
  // Regression: Validate used `now >= expires_at`, which made a
  // configured TTL behave as TTL-minus-epsilon — a client whose
  // keepalive period equaled the TTL was bounced on the dot. The
  // boundary instant itself is inside the idle window.
  double now = 100.0;
  AuthManager auth(TwoTenants(), /*session_ttl_seconds=*/10.0, /*seed=*/3,
                   [&now] { return now; });
  auto session = auth.Login("alpha", "alpha-secret");
  ASSERT_TRUE(session.ok());
  ASSERT_EQ(session->expires_at, 110.0);

  now = 110.0;  // exactly login + ttl: still valid, and refreshed
  ASSERT_TRUE(auth.Validate(session->token).ok());
  now = 120.0;  // exactly the *refreshed* boundary again
  ASSERT_TRUE(auth.Validate(session->token).ok());
  now = 130.0 + 1e-9;  // strictly past it: expired
  EXPECT_TRUE(auth.Validate(session->token).status().IsDeadlineExceeded());
}

TEST(AuthTest, SweepAgreesWithValidateAtTheBoundary) {
  double now = 0.0;
  AuthManager auth(TwoTenants(), /*session_ttl_seconds=*/10.0, /*seed=*/5,
                   [&now] { return now; });
  auto session = auth.Login("alpha", "alpha-secret");
  ASSERT_TRUE(session.ok());
  now = 10.0;  // the boundary: the sweeper must not reap what Validate
               // would still accept
  EXPECT_EQ(auth.SweepExpired(), 0u);
  ASSERT_TRUE(auth.Validate(session->token).ok());
  now = 20.5;
  EXPECT_EQ(auth.SweepExpired(), 1u);
  EXPECT_EQ(auth.ActiveSessions(), 0u);
}

TEST(AuthTest, FindTenantAndAccessors) {
  AuthManager auth(TwoTenants(), 42.0);
  EXPECT_EQ(auth.num_tenants(), 2);
  EXPECT_EQ(auth.FindTenant("alpha"), 0);
  EXPECT_EQ(auth.FindTenant("beta"), 1);
  EXPECT_EQ(auth.FindTenant("gamma"), -1);
  EXPECT_EQ(auth.tenant(1).name, "beta");
  EXPECT_EQ(auth.session_ttl_seconds(), 42.0);
}

}  // namespace
}  // namespace qbism::server
