#include "server/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

namespace qbism::server {
namespace {

TenantConfig Tenant(const std::string& name, double weight,
                    int max_waiting = 64) {
  TenantConfig t;
  t.name = name;
  t.secret = name + "-secret";
  t.weight = weight;
  t.max_waiting = max_waiting;
  return t;
}

void WaitUntil(const std::function<bool()>& pred) {
  for (int i = 0; i < 2000 && !pred(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(pred());
}

TEST(AdmissionTest, SlotCapsFollowWeights) {
  // 8 slots split 2:1:1 -> 4/2/2.
  TenantGovernor governor({Tenant("a", 2.0), Tenant("b", 1.0),
                           Tenant("c", 1.0)},
                          /*total_slots=*/8);
  EXPECT_EQ(governor.slot_cap(0), 4);
  EXPECT_EQ(governor.slot_cap(1), 2);
  EXPECT_EQ(governor.slot_cap(2), 2);
}

TEST(AdmissionTest, EveryTenantGetsAtLeastOneSlot) {
  // A tiny weight still reserves one slot: a greedy tenant can never
  // starve another tenant completely.
  TenantGovernor governor({Tenant("whale", 100.0), Tenant("shrimp", 0.01)},
                          /*total_slots=*/4);
  EXPECT_GE(governor.slot_cap(1), 1);
  EXPECT_LE(governor.slot_cap(0), 4);
}

TEST(AdmissionTest, ExplicitMaxInflightOverridesWeight) {
  TenantConfig capped = Tenant("capped", 10.0);
  capped.max_inflight = 1;
  TenantGovernor governor({capped, Tenant("other", 1.0)}, 8);
  EXPECT_EQ(governor.slot_cap(0), 1);
}

TEST(AdmissionTest, AdmitUpToCapThenRejectBeyondWaitingQuota) {
  TenantGovernor governor({Tenant("a", 1.0, /*max_waiting=*/1)},
                          /*total_slots=*/2);
  ASSERT_EQ(governor.slot_cap(0), 2);
  auto s1 = governor.Admit(0);
  auto s2 = governor.Admit(0);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());

  // Cap reached: the next request waits...
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    auto s3 = governor.Admit(0);
    if (s3.ok()) admitted.store(true);
  });
  WaitUntil([&] { return governor.tenant_stats(0).waiting == 1; });

  // ...and with the waiting line full, a fourth rejects immediately.
  auto s4 = governor.Admit(0);
  ASSERT_FALSE(s4.ok());
  EXPECT_TRUE(s4.status().IsResourceExhausted());
  EXPECT_EQ(governor.tenant_stats(0).rejected_quota, 1u);

  // Releasing a slot admits the waiter.
  s1->Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  TenantAdmissionStats stats = governor.tenant_stats(0);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.waited, 1u);
  // The waiter's slot released when its thread exited; only s2 remains.
  EXPECT_EQ(stats.inflight, 1);
}

TEST(AdmissionTest, UnknownTenantRejected) {
  TenantGovernor governor({Tenant("a", 1.0)}, 2);
  EXPECT_FALSE(governor.Admit(-1).ok());
  EXPECT_FALSE(governor.Admit(1).ok());
}

TEST(AdmissionTest, SlotReleaseOnDestruction) {
  TenantGovernor governor({Tenant("a", 1.0)}, 1);
  {
    auto slot = governor.Admit(0);
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(governor.total_inflight(), 1);
  }
  EXPECT_EQ(governor.total_inflight(), 0);
  // Double release is harmless.
  auto slot = governor.Admit(0);
  ASSERT_TRUE(slot.ok());
  slot->Release();
  slot->Release();
  EXPECT_EQ(governor.total_inflight(), 0);
}

TEST(AdmissionTest, CloseWakesAllWaiters) {
  TenantGovernor governor({Tenant("a", 1.0, /*max_waiting=*/8)}, 1);
  auto held = governor.Admit(0);
  ASSERT_TRUE(held.ok());
  std::atomic<int> cancelled{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      auto slot = governor.Admit(0);
      if (!slot.ok() && slot.status().IsCancelled()) cancelled.fetch_add(1);
    });
  }
  WaitUntil([&] { return governor.tenant_stats(0).waiting == 4; });
  governor.Close();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(cancelled.load(), 4);
  // Admissions after Close fail fast.
  EXPECT_TRUE(governor.Admit(0).status().IsCancelled());
}

// The fair-share property the E19 bench demonstrates end to end, in
// miniature: a greedy tenant hammering the governor from many threads
// can never hold more than its cap, so the victim's slots stay free.
TEST(AdmissionTest, GreedyTenantCannotExceedItsCap) {
  TenantGovernor governor(
      {Tenant("greedy", 1.0, /*max_waiting=*/4), Tenant("victim", 1.0)},
      /*total_slots=*/4);
  ASSERT_EQ(governor.slot_cap(0), 2);

  std::atomic<bool> stop{false};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> greedy;
  for (int i = 0; i < 8; ++i) {
    greedy.emplace_back([&] {
      while (!stop.load()) {
        auto slot = governor.Admit(0);
        if (slot.ok()) {
          int inflight = governor.tenant_stats(0).inflight;
          int seen = max_seen.load();
          while (inflight > seen &&
                 !max_seen.compare_exchange_weak(seen, inflight)) {
          }
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
      }
    });
  }
  // While the greedy tenant churns, the victim always admits instantly.
  for (int i = 0; i < 50; ++i) {
    auto slot = governor.Admit(1);
    ASSERT_TRUE(slot.ok());
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  stop.store(true);
  governor.Close();
  for (auto& t : greedy) t.join();
  EXPECT_LE(max_seen.load(), governor.slot_cap(0));
  EXPECT_EQ(governor.tenant_stats(1).waited, 0u);
}

}  // namespace
}  // namespace qbism::server
