#include "server/server.h"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "med/loader.h"
#include "med/schema.h"
#include "obs/trace.h"
#include "server/client.h"

namespace qbism::server {
namespace {

/// One shared loaded database for the socket tests (read-only to the
/// server, exactly like the service tests).
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new sql::Database();
    auto ext = SpatialExtension::Install(db_, SpatialConfig{});
    ASSERT_TRUE(ext.ok());
    ext_ = ext.MoveValue().release();
    ASSERT_TRUE(med::BootstrapSchema(db_).ok());
    med::LoadOptions options;
    options.num_pet_studies = 2;
    options.num_mri_studies = 0;
    options.build_meshes = false;
    auto dataset = med::PopulateDatabase(ext_, options);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    study_ids_ = new std::vector<int>(dataset->pet_study_ids);
    structures_ = new std::vector<std::string>(dataset->structure_names);
  }

  static void TearDownTestSuite() {
    delete structures_;
    delete study_ids_;
    delete ext_;
    delete db_;
  }

  static ServerOptions BaseOptions() {
    ServerOptions options;
    TenantConfig tenant;
    tenant.name = "clinic";
    tenant.secret = "clinic-secret";
    options.tenants = {tenant};
    options.service.num_workers = 2;
    options.service.cost_model.sql_compile_seconds = 0.0;
    return options;
  }

  static QuerySpec StructureSpec() {
    QuerySpec spec;
    spec.study_id = study_ids_->front();
    spec.structure_name = structures_->front();
    return spec;
  }

  static sql::Database* db_;
  static SpatialExtension* ext_;
  static std::vector<int>* study_ids_;
  static std::vector<std::string>* structures_;
};

sql::Database* ServerTest::db_ = nullptr;
SpatialExtension* ServerTest::ext_ = nullptr;
std::vector<int>* ServerTest::study_ids_ = nullptr;
std::vector<std::string>* ServerTest::structures_ = nullptr;

void WaitUntil(const std::function<bool()>& pred) {
  for (int i = 0; i < 5000 && !pred(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(pred());
}

TEST_F(ServerTest, LoginQueryMatchesDirectExecution) {
  QbismServer server(ext_, BaseOptions());
  ASSERT_TRUE(server.Start().ok());

  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client->Login("clinic", "clinic-secret").ok());
  EXPECT_NE(client->session_token(), 0u);
  EXPECT_GT(client->server_chunk_bytes(), 0u);

  QuerySpec spec = StructureSpec();
  auto outcome = client->RunQuery(spec);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  // The wire answer must be bit-identical to a direct in-process run.
  MedicalServer direct(ext_, net::NetworkCostModel{}, ServerCostModel{});
  auto truth = direct.RunStudyQuery(spec, /*render=*/false);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(outcome->data.values(), truth->data.values());
  EXPECT_EQ(outcome->data.region().runs(), truth->data.region().runs());
  EXPECT_EQ(outcome->header.result_voxels, truth->result_voxels);
  EXPECT_EQ(outcome->header.result_runs, truth->result_runs);

  // Codec accounting: what the client received is what the header
  // promised and what the server says it shipped.
  EXPECT_EQ(outcome->shipped_bytes, outcome->header.payload_bytes);
  EXPECT_EQ(outcome->chunks, outcome->header.chunk_count);
  EXPECT_EQ(server.stats().ship_bytes, outcome->header.payload_bytes);
  EXPECT_EQ(server.stats().queries_ok, 1u);

  client->Bye();
  server.Shutdown();
}

TEST_F(ServerTest, SmallChunksReassembleIdentically) {
  ServerOptions options = BaseOptions();
  options.chunk_bytes = 512;  // force many chunks
  QbismServer server(ext_, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Login("clinic", "clinic-secret").ok());
  auto outcome = client->RunQuery(StructureSpec());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome->chunks, 1u);
  EXPECT_EQ(outcome->shipped_bytes, outcome->header.payload_bytes);

  MedicalServer direct(ext_, net::NetworkCostModel{}, ServerCostModel{});
  auto truth = direct.RunStudyQuery(StructureSpec(), false);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(outcome->data.values(), truth->data.values());
  server.Shutdown();
}

TEST_F(ServerTest, BadSecretCountsUnauthorized) {
  QbismServer server(ext_, BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  Status status = client->Login("clinic", "wrong");
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(client->last_error_reason(), ErrorReason::kUnauthorized);
  EXPECT_EQ(server.metrics().unauthorized, 1u);
  server.Shutdown();
}

TEST_F(ServerTest, QueryWithoutLoginIsUnauthorized) {
  QbismServer server(ext_, BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto outcome = client->RunQuery(StructureSpec());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(client->last_error_reason(), ErrorReason::kUnauthorized);
  EXPECT_GE(server.metrics().unauthorized, 1u);
  EXPECT_EQ(server.stats().queries_ok, 0u);
  server.Shutdown();
}

TEST_F(ServerTest, ExpiredSessionCountsSessionExpired) {
  ServerOptions options = BaseOptions();
  options.session_ttl_seconds = 0.0;  // everything expires immediately
  QbismServer server(ext_, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Login("clinic", "clinic-secret").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto outcome = client->RunQuery(StructureSpec());
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsDeadlineExceeded());
  EXPECT_EQ(client->last_error_reason(), ErrorReason::kSessionExpired);
  EXPECT_EQ(server.metrics().session_expired, 1u);
  server.Shutdown();
}

TEST_F(ServerTest, SessionQuotaCountsQuotaRejected) {
  ServerOptions options = BaseOptions();
  options.tenants[0].max_sessions = 1;
  QbismServer server(ext_, options);
  ASSERT_TRUE(server.Start().ok());
  auto first = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->Login("clinic", "clinic-secret").ok());
  auto second = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(second.ok());
  Status status = second->Login("clinic", "clinic-secret");
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_EQ(second->last_error_reason(), ErrorReason::kQuotaRejected);
  EXPECT_EQ(server.metrics().quota_rejected, 1u);
  server.Shutdown();
}

TEST_F(ServerTest, QuotaBouncesArePenaltyPaced) {
  ServerOptions options = BaseOptions();
  options.tenants[0].max_inflight = 1;
  options.tenants[0].max_waiting = 1;
  options.quota_penalty_seconds = 0.05;
  QbismServer server(ext_, options);
  ASSERT_TRUE(server.Start().ok());

  // Hold the tenant's only slot, then park one query so the waiting
  // line is full: every further query must bounce as quota_rejected.
  auto held = server.governor()->Admit(0);
  ASSERT_TRUE(held.ok());
  auto waiter = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(waiter.ok());
  ASSERT_TRUE(waiter->Login("clinic", "clinic-secret").ok());
  std::thread parked([&] { (void)waiter->RunQuery(StructureSpec()); });
  WaitUntil([&] { return server.governor()->tenant_stats(0).waiting == 1; });

  // A zero-think-time retry loop is paced to ~1/penalty per second:
  // each bounce's reply is delayed by the full penalty.
  auto bouncer = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(bouncer.ok());
  ASSERT_TRUE(bouncer->Login("clinic", "clinic-secret").ok());
  const int kBounces = 4;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kBounces; ++i) {
    auto outcome = bouncer->RunQuery(StructureSpec());
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(bouncer->last_error_reason(), ErrorReason::kQuotaRejected);
  }
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, kBounces * options.quota_penalty_seconds);
  EXPECT_GE(server.stats().quota_penalties, static_cast<uint64_t>(kBounces));
  EXPECT_GE(server.stats().quota_penalty_seconds,
            kBounces * options.quota_penalty_seconds);

  // Freeing the slot lets the parked query run to completion.
  held->Release();
  parked.join();
  EXPECT_EQ(server.stats().queries_ok, 1u);
  server.Shutdown();
}

TEST_F(ServerTest, PingRefreshesAndPongs) {
  QbismServer server(ext_, BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Login("clinic", "clinic-secret").ok());
  EXPECT_TRUE(client->Ping().ok());
  // A ping with a bogus token is unauthorized.
  auto rogue = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(rogue.ok());
  EXPECT_FALSE(rogue->Ping().ok());
  EXPECT_EQ(rogue->last_error_reason(), ErrorReason::kUnauthorized);
  server.Shutdown();
}

TEST_F(ServerTest, GarbageBytesCountProtocolErrorAndDropConnection) {
  QbismServer server(ext_, BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  // 36 bytes of garbage: a full "header" with a bad magic.
  std::vector<uint8_t> junk(kHeaderBytes, 0xA5);
  ASSERT_EQ(::send(client->socket()->fd(), junk.data(), junk.size(),
                   MSG_NOSIGNAL),
            static_cast<ssize_t>(junk.size()));
  // The server answers with a protocol error frame, then hangs up.
  auto frame = client->socket()->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->header.type, MessageType::kError);
  auto error = DecodeError(frame->payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->reason, ErrorReason::kProtocol);
  EXPECT_TRUE(client->socket()->ReadFrame().status().IsCancelled());  // EOF
  EXPECT_GE(server.stats().protocol_errors, 1u);
  server.Shutdown();
}

TEST_F(ServerTest, MidFrameDisconnectIsSurvived) {
  QbismServer server(ext_, BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  {
    auto client = NetClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    // A valid header promising 100 payload bytes... then hang up after 3.
    std::vector<uint8_t> wire =
        EncodeFrame(MessageType::kQuery, 1, 1, std::vector<uint8_t>(100, 7));
    ASSERT_EQ(::send(client->socket()->fd(), wire.data(), kHeaderBytes + 3,
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(kHeaderBytes + 3));
    client->Close();
  }
  // The connection thread must notice, count the corruption, and exit;
  // the server keeps serving afterwards. (Wait on the error counter:
  // the connection may not even be accepted yet when we get here.)
  WaitUntil([&] {
    return server.stats().protocol_errors >= 1 &&
           server.stats().connections_open == 0;
  });
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Login("clinic", "clinic-secret").ok());
  EXPECT_TRUE(client->RunQuery(StructureSpec()).ok());
  server.Shutdown();
}

TEST_F(ServerTest, ConnectionCapRejectsWithServerBusy) {
  ServerOptions options = BaseOptions();
  options.max_connections = 1;
  QbismServer server(ext_, options);
  ASSERT_TRUE(server.Start().ok());
  auto first = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(first.ok());
  // Login forces the server to have fully accepted the first socket.
  ASSERT_TRUE(first->Login("clinic", "clinic-secret").ok());
  auto second = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(second.ok());
  auto frame = second->socket()->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->header.type, MessageType::kError);
  auto error = DecodeError(frame->payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->reason, ErrorReason::kServerBusy);
  EXPECT_EQ(server.stats().connections_rejected, 1u);
  // The slot frees when the first client leaves.
  first->Bye();
  WaitUntil([&] { return server.stats().connections_open == 0; });
  auto third = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->Login("clinic", "clinic-secret").ok());
  server.Shutdown();
}

TEST_F(ServerTest, TraceStitchesAcceptToShip) {
  obs::Tracer tracer;
  ServerOptions options = BaseOptions();
  options.service.tracer = &tracer;
  QbismServer server(ext_, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Login("clinic", "clinic-secret").ok());
  auto outcome = client->RunQuery(StructureSpec());
  ASSERT_TRUE(outcome.ok());
  server.Shutdown();

  // One trace per wire request: the kRequest root with accept, decode,
  // admit, the service's kQuery subtree, and ship all under it.
  std::vector<obs::SpanRecord> spans = tracer.Spans();
  uint64_t trace_id = 0, request_span = 0;
  for (const auto& span : spans) {
    if (span.stage == obs::Stage::kRequest) {
      trace_id = span.trace_id;
      request_span = span.span_id;
    }
  }
  ASSERT_NE(request_span, 0u);
  bool saw_accept = false, saw_decode = false, saw_admit = false,
       saw_query = false, saw_ship = false;
  uint64_t ship_bytes = 0;
  for (const auto& span : spans) {
    if (span.trace_id != trace_id) continue;
    if (span.parent_id == request_span) {
      if (span.stage == obs::Stage::kAccept) saw_accept = true;
      if (span.stage == obs::Stage::kDecode) saw_decode = true;
      if (span.stage == obs::Stage::kAdmit) saw_admit = true;
      if (span.stage == obs::Stage::kQuery) saw_query = true;
      if (span.stage == obs::Stage::kShip) {
        saw_ship = true;
        ship_bytes = span.bytes;
      }
    }
  }
  EXPECT_TRUE(saw_accept);
  EXPECT_TRUE(saw_decode);
  EXPECT_TRUE(saw_admit);
  EXPECT_TRUE(saw_query);
  EXPECT_TRUE(saw_ship);
  // The traced ship span carries exactly the codec's accounting.
  EXPECT_EQ(ship_bytes, outcome->header.payload_bytes);
}

TEST_F(ServerTest, EgressShapingAccumulatesModeledSeconds) {
  ServerOptions options = BaseOptions();
  options.shape_egress = true;
  options.egress_model.rtt_seconds = 0.001;
  QbismServer server(ext_, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Login("clinic", "clinic-secret").ok());
  auto outcome = client->RunQuery(StructureSpec());
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->modeled_egress_seconds, 0.0);
  EXPECT_GT(server.stats().modeled_egress_seconds, 0.0);
  server.Shutdown();
}

TEST_F(ServerTest, ConcurrentClientsAllSucceed) {
  ServerOptions options = BaseOptions();
  options.service.num_workers = 4;
  QbismServer server(ext_, options);
  ASSERT_TRUE(server.Start().ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&, i] {
      auto client = NetClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) { failures.fetch_add(1); return; }
      if (!client->Login("clinic", "clinic-secret").ok()) {
        failures.fetch_add(1);
        return;
      }
      QuerySpec spec = StructureSpec();
      spec.study_id = (*study_ids_)[static_cast<size_t>(i) %
                                    study_ids_->size()];
      for (int q = 0; q < 5; ++q) {
        if (!client->RunQuery(spec).ok()) failures.fetch_add(1);
      }
      client->Bye();
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().queries_ok, 40u);
  EXPECT_GE(server.stats().peak_connections, 2u);
  server.Shutdown();
}

TEST_F(ServerTest, ShutdownSeversIdleConnections) {
  QbismServer server(ext_, BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Login("clinic", "clinic-secret").ok());
  server.Shutdown();  // must not hang on the idle connection
  EXPECT_FALSE(client->Ping().ok());
  // Idempotent.
  server.Shutdown();
}

}  // namespace
}  // namespace qbism::server
