#include "server/protocol.h"

#include <gtest/gtest.h>

#include <cstring>

namespace qbism::server {
namespace {

TEST(Crc32Test, MatchesIeeeCheckVector) {
  // The canonical CRC-32 check value: crc32("123456789") = 0xCBF43926.
  const char* check = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(check), 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, SensitiveToEveryByte) {
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  uint32_t base = Crc32(data);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(Crc32(data), base) << "flip at byte " << i;
    data[i] ^= 0x01;
  }
}

TEST(FrameTest, EncodeDecodeRoundTrip) {
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  std::vector<uint8_t> wire =
      EncodeFrame(MessageType::kQuery, 0xAABBCCDDEEFF0011ull, 42, payload);
  ASSERT_EQ(wire.size(), kHeaderBytes + payload.size());

  auto header = DecodeFrameHeader(wire.data(), wire.size());
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->type, MessageType::kQuery);
  EXPECT_EQ(header->version, kProtocolVersion);
  EXPECT_EQ(header->session, 0xAABBCCDDEEFF0011ull);
  EXPECT_EQ(header->request_id, 42u);
  EXPECT_EQ(header->payload_bytes, payload.size());
  EXPECT_TRUE(VerifyPayload(*header, payload).ok());
}

TEST(FrameTest, EmptyPayloadRoundTrip) {
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kPing, 7, 1, {});
  ASSERT_EQ(wire.size(), kHeaderBytes);
  auto header = DecodeFrameHeader(wire.data(), wire.size());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->payload_bytes, 0u);
  EXPECT_TRUE(VerifyPayload(*header, {}).ok());
}

TEST(FrameTest, RejectsShortBuffer) {
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kPing, 0, 0, {});
  for (size_t n = 0; n < kHeaderBytes; ++n) {
    auto header = DecodeFrameHeader(wire.data(), n);
    EXPECT_FALSE(header.ok()) << "accepted " << n << "-byte header";
    EXPECT_TRUE(header.status().IsCorruption());
  }
}

TEST(FrameTest, RejectsBadMagic) {
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kHello, 0, 0, {});
  wire[0] ^= 0xFF;
  auto header = DecodeFrameHeader(wire.data(), wire.size());
  ASSERT_FALSE(header.ok());
  EXPECT_TRUE(header.status().IsCorruption());
}

TEST(FrameTest, RejectsUnsupportedVersion) {
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kHello, 0, 0, {});
  wire[4] = 0x7F;  // version low byte
  auto header = DecodeFrameHeader(wire.data(), wire.size());
  ASSERT_FALSE(header.ok());
  EXPECT_TRUE(header.status().IsCorruption());
}

TEST(FrameTest, RejectsUnknownMessageType) {
  for (uint16_t type : {uint16_t{0}, uint16_t{11}, uint16_t{0xFFFF}}) {
    std::vector<uint8_t> wire = EncodeFrame(MessageType::kHello, 0, 0, {});
    std::memcpy(wire.data() + 6, &type, sizeof(type));
    auto header = DecodeFrameHeader(wire.data(), wire.size());
    ASSERT_FALSE(header.ok()) << "type " << type;
    EXPECT_TRUE(header.status().IsCorruption());
  }
}

TEST(FrameTest, RejectsReservedFlags) {
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kHello, 0, 0, {});
  wire[8] = 0x01;
  auto header = DecodeFrameHeader(wire.data(), wire.size());
  ASSERT_FALSE(header.ok());
  EXPECT_TRUE(header.status().IsCorruption());
}

TEST(FrameTest, RejectsOversizedLengthPrefix) {
  // An adversarial length prefix must bounce at the configured ceiling
  // before any allocation happens.
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kQuery, 0, 0, {});
  uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(wire.data() + 28, &huge, sizeof(huge));
  auto header = DecodeFrameHeader(wire.data(), wire.size());
  ASSERT_FALSE(header.ok());
  EXPECT_TRUE(header.status().IsCorruption());

  uint32_t just_over = 1024 + 1;
  std::memcpy(wire.data() + 28, &just_over, sizeof(just_over));
  EXPECT_FALSE(DecodeFrameHeader(wire.data(), wire.size(), 1024).ok());
  uint32_t at_limit = 1024;
  std::memcpy(wire.data() + 28, &at_limit, sizeof(at_limit));
  EXPECT_TRUE(DecodeFrameHeader(wire.data(), wire.size(), 1024).ok());
}

TEST(FrameTest, DetectsPayloadCorruption) {
  std::vector<uint8_t> payload(100, 0x5A);
  std::vector<uint8_t> wire =
      EncodeFrame(MessageType::kResultChunk, 1, 2, payload);
  auto header = DecodeFrameHeader(wire.data(), wire.size());
  ASSERT_TRUE(header.ok());

  std::vector<uint8_t> flipped = payload;
  flipped[50] ^= 0x80;
  Status status = VerifyPayload(*header, flipped);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsCorruption());

  std::vector<uint8_t> truncated(payload.begin(), payload.end() - 1);
  EXPECT_TRUE(VerifyPayload(*header, truncated).IsCorruption());
}

TEST(WireTest, WriterReaderRoundTrip) {
  WireWriter w;
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI32(-77);
  w.PutF64(3.25);
  w.PutString("qbism");
  std::vector<uint8_t> buf = w.Take();

  WireReader r(buf);
  EXPECT_EQ(r.GetU8().value(), 0xAB);
  EXPECT_EQ(r.GetU16().value(), 0x1234);
  EXPECT_EQ(r.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.GetI32().value(), -77);
  EXPECT_EQ(r.GetF64().value(), 3.25);
  EXPECT_EQ(r.GetString().value(), "qbism");
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, ReaderFailsCleanlyOnUnderrun) {
  WireWriter w;
  w.PutU16(7);
  std::vector<uint8_t> buf = w.Take();
  WireReader r(buf);
  EXPECT_FALSE(r.GetU32().ok());  // only 2 bytes available
  EXPECT_TRUE(r.GetU16().ok());
  EXPECT_FALSE(r.GetU8().ok());  // exhausted
}

TEST(WireTest, StringLengthCapEnforcedBeforeAllocation) {
  WireWriter w;
  w.PutU32(0x40000000u);  // length prefix claiming 1 GiB
  std::vector<uint8_t> buf = w.Take();
  WireReader r(buf);
  auto s = r.GetString(/*max_bytes=*/4096);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.status().IsCorruption());
}

TEST(WireTest, NamesAreStable) {
  EXPECT_STREQ(MessageTypeName(MessageType::kHello), "hello");
  EXPECT_STREQ(MessageTypeName(MessageType::kResultChunk), "result_chunk");
  EXPECT_STREQ(ErrorReasonName(ErrorReason::kQuotaRejected), "quota_rejected");
}

}  // namespace
}  // namespace qbism::server
