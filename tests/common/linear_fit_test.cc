#include "common/linear_fit.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qbism {
namespace {

TEST(LinearFitTest, ExactLine) {
  std::vector<double> xs{0, 1, 2, 3, 4};
  std::vector<double> ys{1, 3, 5, 7, 9};  // y = 2x + 1
  LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r, 1.0, 1e-12);
}

TEST(LinearFitTest, NegativeCorrelation) {
  std::vector<double> xs{0, 1, 2, 3};
  std::vector<double> ys{9, 6, 3, 0};
  LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, -3.0, 1e-12);
  EXPECT_NEAR(fit.r, -1.0, 1e-12);
}

TEST(LinearFitTest, NoisyLineStillHighCorrelation) {
  Rng rng(21);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    double x = i * 0.1;
    xs.push_back(x);
    ys.push_back(0.5 * x - 2.0 + rng.NextGaussian() * 0.05);
  }
  LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 0.02);
  EXPECT_NEAR(fit.intercept, -2.0, 0.03);
  EXPECT_GT(fit.r, 0.99);
}

TEST(LinearFitTest, DegenerateInputs) {
  EXPECT_EQ(FitLine({}, {}).slope, 0.0);
  EXPECT_EQ(FitLine({1.0}, {2.0}).slope, 0.0);
  // Vertical scatter (zero x variance) must not divide by zero.
  LinearFit fit = FitLine({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_EQ(fit.r, 0.0);
}

TEST(LinearFitTest, ConstantYGivesZeroCorrelation) {
  LinearFit fit = FitLine({1, 2, 3, 4}, {5, 5, 5, 5});
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_EQ(fit.r, 0.0);
}

}  // namespace
}  // namespace qbism
