#include "common/rng.h"

#include <gtest/gtest.h>

namespace qbism {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextDoubleInRespectsRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDoubleIn(-4.0, 9.0);
    EXPECT_GE(d, -4.0);
    EXPECT_LT(d, 9.0);
  }
}

TEST(RngTest, GaussianHasRoughlyZeroMeanUnitVariance) {
  Rng rng(11);
  const int n = 20000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(variance, 1.0, 0.05);
}

}  // namespace
}  // namespace qbism
