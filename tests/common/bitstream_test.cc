#include "common/bitstream.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qbism {
namespace {

TEST(BitstreamTest, SingleBitsRoundTrip) {
  BitWriter writer;
  int bits[] = {1, 0, 1, 1, 0, 0, 1, 0, 1};  // 9 bits crosses a byte
  for (int b : bits) writer.PutBit(b);
  EXPECT_EQ(writer.bit_count(), 9u);
  auto bytes = writer.Finish();
  EXPECT_EQ(bytes.size(), 2u);
  BitReader reader(bytes);
  for (int b : bits) {
    auto r = reader.GetBit();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), b);
  }
}

TEST(BitstreamTest, MsbFirstLayout) {
  BitWriter writer;
  writer.PutBits(0b10110001, 8);
  auto bytes = writer.Finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10110001);
}

TEST(BitstreamTest, MultiBitValuesRoundTrip) {
  BitWriter writer;
  writer.PutBits(0x1234, 16);
  writer.PutBits(0x5, 3);
  writer.PutBits(0xFFFFFFFFFFFFFFFFull, 64);
  auto bytes = writer.Finish();
  BitReader reader(bytes);
  EXPECT_EQ(reader.GetBits(16).value(), 0x1234u);
  EXPECT_EQ(reader.GetBits(3).value(), 0x5u);
  EXPECT_EQ(reader.GetBits(64).value(), 0xFFFFFFFFFFFFFFFFull);
}

TEST(BitstreamTest, UnaryRoundTrip) {
  BitWriter writer;
  uint64_t counts[] = {0, 1, 5, 13, 64};
  for (uint64_t c : counts) writer.PutUnary(c);
  auto bytes = writer.Finish();
  BitReader reader(bytes);
  for (uint64_t c : counts) {
    auto r = reader.GetUnary();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), c);
  }
}

TEST(BitstreamTest, ReadPastEndFails) {
  BitWriter writer;
  writer.PutBits(0b101, 3);
  auto bytes = writer.Finish();
  BitReader reader(bytes);
  EXPECT_TRUE(reader.GetBits(8).ok());  // zero padding readable
  EXPECT_FALSE(reader.GetBit().ok());
  EXPECT_TRUE(reader.GetBit().status().IsOutOfRange());
}

TEST(BitstreamTest, EmptyStream) {
  BitWriter writer;
  auto bytes = writer.Finish();
  EXPECT_TRUE(bytes.empty());
  BitReader reader(bytes);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_FALSE(reader.GetBit().ok());
  EXPECT_EQ(reader.GetBits(0).value(), 0u);  // zero-width read is fine
}

TEST(BitstreamTest, WriterReusableAfterFinish) {
  BitWriter writer;
  writer.PutBits(0xAB, 8);
  auto first = writer.Finish();
  EXPECT_EQ(writer.bit_count(), 0u);
  writer.PutBits(0xCD, 8);
  auto second = writer.Finish();
  EXPECT_EQ(first[0], 0xAB);
  EXPECT_EQ(second[0], 0xCD);
}

TEST(BitstreamTest, RandomizedRoundTrip) {
  Rng rng(1234);
  BitWriter writer;
  std::vector<std::pair<uint64_t, int>> entries;
  for (int i = 0; i < 500; ++i) {
    int nbits = static_cast<int>(rng.NextBounded(64)) + 1;
    uint64_t value = rng.Next();
    if (nbits < 64) value &= (uint64_t{1} << nbits) - 1;
    entries.emplace_back(value, nbits);
    writer.PutBits(value, nbits);
  }
  auto bytes = writer.Finish();
  BitReader reader(bytes);
  for (const auto& [value, nbits] : entries) {
    auto r = reader.GetBits(nbits);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), value);
  }
}

TEST(BitstreamTest, InvalidBitWidthRejected) {
  std::vector<uint8_t> bytes{0xFF};
  BitReader reader(bytes);
  EXPECT_FALSE(reader.GetBits(65).ok());
  EXPECT_FALSE(reader.GetBits(-1).ok());
}

}  // namespace
}  // namespace qbism
