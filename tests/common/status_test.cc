#include "common/status.h"

#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/result.h"

namespace qbism {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::IOError("disk gone");
  Status copy = s;
  EXPECT_TRUE(copy.IsIOError());
  EXPECT_EQ(copy.message(), "disk gone");
  EXPECT_TRUE(s.IsIOError());  // source unchanged by copy
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsIOError());
  Status assigned;
  assigned = copy;
  EXPECT_TRUE(assigned.IsIOError());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::string> r = std::string("payload");
  std::string v = r.MoveValue();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  QBISM_ASSIGN_OR_RETURN(int h, Half(x));
  QBISM_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  auto bad = Quarter(6);  // 6/2 = 3, odd
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

Status Check(bool good) {
  QBISM_RETURN_NOT_OK(good ? Status::OK() : Status::Internal("bad"));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacro) {
  EXPECT_TRUE(Check(true).ok());
  EXPECT_TRUE(Check(false).IsInternal());
}

}  // namespace
}  // namespace qbism
