#include "common/task_pool.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace qbism {
namespace {

std::vector<std::function<Status()>> CountingTasks(std::atomic<int>* counter,
                                                   int n) {
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < n; ++i) {
    tasks.push_back([counter]() -> Status {
      counter->fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
  }
  return tasks;
}

TEST(TaskPoolTest, RunsEveryTaskExactlyOnce) {
  TaskPool pool(4);
  std::atomic<int> counter{0};
  ASSERT_TRUE(pool.RunBatch(CountingTasks(&counter, 100), 4).ok());
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.stats().tasks, 100u);
  EXPECT_EQ(pool.stats().batches, 1u);
}

TEST(TaskPoolTest, ZeroThreadsDegradesToInlineExecution) {
  TaskPool pool(0);
  std::atomic<int> counter{0};
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([&counter, caller]() -> Status {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      counter.fetch_add(1);
      return Status::OK();
    });
  }
  ASSERT_TRUE(pool.RunBatch(std::move(tasks), 4).ok());
  EXPECT_EQ(counter.load(), 10);
  EXPECT_EQ(pool.stats().helper_tasks, 0u);
}

TEST(TaskPoolTest, EmptyBatchCompletes) {
  TaskPool pool(2);
  EXPECT_TRUE(pool.RunBatch({}, 2).ok());
}

TEST(TaskPoolTest, FirstErrorIsReturnedAndUnstartedTasksSkipped) {
  TaskPool pool(0);  // inline: deterministic order
  std::atomic<int> ran{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([&ran, i]() -> Status {
      ran.fetch_add(1);
      if (i == 3) return Status::IOError("task 3 failed");
      return Status::OK();
    });
  }
  Status status = pool.RunBatch(std::move(tasks), 0);
  EXPECT_TRUE(status.IsIOError());
  EXPECT_EQ(ran.load(), 4);  // tasks 0-3; 4-9 abandoned
}

TEST(TaskPoolTest, HelpersActuallyParticipate) {
  TaskPool pool(3);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([&]() -> Status {
      int now = concurrent.fetch_add(1) + 1;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      concurrent.fetch_sub(1);
      return Status::OK();
    });
  }
  ASSERT_TRUE(pool.RunBatch(std::move(tasks), 3).ok());
  // Caller + at least one helper overlapped (scheduling can in theory
  // serialize, but 16 x 5 ms tasks make that astronomically unlikely).
  EXPECT_GE(peak.load(), 2);
  EXPECT_GT(pool.stats().helper_tasks, 0u);
}

TEST(TaskPoolTest, MaxHelpersZeroKeepsHelpersOut) {
  TaskPool pool(3);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::function<Status()>> tasks;
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    tasks.push_back([&counter, caller]() -> Status {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      counter.fetch_add(1);
      return Status::OK();
    });
  }
  ASSERT_TRUE(pool.RunBatch(std::move(tasks), 0).ok());
  EXPECT_EQ(counter.load(), 20);
  EXPECT_EQ(pool.stats().helper_tasks, 0u);
}

TEST(TaskPoolTest, ConcurrentBatchesFromManyThreadsAllComplete) {
  TaskPool pool(4);
  constexpr int kClients = 6;
  constexpr int kTasksPer = 40;
  std::atomic<int> total{0};
  std::vector<std::thread> clients;
  std::vector<Status> results(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      results[c] = pool.RunBatch(CountingTasks(&total, kTasksPer), 4);
    });
  }
  for (auto& t : clients) t.join();
  for (const Status& s : results) EXPECT_TRUE(s.ok());
  EXPECT_EQ(total.load(), kClients * kTasksPer);
  EXPECT_EQ(pool.stats().tasks,
            static_cast<uint64_t>(kClients) * kTasksPer);
}

TEST(TaskPoolTest, RunBatchWorksAfterShutdown) {
  TaskPool pool(2);
  pool.Shutdown();
  std::atomic<int> counter{0};
  ASSERT_TRUE(pool.RunBatch(CountingTasks(&counter, 8), 2).ok());
  EXPECT_EQ(counter.load(), 8);
  EXPECT_EQ(pool.stats().helper_tasks, 0u);
}

TEST(TaskPoolTest, ShutdownIsIdempotentAndDestructorSafe) {
  auto pool = std::make_unique<TaskPool>(2);
  std::atomic<int> counter{0};
  ASSERT_TRUE(pool->RunBatch(CountingTasks(&counter, 4), 2).ok());
  pool->Shutdown();
  pool->Shutdown();
  pool.reset();  // destructor after explicit shutdown
}

}  // namespace
}  // namespace qbism
