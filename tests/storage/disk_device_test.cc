#include "storage/disk_device.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace qbism::storage {
namespace {

TEST(DiskDeviceTest, WriteThenReadBack) {
  DiskDevice device(16);
  std::vector<uint8_t> out(kPageSize, 0xAB);
  ASSERT_TRUE(device.WritePage(3, out.data()).ok());
  std::vector<uint8_t> in(kPageSize, 0);
  ASSERT_TRUE(device.ReadPage(3, in.data()).ok());
  EXPECT_EQ(in, out);
}

TEST(DiskDeviceTest, FreshPagesAreZero) {
  DiskDevice device(4);
  std::vector<uint8_t> in(kPageSize, 0xFF);
  ASSERT_TRUE(device.ReadPage(0, in.data()).ok());
  for (uint8_t b : in) EXPECT_EQ(b, 0);
}

TEST(DiskDeviceTest, OutOfRangeRejected) {
  DiskDevice device(4);
  std::vector<uint8_t> buf(kPageSize);
  EXPECT_FALSE(device.ReadPage(4, buf.data()).ok());
  EXPECT_FALSE(device.WritePage(4, buf.data()).ok());
  EXPECT_FALSE(device.ReadPages(3, 2, buf.data()).ok());
}

TEST(DiskDeviceTest, MultiPageTransfer) {
  DiskDevice device(8);
  std::vector<uint8_t> out(3 * kPageSize);
  for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(device.WritePages(2, 3, out.data()).ok());
  std::vector<uint8_t> in(3 * kPageSize);
  ASSERT_TRUE(device.ReadPages(2, 3, in.data()).ok());
  EXPECT_EQ(in, out);
}

TEST(DiskDeviceTest, CountsPagesAndSeeks) {
  DiskDevice device(64);
  std::vector<uint8_t> buf(4 * kPageSize);
  device.ResetStats();
  // First access: one seek.
  ASSERT_TRUE(device.ReadPages(10, 4, buf.data()).ok());
  EXPECT_EQ(device.stats().pages_read, 4u);
  EXPECT_EQ(device.stats().seeks, 1u);
  // Sequential continuation: no extra seek.
  ASSERT_TRUE(device.ReadPage(14, buf.data()).ok());
  EXPECT_EQ(device.stats().pages_read, 5u);
  EXPECT_EQ(device.stats().seeks, 1u);
  // Random jump: another seek.
  ASSERT_TRUE(device.ReadPage(0, buf.data()).ok());
  EXPECT_EQ(device.stats().seeks, 2u);
}

TEST(DiskDeviceTest, CostModelDeterministic) {
  DiskCostModel model{0.010, 0.001};
  DiskDevice device(64, model);
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(device.ReadPage(5, buf.data()).ok());   // seek + 1 transfer
  ASSERT_TRUE(device.ReadPage(6, buf.data()).ok());   // sequential transfer
  ASSERT_TRUE(device.ReadPage(20, buf.data()).ok());  // seek + transfer
  EXPECT_NEAR(device.stats().simulated_seconds, 2 * 0.010 + 3 * 0.001, 1e-12);
}

TEST(DiskDeviceTest, ResetStatsClearsCounters) {
  DiskDevice device(8);
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(device.ReadPage(1, buf.data()).ok());
  device.ResetStats();
  EXPECT_EQ(device.stats().pages_read, 0u);
  EXPECT_EQ(device.stats().simulated_seconds, 0.0);
}

TEST(DiskDeviceTest, StatsSubtraction) {
  IoStats a{10, 5, 3, 1.5};
  IoStats b{4, 2, 1, 0.5};
  IoStats d = a - b;
  EXPECT_EQ(d.pages_read, 6u);
  EXPECT_EQ(d.pages_written, 3u);
  EXPECT_EQ(d.seeks, 2u);
  EXPECT_NEAR(d.simulated_seconds, 1.0, 1e-12);
}

TEST(DiskDeviceTest, WritesCountedSeparately) {
  DiskDevice device(8);
  std::vector<uint8_t> buf(kPageSize, 1);
  ASSERT_TRUE(device.WritePage(0, buf.data()).ok());
  ASSERT_TRUE(device.ReadPage(0, buf.data()).ok());
  EXPECT_EQ(device.stats().pages_written, 1u);
  EXPECT_EQ(device.stats().pages_read, 1u);
}

}  // namespace
}  // namespace qbism::storage
