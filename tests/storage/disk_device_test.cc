#include "storage/disk_device.h"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace qbism::storage {
namespace {

TEST(DiskDeviceTest, WriteThenReadBack) {
  DiskDevice device(16);
  std::vector<uint8_t> out(kPageSize, 0xAB);
  ASSERT_TRUE(device.WritePage(3, out.data()).ok());
  std::vector<uint8_t> in(kPageSize, 0);
  ASSERT_TRUE(device.ReadPage(3, in.data()).ok());
  EXPECT_EQ(in, out);
}

TEST(DiskDeviceTest, FreshPagesAreZero) {
  DiskDevice device(4);
  std::vector<uint8_t> in(kPageSize, 0xFF);
  ASSERT_TRUE(device.ReadPage(0, in.data()).ok());
  for (uint8_t b : in) EXPECT_EQ(b, 0);
}

TEST(DiskDeviceTest, OutOfRangeRejected) {
  DiskDevice device(4);
  std::vector<uint8_t> buf(kPageSize);
  EXPECT_FALSE(device.ReadPage(4, buf.data()).ok());
  EXPECT_FALSE(device.WritePage(4, buf.data()).ok());
  EXPECT_FALSE(device.ReadPages(3, 2, buf.data()).ok());
}

TEST(DiskDeviceTest, MultiPageTransfer) {
  DiskDevice device(8);
  std::vector<uint8_t> out(3 * kPageSize);
  for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(device.WritePages(2, 3, out.data()).ok());
  std::vector<uint8_t> in(3 * kPageSize);
  ASSERT_TRUE(device.ReadPages(2, 3, in.data()).ok());
  EXPECT_EQ(in, out);
}

TEST(DiskDeviceTest, CountsPagesAndSeeks) {
  DiskDevice device(64);
  std::vector<uint8_t> buf(4 * kPageSize);
  device.ResetStats();
  // First access: one seek.
  ASSERT_TRUE(device.ReadPages(10, 4, buf.data()).ok());
  EXPECT_EQ(device.stats().pages_read, 4u);
  EXPECT_EQ(device.stats().seeks, 1u);
  // Sequential continuation: no extra seek.
  ASSERT_TRUE(device.ReadPage(14, buf.data()).ok());
  EXPECT_EQ(device.stats().pages_read, 5u);
  EXPECT_EQ(device.stats().seeks, 1u);
  // Random jump: another seek.
  ASSERT_TRUE(device.ReadPage(0, buf.data()).ok());
  EXPECT_EQ(device.stats().seeks, 2u);
}

TEST(DiskDeviceTest, CostModelDeterministic) {
  DiskCostModel model{0.010, 0.001};
  DiskDevice device(64, model);
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(device.ReadPage(5, buf.data()).ok());   // seek + 1 transfer
  ASSERT_TRUE(device.ReadPage(6, buf.data()).ok());   // sequential transfer
  ASSERT_TRUE(device.ReadPage(20, buf.data()).ok());  // seek + transfer
  EXPECT_NEAR(device.stats().simulated_seconds, 2 * 0.010 + 3 * 0.001, 1e-12);
}

TEST(DiskDeviceTest, ResetStatsClearsCounters) {
  DiskDevice device(8);
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(device.ReadPage(1, buf.data()).ok());
  device.ResetStats();
  EXPECT_EQ(device.stats().pages_read, 0u);
  EXPECT_EQ(device.stats().simulated_seconds, 0.0);
}

TEST(DiskDeviceTest, StatsSubtraction) {
  IoStats a{10, 5, 3, 1.5};
  IoStats b{4, 2, 1, 0.5};
  IoStats d = a - b;
  EXPECT_EQ(d.pages_read, 6u);
  EXPECT_EQ(d.pages_written, 3u);
  EXPECT_EQ(d.seeks, 2u);
  EXPECT_NEAR(d.simulated_seconds, 1.0, 1e-12);
}

TEST(DiskDeviceTest, BatchReadScattersIntoDistinctBuffers) {
  DiskDevice device(32);
  std::vector<uint8_t> page(kPageSize);
  for (uint64_t p = 0; p < 32; ++p) {
    std::fill(page.begin(), page.end(), static_cast<uint8_t>(p + 1));
    ASSERT_TRUE(device.WritePage(p, page.data()).ok());
  }
  std::vector<uint8_t> a(2 * kPageSize), b(kPageSize), c(3 * kPageSize);
  ASSERT_TRUE(device
                  .ReadPagesBatch({{4, 2, a.data()},
                                   {10, 1, b.data()},
                                   {20, 3, c.data()}})
                  .ok());
  EXPECT_EQ(a[0], 5);
  EXPECT_EQ(a[kPageSize], 6);
  EXPECT_EQ(b[0], 11);
  EXPECT_EQ(c[0], 21);
  EXPECT_EQ(c[2 * kPageSize], 23);
}

TEST(DiskDeviceTest, BatchReadChargesOneTransferPerOp) {
  DiskDevice device(64);
  std::vector<uint8_t> buf(8 * kPageSize);
  device.ResetStats();
  FaultStats before = device.fault_stats();
  ASSERT_TRUE(device
                  .ReadPagesBatch({{0, 4, buf.data()},
                                   {30, 2, buf.data() + 4 * kPageSize},
                                   {60, 2, buf.data() + 6 * kPageSize}})
                  .ok());
  FaultStats delta = device.fault_stats() - before;
  EXPECT_EQ(delta.transfers, 3u);  // one arm movement per extent
  EXPECT_EQ(delta.pages, 8u);
  EXPECT_EQ(device.stats().pages_read, 8u);
  EXPECT_EQ(device.thread_stats().pages_read, 8u);
}

TEST(DiskDeviceTest, BatchReadValidatesBeforeTransferring) {
  DiskDevice device(16);
  std::vector<uint8_t> buf(4 * kPageSize);
  device.ResetStats();
  // Second op is out of bounds: the whole batch is rejected up front and
  // nothing transfers (no torn charge for the valid first op).
  Status status = device.ReadPagesBatch(
      {{0, 2, buf.data()}, {15, 2, buf.data() + 2 * kPageSize}});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(device.stats().pages_read, 0u);
  EXPECT_FALSE(device.ReadPagesBatch({{0, 1, nullptr}}).ok());
}

TEST(DiskDeviceTest, BatchReadMidBatchFaultChargesEarlierOps) {
  DiskDevice device(64);
  std::vector<uint8_t> buf(6 * kPageSize);
  device.ResetStats();
  // Transfers number per op; fail the second op of the batch.
  device.InstallFaultPlan(FaultPlan::FailAtTransfer(1));
  Status status = device.ReadPagesBatch({{0, 2, buf.data()},
                                         {10, 2, buf.data() + 2 * kPageSize},
                                         {20, 2, buf.data() + 4 * kPageSize}});
  device.ClearFault();
  EXPECT_TRUE(status.IsIOError());
  // Op 0 transferred and is charged; the faulting op and the one behind
  // it are not.
  EXPECT_EQ(device.stats().pages_read, 2u);
}

TEST(DiskDeviceTest, ConcurrentBatchReadsSeeConsistentData) {
  DiskDevice device(64);
  std::vector<uint8_t> page(kPageSize);
  for (uint64_t p = 0; p < 64; ++p) {
    std::fill(page.begin(), page.end(), static_cast<uint8_t>(p));
    ASSERT_TRUE(device.WritePage(p, page.data()).ok());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&device, &failures, t] {
      std::vector<uint8_t> buf(16 * kPageSize);
      for (int iter = 0; iter < 50; ++iter) {
        uint64_t first = static_cast<uint64_t>(t) * 16;
        if (!device.ReadPagesBatch({{first, 8, buf.data()},
                                    {first + 8, 8, buf.data() + 8 * kPageSize}})
                 .ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (uint64_t p = 0; p < 16; ++p) {
          if (buf[p * kPageSize] != static_cast<uint8_t>(first + p)) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(device.stats().pages_read, 4u * 50u * 16u);
}

TEST(DiskDeviceTest, WritesCountedSeparately) {
  DiskDevice device(8);
  std::vector<uint8_t> buf(kPageSize, 1);
  ASSERT_TRUE(device.WritePage(0, buf.data()).ok());
  ASSERT_TRUE(device.ReadPage(0, buf.data()).ok());
  EXPECT_EQ(device.stats().pages_written, 1u);
  EXPECT_EQ(device.stats().pages_read, 1u);
}

}  // namespace
}  // namespace qbism::storage
