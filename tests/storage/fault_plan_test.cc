// FaultPlan semantics on the simulated disk: deterministic triggers,
// transient-vs-persistent durability, per-op accounting, and the legacy
// page-budget compatibility surface.

#include <gtest/gtest.h>

#include <vector>

#include "storage/disk_device.h"

namespace qbism::storage {
namespace {

std::vector<uint8_t> PageBuf(uint64_t pages = 1) {
  return std::vector<uint8_t>(pages * kPageSize);
}

TEST(FaultPlanTest, TransientFaultFailsExactlyOneTransfer) {
  DiskDevice device(16);
  auto buf = PageBuf();
  device.InstallFaultPlan(FaultPlan::FailAtTransfer(1));
  EXPECT_TRUE(device.ReadPage(0, buf.data()).ok());           // transfer 0
  EXPECT_TRUE(device.WritePage(1, buf.data()).IsIOError());   // transfer 1
  // The device recovered: the retried operation succeeds.
  EXPECT_TRUE(device.WritePage(1, buf.data()).ok());          // transfer 2
  EXPECT_TRUE(device.ReadPage(2, buf.data()).ok());
  EXPECT_EQ(device.fault_stats().faults_injected, 1u);
  EXPECT_EQ(device.fault_stats().transfers, 4u);
}

TEST(FaultPlanTest, PersistentFaultLatchesUntilCleared) {
  DiskDevice device(16);
  auto buf = PageBuf();
  device.InstallFaultPlan(
      FaultPlan::FailAtTransfer(1, FaultDurability::kPersistent));
  EXPECT_TRUE(device.ReadPage(0, buf.data()).ok());
  EXPECT_TRUE(device.ReadPage(1, buf.data()).IsIOError());
  EXPECT_TRUE(device.ReadPage(0, buf.data()).IsIOError());  // still dead
  EXPECT_TRUE(device.WritePage(3, buf.data()).IsIOError());
  device.ClearFault();
  EXPECT_TRUE(device.ReadPage(0, buf.data()).ok());
  EXPECT_EQ(device.fault_stats().faults_injected, 3u);
}

TEST(FaultPlanTest, TransferNumberingIsRelativeToInstall) {
  DiskDevice device(16);
  auto buf = PageBuf();
  // Age the device: absolute transfer numbers move past 0.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(device.ReadPage(0, buf.data()).ok());
  }
  device.InstallFaultPlan(FaultPlan::FailAtTransfer(0));
  EXPECT_TRUE(device.ReadPage(0, buf.data()).IsIOError());
  EXPECT_TRUE(device.ReadPage(0, buf.data()).ok());
}

TEST(FaultPlanTest, EveryKthFailsPeriodically) {
  DiskDevice device(16);
  auto buf = PageBuf();
  device.InstallFaultPlan(FaultPlan::FailEveryKth(3));
  int failures = 0;
  for (int i = 0; i < 9; ++i) {
    if (device.ReadPage(0, buf.data()).IsIOError()) ++failures;
  }
  EXPECT_EQ(failures, 3);  // transfers 2, 5, 8
  EXPECT_EQ(device.fault_stats().faults_injected, 3u);
}

TEST(FaultPlanTest, RandomStreamIsDeterministicForASeed) {
  auto outcomes = [](uint64_t seed) {
    DiskDevice device(16);
    auto buf = PageBuf();
    device.InstallFaultPlan(FaultPlan::FailRandom(0.5, seed));
    std::vector<bool> failed;
    for (int i = 0; i < 64; ++i) {
      failed.push_back(device.ReadPage(0, buf.data()).IsIOError());
    }
    return failed;
  };
  EXPECT_EQ(outcomes(7), outcomes(7));  // replayable
  EXPECT_NE(outcomes(7), outcomes(8));  // but seed-dependent
  // Rate is roughly honored (64 draws at p=0.5: expect far from 0/64).
  auto sample = outcomes(7);
  int failures = 0;
  for (bool f : sample) failures += f ? 1 : 0;
  EXPECT_GT(failures, 16);
  EXPECT_LT(failures, 48);
}

TEST(FaultPlanTest, RandomZeroAndOneProbabilityDegenerate) {
  DiskDevice device(16);
  auto buf = PageBuf();
  device.InstallFaultPlan(FaultPlan::FailRandom(0.0, 3));
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(device.ReadPage(0, buf.data()).ok());
  }
  device.InstallFaultPlan(FaultPlan::FailRandom(1.0, 3));
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(device.ReadPage(0, buf.data()).IsIOError());
  }
}

TEST(FaultPlanTest, StatsCountWithoutAnyPlan) {
  DiskDevice device(16);
  auto buf = PageBuf(4);
  ASSERT_TRUE(device.ReadPages(0, 4, buf.data()).ok());
  ASSERT_TRUE(device.WritePage(0, buf.data()).ok());
  FaultStats stats = device.fault_stats();
  EXPECT_EQ(stats.transfers, 2u);
  EXPECT_EQ(stats.pages, 5u);
  EXPECT_EQ(stats.faults_injected, 0u);
  device.ResetFaultStats();
  EXPECT_EQ(device.fault_stats().transfers, 0u);
}

TEST(FaultPlanTest, StatsSurviveInstallAndClear) {
  DiskDevice device(16);
  auto buf = PageBuf();
  ASSERT_TRUE(device.ReadPage(0, buf.data()).ok());
  device.InstallFaultPlan(FaultPlan::FailAtTransfer(0));
  EXPECT_TRUE(device.ReadPage(0, buf.data()).IsIOError());
  device.ClearFault();
  ASSERT_TRUE(device.ReadPage(0, buf.data()).ok());
  FaultStats stats = device.fault_stats();
  EXPECT_EQ(stats.transfers, 3u);  // cumulative across plans
  EXPECT_EQ(stats.faults_injected, 1u);
}

TEST(FaultPlanTest, LegacyBudgetSemanticsPreserved) {
  DiskDevice device(16);
  auto buf = PageBuf(4);
  // FailAfter counts *pages*, fails atomically without consuming budget,
  // and a smaller transfer may still fit afterwards.
  device.FailAfter(3);
  EXPECT_TRUE(device.ReadPages(0, 4, buf.data()).IsIOError());
  EXPECT_TRUE(device.ReadPages(0, 3, buf.data()).ok());
  EXPECT_TRUE(device.ReadPage(0, buf.data()).IsIOError());
  device.ClearFault();
  EXPECT_TRUE(device.ReadPage(0, buf.data()).ok());
}

TEST(FaultPlanTest, OutOfRangeTransfersAreNotFaultPoints) {
  DiskDevice device(4);
  auto buf = PageBuf();
  device.InstallFaultPlan(FaultPlan::FailAtTransfer(0));
  // Rejected before reaching the device arm: not counted, plan intact.
  EXPECT_TRUE(device.ReadPage(99, buf.data()).IsOutOfRange());
  EXPECT_EQ(device.fault_stats().transfers, 0u);
  EXPECT_TRUE(device.ReadPage(0, buf.data()).IsIOError());
}

}  // namespace
}  // namespace qbism::storage
