#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/long_field.h"

namespace qbism::storage {
namespace {

ReadPlan MustPlan(const std::vector<ByteRange>& ranges, uint64_t field_size,
                  uint64_t gap_fill_pages) {
  auto plan = LongFieldManager::BuildReadPlan(ranges, field_size,
                                              ReadPlanOptions{gap_fill_pages});
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.MoveValue();
}

TEST(ReadPlannerTest, EmptyInputYieldsEmptyPlan) {
  ReadPlan plan = MustPlan({}, 100 * kPageSize, 1);
  EXPECT_TRUE(plan.extents.empty());
  EXPECT_EQ(plan.pages_read, 0u);
  EXPECT_EQ(plan.pages_touched, 0u);
  EXPECT_EQ(plan.bytes_needed, 0u);
}

TEST(ReadPlannerTest, ZeroLengthRangesPlanNothing) {
  ReadPlan plan = MustPlan({{0, 0}, {5 * kPageSize, 0}}, 100 * kPageSize, 1);
  EXPECT_TRUE(plan.extents.empty());
  EXPECT_EQ(plan.bytes_needed, 0u);
}

TEST(ReadPlannerTest, SingleRangeSinglePage) {
  ReadPlan plan = MustPlan({{10, 20}}, 100 * kPageSize, 1);
  ASSERT_EQ(plan.extents.size(), 1u);
  EXPECT_EQ(plan.extents[0], (PlannedExtent{0, 1}));
  EXPECT_EQ(plan.pages_read, 1u);
  EXPECT_EQ(plan.pages_touched, 1u);
  EXPECT_EQ(plan.bytes_needed, 20u);
}

TEST(ReadPlannerTest, OverlappingRangesCountPagesOnce) {
  // Both ranges live on pages 0-1; the plan must not double-read them.
  ReadPlan plan =
      MustPlan({{0, kPageSize + 100}, {kPageSize - 50, 200}}, 10 * kPageSize, 0);
  ASSERT_EQ(plan.extents.size(), 1u);
  EXPECT_EQ(plan.extents[0], (PlannedExtent{0, 2}));
  EXPECT_EQ(plan.pages_read, 2u);
  EXPECT_EQ(plan.pages_touched, 2u);
}

TEST(ReadPlannerTest, AdjacentPagesCoalesceAtGapZero) {
  // Ranges on pages 0 and 1 (byte-adjacent across the boundary).
  ReadPlan plan =
      MustPlan({{kPageSize - 10, 10}, {kPageSize, 10}}, 10 * kPageSize, 0);
  ASSERT_EQ(plan.extents.size(), 1u);
  EXPECT_EQ(plan.extents[0], (PlannedExtent{0, 2}));
  EXPECT_EQ(plan.pages_read, 2u);
  EXPECT_EQ(plan.pages_touched, 2u);
}

TEST(ReadPlannerTest, GapZeroReadsExactlyDistinctPages) {
  // Pages 0 and 2 with page 1 untouched: two extents, no gap fill.
  ReadPlan plan = MustPlan({{0, 10}, {2 * kPageSize, 10}}, 10 * kPageSize, 0);
  ASSERT_EQ(plan.extents.size(), 2u);
  EXPECT_EQ(plan.extents[0], (PlannedExtent{0, 1}));
  EXPECT_EQ(plan.extents[1], (PlannedExtent{2, 1}));
  EXPECT_EQ(plan.pages_read, 2u);
  EXPECT_EQ(plan.pages_touched, 2u);
}

TEST(ReadPlannerTest, NearAdjacentPagesMergeUnderGapFill) {
  // Same layout, gap_fill_pages = 1: the one-page hole is read through.
  ReadPlan plan = MustPlan({{0, 10}, {2 * kPageSize, 10}}, 10 * kPageSize, 1);
  ASSERT_EQ(plan.extents.size(), 1u);
  EXPECT_EQ(plan.extents[0], (PlannedExtent{0, 3}));
  EXPECT_EQ(plan.pages_read, 3u);
  // pages_touched stays at the distinct pages the ranges need.
  EXPECT_EQ(plan.pages_touched, 2u);
}

TEST(ReadPlannerTest, GapLargerThanFillStaysSplit) {
  // Pages 0 and 4: a 3-page hole must not merge under gap_fill 2.
  ReadPlan plan = MustPlan({{0, 10}, {4 * kPageSize, 10}}, 10 * kPageSize, 2);
  ASSERT_EQ(plan.extents.size(), 2u);
  EXPECT_EQ(plan.pages_read, 2u);
}

TEST(ReadPlannerTest, HugeGapFillMergesEverythingIntoOneExtent) {
  ReadPlan plan = MustPlan({{0, 1}, {50 * kPageSize, 1}, {99 * kPageSize, 1}},
                           100 * kPageSize, 1'000'000);
  ASSERT_EQ(plan.extents.size(), 1u);
  EXPECT_EQ(plan.extents[0], (PlannedExtent{0, 100}));
  EXPECT_EQ(plan.pages_read, 100u);
  EXPECT_EQ(plan.pages_touched, 3u);
}

TEST(ReadPlannerTest, GapFillNeverReadsPastTheLastNeededPage) {
  // The plan must end on the last page any range touches, even with a
  // huge gap-fill threshold.
  ReadPlan plan = MustPlan({{0, 10}}, 100 * kPageSize, 1'000'000);
  ASSERT_EQ(plan.extents.size(), 1u);
  EXPECT_EQ(plan.extents[0], (PlannedExtent{0, 1}));
}

TEST(ReadPlannerTest, SingleVoxelRunsScatteredAcrossPages) {
  // One-byte ranges, one per page, every other page: gap 0 keeps them
  // separate; gap 1 fuses the lot.
  std::vector<ByteRange> ranges;
  for (uint64_t p = 0; p < 8; p += 2) ranges.push_back({p * kPageSize + 7, 1});
  ReadPlan split = MustPlan(ranges, 10 * kPageSize, 0);
  EXPECT_EQ(split.extents.size(), 4u);
  EXPECT_EQ(split.pages_read, 4u);
  EXPECT_EQ(split.bytes_needed, 4u);
  ReadPlan fused = MustPlan(ranges, 10 * kPageSize, 1);
  ASSERT_EQ(fused.extents.size(), 1u);
  EXPECT_EQ(fused.extents[0], (PlannedExtent{0, 7}));
}

TEST(ReadPlannerTest, RangeEndingExactlyOnPageBoundary) {
  // [0, kPageSize) touches only page 0; the next range starting at the
  // boundary touches only page 1.
  ReadPlan plan = MustPlan({{0, kPageSize}}, 10 * kPageSize, 0);
  ASSERT_EQ(plan.extents.size(), 1u);
  EXPECT_EQ(plan.extents[0], (PlannedExtent{0, 1}));

  ReadPlan both = MustPlan({{0, kPageSize}, {kPageSize, 1}}, 10 * kPageSize, 0);
  ASSERT_EQ(both.extents.size(), 1u);
  EXPECT_EQ(both.extents[0], (PlannedExtent{0, 2}));
}

TEST(ReadPlannerTest, RangeAtFieldEndIsInBounds) {
  uint64_t size = 3 * kPageSize + 100;  // unaligned tail
  ReadPlan plan = MustPlan({{3 * kPageSize, 100}}, size, 1);
  ASSERT_EQ(plan.extents.size(), 1u);
  EXPECT_EQ(plan.extents[0], (PlannedExtent{3, 1}));
  // Zero-length range exactly at the end is legal too.
  EXPECT_TRUE(
      LongFieldManager::BuildReadPlan({{size, 0}}, size, ReadPlanOptions{})
          .ok());
}

TEST(ReadPlannerTest, PastFieldEndRejected) {
  uint64_t size = 2 * kPageSize;
  EXPECT_FALSE(
      LongFieldManager::BuildReadPlan({{size, 1}}, size, ReadPlanOptions{})
          .ok());
  EXPECT_FALSE(
      LongFieldManager::BuildReadPlan({{size - 1, 2}}, size, ReadPlanOptions{})
          .ok());
  // Offset+length overflow must not wrap around to "in bounds".
  EXPECT_FALSE(LongFieldManager::BuildReadPlan({{UINT64_MAX - 1, 2}}, size,
                                               ReadPlanOptions{})
                   .ok());
}

TEST(ReadPlannerTest, UnsortedInputIsSortedIntoElevatorOrder) {
  ReadPlan plan = MustPlan({{5 * kPageSize, 10}, {0, 10}, {9 * kPageSize, 10}},
                           10 * kPageSize, 0);
  ASSERT_EQ(plan.extents.size(), 3u);
  EXPECT_EQ(plan.extents[0].first_page, 0u);
  EXPECT_EQ(plan.extents[1].first_page, 5u);
  EXPECT_EQ(plan.extents[2].first_page, 9u);
}

TEST(ReadPlannerTest, PagesReadNeverExceedsPerRunSum) {
  // Randomized invariant check: for any run list and small gap fill,
  // pages_read <= sum over runs of that run's own page count (the seed
  // path's cost), and pages_touched <= pages_read.
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    uint64_t field_size = (1 + rng.Next() % 64) * kPageSize;
    std::vector<ByteRange> ranges;
    uint64_t cursor = 0;
    while (cursor < field_size) {
      uint64_t len = 1 + rng.Next() % (2 * kPageSize);
      if (cursor + len > field_size) len = field_size - cursor;
      if (rng.Next() % 2 == 0) ranges.push_back({cursor, len});
      cursor += len + rng.Next() % kPageSize;
    }
    uint64_t per_run_sum = 0;
    for (const ByteRange& r : ranges) {
      if (r.length == 0) continue;
      per_run_sum +=
          (r.offset + r.length - 1) / kPageSize - r.offset / kPageSize + 1;
    }
    for (uint64_t gap : {uint64_t{0}, uint64_t{1}, uint64_t{2}}) {
      ReadPlan plan = MustPlan(ranges, field_size, gap);
      EXPECT_LE(plan.pages_touched, plan.pages_read);
      if (gap == 0) {
        EXPECT_EQ(plan.pages_read, plan.pages_touched);
        EXPECT_LE(plan.pages_read, per_run_sum);
      }
      uint64_t extent_sum = 0;
      for (const PlannedExtent& e : plan.extents) {
        extent_sum += e.page_count;
      }
      EXPECT_EQ(extent_sum, plan.pages_read);
      // Extents ascending and non-adjacent beyond the gap threshold.
      for (size_t i = 1; i < plan.extents.size(); ++i) {
        EXPECT_GT(plan.extents[i].first_page,
                  plan.extents[i - 1].first_page +
                      plan.extents[i - 1].page_count + gap);
      }
    }
  }
}

TEST(ReadPlannerTest, PlanReadChecksFieldBounds) {
  DiskDevice device(64);
  LongFieldManager lfm(&device);
  std::vector<uint8_t> bytes(2 * kPageSize + 10);
  LongFieldId id = lfm.Create(bytes).MoveValue();
  EXPECT_TRUE(lfm.PlanRead(id, {{0, bytes.size()}}).ok());
  EXPECT_FALSE(lfm.PlanRead(id, {{0, bytes.size() + 1}}).ok());
  EXPECT_FALSE(lfm.PlanRead(LongFieldId{999}, {{0, 1}}).ok());
}

TEST(ReadPlannerTest, ReadExtentsDeliversPlannedBytes) {
  DiskDevice device(64);
  LongFieldManager lfm(&device);
  Rng rng(7);
  std::vector<uint8_t> bytes(6 * kPageSize);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng.Next());
  LongFieldId id = lfm.Create(bytes).MoveValue();

  std::vector<ByteRange> ranges = {{100, 50}, {3 * kPageSize + 5, 2000}};
  ReadPlan plan = lfm.PlanRead(id, ranges, ReadPlanOptions{0}).MoveValue();
  ASSERT_EQ(plan.extents.size(), 2u);
  std::vector<std::vector<uint8_t>> bufs;
  std::vector<uint8_t*> outs;
  for (const PlannedExtent& e : plan.extents) {
    bufs.emplace_back(e.ByteCount());
    outs.push_back(bufs.back().data());
  }
  ASSERT_TRUE(lfm.ReadExtents(id, plan.extents, outs).ok());
  for (size_t i = 0; i < plan.extents.size(); ++i) {
    for (uint64_t b = 0; b < plan.extents[i].ByteCount(); ++b) {
      ASSERT_EQ(bufs[i][b], bytes[plan.extents[i].ByteOffset() + b]);
    }
  }
  // Mismatched outs and out-of-field extents are rejected.
  EXPECT_FALSE(lfm.ReadExtents(id, plan.extents, {outs[0]}).ok());
  EXPECT_FALSE(
      lfm.ReadExtents(id, {PlannedExtent{100, 1}}, {outs[0]}).ok());
}

}  // namespace
}  // namespace qbism::storage
