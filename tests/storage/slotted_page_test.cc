#include "storage/slotted_page.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qbism::storage {
namespace {

class SlottedPageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    page_.resize(kPageSize);
    SlottedPage::Init(page_.data());
  }
  std::vector<uint8_t> page_;
};

std::vector<uint8_t> Record(Rng* rng, size_t n) {
  std::vector<uint8_t> r(n);
  for (auto& b : r) b = static_cast<uint8_t>(rng->Next());
  return r;
}

TEST_F(SlottedPageTest, FreshPageState) {
  EXPECT_EQ(SlottedPage::SlotCount(page_.data()), 0u);
  EXPECT_EQ(SlottedPage::NextPage(page_.data()), 0u);
  EXPECT_EQ(SlottedPage::FreeSpace(page_.data()),
            kPageSize - SlottedPage::kHeaderSize - SlottedPage::kSlotSize);
}

TEST_F(SlottedPageTest, InsertReadRoundTrip) {
  Rng rng(1);
  auto r1 = Record(&rng, 100);
  auto r2 = Record(&rng, 255);
  auto s1 = SlottedPage::Insert(page_.data(), r1.data(),
                                static_cast<uint16_t>(r1.size()));
  auto s2 = SlottedPage::Insert(page_.data(), r2.data(),
                                static_cast<uint16_t>(r2.size()));
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1.value(), 0);
  EXPECT_EQ(s2.value(), 1);
  EXPECT_EQ(SlottedPage::Read(page_.data(), s1.value()).value(), r1);
  EXPECT_EQ(SlottedPage::Read(page_.data(), s2.value()).value(), r2);
}

TEST_F(SlottedPageTest, EraseTombstones) {
  Rng rng(2);
  auto r = Record(&rng, 50);
  auto slot = SlottedPage::Insert(page_.data(), r.data(), 50).MoveValue();
  EXPECT_TRUE(SlottedPage::IsLive(page_.data(), slot));
  ASSERT_TRUE(SlottedPage::Erase(page_.data(), slot).ok());
  EXPECT_FALSE(SlottedPage::IsLive(page_.data(), slot));
  EXPECT_FALSE(SlottedPage::Read(page_.data(), slot).ok());
}

TEST_F(SlottedPageTest, BadSlotRejected) {
  EXPECT_FALSE(SlottedPage::Read(page_.data(), 0).ok());
  EXPECT_FALSE(SlottedPage::Erase(page_.data(), 5).ok());
  EXPECT_FALSE(SlottedPage::IsLive(page_.data(), 3));
}

TEST_F(SlottedPageTest, FillsUntilFull) {
  Rng rng(3);
  auto r = Record(&rng, 100);
  int inserted = 0;
  while (true) {
    auto slot = SlottedPage::Insert(page_.data(), r.data(), 100);
    if (!slot.ok()) {
      EXPECT_TRUE(slot.status().IsOutOfRange());
      break;
    }
    ++inserted;
  }
  // 4096 - 12 header, each record costs 100 + 4 slot = 104.
  EXPECT_EQ(inserted, static_cast<int>((kPageSize - 12) / 104));
  // All inserted records still readable.
  for (int s = 0; s < inserted; ++s) {
    EXPECT_EQ(SlottedPage::Read(page_.data(), static_cast<SlotId>(s)).value(),
              r);
  }
}

TEST_F(SlottedPageTest, MaxRecordFitsExactly) {
  std::vector<uint8_t> big(SlottedPage::kMaxRecordSize, 0x5A);
  auto slot = SlottedPage::Insert(page_.data(), big.data(),
                                  static_cast<uint16_t>(big.size()));
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(SlottedPage::FreeSpace(page_.data()), 0u);
  EXPECT_EQ(SlottedPage::Read(page_.data(), slot.value()).value(), big);
}

TEST_F(SlottedPageTest, NextPagePointer) {
  SlottedPage::SetNextPage(page_.data(), 12345);
  EXPECT_EQ(SlottedPage::NextPage(page_.data()), 12345u);
}

TEST_F(SlottedPageTest, InsertAfterEraseStillAppends) {
  Rng rng(4);
  auto r = Record(&rng, 40);
  auto s0 = SlottedPage::Insert(page_.data(), r.data(), 40).MoveValue();
  ASSERT_TRUE(SlottedPage::Erase(page_.data(), s0).ok());
  auto s1 = SlottedPage::Insert(page_.data(), r.data(), 40).MoveValue();
  EXPECT_EQ(s1, 1);  // tombstoned slots are not reused (append-only)
  EXPECT_EQ(SlottedPage::Read(page_.data(), s1).value(), r);
}

}  // namespace
}  // namespace qbism::storage
