// BuddyAllocator structural invariants: the self-check the fault sweep
// leans on must hold through arbitrary workloads and actually trip on
// corruption (a double free).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "storage/buddy_allocator.h"

namespace qbism::storage {
namespace {

TEST(BuddyInvariantsTest, FreshAllocatorIsClean) {
  BuddyAllocator allocator(256);
  EXPECT_TRUE(allocator.CheckInvariants().ok());
  EXPECT_EQ(allocator.free_pages(), 256u);
  EXPECT_EQ(allocator.allocated_pages(), 0u);
}

TEST(BuddyInvariantsTest, AccountingUsesRoundedExtents) {
  BuddyAllocator allocator(64);
  EXPECT_EQ(BuddyAllocator::ExtentPages(0), 1u);
  EXPECT_EQ(BuddyAllocator::ExtentPages(1), 1u);
  EXPECT_EQ(BuddyAllocator::ExtentPages(3), 4u);
  EXPECT_EQ(BuddyAllocator::ExtentPages(4), 4u);
  EXPECT_EQ(BuddyAllocator::ExtentPages(5), 8u);
  auto start = allocator.Allocate(3).MoveValue();
  EXPECT_EQ(allocator.allocated_pages(), 4u);
  EXPECT_EQ(allocator.free_pages(), 60u);
  EXPECT_TRUE(allocator.CheckInvariants().ok());
  ASSERT_TRUE(allocator.Free(start, 3).ok());
  EXPECT_EQ(allocator.free_pages(), 64u);
  EXPECT_TRUE(allocator.CheckInvariants().ok());
}

TEST(BuddyInvariantsTest, InvariantsHoldThroughMixedWorkload) {
  BuddyAllocator allocator(1024);
  struct Live {
    uint64_t start;
    uint64_t pages;
  };
  std::vector<Live> live;
  // Deterministic mix of sizes; free every third allocation as we go.
  const uint64_t sizes[] = {1, 3, 8, 5, 16, 2, 31, 4, 9, 1};
  for (int round = 0; round < 20; ++round) {
    uint64_t pages = sizes[round % 10];
    auto start = allocator.Allocate(pages);
    ASSERT_TRUE(start.ok());
    live.push_back({start.value(), pages});
    if (round % 3 == 2) {
      Live victim = live[live.size() / 2];
      live.erase(live.begin() + static_cast<long>(live.size() / 2));
      ASSERT_TRUE(allocator.Free(victim.start, victim.pages).ok());
    }
    ASSERT_TRUE(allocator.CheckInvariants().ok()) << "after round " << round;
    EXPECT_EQ(allocator.free_pages() + allocator.allocated_pages(), 1024u);
  }
  for (const Live& block : live) {
    ASSERT_TRUE(allocator.Free(block.start, block.pages).ok());
    ASSERT_TRUE(allocator.CheckInvariants().ok());
  }
  // Everything coalesced back into one device-sized block.
  EXPECT_EQ(allocator.free_pages(), 1024u);
  EXPECT_EQ(allocator.Allocate(1024).value(), 0u);
}

TEST(BuddyInvariantsTest, DoubleFreeTripsTheCheck) {
  BuddyAllocator allocator(64);
  auto a = allocator.Allocate(4).MoveValue();
  auto b = allocator.Allocate(4).MoveValue();
  (void)b;
  ASSERT_TRUE(allocator.Free(a, 4).ok());
  ASSERT_TRUE(allocator.CheckInvariants().ok());
  // The second free corrupts the accounting; the sweep's invariant
  // check exists to catch exactly this class of bug.
  (void)allocator.Free(a, 4).ok();
  EXPECT_TRUE(allocator.CheckInvariants().IsCorruption());
}

TEST(BuddyInvariantsTest, ExhaustionRecoversAfterFrees) {
  BuddyAllocator allocator(16);
  std::vector<uint64_t> starts;
  for (int i = 0; i < 16; ++i) {
    starts.push_back(allocator.Allocate(1).MoveValue());
  }
  EXPECT_TRUE(allocator.Allocate(1).status().IsOutOfRange());
  EXPECT_TRUE(allocator.CheckInvariants().ok());
  for (uint64_t start : starts) {
    ASSERT_TRUE(allocator.Free(start, 1).ok());
  }
  EXPECT_TRUE(allocator.CheckInvariants().ok());
  // Frees coalesced all the way back up: one maximal extent fits.
  EXPECT_EQ(allocator.Allocate(16).value(), 0u);
}

}  // namespace
}  // namespace qbism::storage
