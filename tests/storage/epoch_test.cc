// EpochManager / ReadSnapshot semantics, and the versioned
// LongFieldManager visibility rules built on them: pinned readers keep
// a consistent pre-mutation view, staged transactions are invisible
// until commit, and Vacuum only reclaims what no reader can see.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/disk_device.h"
#include "storage/epoch.h"
#include "storage/fault_plan.h"
#include "storage/long_field.h"
#include "storage/wal.h"

namespace qbism::storage {
namespace {

std::vector<uint8_t> Payload(size_t bytes, uint8_t fill) {
  return std::vector<uint8_t>(bytes, fill);
}

/// A durable LFM world: its own data device, log device, WAL, epochs.
struct DurableLfm {
  DiskDevice device{256};
  DiskDevice log_device{64};
  WriteAheadLog wal{&log_device};
  EpochManager epochs;
  LongFieldManager lfm{&device, LfmDurabilityHooks{&wal, &epochs}};
};

TEST(EpochTest, AdvancePublishesAndPinsTrackReaders) {
  EpochManager epochs;
  EXPECT_EQ(epochs.current(), 1u);
  EXPECT_EQ(epochs.MinActiveReader(), 1u);  // no readers: the horizon
  uint64_t pinned = epochs.EnterReader();
  EXPECT_EQ(pinned, 1u);
  EXPECT_EQ(epochs.Advance(), 2u);
  // The pinned reader holds the horizon back.
  EXPECT_EQ(epochs.MinActiveReader(), 1u);
  EXPECT_EQ(epochs.active_readers(), 1u);
  epochs.ExitReader(pinned);
  EXPECT_EQ(epochs.MinActiveReader(), 2u);
  EXPECT_EQ(epochs.active_readers(), 0u);
}

TEST(EpochTest, SnapshotsInstallThreadLocallyAndNest) {
  EpochManager a;
  EpochManager b;
  EXPECT_EQ(EpochManager::PinnedEpoch(&a), 0u);  // no snapshot: "latest"
  {
    ReadSnapshot outer(&a);
    EXPECT_EQ(EpochManager::PinnedEpoch(&a), 1u);
    EXPECT_EQ(EpochManager::PinnedEpoch(&b), 0u);  // distinct managers
    a.Advance();
    {
      ReadSnapshot inner(&a);  // innermost wins while it lives
      EXPECT_EQ(EpochManager::PinnedEpoch(&a), 2u);
      ReadSnapshot other(&b);
      EXPECT_EQ(EpochManager::PinnedEpoch(&b), 1u);
    }
    EXPECT_EQ(EpochManager::PinnedEpoch(&a), 1u);
  }
  EXPECT_EQ(EpochManager::PinnedEpoch(&a), 0u);
  EXPECT_EQ(a.active_readers(), 0u);
}

TEST(EpochTest, AdoptingSnapshotInstallsWithoutPinning) {
  EpochManager epochs;
  ReadSnapshot owner(&epochs);
  ASSERT_EQ(epochs.active_readers(), 1u);
  {
    // A donated helper adopting the owner's epoch: same view, no second
    // pin (the owner's snapshot outlives the helper's work).
    ReadSnapshot helper(&epochs, owner.epoch());
    EXPECT_EQ(EpochManager::PinnedEpoch(&epochs), owner.epoch());
    EXPECT_EQ(epochs.active_readers(), 1u);
  }
  // Adopting epoch 0 (owner held no snapshot) is a no-op.
  ReadSnapshot noop(&epochs, 0);
  EXPECT_EQ(noop.epoch(), 0u);
  // And a null manager makes every form a no-op.
  ReadSnapshot null_snapshot(nullptr);
  EXPECT_EQ(null_snapshot.epoch(), 0u);
}

TEST(EpochTest, PinnedReaderKeepsPreUpdateView) {
  DurableLfm world;
  auto id = world.lfm.Create(Payload(kPageSize, 1)).MoveValue();

  ReadSnapshot before(&world.epochs);
  ASSERT_TRUE(world.lfm.Update(id, Payload(2 * kPageSize, 2)).ok());

  // The pinned reader still resolves the pre-update version...
  EXPECT_EQ(world.lfm.Read(id).value(), Payload(kPageSize, 1));
  {
    // ...while a fresh snapshot (and the unpinned "latest" view) sees
    // the new one.
    ReadSnapshot after(&world.epochs);
    EXPECT_EQ(world.lfm.Read(id).value(), Payload(2 * kPageSize, 2));
  }
}

TEST(EpochTest, VacuumSparesVersionsAReaderCanStillSee) {
  DurableLfm world;
  auto id = world.lfm.Create(Payload(kPageSize, 1)).MoveValue();
  auto pinned = std::make_unique<ReadSnapshot>(&world.epochs);
  ASSERT_TRUE(world.lfm.Update(id, Payload(kPageSize, 2)).ok());
  ASSERT_EQ(world.lfm.dead_extents(), 1u);

  // The pinned reader can still see the retired version: not reclaimed.
  LongFieldManager::VacuumStats stats = world.lfm.Vacuum();
  EXPECT_EQ(stats.extents_freed, 0u);
  EXPECT_EQ(stats.still_pinned, 1u);
  EXPECT_EQ(world.lfm.Read(id).value(), Payload(kPageSize, 1));

  pinned.reset();  // the last reader that could see it drains
  stats = world.lfm.Vacuum();
  EXPECT_EQ(stats.extents_freed, 1u);
  EXPECT_GT(stats.pages_freed, 0u);
  EXPECT_EQ(world.lfm.dead_extents(), 0u);
  EXPECT_EQ(world.lfm.allocated_pages(), 1u);  // only the live version
  ASSERT_TRUE(world.lfm.CheckPageAccounting().ok());
  EXPECT_EQ(world.lfm.Read(id).value(), Payload(kPageSize, 2));
}

TEST(EpochTest, DeleteRetiresUntilVacuumAndSnapshotStillReads) {
  DurableLfm world;
  auto id = world.lfm.Create(Payload(3 * kPageSize, 7)).MoveValue();
  ReadSnapshot reader(&world.epochs);
  ASSERT_TRUE(world.lfm.Delete(id).ok());
  // Deleted for new readers, alive for the pinned one.
  EXPECT_EQ(world.lfm.Read(id).value(), Payload(3 * kPageSize, 7));
  {
    ReadSnapshot after(&world.epochs);
    EXPECT_TRUE(world.lfm.Read(id).status().IsNotFound());
  }
  ASSERT_TRUE(world.lfm.CheckPageAccounting().ok());
}

TEST(EpochTest, StagedTransactionInvisibleUntilCommit) {
  DurableLfm world;
  auto stable = world.lfm.Create(Payload(kPageSize, 3)).MoveValue();
  ASSERT_TRUE(world.lfm.BeginTxn().ok());
  auto staged = world.lfm.Create(Payload(kPageSize, 4)).MoveValue();
  ASSERT_TRUE(world.lfm.Update(stable, Payload(kPageSize, 5)).ok());

  // Uncommitted: the new field does not exist, the update not applied —
  // for everyone, including the writing thread.
  EXPECT_TRUE(world.lfm.Read(staged).status().IsNotFound());
  EXPECT_EQ(world.lfm.Read(stable).value(), Payload(kPageSize, 3));
  ASSERT_TRUE(world.lfm.CheckPageAccounting().ok());  // staged pages counted

  ASSERT_TRUE(world.lfm.CommitTxn().ok());
  EXPECT_EQ(world.lfm.Read(staged).value(), Payload(kPageSize, 4));
  EXPECT_EQ(world.lfm.Read(stable).value(), Payload(kPageSize, 5));
}

TEST(EpochTest, AbortedTransactionFreesStagedExtents) {
  DurableLfm world;
  auto stable = world.lfm.Create(Payload(kPageSize, 3)).MoveValue();
  uint64_t allocated = world.lfm.allocated_pages();
  ASSERT_TRUE(world.lfm.BeginTxn().ok());
  ASSERT_TRUE(world.lfm.Create(Payload(2 * kPageSize, 4)).ok());
  ASSERT_TRUE(world.lfm.Delete(stable).ok());
  ASSERT_TRUE(world.lfm.AbortTxn().ok());

  EXPECT_EQ(world.lfm.allocated_pages(), allocated);
  EXPECT_EQ(world.lfm.Read(stable).value(), Payload(kPageSize, 3));
  ASSERT_TRUE(world.lfm.CheckPageAccounting().ok());
}

TEST(EpochTest, FailedCommitRollsBackAndNeverPublishes) {
  DurableLfm world;
  auto stable = world.lfm.Create(Payload(kPageSize, 3)).MoveValue();
  uint64_t allocated = world.lfm.allocated_pages();
  ASSERT_TRUE(world.lfm.BeginTxn().ok());
  ASSERT_TRUE(world.lfm.Update(stable, Payload(kPageSize, 9)).ok());
  // The log volume dies at the commit sync: the transaction must roll
  // back — staged extent freed, directory untouched, old bytes served.
  world.log_device.InstallFaultPlan(
      FaultPlan::FailAtTransfer(0, FaultDurability::kPersistent));
  ASSERT_TRUE(world.lfm.CommitTxn().IsIOError());
  world.log_device.ClearFault();

  EXPECT_EQ(world.lfm.allocated_pages(), allocated);
  EXPECT_EQ(world.lfm.Read(stable).value(), Payload(kPageSize, 3));
  ASSERT_TRUE(world.lfm.CheckPageAccounting().ok());
  EXPECT_EQ(world.lfm.open_txn(), 0u);  // the transaction is gone
}

TEST(EpochTest, DeleteFailurePublishesNothing) {
  // The Delete fault path: a drop whose WAL sync fails must leave the
  // field fully intact (the PR's audit found the risk of mutating the
  // directory before the log reached the platters — the durable path
  // must stage, never pre-apply).
  DurableLfm world;
  auto id = world.lfm.Create(Payload(2 * kPageSize, 6)).MoveValue();
  uint64_t allocated = world.lfm.allocated_pages();
  world.log_device.InstallFaultPlan(
      FaultPlan::FailAtTransfer(0, FaultDurability::kPersistent));
  ASSERT_TRUE(world.lfm.Delete(id).IsIOError());
  world.log_device.ClearFault();

  EXPECT_EQ(world.lfm.Read(id).value(), Payload(2 * kPageSize, 6));
  EXPECT_EQ(world.lfm.allocated_pages(), allocated);
  EXPECT_EQ(world.lfm.dead_extents(), 0u);
  ASSERT_TRUE(world.lfm.CheckPageAccounting().ok());

  // Transient fault: the retried Delete goes through.
  ASSERT_TRUE(world.lfm.Delete(id).ok());
  EXPECT_TRUE(world.lfm.Read(id).status().IsNotFound());
}

}  // namespace
}  // namespace qbism::storage
