#include "storage/heap_file.h"

#include <map>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qbism::storage {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest()
      : device_(1024), pool_(&device_, 16), allocator_(1024),
        file_(&pool_, &allocator_) {}

  DiskDevice device_;
  BufferPool pool_;
  PageAllocator allocator_;
  HeapFile file_;
};

std::vector<uint8_t> Record(Rng* rng, size_t n) {
  std::vector<uint8_t> r(n);
  for (auto& b : r) b = static_cast<uint8_t>(rng->Next());
  return r;
}

TEST_F(HeapFileTest, InsertReadRoundTrip) {
  Rng rng(1);
  auto r = Record(&rng, 200);
  RecordId rid = file_.Insert(r).MoveValue();
  EXPECT_EQ(file_.Read(rid).value(), r);
}

TEST_F(HeapFileTest, ManyRecordsSpanPages) {
  Rng rng(2);
  std::map<int, std::pair<RecordId, std::vector<uint8_t>>> records;
  for (int i = 0; i < 500; ++i) {
    auto r = Record(&rng, 100 + rng.NextBounded(400));
    auto rid = file_.Insert(r).MoveValue();
    records[i] = {rid, std::move(r)};
  }
  EXPECT_GT(file_.page_count(), 10u);
  for (const auto& [i, pair] : records) {
    EXPECT_EQ(file_.Read(pair.first).value(), pair.second) << i;
  }
}

TEST_F(HeapFileTest, ScanVisitsAllLiveRecordsInOrder) {
  Rng rng(3);
  std::vector<std::vector<uint8_t>> inserted;
  for (int i = 0; i < 120; ++i) {
    auto r = Record(&rng, 150);
    r[0] = static_cast<uint8_t>(i);  // stamp the order
    ASSERT_TRUE(file_.Insert(r).ok());
    inserted.push_back(std::move(r));
  }
  std::vector<std::vector<uint8_t>> seen;
  ASSERT_TRUE(file_
                  .Scan([&](const RecordId&, const std::vector<uint8_t>& r) {
                    seen.push_back(r);
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen, inserted);
}

TEST_F(HeapFileTest, ScanStopsEarlyWhenCallbackReturnsFalse) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(file_.Insert(Record(&rng, 50)).ok());
  int visited = 0;
  ASSERT_TRUE(file_
                  .Scan([&](const RecordId&, const std::vector<uint8_t>&) {
                    return ++visited < 10;
                  })
                  .ok());
  EXPECT_EQ(visited, 10);
}

TEST_F(HeapFileTest, DeleteHidesFromScanAndRead) {
  Rng rng(5);
  auto keep = file_.Insert(Record(&rng, 60)).MoveValue();
  auto victim = file_.Insert(Record(&rng, 60)).MoveValue();
  ASSERT_TRUE(file_.Delete(victim).ok());
  EXPECT_TRUE(file_.Read(keep).ok());
  EXPECT_FALSE(file_.Read(victim).ok());
  int count = 0;
  ASSERT_TRUE(file_
                  .Scan([&](const RecordId&, const std::vector<uint8_t>&) {
                    ++count;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST_F(HeapFileTest, OversizedRecordRejected) {
  std::vector<uint8_t> huge(kPageSize, 1);
  auto result = file_.Insert(huge);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(HeapFileTest, EmptyFileScanIsNoop) {
  int count = 0;
  ASSERT_TRUE(file_
                  .Scan([&](const RecordId&, const std::vector<uint8_t>&) {
                    ++count;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(count, 0);
}

TEST_F(HeapFileTest, SurvivesBufferPoolPressure) {
  // Pool holds 16 pages; write far more, then verify through re-reads.
  Rng rng(6);
  std::vector<std::pair<RecordId, uint8_t>> stamps;
  for (int i = 0; i < 3000; ++i) {
    std::vector<uint8_t> r(120, static_cast<uint8_t>(i % 251));
    stamps.emplace_back(file_.Insert(r).MoveValue(),
                        static_cast<uint8_t>(i % 251));
  }
  ASSERT_TRUE(pool_.FlushAll().ok());
  for (const auto& [rid, stamp] : stamps) {
    auto r = file_.Read(rid);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)[0], stamp);
  }
}

TEST(MultipleHeapFilesTest, ShareAllocatorWithoutCollision) {
  DiskDevice device(256);
  BufferPool pool(&device, 8);
  PageAllocator allocator(256);
  HeapFile a(&pool, &allocator);
  HeapFile b(&pool, &allocator);
  Rng rng(7);
  std::vector<uint8_t> ra(100, 0xAA), rb(100, 0xBB);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(a.Insert(ra).ok());
    ASSERT_TRUE(b.Insert(rb).ok());
  }
  ASSERT_TRUE(a.Scan([&](const RecordId&, const std::vector<uint8_t>& r) {
                 EXPECT_EQ(r[0], 0xAA);
                 return true;
               }).ok());
  ASSERT_TRUE(b.Scan([&](const RecordId&, const std::vector<uint8_t>& r) {
                 EXPECT_EQ(r[0], 0xBB);
                 return true;
               }).ok());
}

}  // namespace
}  // namespace qbism::storage
