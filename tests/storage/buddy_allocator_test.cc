#include "storage/buddy_allocator.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qbism::storage {
namespace {

TEST(BuddyAllocatorTest, ExtentRounding) {
  EXPECT_EQ(BuddyAllocator::ExtentPages(0), 1u);
  EXPECT_EQ(BuddyAllocator::ExtentPages(1), 1u);
  EXPECT_EQ(BuddyAllocator::ExtentPages(2), 2u);
  EXPECT_EQ(BuddyAllocator::ExtentPages(3), 4u);
  EXPECT_EQ(BuddyAllocator::ExtentPages(512), 512u);
  EXPECT_EQ(BuddyAllocator::ExtentPages(513), 1024u);
}

TEST(BuddyAllocatorTest, AllocationsAreAlignedAndDisjoint) {
  BuddyAllocator alloc(256);
  std::set<std::pair<uint64_t, uint64_t>> extents;  // [start, end)
  for (uint64_t request : {1ull, 3ull, 8ull, 5ull, 16ull, 2ull, 32ull}) {
    auto start = alloc.Allocate(request);
    ASSERT_TRUE(start.ok());
    uint64_t extent = BuddyAllocator::ExtentPages(request);
    EXPECT_EQ(start.value() % extent, 0u) << "buddy blocks are aligned";
    for (const auto& [s, e] : extents) {
      EXPECT_TRUE(start.value() >= e || start.value() + extent <= s)
          << "extents overlap";
    }
    extents.insert({start.value(), start.value() + extent});
  }
}

TEST(BuddyAllocatorTest, ExhaustionReported) {
  BuddyAllocator alloc(8);
  EXPECT_TRUE(alloc.Allocate(8).ok());
  EXPECT_FALSE(alloc.Allocate(1).ok());
  EXPECT_TRUE(alloc.Allocate(1).status().IsOutOfRange());
}

TEST(BuddyAllocatorTest, FreeAndCoalesce) {
  BuddyAllocator alloc(16);
  auto a = alloc.Allocate(8).MoveValue();
  auto b = alloc.Allocate(8).MoveValue();
  EXPECT_FALSE(alloc.Allocate(1).ok());  // full
  ASSERT_TRUE(alloc.Free(a, 8).ok());
  ASSERT_TRUE(alloc.Free(b, 8).ok());
  // After coalescing, the full 16-page block is available again.
  auto whole = alloc.Allocate(16);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole.value(), 0u);
}

TEST(BuddyAllocatorTest, SplitThenCoalesceRestoresState) {
  BuddyAllocator alloc(64);
  auto a = alloc.Allocate(1).MoveValue();
  auto b = alloc.Allocate(1).MoveValue();
  ASSERT_TRUE(alloc.Free(a, 1).ok());
  ASSERT_TRUE(alloc.Free(b, 1).ok());
  auto whole = alloc.Allocate(64);
  ASSERT_TRUE(whole.ok());
}

TEST(BuddyAllocatorTest, FreeValidation) {
  BuddyAllocator alloc(16);
  EXPECT_FALSE(alloc.Free(100, 1).ok());   // beyond device
  EXPECT_FALSE(alloc.Free(1, 4).ok());     // misaligned for extent 4
  EXPECT_FALSE(alloc.Free(0, 0).ok());     // zero pages
}

TEST(BuddyAllocatorTest, AllocatedPagesAccounting) {
  BuddyAllocator alloc(64);
  EXPECT_EQ(alloc.allocated_pages(), 0u);
  auto a = alloc.Allocate(3).MoveValue();  // extent 4
  EXPECT_EQ(alloc.allocated_pages(), 4u);
  auto b = alloc.Allocate(16).MoveValue();
  EXPECT_EQ(alloc.allocated_pages(), 20u);
  ASSERT_TRUE(alloc.Free(a, 3).ok());
  EXPECT_EQ(alloc.allocated_pages(), 16u);
  ASSERT_TRUE(alloc.Free(b, 16).ok());
  EXPECT_EQ(alloc.allocated_pages(), 0u);
}

TEST(BuddyAllocatorTest, RandomizedChurnNeverCorrupts) {
  Rng rng(5);
  BuddyAllocator alloc(1024);
  std::vector<std::pair<uint64_t, uint64_t>> live;  // (start, request)
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.NextDouble() < 0.6) {
      uint64_t request = 1 + rng.NextBounded(64);
      auto start = alloc.Allocate(request);
      if (!start.ok()) continue;  // device temporarily full
      uint64_t extent = BuddyAllocator::ExtentPages(request);
      for (const auto& [s, r] : live) {
        uint64_t e = BuddyAllocator::ExtentPages(r);
        ASSERT_TRUE(start.value() >= s + e || start.value() + extent <= s);
      }
      live.emplace_back(start.value(), request);
    } else {
      size_t victim = rng.NextBounded(live.size());
      ASSERT_TRUE(alloc.Free(live[victim].first, live[victim].second).ok());
      live.erase(live.begin() + static_cast<int64_t>(victim));
    }
  }
  // Free everything: the allocator must return to a pristine state.
  for (const auto& [s, r] : live) ASSERT_TRUE(alloc.Free(s, r).ok());
  EXPECT_EQ(alloc.allocated_pages(), 0u);
  EXPECT_TRUE(alloc.Allocate(1024).ok());
}

}  // namespace
}  // namespace qbism::storage
