// WriteAheadLog unit tests: framing, commit durability, withdrawal of
// failed commits, torn-tail detection on reopen, and transaction-id
// monotonicity across restarts.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "storage/disk_device.h"
#include "storage/fault_plan.h"
#include "storage/wal.h"

namespace qbism::storage {
namespace {

std::vector<uint8_t> Payload(size_t bytes, uint8_t fill) {
  return std::vector<uint8_t>(bytes, fill);
}

TEST(WalTest, CommittedRecordsSurviveReopenInLogOrder) {
  DiskDevice device(64);
  WriteAheadLog wal(&device);
  uint64_t txn = wal.BeginTxn();
  ASSERT_TRUE(wal.Append(WalRecordType::kLfmSet, txn, Payload(40, 1)).ok());
  ASSERT_TRUE(wal.Append(WalRecordType::kCatalogRow, txn, Payload(17, 2)).ok());
  ASSERT_TRUE(wal.Commit(txn).ok());

  // Reopen over the same platters, as crash recovery would.
  WriteAheadLog reopened(&device);
  auto scan = reopened.Open().MoveValue();
  EXPECT_EQ(scan.committed_txns, 1u);
  EXPECT_FALSE(scan.torn_tail);
  // Replayable records only: the kCommit marker is bookkeeping, not redo.
  ASSERT_EQ(scan.committed.size(), 2u);
  EXPECT_EQ(scan.committed[0].type, WalRecordType::kLfmSet);
  EXPECT_EQ(scan.committed[0].payload, Payload(40, 1));
  EXPECT_EQ(scan.committed[1].type, WalRecordType::kCatalogRow);
  EXPECT_EQ(scan.committed[1].payload, Payload(17, 2));
  for (const WalRecord& record : scan.committed) {
    EXPECT_EQ(record.txn_id, txn);
  }
}

TEST(WalTest, UncommittedAndAbortedTransactionsAreDiscarded) {
  DiskDevice device(64);
  WriteAheadLog wal(&device);
  uint64_t committed = wal.BeginTxn();
  uint64_t abandoned = wal.BeginTxn();
  uint64_t aborted = wal.BeginTxn();
  // Interleave the three transactions' records in the log.
  ASSERT_TRUE(
      wal.Append(WalRecordType::kLfmSet, abandoned, Payload(8, 9)).ok());
  ASSERT_TRUE(
      wal.Append(WalRecordType::kLfmSet, committed, Payload(8, 1)).ok());
  ASSERT_TRUE(wal.Append(WalRecordType::kLfmDrop, aborted, Payload(8, 7)).ok());
  wal.Abort(aborted);
  ASSERT_TRUE(wal.Commit(committed).ok());
  // `abandoned` never commits and never aborts — a crash mid-flight.
  ASSERT_TRUE(wal.Sync().ok());

  WriteAheadLog reopened(&device);
  auto scan = reopened.Open().MoveValue();
  EXPECT_EQ(scan.committed_txns, 1u);
  for (const WalRecord& record : scan.committed) {
    EXPECT_EQ(record.txn_id, committed);
  }
}

TEST(WalTest, FailedCommitIsWithdrawnForever) {
  DiskDevice device(64);
  WriteAheadLog wal(&device);
  uint64_t txn = wal.BeginTxn();
  ASSERT_TRUE(wal.Append(WalRecordType::kLfmSet, txn, Payload(64, 3)).ok());
  // The device dies on the commit's sync.
  device.InstallFaultPlan(
      FaultPlan::FailAtTransfer(0, FaultDurability::kPersistent));
  ASSERT_TRUE(wal.Commit(txn).IsIOError());
  EXPECT_EQ(wal.stats().failed_commits, 1u);
  device.ClearFault();

  // Later traffic on the same log must not resurrect the withdrawn
  // commit: append and commit a different transaction, then reopen.
  uint64_t later = wal.BeginTxn();
  ASSERT_TRUE(wal.Append(WalRecordType::kLfmSet, later, Payload(8, 4)).ok());
  ASSERT_TRUE(wal.Commit(later).ok());

  WriteAheadLog reopened(&device);
  auto scan = reopened.Open().MoveValue();
  EXPECT_EQ(scan.committed_txns, 1u);
  for (const WalRecord& record : scan.committed) {
    EXPECT_EQ(record.txn_id, later);
  }
}

TEST(WalTest, TornTailIsDetectedAndCommittedPrefixSurvives) {
  DiskDevice device(64);
  WriteAheadLog wal(&device);
  uint64_t first = wal.BeginTxn();
  ASSERT_TRUE(wal.Append(WalRecordType::kLfmSet, first, Payload(24, 5)).ok());
  ASSERT_TRUE(wal.Commit(first).ok());
  uint64_t durable_bytes = wal.stats().durable_bytes;
  uint64_t second = wal.BeginTxn();
  ASSERT_TRUE(
      wal.Append(WalRecordType::kLfmSet, second, Payload(2000, 6)).ok());
  ASSERT_TRUE(wal.Commit(second).ok());

  // Corrupt one byte of the second transaction's frame on the platters
  // (a torn mid-sync write), leaving the first transaction intact.
  std::vector<uint8_t> bytes = device.CloneContents();
  ASSERT_LT(durable_bytes + 16, bytes.size());
  bytes[durable_bytes + 15] ^= 0xFF;
  ASSERT_TRUE(device.RestoreContents(bytes).ok());

  WriteAheadLog reopened(&device);
  auto scan = reopened.Open().MoveValue();
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.committed_txns, 1u);
  EXPECT_EQ(scan.valid_bytes, durable_bytes);
  for (const WalRecord& record : scan.committed) {
    EXPECT_EQ(record.txn_id, first);
  }
}

TEST(WalTest, ReopenPrimesTxnIdsPastEverySeenId) {
  DiskDevice device(64);
  uint64_t last = 0;
  {
    WriteAheadLog wal(&device);
    for (int i = 0; i < 3; ++i) {
      last = wal.BeginTxn();
      ASSERT_TRUE(
          wal.Append(WalRecordType::kLfmSet, last, Payload(8, 1)).ok());
      ASSERT_TRUE(wal.Commit(last).ok());
    }
  }
  WriteAheadLog reopened(&device);
  ASSERT_TRUE(reopened.Open().ok());
  // Ids are never reused, so stale frames of a withdrawn commit can
  // never collide with a live transaction after restart.
  EXPECT_GT(reopened.BeginTxn(), last);
}

TEST(WalTest, FreshDeviceScansEmpty) {
  DiskDevice device(16);
  WriteAheadLog wal(&device);
  auto scan = wal.Open().MoveValue();
  EXPECT_EQ(scan.committed_txns, 0u);
  EXPECT_EQ(scan.total_records, 0u);
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_FALSE(scan.torn_tail);
}

TEST(WalTest, LogFullSurfacesCleanly) {
  DiskDevice device(1);  // a 4 KB log volume
  WriteAheadLog wal(&device);
  uint64_t txn = wal.BeginTxn();
  Status status = Status::OK();
  for (int i = 0; i < 64 && status.ok(); ++i) {
    status = wal.Append(WalRecordType::kLfmSet, txn, Payload(256, 1));
  }
  EXPECT_TRUE(status.IsResourceExhausted());  // ran off the end of the device
}

}  // namespace
}  // namespace qbism::storage
