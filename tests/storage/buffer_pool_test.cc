#include "storage/buffer_pool.h"

#include <cstring>

#include <gtest/gtest.h>

namespace qbism::storage {
namespace {

TEST(BufferPoolTest, MissThenHit) {
  DiskDevice device(16);
  BufferPool pool(&device, 4);
  ASSERT_TRUE(pool.GetPage(2).ok());
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 0u);
  ASSERT_TRUE(pool.GetPage(2).ok());
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(device.stats().pages_read, 1u);
}

TEST(BufferPoolTest, EvictionWritesDirtyPages) {
  DiskDevice device(16);
  BufferPool pool(&device, 2);
  uint8_t* p0 = pool.GetPage(0).MoveValue();
  std::memset(p0, 0xEE, kPageSize);
  ASSERT_TRUE(pool.MarkDirty(0).ok());
  // Fill the pool so page 0 is evicted (LRU).
  ASSERT_TRUE(pool.GetPage(1).ok());
  ASSERT_TRUE(pool.GetPage(2).ok());
  EXPECT_EQ(device.stats().pages_written, 1u);
  // Re-reading page 0 sees the flushed content.
  uint8_t* again = pool.GetPage(0).MoveValue();
  EXPECT_EQ(again[0], 0xEE);
  EXPECT_EQ(again[kPageSize - 1], 0xEE);
}

TEST(BufferPoolTest, CleanEvictionDoesNotWrite) {
  DiskDevice device(16);
  BufferPool pool(&device, 1);
  ASSERT_TRUE(pool.GetPage(0).ok());
  ASSERT_TRUE(pool.GetPage(1).ok());  // evicts clean page 0
  EXPECT_EQ(device.stats().pages_written, 0u);
}

TEST(BufferPoolTest, LruOrderRespected) {
  DiskDevice device(16);
  BufferPool pool(&device, 2);
  ASSERT_TRUE(pool.GetPage(0).ok());
  ASSERT_TRUE(pool.GetPage(1).ok());
  ASSERT_TRUE(pool.GetPage(0).ok());  // touch 0: now 1 is LRU
  ASSERT_TRUE(pool.GetPage(2).ok());  // evicts 1
  device.ResetStats();
  ASSERT_TRUE(pool.GetPage(0).ok());  // still resident
  EXPECT_EQ(device.stats().pages_read, 0u);
  ASSERT_TRUE(pool.GetPage(1).ok());  // was evicted: re-read
  EXPECT_EQ(device.stats().pages_read, 1u);
}

TEST(BufferPoolTest, FlushAllPersistsEverythingDirty) {
  DiskDevice device(16);
  BufferPool pool(&device, 4);
  for (uint64_t p = 0; p < 3; ++p) {
    uint8_t* frame = pool.GetPage(p).MoveValue();
    std::memset(frame, static_cast<int>(p + 1), kPageSize);
    ASSERT_TRUE(pool.MarkDirty(p).ok());
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(device.stats().pages_written, 3u);
  // Direct device read confirms contents.
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(device.ReadPage(2, buf.data()).ok());
  EXPECT_EQ(buf[0], 3);
  // Second flush writes nothing (pages now clean).
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(device.stats().pages_written, 3u);
}

TEST(BufferPoolTest, MarkDirtyUnknownPageFails) {
  DiskDevice device(16);
  BufferPool pool(&device, 2);
  EXPECT_FALSE(pool.MarkDirty(5).ok());
}

TEST(BufferPoolTest, OutOfRangePagePropagatesError) {
  DiskDevice device(4);
  BufferPool pool(&device, 2);
  EXPECT_FALSE(pool.GetPage(100).ok());
}

}  // namespace
}  // namespace qbism::storage
