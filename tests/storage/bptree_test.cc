#include "storage/bptree.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qbism::storage {
namespace {

class BPlusTreeTest : public ::testing::Test {
 protected:
  BPlusTreeTest()
      : device_(1 << 14), pool_(&device_, 64), allocator_(1 << 14),
        tree_(BPlusTree::Create(&pool_, &allocator_).MoveValue()) {}

  DiskDevice device_;
  BufferPool pool_;
  PageAllocator allocator_;
  BPlusTree tree_;
};

RecordId Rid(uint64_t n) { return RecordId{n, static_cast<SlotId>(n % 7)}; }

TEST_F(BPlusTreeTest, EmptyTree) {
  EXPECT_TRUE(tree_.Find(42).value().empty());
  EXPECT_EQ(tree_.Size().value(), 0u);
  EXPECT_EQ(tree_.Height().value(), 1);
}

TEST_F(BPlusTreeTest, SingleInsertFind) {
  ASSERT_TRUE(tree_.Insert(5, Rid(100)).ok());
  auto found = tree_.Find(5).MoveValue();
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], Rid(100));
  EXPECT_TRUE(tree_.Find(4).value().empty());
  EXPECT_TRUE(tree_.Find(6).value().empty());
}

TEST_F(BPlusTreeTest, DuplicateKeys) {
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(tree_.Insert(7, Rid(i)).ok());
  }
  ASSERT_TRUE(tree_.Insert(8, Rid(99)).ok());
  EXPECT_EQ(tree_.Find(7).value().size(), 10u);
  EXPECT_EQ(tree_.Find(8).value().size(), 1u);
  EXPECT_EQ(tree_.Size().value(), 11u);
}

TEST_F(BPlusTreeTest, NegativeAndExtremeKeys) {
  ASSERT_TRUE(tree_.Insert(-1000, Rid(1)).ok());
  ASSERT_TRUE(tree_.Insert(INT64_MIN, Rid(2)).ok());
  ASSERT_TRUE(tree_.Insert(INT64_MAX, Rid(3)).ok());
  ASSERT_TRUE(tree_.Insert(0, Rid(4)).ok());
  EXPECT_EQ(tree_.Find(INT64_MIN).value().size(), 1u);
  EXPECT_EQ(tree_.Find(INT64_MAX).value().size(), 1u);
  auto all = tree_.FindRange(INT64_MIN, INT64_MAX).MoveValue();
  EXPECT_EQ(all.size(), 4u);
}

TEST_F(BPlusTreeTest, SequentialInsertsForceSplits) {
  const int n = 5000;  // leaf capacity is 226: forces height >= 2
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tree_.Insert(i, Rid(static_cast<uint64_t>(i))).ok());
  }
  EXPECT_EQ(tree_.Size().value(), static_cast<uint64_t>(n));
  EXPECT_GE(tree_.Height().value(), 2);
  for (int i = 0; i < n; i += 37) {
    auto found = tree_.Find(i).MoveValue();
    ASSERT_EQ(found.size(), 1u) << i;
    EXPECT_EQ(found[0], Rid(static_cast<uint64_t>(i)));
  }
}

TEST_F(BPlusTreeTest, RandomInsertsMatchReference) {
  Rng rng(99);
  std::multimap<int64_t, uint64_t> reference;
  for (int i = 0; i < 20000; ++i) {
    int64_t key = static_cast<int64_t>(rng.NextBounded(3000)) - 1500;
    reference.emplace(key, static_cast<uint64_t>(i));
    ASSERT_TRUE(tree_.Insert(key, Rid(static_cast<uint64_t>(i))).ok());
  }
  EXPECT_EQ(tree_.Size().value(), reference.size());
  EXPECT_GE(tree_.Height().value(), 2);
  // Point lookups across the key space.
  for (int64_t key = -1500; key <= 1500; key += 111) {
    auto found = tree_.Find(key).MoveValue();
    std::multiset<uint64_t> got;
    for (const RecordId& rid : found) got.insert(rid.page_no);
    std::multiset<uint64_t> expected;
    auto [lo, hi] = reference.equal_range(key);
    for (auto it = lo; it != hi; ++it) expected.insert(it->second);
    EXPECT_EQ(got, expected) << key;
  }
}

TEST_F(BPlusTreeTest, RangeQueries) {
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree_.Insert(i * 2, Rid(static_cast<uint64_t>(i))).ok());
  }
  auto range = tree_.FindRange(100, 200).MoveValue();
  EXPECT_EQ(range.size(), 51u);  // even keys 100..200 inclusive
  EXPECT_TRUE(tree_.FindRange(1999, 1999).value().empty());  // odd: absent
  EXPECT_TRUE(tree_.FindRange(500, 400).value().empty());    // inverted
  EXPECT_EQ(tree_.FindRange(-100, 0).value().size(), 1u);
  EXPECT_EQ(tree_.FindRange(0, 5000).value().size(), 1000u);
}

TEST_F(BPlusTreeTest, ScanInKeyOrder) {
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(
        tree_.Insert(static_cast<int64_t>(rng.NextBounded(100000)),
                     Rid(static_cast<uint64_t>(i)))
            .ok());
  }
  int64_t last = INT64_MIN;
  uint64_t count = 0;
  ASSERT_TRUE(tree_
                  .Scan([&](int64_t key, const RecordId&) {
                    EXPECT_GE(key, last);
                    last = key;
                    ++count;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(count, 3000u);
}

TEST_F(BPlusTreeTest, ScanEarlyStop) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree_.Insert(i, Rid(static_cast<uint64_t>(i))).ok());
  }
  uint64_t visited = 0;
  ASSERT_TRUE(tree_
                  .Scan([&](int64_t, const RecordId&) {
                    return ++visited < 10;
                  })
                  .ok());
  EXPECT_EQ(visited, 10u);
}

TEST_F(BPlusTreeTest, LookupsTouchFewPagesUnderColdPool) {
  const int n = 30000;  // height 3
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tree_.Insert(i, Rid(static_cast<uint64_t>(i))).ok());
  }
  int height = tree_.Height().MoveValue();
  EXPECT_GE(height, 2);
  ASSERT_TRUE(pool_.FlushAll().ok());
  device_.ResetStats();
  // One point lookup reads at most `height` pages from a cold cache
  // (the pool has been churned by the inserts, but the device counter
  // only grows by the miss count).
  uint64_t before = device_.stats().pages_read;
  ASSERT_EQ(tree_.Find(n / 2 + 1).value().size(), 1u);
  uint64_t touched = device_.stats().pages_read - before;
  // Root-to-leaf path plus possibly one neighbouring leaf (the range
  // scan peeks right when the key is a leaf's maximum).
  EXPECT_LE(touched, static_cast<uint64_t>(height) + 1);
}

TEST_F(BPlusTreeTest, SurvivesTinyBufferPool) {
  DiskDevice device(1 << 14);
  BufferPool pool(&device, 3);  // pathological: 3 frames
  PageAllocator allocator(1 << 14);
  BPlusTree tree = BPlusTree::Create(&pool, &allocator).MoveValue();
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(tree.Insert(i % 500, Rid(static_cast<uint64_t>(i))).ok());
  }
  EXPECT_EQ(tree.Size().value(), 4000u);
  EXPECT_EQ(tree.Find(250).value().size(), 8u);
}

}  // namespace
}  // namespace qbism::storage
