#include "storage/long_field.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qbism::storage {
namespace {

std::vector<uint8_t> RandomBytes(Rng* rng, size_t n) {
  std::vector<uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng->Next());
  return bytes;
}

TEST(LongFieldTest, CreateReadRoundTrip) {
  DiskDevice device(64);
  LongFieldManager lfm(&device);
  Rng rng(1);
  auto bytes = RandomBytes(&rng, 10000);
  auto id = lfm.Create(bytes).MoveValue();
  EXPECT_FALSE(id.IsNull());
  EXPECT_EQ(lfm.Size(id).value(), 10000u);
  EXPECT_EQ(lfm.Read(id).value(), bytes);
}

TEST(LongFieldTest, EmptyField) {
  DiskDevice device(16);
  LongFieldManager lfm(&device);
  auto id = lfm.Create({}).MoveValue();
  EXPECT_EQ(lfm.Size(id).value(), 0u);
  EXPECT_TRUE(lfm.Read(id).value().empty());
}

TEST(LongFieldTest, UnknownIdFails) {
  DiskDevice device(16);
  LongFieldManager lfm(&device);
  EXPECT_FALSE(lfm.Read(LongFieldId{99}).ok());
  EXPECT_FALSE(lfm.Size(LongFieldId{99}).ok());
  EXPECT_FALSE(lfm.Delete(LongFieldId{99}).ok());
}

TEST(LongFieldTest, ReadRangeExact) {
  DiskDevice device(64);
  LongFieldManager lfm(&device);
  Rng rng(2);
  auto bytes = RandomBytes(&rng, 3 * kPageSize + 100);
  auto id = lfm.Create(bytes).MoveValue();
  for (auto [offset, length] : std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 10}, {kPageSize - 5, 10}, {kPageSize, kPageSize}, {100, 0},
           {3 * kPageSize, 100}}) {
    auto range = lfm.ReadRange(id, offset, length);
    ASSERT_TRUE(range.ok());
    ASSERT_EQ(range->size(), length);
    for (uint64_t i = 0; i < length; ++i) {
      EXPECT_EQ((*range)[i], bytes[offset + i]);
    }
  }
  EXPECT_FALSE(lfm.ReadRange(id, bytes.size() - 5, 10).ok());
}

TEST(LongFieldTest, ReadRangeTouchesOnlyCoveringPages) {
  DiskDevice device(64);
  LongFieldManager lfm(&device);
  std::vector<uint8_t> bytes(10 * kPageSize, 7);
  auto id = lfm.Create(bytes).MoveValue();
  device.ResetStats();
  ASSERT_TRUE(lfm.ReadRange(id, 2 * kPageSize + 1, kPageSize).ok());
  // The range spans pages 2 and 3 only.
  EXPECT_EQ(device.stats().pages_read, 2u);
}

TEST(LongFieldTest, ReadRangesDedupesPagesAcrossRanges) {
  DiskDevice device(64);
  LongFieldManager lfm(&device);
  Rng rng(3);
  auto bytes = RandomBytes(&rng, 8 * kPageSize);
  auto id = lfm.Create(bytes).MoveValue();
  device.ResetStats();
  // Three ranges inside the same page + one in another page.
  std::vector<ByteRange> ranges{{10, 50}, {100, 20}, {2000, 100},
                                {5 * kPageSize + 3, 10}};
  auto buffers = lfm.ReadRanges(id, ranges).MoveValue();
  EXPECT_EQ(device.stats().pages_read, 2u);  // page 0 and page 5 only
  ASSERT_EQ(buffers.size(), 4u);
  for (size_t r = 0; r < ranges.size(); ++r) {
    ASSERT_EQ(buffers[r].size(), ranges[r].length);
    for (uint64_t i = 0; i < ranges[r].length; ++i) {
      EXPECT_EQ(buffers[r][i], bytes[ranges[r].offset + i]);
    }
  }
  EXPECT_EQ(lfm.PagesTouched(id, ranges).value(), 2u);
}

TEST(LongFieldTest, ReadRangesCoalescesSequentialPages) {
  DiskDevice device(1024);
  LongFieldManager lfm(&device);
  std::vector<uint8_t> bytes(100 * kPageSize, 9);
  auto id = lfm.Create(bytes).MoveValue();
  device.ResetStats();
  // One big contiguous range: must be a single sequential transfer.
  ASSERT_TRUE(lfm.ReadRanges(id, {{0, 50 * kPageSize}}).ok());
  EXPECT_EQ(device.stats().pages_read, 50u);
  EXPECT_EQ(device.stats().seeks, 1u);
}

TEST(LongFieldTest, CrossingRangeBoundariesAssemblesCorrectly) {
  DiskDevice device(64);
  LongFieldManager lfm(&device);
  Rng rng(4);
  auto bytes = RandomBytes(&rng, 4 * kPageSize);
  auto id = lfm.Create(bytes).MoveValue();
  // Range spanning three pages.
  auto buffers =
      lfm.ReadRanges(id, {{kPageSize / 2, 2 * kPageSize}}).MoveValue();
  ASSERT_EQ(buffers[0].size(), 2 * kPageSize);
  for (uint64_t i = 0; i < buffers[0].size(); ++i) {
    ASSERT_EQ(buffers[0][i], bytes[kPageSize / 2 + i]);
  }
}

TEST(LongFieldTest, DeleteFreesSpaceForReuse) {
  DiskDevice device(16);
  LongFieldManager lfm(&device);
  std::vector<uint8_t> big(12 * kPageSize, 1);
  auto id = lfm.Create(big).MoveValue();
  // Device has 16 pages; 12 rounds to 16, so it is now full.
  EXPECT_FALSE(lfm.Create(big).ok());
  ASSERT_TRUE(lfm.Delete(id).ok());
  EXPECT_TRUE(lfm.Create(big).ok());
  EXPECT_FALSE(lfm.Read(id).ok());
}

TEST(LongFieldTest, UpdateInPlaceAndRealloc) {
  DiskDevice device(64);
  LongFieldManager lfm(&device);
  Rng rng(5);
  auto id = lfm.Create(RandomBytes(&rng, 100)).MoveValue();
  auto small = RandomBytes(&rng, 200);  // still one page: in place
  ASSERT_TRUE(lfm.Update(id, small).ok());
  EXPECT_EQ(lfm.Read(id).value(), small);
  auto large = RandomBytes(&rng, 3 * kPageSize);  // reallocates
  ASSERT_TRUE(lfm.Update(id, large).ok());
  EXPECT_EQ(lfm.Read(id).value(), large);
  EXPECT_FALSE(lfm.Update(LongFieldId{999}, small).ok());
}

TEST(LongFieldTest, BuddyContiguityMakesVolumeReadsSequential) {
  // A 2 MB "volume" long field must occupy contiguous pages, so a full
  // read is one seek + 512 sequential transfers (the paper's full-study
  // I/O profile: 513 I/Os including the relational lookup).
  DiskDevice device(1024);
  LongFieldManager lfm(&device);
  std::vector<uint8_t> volume(512 * kPageSize, 42);
  auto id = lfm.Create(volume).MoveValue();
  device.ResetStats();
  ASSERT_TRUE(lfm.Read(id).ok());
  EXPECT_EQ(device.stats().pages_read, 512u);
  EXPECT_EQ(device.stats().seeks, 1u);
}

TEST(LongFieldTest, ManyFieldsIndependent) {
  DiskDevice device(256);
  LongFieldManager lfm(&device);
  Rng rng(6);
  std::vector<std::pair<LongFieldId, std::vector<uint8_t>>> fields;
  for (int i = 0; i < 20; ++i) {
    auto bytes = RandomBytes(&rng, 1 + rng.NextBounded(3 * kPageSize));
    auto id = lfm.Create(bytes).MoveValue();
    fields.emplace_back(id, std::move(bytes));
  }
  for (const auto& [id, bytes] : fields) {
    EXPECT_EQ(lfm.Read(id).value(), bytes);
  }
}

}  // namespace
}  // namespace qbism::storage
