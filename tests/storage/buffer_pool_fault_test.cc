// BufferPool error paths: a failed miss-read must not cache a ghost
// frame, a failed eviction write-back must keep the dirty victim, and
// a failed FlushAll must remain retryable.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_device.h"

namespace qbism::storage {
namespace {

TEST(BufferPoolFaultTest, MissReadFailureCachesNothing) {
  DiskDevice device(16);
  BufferPool pool(&device, 4);
  device.InstallFaultPlan(FaultPlan::FailAtTransfer(0));
  EXPECT_TRUE(pool.GetPage(3).status().IsIOError());
  EXPECT_EQ(pool.misses(), 1u);
  // No ghost frame: the retry is a fresh miss that goes to the device,
  // not a hit on a frame full of garbage.
  EXPECT_TRUE(pool.GetPage(3).ok());
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 2u);
  EXPECT_TRUE(pool.GetPage(3).ok());  // now it is resident
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPoolFaultTest, EvictionWriteBackFailureKeepsDirtyVictim) {
  DiskDevice device(16);
  BufferPool pool(&device, 1);
  uint8_t* frame = pool.GetPage(0).MoveValue();
  std::memset(frame, 0xAB, kPageSize);
  ASSERT_TRUE(pool.MarkDirty(0).ok());

  device.InstallFaultPlan(FaultPlan::FailAtTransfer(0));
  EXPECT_TRUE(pool.GetPage(1).status().IsIOError());  // write-back died
  // The victim survived, still resident and still dirty: its data was
  // not dropped on the floor.
  EXPECT_TRUE(pool.MarkDirty(0).ok());  // resident => not NotFound
  uint64_t hits_before = pool.hits();
  EXPECT_TRUE(pool.GetPage(0).ok());
  EXPECT_EQ(pool.hits(), hits_before + 1);

  // The transient fault passed: eviction now writes the page back.
  EXPECT_TRUE(pool.GetPage(1).ok());
  std::vector<uint8_t> on_disk(kPageSize);
  ASSERT_TRUE(device.ReadPage(0, on_disk.data()).ok());
  EXPECT_EQ(on_disk[0], 0xAB);
  EXPECT_EQ(on_disk[kPageSize - 1], 0xAB);
}

TEST(BufferPoolFaultTest, CleanEvictionNeedsNoWriteBack) {
  DiskDevice device(16);
  BufferPool pool(&device, 1);
  ASSERT_TRUE(pool.GetPage(0).ok());  // never dirtied
  device.InstallFaultPlan(
      FaultPlan::FailAtTransfer(0, FaultDurability::kPersistent));
  // Evicting a clean page performs no write, so the only transfer is
  // the new page's read — which the persistent fault kills.
  EXPECT_TRUE(pool.GetPage(1).status().IsIOError());
  device.ClearFault();
  EXPECT_TRUE(pool.GetPage(1).ok());
}

TEST(BufferPoolFaultTest, FlushAllFailureIsRetryable) {
  DiskDevice device(16);
  BufferPool pool(&device, 4);
  for (uint64_t p = 0; p < 3; ++p) {
    uint8_t* frame = pool.GetPage(p).MoveValue();
    std::memset(frame, static_cast<int>(0x10 + p), kPageSize);
    ASSERT_TRUE(pool.MarkDirty(p).ok());
  }
  // Fail the second write-back: the first page flushed, the rest stay
  // dirty, and the retry completes the job.
  device.InstallFaultPlan(FaultPlan::FailAtTransfer(1));
  EXPECT_TRUE(pool.FlushAll().IsIOError());
  EXPECT_TRUE(pool.FlushAll().ok());
  for (uint64_t p = 0; p < 3; ++p) {
    std::vector<uint8_t> on_disk(kPageSize);
    ASSERT_TRUE(device.ReadPage(p, on_disk.data()).ok());
    EXPECT_EQ(on_disk[0], 0x10 + p);
  }
}

TEST(BufferPoolFaultTest, MarkDirtyOnNonResidentPageIsNotFound) {
  DiskDevice device(16);
  BufferPool pool(&device, 4);
  EXPECT_TRUE(pool.MarkDirty(7).IsNotFound());
  ASSERT_TRUE(pool.GetPage(7).ok());
  EXPECT_TRUE(pool.MarkDirty(7).ok());
}

TEST(BufferPoolFaultTest, OutOfRangePageSurfacesDeviceError) {
  DiskDevice device(4);
  BufferPool pool(&device, 2);
  EXPECT_TRUE(pool.GetPage(99).status().IsOutOfRange());
  // The failed miss left no frame behind.
  EXPECT_TRUE(pool.MarkDirty(99).IsNotFound());
}

}  // namespace
}  // namespace qbism::storage
