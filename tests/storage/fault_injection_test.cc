// Failure injection: every storage and SQL layer must surface injected
// disk faults as IOError statuses instead of crashing or corrupting.

#include <gtest/gtest.h>

#include "sql/database.h"
#include "storage/bptree.h"
#include "storage/long_field.h"

namespace qbism::storage {
namespace {

TEST(FaultInjectionTest, DeviceFailsExactlyAfterBudget) {
  DiskDevice device(16);
  std::vector<uint8_t> buf(kPageSize);
  device.FailAfter(2);
  EXPECT_TRUE(device.ReadPage(0, buf.data()).ok());
  EXPECT_TRUE(device.WritePage(1, buf.data()).ok());
  EXPECT_TRUE(device.ReadPage(2, buf.data()).IsIOError());
  EXPECT_TRUE(device.WritePage(3, buf.data()).IsIOError());
  device.ClearFault();
  EXPECT_TRUE(device.ReadPage(2, buf.data()).ok());
}

TEST(FaultInjectionTest, MultiPageTransferChargedAsWhole) {
  DiskDevice device(16);
  std::vector<uint8_t> buf(4 * kPageSize);
  device.FailAfter(3);
  // A 4-page transfer exceeds the remaining budget: fails atomically.
  EXPECT_TRUE(device.ReadPages(0, 4, buf.data()).IsIOError());
  // A 3-page transfer fits.
  EXPECT_TRUE(device.ReadPages(0, 3, buf.data()).ok());
}

TEST(FaultInjectionTest, LongFieldManagerPropagates) {
  DiskDevice device(64);
  LongFieldManager lfm(&device);
  std::vector<uint8_t> payload(3 * kPageSize, 7);
  auto id = lfm.Create(payload).MoveValue();
  device.FailAfter(1);
  EXPECT_TRUE(lfm.Read(id).status().IsIOError());
  device.ClearFault();
  EXPECT_EQ(lfm.Read(id).value(), payload);
  // Creation under fault reports the error too.
  device.FailAfter(0);
  EXPECT_TRUE(lfm.Create(payload).status().IsIOError());
}

TEST(FaultInjectionTest, BufferPoolEvictionFaultSurfaces) {
  DiskDevice device(16);
  BufferPool pool(&device, 1);
  uint8_t* frame = pool.GetPage(0).MoveValue();
  frame[0] = 1;
  ASSERT_TRUE(pool.MarkDirty(0).ok());
  device.FailAfter(0);
  // Fetching another page forces eviction of the dirty frame: the
  // write-back fault must surface.
  EXPECT_TRUE(pool.GetPage(1).status().IsIOError());
}

TEST(FaultInjectionTest, BPlusTreeInsertPropagates) {
  DiskDevice device(1 << 12);
  BufferPool pool(&device, 4);
  PageAllocator allocator(1 << 12);
  BPlusTree tree = BPlusTree::Create(&pool, &allocator).MoveValue();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert(i, RecordId{static_cast<uint64_t>(i), 0}).ok());
  }
  device.FailAfter(0);
  bool failed = false;
  for (int i = 1000; i < 1100 && !failed; ++i) {
    failed = tree.Insert(i, RecordId{static_cast<uint64_t>(i), 0}).IsIOError();
  }
  EXPECT_TRUE(failed);
  device.ClearFault();
  EXPECT_TRUE(tree.Find(500).ok());
}

TEST(FaultInjectionTest, SqlQuerySurfacesDiskErrors) {
  sql::DatabaseOptions options;
  options.buffer_pool_pages = 4;  // force the scan to the device
  sql::Database db(options);
  ASSERT_TRUE(db.Execute("create table t (x int)").ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(db.Insert("t", {sql::Value::Int(i)}).ok());
  }
  ASSERT_TRUE(db.buffer_pool()->FlushAll().ok());
  // Tiny fault budget: the scan's page misses must hit it. The pool may
  // hold some pages, so allow a few successful reads first.
  db.relational_device()->FailAfter(2);
  auto result = db.Execute("select count(*) from t");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
  db.relational_device()->ClearFault();
  auto retry = db.Execute("select count(*) from t");
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->rows[0][0].AsInt().value(), 2000);
}

}  // namespace
}  // namespace qbism::storage
