// LongFieldManager error paths: a failed Create/Update must not leak
// buddy-allocator pages or corrupt the field directory, range checks
// must not wrap on huge offsets, and empty fields are legal.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "storage/disk_device.h"
#include "storage/long_field.h"

namespace qbism::storage {
namespace {

std::vector<uint8_t> Payload(uint64_t bytes, uint8_t fill) {
  return std::vector<uint8_t>(bytes, fill);
}

TEST(LongFieldFaultTest, CreateFailureLeaksNoPages) {
  DiskDevice device(64);
  LongFieldManager lfm(&device);
  auto first = lfm.Create(Payload(3 * kPageSize, 1)).MoveValue();
  ASSERT_EQ(lfm.allocated_pages(), 4u);  // 3 pages round to a 4-page extent

  device.InstallFaultPlan(FaultPlan::FailAtTransfer(0));
  EXPECT_TRUE(lfm.Create(Payload(2 * kPageSize, 2)).status().IsIOError());
  EXPECT_EQ(lfm.allocated_pages(), 4u);  // the failed extent came back
  ASSERT_TRUE(lfm.CheckPageAccounting().ok());

  // Transient fault: the retried Create succeeds and reuses the extent.
  auto second = lfm.Create(Payload(2 * kPageSize, 2)).MoveValue();
  EXPECT_EQ(lfm.allocated_pages(), 6u);
  ASSERT_TRUE(lfm.CheckPageAccounting().ok());
  EXPECT_EQ(lfm.Read(first).value(), Payload(3 * kPageSize, 1));
  EXPECT_EQ(lfm.Read(second).value(), Payload(2 * kPageSize, 2));
}

TEST(LongFieldFaultTest, CreateEmptyFieldIsLegal) {
  DiskDevice device(16);
  LongFieldManager lfm(&device);
  auto id = lfm.Create({}).MoveValue();  // must not memcpy from nullptr
  EXPECT_EQ(lfm.Size(id).value(), 0u);
  EXPECT_TRUE(lfm.Read(id).value().empty());
  EXPECT_TRUE(lfm.ReadRange(id, 0, 0).value().empty());
  EXPECT_EQ(lfm.allocated_pages(), 1u);  // minimum one-page extent
  ASSERT_TRUE(lfm.CheckPageAccounting().ok());
  ASSERT_TRUE(lfm.Update(id, {}).ok());  // in-place empty update too
  EXPECT_TRUE(lfm.Delete(id).ok());
  EXPECT_EQ(lfm.allocated_pages(), 0u);
}

TEST(LongFieldFaultTest, UpdateInPlaceFailureKeepsOldContent) {
  DiskDevice device(16);
  LongFieldManager lfm(&device);
  auto id = lfm.Create(Payload(kPageSize, 1)).MoveValue();
  device.InstallFaultPlan(FaultPlan::FailAtTransfer(0));
  // Same one-page extent: the in-place path.
  EXPECT_TRUE(lfm.Update(id, Payload(100, 2)).IsIOError());
  EXPECT_EQ(lfm.Size(id).value(), kPageSize);  // entry untouched
  EXPECT_EQ(lfm.Read(id).value(), Payload(kPageSize, 1));
  ASSERT_TRUE(lfm.CheckPageAccounting().ok());
}

TEST(LongFieldFaultTest, UpdateReallocFailureLeaksNothing) {
  DiskDevice device(64);
  LongFieldManager lfm(&device);
  auto id = lfm.Create(Payload(kPageSize, 3)).MoveValue();
  ASSERT_EQ(lfm.allocated_pages(), 1u);

  device.InstallFaultPlan(FaultPlan::FailAtTransfer(0));
  // Growing to two pages reallocates; the fault hits the new extent's
  // write. Neither the new extent may leak nor the old one vanish.
  EXPECT_TRUE(lfm.Update(id, Payload(2 * kPageSize, 4)).IsIOError());
  EXPECT_EQ(lfm.allocated_pages(), 1u);
  EXPECT_EQ(lfm.Read(id).value(), Payload(kPageSize, 3));
  ASSERT_TRUE(lfm.CheckPageAccounting().ok());

  // The fault was transient: the retry lands the new content.
  ASSERT_TRUE(lfm.Update(id, Payload(2 * kPageSize, 4)).ok());
  EXPECT_EQ(lfm.allocated_pages(), 2u);
  EXPECT_EQ(lfm.Read(id).value(), Payload(2 * kPageSize, 4));
  ASSERT_TRUE(lfm.CheckPageAccounting().ok());
}

TEST(LongFieldFaultTest, UpdateReallocFreesOldExtent) {
  DiskDevice device(64);
  LongFieldManager lfm(&device);
  auto id = lfm.Create(Payload(4 * kPageSize, 5)).MoveValue();
  ASSERT_EQ(lfm.allocated_pages(), 4u);
  ASSERT_TRUE(lfm.Update(id, Payload(100, 6)).ok());
  EXPECT_EQ(lfm.allocated_pages(), 1u);  // shrink returned the 4-page extent
  EXPECT_EQ(lfm.Read(id).value(), Payload(100, 6));
  ASSERT_TRUE(lfm.CheckPageAccounting().ok());
}

TEST(LongFieldFaultTest, ReadRangeHugeOffsetDoesNotWrap) {
  DiskDevice device(16);
  LongFieldManager lfm(&device);
  auto id = lfm.Create(Payload(2 * kPageSize, 7)).MoveValue();
  // offset + length wraps uint64_t to a small in-bounds value; the
  // bounds check must reject it rather than read garbage.
  uint64_t huge = std::numeric_limits<uint64_t>::max() - 4;
  EXPECT_TRUE(lfm.ReadRange(id, huge, 16).status().IsOutOfRange());
  EXPECT_TRUE(lfm.ReadRange(id, huge, huge).status().IsOutOfRange());
  // Ordinary past-end reads still fail, boundary reads still work.
  EXPECT_TRUE(lfm.ReadRange(id, 2 * kPageSize, 1).status().IsOutOfRange());
  EXPECT_TRUE(lfm.ReadRange(id, 2 * kPageSize, 0).value().empty());
  EXPECT_EQ(lfm.ReadRange(id, kPageSize, kPageSize).value(),
            Payload(kPageSize, 7));
}

TEST(LongFieldFaultTest, ReadRangesHugeOffsetRejectedBeforeAnyTransfer) {
  DiskDevice device(16);
  LongFieldManager lfm(&device);
  auto id = lfm.Create(Payload(2 * kPageSize, 8)).MoveValue();
  FaultStats before = device.fault_stats();
  uint64_t huge = std::numeric_limits<uint64_t>::max() - 2;
  std::vector<ByteRange> ranges = {{0, 4}, {huge, 8}};
  EXPECT_TRUE(lfm.ReadRanges(id, ranges).status().IsOutOfRange());
  // Validation runs before any I/O: the good first range must not have
  // been fetched already when the bad one is discovered.
  EXPECT_EQ((device.fault_stats() - before).transfers, 0u);
}

TEST(LongFieldFaultTest, ReadFaultLeavesAccountingClean) {
  DiskDevice device(64);
  LongFieldManager lfm(&device);
  auto id = lfm.Create(Payload(3 * kPageSize, 9)).MoveValue();
  uint64_t allocated = lfm.allocated_pages();
  device.InstallFaultPlan(FaultPlan::FailAtTransfer(0));
  EXPECT_TRUE(lfm.Read(id).status().IsIOError());
  EXPECT_EQ(lfm.allocated_pages(), allocated);
  ASSERT_TRUE(lfm.CheckPageAccounting().ok());
  EXPECT_EQ(lfm.Read(id).value(), Payload(3 * kPageSize, 9));
}

TEST(LongFieldFaultTest, UnknownIdsAreNotFound) {
  DiskDevice device(16);
  LongFieldManager lfm(&device);
  LongFieldId bogus{42};
  EXPECT_TRUE(lfm.Size(bogus).status().IsNotFound());
  EXPECT_TRUE(lfm.Read(bogus).status().IsNotFound());
  EXPECT_TRUE(lfm.ReadRange(bogus, 0, 1).status().IsNotFound());
  EXPECT_TRUE(lfm.ReadRanges(bogus, {{0, 1}}).status().IsNotFound());
  EXPECT_TRUE(lfm.Update(bogus, Payload(8, 0)).IsNotFound());
  EXPECT_TRUE(lfm.Delete(bogus).IsNotFound());
}

TEST(LongFieldFaultTest, DeleteReturnsPagesToAllocator) {
  DiskDevice device(64);
  LongFieldManager lfm(&device);
  auto a = lfm.Create(Payload(4 * kPageSize, 1)).MoveValue();
  auto b = lfm.Create(Payload(kPageSize, 2)).MoveValue();
  ASSERT_EQ(lfm.allocated_pages(), 5u);
  ASSERT_TRUE(lfm.Delete(a).ok());
  EXPECT_EQ(lfm.allocated_pages(), 1u);
  ASSERT_TRUE(lfm.CheckPageAccounting().ok());
  EXPECT_EQ(lfm.Read(b).value(), Payload(kPageSize, 2));
}

TEST(LongFieldFaultTest, AllocatorExhaustionSurfacesCleanly) {
  DiskDevice device(4);
  LongFieldManager lfm(&device);
  auto id = lfm.Create(Payload(4 * kPageSize, 1)).MoveValue();
  // The device is full: the next Create must fail without touching the
  // existing field or the accounting.
  EXPECT_FALSE(lfm.Create(Payload(kPageSize, 2)).ok());
  EXPECT_EQ(lfm.allocated_pages(), 4u);
  ASSERT_TRUE(lfm.CheckPageAccounting().ok());
  EXPECT_EQ(lfm.Read(id).value(), Payload(4 * kPageSize, 1));
}

}  // namespace
}  // namespace qbism::storage
