#include "med/loader.h"

#include <gtest/gtest.h>

#include "med/phantom.h"
#include "med/schema.h"
#include "viz/mesh.h"

namespace qbism::med {
namespace {

/// Shared fixture: load a scaled-down corpus once for all tests.
class LoaderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new sql::Database();
    auto ext = SpatialExtension::Install(db_, SpatialConfig{});
    ASSERT_TRUE(ext.ok());
    ext_ = ext.MoveValue().release();
    ASSERT_TRUE(BootstrapSchema(db_).ok());
    LoadOptions options;
    options.num_pet_studies = 2;
    options.num_mri_studies = 1;
    options.seed = 7;
    auto dataset = PopulateDatabase(ext_, options);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    dataset_ = new LoadedDataset(dataset.MoveValue());
  }

  static void TearDownTestSuite() {
    delete dataset_;
    delete ext_;
    delete db_;
  }

  static sql::Database* db_;
  static SpatialExtension* ext_;
  static LoadedDataset* dataset_;
};

sql::Database* LoaderTest::db_ = nullptr;
SpatialExtension* LoaderTest::ext_ = nullptr;
LoadedDataset* LoaderTest::dataset_ = nullptr;

TEST_F(LoaderTest, DatasetHandles) {
  EXPECT_EQ(dataset_->pet_study_ids.size(), 2u);
  EXPECT_EQ(dataset_->mri_study_ids.size(), 1u);
  EXPECT_EQ(dataset_->structure_names.size(), 11u);
  EXPECT_EQ(dataset_->pet_study_ids[0], 53);  // the paper's example id
}

TEST_F(LoaderTest, SchemaTablesExist) {
  for (const char* table :
       {"atlas", "neuralSystem", "neuralStructure", "atlasStructure",
        "patient", "rawVolume", "warpedVolume", "intensityBand"}) {
    EXPECT_TRUE(db_->catalog()->HasTable(table)) << table;
  }
}

TEST_F(LoaderTest, AtlasRowDescribesCoordinateSpace) {
  auto result = db_->Execute(
      "select n, dx, dy, dz from atlas where atlasName = 'Talairach'");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt().value(), 128);
  EXPECT_GT(result->rows[0][1].AsDouble().value(), 0.0);
}

TEST_F(LoaderTest, StructureRegionsLoadBack) {
  auto result = db_->Execute(
      "select ast.region from atlasStructure ast, neuralStructure ns "
      "where ast.structureId = ns.structureId and"
      " ns.structureName = 'ntal'");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  auto field = result->rows[0][0].AsLongField().MoveValue();
  auto region = ext_->LoadRegion(field);
  ASSERT_TRUE(region.ok());
  EXPECT_GT(region->VoxelCount(), 5000u);
}

TEST_F(LoaderTest, MeshesStoredForStructures) {
  auto result = db_->Execute("select mesh from atlasStructure");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 11u);
  for (const auto& row : result->rows) {
    auto field = row[0].AsLongField().MoveValue();
    EXPECT_FALSE(field.IsNull());
    auto bytes = db_->lfm()->Read(field);
    ASSERT_TRUE(bytes.ok());
    auto mesh = viz::TriangleMesh::Deserialize(bytes.value());
    ASSERT_TRUE(mesh.ok());
    EXPECT_GT(mesh->TriangleCount(), 0u);
  }
}

TEST_F(LoaderTest, WarpedVolumesAreFullGrids) {
  auto result = db_->Execute(
      "select wv.data from warpedVolume wv where wv.studyId = 53");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  auto field = result->rows[0][0].AsLongField().MoveValue();
  EXPECT_EQ(db_->lfm()->Size(field).value(), uint64_t{128} * 128 * 128);
  auto volume = ext_->LoadVolume(field);
  ASSERT_TRUE(volume.ok());
  // The warped PET must have signal near the atlas center.
  int center = volume->ValueAt({64, 64, 64}).value();
  EXPECT_GT(center, 0);
}

TEST_F(LoaderTest, EightBandsPerStudyPartitioning) {
  auto result = db_->Execute(
      "select ib.lo, ib.hi, ib.region from intensityBand ib "
      "where ib.studyId = 53");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 8u);  // 8 bands of width 32
  uint64_t total = 0;
  for (const auto& row : result->rows) {
    int64_t lo = row[0].AsInt().value();
    int64_t hi = row[1].AsInt().value();
    EXPECT_EQ(hi - lo + 1, 32);
    auto region = ext_->LoadRegion(row[2].AsLongField().MoveValue());
    ASSERT_TRUE(region.ok());
    total += region->VoxelCount();
  }
  EXPECT_EQ(total, uint64_t{128} * 128 * 128);  // bands partition the grid
}

TEST_F(LoaderTest, BandsMatchVolumeContents) {
  auto volume_result = db_->Execute(
      "select wv.data from warpedVolume wv where wv.studyId = 54");
  ASSERT_TRUE(volume_result.ok());
  auto volume = ext_->LoadVolume(
      volume_result->rows[0][0].AsLongField().MoveValue());
  ASSERT_TRUE(volume.ok());

  auto band_result = db_->Execute(
      "select ib.region from intensityBand ib where ib.studyId = 54 and"
      " ib.lo = 32 and ib.hi = 63");
  ASSERT_TRUE(band_result.ok());
  ASSERT_EQ(band_result->rows.size(), 1u);
  auto band = ext_->LoadRegion(
      band_result->rows[0][0].AsLongField().MoveValue());
  ASSERT_TRUE(band.ok());
  EXPECT_EQ(*band, volume->BandRegion(32, 63));
}

TEST_F(LoaderTest, RawVolumesRecorded) {
  auto result = db_->Execute(
      "select modality, nx, ny, nz from rawVolume where studyId = 80");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsString().value(), "MRI");
  EXPECT_EQ(result->rows[0][1].AsInt().value(), 512);
  EXPECT_EQ(result->rows[0][3].AsInt().value(), 44);
}

TEST_F(LoaderTest, PatientsJoinToStudies) {
  auto result = db_->Execute(
      "select p.name, p.age from patient p, rawVolume rv "
      "where rv.patientId = p.patientId and rv.studyId = 53");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_GT(result->rows[0][1].AsInt().value(), 0);
}

TEST_F(LoaderTest, LoadRawVolumeRestoresPatientSpaceData) {
  auto raw = LoadRawVolume(ext_, 53);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_EQ(raw->nx(), 128);
  EXPECT_EQ(raw->ny(), 128);
  EXPECT_EQ(raw->nz(), 51);
  // Must equal the generator's output bit-for-bit (seed 7 + index 0).
  auto regenerated = GeneratePetStudy(7);
  EXPECT_EQ(raw->data(), regenerated.data());
  EXPECT_TRUE(LoadRawVolume(ext_, 999).status().IsNotFound());
}

TEST_F(LoaderTest, RewarpFromRawMatchesStoredWarpedVolume) {
  auto rewarped = RewarpFromRaw(ext_, 53);
  ASSERT_TRUE(rewarped.ok()) << rewarped.status().ToString();
  EXPECT_EQ(rewarped->grid(), ext_->config().grid);
}

TEST_F(LoaderTest, WarpParametersStored) {
  auto result = db_->Execute(
      "select m00, m11, m22, tx from warpedVolume where studyId = 53");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  // The diagonal should be near the scale factors (128->128, 128->51).
  EXPECT_NEAR(result->rows[0][0].AsDouble().value(), 1.0, 0.2);
  EXPECT_NEAR(result->rows[0][2].AsDouble().value(), 51.0 / 128.0, 0.1);
}

}  // namespace
}  // namespace qbism::med
