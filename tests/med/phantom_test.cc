#include "med/phantom.h"

#include <set>

#include <gtest/gtest.h>

#include "region/region.h"

namespace qbism::med {
namespace {

using curve::CurveKind;
using region::GridSpec;
using region::Region;

TEST(PhantomTest, ElevenStructuresWithUniqueNames) {
  auto structures = StandardAtlasStructures();
  ASSERT_EQ(structures.size(), 11u);  // paper: 11 Talairach structures
  std::set<std::string> names;
  std::vector<std::string> system_list = StandardNeuralSystems();
  std::set<std::string> systems(system_list.begin(), system_list.end());
  for (const auto& s : structures) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    EXPECT_TRUE(systems.count(s.system)) << s.name << " has unknown system";
    ASSERT_NE(s.shape, nullptr);
  }
  EXPECT_TRUE(names.count("ntal"));
  EXPECT_TRUE(names.count("ntal1"));
  EXPECT_TRUE(names.count("putamen"));  // the §3.4 example structure
}

TEST(PhantomTest, NtalSizesNearPaper) {
  // Table 3: ntal = 16,016 voxels, ntal1 = 162,628 voxels on 128^3.
  // Phantoms should be within ~35% of those counts.
  const GridSpec grid{3, 7};
  for (const auto& s : StandardAtlasStructures()) {
    if (s.name == "ntal") {
      Region r = Region::FromShape(grid, CurveKind::kHilbert, *s.shape);
      EXPECT_GT(r.VoxelCount(), 10000u);
      EXPECT_LT(r.VoxelCount(), 22000u);
    }
    if (s.name == "ntal1") {
      Region r = Region::FromShape(grid, CurveKind::kHilbert, *s.shape);
      EXPECT_GT(r.VoxelCount(), 120000u);
      EXPECT_LT(r.VoxelCount(), 220000u);
    }
  }
}

TEST(PhantomTest, StructuresFitTheAtlasGrid) {
  const GridSpec grid{3, 7};
  for (const auto& s : StandardAtlasStructures()) {
    Region r = Region::FromShape(grid, CurveKind::kHilbert, *s.shape);
    EXPECT_FALSE(r.Empty()) << s.name;
    // Nothing touches the grid boundary (structures live inside the head).
    EXPECT_FALSE(r.ContainsPoint({0, 0, 0})) << s.name;
    EXPECT_FALSE(r.ContainsPoint({127, 127, 127})) << s.name;
  }
}

TEST(PhantomTest, PetStudyShapeAndDeterminism) {
  auto a = GeneratePetStudy(7);
  EXPECT_EQ(a.nx(), 128);
  EXPECT_EQ(a.ny(), 128);
  EXPECT_EQ(a.nz(), 51);  // paper: 51 slices of 128x128
  auto b = GeneratePetStudy(7);
  EXPECT_EQ(a.data(), b.data());
  auto c = GeneratePetStudy(8);
  EXPECT_NE(a.data(), c.data());
}

TEST(PhantomTest, PetStudyHasSignalInsideHeadOnly) {
  auto pet = GeneratePetStudy(3);
  // Center has signal.
  EXPECT_GT(pet.AtClamped(64, 64, 25), 0);
  // Corners are empty (outside the head envelope).
  EXPECT_EQ(pet.AtClamped(0, 0, 0), 0);
  EXPECT_EQ(pet.AtClamped(127, 127, 50), 0);
  // Intensities span a useful dynamic range for banding.
  int max_value = 0;
  for (uint8_t v : pet.data()) max_value = std::max(max_value, int{v});
  EXPECT_GT(max_value, 150);
}

TEST(PhantomTest, MriStudyShapeAndTissueBands) {
  auto mri = GenerateMriStudy(11);
  EXPECT_EQ(mri.nx(), 512);
  EXPECT_EQ(mri.ny(), 512);
  EXPECT_EQ(mri.nz(), 44);  // paper: 44 slices of 512x512
  // White matter interior darker than the skull rim.
  int center = mri.AtClamped(256, 256, 22);
  EXPECT_GT(center, 60);
  EXPECT_LT(center, 160);
  EXPECT_EQ(mri.AtClamped(0, 0, 0), 0);  // outside the head
}

TEST(PhantomTest, StudyWarpDeterministicAndInvertible) {
  auto w1 = StudyWarp(5, 128, 128, 51);
  auto w2 = StudyWarp(5, 128, 128, 51);
  EXPECT_EQ(w1.linear(), w2.linear());
  // Must be invertible (it is a registration).
  EXPECT_TRUE(w1.Inverse().ok());
  // Maps the atlas center near the patient-grid center.
  auto p = w1.Apply({64, 64, 64});
  EXPECT_NEAR(p.x, 64, 6);
  EXPECT_NEAR(p.y, 64, 6);
  EXPECT_NEAR(p.z, 25.5, 4);
}

TEST(PhantomTest, WarpScalesToStudyDimensions) {
  auto w = StudyWarp(9, 512, 512, 44);
  auto p = w.Apply({64, 64, 64});
  EXPECT_NEAR(p.x, 256, 12);
  EXPECT_NEAR(p.y, 256, 12);
  EXPECT_NEAR(p.z, 22, 4);
}

}  // namespace
}  // namespace qbism::med
