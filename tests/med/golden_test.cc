// Golden regression locks: the synthetic corpus is deterministic in its
// seed, so key statistics are pinned exactly. If a change to the curve,
// rasterizer, or phantom generator shifts these numbers, every
// experiment table shifts with them — this test makes that visible at
// test time instead of at bench-review time.

#include <gtest/gtest.h>

#include "med/phantom.h"
#include "region/region.h"
#include "region/stats.h"
#include "warp/warp.h"

namespace qbism::med {
namespace {

using curve::CurveKind;
using region::GridSpec;
using region::Region;

const GridSpec kGrid{3, 7};

TEST(GoldenTest, StructureVoxelAndRunCounts) {
  struct Expected {
    const char* name;
    uint64_t voxels;
    size_t h_runs;
  };
  // Pinned from the seed-42 corpus at 128^3 (see EXPERIMENTS.md).
  const Expected expected[] = {
      {"ntal", 14704, 758},
      {"ntal1", 173892, 3056},
      {"putamen", 3624, 301},
  };
  auto structures = StandardAtlasStructures();
  for (const Expected& e : expected) {
    bool found = false;
    for (const auto& s : structures) {
      if (s.name != e.name) continue;
      found = true;
      Region r = Region::FromShape(kGrid, CurveKind::kHilbert, *s.shape);
      EXPECT_EQ(r.VoxelCount(), e.voxels) << e.name;
      EXPECT_EQ(r.RunCount(), e.h_runs) << e.name;
    }
    EXPECT_TRUE(found) << e.name;
  }
}

TEST(GoldenTest, PetStudyChecksum) {
  auto pet = GeneratePetStudy(42);
  uint64_t sum = 0;
  for (uint8_t v : pet.data()) sum += v;
  // Any change to the generator or RNG stream shifts this.
  EXPECT_EQ(sum, 17829043u);
}

TEST(GoldenTest, WarpedStudyBandProfile) {
  auto raw = GeneratePetStudy(42);
  auto warped = warp::WarpToAtlas(
      raw, StudyWarp(42, raw.nx(), raw.ny(), raw.nz()), kGrid,
      CurveKind::kHilbert);
  auto bands = warped.UniformBands(32);
  ASSERT_EQ(bands.size(), 8u);
  // The top band drives Table 3's Q5/Q6; pin its size and run count.
  EXPECT_EQ(bands[7].VoxelCount(), 11175u);
  EXPECT_EQ(bands[7].RunCount(), 1345u);
  // Partition sanity (already covered elsewhere, cheap to re-assert).
  uint64_t total = 0;
  for (const auto& band : bands) total += band.VoxelCount();
  EXPECT_EQ(total, kGrid.NumCells());
}

TEST(GoldenTest, RunRatioStaysNearPaper) {
  // The headline §4.2 result on a single representative region.
  geometry::Ellipsoid blob({64, 60, 62}, {26, 22, 20});
  Region h = Region::FromShape(kGrid, CurveKind::kHilbert, blob);
  region::RegionStats stats = region::ComputeRegionStats(h);
  double z_ratio = static_cast<double>(stats.z_runs) /
                   static_cast<double>(stats.h_runs);
  EXPECT_GT(z_ratio, 1.1);
  EXPECT_LT(z_ratio, 1.6);  // paper: 1.27 corpus-wide
}

}  // namespace
}  // namespace qbism::med
