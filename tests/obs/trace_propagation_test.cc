// Trace-context propagation across threads: donated TaskPool helpers
// run under the submitting query's context, retried (fault-injected)
// queries keep every attempt in the owning trace, and concurrent
// recording against one Tracer is clean (this suite carries the
// `concurrency` label and runs under the tsan preset).

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/task_pool.h"
#include "med/loader.h"
#include "med/schema.h"
#include "obs/trace.h"
#include "service/query_service.h"
#include "storage/fault_plan.h"

namespace qbism::obs {
namespace {

using service::QueryService;
using service::ServiceOptions;
using service::ServiceRequest;
using storage::FaultPlan;

/// Two tasks, one pool thread: whichever thread claims the first task
/// blocks until the second task has run, which forces the two tasks
/// onto two distinct threads — one of them necessarily a pool helper.
std::vector<std::function<Status()>> LatchedPair(std::mutex* mu,
                                                 std::condition_variable* cv,
                                                 bool* second_ran) {
  std::vector<std::function<Status()>> tasks;
  tasks.push_back([=]() -> Status {
    Span span(Stage::kShard);
    span.SetLabel("first");
    std::unique_lock<std::mutex> lock(*mu);
    cv->wait(lock, [=] { return *second_ran; });
    return Status::OK();
  });
  tasks.push_back([=]() -> Status {
    Span span(Stage::kShard);
    span.SetLabel("second");
    {
      std::lock_guard<std::mutex> lock(*mu);
      *second_ran = true;
    }
    cv->notify_all();
    return Status::OK();
  });
  return tasks;
}

TEST(TaskPoolTraceTest, DonatedTaskRunsUnderSubmitterContext) {
  Tracer tracer;
  TaskPool pool(1);
  TraceContext root = tracer.StartTrace();
  ScopedTraceContext install(root);

  std::mutex mu;
  std::condition_variable cv;
  bool second_ran = false;
  ASSERT_TRUE(
      pool.RunBatch(LatchedPair(&mu, &cv, &second_ran), 1).ok());

  std::vector<SpanRecord> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 2u);
  // Both spans — including the one the pool helper ran — belong to the
  // submitter's trace, and they really ran on two different threads.
  EXPECT_EQ(spans[0].trace_id, root.trace_id);
  EXPECT_EQ(spans[1].trace_id, root.trace_id);
  EXPECT_NE(spans[0].thread, spans[1].thread);
}

TEST(TaskPoolTraceTest, HelperContextRestoredAfterBatch) {
  Tracer tracer;
  TaskPool pool(1);
  {
    TraceContext root = tracer.StartTrace();
    ScopedTraceContext install(root);
    std::mutex mu;
    std::condition_variable cv;
    bool second_ran = false;
    ASSERT_TRUE(
        pool.RunBatch(LatchedPair(&mu, &cv, &second_ran), 1).ok());
  }
  uint64_t traced = tracer.recorded();
  EXPECT_EQ(traced, 2u);

  // Same pool, no context installed: the helper that just ran traced
  // work must not leak that context into the next batch.
  std::mutex mu;
  std::condition_variable cv;
  bool second_ran = false;
  ASSERT_TRUE(
      pool.RunBatch(LatchedPair(&mu, &cv, &second_ran), 1).ok());
  EXPECT_EQ(tracer.recorded(), traced);  // both spans were inert
}

TEST(TracerConcurrencyTest, ManyThreadsRecordWhileReadersAggregate) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  TracerOptions options;
  options.span_capacity = 1 << 12;
  Tracer tracer(options);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      tracer.Spans();
      tracer.StageSummaries();
      tracer.DumpStatsTable();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&tracer] {
      TraceContext root = tracer.StartTrace();
      ScopedTraceContext install(root);
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span(Stage::kIo);
        span.AddPages(1);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(tracer.recorded(),
            static_cast<uint64_t>(kThreads) * kSpansPerThread);
  std::vector<StageSummary> stages = tracer.StageSummaries();
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].count,
            static_cast<uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(stages[0].pages,
            static_cast<uint64_t>(kThreads) * kSpansPerThread);
}

/// Full query-path propagation over a loaded database: one study on a
/// 64^3 grid, so a full-study extraction moves 64 pages — enough to
/// shard across donated helpers.
class ServiceTraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sql::DatabaseOptions dbo;
    dbo.relational_pages = 1 << 12;
    dbo.long_field_pages = 1 << 12;
    db_ = new sql::Database(dbo);
    SpatialConfig config;
    config.grid = region::GridSpec{3, 6};  // 64^3
    auto ext = SpatialExtension::Install(db_, config);
    ASSERT_TRUE(ext.ok());
    ext_ = ext.MoveValue().release();
    ASSERT_TRUE(med::BootstrapSchema(db_).ok());
    med::LoadOptions options;
    options.num_pet_studies = 1;
    options.num_mri_studies = 0;
    options.build_meshes = false;
    options.store_raw_volumes = false;
    auto dataset = med::PopulateDatabase(ext_, options);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    study_id_ = dataset->pet_study_ids[0];
  }

  static void TearDownTestSuite() {
    delete ext_;
    delete db_;
  }

  void TearDown() override {
    db_->long_field_device()->ClearFault();
    db_->relational_device()->ClearFault();
  }

  static ServiceOptions TracedOptions(Tracer* tracer) {
    ServiceOptions options;
    options.num_workers = 1;
    options.tracer = tracer;
    options.retry_backoff_seconds = 1e-4;
    options.retry_backoff_max_seconds = 1e-3;
    options.cost_model.sql_compile_seconds = 0.0;
    return options;
  }

  static sql::Database* db_;
  static SpatialExtension* ext_;
  static int study_id_;
};

sql::Database* ServiceTraceTest::db_ = nullptr;
SpatialExtension* ServiceTraceTest::ext_ = nullptr;
int ServiceTraceTest::study_id_ = 0;

TEST_F(ServiceTraceTest, FullStudyQueryYieldsOneWellFormedTraceTree) {
  Tracer tracer;
  ServiceOptions options = TracedOptions(&tracer);
  options.extract_helper_threads = 2;
  std::vector<SpanRecord> spans;
  {
    QueryService service(ext_, options);
    ServiceRequest request;
    request.spec.study_id = study_id_;  // no conditions: the full study
    auto reply = service.Execute(request);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    service.Shutdown();  // quiesce every worker and helper
    spans = tracer.Spans();
  }

  const SpanRecord* root = nullptr;
  for (const SpanRecord& s : spans) {
    if (s.stage == Stage::kQuery) {
      ASSERT_EQ(root, nullptr) << "more than one root span";
      root = &s;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_TRUE(root->ok);
  EXPECT_STREQ(root->label, "full");
  EXPECT_EQ(root->parent_id, 0u);

  // Every span belongs to the query's trace and hangs off a recorded
  // span — helper-thread shards included.
  std::set<uint64_t> ids;
  for (const SpanRecord& s : spans) ids.insert(s.span_id);
  std::set<Stage> stages;
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.trace_id, root->trace_id);
    if (s.span_id != root->span_id) {
      EXPECT_TRUE(ids.count(s.parent_id) == 1)
          << "orphan span stage=" << StageName(s.stage);
      EXPECT_LE(s.duration_seconds, root->duration_seconds + 1e-3);
    }
    stages.insert(s.stage);
  }
  for (Stage expected :
       {Stage::kQueueWait, Stage::kCacheProbe, Stage::kTranslate,
        Stage::kInfo, Stage::kData, Stage::kExtract, Stage::kPlan,
        Stage::kShard, Stage::kIo, Stage::kShip, Stage::kImport}) {
    EXPECT_TRUE(stages.count(expected) == 1)
        << "missing stage " << StageName(expected);
  }

  // metrics() surfaces the same aggregation.
  std::vector<StageSummary> summaries = tracer.StageSummaries();
  EXPECT_FALSE(summaries.empty());
}

TEST_F(ServiceTraceTest, RetriedQuerySpansNestUnderTheOwningTrace) {
  Tracer tracer;
  ServiceOptions options = TracedOptions(&tracer);
  options.extract_helper_threads = 0;  // deterministic transfer order
  options.max_retries = 2;
  std::vector<SpanRecord> spans;
  {
    QueryService service(ext_, options);
    // First long-field transfer of the query fails once (transient), so
    // attempt #1 dies with IOError and attempt #2 succeeds.
    db_->long_field_device()->InstallFaultPlan(FaultPlan::FailAtTransfer(0));
    ServiceRequest request;
    request.spec.study_id = study_id_;
    request.spec.box = geometry::Box3i{{2, 2, 2}, {40, 40, 40}};
    auto reply = service.Execute(request);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(service.metrics().retries, 1u);
    service.Shutdown();
    spans = tracer.Spans();
  }

  const SpanRecord* root = nullptr;
  int data_spans = 0;
  int failed_data_spans = 0;
  int retry_spans = 0;
  for (const SpanRecord& s : spans) {
    if (s.stage == Stage::kQuery) {
      ASSERT_EQ(root, nullptr);
      root = &s;
    }
    if (s.stage == Stage::kData) {
      ++data_spans;
      if (!s.ok) ++failed_data_spans;
    }
    if (s.stage == Stage::kRetry) ++retry_spans;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_TRUE(root->ok);  // the retry recovered the request
  EXPECT_STREQ(root->label, "region");
  // Both attempts — the failed one and the successful re-execution —
  // plus the backoff sleep all live in the one trace.
  EXPECT_EQ(data_spans, 2);
  EXPECT_EQ(failed_data_spans, 1);
  EXPECT_EQ(retry_spans, 1);
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.trace_id, root->trace_id)
        << "stage " << StageName(s.stage) << " escaped the trace";
  }
}

}  // namespace
}  // namespace qbism::obs
