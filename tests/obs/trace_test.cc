// Unit tests for the span-based tracing layer: histogram bucketing,
// span lifecycle and nesting, the disabled fast path, drop-at-capacity,
// and the structured export formats.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>

namespace qbism::obs {
namespace {

TEST(StageHistogramTest, BucketOfPowersOfTwo) {
  EXPECT_EQ(StageHistogram::BucketOf(0), 0);
  EXPECT_EQ(StageHistogram::BucketOf(1), 0);
  EXPECT_EQ(StageHistogram::BucketOf(2), 1);
  EXPECT_EQ(StageHistogram::BucketOf(3), 1);
  EXPECT_EQ(StageHistogram::BucketOf(4), 2);
  EXPECT_EQ(StageHistogram::BucketOf(1023), 9);
  EXPECT_EQ(StageHistogram::BucketOf(1024), 10);
  // Far beyond the top bucket clamps instead of indexing out of range.
  EXPECT_EQ(StageHistogram::BucketOf(~0ull), StageHistogram::kBuckets - 1);
}

TEST(StageHistogramTest, ExactCountTotalMaxApproxPercentiles) {
  StageHistogram hist;
  // 100 samples of 1 ms, 10 of 100 ms.
  for (int i = 0; i < 100; ++i) hist.Record(1'000'000);
  for (int i = 0; i < 10; ++i) hist.Record(100'000'000);
  StageSummary s = hist.Summarize(Stage::kIo);
  EXPECT_EQ(s.count, 110u);
  EXPECT_DOUBLE_EQ(s.total_seconds, 100 * 1e-3 + 10 * 100e-3);
  EXPECT_DOUBLE_EQ(s.max_seconds, 0.1);
  // Power-of-two buckets put the estimate within sqrt(2) of the truth.
  EXPECT_GT(s.p50, 1e-3 / 1.5);
  EXPECT_LT(s.p50, 1e-3 * 1.5);
  EXPECT_GT(s.p99, 0.1 / 1.5);
  EXPECT_LE(s.p99, s.max_seconds);
}

TEST(TracerTest, SpanTreeParentage) {
  Tracer tracer;
  TraceContext root_ctx = tracer.StartTrace();
  {
    Span parent(root_ctx, Stage::kQuery);
    ASSERT_TRUE(parent.active());
    Span child(parent.context(), Stage::kIo);
    ASSERT_TRUE(child.active());
    child.AddPages(3);
    child.AddBytes(4096);
  }
  std::vector<SpanRecord> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 2u);  // child ends first (reverse scope order)
  const SpanRecord& child = spans[0];
  const SpanRecord& parent = spans[1];
  EXPECT_EQ(child.stage, Stage::kIo);
  EXPECT_EQ(parent.stage, Stage::kQuery);
  EXPECT_EQ(child.trace_id, parent.trace_id);
  EXPECT_EQ(child.parent_id, parent.span_id);
  EXPECT_EQ(parent.parent_id, 0u);
  EXPECT_EQ(child.pages, 3u);
  EXPECT_EQ(child.bytes, 4096u);
  EXPECT_TRUE(child.ok);
}

TEST(TracerTest, ThreadLocalContextPropagation) {
  Tracer tracer;
  TraceContext root = tracer.StartTrace();
  {
    ScopedTraceContext install(root);
    Span span(Stage::kPlan);  // picks up the installed context
    EXPECT_TRUE(span.active());
  }
  // Restored: a span opened now is inert.
  Span after(Stage::kPlan);
  EXPECT_FALSE(after.active());
  EXPECT_EQ(tracer.Spans().size(), 1u);
}

TEST(TracerTest, InertWithoutTracerAndWhenDisabled) {
  {
    Span span(TraceContext{}, Stage::kIo);
    EXPECT_FALSE(span.active());
    // context() falls through so nesting still works.
    EXPECT_EQ(span.context().tracer, nullptr);
  }
  TracerOptions options;
  options.enabled = false;
  Tracer tracer(options);
  Span span(tracer.StartTrace(), Stage::kIo);
  EXPECT_FALSE(span.active());
  span.End();
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(TracerTest, DropsSpansAtCapacityButKeepsHistograms) {
  TracerOptions options;
  options.span_capacity = 4;
  Tracer tracer(options);
  TraceContext ctx = tracer.StartTrace();
  for (int i = 0; i < 10; ++i) {
    Span span(ctx, Stage::kIo);
  }
  EXPECT_EQ(tracer.Spans().size(), 4u);
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  std::vector<StageSummary> stages = tracer.StageSummaries();
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].count, 10u);  // the histogram saw every span
  EXPECT_NE(tracer.DumpStatsTable().find("dropped"), std::string::npos);
}

TEST(TracerTest, ResetClearsEverything) {
  Tracer tracer;
  TraceContext ctx = tracer.StartTrace();
  { Span span(ctx, Stage::kDecode); }
  ASSERT_EQ(tracer.Spans().size(), 1u);
  tracer.Reset();
  EXPECT_EQ(tracer.Spans().size(), 0u);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.StageSummaries().empty());
}

TEST(TracerTest, SetLabelTruncatesSafely) {
  Tracer tracer;
  Span span(tracer.StartTrace(), Stage::kQuery);
  span.SetLabel("a-very-long-label-that-overflows");
  span.End();
  std::vector<SpanRecord> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::string(spans[0].label), "a-very-long-lab");
}

TEST(TracerTest, SetFailedMarksSpanNotOk) {
  Tracer tracer;
  {
    Span span(tracer.StartTrace(), Stage::kData);
    span.SetFailed();
  }
  ASSERT_EQ(tracer.Spans().size(), 1u);
  EXPECT_FALSE(tracer.Spans()[0].ok);
}

TEST(TracerTest, RetroactiveRecordFeedsHistogramAndBuffer) {
  Tracer tracer;
  SpanRecord record;
  record.trace_id = 7;
  record.span_id = tracer.NextSpanId();
  record.stage = Stage::kQueueWait;
  record.start_seconds = 0.25;
  record.duration_seconds = 0.5;
  tracer.Record(record);
  std::vector<StageSummary> stages = tracer.StageSummaries();
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].stage, Stage::kQueueWait);
  EXPECT_DOUBLE_EQ(stages[0].total_seconds, 0.5);
}

TEST(TracerExportTest, JsonlOneLinePerSpan) {
  Tracer tracer;
  TraceContext ctx = tracer.StartTrace();
  {
    Span a(ctx, Stage::kTranslate);
    Span b(a.context(), Stage::kInfo);
  }
  std::string jsonl = tracer.DumpTraceJsonl();
  int lines = 0;
  std::istringstream in(jsonl);
  for (std::string line; std::getline(in, line);) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 2);
  EXPECT_NE(jsonl.find("\"stage\":\"translate\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"stage\":\"info\""), std::string::npos);
}

TEST(TracerExportTest, ChromeTraceEventFormat) {
  Tracer tracer;
  { Span span(tracer.StartTrace(), Stage::kRender); }
  std::string chrome = tracer.DumpTraceChrome();
  EXPECT_EQ(chrome.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"render\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ts\":"), std::string::npos);
  EXPECT_NE(chrome.find("\"dur\":"), std::string::npos);
}

TEST(TracerExportTest, StatsTableAndStagesJson) {
  Tracer tracer;
  TraceContext ctx = tracer.StartTrace();
  {
    Span io(ctx, Stage::kIo);
    io.AddPages(12);
  }
  std::string table = tracer.DumpStatsTable();
  EXPECT_NE(table.find("io"), std::string::npos);
  EXPECT_NE(table.find("p95"), std::string::npos);
  std::string json = Tracer::StagesToJson(tracer.StageSummaries());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"stage\":\"io\""), std::string::npos);
  EXPECT_NE(json.find("\"pages\":12"), std::string::npos);
}

TEST(TracerTest, StageNamesAreStable) {
  EXPECT_STREQ(StageName(Stage::kQuery), "query");
  EXPECT_STREQ(StageName(Stage::kQueueWait), "queue");
  EXPECT_STREQ(StageName(Stage::kIo), "io");
  EXPECT_STREQ(StageName(Stage::kExtract), "extract");
  EXPECT_STREQ(StageName(Stage::kIoWait), "io_wait");
}

}  // namespace
}  // namespace qbism::obs
