#include "net/channel.h"

#include <gtest/gtest.h>

namespace qbism::net {
namespace {

TEST(ChannelTest, ControlMessageCosts) {
  NetworkCostModel model;
  model.per_message_seconds = 0.01;
  model.bandwidth_bytes_per_second = 1000.0;
  SimulatedChannel channel(model);
  channel.SendControl(500);
  EXPECT_EQ(channel.stats().messages, 1u);
  EXPECT_EQ(channel.stats().bytes, 500u);
  EXPECT_NEAR(channel.stats().simulated_seconds, 0.01 + 0.5, 1e-12);
}

TEST(ChannelTest, BulkChunking) {
  NetworkCostModel model;
  model.chunk_bytes = 1024;
  SimulatedChannel channel(model);
  channel.SendBulk(2 * 1024 * 1024);  // the paper's 2 MB study
  // 2048 data messages, mirroring the paper's ~2103 for Q1.
  EXPECT_EQ(channel.stats().messages, 2048u);
  channel.ResetStats();
  channel.SendBulk(1);
  EXPECT_EQ(channel.stats().messages, 1u);
  channel.ResetStats();
  channel.SendBulk(1025);
  EXPECT_EQ(channel.stats().messages, 2u);
  channel.ResetStats();
  channel.SendBulk(0);
  EXPECT_EQ(channel.stats().messages, 0u);
  EXPECT_EQ(channel.stats().simulated_seconds, 0.0);
}

TEST(ChannelTest, CostScalesWithSize) {
  SimulatedChannel channel;
  channel.SendBulk(100000);
  double small = channel.stats().simulated_seconds;
  channel.ResetStats();
  channel.SendBulk(2000000);
  double large = channel.stats().simulated_seconds;
  EXPECT_GT(large, 10 * small);
}

TEST(ChannelTest, RoundTripAddsRtt) {
  NetworkCostModel model;
  model.rtt_seconds = 0.004;
  SimulatedChannel channel(model);
  channel.RoundTrip();
  channel.RoundTrip();
  EXPECT_NEAR(channel.stats().simulated_seconds, 0.008, 1e-12);
  EXPECT_EQ(channel.stats().messages, 0u);
}

TEST(ChannelTest, StatsDeltaSubtraction) {
  SimulatedChannel channel;
  channel.SendBulk(5000);
  ChannelStats before = channel.stats();
  channel.SendBulk(3000);
  ChannelStats delta = channel.stats() - before;
  EXPECT_EQ(delta.bytes, 3000u);
  EXPECT_GT(delta.simulated_seconds, 0.0);
}

TEST(ChannelTest, StatsDeltaSaturatesInsteadOfWrapping) {
  // Regression: subtracting a larger "before" snapshot (taken prior to
  // a reset) used to wrap the unsigned counters to ~2^64; the delta
  // must clamp at zero instead.
  ChannelStats before{/*messages=*/10, /*bytes=*/5000,
                      /*simulated_seconds=*/1.0};
  ChannelStats after{/*messages=*/3, /*bytes=*/200,
                     /*simulated_seconds=*/0.25};
  ChannelStats delta = after - before;
  EXPECT_EQ(delta.messages, 0u);
  EXPECT_EQ(delta.bytes, 0u);
  EXPECT_EQ(delta.simulated_seconds, 0.0);
  // Mixed direction clamps per field, not across fields.
  ChannelStats mixed{/*messages=*/12, /*bytes=*/100,
                     /*simulated_seconds=*/2.0};
  ChannelStats mixed_delta = mixed - before;
  EXPECT_EQ(mixed_delta.messages, 2u);
  EXPECT_EQ(mixed_delta.bytes, 0u);
  EXPECT_NEAR(mixed_delta.simulated_seconds, 1.0, 1e-12);
}

TEST(ChannelTest, DeterministicAcrossInstances) {
  SimulatedChannel a, b;
  a.SendBulk(123456);
  b.SendBulk(123456);
  EXPECT_EQ(a.stats().simulated_seconds, b.stats().simulated_seconds);
  EXPECT_EQ(a.stats().messages, b.stats().messages);
}

}  // namespace
}  // namespace qbism::net
