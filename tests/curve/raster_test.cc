#include "curve/raster.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "curve/curve.h"

namespace qbism::curve {
namespace {

/// Reference rasterization: scalar-encode every voxel of the box, sort,
/// and coalesce into runs — the exact per-voxel path the octant descent
/// replaces.
std::vector<IdRun> ReferenceRuns(CurveKind kind, int dims, int bits,
                                 const uint32_t* lo, const uint32_t* hi) {
  std::vector<uint64_t> ids;
  uint32_t axes[kMaxDims] = {0};
  for (int i = 0; i < dims; ++i) {
    if (lo[i] > hi[i]) return {};
  }
  // Up to 4 dims via nested odometer.
  uint32_t p[kMaxDims];
  for (int i = 0; i < dims; ++i) p[i] = lo[i];
  while (true) {
    for (int i = 0; i < dims; ++i) axes[i] = p[i];
    ids.push_back(kind == CurveKind::kHilbert
                      ? HilbertIndex(axes, dims, bits)
                      : MortonIndex(axes, dims, bits));
    int i = 0;
    while (i < dims && p[i] == hi[i]) {
      p[i] = lo[i];
      ++i;
    }
    if (i == dims) break;
    ++p[i];
  }
  std::sort(ids.begin(), ids.end());
  std::vector<IdRun> runs;
  for (uint64_t id : ids) {
    if (!runs.empty() && runs.back().end + 1 == id) {
      runs.back().end = id;
    } else {
      runs.push_back(IdRun{id, id});
    }
  }
  return runs;
}

void ExpectCanonical(const std::vector<IdRun>& runs) {
  for (size_t i = 0; i < runs.size(); ++i) {
    EXPECT_LE(runs[i].start, runs[i].end);
    if (i > 0) {
      EXPECT_GT(runs[i].start, runs[i - 1].end + 1);
    }
  }
}

class RasterTest
    : public ::testing::TestWithParam<std::tuple<CurveKind, int, int>> {};

TEST_P(RasterTest, MatchesPerVoxelReferenceOnRandomBoxes) {
  auto [kind, dims, bits] = GetParam();
  uint32_t side = uint32_t{1} << bits;
  Rng rng(static_cast<uint64_t>(dims * 1000 + bits * 10 +
                                (kind == CurveKind::kZ ? 1 : 0)));
  for (int trial = 0; trial < 24; ++trial) {
    uint32_t lo[kMaxDims], hi[kMaxDims];
    for (int i = 0; i < dims; ++i) {
      uint32_t a = static_cast<uint32_t>(rng.NextBounded(side));
      uint32_t b = static_cast<uint32_t>(rng.NextBounded(side));
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
    }
    std::vector<IdRun> got;
    AppendRunsForBox(kind, dims, bits, lo, hi, &got);
    EXPECT_EQ(got, ReferenceRuns(kind, dims, bits, lo, hi));
    ExpectCanonical(got);
  }
}

TEST_P(RasterTest, FullGridIsOneRun) {
  auto [kind, dims, bits] = GetParam();
  uint32_t lo[kMaxDims] = {0}, hi[kMaxDims];
  for (int i = 0; i < dims; ++i) hi[i] = (uint32_t{1} << bits) - 1;
  std::vector<IdRun> runs;
  AppendRunsForBox(kind, dims, bits, lo, hi, &runs);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].start, 0u);
  EXPECT_EQ(runs[0].end, (uint64_t{1} << (dims * bits)) - 1);
}

TEST_P(RasterTest, SingleVoxelBoxes) {
  auto [kind, dims, bits] = GetParam();
  uint32_t side = uint32_t{1} << bits;
  Rng rng(99);
  for (int trial = 0; trial < 16; ++trial) {
    uint32_t p[kMaxDims];
    for (int i = 0; i < dims; ++i) {
      p[i] = static_cast<uint32_t>(rng.NextBounded(side));
    }
    std::vector<IdRun> runs;
    AppendRunsForBox(kind, dims, bits, p, p, &runs);
    uint64_t id = kind == CurveKind::kHilbert ? HilbertIndex(p, dims, bits)
                                              : MortonIndex(p, dims, bits);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0], (IdRun{id, id}));
  }
}

TEST_P(RasterTest, EmptyBoxAppendsNothing) {
  auto [kind, dims, bits] = GetParam();
  uint32_t lo[kMaxDims], hi[kMaxDims];
  for (int i = 0; i < dims; ++i) {
    lo[i] = 1;
    hi[i] = 0;
  }
  std::vector<IdRun> runs;
  AppendRunsForBox(kind, dims, bits, lo, hi, &runs);
  EXPECT_TRUE(runs.empty());
}

std::vector<std::tuple<CurveKind, int, int>> RasterGrids() {
  std::vector<std::tuple<CurveKind, int, int>> grids;
  for (CurveKind kind : {CurveKind::kHilbert, CurveKind::kZ}) {
    for (int dims = 2; dims <= 3; ++dims) {
      for (int bits = 1; bits <= 5; ++bits) grids.push_back({kind, dims, bits});
    }
  }
  return grids;
}

INSTANTIATE_TEST_SUITE_P(KindDimsBits, RasterTest,
                         ::testing::ValuesIn(RasterGrids()));

TEST(RasterTest, AppendsAfterExistingRunsWithMerge) {
  // A caller streaming boxes in id order sees back-merging when the new
  // first run is id-adjacent to the existing tail.
  uint32_t p[3];
  HilbertAxes(10, 3, 2, p);
  std::vector<IdRun> runs{{5, 9}};
  AppendRunsForBox(CurveKind::kHilbert, 3, 2, p, p, &runs);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (IdRun{5, 10}));
}

TEST(RasterTest, VoxelCountAlwaysMatchesBoxVolume) {
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const int bits = 7;  // the paper's 128^3 atlas grid
    uint32_t lo[3], hi[3];
    uint64_t volume = 1;
    for (int i = 0; i < 3; ++i) {
      uint32_t a = static_cast<uint32_t>(rng.NextBounded(128));
      uint32_t b = static_cast<uint32_t>(rng.NextBounded(128));
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
      volume *= hi[i] - lo[i] + 1;
    }
    std::vector<IdRun> runs;
    AppendRunsForBox(CurveKind::kHilbert, 3, bits, lo, hi, &runs);
    uint64_t count = 0;
    for (const IdRun& r : runs) count += r.end - r.start + 1;
    EXPECT_EQ(count, volume);
    ExpectCanonical(runs);
  }
}

}  // namespace
}  // namespace qbism::curve
