#include "curve/curve.h"

#include <cstdlib>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qbism::curve {
namespace {

TEST(MortonTest, MatchesPaperConvention2D) {
  // §4: "x1x0=01 and y1y0=00, so the z-id = x1 y1 x0 y0 = 0010".
  EXPECT_EQ(MortonId2(1, 0, 2), 0b0010u);
  EXPECT_EQ(MortonId2(0, 0, 2), 0b0000u);
  EXPECT_EQ(MortonId2(3, 3, 2), 0b1111u);
  EXPECT_EQ(MortonId2(0, 1, 2), 0b0001u);
  EXPECT_EQ(MortonId2(2, 0, 2), 0b1000u);
}

TEST(HilbertTest, MatchesPaperFigure3Orientation) {
  // The 4x4 Hilbert curve of Figure 3: starts at (0,0), first step +x,
  // lower-left quadrant first, then upper-left, upper-right, lower-right.
  struct {
    uint64_t id;
    uint32_t x, y;
  } expected[] = {
      {0, 0, 0},  {1, 1, 0},  {2, 1, 1},  {3, 0, 1},
      {4, 0, 2},  {5, 0, 3},  {6, 1, 3},  {7, 1, 2},
      {8, 2, 2},  {9, 2, 3},  {10, 3, 3}, {11, 3, 2},
      {12, 3, 1}, {13, 2, 1}, {14, 2, 0}, {15, 3, 0},
  };
  for (const auto& e : expected) {
    EXPECT_EQ(HilbertId2(e.x, e.y, 2), e.id) << "(" << e.x << "," << e.y << ")";
    uint32_t axes[2];
    HilbertAxes(e.id, 2, 2, axes);
    EXPECT_EQ(axes[0], e.x) << "id " << e.id;
    EXPECT_EQ(axes[1], e.y) << "id " << e.id;
  }
}

class CurveRoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CurveRoundTripTest, HilbertBijective) {
  auto [dims, bits] = GetParam();
  uint64_t n = uint64_t{1} << (dims * bits);
  std::set<uint64_t> seen;
  Rng rng(1);
  uint64_t samples = std::min<uint64_t>(n, 4096);
  for (uint64_t s = 0; s < samples; ++s) {
    uint64_t id = n <= 4096 ? s : rng.NextBounded(n);
    uint32_t axes[kMaxDims];
    HilbertAxes(id, dims, bits, axes);
    for (int d = 0; d < dims; ++d) {
      EXPECT_LT(axes[d], uint64_t{1} << bits);
    }
    EXPECT_EQ(HilbertIndex(axes, dims, bits), id);
    if (n <= 4096) seen.insert(id);
  }
  if (n <= 4096) {
    EXPECT_EQ(seen.size(), n);
  }
}

TEST_P(CurveRoundTripTest, MortonBijective) {
  auto [dims, bits] = GetParam();
  uint64_t n = uint64_t{1} << (dims * bits);
  Rng rng(2);
  uint64_t samples = std::min<uint64_t>(n, 4096);
  for (uint64_t s = 0; s < samples; ++s) {
    uint64_t id = n <= 4096 ? s : rng.NextBounded(n);
    uint32_t axes[kMaxDims];
    MortonAxes(id, dims, bits, axes);
    EXPECT_EQ(MortonIndex(axes, dims, bits), id);
  }
}

TEST_P(CurveRoundTripTest, HilbertConsecutiveIdsAreGridNeighbors) {
  // The defining property of the Hilbert curve: successive ids differ by
  // exactly one step along exactly one axis.
  auto [dims, bits] = GetParam();
  uint64_t n = uint64_t{1} << (dims * bits);
  uint64_t limit = std::min<uint64_t>(n - 1, 8192);
  uint32_t prev[kMaxDims], cur[kMaxDims];
  HilbertAxes(0, dims, bits, prev);
  for (uint64_t id = 1; id <= limit; ++id) {
    HilbertAxes(id, dims, bits, cur);
    int total_diff = 0;
    for (int d = 0; d < dims; ++d) {
      total_diff += std::abs(static_cast<int64_t>(cur[d]) -
                             static_cast<int64_t>(prev[d]));
    }
    ASSERT_EQ(total_diff, 1) << "ids " << id - 1 << " -> " << id;
    for (int d = 0; d < dims; ++d) prev[d] = cur[d];
  }
}

INSTANTIATE_TEST_SUITE_P(DimsBits, CurveRoundTripTest,
                         ::testing::Values(std::make_tuple(2, 1),
                                           std::make_tuple(2, 2),
                                           std::make_tuple(2, 5),
                                           std::make_tuple(2, 10),
                                           std::make_tuple(3, 1),
                                           std::make_tuple(3, 2),
                                           std::make_tuple(3, 4),
                                           std::make_tuple(3, 7),
                                           std::make_tuple(3, 9),
                                           std::make_tuple(4, 3),
                                           std::make_tuple(5, 2)));

TEST(CurveTest, ZCurveNeighborsCanJump) {
  // Unlike Hilbert, the Z curve makes long jumps (this is why it
  // clusters worse); verify at least one occurs on a 8x8 grid.
  bool jump_found = false;
  uint32_t prev[2], cur[2];
  MortonAxes(0, 2, 3, prev);
  for (uint64_t id = 1; id < 64; ++id) {
    MortonAxes(id, 2, 3, cur);
    int diff = std::abs(static_cast<int>(cur[0]) - static_cast<int>(prev[0])) +
               std::abs(static_cast<int>(cur[1]) - static_cast<int>(prev[1]));
    if (diff > 1) jump_found = true;
    prev[0] = cur[0];
    prev[1] = cur[1];
  }
  EXPECT_TRUE(jump_found);
}

TEST(CurveTest, Conveniences3D) {
  uint64_t id = HilbertId3(10, 20, 30, 7);
  auto p = HilbertPoint3(id, 7);
  EXPECT_EQ(p[0], 10u);
  EXPECT_EQ(p[1], 20u);
  EXPECT_EQ(p[2], 30u);

  uint64_t zid = MortonId3(10, 20, 30, 7);
  auto q = MortonPoint3(zid, 7);
  EXPECT_EQ(q[0], 10u);
  EXPECT_EQ(q[1], 20u);
  EXPECT_EQ(q[2], 30u);

  EXPECT_EQ(CurveId3(CurveKind::kHilbert, 10, 20, 30, 7), id);
  EXPECT_EQ(CurveId3(CurveKind::kZ, 10, 20, 30, 7), zid);
}

TEST(CurveTest, PaperGridSizeFitsFourBytes) {
  // §4: ids for grids up to 512^3 pack into 4 bytes.
  uint64_t max_id = CurveId3(CurveKind::kHilbert, 511, 511, 511, 9);
  EXPECT_LT(max_id, uint64_t{1} << 27);
  uint64_t max_zid = CurveId3(CurveKind::kZ, 511, 511, 511, 9);
  EXPECT_EQ(max_zid, (uint64_t{1} << 27) - 1);
}

TEST(CurveTest, KindNames) {
  EXPECT_EQ(CurveKindToString(CurveKind::kHilbert), "hilbert");
  EXPECT_EQ(CurveKindToString(CurveKind::kZ), "z");
}

}  // namespace
}  // namespace qbism::curve
