#include "curve/engine.h"

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace qbism::curve {
namespace {

class EngineFuzzTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(EngineFuzzTest, BatchDecodeMatchesScalar) {
  auto [dims, bits] = GetParam();
  uint64_t n = uint64_t{1} << (dims * bits);
  Rng rng(1000 + static_cast<uint64_t>(dims * 100 + bits));
  size_t samples = static_cast<size_t>(std::min<uint64_t>(n, 4096));
  std::vector<uint64_t> ids(samples);
  for (size_t k = 0; k < samples; ++k) {
    ids[k] = n <= samples ? k : rng.NextBounded(n);
  }
  std::vector<uint32_t> batch(samples * static_cast<size_t>(dims));
  HilbertAxesBatch(ids.data(), samples, dims, bits, batch.data());
  uint32_t expect[kMaxDims];
  for (size_t k = 0; k < samples; ++k) {
    HilbertAxes(ids[k], dims, bits, expect);
    for (int i = 0; i < dims; ++i) {
      ASSERT_EQ(batch[k * static_cast<size_t>(dims) + i], expect[i])
          << "id " << ids[k] << " dims " << dims << " bits " << bits;
    }
  }
}

TEST_P(EngineFuzzTest, BatchEncodeMatchesScalarAndRoundTrips) {
  auto [dims, bits] = GetParam();
  Rng rng(2000 + static_cast<uint64_t>(dims * 100 + bits));
  size_t samples = 4096;
  std::vector<uint32_t> axes(samples * static_cast<size_t>(dims));
  for (auto& a : axes) {
    a = static_cast<uint32_t>(rng.NextBounded(uint64_t{1} << bits));
  }
  std::vector<uint64_t> ids(samples);
  HilbertIndexBatch(axes.data(), samples, dims, bits, ids.data());
  for (size_t k = 0; k < samples; ++k) {
    ASSERT_EQ(ids[k],
              HilbertIndex(axes.data() + k * static_cast<size_t>(dims), dims,
                           bits));
  }
  std::vector<uint32_t> back(axes.size());
  HilbertAxesBatch(ids.data(), samples, dims, bits, back.data());
  ASSERT_EQ(back, axes);
}

TEST_P(EngineFuzzTest, SpanDecodeMatchesScalar) {
  auto [dims, bits] = GetParam();
  uint64_t n = uint64_t{1} << (dims * bits);
  Rng rng(3000 + static_cast<uint64_t>(dims * 100 + bits));
  for (int trial = 0; trial < 8; ++trial) {
    uint64_t first = rng.NextBounded(n);
    size_t len = static_cast<size_t>(
        std::min<uint64_t>(n - first, 1 + rng.NextBounded(2048)));
    std::vector<uint32_t> span(len * static_cast<size_t>(dims));
    HilbertAxesSpan(first, len, dims, bits, span.data());
    uint32_t expect[kMaxDims];
    for (size_t k = 0; k < len; ++k) {
      HilbertAxes(first + k, dims, bits, expect);
      for (int i = 0; i < dims; ++i) {
        ASSERT_EQ(span[k * static_cast<size_t>(dims) + i], expect[i])
            << "id " << first + k;
      }
    }
  }
}

TEST_P(EngineFuzzTest, SpanDecodeHilbertAdjacencyInvariant) {
  // Consecutive Hilbert ids differ in exactly one axis, by exactly 1 —
  // checked on the batch path itself, not just the scalar oracle.
  auto [dims, bits] = GetParam();
  uint64_t n = uint64_t{1} << (dims * bits);
  Rng rng(4000 + static_cast<uint64_t>(dims * 100 + bits));
  uint64_t first = n <= 8192 ? 0 : rng.NextBounded(n - 8192);
  size_t len = static_cast<size_t>(std::min<uint64_t>(n - first, 8192));
  std::vector<uint32_t> span(len * static_cast<size_t>(dims));
  HilbertAxesSpan(first, len, dims, bits, span.data());
  for (size_t k = 1; k < len; ++k) {
    int total_diff = 0;
    for (int i = 0; i < dims; ++i) {
      total_diff += std::abs(
          static_cast<int64_t>(span[k * static_cast<size_t>(dims) + i]) -
          static_cast<int64_t>(span[(k - 1) * static_cast<size_t>(dims) + i]));
    }
    ASSERT_EQ(total_diff, 1) << "ids " << first + k - 1 << " -> " << first + k;
  }
}

TEST_P(EngineFuzzTest, MortonBatchMatchesScalar) {
  auto [dims, bits] = GetParam();
  uint64_t n = uint64_t{1} << (dims * bits);
  Rng rng(5000 + static_cast<uint64_t>(dims * 100 + bits));
  size_t samples = 2048;
  std::vector<uint64_t> ids(samples);
  for (auto& id : ids) id = rng.NextBounded(n);
  std::vector<uint32_t> axes(samples * static_cast<size_t>(dims));
  MortonAxesBatch(ids.data(), samples, dims, bits, axes.data());
  uint32_t expect[kMaxDims];
  for (size_t k = 0; k < samples; ++k) {
    MortonAxes(ids[k], dims, bits, expect);
    for (int i = 0; i < dims; ++i) {
      ASSERT_EQ(axes[k * static_cast<size_t>(dims) + i], expect[i]);
    }
  }
  std::vector<uint64_t> back(samples);
  MortonIndexBatch(axes.data(), samples, dims, bits, back.data());
  ASSERT_EQ(back, ids);
  std::vector<uint32_t> span(axes.size());
  uint64_t first = rng.NextBounded(n - std::min<uint64_t>(n, samples) + 1);
  size_t len = static_cast<size_t>(std::min<uint64_t>(n - first, samples));
  MortonAxesSpan(first, len, dims, bits, span.data());
  for (size_t k = 0; k < len; ++k) {
    MortonAxes(first + k, dims, bits, expect);
    for (int i = 0; i < dims; ++i) {
      ASSERT_EQ(span[k * static_cast<size_t>(dims) + i], expect[i]);
    }
  }
}

std::vector<std::tuple<int, int>> FuzzGrids() {
  std::vector<std::tuple<int, int>> grids;
  for (int dims = 2; dims <= 3; ++dims) {
    for (int bits = 1; bits <= 10; ++bits) grids.push_back({dims, bits});
  }
  return grids;
}

INSTANTIATE_TEST_SUITE_P(DimsBits, EngineFuzzTest,
                         ::testing::ValuesIn(FuzzGrids()));

TEST(EngineTest, MachineAvailability) {
  for (CurveKind kind : {CurveKind::kHilbert, CurveKind::kZ}) {
    for (int dims = 2; dims <= 4; ++dims) {
      const CurveMachine* m = TryGetMachine(kind, dims);
      ASSERT_NE(m, nullptr);
      EXPECT_EQ(m->dims, dims);
      EXPECT_EQ(m->fanout, 1 << dims);
      EXPECT_GE(m->num_states, 1);
    }
    EXPECT_EQ(TryGetMachine(kind, 1), nullptr);
    EXPECT_EQ(TryGetMachine(kind, 5), nullptr);
  }
  // The 3-D Hilbert machine is the classic 12-state automaton; Z needs
  // a single state in any dimensionality.
  EXPECT_EQ(TryGetMachine(CurveKind::kZ, 3)->num_states, 1);
}

TEST(EngineTest, ScalarFallbackForHighDims) {
  // dims = 5 has no tables; the batch API must still agree with scalar.
  const int dims = 5, bits = 3;
  Rng rng(7);
  size_t samples = 512;
  std::vector<uint64_t> ids(samples);
  for (auto& id : ids) id = rng.NextBounded(uint64_t{1} << (dims * bits));
  std::vector<uint32_t> axes(samples * dims);
  HilbertAxesBatch(ids.data(), samples, dims, bits, axes.data());
  std::vector<uint64_t> back(samples);
  HilbertIndexBatch(axes.data(), samples, dims, bits, back.data());
  EXPECT_EQ(back, ids);
  uint32_t expect[kMaxDims];
  HilbertAxes(ids[0], dims, bits, expect);
  for (int i = 0; i < dims; ++i) EXPECT_EQ(axes[i], expect[i]);
}

TEST(EngineTest, EmptyAndFullSpans) {
  HilbertAxesSpan(0, 0, 3, 7, nullptr);  // n = 0 touches nothing
  const int bits = 2;
  uint64_t n = uint64_t{1} << (3 * bits);
  std::vector<uint32_t> span(static_cast<size_t>(n) * 3);
  HilbertAxesSpan(0, static_cast<size_t>(n), 3, bits, span.data());
  uint32_t expect[kMaxDims];
  for (uint64_t id = 0; id < n; ++id) {
    HilbertAxes(id, 3, bits, expect);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(span[static_cast<size_t>(id) * 3 + i], expect[i]);
    }
  }
}

}  // namespace
}  // namespace qbism::curve
