#include "viz/mesh.h"

#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "geometry/shapes.h"

namespace qbism::viz {
namespace {

using curve::CurveKind;
using region::GridSpec;
using region::Region;

const GridSpec kGrid{3, 4};

TEST(MeshTest, SingleVoxelCube) {
  auto r = Region::FromIds(kGrid, CurveKind::kHilbert,
                           {curve::HilbertId3(5, 5, 5, 4)})
               .MoveValue();
  TriangleMesh mesh = ExtractSurface(r);
  // A cube: 8 corners, 6 faces x 2 triangles.
  EXPECT_EQ(mesh.VertexCount(), 8u);
  EXPECT_EQ(mesh.TriangleCount(), 12u);
}

TEST(MeshTest, TwoAdjacentVoxelsShareFace) {
  auto r = Region::FromIds(kGrid, CurveKind::kHilbert,
                           {curve::HilbertId3(5, 5, 5, 4),
                            curve::HilbertId3(6, 5, 5, 4)})
               .MoveValue();
  TriangleMesh mesh = ExtractSurface(r);
  // 1x1x2 box: 10 faces (the shared internal face is culled).
  EXPECT_EQ(mesh.TriangleCount(), 20u);
  EXPECT_EQ(mesh.VertexCount(), 12u);
}

TEST(MeshTest, SurfaceIsClosedManifold) {
  geometry::Ellipsoid blob({8, 8, 8}, {4, 3, 3});
  Region r = Region::FromShape(kGrid, CurveKind::kHilbert, blob);
  TriangleMesh mesh = ExtractSurface(r);
  ASSERT_GT(mesh.TriangleCount(), 0u);
  // Closed surface: every directed edge appears exactly once (so each
  // undirected edge is shared by exactly two consistently-wound faces).
  std::map<std::pair<uint32_t, uint32_t>, int> directed;
  for (const auto& t : mesh.triangles) {
    for (int k = 0; k < 3; ++k) {
      uint32_t a = t[k], b = t[(k + 1) % 3];
      ++directed[{a, b}];
    }
  }
  for (const auto& [edge, count] : directed) {
    ASSERT_EQ(count, 1) << edge.first << "->" << edge.second;
    ASSERT_EQ(directed.count({edge.second, edge.first}), 1u);
  }
}

TEST(MeshTest, EulerFormulaForSphereTopology) {
  geometry::Ellipsoid blob({8, 8, 8}, {5, 4, 4});
  Region r = Region::FromShape(kGrid, CurveKind::kHilbert, blob);
  TriangleMesh mesh = ExtractSurface(r);
  // V - E + F == 2 for a genus-0 closed surface.
  std::set<std::pair<uint32_t, uint32_t>> edges;
  for (const auto& t : mesh.triangles) {
    for (int k = 0; k < 3; ++k) {
      uint32_t a = t[k], b = t[(k + 1) % 3];
      edges.insert({std::min(a, b), std::max(a, b)});
    }
  }
  int64_t euler = static_cast<int64_t>(mesh.VertexCount()) -
                  static_cast<int64_t>(edges.size()) +
                  static_cast<int64_t>(mesh.TriangleCount());
  EXPECT_EQ(euler, 2);
}

TEST(MeshTest, EmptyRegionEmptyMesh) {
  Region empty(kGrid, CurveKind::kHilbert);
  TriangleMesh mesh = ExtractSurface(empty);
  EXPECT_EQ(mesh.VertexCount(), 0u);
  EXPECT_EQ(mesh.TriangleCount(), 0u);
}

TEST(MeshTest, SerializationRoundTrip) {
  geometry::Ellipsoid blob({8, 8, 8}, {3, 4, 2});
  Region r = Region::FromShape(kGrid, CurveKind::kHilbert, blob);
  TriangleMesh mesh = ExtractSurface(r);
  auto bytes = mesh.Serialize();
  TriangleMesh back = TriangleMesh::Deserialize(bytes).MoveValue();
  EXPECT_EQ(back.vertices, mesh.vertices);
  EXPECT_EQ(back.triangles, mesh.triangles);
}

TEST(MeshTest, DeserializeRejectsCorruptData) {
  TriangleMesh mesh;
  mesh.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  mesh.triangles = {{0, 1, 2}};
  auto bytes = mesh.Serialize();
  // Truncated.
  std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 5);
  EXPECT_FALSE(TriangleMesh::Deserialize(truncated).ok());
  // Out-of-range index.
  bytes[16] = 99;  // first triangle index word
  auto corrupt = TriangleMesh::Deserialize(bytes);
  // Either parses with bad index rejected or fails; must not crash.
  if (corrupt.ok()) {
    for (const auto& t : corrupt->triangles) {
      for (uint32_t idx : t) EXPECT_LT(idx, corrupt->VertexCount());
    }
  }
}

TEST(MeshTest, VerticesLieOnGridCorners) {
  auto r = Region::FromIds(kGrid, CurveKind::kHilbert,
                           {curve::HilbertId3(3, 4, 5, 4)})
               .MoveValue();
  TriangleMesh mesh = ExtractSurface(r);
  for (const auto& v : mesh.vertices) {
    EXPECT_EQ(v.x, std::floor(v.x));
    EXPECT_GE(v.x, 3.0);
    EXPECT_LE(v.x, 4.0);
    EXPECT_GE(v.y, 4.0);
    EXPECT_LE(v.y, 5.0);
  }
}

}  // namespace
}  // namespace qbism::viz
