#include "viz/renderer.h"

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "geometry/shapes.h"

namespace qbism::viz {
namespace {

using curve::CurveKind;
using geometry::Vec3i;
using region::GridSpec;
using region::Region;
using volume::Volume;

const GridSpec kGrid{3, 4};

Volume BallVolume() {
  return Volume::FromFunction(kGrid, CurveKind::kHilbert, [](const Vec3i& p) {
    double dx = p.x - 8.0, dy = p.y - 8.0, dz = p.z - 8.0;
    double d = std::sqrt(dx * dx + dy * dy + dz * dz);
    return static_cast<uint8_t>(d < 5 ? 220 : 0);
  });
}

TEST(RendererTest, MipOfEmptyVolumeIsBlack) {
  Volume zero = Volume::FromFunction(kGrid, CurveKind::kHilbert,
                                     [](const Vec3i&) { return uint8_t{0}; });
  Image image = RenderMip(zero, Camera{});
  EXPECT_EQ(image.NonBlackFraction(), 0.0);
}

TEST(RendererTest, MipOfBallShowsDisk) {
  Image image = RenderMip(BallVolume(), Camera{0.3, 0.2, 128});
  double lit = image.NonBlackFraction();
  EXPECT_GT(lit, 0.005);
  EXPECT_LT(lit, 0.5);
  // Brightest pixel equals the maximum voxel intensity.
  uint8_t max_pixel = 0;
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      max_pixel = std::max(max_pixel, image.Red(x, y));
    }
  }
  EXPECT_EQ(max_pixel, 220);
}

TEST(RendererTest, MipDataRegionMatchesDensifiedMip) {
  Volume v = BallVolume();
  geometry::Ellipsoid blob({8, 8, 8}, {6, 6, 6});
  Region r = Region::FromShape(kGrid, CurveKind::kHilbert, blob);
  volume::DataRegion dr = v.Extract(r).MoveValue();
  Camera camera{0.5, 0.4, 96};
  Image direct = RenderMipDataRegion(dr, camera);
  Image densified = RenderMip(dr.ToDenseVolume(0), camera);
  EXPECT_EQ(direct.pixels(), densified.pixels());
}

TEST(RendererTest, MeshRenderCoversSilhouette) {
  geometry::Ellipsoid blob({8, 8, 8}, {5, 5, 5});
  Region r = Region::FromShape(kGrid, CurveKind::kHilbert, blob);
  TriangleMesh mesh = ExtractSurface(r);
  Image image = RenderMesh(mesh, Camera{0.4, 0.3, 128}, kGrid);
  EXPECT_GT(image.NonBlackFraction(), 0.01);
}

TEST(RendererTest, TexturedMeshDiffersFromPlain) {
  geometry::Ellipsoid blob({8, 8, 8}, {5, 5, 5});
  Region r = Region::FromShape(kGrid, CurveKind::kHilbert, blob);
  TriangleMesh mesh = ExtractSurface(r);
  Volume texture = BallVolume();
  Camera camera{0.4, 0.3, 96};
  Image plain = RenderMesh(mesh, camera, kGrid);
  Image textured = RenderMesh(mesh, camera, kGrid, &texture);
  EXPECT_NE(plain.pixels(), textured.pixels());
  EXPECT_GT(textured.NonBlackFraction(), 0.01);
}

TEST(RendererTest, DifferentCamerasDiffer) {
  Volume v = BallVolume();
  Image a = RenderMip(v, Camera{0.0, 0.0, 64});
  Image b = RenderMip(v, Camera{1.2, 0.7, 64});
  EXPECT_NE(a.pixels(), b.pixels());
}

TEST(RendererTest, SliceMatchesVolumeValues) {
  Volume v = BallVolume();
  for (int axis = 0; axis < 3; ++axis) {
    auto slice = RenderSlice(v, axis, 8);
    ASSERT_TRUE(slice.ok());
    EXPECT_EQ(slice->width(), 16);
    EXPECT_EQ(slice->height(), 16);
  }
  auto z_slice = RenderSlice(v, 2, 8).MoveValue();
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      EXPECT_EQ(z_slice.Red(x, y), v.ValueAt({x, y, 8}).value());
    }
  }
  auto x_slice = RenderSlice(v, 0, 8).MoveValue();
  EXPECT_EQ(x_slice.Red(3, 5), v.ValueAt({8, 3, 5}).value());
}

TEST(RendererTest, SliceValidation) {
  Volume v = BallVolume();
  EXPECT_FALSE(RenderSlice(v, 3, 0).ok());
  EXPECT_FALSE(RenderSlice(v, -1, 0).ok());
  EXPECT_FALSE(RenderSlice(v, 0, 16).ok());
  EXPECT_FALSE(RenderSlice(v, 0, -1).ok());
}

TEST(ImageTest, SetAndGet) {
  Image image(4, 3);
  image.Set(1, 2, 10, 20, 30);
  EXPECT_EQ(image.Red(1, 2), 10);
  EXPECT_EQ(image.Green(1, 2), 20);
  EXPECT_EQ(image.Blue(1, 2), 30);
  image.SetGray(0, 0, 77);
  EXPECT_EQ(image.Red(0, 0), 77);
  EXPECT_EQ(image.Blue(0, 0), 77);
  EXPECT_NEAR(image.NonBlackFraction(), 2.0 / 12.0, 1e-12);
}

TEST(ImageTest, WritePpmProducesValidFile) {
  Image image(8, 8);
  image.SetGray(4, 4, 200);
  std::string path = ::testing::TempDir() + "/qbism_test.ppm";
  ASSERT_TRUE(image.WritePpm(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {};
  ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
  EXPECT_EQ(std::string(magic), "P6");
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(ImageTest, WritePpmBadPathFails) {
  Image image(2, 2);
  EXPECT_FALSE(image.WritePpm("/nonexistent_dir_xyz/file.ppm").ok());
}

}  // namespace
}  // namespace qbism::viz
