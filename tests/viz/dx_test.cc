#include "viz/dx.h"

#include <gtest/gtest.h>

namespace qbism::viz {
namespace {

using curve::CurveKind;
using geometry::Vec3i;
using region::GridSpec;
using region::Region;
using volume::DataRegion;
using volume::Volume;

const GridSpec kGrid{3, 4};

DataRegion MakeData() {
  Volume v = Volume::FromFunction(kGrid, CurveKind::kHilbert,
                                  [](const Vec3i& p) {
                                    return static_cast<uint8_t>(p.x * 10);
                                  });
  Region r = Region::FromBox(kGrid, CurveKind::kHilbert,
                             {{2, 2, 2}, {9, 9, 9}});
  return v.Extract(r).MoveValue();
}

TEST(DxTest, ImportVolumeDensifies) {
  DxExecutive dx;
  DataRegion data = MakeData();
  auto imported = dx.ImportVolume(data);
  EXPECT_EQ(imported.dense.grid(), kGrid);
  EXPECT_EQ(imported.dense.ValueAt({5, 5, 5}).value(), 50);
  EXPECT_EQ(imported.dense.ValueAt({15, 15, 15}).value(), 0);  // background
  EXPECT_GE(imported.cpu_seconds, 0.0);
}

TEST(DxTest, RenderProducesImage) {
  DxExecutive dx;
  auto imported = dx.ImportVolume(MakeData());
  auto rendered = dx.Render(imported.dense, Camera{0.3, 0.2, 64});
  EXPECT_EQ(rendered.image.width(), 64);
  EXPECT_GT(rendered.image.NonBlackFraction(), 0.0);
}

TEST(DxTest, RenderSurfaceWorks) {
  DxExecutive dx;
  DataRegion data = MakeData();
  TriangleMesh mesh = ExtractSurface(data.region());
  auto rendered = dx.RenderSurface(mesh, Camera{0.3, 0.2, 64}, kGrid);
  EXPECT_GT(rendered.image.NonBlackFraction(), 0.0);
}

TEST(DxTest, CachePutGetFlush) {
  DxExecutive dx;
  EXPECT_EQ(dx.CacheGet("q1"), nullptr);
  dx.CachePut("q1", std::make_shared<DataRegion>(MakeData()));
  ASSERT_NE(dx.CacheGet("q1"), nullptr);
  EXPECT_EQ(dx.CacheGet("q1")->VoxelCount(), 512u);
  EXPECT_EQ(dx.CacheSize(), 1u);
  // Re-put replaces.
  dx.CachePut("q1", std::make_shared<DataRegion>(MakeData()));
  EXPECT_EQ(dx.CacheSize(), 1u);
  dx.FlushCache();
  EXPECT_EQ(dx.CacheSize(), 0u);
  EXPECT_EQ(dx.CacheGet("q1"), nullptr);
}

}  // namespace
}  // namespace qbism::viz
