#include "viz/isosurface.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "viz/renderer.h"

namespace qbism::viz {
namespace {

using curve::CurveKind;
using geometry::Vec3i;
using region::GridSpec;
using volume::Volume;

const GridSpec kGrid{3, 5};  // 32^3

Volume BallField(double radius) {
  return Volume::FromFunction(kGrid, CurveKind::kHilbert,
                              [radius](const Vec3i& p) {
                                double dx = p.x - 16.0, dy = p.y - 16.0,
                                       dz = p.z - 16.0;
                                double d = std::sqrt(dx * dx + dy * dy +
                                                     dz * dz);
                                double v = 200.0 * (radius - d) / radius + 100;
                                return static_cast<uint8_t>(
                                    std::clamp(v, 0.0, 255.0));
                              });
}

TEST(IsoSurfaceTest, EmptyWhenIsoAboveEverything) {
  Volume v = BallField(8);
  TriangleMesh mesh = ExtractIsoSurface(v, 500.0);
  EXPECT_EQ(mesh.TriangleCount(), 0u);
  // And when everything is inside, no surface either.
  TriangleMesh none = ExtractIsoSurface(v, -1.0);
  EXPECT_EQ(none.TriangleCount(), 0u);
}

TEST(IsoSurfaceTest, SphereLevelSetLiesAtTheRightRadius) {
  const double radius = 8;
  Volume v = BallField(radius);
  // Level 100 corresponds to distance == radius.
  TriangleMesh mesh = ExtractIsoSurface(v, 100.0);
  ASSERT_GT(mesh.TriangleCount(), 100u);
  for (const auto& vertex : mesh.vertices) {
    double d = std::sqrt((vertex.x - 16) * (vertex.x - 16) +
                         (vertex.y - 16) * (vertex.y - 16) +
                         (vertex.z - 16) * (vertex.z - 16));
    EXPECT_NEAR(d, radius, 1.0) << "vertex off the level set";
  }
}

TEST(IsoSurfaceTest, WatertightInteriorSurface) {
  Volume v = BallField(8);
  TriangleMesh mesh = ExtractIsoSurface(v, 100.0);
  // Every directed edge must appear exactly once (closed orientable
  // surface; the sphere stays clear of the grid boundary).
  std::map<std::pair<uint32_t, uint32_t>, int> directed;
  for (const auto& t : mesh.triangles) {
    for (int k = 0; k < 3; ++k) {
      ++directed[{t[k], t[(k + 1) % 3]}];
    }
  }
  for (const auto& [edge, count] : directed) {
    ASSERT_EQ(count, 1);
    ASSERT_EQ(directed.count({edge.second, edge.first}), 1u);
  }
}

TEST(IsoSurfaceTest, NormalsPointOutward) {
  Volume v = BallField(8);
  TriangleMesh mesh = ExtractIsoSurface(v, 100.0);
  geometry::Vec3d center{16, 16, 16};
  int outward = 0, inward = 0;
  for (const auto& t : mesh.triangles) {
    const auto& a = mesh.vertices[t[0]];
    const auto& b = mesh.vertices[t[1]];
    const auto& c = mesh.vertices[t[2]];
    geometry::Vec3d normal = (b - a).Cross(c - a);
    if (normal.Norm() < 1e-12) continue;  // degenerate (corner == iso)
    geometry::Vec3d radial = (a + b + c) / 3.0 - center;
    (normal.Dot(radial) > 0 ? outward : inward)++;
  }
  EXPECT_EQ(inward, 0);
  EXPECT_GT(outward, 0);
}

TEST(IsoSurfaceTest, VerticesInterpolateBetweenLatticePoints) {
  Volume v = BallField(8);
  TriangleMesh mesh = ExtractIsoSurface(v, 100.0);
  int off_lattice = 0;
  for (const auto& vertex : mesh.vertices) {
    EXPECT_GE(vertex.x, 0.0);
    EXPECT_LT(vertex.x, 32.0);
    if (vertex.x != std::floor(vertex.x) || vertex.y != std::floor(vertex.y) ||
        vertex.z != std::floor(vertex.z)) {
      ++off_lattice;
    }
  }
  // Interpolation must actually happen (smooth surface, not cuberille).
  EXPECT_GT(off_lattice, static_cast<int>(mesh.vertices.size() / 2));
}

TEST(IsoSurfaceTest, HigherIsoShrinksTheSurface) {
  Volume v = BallField(10);
  TriangleMesh outer = ExtractIsoSurface(v, 100.0);  // d = 10
  TriangleMesh inner = ExtractIsoSurface(v, 200.0);  // d = 5
  double mean_outer = 0, mean_inner = 0;
  for (const auto& p : outer.vertices) {
    mean_outer += std::hypot(p.x - 16, p.y - 16, p.z - 16);
  }
  for (const auto& p : inner.vertices) {
    mean_inner += std::hypot(p.x - 16, p.y - 16, p.z - 16);
  }
  mean_outer /= static_cast<double>(outer.VertexCount());
  mean_inner /= static_cast<double>(inner.VertexCount());
  EXPECT_NEAR(mean_outer, 10.0, 0.7);
  EXPECT_NEAR(mean_inner, 5.0, 0.7);
}

TEST(IsoSurfaceTest, RendersLikeOtherMeshes) {
  Volume v = BallField(9);
  TriangleMesh mesh = ExtractIsoSurface(v, 100.0);
  Image image = RenderMesh(mesh, Camera{0.4, 0.3, 96}, kGrid);
  EXPECT_GT(image.NonBlackFraction(), 0.01);
}

}  // namespace
}  // namespace qbism::viz
