#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.h"
#include "region/encoded_ops.h"
#include "region/encoding.h"

namespace qbism::region {
namespace {

using curve::CurveKind;

const GridSpec kGrid{3, 4};

Region Blob(uint64_t seed) {
  Rng rng(seed);
  std::vector<Run> runs;
  uint64_t cursor = rng.NextBounded(50);
  while (cursor < kGrid.NumCells()) {
    uint64_t end = std::min(cursor + rng.NextBounded(40), kGrid.NumCells() - 1);
    runs.push_back(Run{cursor, end});
    cursor = end + 2 + rng.NextBounded(90);
  }
  return Region::FromRuns(kGrid, CurveKind::kHilbert, std::move(runs))
      .MoveValue();
}

/// Encoded payloads are immutable byte vectors; every operator streams
/// them through thread-local cursors. Many threads hammering the same
/// two payloads must agree with the single-threaded reference and raise
/// no races (this suite runs under the tsan preset via `concurrency`).
TEST(EncodedOpsConcurrencyTest, SharedPayloadsAreSafeToStreamInParallel) {
  Region a = Blob(1);
  Region b = Blob(2);
  const std::vector<uint8_t> ea =
      EncodeRegion(a, RegionEncoding::kEliasDeltas).MoveValue();
  const std::vector<uint8_t> eb =
      EncodeRegion(b, RegionEncoding::kEliasDeltas).MoveValue();
  const std::vector<uint8_t> expect_inter =
      EncodeRegion(a.IntersectWith(b).MoveValue(),
                   RegionEncoding::kEliasDeltas)
          .MoveValue();
  const std::vector<uint8_t> expect_union =
      EncodeRegion(a.UnionWith(b).MoveValue(), RegionEncoding::kEliasDeltas)
          .MoveValue();
  const bool expect_contains = a.Contains(b).MoveValue();
  const uint64_t expect_voxels = a.VoxelCount();

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 25;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kItersPerThread; ++i) {
        auto inter = EncodedSetOp(kGrid, SetOpKind::kIntersect, ea, eb);
        if (!inter.ok() || *inter != expect_inter) ++failures[t];
        auto uni = EncodedSetOp(kGrid, SetOpKind::kUnion, ea, eb);
        if (!uni.ok() || *uni != expect_union) ++failures[t];
        auto contains = EncodedContains(kGrid, ea, eb);
        if (!contains.ok() || *contains != expect_contains) ++failures[t];
        auto voxels = EncodedVoxelCount(kGrid, ea);
        if (!voxels.ok() || *voxels != expect_voxels) ++failures[t];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace qbism::region
