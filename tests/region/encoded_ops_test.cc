#include "region/encoded_ops.h"

#include <gtest/gtest.h>

#include "common/bitstream.h"
#include "common/rng.h"
#include "compress/codes.h"
#include "region/encoding.h"

namespace qbism::region {
namespace {

using curve::CurveKind;

const GridSpec kGrid{3, 4};

Region Blob(uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> ids;
  uint64_t cursor = rng.NextBounded(64);
  while (cursor < kGrid.NumCells()) {
    uint64_t run = 1 + rng.NextBounded(30);
    for (uint64_t i = 0; i < run && cursor + i < kGrid.NumCells(); ++i) {
      ids.push_back(cursor + i);
    }
    cursor += run + 1 + rng.NextBounded(100);
  }
  return Region::FromIds(kGrid, CurveKind::kHilbert, std::move(ids))
      .MoveValue();
}

std::vector<uint8_t> Encode(const Region& r) {
  return EncodeRegion(r, RegionEncoding::kEliasDeltas).MoveValue();
}

Region RunsRegion(std::vector<Run> runs) {
  return Region::FromRuns(kGrid, CurveKind::kHilbert, std::move(runs))
      .MoveValue();
}

/// The core tentpole guarantee: merging the γ-coded streams yields the
/// exact bytes that encoding the decode-then-op result would.
TEST(EncodedSetOpTest, ByteIdenticalToDecodeThenOp) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Region a = Blob(seed);
    Region b = Blob(seed + 100);
    std::vector<uint8_t> ea = Encode(a);
    std::vector<uint8_t> eb = Encode(b);
    struct Case {
      SetOpKind op;
      Result<Region> reference;
    };
    Case cases[] = {
        {SetOpKind::kIntersect, a.IntersectWith(b)},
        {SetOpKind::kUnion, a.UnionWith(b)},
        {SetOpKind::kDifference, a.DifferenceWith(b)},
    };
    for (auto& c : cases) {
      ASSERT_TRUE(c.reference.ok());
      auto encoded = EncodedSetOp(kGrid, c.op, ea, eb);
      ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
      EXPECT_EQ(*encoded, Encode(*c.reference)) << "seed " << seed;
    }
  }
}

TEST(EncodedSetOpTest, EmptyAndFullOperands) {
  Region empty(kGrid, CurveKind::kHilbert);
  Region full = Region::Full(kGrid, CurveKind::kHilbert);
  Region blob = Blob(3);
  const Region* regions[] = {&empty, &full, &blob};
  for (const Region* a : regions) {
    for (const Region* b : regions) {
      std::vector<uint8_t> ea = Encode(*a);
      std::vector<uint8_t> eb = Encode(*b);
      auto inter = EncodedSetOp(kGrid, SetOpKind::kIntersect, ea, eb);
      ASSERT_TRUE(inter.ok());
      EXPECT_EQ(*inter, Encode(a->IntersectWith(*b).MoveValue()));
      auto uni = EncodedSetOp(kGrid, SetOpKind::kUnion, ea, eb);
      ASSERT_TRUE(uni.ok());
      EXPECT_EQ(*uni, Encode(a->UnionWith(*b).MoveValue()));
      auto diff = EncodedSetOp(kGrid, SetOpKind::kDifference, ea, eb);
      ASSERT_TRUE(diff.ok());
      EXPECT_EQ(*diff, Encode(a->DifferenceWith(*b).MoveValue()));
    }
  }
}

/// Adjacent-run edges: a union whose operands touch end-to-start must
/// come out as one merged run (canonical non-adjacency), byte-identical
/// to the materialized path.
TEST(EncodedSetOpTest, UnionMergesAdjacentRuns) {
  Region a = RunsRegion({{0, 9}, {20, 29}});
  Region b = RunsRegion({{10, 19}, {30, 35}});
  auto merged = EncodedSetOp(kGrid, SetOpKind::kUnion, Encode(a), Encode(b));
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, Encode(RunsRegion({{0, 35}})));
  auto back = DecodeRegion(kGrid, CurveKind::kHilbert,
                           RegionEncoding::kEliasDeltas, *merged);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->RunCount(), 1u);
}

TEST(EncodedSetOpTest, DifferenceSplitsRuns) {
  Region a = RunsRegion({{0, 29}});
  Region b = RunsRegion({{5, 9}, {15, 15}});
  auto diff = EncodedSetOp(kGrid, SetOpKind::kDifference, Encode(a),
                           Encode(b));
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(*diff, Encode(RunsRegion({{0, 4}, {10, 14}, {16, 29}})));
}

TEST(EncodedContainsTest, MatchesReference) {
  Region a = Blob(5);
  Region sub =
      a.IntersectWith(RunsRegion({{0, kGrid.NumCells() / 2}})).MoveValue();
  auto yes = EncodedContains(kGrid, Encode(a), Encode(sub));
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  Region other = Blob(6);
  auto ref = a.Contains(other);
  ASSERT_TRUE(ref.ok());
  auto got = EncodedContains(kGrid, Encode(a), Encode(other));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *ref);
}

/// Early exit: once a b-run is found uncovered, the rest of the stream
/// is never read — garbage after the deciding run must not matter. The
/// payload is hand-built: a valid header and first run, then junk bits
/// that would fail decoding if reached.
TEST(EncodedContainsTest, EarlyExitStopsReadingTheStream) {
  Region a = RunsRegion({{50, 60}});
  BitWriter w;
  compress::EliasGammaEncode(3 + 1, &w);  // 3 runs claimed
  compress::EliasGammaEncode(0 + 1, &w);  // first run starts at 0
  compress::EliasGammaEncode(5, &w);      // run [0, 4] — not covered by a
  // Gap symbol so large the next run would leave the grid: decoding
  // past the first run would fail with OutOfRange.
  compress::EliasGammaEncode(kGrid.NumCells() * 2, &w);
  compress::EliasGammaEncode(1, &w);
  compress::EliasGammaEncode(1, &w);
  compress::EliasGammaEncode(1, &w);
  auto contains = EncodedContains(kGrid, Encode(a), w.Finish());
  ASSERT_TRUE(contains.ok()) << contains.status().ToString();
  EXPECT_FALSE(*contains);
}

TEST(EncodedCountsTest, MatchReference) {
  for (uint64_t seed : {1ull, 7ull, 9ull}) {
    Region r = Blob(seed);
    auto voxels = EncodedVoxelCount(kGrid, Encode(r));
    ASSERT_TRUE(voxels.ok());
    EXPECT_EQ(*voxels, r.VoxelCount());
    auto runs = EncodedRunCount(kGrid, Encode(r));
    ASSERT_TRUE(runs.ok());
    EXPECT_EQ(*runs, r.RunCount());
  }
  Region empty(kGrid, CurveKind::kHilbert);
  EXPECT_EQ(EncodedVoxelCount(kGrid, Encode(empty)).MoveValue(), 0u);
  EXPECT_EQ(EncodedRunCount(kGrid, Encode(empty)).MoveValue(), 0u);
}

TEST(EncodedOpsCorruptionTest, TruncatedStreamsFailCleanly) {
  std::vector<uint8_t> payload = Encode(Blob(4));
  for (size_t n = 0; n < payload.size(); ++n) {
    std::vector<uint8_t> cut(payload.begin(),
                             payload.begin() + static_cast<ptrdiff_t>(n));
    // Operand order should not matter for clean failure.
    EXPECT_FALSE(EncodedSetOp(kGrid, SetOpKind::kUnion, cut, payload).ok());
    EXPECT_FALSE(EncodedVoxelCount(kGrid, cut).ok());
  }
}

TEST(EncodedOpsCorruptionTest, ImplausibleRunCountRejected) {
  BitWriter w;
  compress::EliasGammaEncode(kGrid.NumCells(), &w);  // far too many runs
  compress::EliasGammaEncode(1, &w);
  std::vector<uint8_t> bad = w.Finish();
  auto count = EncodedRunCount(kGrid, bad);
  EXPECT_FALSE(count.ok());
  EXPECT_TRUE(count.status().IsCorruption());
  EXPECT_FALSE(
      EncodedSetOp(kGrid, SetOpKind::kIntersect, bad, Encode(Blob(1))).ok());
}

TEST(EncodedOpsCorruptionTest, RunBeyondGridRejected) {
  BitWriter w;
  compress::EliasGammaEncode(1 + 1, &w);                // one run
  compress::EliasGammaEncode(1, &w);                    // starts at 0
  compress::EliasGammaEncode(kGrid.NumCells() + 5, &w); // longer than grid
  std::vector<uint8_t> bad = w.Finish();
  auto count = EncodedVoxelCount(kGrid, bad);
  EXPECT_FALSE(count.ok());
}

TEST(EncodedRegionTest, RoundTripAndOps) {
  Region a = Blob(11);
  Region b = Blob(12);
  auto ea = EncodedRegion::FromRegion(a).MoveValue();
  auto eb = EncodedRegion::FromRegion(b).MoveValue();
  EXPECT_EQ(ea.Decode().MoveValue(), a);
  auto inter = ea.IntersectWith(eb);
  ASSERT_TRUE(inter.ok());
  EXPECT_EQ(inter->Decode().MoveValue(), a.IntersectWith(b).MoveValue());
  // Chains stay encoded: op output feeds the next op without a decode.
  auto chain = inter->UnionWith(eb);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->Decode().MoveValue(),
            a.IntersectWith(b).MoveValue().UnionWith(b).MoveValue());
  EXPECT_EQ(ea.VoxelCount().MoveValue(), a.VoxelCount());
  EXPECT_EQ(ea.RunCount().MoveValue(), a.RunCount());
  EXPECT_EQ(ea.Contains(eb).MoveValue(), a.Contains(b).MoveValue());
}

TEST(EncodedRegionTest, MismatchedGridRejected) {
  auto ea = EncodedRegion::FromRegion(Blob(1)).MoveValue();
  Region other(GridSpec{3, 5}, CurveKind::kHilbert);
  auto eb = EncodedRegion::FromRegion(other).MoveValue();
  EXPECT_FALSE(ea.IntersectWith(eb).ok());
  EXPECT_FALSE(ea.Contains(eb).ok());
}

TEST(FromCanonicalRunsTest, AcceptsCanonicalRejectsOthers) {
  auto ok = Region::FromCanonicalRuns(kGrid, CurveKind::kHilbert,
                                      {{0, 4}, {6, 9}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->RunCount(), 2u);
  // Adjacent (gap 0), overlapping, unsorted, reversed, out-of-grid.
  EXPECT_FALSE(
      Region::FromCanonicalRuns(kGrid, CurveKind::kHilbert, {{0, 4}, {5, 9}})
          .ok());
  EXPECT_FALSE(
      Region::FromCanonicalRuns(kGrid, CurveKind::kHilbert, {{0, 4}, {2, 9}})
          .ok());
  EXPECT_FALSE(
      Region::FromCanonicalRuns(kGrid, CurveKind::kHilbert, {{6, 9}, {0, 4}})
          .ok());
  EXPECT_FALSE(
      Region::FromCanonicalRuns(kGrid, CurveKind::kHilbert, {{4, 0}}).ok());
  EXPECT_FALSE(Region::FromCanonicalRuns(kGrid, CurveKind::kHilbert,
                                         {{0, kGrid.NumCells()}})
                   .ok());
}

/// The emitter is the encode half of the streaming path; its output for
/// a plain run sequence must match EncodeRegion exactly.
TEST(EncodedRunEmitterTest, MatchesEncodeRegion) {
  Region r = Blob(21);
  EncodedRunEmitter emitter;
  for (const auto& run : r.runs()) emitter.Append(run.start, run.end);
  EXPECT_EQ(emitter.Finish(), Encode(r));
  // Reset-after-Finish: reusing the emitter starts a fresh stream.
  EncodedRunEmitter reused;
  reused.Append(1, 2);
  (void)reused.Finish();
  Region empty(kGrid, CurveKind::kHilbert);
  EXPECT_EQ(reused.Finish(), Encode(empty));
}

}  // namespace
}  // namespace qbism::region
