#include "region/region.h"

#include <gtest/gtest.h>

namespace qbism::region {
namespace {

using curve::CurveKind;
using geometry::Box3i;
using geometry::Vec3i;

const GridSpec kGrid3{3, 4};  // 16^3
const GridSpec kGrid2{2, 2};  // 4x4

TEST(GridSpecTest, Sizes) {
  EXPECT_EQ(kGrid3.SideLength(), 16u);
  EXPECT_EQ(kGrid3.NumCells(), 4096u);
  EXPECT_EQ(kGrid2.NumCells(), 16u);
  GridSpec paper{3, 7};
  EXPECT_EQ(paper.NumCells(), 2097152u);  // §6.1: 2M voxels per study
}

TEST(GridSpecTest, ContainsPoint) {
  EXPECT_TRUE(kGrid3.ContainsPoint({0, 0, 0}));
  EXPECT_TRUE(kGrid3.ContainsPoint({15, 15, 15}));
  EXPECT_FALSE(kGrid3.ContainsPoint({16, 0, 0}));
  EXPECT_FALSE(kGrid3.ContainsPoint({-1, 0, 0}));
  EXPECT_TRUE(kGrid2.ContainsPoint({3, 3, 0}));
  EXPECT_FALSE(kGrid2.ContainsPoint({3, 3, 1}));  // 2-d grid has z == 0
}

TEST(RegionTest, EmptyRegion) {
  Region r(kGrid3, CurveKind::kHilbert);
  EXPECT_TRUE(r.Empty());
  EXPECT_EQ(r.VoxelCount(), 0u);
  EXPECT_EQ(r.RunCount(), 0u);
  EXPECT_FALSE(r.ContainsId(0));
}

TEST(RegionTest, FullRegion) {
  Region r = Region::Full(kGrid3, CurveKind::kHilbert);
  EXPECT_EQ(r.VoxelCount(), 4096u);
  EXPECT_EQ(r.RunCount(), 1u);
  EXPECT_TRUE(r.ContainsId(0));
  EXPECT_TRUE(r.ContainsId(4095));
}

TEST(RegionTest, FromRunsCanonicalizes) {
  // Overlapping, adjacent, and unsorted runs must merge.
  auto r = Region::FromRuns(kGrid3, CurveKind::kHilbert,
                            {{10, 20}, {5, 12}, {21, 30}, {100, 100}});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->RunCount(), 2u);
  EXPECT_EQ(r->runs()[0], (region::Run{5, 30}));
  EXPECT_EQ(r->runs()[1], (region::Run{100, 100}));
  EXPECT_EQ(r->VoxelCount(), 27u);
}

TEST(RegionTest, FromRunsRejectsBadInput) {
  EXPECT_FALSE(Region::FromRuns(kGrid3, CurveKind::kHilbert, {{5, 4}}).ok());
  EXPECT_FALSE(
      Region::FromRuns(kGrid3, CurveKind::kHilbert, {{0, 4096}}).ok());
}

TEST(RegionTest, FromIdsSortsAndDedupes) {
  auto r = Region::FromIds(kGrid3, CurveKind::kHilbert, {7, 3, 5, 4, 3, 7});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->VoxelCount(), 4u);
  ASSERT_EQ(r->RunCount(), 2u);
  EXPECT_EQ(r->runs()[0], (region::Run{3, 5}));
  EXPECT_EQ(r->runs()[1], (region::Run{7, 7}));
}

TEST(RegionTest, FromIdsRejectsOutOfGrid) {
  EXPECT_FALSE(Region::FromIds(kGrid3, CurveKind::kHilbert, {4096}).ok());
}

TEST(RegionTest, ContainsIdBinarySearch) {
  auto r = Region::FromRuns(kGrid3, CurveKind::kHilbert,
                            {{10, 20}, {40, 45}, {100, 200}})
               .MoveValue();
  EXPECT_FALSE(r.ContainsId(9));
  EXPECT_TRUE(r.ContainsId(10));
  EXPECT_TRUE(r.ContainsId(15));
  EXPECT_TRUE(r.ContainsId(20));
  EXPECT_FALSE(r.ContainsId(21));
  EXPECT_FALSE(r.ContainsId(39));
  EXPECT_TRUE(r.ContainsId(40));
  EXPECT_TRUE(r.ContainsId(200));
  EXPECT_FALSE(r.ContainsId(201));
}

TEST(RegionTest, FromBoxMatchesMembership) {
  Box3i box{{2, 3, 4}, {5, 6, 7}};
  Region r = Region::FromBox(kGrid3, CurveKind::kHilbert, box);
  EXPECT_EQ(r.VoxelCount(), 4u * 4u * 4u);
  for (int32_t z = 0; z < 16; ++z) {
    for (int32_t y = 0; y < 16; ++y) {
      for (int32_t x = 0; x < 16; ++x) {
        EXPECT_EQ(r.ContainsPoint({x, y, z}), box.Contains({x, y, z}))
            << x << "," << y << "," << z;
      }
    }
  }
}

TEST(RegionTest, FromBoxClipsToGrid) {
  Region r = Region::FromBox(kGrid3, CurveKind::kHilbert,
                             {{14, 14, 14}, {99, 99, 99}});
  EXPECT_EQ(r.VoxelCount(), 8u);
  Region empty = Region::FromBox(kGrid3, CurveKind::kHilbert,
                                 {{20, 20, 20}, {30, 30, 30}});
  EXPECT_TRUE(empty.Empty());
}

TEST(RegionTest, FromPredicateMatchesPointwise) {
  auto inside = [](const Vec3i& p) { return (p.x + p.y + p.z) % 3 == 0; };
  Region r = Region::FromPredicate(kGrid3, CurveKind::kZ, inside);
  uint64_t expected = 0;
  for (int32_t z = 0; z < 16; ++z) {
    for (int32_t y = 0; y < 16; ++y) {
      for (int32_t x = 0; x < 16; ++x) {
        if (inside({x, y, z})) ++expected;
        EXPECT_EQ(r.ContainsPoint({x, y, z}), inside({x, y, z}));
      }
    }
  }
  EXPECT_EQ(r.VoxelCount(), expected);
}

TEST(RegionTest, FromShapeSphere) {
  geometry::Ellipsoid sphere({8, 8, 8}, {4, 4, 4});
  Region r = Region::FromShape(kGrid3, CurveKind::kHilbert, sphere);
  // Volume of a radius-4 ball ~ 268 voxels; rasterization is approximate.
  EXPECT_GT(r.VoxelCount(), 200u);
  EXPECT_LT(r.VoxelCount(), 350u);
  EXPECT_TRUE(r.ContainsPoint({8, 8, 8}));
  EXPECT_FALSE(r.ContainsPoint({0, 0, 0}));
}

TEST(RegionTest, ToPointsRoundTrip) {
  auto r = Region::FromIds(kGrid3, CurveKind::kHilbert, {0, 1, 2, 77, 4000})
               .MoveValue();
  auto points = r.ToPoints();
  ASSERT_EQ(points.size(), 5u);
  for (const Vec3i& p : points) EXPECT_TRUE(r.ContainsPoint(p));
}

TEST(RegionTest, ConvertToOtherCurvePreservesVoxels) {
  geometry::Ellipsoid sphere({8, 8, 8}, {5, 3, 4});
  Region h = Region::FromShape(kGrid3, CurveKind::kHilbert, sphere);
  Region z = h.ConvertTo(CurveKind::kZ);
  EXPECT_EQ(z.curve_kind(), CurveKind::kZ);
  EXPECT_EQ(z.VoxelCount(), h.VoxelCount());
  for (int32_t zc = 0; zc < 16; ++zc) {
    for (int32_t y = 0; y < 16; ++y) {
      for (int32_t x = 0; x < 16; ++x) {
        EXPECT_EQ(h.ContainsPoint({x, y, zc}), z.ContainsPoint({x, y, zc}));
      }
    }
  }
  // Converting back restores the original exactly.
  EXPECT_EQ(z.ConvertTo(CurveKind::kHilbert), h);
}

TEST(RegionTest, DeltaLengthsAlternateAndCoverGrid) {
  auto r = Region::FromRuns(kGrid3, CurveKind::kHilbert, {{4, 7}, {20, 29}})
               .MoveValue();
  auto deltas = r.DeltaLengths();
  // gap 0-3 (4), run 4-7 (4), gap 8-19 (12), run 20-29 (10), gap to end.
  ASSERT_EQ(deltas.size(), 5u);
  EXPECT_EQ(deltas[0], 4u);
  EXPECT_EQ(deltas[1], 4u);
  EXPECT_EQ(deltas[2], 12u);
  EXPECT_EQ(deltas[3], 10u);
  EXPECT_EQ(deltas[4], 4096u - 30u);
  uint64_t total = 0;
  for (uint64_t d : deltas) total += d;
  EXPECT_EQ(total, kGrid3.NumCells());
}

TEST(RegionTest, DeltaLengthsNoLeadingGapWhenStartsAtZero) {
  auto r =
      Region::FromRuns(kGrid3, CurveKind::kHilbert, {{0, 9}}).MoveValue();
  auto deltas = r.DeltaLengths();
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0], 10u);
}

TEST(RegionBuilderTest, MergesAdjacentAppends) {
  RegionBuilder builder(kGrid3, CurveKind::kHilbert);
  builder.AppendId(5);
  builder.AppendId(6);
  builder.AppendRun(7, 10);
  builder.AppendRun(12, 14);
  Region r = builder.Build();
  ASSERT_EQ(r.RunCount(), 2u);
  EXPECT_EQ(r.runs()[0], (region::Run{5, 10}));
  EXPECT_EQ(r.runs()[1], (region::Run{12, 14}));
}

TEST(RegionBuilderTest, ResetsAfterBuild) {
  RegionBuilder builder(kGrid3, CurveKind::kHilbert);
  builder.AppendId(1);
  Region first = builder.Build();
  builder.AppendId(2);
  Region second = builder.Build();
  EXPECT_EQ(first.VoxelCount(), 1u);
  EXPECT_EQ(second.VoxelCount(), 1u);
  EXPECT_TRUE(second.ContainsId(2));
  EXPECT_FALSE(second.ContainsId(1));
}

TEST(RegionTest, CanonicalFormInvariants) {
  geometry::Ellipsoid sphere({8, 8, 8}, {6, 5, 4});
  Region r = Region::FromShape(kGrid3, CurveKind::kHilbert, sphere);
  const auto& runs = r.runs();
  for (size_t i = 0; i < runs.size(); ++i) {
    EXPECT_LE(runs[i].start, runs[i].end);
    EXPECT_LT(runs[i].end, kGrid3.NumCells());
    if (i > 0) {
      // Sorted, disjoint, non-adjacent.
      EXPECT_GT(runs[i].start, runs[i - 1].end + 1);
    }
  }
}

}  // namespace
}  // namespace qbism::region
