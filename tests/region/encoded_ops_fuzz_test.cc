#include <gtest/gtest.h>

#include "common/rng.h"
#include "region/encoded_ops.h"
#include "region/encoding.h"

namespace qbism::region {
namespace {

using curve::CurveKind;

/// Differential fuzzing of the encoded-domain operators against the
/// decode-then-op reference: for every random pair, every operator must
/// produce byte-identical output (set ops) or an identical verdict
/// (CONTAINS), and mutated payloads must fail exactly when DecodeRegion
/// fails — never crash, never silently diverge.

const GridSpec kGrid{3, 4};

std::vector<uint8_t> Encode(const Region& r) {
  return EncodeRegion(r, RegionEncoding::kEliasDeltas).MoveValue();
}

Result<Region> Decode(const std::vector<uint8_t>& bytes) {
  return DecodeRegion(kGrid, CurveKind::kHilbert,
                      RegionEncoding::kEliasDeltas, bytes);
}

/// Random canonical region with tunable density, biased to produce the
/// edge shapes that trip merge logic: leading/trailing runs at the grid
/// boundary, single-voxel runs, and single-id gaps.
Region RandomRegion(Rng* rng) {
  std::vector<Run> runs;
  uint64_t cursor = rng->NextBounded(4) == 0 ? 0 : rng->NextBounded(80);
  while (cursor < kGrid.NumCells()) {
    uint64_t len = 1 + rng->NextBounded(rng->NextBounded(2) ? 4 : 60);
    uint64_t end = std::min(cursor + len - 1, kGrid.NumCells() - 1);
    runs.push_back(Run{cursor, end});
    // Gap of exactly 1 a third of the time: adjacency boundaries.
    uint64_t gap = rng->NextBounded(3) == 0 ? 1 : 1 + rng->NextBounded(120);
    cursor = end + 1 + gap;
  }
  return Region::FromRuns(kGrid, CurveKind::kHilbert, std::move(runs))
      .MoveValue();
}

TEST(EncodedOpsFuzzTest, RandomPairsMatchDecodeThenOpReference) {
  Rng rng(20260808);
  for (int iter = 0; iter < 300; ++iter) {
    Region a = RandomRegion(&rng);
    Region b = RandomRegion(&rng);
    std::vector<uint8_t> ea = Encode(a);
    std::vector<uint8_t> eb = Encode(b);

    struct Case {
      SetOpKind op;
      Result<Region> reference;
    };
    Case cases[] = {
        {SetOpKind::kIntersect, a.IntersectWith(b)},
        {SetOpKind::kUnion, a.UnionWith(b)},
        {SetOpKind::kDifference, a.DifferenceWith(b)},
    };
    for (auto& c : cases) {
      ASSERT_TRUE(c.reference.ok());
      auto got = EncodedSetOp(kGrid, c.op, ea, eb);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(*got, Encode(*c.reference)) << "iter " << iter;
      // And the output must itself decode back to the reference.
      auto round = Decode(*got);
      ASSERT_TRUE(round.ok());
      ASSERT_EQ(*round, *c.reference);
    }

    auto contains = EncodedContains(kGrid, ea, eb);
    ASSERT_TRUE(contains.ok());
    ASSERT_EQ(*contains, a.Contains(b).MoveValue());
    ASSERT_TRUE(EncodedContains(kGrid, ea, ea).MoveValue());

    ASSERT_EQ(EncodedVoxelCount(kGrid, ea).MoveValue(), a.VoxelCount());
    ASSERT_EQ(EncodedRunCount(kGrid, eb).MoveValue(), b.RunCount());
  }
}

TEST(EncodedOpsFuzzTest, EmptyFullAndAdjacentEdgePairs) {
  Region empty(kGrid, CurveKind::kHilbert);
  Region full = Region::Full(kGrid, CurveKind::kHilbert);
  uint64_t last = kGrid.NumCells() - 1;
  auto runs = [](std::vector<region::Run> rs) {
    return Region::FromRuns(kGrid, CurveKind::kHilbert, std::move(rs))
        .MoveValue();
  };
  std::vector<Region> edges = {
      empty,
      full,
      runs({{0, 0}}),                      // single first voxel
      runs({{last, last}}),                // single last voxel
      runs({{0, last / 2}}),               // first half
      runs({{last / 2 + 1, last}}),        // adjacent second half
      runs({{0, 0}, {2, 2}, {4, 4}}),      // comb of unit runs
      runs({{1, 1}, {3, 3}, {5, 5}}),      // interleaving comb
  };
  for (const Region& a : edges) {
    for (const Region& b : edges) {
      std::vector<uint8_t> ea = Encode(a);
      std::vector<uint8_t> eb = Encode(b);
      EXPECT_EQ(EncodedSetOp(kGrid, SetOpKind::kIntersect, ea, eb)
                    .MoveValue(),
                Encode(a.IntersectWith(b).MoveValue()));
      EXPECT_EQ(EncodedSetOp(kGrid, SetOpKind::kUnion, ea, eb).MoveValue(),
                Encode(a.UnionWith(b).MoveValue()));
      EXPECT_EQ(
          EncodedSetOp(kGrid, SetOpKind::kDifference, ea, eb).MoveValue(),
          Encode(a.DifferenceWith(b).MoveValue()));
      EXPECT_EQ(EncodedContains(kGrid, ea, eb).MoveValue(),
                a.Contains(b).MoveValue());
    }
  }
}

/// Mutated payloads: flip bits / truncate / extend a valid payload. The
/// encoded op must succeed exactly when both operands still DecodeRegion
/// cleanly — and then match the reference — and fail cleanly otherwise.
TEST(EncodedOpsFuzzTest, MutatedPayloadsFailExactlyWhenDecodeFails) {
  Rng rng(987654321);
  Region base = RandomRegion(&rng);
  std::vector<uint8_t> good = Encode(RandomRegion(&rng));
  ASSERT_TRUE(Decode(good).ok());
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<uint8_t> mutated = Encode(base);
    switch (rng.NextBounded(3)) {
      case 0: {  // bit flips
        int flips = 1 + static_cast<int>(rng.NextBounded(4));
        for (int f = 0; f < flips && !mutated.empty(); ++f) {
          size_t i = static_cast<size_t>(rng.NextBounded(mutated.size()));
          mutated[i] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
        }
        break;
      }
      case 1:  // truncate
        mutated.resize(rng.NextBounded(mutated.size() + 1));
        break;
      default:  // append junk
        for (int e = 0; e < 3; ++e) {
          mutated.push_back(static_cast<uint8_t>(rng.NextBounded(256)));
        }
        break;
    }
    auto decoded = Decode(mutated);
    for (SetOpKind op : {SetOpKind::kIntersect, SetOpKind::kUnion,
                         SetOpKind::kDifference}) {
      auto got = EncodedSetOp(kGrid, op, mutated, good);
      if (decoded.ok()) {
        // Note: appended junk bytes change the payload without changing
        // the decoded region; the streaming path reads the same symbols,
        // so it must agree with the reference.
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        Region ref = [&]() {
          const Region& m = *decoded;
          const Region other = Decode(good).MoveValue();
          switch (op) {
            case SetOpKind::kIntersect:
              return m.IntersectWith(other).MoveValue();
            case SetOpKind::kUnion:
              return m.UnionWith(other).MoveValue();
            default:
              return m.DifferenceWith(other).MoveValue();
          }
        }();
        ASSERT_EQ(*got, Encode(ref)) << "iter " << iter;
      } else {
        ASSERT_FALSE(got.ok()) << "iter " << iter;
      }
    }
    auto count = EncodedVoxelCount(kGrid, mutated);
    ASSERT_EQ(count.ok(), decoded.ok()) << "iter " << iter;
    if (count.ok()) ASSERT_EQ(*count, decoded->VoxelCount());
  }
}

}  // namespace
}  // namespace qbism::region
