// The clustering property behind the paper's physical design: Hilbert
// linearization yields fewer (and longer) runs than Z order for typical
// query regions, across random boxes, balls, and predicate regions.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/shapes.h"
#include "region/region.h"

namespace qbism::region {
namespace {

using curve::CurveKind;

const GridSpec kGrid{3, 5};  // 32^3

TEST(ClusteringTest, RandomBoxesFavorHilbert) {
  Rng rng(11);
  uint64_t h_total = 0, z_total = 0;
  int h_wins = 0, ties = 0, trials = 0;
  for (int trial = 0; trial < 60; ++trial) {
    int32_t x0 = static_cast<int32_t>(rng.NextBounded(24));
    int32_t y0 = static_cast<int32_t>(rng.NextBounded(24));
    int32_t z0 = static_cast<int32_t>(rng.NextBounded(24));
    int32_t w = 2 + static_cast<int32_t>(rng.NextBounded(8));
    Region h = Region::FromBox(kGrid, CurveKind::kHilbert,
                               {{x0, y0, z0}, {x0 + w, y0 + w, z0 + w}});
    Region z = h.ConvertTo(CurveKind::kZ);
    h_total += h.RunCount();
    z_total += z.RunCount();
    if (h.RunCount() < z.RunCount()) ++h_wins;
    if (h.RunCount() == z.RunCount()) ++ties;
    ++trials;
  }
  // Aggregate ratio near the paper's ~1.2 for rectangles ([9]).
  double ratio = static_cast<double>(z_total) / static_cast<double>(h_total);
  EXPECT_GT(ratio, 1.05);
  // Hilbert wins or ties the vast majority of individual boxes.
  EXPECT_GE(h_wins + ties, trials * 3 / 4);
}

TEST(ClusteringTest, RandomBallsFavorHilbert) {
  Rng rng(13);
  uint64_t h_total = 0, z_total = 0;
  for (int trial = 0; trial < 25; ++trial) {
    geometry::Vec3d center{rng.NextDoubleIn(8, 24), rng.NextDoubleIn(8, 24),
                           rng.NextDoubleIn(8, 24)};
    double r = rng.NextDoubleIn(3, 7);
    geometry::Ellipsoid ball(center, {r, r, r});
    Region h = Region::FromShape(kGrid, CurveKind::kHilbert, ball);
    if (h.Empty()) continue;
    h_total += h.RunCount();
    z_total += h.ConvertTo(CurveKind::kZ).RunCount();
  }
  EXPECT_GT(z_total, h_total);
}

TEST(ClusteringTest, HilbertRunsMeanLongerRuns) {
  geometry::Ellipsoid blob({16, 15, 17}, {10, 9, 8});
  Region h = Region::FromShape(kGrid, CurveKind::kHilbert, blob);
  Region z = h.ConvertTo(CurveKind::kZ);
  double h_mean = static_cast<double>(h.VoxelCount()) /
                  static_cast<double>(h.RunCount());
  double z_mean = static_cast<double>(z.VoxelCount()) /
                  static_cast<double>(z.RunCount());
  EXPECT_GT(h_mean, z_mean);
}

TEST(ClusteringTest, FullAndEmptyAreCurveInvariant) {
  // Degenerate regions cannot favour either curve.
  Region full_h = Region::Full(kGrid, CurveKind::kHilbert);
  EXPECT_EQ(full_h.ConvertTo(CurveKind::kZ).RunCount(), 1u);
  Region empty(kGrid, CurveKind::kHilbert);
  EXPECT_EQ(empty.ConvertTo(CurveKind::kZ).RunCount(), 0u);
}

}  // namespace
}  // namespace qbism::region
