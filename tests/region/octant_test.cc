#include <gtest/gtest.h>

#include "region/region.h"

namespace qbism::region {
namespace {

using curve::CurveKind;

const GridSpec kGrid3{3, 4};
const GridSpec kGrid2{2, 2};

Region R3(std::vector<Run> runs) {
  return Region::FromRuns(kGrid3, CurveKind::kHilbert, std::move(runs))
      .MoveValue();
}

uint64_t CoveredVoxels(const std::vector<Octant>& octants) {
  uint64_t total = 0;
  for (const Octant& o : octants) total += o.Length();
  return total;
}

TEST(OctantTest, SingleVoxelIsRankZero) {
  Region r = R3({{5, 5}});
  auto oblong = r.ToOblongOctants();
  ASSERT_EQ(oblong.size(), 1u);
  EXPECT_EQ(oblong[0], (Octant{5, 0}));
  auto cubic = r.ToOctants();
  ASSERT_EQ(cubic.size(), 1u);
  EXPECT_EQ(cubic[0], (Octant{5, 0}));
}

TEST(OctantTest, AlignedPowerOfTwoRunIsOneOblongOctant) {
  Region r = R3({{64, 127}});  // 64 ids aligned at 64 = 2^6
  auto oblong = r.ToOblongOctants();
  ASSERT_EQ(oblong.size(), 1u);
  EXPECT_EQ(oblong[0], (Octant{64, 6}));
  // 2^6 with dims=3 is also a cubic octant (6 % 3 == 0).
  auto cubic = r.ToOctants();
  ASSERT_EQ(cubic.size(), 1u);
  EXPECT_EQ(cubic[0], (Octant{64, 6}));
}

TEST(OctantTest, CubicRequiresRankMultipleOfDims) {
  // 16 ids aligned at 16: rank 4 oblong, but cubic must split to rank 3.
  Region r = R3({{16, 31}});
  auto oblong = r.ToOblongOctants();
  ASSERT_EQ(oblong.size(), 1u);
  EXPECT_EQ(oblong[0].rank, 4);
  auto cubic = r.ToOctants();
  ASSERT_EQ(cubic.size(), 2u);
  EXPECT_EQ(cubic[0], (Octant{16, 3}));
  EXPECT_EQ(cubic[1], (Octant{24, 3}));
}

TEST(OctantTest, MisalignedRunDecomposes) {
  // Run 3..8: greedy from 3 -> {3,r0}, {4,r2}, {8,r0} oblong.
  Region r = R3({{3, 8}});
  auto oblong = r.ToOblongOctants();
  ASSERT_EQ(oblong.size(), 3u);
  EXPECT_EQ(oblong[0], (Octant{3, 0}));
  EXPECT_EQ(oblong[1], (Octant{4, 2}));
  EXPECT_EQ(oblong[2], (Octant{8, 0}));
}

TEST(OctantTest, DecompositionsCoverExactly) {
  Region r = R3({{3, 200}, {1000, 1023}, {4090, 4095}});
  for (const auto& octants : {r.ToOblongOctants(), r.ToOctants()}) {
    EXPECT_EQ(CoveredVoxels(octants), r.VoxelCount());
    // Octants are disjoint, sorted, and inside the region.
    uint64_t cursor = 0;
    for (const Octant& o : octants) {
      EXPECT_GE(o.id, cursor);
      EXPECT_EQ(o.id % o.Length(), 0u) << "octant must be aligned";
      EXPECT_TRUE(r.ContainsId(o.id));
      EXPECT_TRUE(r.ContainsId(o.id + o.Length() - 1));
      cursor = o.id + o.Length();
    }
  }
}

TEST(OctantTest, CountOrderingNeverViolated) {
  // #runs <= #oblong octants <= #octants (§4.2: "the number of runs
  // never exceeds the number of octants").
  geometry::Ellipsoid blob({8, 7, 9}, {6, 5, 4});
  Region r = Region::FromShape(kGrid3, CurveKind::kHilbert, blob);
  EXPECT_LE(r.RunCount(), r.ToOblongOctants().size());
  EXPECT_LE(r.ToOblongOctants().size(), r.ToOctants().size());
}

TEST(OctantTest, FullGridIsOneOctant) {
  Region full = Region::Full(kGrid3, CurveKind::kHilbert);
  auto cubic = full.ToOctants();
  ASSERT_EQ(cubic.size(), 1u);
  EXPECT_EQ(cubic[0], (Octant{0, 12}));
}

TEST(OctantTest, TwoDimensionalQuadrants) {
  // In 2-d, "octants" are quadrants: rank multiples of 2.
  Region r = Region::FromRuns(kGrid2, CurveKind::kZ, {{4, 7}}).MoveValue();
  auto quadrants = r.ToOctants();
  ASSERT_EQ(quadrants.size(), 1u);
  EXPECT_EQ(quadrants[0], (Octant{4, 2}));
}

TEST(OctantTest, EmptyRegionHasNoOctants) {
  Region empty(kGrid3, CurveKind::kHilbert);
  EXPECT_TRUE(empty.ToOblongOctants().empty());
  EXPECT_TRUE(empty.ToOctants().empty());
}

}  // namespace
}  // namespace qbism::region
