#include "region/encoding.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "region/region.h"

namespace qbism::region {
namespace {

using curve::CurveKind;

const GridSpec kGrid{3, 4};

Region Blob(uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> ids;
  // A mix of contiguous stretches and scattered singletons.
  uint64_t cursor = rng.NextBounded(64);
  while (cursor < kGrid.NumCells()) {
    uint64_t run = 1 + rng.NextBounded(30);
    for (uint64_t i = 0; i < run && cursor + i < kGrid.NumCells(); ++i) {
      ids.push_back(cursor + i);
    }
    cursor += run + 1 + rng.NextBounded(100);
  }
  return Region::FromIds(kGrid, CurveKind::kHilbert, std::move(ids))
      .MoveValue();
}

class EncodingRoundTripTest
    : public ::testing::TestWithParam<RegionEncoding> {};

TEST_P(EncodingRoundTripTest, RandomRegionsRoundTrip) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Region r = Blob(seed);
    auto encoded = EncodeRegion(r, GetParam());
    ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
    auto decoded =
        DecodeRegion(kGrid, CurveKind::kHilbert, GetParam(), encoded.value());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value(), r) << "seed " << seed;
  }
}

TEST_P(EncodingRoundTripTest, EmptyRegionRoundTrips) {
  Region empty(kGrid, CurveKind::kHilbert);
  auto encoded = EncodeRegion(empty, GetParam());
  ASSERT_TRUE(encoded.ok());
  auto decoded =
      DecodeRegion(kGrid, CurveKind::kHilbert, GetParam(), encoded.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().Empty());
}

TEST_P(EncodingRoundTripTest, FullRegionRoundTrips) {
  Region full = Region::Full(kGrid, CurveKind::kHilbert);
  auto encoded = EncodeRegion(full, GetParam());
  ASSERT_TRUE(encoded.ok());
  auto decoded =
      DecodeRegion(kGrid, CurveKind::kHilbert, GetParam(), encoded.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), full);
}

TEST_P(EncodingRoundTripTest, EncodedSizeMatchesActual) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Region r = Blob(seed);
    auto encoded = EncodeRegion(r, GetParam());
    auto size = EncodedSizeBytes(r, GetParam());
    ASSERT_TRUE(encoded.ok());
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(encoded.value().size(), size.value());
  }
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, EncodingRoundTripTest,
                         ::testing::Values(RegionEncoding::kNaiveRuns,
                                           RegionEncoding::kEliasDeltas,
                                           RegionEncoding::kOctants,
                                           RegionEncoding::kOblongOctants));

TEST(EncodingTest, NaiveIsEightBytesPerRun) {
  Region r = Region::FromRuns(kGrid, CurveKind::kHilbert,
                              {{1, 5}, {9, 9}, {20, 40}})
                 .MoveValue();
  EXPECT_EQ(EncodedSizeBytes(r, RegionEncoding::kNaiveRuns).value(),
            4u + 3u * 8u);
}

TEST(EncodingTest, OctantsAreFourBytesEach) {
  Region r = Region::FromRuns(kGrid, CurveKind::kHilbert, {{0, 63}})
                 .MoveValue();
  EXPECT_EQ(EncodedSizeBytes(r, RegionEncoding::kOctants).value(),
            4u + 4u * r.ToOctants().size());
  EXPECT_EQ(EncodedSizeBytes(r, RegionEncoding::kOblongOctants).value(),
            4u + 4u * r.ToOblongOctants().size());
}

TEST(EncodingTest, EliasBeatsNaiveOnManySmallRuns) {
  // Speckled region: many short runs, where 8 bytes/run is wasteful and
  // gamma-coded deltas shine (the Figure 4 result).
  std::vector<region::Run> runs;
  for (uint64_t i = 0; i < kGrid.NumCells(); i += 4) runs.push_back({i, i + 1});
  Region r =
      Region::FromRuns(kGrid, CurveKind::kHilbert, std::move(runs)).MoveValue();
  uint64_t naive = EncodedSizeBytes(r, RegionEncoding::kNaiveRuns).value();
  uint64_t elias = EncodedSizeBytes(r, RegionEncoding::kEliasDeltas).value();
  EXPECT_LT(elias * 4, naive);  // at least 4x better here
}

TEST(EncodingTest, DecodeCorruptBytesFails) {
  std::vector<uint8_t> garbage{1, 2};
  for (RegionEncoding enc :
       {RegionEncoding::kNaiveRuns, RegionEncoding::kOctants}) {
    EXPECT_FALSE(DecodeRegion(kGrid, CurveKind::kHilbert, enc, garbage).ok());
  }
}

TEST(EncodingTest, DecodeTruncatedNaiveFails) {
  Region r = Blob(3);
  auto encoded = EncodeRegion(r, RegionEncoding::kNaiveRuns).MoveValue();
  encoded.resize(encoded.size() - 3);
  EXPECT_FALSE(DecodeRegion(kGrid, CurveKind::kHilbert,
                            RegionEncoding::kNaiveRuns, encoded)
                   .ok());
}

TEST(EncodingTest, OctantEncodingRejectsHugeGrids) {
  // 1024^3 needs 30 id bits + 5 rank bits > 32: not packable in 4 bytes.
  GridSpec huge{3, 10};
  Region r(huge, CurveKind::kHilbert);
  EXPECT_FALSE(EncodeRegion(r, RegionEncoding::kOctants).ok());
  EXPECT_FALSE(EncodedSizeBytes(r, RegionEncoding::kOblongOctants).ok());
  // 512^3 (the paper's stated limit) is fine.
  GridSpec paper_max{3, 9};
  Region ok(paper_max, CurveKind::kHilbert);
  EXPECT_TRUE(EncodeRegion(ok, RegionEncoding::kOctants).ok());
}

TEST(EncodingTest, EncodingNames) {
  EXPECT_EQ(RegionEncodingToString(RegionEncoding::kNaiveRuns), "naive-runs");
  EXPECT_EQ(RegionEncodingToString(RegionEncoding::kEliasDeltas),
            "elias-deltas");
  EXPECT_EQ(RegionEncodingToString(RegionEncoding::kOctants), "octants");
  EXPECT_EQ(RegionEncodingToString(RegionEncoding::kOblongOctants),
            "oblong-octants");
}

TEST(EncodingTest, ZOrderedRegionsEncodeToo) {
  geometry::Ellipsoid blob({8, 8, 8}, {5, 4, 3});
  Region z = Region::FromShape(kGrid, CurveKind::kZ, blob);
  for (RegionEncoding enc :
       {RegionEncoding::kNaiveRuns, RegionEncoding::kEliasDeltas,
        RegionEncoding::kOctants, RegionEncoding::kOblongOctants}) {
    auto encoded = EncodeRegion(z, enc);
    ASSERT_TRUE(encoded.ok());
    auto decoded = DecodeRegion(kGrid, CurveKind::kZ, enc, encoded.value());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), z);
  }
}

}  // namespace
}  // namespace qbism::region
