// Property-based tests: random regions are checked against a reference
// implementation (std::set of ids) for every spatial operator.

#include <algorithm>
#include <iterator>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "region/region.h"

namespace qbism::region {
namespace {

using curve::CurveKind;

const GridSpec kGrid{3, 3};  // 8^3 = 512 ids: exhaustive checks are cheap

std::set<uint64_t> RandomIdSet(Rng* rng, double density) {
  std::set<uint64_t> ids;
  for (uint64_t id = 0; id < kGrid.NumCells(); ++id) {
    if (rng->NextDouble() < density) ids.insert(id);
  }
  return ids;
}

Region FromSet(const std::set<uint64_t>& ids) {
  return Region::FromIds(kGrid, CurveKind::kHilbert,
                         std::vector<uint64_t>(ids.begin(), ids.end()))
      .MoveValue();
}

std::set<uint64_t> ToSet(const Region& r) {
  std::set<uint64_t> ids;
  for (const Run& run : r.runs()) {
    for (uint64_t id = run.start; id <= run.end; ++id) ids.insert(id);
  }
  return ids;
}

class RegionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegionPropertyTest, SetOpsMatchReference) {
  Rng rng(GetParam());
  for (double density : {0.02, 0.2, 0.5, 0.9}) {
    std::set<uint64_t> sa = RandomIdSet(&rng, density);
    std::set<uint64_t> sb = RandomIdSet(&rng, density / 2 + 0.05);
    Region a = FromSet(sa), b = FromSet(sb);

    std::set<uint64_t> expect_and, expect_or, expect_diff;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::inserter(expect_and, expect_and.begin()));
    std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                   std::inserter(expect_or, expect_or.begin()));
    std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::inserter(expect_diff, expect_diff.begin()));

    EXPECT_EQ(ToSet(a.IntersectWith(b).MoveValue()), expect_and);
    EXPECT_EQ(ToSet(a.UnionWith(b).MoveValue()), expect_or);
    EXPECT_EQ(ToSet(a.DifferenceWith(b).MoveValue()), expect_diff);
    EXPECT_EQ(a.IntersectWith(b).MoveValue(), b.IntersectWith(a).MoveValue());
    EXPECT_EQ(a.UnionWith(b).MoveValue(), b.UnionWith(a).MoveValue());

    bool expect_contains = std::includes(sa.begin(), sa.end(), sb.begin(),
                                         sb.end());
    EXPECT_EQ(a.Contains(b).value(), expect_contains);
  }
}

TEST_P(RegionPropertyTest, AlgebraicIdentities) {
  Rng rng(GetParam() + 1000);
  std::set<uint64_t> sa = RandomIdSet(&rng, 0.3);
  std::set<uint64_t> sb = RandomIdSet(&rng, 0.3);
  Region a = FromSet(sa), b = FromSet(sb);

  // A \ B == A ∩ complement(B)
  EXPECT_EQ(a.DifferenceWith(b).MoveValue(),
            a.IntersectWith(b.Complement()).MoveValue());
  // De Morgan: complement(A ∪ B) == complement(A) ∩ complement(B)
  EXPECT_EQ(a.UnionWith(b).MoveValue().Complement(),
            a.Complement().IntersectWith(b.Complement()).MoveValue());
  // (A ∩ B) ⊆ A and A ⊆ (A ∪ B)
  Region i = a.IntersectWith(b).MoveValue();
  Region u = a.UnionWith(b).MoveValue();
  EXPECT_TRUE(a.Contains(i).value());
  EXPECT_TRUE(u.Contains(a).value());
  // |A| + |B| == |A ∪ B| + |A ∩ B|
  EXPECT_EQ(a.VoxelCount() + b.VoxelCount(),
            u.VoxelCount() + i.VoxelCount());
}

TEST_P(RegionPropertyTest, CanonicalFormAlwaysHolds) {
  Rng rng(GetParam() + 2000);
  std::set<uint64_t> sa = RandomIdSet(&rng, 0.4);
  std::set<uint64_t> sb = RandomIdSet(&rng, 0.4);
  Region a = FromSet(sa), b = FromSet(sb);
  for (const Region& r : {a.IntersectWith(b).MoveValue(),
                          a.UnionWith(b).MoveValue(),
                          a.DifferenceWith(b).MoveValue(), a.Complement(),
                          a.WithMinGap(3), a.WithMinOctant(1)}) {
    const auto& runs = r.runs();
    for (size_t i = 0; i < runs.size(); ++i) {
      ASSERT_LE(runs[i].start, runs[i].end);
      ASSERT_LT(runs[i].end, kGrid.NumCells());
      if (i > 0) {
        ASSERT_GT(runs[i].start, runs[i - 1].end + 1);
      }
    }
  }
}

TEST_P(RegionPropertyTest, ApproximationsAreSupersetsWithFewerRuns) {
  Rng rng(GetParam() + 3000);
  Region a = FromSet(RandomIdSet(&rng, 0.15));
  for (uint64_t mingap : {2ull, 4ull, 16ull}) {
    Region approx = a.WithMinGap(mingap);
    EXPECT_TRUE(approx.Contains(a).value());
    EXPECT_LE(approx.RunCount(), a.RunCount());
    // No gap shorter than mingap survives.
    const auto& runs = approx.runs();
    for (size_t i = 1; i < runs.size(); ++i) {
      EXPECT_GE(runs[i].start - runs[i - 1].end - 1, mingap);
    }
  }
  for (int g : {1, 2}) {
    Region approx = a.WithMinOctant(g);
    EXPECT_TRUE(approx.Contains(a).value());
    uint64_t block = uint64_t{1} << (kGrid.dims * g);
    for (const region::Run& run : approx.runs()) {
      EXPECT_EQ(run.start % block, 0u);
      EXPECT_EQ((run.end + 1) % block, 0u);
    }
  }
}

TEST_P(RegionPropertyTest, CurveConversionIsBijective) {
  Rng rng(GetParam() + 4000);
  Region a = FromSet(RandomIdSet(&rng, 0.25));
  Region z = a.ConvertTo(CurveKind::kZ);
  EXPECT_EQ(z.VoxelCount(), a.VoxelCount());
  EXPECT_EQ(z.ConvertTo(CurveKind::kHilbert), a);
}

TEST_P(RegionPropertyTest, OctantDecompositionReconstructs) {
  Rng rng(GetParam() + 5000);
  Region a = FromSet(RandomIdSet(&rng, 0.3));
  for (bool oblong : {true, false}) {
    auto octants = oblong ? a.ToOblongOctants() : a.ToOctants();
    std::vector<region::Run> runs;
    for (const Octant& o : octants) {
      runs.push_back(region::Run{o.id, o.id + o.Length() - 1});
    }
    Region rebuilt =
        Region::FromRuns(kGrid, CurveKind::kHilbert, std::move(runs))
            .MoveValue();
    EXPECT_EQ(rebuilt, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace qbism::region
