#include "region/stats.h"

#include <gtest/gtest.h>

#include "geometry/shapes.h"

namespace qbism::region {
namespace {

using curve::CurveKind;

const GridSpec kGrid{3, 5};  // 32^3: big enough for meaningful stats

Region BlobRegion() {
  geometry::Ellipsoid blob({16, 15, 17}, {10, 8, 9});
  return Region::FromShape(kGrid, CurveKind::kHilbert, blob);
}

TEST(RegionStatsTest, CountsAreConsistent) {
  Region r = BlobRegion();
  RegionStats stats = ComputeRegionStats(r);
  EXPECT_EQ(stats.voxels, r.VoxelCount());
  EXPECT_EQ(stats.h_runs, r.RunCount());
  EXPECT_EQ(stats.h_oblong_octants, r.ToOblongOctants().size());
  EXPECT_EQ(stats.h_octants, r.ToOctants().size());
  // Ordering invariants within each curve.
  EXPECT_LE(stats.h_runs, stats.h_oblong_octants);
  EXPECT_LE(stats.h_oblong_octants, stats.h_octants);
  EXPECT_LE(stats.z_runs, stats.z_oblong_octants);
  EXPECT_LE(stats.z_oblong_octants, stats.z_octants);
}

TEST(RegionStatsTest, HilbertBeatsZOnCompactBlob) {
  // §4.2: the Hilbert curve yields fewer runs than the Z curve for
  // typical (compact) brain regions.
  RegionStats stats = ComputeRegionStats(BlobRegion());
  EXPECT_LT(stats.h_runs, stats.z_runs);
}

TEST(RegionStatsTest, SizesOrderedLikeFigure4) {
  // entropy <= elias << naive ~ oblong < octant for a compact region.
  RegionStats stats = ComputeRegionStats(BlobRegion());
  EXPECT_LT(stats.entropy_bytes, static_cast<double>(stats.elias_bytes));
  EXPECT_LT(stats.elias_bytes, stats.naive_bytes);
  EXPECT_LT(stats.naive_bytes, stats.octant_bytes);
}

TEST(RegionStatsTest, EliasCloseToEntropyBound) {
  // Figure 4: elias lands ~1.2x the entropy bound. Allow generous slack
  // for a small grid, but it must be within ~2.5x.
  RegionStats stats = ComputeRegionStats(BlobRegion());
  ASSERT_GT(stats.entropy_bytes, 0.0);
  double ratio = static_cast<double>(stats.elias_bytes) / stats.entropy_bytes;
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 2.5);
}

TEST(RegionStatsTest, DeltaPowerLawFitIsNegativeAndCorrelated) {
  LinearFit fit = FitDeltaPowerLaw(BlobRegion());
  // EQ 1: count = c * length^(-a) with a in roughly [0.5, 3] for blobs.
  EXPECT_LT(fit.slope, 0.0);
  EXPECT_LT(fit.r, -0.5);  // log-log scatter strongly decreasing
}

TEST(RegionStatsTest, EmptyRegionStats) {
  Region empty(kGrid, CurveKind::kHilbert);
  RegionStats stats = ComputeRegionStats(empty);
  EXPECT_EQ(stats.voxels, 0u);
  EXPECT_EQ(stats.h_runs, 0u);
  EXPECT_EQ(stats.entropy_bytes, 0.0);  // one delta (the whole grid gap)
}

}  // namespace
}  // namespace qbism::region
