// Locks down the paper's worked 2-D example: the shaded REGION of
// Figure 3 on a 4x4 grid, whose encodings are enumerated in Tables 1
// (Z curve) and 2 (Hilbert curve).

#include <gtest/gtest.h>

#include "region/encoding.h"
#include "region/region.h"

namespace qbism::region {
namespace {

using curve::CurveKind;

const GridSpec kGrid{2, 2};  // 4x4

/// The shaded region of Figure 3 as grid points (x, y):
/// one voxel at (0,1), the upper-left quadrant, and (2,2), (2,3).
std::vector<geometry::Vec3i> FigureThreePoints() {
  return {{0, 1, 0}, {0, 2, 0}, {0, 3, 0}, {1, 2, 0},
          {1, 3, 0}, {2, 2, 0}, {2, 3, 0}};
}

Region MakeRegion(CurveKind kind) {
  std::vector<uint64_t> ids;
  for (const auto& p : FigureThreePoints()) {
    ids.push_back(kind == CurveKind::kHilbert
                      ? curve::HilbertId2(p.x, p.y, 2)
                      : curve::MortonId2(p.x, p.y, 2));
  }
  return Region::FromIds(kGrid, kind, std::move(ids)).MoveValue();
}

TEST(PaperExampleTest, Table1ZRuns) {
  // Table 1 runs: <1,1> <4,7> <12,13>.
  Region z = MakeRegion(CurveKind::kZ);
  ASSERT_EQ(z.RunCount(), 3u);
  EXPECT_EQ(z.runs()[0], (region::Run{1, 1}));
  EXPECT_EQ(z.runs()[1], (region::Run{4, 7}));
  EXPECT_EQ(z.runs()[2], (region::Run{12, 13}));
}

TEST(PaperExampleTest, Table1ZOblongOctants) {
  // Table 1 oblong octants: <0001,0> <0100,2> <1100,1>.
  Region z = MakeRegion(CurveKind::kZ);
  auto oblong = z.ToOblongOctants();
  ASSERT_EQ(oblong.size(), 3u);
  EXPECT_EQ(oblong[0], (Octant{0b0001, 0}));
  EXPECT_EQ(oblong[1], (Octant{0b0100, 2}));
  EXPECT_EQ(oblong[2], (Octant{0b1100, 1}));
}

TEST(PaperExampleTest, Table1ZOctants) {
  // Table 1 octants: <0001,0> <0100,2> <1100,0> <1101,0>.
  Region z = MakeRegion(CurveKind::kZ);
  auto octants = z.ToOctants();
  ASSERT_EQ(octants.size(), 4u);
  EXPECT_EQ(octants[0], (Octant{0b0001, 0}));
  EXPECT_EQ(octants[1], (Octant{0b0100, 2}));
  EXPECT_EQ(octants[2], (Octant{0b1100, 0}));
  EXPECT_EQ(octants[3], (Octant{0b1101, 0}));
}

TEST(PaperExampleTest, Table2HilbertRuns) {
  // Table 2 runs: a single run <3,9> — the Hilbert win.
  Region h = MakeRegion(CurveKind::kHilbert);
  ASSERT_EQ(h.RunCount(), 1u);
  EXPECT_EQ(h.runs()[0], (region::Run{3, 9}));
}

TEST(PaperExampleTest, Table2HilbertOblongOctants) {
  // Table 2 oblong octants: <0011,0> <0100,2> <1000,1>.
  Region h = MakeRegion(CurveKind::kHilbert);
  auto oblong = h.ToOblongOctants();
  ASSERT_EQ(oblong.size(), 3u);
  EXPECT_EQ(oblong[0], (Octant{0b0011, 0}));
  EXPECT_EQ(oblong[1], (Octant{0b0100, 2}));
  EXPECT_EQ(oblong[2], (Octant{0b1000, 1}));
}

TEST(PaperExampleTest, Table2HilbertOctants) {
  // Table 2 octants: <0011,0> <0100,2> <1000,0> <1001,0>.
  Region h = MakeRegion(CurveKind::kHilbert);
  auto octants = h.ToOctants();
  ASSERT_EQ(octants.size(), 4u);
  EXPECT_EQ(octants[0], (Octant{0b0011, 0}));
  EXPECT_EQ(octants[1], (Octant{0b0100, 2}));
  EXPECT_EQ(octants[2], (Octant{0b1000, 0}));
  EXPECT_EQ(octants[3], (Octant{0b1001, 0}));
}

TEST(PaperExampleTest, NaiveEncodingStoresOneRunInEightBytes) {
  // §4.2: "For the example REGION in Figure 3, this method would store
  // 1 run in 8 bytes" (plus our 4-byte count header).
  Region h = MakeRegion(CurveKind::kHilbert);
  auto size = EncodedSizeBytes(h, RegionEncoding::kNaiveRuns);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 4u + 8u);
}

TEST(PaperExampleTest, CurveConversionMatchesBetweenTables) {
  // The same voxel set expressed on either curve converts to the other.
  Region h = MakeRegion(CurveKind::kHilbert);
  Region z = MakeRegion(CurveKind::kZ);
  EXPECT_EQ(h.ConvertTo(CurveKind::kZ), z);
  EXPECT_EQ(z.ConvertTo(CurveKind::kHilbert), h);
}

TEST(PaperExampleTest, ZRunFromFigure3Text) {
  // §4 terminology: "one z-run in Figure 3 stretches from z-id 1100 to
  // 1101".
  Region z = MakeRegion(CurveKind::kZ);
  EXPECT_TRUE(z.ContainsId(0b1100));
  EXPECT_TRUE(z.ContainsId(0b1101));
  EXPECT_FALSE(z.ContainsId(0b1110));
  EXPECT_FALSE(z.ContainsId(0b1011));
}

}  // namespace
}  // namespace qbism::region
