#include <gtest/gtest.h>

#include "region/region.h"

namespace qbism::region {
namespace {

using curve::CurveKind;

const GridSpec kGrid{3, 4};

Region R(std::vector<Run> runs) {
  return Region::FromRuns(kGrid, CurveKind::kHilbert, std::move(runs))
      .MoveValue();
}

TEST(RegionOpsTest, IntersectionBasic) {
  Region a = R({{0, 10}, {20, 30}});
  Region b = R({{5, 25}});
  Region i = a.IntersectWith(b).MoveValue();
  ASSERT_EQ(i.RunCount(), 2u);
  EXPECT_EQ(i.runs()[0], (region::Run{5, 10}));
  EXPECT_EQ(i.runs()[1], (region::Run{20, 25}));
}

TEST(RegionOpsTest, IntersectionDisjointIsEmpty) {
  Region a = R({{0, 10}});
  Region b = R({{11, 20}});
  EXPECT_TRUE(a.IntersectWith(b).MoveValue().Empty());
}

TEST(RegionOpsTest, IntersectionWithSelfIsIdentity) {
  Region a = R({{3, 9}, {15, 15}, {40, 60}});
  EXPECT_EQ(a.IntersectWith(a).MoveValue(), a);
}

TEST(RegionOpsTest, IntersectionWithFullIsIdentity) {
  Region a = R({{3, 9}, {40, 60}});
  Region full = Region::Full(kGrid, CurveKind::kHilbert);
  EXPECT_EQ(a.IntersectWith(full).MoveValue(), a);
  EXPECT_EQ(full.IntersectWith(a).MoveValue(), a);
}

TEST(RegionOpsTest, UnionMergesAndCanonicalizes) {
  Region a = R({{0, 10}, {20, 30}});
  Region b = R({{11, 19}});
  Region u = a.UnionWith(b).MoveValue();
  ASSERT_EQ(u.RunCount(), 1u);
  EXPECT_EQ(u.runs()[0], (region::Run{0, 30}));
}

TEST(RegionOpsTest, UnionWithEmptyIsIdentity) {
  Region a = R({{5, 9}});
  Region empty(kGrid, CurveKind::kHilbert);
  EXPECT_EQ(a.UnionWith(empty).MoveValue(), a);
  EXPECT_EQ(empty.UnionWith(a).MoveValue(), a);
}

TEST(RegionOpsTest, DifferenceCarvesHoles) {
  Region a = R({{0, 30}});
  Region b = R({{5, 9}, {15, 19}});
  Region d = a.DifferenceWith(b).MoveValue();
  ASSERT_EQ(d.RunCount(), 3u);
  EXPECT_EQ(d.runs()[0], (region::Run{0, 4}));
  EXPECT_EQ(d.runs()[1], (region::Run{10, 14}));
  EXPECT_EQ(d.runs()[2], (region::Run{20, 30}));
}

TEST(RegionOpsTest, DifferenceOfSelfIsEmpty) {
  Region a = R({{2, 5}, {9, 22}});
  EXPECT_TRUE(a.DifferenceWith(a).MoveValue().Empty());
}

TEST(RegionOpsTest, DifferenceWithEmpty) {
  Region a = R({{2, 5}});
  Region empty(kGrid, CurveKind::kHilbert);
  EXPECT_EQ(a.DifferenceWith(empty).MoveValue(), a);
  EXPECT_TRUE(empty.DifferenceWith(a).MoveValue().Empty());
}

TEST(RegionOpsTest, DifferenceSplitsAcrossMultipleARuns) {
  Region a = R({{0, 5}, {10, 15}});
  Region b = R({{3, 12}});
  Region d = a.DifferenceWith(b).MoveValue();
  ASSERT_EQ(d.RunCount(), 2u);
  EXPECT_EQ(d.runs()[0], (region::Run{0, 2}));
  EXPECT_EQ(d.runs()[1], (region::Run{13, 15}));
}

TEST(RegionOpsTest, ContainsSupersetSemantics) {
  Region big = R({{0, 100}});
  Region small = R({{5, 9}, {50, 70}});
  EXPECT_TRUE(big.Contains(small).value());
  EXPECT_FALSE(small.Contains(big).value());
  EXPECT_TRUE(big.Contains(big).value());
  // Everything contains the empty region.
  Region empty(kGrid, CurveKind::kHilbert);
  EXPECT_TRUE(small.Contains(empty).value());
  EXPECT_FALSE(empty.Contains(small).value());
  EXPECT_TRUE(empty.Contains(empty).value());
}

TEST(RegionOpsTest, ContainsDetectsStraddle) {
  Region a = R({{0, 10}, {20, 30}});
  // A run crossing a's gap is not contained even though both ends are.
  Region straddler = R({{8, 22}});
  EXPECT_FALSE(a.Contains(straddler).value());
}

TEST(RegionOpsTest, ComplementPartitionsGrid) {
  Region a = R({{0, 9}, {100, 199}, {4090, 4095}});
  Region c = a.Complement();
  EXPECT_EQ(a.VoxelCount() + c.VoxelCount(), kGrid.NumCells());
  EXPECT_TRUE(a.IntersectWith(c).MoveValue().Empty());
  EXPECT_EQ(a.UnionWith(c).MoveValue(),
            Region::Full(kGrid, CurveKind::kHilbert));
  // Double complement restores.
  EXPECT_EQ(c.Complement(), a);
}

TEST(RegionOpsTest, MixedGridsRejected) {
  Region a = R({{0, 5}});
  Region other(GridSpec{3, 5}, CurveKind::kHilbert);
  EXPECT_FALSE(a.IntersectWith(other).ok());
  EXPECT_FALSE(a.UnionWith(other).ok());
  EXPECT_FALSE(a.DifferenceWith(other).ok());
  EXPECT_FALSE(a.Contains(other).ok());
}

TEST(RegionOpsTest, MixedCurvesRejected) {
  Region a = R({{0, 5}});
  Region z(kGrid, CurveKind::kZ);
  EXPECT_FALSE(a.IntersectWith(z).ok());
  EXPECT_TRUE(a.IntersectWith(z).status().IsInvalidArgument());
}

TEST(RegionOpsTest, WithMinGapMergesShortGaps) {
  Region a = R({{0, 9}, {12, 19}, {40, 49}});
  // Gap 10-11 has length 2; gap 20-39 has length 20.
  Region merged = a.WithMinGap(3);
  ASSERT_EQ(merged.RunCount(), 2u);
  EXPECT_EQ(merged.runs()[0], (region::Run{0, 19}));
  EXPECT_EQ(merged.runs()[1], (region::Run{40, 49}));
  // Approximation is a superset of the original.
  EXPECT_TRUE(merged.Contains(a).value());
  // mingap 1 is the identity (gaps of length >= 1 survive).
  EXPECT_EQ(a.WithMinGap(1), a);
  // Huge mingap collapses to one run.
  EXPECT_EQ(a.WithMinGap(1000).RunCount(), 1u);
}

TEST(RegionOpsTest, WithMinOctantRoundsOut) {
  Region a = R({{5, 5}});
  // G = 2 (g_log2 = 1): blocks of 2^3 = 8 ids; id 5 lives in block 0-7.
  Region rounded = a.WithMinOctant(1);
  ASSERT_EQ(rounded.RunCount(), 1u);
  EXPECT_EQ(rounded.runs()[0], (region::Run{0, 7}));
  EXPECT_TRUE(rounded.Contains(a).value());
  // g_log2 = 0 is the identity.
  EXPECT_EQ(a.WithMinOctant(0), a);
}

TEST(RegionOpsTest, WithMinOctantClampsAtGridEnd) {
  Region a = R({{4095, 4095}});
  Region rounded = a.WithMinOctant(2);  // blocks of 64 ids
  ASSERT_EQ(rounded.RunCount(), 1u);
  EXPECT_EQ(rounded.runs()[0], (region::Run{4032, 4095}));
}

TEST(RegionOpsTest, NWayIntersectionAssociative) {
  Region a = R({{0, 99}});
  Region b = R({{50, 150}});
  Region c = R({{75, 125}});
  Region ab_c =
      a.IntersectWith(b).MoveValue().IntersectWith(c).MoveValue();
  Region a_bc =
      a.IntersectWith(b.IntersectWith(c).MoveValue()).MoveValue();
  EXPECT_EQ(ab_c, a_bc);
  ASSERT_EQ(ab_c.RunCount(), 1u);
  EXPECT_EQ(ab_c.runs()[0], (region::Run{75, 99}));
}

}  // namespace
}  // namespace qbism::region
