#ifndef QBISM_SERVICE_WORKLOAD_H_
#define QBISM_SERVICE_WORKLOAD_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "qbism/medical_server.h"
#include "qbism/spatial_extension.h"

namespace qbism::service {

/// Relative frequencies of the §6.1 query shapes in the generated
/// stream (normalized internally): entire-study displays, rectangular
/// solids, atlas-structure restrictions, and stored intensity bands.
struct WorkloadMix {
  double full_study = 0.15;
  double box = 0.20;
  double structure = 0.35;
  double band = 0.30;
};

/// Deterministic mixed-workload generator for the query service: every
/// Next() is a well-formed QuerySpec against loaded data (band queries
/// are drawn from each study's stored intensity bands, so the band
/// index can always answer them). Box corners are quantized to a
/// 16-voxel lattice so a finite spec population recurs — that recurrence
/// is what gives the shared result cache something to hit.
class WorkloadGenerator {
 public:
  /// Reads each study's stored bands out of the database. Fails if a
  /// study has no stored bands or `structures` is empty.
  static Result<WorkloadGenerator> Create(
      qbism::SpatialExtension* ext, std::vector<int> study_ids,
      std::vector<std::string> structures, WorkloadMix mix, uint64_t seed);

  /// Next spec in the deterministic stream.
  qbism::QuerySpec Next();

  /// Number of distinct specs the generator can emit (cache working-set
  /// size).
  uint64_t DistinctSpecs() const;

 private:
  WorkloadGenerator(std::vector<int> study_ids,
                    std::vector<std::string> structures,
                    std::map<int, std::vector<std::pair<int, int>>> bands,
                    WorkloadMix mix, uint64_t seed)
      : study_ids_(std::move(study_ids)),
        structures_(std::move(structures)),
        bands_(std::move(bands)),
        mix_(mix),
        rng_(seed) {}

  std::vector<int> study_ids_;
  std::vector<std::string> structures_;
  std::map<int, std::vector<std::pair<int, int>>> bands_;  // per study
  WorkloadMix mix_;
  Rng rng_;
};

}  // namespace qbism::service

#endif  // QBISM_SERVICE_WORKLOAD_H_
