#ifndef QBISM_SERVICE_QUERY_SERVICE_H_
#define QBISM_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/task_pool.h"
#include "net/channel.h"
#include "obs/trace.h"
#include "qbism/medical_server.h"
#include "qbism/spatial_extension.h"
#include "service/admission_queue.h"
#include "service/metrics.h"
#include "service/result_cache.h"

namespace qbism {
class IngestManager;
namespace med {
struct StudyRecord;
}  // namespace med
}  // namespace qbism

namespace qbism::service {

/// One client request: a query spec plus service-level controls. The
/// deadline is measured from admission; 0 disables it.
struct ServiceRequest {
  qbism::QuerySpec spec;
  bool render = false;
  viz::Camera camera;
  double deadline_seconds = 0.0;
  /// When set (and its tracer is the service's), the request joins this
  /// trace instead of starting a fresh one: the kQuery root span hangs
  /// under trace_parent.span_id, so a front end (the socket server) can
  /// stitch accept -> decode -> admit -> execute -> ship into one tree.
  obs::TraceContext trace_parent;
};

/// Reply for a completed request: the ordinary single-study result plus
/// service-side accounting.
struct ServiceReply {
  qbism::StudyQueryResult result;
  bool cache_hit = false;
  int worker_id = -1;
  double queue_wait_seconds = 0.0;  // admission -> picked up by a worker
  double execute_seconds = 0.0;     // worker time (cache probe + query)
  double total_seconds = 0.0;       // admission -> reply, real wall time
};

/// Handle to an in-flight request. Cheap to copy (shared state).
class Ticket {
 public:
  Ticket() = default;

  /// Blocks until the request completes (workers enforce deadlines, so
  /// this terminates as long as the service is running or shut down).
  Result<ServiceReply> Wait() const;

  /// Best-effort cancellation: a queued request completes Cancelled
  /// when a worker reaches it; a running one aborts at the server's
  /// next stage checkpoint.
  void Cancel();

  bool Done() const;
  bool Valid() const { return state_ != nullptr; }

 private:
  friend class QueryService;
  struct State;
  std::shared_ptr<State> state_;
};

/// Sizing and cost knobs for the service.
struct ServiceOptions {
  /// Fixed worker pool; each worker owns a full MedicalServer (private
  /// SimulatedChannel + DxExecutive) over the shared extension. 0 is
  /// allowed (nothing drains — used by admission-control tests).
  int num_workers = 4;
  /// Bounded admission queue; submissions beyond this are rejected
  /// immediately with ResourceExhausted.
  size_t queue_capacity = 64;
  /// Shared LRU result cache; 0 entries disables it.
  size_t cache_entries = 128;
  uint64_t cache_bytes = 512ull << 20;
  /// When > 0, each executed query's modeled wait time — the simulated
  /// LFM/relational I/O stall plus network shipping time that the cost
  /// models charge but never spend — is realized as a real wall-clock
  /// wait of `io_wait_scale` x that many seconds. Workers overlap these
  /// waits exactly the way the 1993 system overlapped disk and RPC, so
  /// throughput benchmarks see the pool's concurrency benefit on any
  /// host. Cache hits perform no I/O and therefore never wait. 0 = off.
  double io_wait_scale = 0.0;
  /// Transient-fault handling: a query that fails with IOError (the
  /// code injected disk faults and, on real hardware, flaky media
  /// surface as) is re-executed up to `max_retries` times per request,
  /// sleeping a capped exponential backoff between attempts
  /// (base * 2^attempt, clamped to the max). Retries never outlive the
  /// request's deadline or a cancellation, and every retry / exhausted
  /// budget is counted in ServiceMetrics (retries, giveups). 0 disables.
  int max_retries = 2;
  double retry_backoff_seconds = 0.001;
  double retry_backoff_max_seconds = 0.050;
  /// Donation threads for intra-query extraction parallelism: the
  /// service owns a TaskPool this size and installs it on the shared
  /// extension's ParallelExtractor, so a large EXTRACT_DATA borrows idle
  /// capacity while the pool's fair-share cap keeps one query from
  /// monopolizing it. -1 sizes the pool to num_workers; 0 disables
  /// (extractions run inline on their worker).
  int extract_helper_threads = -1;
  /// Optional tracing sink (not owned; must outlive the service). Each
  /// admitted request becomes one trace: a kQuery root span labeled by
  /// query class, with queue wait, cache probe, the server's stage
  /// spans, retries, and realized I/O waits as children. When null or
  /// disabled every instrumentation point costs one thread-local read
  /// and a branch. metrics().stages carries the per-stage summaries.
  obs::Tracer* tracer = nullptr;
  /// Optional online-ingest manager (not owned; must outlive the
  /// service). When set, the service gates requests on study
  /// visibility, routes RunIngest through it, and invalidates the
  /// shared result cache per study at every ingest commit.
  qbism::IngestManager* ingest = nullptr;
  /// Refresh the cost-based planner's statistics (scalar + region
  /// histograms + power-law fits) after every committed ingest, so the
  /// optimizer tracks the data the moment it becomes visible. The
  /// refresh also bumps the stats version, invalidating cached plans
  /// built against the old distribution. Requires `ingest`.
  bool refresh_planner_stats_on_commit = true;
  net::NetworkCostModel net_model;
  qbism::ServerCostModel cost_model;
};

/// The concurrent query-serving front end: a fixed pool of worker
/// threads, each owning its own MedicalServer, over one shared
/// read-mostly SpatialExtension/Database, fed by a bounded admission
/// queue and fronted by a server-wide LRU result cache.
///
///   clients --Submit--> [admission queue] --> worker_0 .. worker_{N-1}
///                              |                   |         |
///                       (reject on full)     MedicalServer per worker
///                                                  \         /
///                                      shared SpatialExtension + DBMS
///                                            shared ResultCache
///
/// The extension/database must be fully loaded before the service
/// starts; workers treat it as read-only.
class QueryService {
 public:
  QueryService(qbism::SpatialExtension* ext, ServiceOptions options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits a request or rejects it without blocking:
  /// ResourceExhausted when the queue is full, Cancelled after
  /// Shutdown.
  Result<Ticket> Submit(const ServiceRequest& request);

  /// Convenience: Submit + Wait (the closed-loop client pattern).
  Result<ServiceReply> Execute(const ServiceRequest& request);

  /// Online ingest through the service (requires options.ingest):
  /// stores (or replaces) the study in one durable transaction while
  /// queries keep flowing, then invalidates the study's cached results.
  /// Counted in metrics().ingests / ingest_failures.
  Status RunIngest(const qbism::med::StudyRecord& record, bool replace);

  /// Stops admissions, fails everything still queued with Cancelled,
  /// and joins the workers. Idempotent; the destructor calls it.
  void Shutdown();

  /// Service counters plus the extraction fast-path counters accrued on
  /// the shared extractor since this service started.
  MetricsSnapshot metrics() const;
  ResultCacheStats cache_stats() const { return cache_.stats(); }

  /// Front-end rejection accounting: a server sitting in front of the
  /// service (src/server) counts the requests it bounces before they
  /// reach Submit, so one MetricsSnapshot covers the whole edge.
  void NoteUnauthorized() { metrics_.AddUnauthorized(); }
  void NoteQuotaRejected() { metrics_.AddQuotaRejected(); }
  void NoteSessionExpired() { metrics_.AddSessionExpired(); }

  /// Pure probe (no LRU promotion, no stats): is this QuerySpec
  /// description cached? Fault tests assert failed queries never are.
  bool CacheContains(const std::string& key) const {
    return cache_.Contains(key);
  }
  size_t queue_depth() const { return queue_.Size(); }
  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  struct Pending {
    ServiceRequest request;
    std::shared_ptr<Ticket::State> state;
  };

  void WorkerLoop(int worker_id);
  /// Serves `pending` on `server`, including the cache probe/fill.
  Result<ServiceReply> Serve(qbism::MedicalServer* server, int worker_id,
                             const Pending& pending);
  void Complete(const std::shared_ptr<Ticket::State>& state,
                Result<ServiceReply> reply);

  qbism::SpatialExtension* ext_;
  ServiceOptions options_;
  ResultCache cache_;
  ServiceMetrics metrics_;
  std::unique_ptr<TaskPool> extract_pool_;  // may be null (helpers off)
  qbism::ExtractorStatsSnapshot extractor_baseline_;
  AdmissionQueue<Pending> queue_;
  std::vector<std::unique_ptr<qbism::MedicalServer>> servers_;
  std::vector<std::thread> workers_;
  std::mutex shutdown_mu_;
  bool shut_down_ = false;  // guarded by shutdown_mu_
  uint64_t ingest_listener_token_ = 0;  // set once in the constructor
};

}  // namespace qbism::service

#endif  // QBISM_SERVICE_QUERY_SERVICE_H_
