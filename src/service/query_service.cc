#include "service/query_service.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "common/macros.h"
#include "common/timer.h"
#include "qbism/ingest.h"

namespace qbism::service {

using Clock = std::chrono::steady_clock;

/// Completion state shared between the submitting client, the worker,
/// and any Cancel() caller.
struct Ticket::State {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<Result<ServiceReply>> reply;  // guarded by mu

  std::atomic<bool> cancelled{false};
  Clock::time_point submitted;
  Clock::time_point deadline;  // time_point::max() = none
  bool has_deadline = false;

  /// Tracing: the request's root context (span_id is the kQuery root
  /// span, recorded retroactively at completion), the tracer clock at
  /// admission, and the query-class label. All-zero when tracing is off.
  obs::TraceContext trace;
  uint64_t root_parent = 0;  // parent span when joining a front-end trace
  double trace_start = 0.0;
  char trace_label[16] = {0};
};

Result<ServiceReply> Ticket::Wait() const {
  if (!state_) return Status::InvalidArgument("Ticket::Wait: empty ticket");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->reply.has_value(); });
  return *state_->reply;
}

void Ticket::Cancel() {
  if (state_) state_->cancelled.store(true, std::memory_order_relaxed);
}

bool Ticket::Done() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->reply.has_value();
}

QueryService::QueryService(qbism::SpatialExtension* ext,
                           ServiceOptions options)
    : ext_(ext),
      options_(options),
      cache_(options.cache_entries, options.cache_bytes),
      queue_(options.queue_capacity) {
  extractor_baseline_ = ext_->extractor()->stats();
  int helper_threads = options_.extract_helper_threads < 0
                           ? options_.num_workers
                           : options_.extract_helper_threads;
  if (helper_threads > 0) {
    extract_pool_ = std::make_unique<TaskPool>(helper_threads);
    ext_->extractor()->set_pool(extract_pool_.get());
  }
  if (options_.ingest != nullptr) {
    // Every committed ingest drops the study's cached results before
    // the study comes back online, so a stale entry can never be
    // served after its data changed.
    ingest_listener_token_ =
        options_.ingest->AddCommitListener([this](int study_id) {
          size_t dropped = cache_.InvalidatePrefix(
              "study " + std::to_string(study_id) + " ");
          metrics_.AddCacheInvalidations(dropped);
          if (options_.refresh_planner_stats_on_commit) {
            // Re-analyze so the optimizer sees the new study's region
            // distribution; the version bump retires stale cached
            // plans. A failed refresh just leaves the old stats in
            // place — planning degrades gracefully to them.
            (void)ext_->RefreshPlannerStats();
          }
        });
  }
  for (int i = 0; i < options_.num_workers; ++i) {
    servers_.push_back(std::make_unique<qbism::MedicalServer>(
        ext_, options_.net_model, options_.cost_model));
  }
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

QueryService::~QueryService() { Shutdown(); }

Result<Ticket> QueryService::Submit(const ServiceRequest& request) {
  metrics_.AddSubmitted();
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) {
      return Status::Cancelled("QueryService: service is shut down");
    }
  }
  auto state = std::make_shared<Ticket::State>();
  state->submitted = Clock::now();
  if (options_.tracer != nullptr && options_.tracer->enabled()) {
    if (request.trace_parent.tracer == options_.tracer) {
      // Join the front end's trace: the kQuery root becomes a child of
      // the server's per-request span instead of a fresh trace root.
      state->trace = request.trace_parent;
      state->root_parent = request.trace_parent.span_id;
    } else {
      state->trace = options_.tracer->StartTrace();
    }
    state->trace.span_id = options_.tracer->NextSpanId();  // root span id
    state->trace_start = options_.tracer->NowSeconds();
    const qbism::QuerySpec& spec = request.spec;
    const char* label = spec.intensity_range            ? "intensity"
                        : spec.box || spec.structure_name ? "region"
                                                          : "full";
    std::strncpy(state->trace_label, label, sizeof(state->trace_label) - 1);
  }
  if (request.deadline_seconds > 0.0) {
    state->has_deadline = true;
    state->deadline =
        state->submitted +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(request.deadline_seconds));
  } else {
    state->deadline = Clock::time_point::max();
  }
  if (!queue_.TryPush(Pending{request, state})) {
    metrics_.AddRejectedQueueFull();
    return Status::ResourceExhausted(
        "QueryService: admission queue full (" +
        std::to_string(queue_.capacity()) + " pending); retry with backoff");
  }
  Ticket ticket;
  ticket.state_ = std::move(state);
  return ticket;
}

Result<ServiceReply> QueryService::Execute(const ServiceRequest& request) {
  QBISM_ASSIGN_OR_RETURN(Ticket ticket, Submit(request));
  return ticket.Wait();
}

void QueryService::Complete(const std::shared_ptr<Ticket::State>& state,
                            Result<ServiceReply> reply) {
  double latency =
      std::chrono::duration<double>(Clock::now() - state->submitted).count();
  if (reply.ok()) {
    metrics_.AddCompleted();
    metrics_.AddLfmPages(reply->result.timing.lfm_pages);
    metrics_.AddNetworkSeconds(reply->result.timing.network_seconds);
    reply->total_seconds = latency;
  } else if (reply.status().IsDeadlineExceeded()) {
    metrics_.AddDeadlineExpired();
  } else if (reply.status().IsCancelled()) {
    metrics_.AddCancelled();
  } else {
    metrics_.AddFailed();
  }
  metrics_.RecordLatency(latency);
  if (state->trace.tracer != nullptr) {
    // The root span, recorded retroactively so it covers admission to
    // reply (its children were recorded live as the request executed).
    obs::SpanRecord root;
    root.trace_id = state->trace.trace_id;
    root.span_id = state->trace.span_id;
    root.parent_id = state->root_parent;
    root.stage = obs::Stage::kQuery;
    root.ok = reply.ok();
    root.start_seconds = state->trace_start;
    root.duration_seconds =
        state->trace.tracer->NowSeconds() - state->trace_start;
    std::memcpy(root.label, state->trace_label, sizeof(root.label));
    state->trace.tracer->Record(root);
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->reply = std::move(reply);
  }
  state->cv.notify_all();
}

void QueryService::WorkerLoop(int worker_id) {
  qbism::MedicalServer* server = servers_[static_cast<size_t>(worker_id)].get();
  while (true) {
    std::optional<Pending> pending = queue_.Pop();
    if (!pending) return;  // closed and drained
    Complete(pending->state, Serve(server, worker_id, *pending));
  }
}

Result<ServiceReply> QueryService::Serve(qbism::MedicalServer* server,
                                         int worker_id,
                                         const Pending& pending) {
  const std::shared_ptr<Ticket::State>& state = pending.state;
  Clock::time_point picked_up = Clock::now();
  double queue_wait =
      std::chrono::duration<double>(picked_up - state->submitted).count();
  metrics_.RecordQueueWait(queue_wait);

  // Everything this worker (and any donated helper) does for the
  // request now runs under its trace.
  obs::ScopedTraceContext trace_ctx(state->trace);
  if (state->trace.tracer != nullptr) {
    // Queue residence, recorded retroactively (it already happened).
    obs::SpanRecord qw;
    qw.trace_id = state->trace.trace_id;
    qw.span_id = state->trace.tracer->NextSpanId();
    qw.parent_id = state->trace.span_id;
    qw.stage = obs::Stage::kQueueWait;
    qw.start_seconds = state->trace_start;
    qw.duration_seconds = queue_wait;
    state->trace.tracer->Record(qw);
  }

  // Admission-to-execution gate: requests that died in the queue never
  // touch the database, so a burst of doomed work drains at checkpoint
  // speed instead of query speed.
  if (state->cancelled.load(std::memory_order_relaxed)) {
    return Status::Cancelled("request cancelled while queued");
  }
  if (state->has_deadline && picked_up >= state->deadline) {
    return Status::DeadlineExceeded("deadline expired in admission queue");
  }

  const qbism::QuerySpec& spec = pending.request.spec;
  // Visibility gate, checked before the cache probe: a study mid-ingest
  // or quarantined by a failed replace must not be served at all — not
  // even from cache.
  if (options_.ingest != nullptr &&
      !options_.ingest->IsVisible(spec.study_id)) {
    return Status::NotFound("study " + std::to_string(spec.study_id) +
                            " is offline for ingest");
  }
  uint64_t ingest_version =
      options_.ingest != nullptr
          ? options_.ingest->CommitVersion(spec.study_id)
          : 0;
  std::string key = spec.Describe();
  ServiceReply reply;
  reply.worker_id = worker_id;
  reply.queue_wait_seconds = queue_wait;
  WallTimer execute_timer;

  obs::Span probe(obs::Stage::kCacheProbe);
  std::shared_ptr<const volume::DataRegion> hit = cache_.Get(key);
  probe.SetLabel(hit ? "hit" : "miss");
  probe.End();
  if (hit) {
    // Shared-cache fast path: no SQL, no LFM I/O, no network model —
    // only ImportVolume (and rendering, when asked) still run, exactly
    // like the §5.2 DX cache but across all clients.
    metrics_.AddCacheHit();
    reply.cache_hit = true;
    qbism::StudyQueryResult& out = reply.result;
    out.data = *hit;
    out.result_runs = out.data.region().RunCount();
    out.result_voxels = out.data.VoxelCount();
    out.data_sql = "(served from the shared result cache)";
    obs::Span import(obs::Stage::kImport);
    viz::DxExecutive::ImportResult imported = server->dx()->ImportVolume(out.data);
    import.End();
    out.timing.import_cpu_seconds = imported.cpu_seconds;
    if (pending.request.render) {
      obs::Span render_span(obs::Stage::kRender);
      viz::DxExecutive::RenderResult rendered =
          server->dx()->Render(imported.dense, pending.request.camera);
      out.timing.render_seconds = rendered.cpu_seconds;
      out.image = std::move(rendered.image);
    }
    out.timing.total_seconds =
        out.timing.import_cpu_seconds + out.timing.render_seconds;
    reply.execute_seconds = execute_timer.Seconds();
    return reply;
  }
  if (cache_.enabled()) metrics_.AddCacheMiss();

  // Full query path, with the deadline/cancel checkpoint installed so a
  // slow query aborts between stages instead of wedging the worker.
  server->set_interrupt([state]() -> Status {
    if (state->cancelled.load(std::memory_order_relaxed)) {
      return Status::Cancelled("request cancelled mid-query");
    }
    if (state->has_deadline && Clock::now() >= state->deadline) {
      return Status::DeadlineExceeded("deadline expired mid-query");
    }
    return Status::OK();
  });
  Result<qbism::StudyQueryResult> result = server->RunStudyQuery(
      spec, pending.request.render, pending.request.camera);
  // Transient-fault recovery: IOError is the retryable class (injected
  // disk faults; flaky media in the real world). Anything else — bad
  // specs, cancellation, deadline — fails immediately.
  for (int attempt = 0;
       !result.ok() && result.status().IsIOError() &&
       attempt < options_.max_retries;
       ++attempt) {
    double backoff = options_.retry_backoff_seconds * std::ldexp(1.0, attempt);
    if (backoff > options_.retry_backoff_max_seconds) {
      backoff = options_.retry_backoff_max_seconds;
    }
    if (state->cancelled.load(std::memory_order_relaxed)) {
      server->set_interrupt(nullptr);
      return Status::Cancelled("request cancelled between retries");
    }
    if (state->has_deadline &&
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(backoff)) >=
            state->deadline) {
      break;  // the backoff alone would blow the deadline; give up
    }
    if (backoff > 0.0) {
      obs::Span retry(obs::Stage::kRetry);
      char label[16];
      std::snprintf(label, sizeof(label), "retry%d", attempt + 1);
      retry.SetLabel(label);
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    metrics_.AddRetry();
    result = server->RunStudyQuery(spec, pending.request.render,
                                   pending.request.camera);
  }
  if (!result.ok() && result.status().IsIOError()) {
    metrics_.AddGiveup();
  }
  server->set_interrupt(nullptr);
  // The per-worker DX cache would shadow the shared tier (and grow
  // without bound under a streaming workload); the shared cache is the
  // one source of reuse.
  server->dx()->FlushCache();
  if (!result.ok()) return result.status();

  reply.result = result.MoveValue();
  if (options_.io_wait_scale > 0.0) {
    const qbism::TimingBreakdown& timing = reply.result.timing;
    double modeled_wait = (timing.db_real_seconds - timing.db_cpu_seconds) +
                          timing.network_seconds;
    if (modeled_wait > 0.0) {
      obs::Span wait(obs::Stage::kIoWait);
      std::this_thread::sleep_for(std::chrono::duration<double>(
          options_.io_wait_scale * modeled_wait));
    }
  }
  reply.execute_seconds = execute_timer.Seconds();
  // Fill only if no ingest of this study committed while the query ran;
  // otherwise this (now stale) result would be inserted after the
  // commit's invalidation swept the key.
  if (options_.ingest == nullptr ||
      options_.ingest->CommitVersion(spec.study_id) == ingest_version) {
    cache_.Put(key,
               std::make_shared<const volume::DataRegion>(reply.result.data));
  }
  return reply;
}

Status QueryService::RunIngest(const qbism::med::StudyRecord& record,
                               bool replace) {
  if (options_.ingest == nullptr) {
    return Status::FailedPrecondition(
        "QueryService::RunIngest: no IngestManager configured");
  }
  Status status = replace ? options_.ingest->ReplaceStudy(record)
                          : options_.ingest->IngestStudy(record);
  if (status.ok()) {
    metrics_.AddIngest();
  } else {
    metrics_.AddIngestFailure();
  }
  return status;
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  if (options_.ingest != nullptr && ingest_listener_token_ != 0) {
    options_.ingest->RemoveCommitListener(ingest_listener_token_);
    ingest_listener_token_ = 0;
  }
  queue_.Close();
  // Fail pending work fast instead of letting workers run it down.
  for (Pending& pending : queue_.DrainNow()) {
    Complete(pending.state,
             Status::Cancelled("QueryService: shut down before execution"));
  }
  for (std::thread& worker : workers_) worker.join();
  // Detach and drain the helper pool only if it is still ours — a later
  // service sharing the extension may have installed its own.
  if (extract_pool_ != nullptr) {
    if (ext_->extractor()->pool() == extract_pool_.get()) {
      ext_->extractor()->set_pool(nullptr);
    }
    extract_pool_->Shutdown();
  }
}

MetricsSnapshot QueryService::metrics() const {
  MetricsSnapshot out = metrics_.Snapshot();
  qbism::ExtractorStatsSnapshot delta =
      ext_->extractor()->stats() - extractor_baseline_;
  out.extract_extents_planned = delta.extents_planned;
  out.extract_pages_read = delta.pages_read;
  out.extract_pages_demanded = delta.pages_demanded;
  out.extract_bytes_moved = delta.bytes_moved;
  out.extract_helper_tasks = delta.helper_tasks;
  out.extract_coalescing_ratio = delta.CoalescingRatio();
  out.extract_parallel_efficiency = delta.ParallelEfficiency();
  if (options_.tracer != nullptr) {
    out.stages = options_.tracer->StageSummaries();
  }
  return out;
}

}  // namespace qbism::service
