#include "service/result_cache.h"

namespace qbism::service {

std::shared_ptr<const volume::DataRegion> ResultCache::Get(
    const std::string& key) {
  if (!enabled()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return lru_.front().value;
}

bool ResultCache::Contains(const std::string& key) const {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return index_.find(key) != index_.end();
}

void ResultCache::Put(const std::string& key,
                      std::shared_ptr<const volume::DataRegion> value) {
  if (!enabled() || value == nullptr) return;
  uint64_t bytes = value->ApproxSizeBytes();
  if (bytes > max_bytes_) return;  // would evict everything and still not fit
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh: same key recomputed (e.g. two workers raced on a miss).
    bytes_ -= it->second->bytes;
    bytes_ += bytes;
    it->second->value = std::move(value);
    it->second->bytes = bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(value), bytes});
    index_[key] = lru_.begin();
    bytes_ += bytes;
    ++stats_.insertions;
  }
  while (lru_.size() > max_entries_ || bytes_ > max_bytes_) EvictOne();
}

void ResultCache::EvictOne() {
  const Entry& victim = lru_.back();
  bytes_ -= victim.bytes;
  index_.erase(victim.key);
  lru_.pop_back();
  ++stats_.evictions;
}

size_t ResultCache::InvalidatePrefix(const std::string& prefix) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.compare(0, prefix.size(), prefix) == 0) {
      bytes_ -= it->bytes;
      index_.erase(it->key);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidations += dropped;
  return dropped;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResultCacheStats out = stats_;
  out.entries = lru_.size();
  out.bytes = bytes_;
  return out;
}

}  // namespace qbism::service
