#include "service/workload.h"

#include <algorithm>

#include "common/macros.h"

namespace qbism::service {

using qbism::QuerySpec;

Result<WorkloadGenerator> WorkloadGenerator::Create(
    qbism::SpatialExtension* ext, std::vector<int> study_ids,
    std::vector<std::string> structures, WorkloadMix mix, uint64_t seed) {
  if (study_ids.empty()) {
    return Status::InvalidArgument("WorkloadGenerator: no studies");
  }
  if (structures.empty()) {
    return Status::InvalidArgument("WorkloadGenerator: no structures");
  }
  std::map<int, std::vector<std::pair<int, int>>> bands;
  for (int study : study_ids) {
    QBISM_ASSIGN_OR_RETURN(
        sql::ResultSet rows,
        ext->db()->Execute(
            "select ib.lo, ib.hi from intensityBand ib where ib.studyId = " +
            std::to_string(study) + " order by lo"));
    std::vector<std::pair<int, int>> study_bands;
    for (const sql::Row& row : rows.rows) {
      study_bands.emplace_back(static_cast<int>(row[0].AsInt().value()),
                               static_cast<int>(row[1].AsInt().value()));
    }
    if (study_bands.empty()) {
      return Status::NotFound("WorkloadGenerator: study " +
                              std::to_string(study) + " has no stored bands");
    }
    bands[study] = std::move(study_bands);
  }
  return WorkloadGenerator(std::move(study_ids), std::move(structures),
                           std::move(bands), mix, seed);
}

QuerySpec WorkloadGenerator::Next() {
  QuerySpec spec;
  spec.study_id = study_ids_[rng_.NextBounded(study_ids_.size())];

  double total = mix_.full_study + mix_.box + mix_.structure + mix_.band;
  double draw = rng_.NextDouble() * total;
  if (draw < mix_.full_study) {
    return spec;  // entire study (Q1)
  }
  draw -= mix_.full_study;
  if (draw < mix_.box) {
    // Quantized rectangular solid (Q2 shape): corners on a 16-lattice,
    // at least one cell wide in every dimension.
    auto corner = [&](int max_cells) {
      return static_cast<int>(rng_.NextBounded(max_cells)) * 16;
    };
    int x0 = corner(6), y0 = corner(6), z0 = corner(6);
    int x1 = x0 + 16 + corner(4);
    int y1 = y0 + 16 + corner(4);
    int z1 = z0 + 16 + corner(4);
    spec.box = geometry::Box3i{{x0, y0, z0},
                               {std::min(x1, 127), std::min(y1, 127),
                                std::min(z1, 127)}};
    return spec;
  }
  draw -= mix_.box;
  if (draw < mix_.structure) {
    spec.structure_name = structures_[rng_.NextBounded(structures_.size())];
    return spec;
  }
  const auto& bands = bands_.at(spec.study_id);
  spec.intensity_range = bands[rng_.NextBounded(bands.size())];
  return spec;
}

uint64_t WorkloadGenerator::DistinctSpecs() const {
  uint64_t boxes = 6ull * 6 * 6 * 4 * 4 * 4;  // corner × extent lattice
  uint64_t per_study = 1 + boxes + structures_.size();
  uint64_t total = 0;
  for (const auto& [study, bands] : bands_) {
    (void)study;
    total += per_study + bands.size();
  }
  return total;
}

}  // namespace qbism::service
