#ifndef QBISM_SERVICE_METRICS_H_
#define QBISM_SERVICE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/trace.h"

namespace qbism::service {

/// Latency percentiles over a set of recorded samples (seconds).
struct LatencySummary {
  uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Thread-safe recorder for per-request latencies. Count, mean, and max
/// are exact over every sample; percentiles come from a bounded
/// reservoir (Vitter's Algorithm R), so a long-lived service records
/// forever in O(capacity) memory instead of growing a sample vector
/// without bound.
class LatencyRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit LatencyRecorder(size_t capacity = kDefaultCapacity)
      : capacity_(capacity > 0 ? capacity : 1), rng_(0x9e3779b97f4a7c15ull) {
    samples_.reserve(capacity_);
  }

  void Record(double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
    sum_ += seconds;
    if (seconds > max_) max_ = seconds;
    if (samples_.size() < capacity_) {
      samples_.push_back(seconds);
    } else {
      // Keep each of the `count_` samples seen so far in the reservoir
      // with equal probability capacity_ / count_.
      uint64_t slot = rng_.NextBounded(count_);
      if (slot < capacity_) samples_[slot] = seconds;
    }
  }

  LatencySummary Summarize() const;

  size_t capacity() const { return capacity_; }

  /// Samples currently held (never exceeds capacity()).
  size_t reservoir_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.size();
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
    count_ = 0;
    sum_ = 0.0;
    max_ = 0.0;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<double> samples_;  // reservoir; guarded by mu_
  uint64_t count_ = 0;           // guarded by mu_
  double sum_ = 0.0;             // guarded by mu_
  double max_ = 0.0;             // guarded by mu_
  Rng rng_;                      // guarded by mu_
};

/// Point-in-time copy of the service counters, safe to read and print.
struct MetricsSnapshot {
  uint64_t submitted = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t deadline_expired = 0;  // expired in queue or between stages
  uint64_t cancelled = 0;
  uint64_t failed = 0;     // non-OK from the query path itself
  uint64_t completed = 0;  // OK replies
  uint64_t retries = 0;    // transient-fault re-executions of a query
  uint64_t giveups = 0;    // requests failed with the retry budget spent
  /// Front-end rejections (the socket server's admission edge; see
  /// docs/NETWORK.md). Counted alongside rejected_queue_full so one
  /// snapshot covers every way a request can bounce before execution.
  uint64_t unauthorized = 0;     // bad credentials / bad session token
  uint64_t quota_rejected = 0;   // per-tenant quota or fair-share bound
  uint64_t session_expired = 0;  // request on a session past its TTL
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Online-ingest accounting (docs/DURABILITY.md): committed ingest
  /// transactions, failed/aborted ones, and cache entries dropped by
  /// per-study invalidation at ingest commit.
  uint64_t ingests = 0;
  uint64_t ingest_failures = 0;
  uint64_t cache_invalidations = 0;
  uint64_t lfm_pages = 0;
  double network_seconds = 0.0;
  double queue_wait_seconds = 0.0;  // summed across requests
  LatencySummary latency;           // end-to-end (admission to reply)
  LatencySummary queue_wait;

  /// Extraction fast-path counters, merged in by the service from its
  /// shared ParallelExtractor (deltas over the service's lifetime).
  uint64_t extract_extents_planned = 0;
  uint64_t extract_pages_read = 0;
  uint64_t extract_pages_demanded = 0;  // the per-run seed path's cost
  uint64_t extract_bytes_moved = 0;
  uint64_t extract_helper_tasks = 0;    // shard tasks run by donated threads
  double extract_coalescing_ratio = 1.0;   // pages_demanded / pages_read
  double extract_parallel_efficiency = 1.0;  // avg threads in extraction

  /// Per-stage tracing summaries, filled by the service when a Tracer
  /// is attached (empty otherwise). See docs/OBSERVABILITY.md.
  std::vector<obs::StageSummary> stages;

  /// One-line JSON object (keys stable for the benchmark harness).
  std::string ToJson() const;
};

/// Shared service-wide counters, aggregated across workers via atomics;
/// doubles totaled via compare-exchange loops (no double fetch_add until
/// C++20 libstdc++ catches up everywhere).
class ServiceMetrics {
 public:
  void AddSubmitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void AddRejectedQueueFull() {
    rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddDeadlineExpired() {
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddCancelled() { cancelled_.fetch_add(1, std::memory_order_relaxed); }
  void AddFailed() { failed_.fetch_add(1, std::memory_order_relaxed); }
  void AddCompleted() { completed_.fetch_add(1, std::memory_order_relaxed); }
  void AddRetry() { retries_.fetch_add(1, std::memory_order_relaxed); }
  void AddGiveup() { giveups_.fetch_add(1, std::memory_order_relaxed); }
  void AddUnauthorized() {
    unauthorized_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddQuotaRejected() {
    quota_rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddSessionExpired() {
    session_expired_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddCacheHit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void AddCacheMiss() {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddIngest() { ingests_.fetch_add(1, std::memory_order_relaxed); }
  void AddIngestFailure() {
    ingest_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddCacheInvalidations(uint64_t n) {
    cache_invalidations_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddLfmPages(uint64_t pages) {
    lfm_pages_.fetch_add(pages, std::memory_order_relaxed);
  }
  void AddNetworkSeconds(double s) { AddDouble(network_seconds_, s); }

  void RecordLatency(double seconds) { latency_.Record(seconds); }
  void RecordQueueWait(double seconds) {
    AddDouble(queue_wait_seconds_, seconds);
    queue_wait_.Record(seconds);
  }

  MetricsSnapshot Snapshot() const;

 private:
  static void AddDouble(std::atomic<double>& target, double delta) {
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> giveups_{0};
  std::atomic<uint64_t> unauthorized_{0};
  std::atomic<uint64_t> quota_rejected_{0};
  std::atomic<uint64_t> session_expired_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> ingests_{0};
  std::atomic<uint64_t> ingest_failures_{0};
  std::atomic<uint64_t> cache_invalidations_{0};
  std::atomic<uint64_t> lfm_pages_{0};
  std::atomic<double> network_seconds_{0.0};
  std::atomic<double> queue_wait_seconds_{0.0};
  LatencyRecorder latency_;
  LatencyRecorder queue_wait_;
};

}  // namespace qbism::service

#endif  // QBISM_SERVICE_METRICS_H_
