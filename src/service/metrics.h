#ifndef QBISM_SERVICE_METRICS_H_
#define QBISM_SERVICE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace qbism::service {

/// Latency percentiles over a set of recorded samples (seconds).
struct LatencySummary {
  uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Thread-safe recorder for per-request latencies. A plain locked
/// vector: the service handles thousands of requests per run, not
/// millions, so exact percentiles beat a bucketed histogram here.
class LatencyRecorder {
 public:
  void Record(double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.push_back(seconds);
  }

  LatencySummary Summarize() const;

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;  // guarded by mu_
};

/// Point-in-time copy of the service counters, safe to read and print.
struct MetricsSnapshot {
  uint64_t submitted = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t deadline_expired = 0;  // expired in queue or between stages
  uint64_t cancelled = 0;
  uint64_t failed = 0;     // non-OK from the query path itself
  uint64_t completed = 0;  // OK replies
  uint64_t retries = 0;    // transient-fault re-executions of a query
  uint64_t giveups = 0;    // requests failed with the retry budget spent
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t lfm_pages = 0;
  double network_seconds = 0.0;
  double queue_wait_seconds = 0.0;  // summed across requests
  LatencySummary latency;           // end-to-end (admission to reply)
  LatencySummary queue_wait;

  /// Extraction fast-path counters, merged in by the service from its
  /// shared ParallelExtractor (deltas over the service's lifetime).
  uint64_t extract_extents_planned = 0;
  uint64_t extract_pages_read = 0;
  uint64_t extract_pages_demanded = 0;  // the per-run seed path's cost
  uint64_t extract_bytes_moved = 0;
  uint64_t extract_helper_tasks = 0;    // shard tasks run by donated threads
  double extract_coalescing_ratio = 1.0;   // pages_demanded / pages_read
  double extract_parallel_efficiency = 1.0;  // avg threads in extraction

  /// One-line JSON object (keys stable for the benchmark harness).
  std::string ToJson() const;
};

/// Shared service-wide counters, aggregated across workers via atomics;
/// doubles totaled via compare-exchange loops (no double fetch_add until
/// C++20 libstdc++ catches up everywhere).
class ServiceMetrics {
 public:
  void AddSubmitted() { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void AddRejectedQueueFull() {
    rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddDeadlineExpired() {
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddCancelled() { cancelled_.fetch_add(1, std::memory_order_relaxed); }
  void AddFailed() { failed_.fetch_add(1, std::memory_order_relaxed); }
  void AddCompleted() { completed_.fetch_add(1, std::memory_order_relaxed); }
  void AddRetry() { retries_.fetch_add(1, std::memory_order_relaxed); }
  void AddGiveup() { giveups_.fetch_add(1, std::memory_order_relaxed); }
  void AddCacheHit() { cache_hits_.fetch_add(1, std::memory_order_relaxed); }
  void AddCacheMiss() {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddLfmPages(uint64_t pages) {
    lfm_pages_.fetch_add(pages, std::memory_order_relaxed);
  }
  void AddNetworkSeconds(double s) { AddDouble(network_seconds_, s); }

  void RecordLatency(double seconds) { latency_.Record(seconds); }
  void RecordQueueWait(double seconds) {
    AddDouble(queue_wait_seconds_, seconds);
    queue_wait_.Record(seconds);
  }

  MetricsSnapshot Snapshot() const;

 private:
  static void AddDouble(std::atomic<double>& target, double delta) {
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> giveups_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> lfm_pages_{0};
  std::atomic<double> network_seconds_{0.0};
  std::atomic<double> queue_wait_seconds_{0.0};
  LatencyRecorder latency_;
  LatencyRecorder queue_wait_;
};

}  // namespace qbism::service

#endif  // QBISM_SERVICE_METRICS_H_
