#ifndef QBISM_SERVICE_RESULT_CACHE_H_
#define QBISM_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "volume/volume.h"

namespace qbism::service {

/// Counters for cache observability (benchmarks assert the hit-path
/// latency win with these).
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;  // entries dropped by InvalidatePrefix
  uint64_t entries = 0;
  uint64_t bytes = 0;
};

/// Server-wide shared LRU result cache: the §5.2 per-DX-executive
/// result cache promoted to a tier shared by every worker, so one
/// client's expensive extraction serves later clients regardless of
/// which worker they land on. Keyed by the canonicalized
/// QuerySpec::Describe() string; values are immutable DATA_REGIONs
/// behind shared_ptr, so a hit never copies voxels and an eviction
/// never invalidates a reply already handed out.
///
/// Bounded by entry count and by an approximate byte budget (whichever
/// trips first evicts from the LRU tail). Thread-safe.
class ResultCache {
 public:
  /// `max_entries` == 0 disables the cache entirely (every Get misses,
  /// Put is a no-op) — the benchmark's cache-off arm.
  ResultCache(size_t max_entries, uint64_t max_bytes = UINT64_MAX)
      : max_entries_(max_entries), max_bytes_(max_bytes) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached result (promoting it to most-recently-used) or
  /// nullptr, counting a hit or a miss.
  std::shared_ptr<const volume::DataRegion> Get(const std::string& key);

  /// True when `key` is resident. A pure probe: no LRU promotion, no
  /// hit/miss accounting — the fault sweep uses it to assert a failed
  /// query's key was never admitted without disturbing the stats it is
  /// also asserting on.
  bool Contains(const std::string& key) const;

  /// Inserts or refreshes an entry, evicting from the LRU tail until
  /// both bounds hold. Oversized values (alone above the byte budget)
  /// are not admitted.
  void Put(const std::string& key,
           std::shared_ptr<const volume::DataRegion> value);

  /// Drops every entry whose key starts with `prefix`, counting each
  /// into stats().invalidations; returns how many were dropped. The
  /// ingest path calls this with the study component of the
  /// QuerySpec::Describe() key when a study's data changes, so a cached
  /// result can never outlive the data it was computed from.
  size_t InvalidatePrefix(const std::string& prefix);

  void Clear();

  ResultCacheStats stats() const;
  bool enabled() const { return max_entries_ > 0; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const volume::DataRegion> value;
    uint64_t bytes = 0;
  };

  /// Drops the LRU tail entry. Caller holds mu_.
  void EvictOne();

  const size_t max_entries_;
  const uint64_t max_bytes_;
  mutable std::mutex mu_;
  // Front = most recently used. All below guarded by mu_.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t bytes_ = 0;
  ResultCacheStats stats_;
};

}  // namespace qbism::service

#endif  // QBISM_SERVICE_RESULT_CACHE_H_
