#include "service/metrics.h"

#include <algorithm>
#include <cstdio>

namespace qbism::service {

namespace {

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  double rank = p * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

LatencySummary LatencyRecorder::Summarize() const {
  LatencySummary out;
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = samples_;
    out.count = count_;
    out.max = max_;
    out.mean = count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  if (sorted.empty()) return out;
  // Percentiles are estimated from the reservoir (exact until the
  // recorder overflows its capacity); count/mean/max are always exact.
  std::sort(sorted.begin(), sorted.end());
  out.p50 = Percentile(sorted, 0.50);
  out.p95 = Percentile(sorted, 0.95);
  out.p99 = Percentile(sorted, 0.99);
  return out;
}

MetricsSnapshot ServiceMetrics::Snapshot() const {
  MetricsSnapshot out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.rejected_queue_full = rejected_queue_full_.load(std::memory_order_relaxed);
  out.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  out.cancelled = cancelled_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.retries = retries_.load(std::memory_order_relaxed);
  out.giveups = giveups_.load(std::memory_order_relaxed);
  out.unauthorized = unauthorized_.load(std::memory_order_relaxed);
  out.quota_rejected = quota_rejected_.load(std::memory_order_relaxed);
  out.session_expired = session_expired_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  out.ingests = ingests_.load(std::memory_order_relaxed);
  out.ingest_failures = ingest_failures_.load(std::memory_order_relaxed);
  out.cache_invalidations =
      cache_invalidations_.load(std::memory_order_relaxed);
  out.lfm_pages = lfm_pages_.load(std::memory_order_relaxed);
  out.network_seconds = network_seconds_.load(std::memory_order_relaxed);
  out.queue_wait_seconds = queue_wait_seconds_.load(std::memory_order_relaxed);
  out.latency = latency_.Summarize();
  out.queue_wait = queue_wait_.Summarize();
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "{\"submitted\":%llu,\"rejected_queue_full\":%llu,"
      "\"deadline_expired\":%llu,\"cancelled\":%llu,\"failed\":%llu,"
      "\"completed\":%llu,\"retries\":%llu,\"giveups\":%llu,"
      "\"unauthorized\":%llu,\"quota_rejected\":%llu,"
      "\"session_expired\":%llu,"
      "\"cache_hits\":%llu,\"cache_misses\":%llu,"
      "\"ingests\":%llu,\"ingest_failures\":%llu,"
      "\"cache_invalidations\":%llu,"
      "\"lfm_pages\":%llu,\"network_seconds\":%.6f,"
      "\"queue_wait_seconds\":%.6f,"
      "\"extract_extents_planned\":%llu,\"extract_pages_read\":%llu,"
      "\"extract_pages_demanded\":%llu,\"extract_bytes_moved\":%llu,"
      "\"extract_helper_tasks\":%llu,\"extract_coalescing_ratio\":%.4f,"
      "\"extract_parallel_efficiency\":%.4f,"
      "\"latency\":{\"count\":%llu,\"mean\":%.6f,\"p50\":%.6f,"
      "\"p95\":%.6f,\"p99\":%.6f,\"max\":%.6f}}",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(rejected_queue_full),
      static_cast<unsigned long long>(deadline_expired),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(giveups),
      static_cast<unsigned long long>(unauthorized),
      static_cast<unsigned long long>(quota_rejected),
      static_cast<unsigned long long>(session_expired),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(ingests),
      static_cast<unsigned long long>(ingest_failures),
      static_cast<unsigned long long>(cache_invalidations),
      static_cast<unsigned long long>(lfm_pages), network_seconds,
      queue_wait_seconds,
      static_cast<unsigned long long>(extract_extents_planned),
      static_cast<unsigned long long>(extract_pages_read),
      static_cast<unsigned long long>(extract_pages_demanded),
      static_cast<unsigned long long>(extract_bytes_moved),
      static_cast<unsigned long long>(extract_helper_tasks),
      extract_coalescing_ratio, extract_parallel_efficiency,
      static_cast<unsigned long long>(latency.count),
      latency.mean, latency.p50, latency.p95, latency.p99, latency.max);
  std::string out(buf);
  if (!stages.empty()) {
    out.back() = ',';  // reopen the object to append the stages array
    out += "\"stages\":" + obs::Tracer::StagesToJson(stages) + "}";
  }
  return out;
}

}  // namespace qbism::service
