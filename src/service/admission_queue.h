#ifndef QBISM_SERVICE_ADMISSION_QUEUE_H_
#define QBISM_SERVICE_ADMISSION_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace qbism::service {

/// Bounded multi-producer/multi-consumer admission queue for the query
/// service. Admission control is reject-on-full, not block-on-full:
/// TryPush returns false immediately when the queue is at capacity, so
/// overload surfaces to clients as a fast ResourceExhausted instead of
/// unbounded queueing delay (the front end never holds more work than
/// the pool can reach in bounded time).
template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(size_t capacity) : capacity_(capacity) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Enqueues unless the queue is full or closed; never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed; returns
  /// nullopt only on close-with-empty-queue (worker shutdown signal).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops admissions and wakes all blocked consumers. Items already
  /// queued are still handed out by Pop (drain-on-shutdown); call
  /// DrainNow to claim them in one step instead.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  /// Removes and returns everything currently queued (used to fail
  /// pending requests fast on shutdown).
  std::deque<T> DrainNow() {
    std::lock_guard<std::mutex> lock(mu_);
    std::deque<T> out;
    out.swap(items_);
    return out;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;  // guarded by mu_
  bool closed_ = false;  // guarded by mu_
};

}  // namespace qbism::service

#endif  // QBISM_SERVICE_ADMISSION_QUEUE_H_
