#ifndef QBISM_SERVER_ADMISSION_H_
#define QBISM_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "server/auth.h"

namespace qbism::server {

class TenantGovernor;

/// RAII execution slot handed out by the governor; releasing it (or
/// destroying it) wakes the next waiter. Movable, not copyable.
class AdmissionSlot {
 public:
  AdmissionSlot() = default;
  AdmissionSlot(AdmissionSlot&& other) noexcept { *this = std::move(other); }
  AdmissionSlot& operator=(AdmissionSlot&& other) noexcept;
  ~AdmissionSlot() { Release(); }

  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

  void Release();
  bool held() const { return governor_ != nullptr; }

 private:
  friend class TenantGovernor;
  AdmissionSlot(TenantGovernor* governor, int tenant)
      : governor_(governor), tenant_(tenant) {}

  TenantGovernor* governor_ = nullptr;
  int tenant_ = -1;
};

/// Point-in-time view of one tenant's admission accounting.
struct TenantAdmissionStats {
  uint64_t admitted = 0;        // slots granted
  uint64_t rejected_quota = 0;  // bounced at the waiting cap
  uint64_t waited = 0;          // admissions that had to block
  int inflight = 0;             // slots currently held
  int waiting = 0;              // currently blocked in Admit
  int slot_cap = 0;             // the tenant's fair-share in-flight cap
};

/// Per-tenant fair-share admission in front of the QueryService.
///
/// Each tenant holds at most `slot_cap(t)` execution slots at once —
/// explicit (TenantConfig::max_inflight) or derived from its weight:
/// max(1, floor(total_slots * weight_t / sum(weights))). A request for
/// a tenant at its cap blocks (fairly, FIFO per tenant) until one of
/// that tenant's slots frees; at most `max_waiting` requests may block
/// per tenant, and arrivals beyond that are rejected immediately with
/// ResourceExhausted (counted as quota_rejected). A global bound equal
/// to the sum of the caps keeps the inner admission queue from ever
/// rejecting an admitted request.
///
/// The fair-share guarantee: a greedy tenant saturating its own cap
/// cannot take slots that other tenants' caps reserve, so every tenant
/// always has slot_cap(t) worth of service capacity available — the
/// greedy tenant's surplus queues on its own connections instead.
class TenantGovernor {
 public:
  /// `total_slots` is the capacity being shared — normally the query
  /// service's worker count.
  TenantGovernor(const std::vector<TenantConfig>& tenants, int total_slots);

  /// Blocks until the tenant is under its cap, then takes a slot.
  ///   ResourceExhausted  tenant's waiting line is full (quota)
  ///   Cancelled          governor closed (server shutdown)
  Result<AdmissionSlot> Admit(int tenant);

  /// Wakes every waiter with Cancelled and makes further Admit calls
  /// fail; held slots may still be released.
  void Close();

  TenantAdmissionStats tenant_stats(int tenant) const;
  int slot_cap(int tenant) const {
    return tenants_[static_cast<size_t>(tenant)].slot_cap;
  }
  int total_slots() const { return total_slots_; }
  int total_inflight() const;

 private:
  friend class AdmissionSlot;

  struct TenantState {
    int slot_cap = 0;
    int max_waiting = 0;
    int inflight = 0;  // guarded by mu_
    int waiting = 0;   // guarded by mu_
    uint64_t admitted = 0;
    uint64_t rejected_quota = 0;
    uint64_t waited = 0;
  };

  void Release(int tenant);

  const int total_slots_;
  mutable std::mutex mu_;
  std::condition_variable freed_;
  std::vector<TenantState> tenants_;  // guarded by mu_
  bool closed_ = false;               // guarded by mu_
};

}  // namespace qbism::server

#endif  // QBISM_SERVER_ADMISSION_H_
