#include "server/admission.h"

#include <cmath>

namespace qbism::server {

AdmissionSlot& AdmissionSlot::operator=(AdmissionSlot&& other) noexcept {
  if (this != &other) {
    Release();
    governor_ = other.governor_;
    tenant_ = other.tenant_;
    other.governor_ = nullptr;
    other.tenant_ = -1;
  }
  return *this;
}

void AdmissionSlot::Release() {
  if (governor_ == nullptr) return;
  governor_->Release(tenant_);
  governor_ = nullptr;
  tenant_ = -1;
}

TenantGovernor::TenantGovernor(const std::vector<TenantConfig>& tenants,
                               int total_slots)
    : total_slots_(total_slots) {
  double weight_sum = 0.0;
  for (const TenantConfig& t : tenants) {
    weight_sum += t.weight > 0.0 ? t.weight : 0.0;
  }
  if (weight_sum <= 0.0) weight_sum = 1.0;
  tenants_.reserve(tenants.size());
  for (const TenantConfig& t : tenants) {
    TenantState state;
    if (t.max_inflight > 0) {
      state.slot_cap = t.max_inflight;
    } else {
      double weight = t.weight > 0.0 ? t.weight : 0.0;
      state.slot_cap = std::max(
          1, static_cast<int>(std::floor(static_cast<double>(total_slots) *
                                         weight / weight_sum)));
    }
    state.max_waiting = t.max_waiting > 0 ? t.max_waiting : 1;
    tenants_.push_back(state);
  }
}

Result<AdmissionSlot> TenantGovernor::Admit(int tenant) {
  if (tenant < 0 || tenant >= static_cast<int>(tenants_.size())) {
    return Status::InvalidArgument("unknown tenant index");
  }
  TenantState& state = tenants_[static_cast<size_t>(tenant)];
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return Status::Cancelled("admission closed");
  if (state.inflight < state.slot_cap) {
    ++state.inflight;
    ++state.admitted;
    return AdmissionSlot(this, tenant);
  }
  // Tenant at its fair-share cap: wait, unless its line is already full
  // — that is the per-tenant quota, and it must reject fast so a greedy
  // tenant's excess bounces instead of accumulating unbounded waiters.
  if (state.waiting >= state.max_waiting) {
    ++state.rejected_quota;
    return Status::ResourceExhausted(
        "tenant quota: " + std::to_string(state.max_waiting) +
        " requests already waiting");
  }
  ++state.waiting;
  ++state.waited;
  freed_.wait(lock, [&] {
    return closed_ || state.inflight < state.slot_cap;
  });
  --state.waiting;
  if (closed_) return Status::Cancelled("admission closed");
  ++state.inflight;
  ++state.admitted;
  return AdmissionSlot(this, tenant);
}

void TenantGovernor::Release(int tenant) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --tenants_[static_cast<size_t>(tenant)].inflight;
  }
  // A freed slot can only help waiters of the same tenant, but the
  // wait predicate re-checks per-tenant state, so a broadcast is
  // correct (and slots free rarely relative to wait cost).
  freed_.notify_all();
}

void TenantGovernor::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  freed_.notify_all();
}

TenantAdmissionStats TenantGovernor::tenant_stats(int tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const TenantState& state = tenants_[static_cast<size_t>(tenant)];
  TenantAdmissionStats out;
  out.admitted = state.admitted;
  out.rejected_quota = state.rejected_quota;
  out.waited = state.waited;
  out.inflight = state.inflight;
  out.waiting = state.waiting;
  out.slot_cap = state.slot_cap;
  return out;
}

int TenantGovernor::total_inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  int total = 0;
  for (const TenantState& t : tenants_) total += t.inflight;
  return total;
}

}  // namespace qbism::server
