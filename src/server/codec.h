#ifndef QBISM_SERVER_CODEC_H_
#define QBISM_SERVER_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "qbism/medical_server.h"
#include "region/encoding.h"
#include "server/protocol.h"
#include "volume/volume.h"

namespace qbism::server {

/// Message codec: the payload formats carried inside protocol frames.
/// Every Decode* goes through the bounds-checked WireReader, so a
/// malformed payload yields a clean Corruption status, never a read
/// past the buffer. docs/NETWORK.md documents each layout.

/// kHello payload.
struct HelloRequest {
  std::string tenant;
  std::string secret;
};

/// kWelcome payload.
struct WelcomeReply {
  uint64_t session_token = 0;
  double session_ttl_seconds = 0.0;
  uint32_t chunk_bytes = 0;  // result streaming chunk size the server uses
};

/// kQuery payload: the QuerySpec plus request-scoped service controls.
struct QueryRequest {
  qbism::QuerySpec spec;
  bool render = false;
  double deadline_seconds = 0.0;
};

/// kResultHeader payload: everything about the answer except the voxel
/// payload itself, which follows as `chunk_count` kResultChunk frames
/// totalling `payload_bytes` bytes (the codec's ship-bytes accounting).
struct ResultHeader {
  uint64_t result_runs = 0;
  uint64_t result_voxels = 0;
  uint64_t payload_bytes = 0;
  uint32_t chunk_count = 0;
  uint32_t chunk_bytes = 0;
  bool cache_hit = false;
  int32_t worker_id = -1;
  qbism::TimingBreakdown timing;
  std::string info_sql;
  std::string data_sql;
};

/// kResultEnd payload: totals the client can cross-check against what
/// it received, plus the whole-payload CRC (each chunk frame is already
/// CRC'd individually; this seals the reassembled stream).
struct ResultEnd {
  uint64_t payload_bytes = 0;
  uint32_t chunk_count = 0;
  uint32_t payload_crc = 0;
  double modeled_egress_seconds = 0.0;  // egress shaper accounting
};

/// kError payload.
struct ErrorReply {
  StatusCode code = StatusCode::kInternal;
  ErrorReason reason = ErrorReason::kNone;
  std::string message;
};

std::vector<uint8_t> EncodeHello(const HelloRequest& hello);
Result<HelloRequest> DecodeHello(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeWelcome(const WelcomeReply& welcome);
Result<WelcomeReply> DecodeWelcome(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeQuery(const QueryRequest& query);
Result<QueryRequest> DecodeQuery(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeResultHeader(const ResultHeader& header);
Result<ResultHeader> DecodeResultHeader(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeResultEnd(const ResultEnd& end);
Result<ResultEnd> DecodeResultEnd(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeError(const ErrorReply& error);
Result<ErrorReply> DecodeError(const std::vector<uint8_t>& payload);

/// Serializes a DataRegion answer: grid + curve, the REGION in the
/// server's configured encoding (tagged in the payload; the default,
/// Elias-gamma deltas, is §4.2's most compact scheme, the same bytes
/// the paper would ship), then the voxel intensities. When the
/// DataRegion carries a cached elias payload (an encoded-domain chain
/// ending at extraction) and elias is the requested encoding, those
/// bytes are shipped verbatim — no re-encode. This buffer is what gets
/// sliced into kResultChunk frames; its size is the canonical "bytes
/// shipped" for the query.
Result<std::vector<uint8_t>> EncodeAnswerPayload(
    const volume::DataRegion& data,
    region::RegionEncoding encoding = region::RegionEncoding::kEliasDeltas);

/// Inverse of EncodeAnswerPayload over the reassembled chunk stream.
Result<volume::DataRegion> DecodeAnswerPayload(
    const std::vector<uint8_t>& payload);

}  // namespace qbism::server

#endif  // QBISM_SERVER_CODEC_H_
