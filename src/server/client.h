#ifndef QBISM_SERVER_CLIENT_H_
#define QBISM_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "server/codec.h"
#include "server/socket_io.h"
#include "volume/volume.h"

namespace qbism::server {

/// One completed query as seen from the wire: the reassembled answer
/// plus the server's accounting for it.
struct QueryOutcome {
  volume::DataRegion data;
  ResultHeader header;
  /// Answer-payload bytes received across kResultChunk frames; always
  /// equals header.payload_bytes on success (the client verifies the
  /// byte total and the whole-payload CRC from kResultEnd).
  uint64_t shipped_bytes = 0;
  uint32_t chunks = 0;
  /// Client-observed round trip: query frame sent -> kResultEnd read.
  double wire_seconds = 0.0;
  double modeled_egress_seconds = 0.0;
};

/// Blocking client for the QBISM socket protocol: dial, Login, then
/// RunQuery in a loop. One connection serves one request at a time
/// (matching the closed-loop clients of the paper's experiments); open
/// several clients for concurrency. Not thread-safe.
class NetClient {
 public:
  NetClient() = default;

  /// Dials host:port. No frames are exchanged until Login.
  static Result<NetClient> Connect(const std::string& host, uint16_t port);

  /// HELLO/WELCOME: authenticates and stores the session token.
  Status Login(const std::string& tenant, const std::string& secret);

  /// Sends one query and reassembles the chunked answer.
  Result<QueryOutcome> RunQuery(const qbism::QuerySpec& spec,
                                double deadline_seconds = 0.0);

  /// Keep-alive; also refreshes the session's idle TTL server-side.
  Status Ping();

  /// Polite close: sends kBye and drops the connection.
  void Bye();
  void Close() { socket_.Close(); }

  bool connected() const { return socket_.valid(); }
  uint64_t session_token() const { return session_token_; }
  /// Server-announced values from WELCOME (0 before Login).
  double session_ttl_seconds() const { return session_ttl_seconds_; }
  uint32_t server_chunk_bytes() const { return server_chunk_bytes_; }
  /// Reason carried by the last kError frame (kNone if none yet); the
  /// returned Status only carries the StatusCode.
  ErrorReason last_error_reason() const { return last_error_reason_; }

  FrameSocket* socket() { return &socket_; }  // for fault-injection tests

 private:
  explicit NetClient(FrameSocket socket) : socket_(std::move(socket)) {}

  /// Reads one frame, turning kError frames into their carried Status
  /// (and recording the reason).
  Result<Frame> ReadExpected(MessageType want, uint64_t request_id);

  FrameSocket socket_;
  uint64_t session_token_ = 0;
  uint64_t next_request_id_ = 1;
  double session_ttl_seconds_ = 0.0;
  uint32_t server_chunk_bytes_ = 0;
  ErrorReason last_error_reason_ = ErrorReason::kNone;
};

}  // namespace qbism::server

#endif  // QBISM_SERVER_CLIENT_H_
