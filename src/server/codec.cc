#include "server/codec.h"

#include "common/macros.h"
#include "region/encoding.h"

namespace qbism::server {

namespace {

/// Caps on variable-length pieces inside decoded payloads, enforced
/// before any allocation. Generous for real answers (a full 512^3
/// study's values are 128 MiB — above kMaxFramePayload anyway, so such
/// answers arrive chunked), tight enough that a lying length cannot
/// balloon memory.
constexpr uint32_t kMaxSqlBytes = 1u << 20;
constexpr uint32_t kMaxNameBytes = 4096;
constexpr uint32_t kMaxRegionBytes = 256u << 20;

void PutTiming(WireWriter* w, const qbism::TimingBreakdown& t) {
  w->PutF64(t.db_cpu_seconds);
  w->PutF64(t.db_real_seconds);
  w->PutU64(t.lfm_pages);
  w->PutU64(t.network_messages);
  w->PutF64(t.network_seconds);
  w->PutF64(t.import_cpu_seconds);
  w->PutF64(t.render_seconds);
  w->PutF64(t.other_seconds);
  w->PutF64(t.total_seconds);
}

Status GetTiming(WireReader* r, qbism::TimingBreakdown* t) {
  QBISM_ASSIGN_OR_RETURN(t->db_cpu_seconds, r->GetF64());
  QBISM_ASSIGN_OR_RETURN(t->db_real_seconds, r->GetF64());
  QBISM_ASSIGN_OR_RETURN(t->lfm_pages, r->GetU64());
  QBISM_ASSIGN_OR_RETURN(t->network_messages, r->GetU64());
  QBISM_ASSIGN_OR_RETURN(t->network_seconds, r->GetF64());
  QBISM_ASSIGN_OR_RETURN(t->import_cpu_seconds, r->GetF64());
  QBISM_ASSIGN_OR_RETURN(t->render_seconds, r->GetF64());
  QBISM_ASSIGN_OR_RETURN(t->other_seconds, r->GetF64());
  QBISM_ASSIGN_OR_RETURN(t->total_seconds, r->GetF64());
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeHello(const HelloRequest& hello) {
  WireWriter w;
  w.PutString(hello.tenant);
  w.PutString(hello.secret);
  return w.Take();
}

Result<HelloRequest> DecodeHello(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  HelloRequest out;
  QBISM_ASSIGN_OR_RETURN(out.tenant, r.GetString(kMaxNameBytes));
  QBISM_ASSIGN_OR_RETURN(out.secret, r.GetString(kMaxNameBytes));
  return out;
}

std::vector<uint8_t> EncodeWelcome(const WelcomeReply& welcome) {
  WireWriter w;
  w.PutU64(welcome.session_token);
  w.PutF64(welcome.session_ttl_seconds);
  w.PutU32(welcome.chunk_bytes);
  return w.Take();
}

Result<WelcomeReply> DecodeWelcome(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  WelcomeReply out;
  QBISM_ASSIGN_OR_RETURN(out.session_token, r.GetU64());
  QBISM_ASSIGN_OR_RETURN(out.session_ttl_seconds, r.GetF64());
  QBISM_ASSIGN_OR_RETURN(out.chunk_bytes, r.GetU32());
  return out;
}

std::vector<uint8_t> EncodeQuery(const QueryRequest& query) {
  const qbism::QuerySpec& spec = query.spec;
  WireWriter w;
  w.PutI32(spec.study_id);
  w.PutString(spec.atlas_name);
  w.PutU8(spec.structure_name.has_value() ? 1 : 0);
  if (spec.structure_name) w.PutString(*spec.structure_name);
  w.PutU8(spec.box.has_value() ? 1 : 0);
  if (spec.box) {
    w.PutI32(spec.box->min.x);
    w.PutI32(spec.box->min.y);
    w.PutI32(spec.box->min.z);
    w.PutI32(spec.box->max.x);
    w.PutI32(spec.box->max.y);
    w.PutI32(spec.box->max.z);
  }
  w.PutU8(spec.intensity_range.has_value() ? 1 : 0);
  if (spec.intensity_range) {
    w.PutI32(spec.intensity_range->first);
    w.PutI32(spec.intensity_range->second);
  }
  w.PutU8(spec.use_band_index ? 1 : 0);
  w.PutU8(spec.allow_cached ? 1 : 0);
  w.PutU8(query.render ? 1 : 0);
  w.PutF64(query.deadline_seconds);
  return w.Take();
}

Result<QueryRequest> DecodeQuery(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  QueryRequest out;
  qbism::QuerySpec& spec = out.spec;
  QBISM_ASSIGN_OR_RETURN(spec.study_id, r.GetI32());
  QBISM_ASSIGN_OR_RETURN(spec.atlas_name, r.GetString(kMaxNameBytes));
  QBISM_ASSIGN_OR_RETURN(uint8_t has_structure, r.GetU8());
  if (has_structure) {
    QBISM_ASSIGN_OR_RETURN(std::string name, r.GetString(kMaxNameBytes));
    spec.structure_name = std::move(name);
  }
  QBISM_ASSIGN_OR_RETURN(uint8_t has_box, r.GetU8());
  if (has_box) {
    geometry::Box3i box;
    QBISM_ASSIGN_OR_RETURN(box.min.x, r.GetI32());
    QBISM_ASSIGN_OR_RETURN(box.min.y, r.GetI32());
    QBISM_ASSIGN_OR_RETURN(box.min.z, r.GetI32());
    QBISM_ASSIGN_OR_RETURN(box.max.x, r.GetI32());
    QBISM_ASSIGN_OR_RETURN(box.max.y, r.GetI32());
    QBISM_ASSIGN_OR_RETURN(box.max.z, r.GetI32());
    spec.box = box;
  }
  QBISM_ASSIGN_OR_RETURN(uint8_t has_range, r.GetU8());
  if (has_range) {
    int32_t lo, hi;
    QBISM_ASSIGN_OR_RETURN(lo, r.GetI32());
    QBISM_ASSIGN_OR_RETURN(hi, r.GetI32());
    spec.intensity_range = std::make_pair(lo, hi);
  }
  QBISM_ASSIGN_OR_RETURN(uint8_t band_index, r.GetU8());
  spec.use_band_index = band_index != 0;
  QBISM_ASSIGN_OR_RETURN(uint8_t cached, r.GetU8());
  spec.allow_cached = cached != 0;
  QBISM_ASSIGN_OR_RETURN(uint8_t render, r.GetU8());
  out.render = render != 0;
  QBISM_ASSIGN_OR_RETURN(out.deadline_seconds, r.GetF64());
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after query payload");
  }
  return out;
}

std::vector<uint8_t> EncodeResultHeader(const ResultHeader& header) {
  WireWriter w;
  w.PutU64(header.result_runs);
  w.PutU64(header.result_voxels);
  w.PutU64(header.payload_bytes);
  w.PutU32(header.chunk_count);
  w.PutU32(header.chunk_bytes);
  w.PutU8(header.cache_hit ? 1 : 0);
  w.PutI32(header.worker_id);
  PutTiming(&w, header.timing);
  w.PutString(header.info_sql);
  w.PutString(header.data_sql);
  return w.Take();
}

Result<ResultHeader> DecodeResultHeader(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  ResultHeader out;
  QBISM_ASSIGN_OR_RETURN(out.result_runs, r.GetU64());
  QBISM_ASSIGN_OR_RETURN(out.result_voxels, r.GetU64());
  QBISM_ASSIGN_OR_RETURN(out.payload_bytes, r.GetU64());
  QBISM_ASSIGN_OR_RETURN(out.chunk_count, r.GetU32());
  QBISM_ASSIGN_OR_RETURN(out.chunk_bytes, r.GetU32());
  QBISM_ASSIGN_OR_RETURN(uint8_t hit, r.GetU8());
  out.cache_hit = hit != 0;
  QBISM_ASSIGN_OR_RETURN(out.worker_id, r.GetI32());
  QBISM_RETURN_NOT_OK(GetTiming(&r, &out.timing));
  QBISM_ASSIGN_OR_RETURN(out.info_sql, r.GetString(kMaxSqlBytes));
  QBISM_ASSIGN_OR_RETURN(out.data_sql, r.GetString(kMaxSqlBytes));
  return out;
}

std::vector<uint8_t> EncodeResultEnd(const ResultEnd& end) {
  WireWriter w;
  w.PutU64(end.payload_bytes);
  w.PutU32(end.chunk_count);
  w.PutU32(end.payload_crc);
  w.PutF64(end.modeled_egress_seconds);
  return w.Take();
}

Result<ResultEnd> DecodeResultEnd(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  ResultEnd out;
  QBISM_ASSIGN_OR_RETURN(out.payload_bytes, r.GetU64());
  QBISM_ASSIGN_OR_RETURN(out.chunk_count, r.GetU32());
  QBISM_ASSIGN_OR_RETURN(out.payload_crc, r.GetU32());
  QBISM_ASSIGN_OR_RETURN(out.modeled_egress_seconds, r.GetF64());
  return out;
}

std::vector<uint8_t> EncodeError(const ErrorReply& error) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(error.code));
  w.PutU16(static_cast<uint16_t>(error.reason));
  w.PutString(error.message);
  return w.Take();
}

Result<ErrorReply> DecodeError(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  ErrorReply out;
  QBISM_ASSIGN_OR_RETURN(uint32_t code, r.GetU32());
  if (code > static_cast<uint32_t>(StatusCode::kCancelled)) {
    return Status::Corruption("unknown status code " + std::to_string(code));
  }
  out.code = static_cast<StatusCode>(code);
  QBISM_ASSIGN_OR_RETURN(uint16_t reason, r.GetU16());
  if (reason > static_cast<uint16_t>(ErrorReason::kQueryFailed)) {
    return Status::Corruption("unknown error reason " +
                              std::to_string(reason));
  }
  out.reason = static_cast<ErrorReason>(reason);
  QBISM_ASSIGN_OR_RETURN(out.message, r.GetString(kMaxSqlBytes));
  return out;
}

Result<std::vector<uint8_t>> EncodeAnswerPayload(
    const volume::DataRegion& data, region::RegionEncoding encoding) {
  const region::Region& reg = data.region();
  std::vector<uint8_t> region_bytes;
  if (encoding == region::RegionEncoding::kEliasDeltas &&
      !data.encoded_region().empty()) {
    // The region already exists in elias form (an encoded-domain set-op
    // chain ended here); ship those bytes instead of re-encoding.
    region_bytes = data.encoded_region();
  } else {
    QBISM_ASSIGN_OR_RETURN(region_bytes, region::EncodeRegion(reg, encoding));
  }
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(reg.grid().dims));
  w.PutU8(static_cast<uint8_t>(reg.grid().bits));
  w.PutU8(static_cast<uint8_t>(reg.curve_kind()));
  w.PutU8(static_cast<uint8_t>(encoding));  // region encoding tag
  w.PutU32(static_cast<uint32_t>(region_bytes.size()));
  w.PutBytes(region_bytes.data(), region_bytes.size());
  w.PutU64(data.values().size());
  w.PutBytes(data.values().data(), data.values().size());
  return w.Take();
}

Result<volume::DataRegion> DecodeAnswerPayload(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  region::GridSpec grid;
  QBISM_ASSIGN_OR_RETURN(uint8_t dims, r.GetU8());
  QBISM_ASSIGN_OR_RETURN(uint8_t bits, r.GetU8());
  grid.dims = dims;
  grid.bits = bits;
  if (grid.dims < 2 || grid.dims > 3 || grid.bits < 1 || grid.bits > 20 ||
      grid.dims * grid.bits > 62) {
    return Status::Corruption("implausible answer grid spec");
  }
  QBISM_ASSIGN_OR_RETURN(uint8_t kind_raw, r.GetU8());
  if (kind_raw > static_cast<uint8_t>(curve::CurveKind::kZ)) {
    return Status::Corruption("unknown curve kind in answer");
  }
  curve::CurveKind kind = static_cast<curve::CurveKind>(kind_raw);
  QBISM_ASSIGN_OR_RETURN(uint8_t encoding_raw, r.GetU8());
  if (encoding_raw >
      static_cast<uint8_t>(region::RegionEncoding::kOblongOctants)) {
    return Status::Corruption("unknown region encoding in answer");
  }
  auto encoding = static_cast<region::RegionEncoding>(encoding_raw);
  QBISM_ASSIGN_OR_RETURN(uint32_t region_size, r.GetU32());
  if (region_size > kMaxRegionBytes || region_size > r.remaining()) {
    return Status::Corruption("answer region length exceeds payload");
  }
  QBISM_ASSIGN_OR_RETURN(std::vector<uint8_t> region_bytes,
                         r.GetRaw(region_size));
  QBISM_ASSIGN_OR_RETURN(
      region::Region reg,
      region::DecodeRegion(grid, kind, encoding, region_bytes));
  QBISM_ASSIGN_OR_RETURN(uint64_t value_count, r.GetU64());
  if (value_count != reg.VoxelCount()) {
    return Status::Corruption("answer value count does not match region");
  }
  if (value_count > r.remaining()) {
    return Status::Corruption("answer values truncated");
  }
  QBISM_ASSIGN_OR_RETURN(std::vector<uint8_t> values,
                         r.GetRaw(static_cast<size_t>(value_count)));
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after answer payload");
  }
  return volume::DataRegion(std::move(reg), std::move(values));
}

}  // namespace qbism::server
