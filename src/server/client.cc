#include "server/client.h"

#include "common/macros.h"
#include "common/timer.h"

namespace qbism::server {

Result<NetClient> NetClient::Connect(const std::string& host, uint16_t port) {
  QBISM_ASSIGN_OR_RETURN(FrameSocket socket, DialTcp(host, port));
  return NetClient(std::move(socket));
}

Result<Frame> NetClient::ReadExpected(MessageType want, uint64_t request_id) {
  QBISM_ASSIGN_OR_RETURN(Frame frame, socket_.ReadFrame());
  if (frame.header.type == MessageType::kError) {
    QBISM_ASSIGN_OR_RETURN(ErrorReply error, DecodeError(frame.payload));
    last_error_reason_ = error.reason;
    return Status(error.code, std::string(ErrorReasonName(error.reason)) +
                                  ": " + error.message);
  }
  if (frame.header.type != want) {
    return Status::Corruption(std::string("expected ") + MessageTypeName(want) +
                              ", got " + MessageTypeName(frame.header.type));
  }
  if (frame.header.request_id != request_id) {
    return Status::Corruption(
        "response for request " + std::to_string(frame.header.request_id) +
        ", expected " + std::to_string(request_id));
  }
  return frame;
}

Status NetClient::Login(const std::string& tenant, const std::string& secret) {
  if (!socket_.valid()) return Status::IOError("client is not connected");
  uint64_t id = next_request_id_++;
  HelloRequest hello;
  hello.tenant = tenant;
  hello.secret = secret;
  QBISM_RETURN_NOT_OK(socket_.SendFrame(MessageType::kHello, 0, id,
                                        EncodeHello(hello)));
  QBISM_ASSIGN_OR_RETURN(Frame frame,
                         ReadExpected(MessageType::kWelcome, id));
  QBISM_ASSIGN_OR_RETURN(WelcomeReply welcome, DecodeWelcome(frame.payload));
  session_token_ = welcome.session_token;
  session_ttl_seconds_ = welcome.session_ttl_seconds;
  server_chunk_bytes_ = welcome.chunk_bytes;
  return Status::OK();
}

Status NetClient::Ping() {
  if (!socket_.valid()) return Status::IOError("client is not connected");
  uint64_t id = next_request_id_++;
  QBISM_RETURN_NOT_OK(
      socket_.SendFrame(MessageType::kPing, session_token_, id, {}));
  return ReadExpected(MessageType::kPong, id).status();
}

Result<QueryOutcome> NetClient::RunQuery(const qbism::QuerySpec& spec,
                                         double deadline_seconds) {
  if (!socket_.valid()) return Status::IOError("client is not connected");
  uint64_t id = next_request_id_++;
  WallTimer timer;
  QueryRequest query;
  query.spec = spec;
  query.deadline_seconds = deadline_seconds;
  QBISM_RETURN_NOT_OK(socket_.SendFrame(MessageType::kQuery, session_token_,
                                        id, EncodeQuery(query)));

  QueryOutcome out;
  {
    QBISM_ASSIGN_OR_RETURN(Frame frame,
                           ReadExpected(MessageType::kResultHeader, id));
    QBISM_ASSIGN_OR_RETURN(out.header, DecodeResultHeader(frame.payload));
  }
  std::vector<uint8_t> payload;
  payload.reserve(out.header.payload_bytes);
  while (payload.size() < out.header.payload_bytes) {
    QBISM_ASSIGN_OR_RETURN(Frame chunk,
                           ReadExpected(MessageType::kResultChunk, id));
    if (payload.size() + chunk.payload.size() > out.header.payload_bytes) {
      return Status::Corruption("result chunks overrun the announced " +
                                std::to_string(out.header.payload_bytes) +
                                " payload bytes");
    }
    payload.insert(payload.end(), chunk.payload.begin(), chunk.payload.end());
    ++out.chunks;
  }
  ResultEnd end;
  {
    QBISM_ASSIGN_OR_RETURN(Frame frame,
                           ReadExpected(MessageType::kResultEnd, id));
    QBISM_ASSIGN_OR_RETURN(end, DecodeResultEnd(frame.payload));
  }
  out.wire_seconds = timer.Seconds();
  out.shipped_bytes = payload.size();
  out.modeled_egress_seconds = end.modeled_egress_seconds;
  if (end.payload_bytes != payload.size() || end.chunk_count != out.chunks) {
    return Status::Corruption(
        "result trailer accounting mismatch: trailer says " +
        std::to_string(end.payload_bytes) + " bytes / " +
        std::to_string(end.chunk_count) + " chunks, received " +
        std::to_string(payload.size()) + " / " + std::to_string(out.chunks));
  }
  if (end.payload_crc != Crc32(payload)) {
    return Status::Corruption("reassembled answer payload fails its CRC");
  }
  QBISM_ASSIGN_OR_RETURN(out.data, DecodeAnswerPayload(payload));
  return out;
}

void NetClient::Bye() {
  if (socket_.valid()) {
    (void)socket_.SendFrame(MessageType::kBye, session_token_,
                            next_request_id_++, {});
  }
  socket_.Close();
}

}  // namespace qbism::server
