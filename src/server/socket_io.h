#ifndef QBISM_SERVER_SOCKET_IO_H_
#define QBISM_SERVER_SOCKET_IO_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "server/protocol.h"

namespace qbism::server {

/// Blocking, whole-frame I/O over a connected TCP socket. Handles
/// partial reads/writes and EINTR; never raises SIGPIPE. A FrameSocket
/// owns its fd and closes it on destruction.
///
/// Read-side status contract (what connection loops dispatch on):
///   Cancelled    orderly EOF at a frame boundary (peer closed cleanly)
///   Corruption   bad magic/version/length/CRC, or EOF mid-frame
///   IOError      errno-level socket failure
class FrameSocket {
 public:
  FrameSocket() = default;
  explicit FrameSocket(int fd) : fd_(fd) {}
  ~FrameSocket() { Close(); }

  FrameSocket(FrameSocket&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  FrameSocket& operator=(FrameSocket&& other) noexcept;
  FrameSocket(const FrameSocket&) = delete;
  FrameSocket& operator=(const FrameSocket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Encodes and sends one whole frame.
  Status SendFrame(MessageType type, uint64_t session, uint64_t request_id,
                   const std::vector<uint8_t>& payload);

  /// Reads one whole frame: header, validation, payload, CRC check.
  Result<Frame> ReadFrame(uint32_t max_payload = kMaxFramePayload);

  /// Half-closes both directions (wakes a peer blocked in recv) without
  /// releasing the fd; Close() still must run.
  void ShutdownBoth();
  void Close();

 private:
  Status WriteAll(const uint8_t* data, size_t size);
  /// Reads exactly `size` bytes. `eof_ok` permits a clean EOF before
  /// the first byte (mapped to Cancelled); EOF after it is Corruption.
  Status ReadAll(uint8_t* data, size_t size, bool eof_ok);

  int fd_ = -1;
};

/// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1").
Result<FrameSocket> DialTcp(const std::string& host, uint16_t port);

}  // namespace qbism::server

#endif  // QBISM_SERVER_SOCKET_IO_H_
