#include "server/auth.h"

#include <chrono>
#include <utility>

namespace qbism::server {

namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

AuthManager::AuthManager(std::vector<TenantConfig> tenants,
                         double session_ttl_seconds, uint64_t seed,
                         std::function<double()> clock)
    : tenants_(std::move(tenants)),
      ttl_(session_ttl_seconds),
      clock_(clock ? std::move(clock) : SteadySeconds),
      sessions_per_tenant_(tenants_.size(), 0),
      // Tokens must be unpredictable enough that one tenant cannot
      // guess another's live session; fold wall-entropy into the seed.
      rng_(seed ^ static_cast<uint64_t>(
                      std::chrono::steady_clock::now().time_since_epoch()
                          .count())) {}

int AuthManager::FindTenant(const std::string& name) const {
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<SessionInfo> AuthManager::Login(const std::string& tenant,
                                       const std::string& secret) {
  int index = FindTenant(tenant);
  // One rejection path for "no such tenant" and "wrong secret": the
  // error must not reveal which half was wrong.
  if (index < 0 || tenants_[static_cast<size_t>(index)].secret != secret) {
    return Status::InvalidArgument("unknown tenant or bad secret");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const TenantConfig& config = tenants_[static_cast<size_t>(index)];
  if (sessions_per_tenant_[static_cast<size_t>(index)] >=
      config.max_sessions) {
    return Status::ResourceExhausted("tenant '" + tenant +
                                     "' is at its session quota");
  }
  SessionInfo info;
  info.tenant = index;
  info.expires_at = Now() + ttl_;
  do {
    info.token = rng_.Next();
  } while (info.token == 0 || sessions_.count(info.token) != 0);
  sessions_[info.token] = Session{index, info.expires_at};
  ++sessions_per_tenant_[static_cast<size_t>(index)];
  return info;
}

Result<int> AuthManager::Validate(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(token);
  if (it == sessions_.end()) {
    return Status::InvalidArgument("unknown session token");
  }
  double now = Now();
  // A session expires strictly *after* expires_at: a request landing at
  // exactly login + ttl is still in its idle window. The >= form made
  // ttl behave as ttl-epsilon and bounced clients whose keepalive
  // period equaled the configured TTL.
  if (now > it->second.expires_at) {
    --sessions_per_tenant_[static_cast<size_t>(it->second.tenant)];
    sessions_.erase(it);
    return Status::DeadlineExceeded("session expired; re-authenticate");
  }
  it->second.expires_at = now + ttl_;  // idle TTL refresh
  return it->second.tenant;
}

void AuthManager::Logout(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(token);
  if (it == sessions_.end()) return;
  --sessions_per_tenant_[static_cast<size_t>(it->second.tenant)];
  sessions_.erase(it);
}

size_t AuthManager::SweepExpired() {
  std::lock_guard<std::mutex> lock(mu_);
  double now = Now();
  size_t swept = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    // Same boundary as Validate: strictly past expires_at only, so the
    // sweeper can never reap a session Validate would still accept.
    if (now > it->second.expires_at) {
      --sessions_per_tenant_[static_cast<size_t>(it->second.tenant)];
      it = sessions_.erase(it);
      ++swept;
    } else {
      ++it;
    }
  }
  return swept;
}

size_t AuthManager::ActiveSessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace qbism::server
