#include "server/protocol.h"

#include <array>
#include <cstring>

#include "common/macros.h"

namespace qbism::server {

namespace {

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | p[1] << 8);
}

uint64_t LoadU64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         static_cast<uint64_t>(LoadU32(p + 4)) << 32;
}

void StoreU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void StoreU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void StoreU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kHello: return "hello";
    case MessageType::kWelcome: return "welcome";
    case MessageType::kQuery: return "query";
    case MessageType::kResultHeader: return "result_header";
    case MessageType::kResultChunk: return "result_chunk";
    case MessageType::kResultEnd: return "result_end";
    case MessageType::kError: return "error";
    case MessageType::kPing: return "ping";
    case MessageType::kPong: return "pong";
    case MessageType::kBye: return "bye";
  }
  return "unknown";
}

const char* ErrorReasonName(ErrorReason reason) {
  switch (reason) {
    case ErrorReason::kNone: return "none";
    case ErrorReason::kUnauthorized: return "unauthorized";
    case ErrorReason::kSessionExpired: return "session_expired";
    case ErrorReason::kQuotaRejected: return "quota_rejected";
    case ErrorReason::kProtocol: return "protocol";
    case ErrorReason::kServerBusy: return "server_busy";
    case ErrorReason::kShutdown: return "shutdown";
    case ErrorReason::kQueryFailed: return "query_failed";
  }
  return "unknown";
}

std::vector<uint8_t> EncodeFrame(MessageType type, uint64_t session,
                                 uint64_t request_id,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kHeaderBytes + payload.size());
  StoreU32(&out, kMagic);
  StoreU16(&out, kProtocolVersion);
  StoreU16(&out, static_cast<uint16_t>(type));
  StoreU32(&out, 0);  // flags (reserved)
  StoreU64(&out, session);
  StoreU64(&out, request_id);
  StoreU32(&out, static_cast<uint32_t>(payload.size()));
  StoreU32(&out, Crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<FrameHeader> DecodeFrameHeader(const uint8_t* bytes, size_t size,
                                      uint32_t max_payload) {
  if (size < kHeaderBytes) {
    return Status::Corruption("frame header truncated: " +
                              std::to_string(size) + " of " +
                              std::to_string(kHeaderBytes) + " bytes");
  }
  if (LoadU32(bytes) != kMagic) {
    return Status::Corruption("bad frame magic");
  }
  FrameHeader header;
  header.version = LoadU16(bytes + 4);
  if (header.version != kProtocolVersion) {
    return Status::Corruption("unsupported protocol version " +
                              std::to_string(header.version));
  }
  uint16_t raw_type = LoadU16(bytes + 6);
  if (raw_type < static_cast<uint16_t>(MessageType::kHello) ||
      raw_type > static_cast<uint16_t>(MessageType::kBye)) {
    return Status::Corruption("unknown message type " +
                              std::to_string(raw_type));
  }
  header.type = static_cast<MessageType>(raw_type);
  header.flags = LoadU32(bytes + 8);
  if (header.flags != 0) {
    return Status::Corruption("reserved frame flags set");
  }
  header.session = LoadU64(bytes + 12);
  header.request_id = LoadU64(bytes + 20);
  header.payload_bytes = LoadU32(bytes + 28);
  header.payload_crc = LoadU32(bytes + 32);
  if (header.payload_bytes > max_payload) {
    return Status::Corruption(
        "frame payload length " + std::to_string(header.payload_bytes) +
        " exceeds limit " + std::to_string(max_payload));
  }
  return header;
}

Status VerifyPayload(const FrameHeader& header,
                     const std::vector<uint8_t>& payload) {
  if (payload.size() != header.payload_bytes) {
    return Status::Corruption("payload truncated: " +
                              std::to_string(payload.size()) + " of " +
                              std::to_string(header.payload_bytes) + " bytes");
  }
  uint32_t crc = Crc32(payload);
  if (crc != header.payload_crc) {
    return Status::Corruption("payload CRC mismatch");
  }
  return Status::OK();
}

void WireWriter::PutU16(uint16_t v) { StoreU16(&buf_, v); }
void WireWriter::PutU32(uint32_t v) { StoreU32(&buf_, v); }
void WireWriter::PutU64(uint64_t v) { StoreU64(&buf_, v); }

void WireWriter::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireWriter::PutBytes(const uint8_t* data, size_t size) {
  buf_.insert(buf_.end(), data, data + size);
}

Status WireReader::Need(size_t n) {
  if (size_ - pos_ < n) {
    return Status::Corruption("payload underrun: need " + std::to_string(n) +
                              " bytes, " + std::to_string(size_ - pos_) +
                              " left");
  }
  return Status::OK();
}

Result<uint8_t> WireReader::GetU8() {
  QBISM_RETURN_NOT_OK(Need(1));
  return data_[pos_++];
}

Result<uint16_t> WireReader::GetU16() {
  QBISM_RETURN_NOT_OK(Need(2));
  uint16_t v = LoadU16(data_ + pos_);
  pos_ += 2;
  return v;
}

Result<uint32_t> WireReader::GetU32() {
  QBISM_RETURN_NOT_OK(Need(4));
  uint32_t v = LoadU32(data_ + pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> WireReader::GetU64() {
  QBISM_RETURN_NOT_OK(Need(8));
  uint64_t v = LoadU64(data_ + pos_);
  pos_ += 8;
  return v;
}

Result<int32_t> WireReader::GetI32() {
  QBISM_ASSIGN_OR_RETURN(uint32_t v, GetU32());
  return static_cast<int32_t>(v);
}

Result<double> WireReader::GetF64() {
  QBISM_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> WireReader::GetString(uint32_t max_bytes) {
  QBISM_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  if (n > max_bytes) {
    return Status::Corruption("string length " + std::to_string(n) +
                              " exceeds limit " + std::to_string(max_bytes));
  }
  QBISM_RETURN_NOT_OK(Need(n));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Result<std::vector<uint8_t>> WireReader::GetRaw(size_t n) {
  QBISM_RETURN_NOT_OK(Need(n));
  std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

Result<std::vector<uint8_t>> WireReader::GetBytes(uint32_t max_bytes) {
  QBISM_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  if (n > max_bytes) {
    return Status::Corruption("byte-array length " + std::to_string(n) +
                              " exceeds limit " + std::to_string(max_bytes));
  }
  QBISM_RETURN_NOT_OK(Need(n));
  std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

}  // namespace qbism::server
