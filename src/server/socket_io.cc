#include "server/socket_io.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/macros.h"

namespace qbism::server {

FrameSocket& FrameSocket::operator=(FrameSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status FrameSocket::WriteAll(const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FrameSocket::ReadAll(uint8_t* data, size_t size, bool eof_ok) {
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd_, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && eof_ok) {
        return Status::Cancelled("connection closed by peer");
      }
      return Status::Corruption("connection closed mid-frame (" +
                                std::to_string(got) + " of " +
                                std::to_string(size) + " bytes)");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FrameSocket::SendFrame(MessageType type, uint64_t session,
                              uint64_t request_id,
                              const std::vector<uint8_t>& payload) {
  if (!valid()) return Status::IOError("socket is closed");
  std::vector<uint8_t> wire = EncodeFrame(type, session, request_id, payload);
  return WriteAll(wire.data(), wire.size());
}

Result<Frame> FrameSocket::ReadFrame(uint32_t max_payload) {
  if (!valid()) return Status::IOError("socket is closed");
  uint8_t header_bytes[kHeaderBytes];
  QBISM_RETURN_NOT_OK(ReadAll(header_bytes, kHeaderBytes, /*eof_ok=*/true));
  QBISM_ASSIGN_OR_RETURN(
      FrameHeader header,
      DecodeFrameHeader(header_bytes, kHeaderBytes, max_payload));
  Frame frame;
  frame.header = header;
  frame.payload.resize(header.payload_bytes);
  if (header.payload_bytes > 0) {
    QBISM_RETURN_NOT_OK(
        ReadAll(frame.payload.data(), frame.payload.size(), /*eof_ok=*/false));
  }
  QBISM_RETURN_NOT_OK(VerifyPayload(frame.header, frame.payload));
  return frame;
}

void FrameSocket::ShutdownBoth() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void FrameSocket::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<FrameSocket> DialTcp(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status status(StatusCode::kIOError,
                  std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  // Query frames are small and latency matters; answers are streamed in
  // large chunks where Nagle costs nothing either way.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return FrameSocket(fd);
}

}  // namespace qbism::server
