#ifndef QBISM_SERVER_AUTH_H_
#define QBISM_SERVER_AUTH_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace qbism::server {

/// One tenant the server will serve: credentials plus the quota and
/// fair-share knobs the admission layer enforces. docs/NETWORK.md
/// documents the semantics.
struct TenantConfig {
  std::string name;
  std::string secret;
  /// Fair-share weight: tenant t may hold up to
  /// max(1, floor(total_slots * weight_t / sum(weights))) execution
  /// slots at once (unless max_inflight overrides it).
  double weight = 1.0;
  /// Explicit in-flight cap; 0 derives it from the weight.
  int max_inflight = 0;
  /// Requests allowed to *wait* for this tenant's slots at once;
  /// arrivals beyond this are rejected immediately (quota_rejected).
  int max_waiting = 64;
  /// Concurrent sessions the tenant may hold; further HELLOs are
  /// rejected as quota_rejected until sessions expire or log out.
  int max_sessions = 1 << 16;
};

/// An authenticated session.
struct SessionInfo {
  uint64_t token = 0;
  int tenant = -1;           // index into the tenant table
  double expires_at = 0.0;   // on the manager's clock
};

/// Token-based authentication and session bookkeeping. Login validates
/// a tenant's shared secret and issues an opaque 64-bit token; every
/// subsequent request presents the token, which refreshes the session's
/// idle TTL. Expired sessions are distinguished from unknown tokens so
/// the metrics layer can count session_expired separately from
/// unauthorized. Thread-safe; the clock is injectable for expiry tests.
class AuthManager {
 public:
  /// `clock` returns seconds on a monotonic scale; the default is the
  /// process steady clock. `seed` perturbs token generation.
  AuthManager(std::vector<TenantConfig> tenants, double session_ttl_seconds,
              uint64_t seed = 0, std::function<double()> clock = {});

  /// Validates credentials and opens a session.
  ///   InvalidArgument  unknown tenant or wrong secret (unauthorized)
  ///   ResourceExhausted tenant at its max_sessions quota
  Result<SessionInfo> Login(const std::string& tenant,
                            const std::string& secret);

  /// Resolves a token to its tenant index and refreshes the TTL.
  ///   InvalidArgument   unknown token (unauthorized)
  ///   DeadlineExceeded  session past its idle TTL (session_expired)
  Result<int> Validate(uint64_t token);

  /// Drops a session; unknown tokens are ignored.
  void Logout(uint64_t token);

  /// Removes every expired session (Validate also removes the one it
  /// touches); returns how many were swept.
  size_t SweepExpired();

  size_t ActiveSessions() const;
  int num_tenants() const { return static_cast<int>(tenants_.size()); }
  const TenantConfig& tenant(int index) const {
    return tenants_[static_cast<size_t>(index)];
  }
  /// Index for a tenant name, or -1.
  int FindTenant(const std::string& name) const;
  double session_ttl_seconds() const { return ttl_; }

 private:
  struct Session {
    int tenant = -1;
    double expires_at = 0.0;
  };

  double Now() const { return clock_(); }

  const std::vector<TenantConfig> tenants_;
  const double ttl_;
  std::function<double()> clock_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Session> sessions_;   // guarded by mu_
  std::vector<int> sessions_per_tenant_;             // guarded by mu_
  Rng rng_;                                          // guarded by mu_
};

}  // namespace qbism::server

#endif  // QBISM_SERVER_AUTH_H_
