#include "server/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/macros.h"
#include "common/timer.h"

namespace qbism::server {

QbismServer::QbismServer(qbism::SpatialExtension* ext, ServerOptions options)
    : ext_(ext), options_(std::move(options)) {}

QbismServer::~QbismServer() { Shutdown(); }

Status QbismServer::Start() {
  if (running_.load()) return Status::AlreadyExists("server already started");
  if (options_.tenants.empty()) {
    return Status::InvalidArgument("server needs at least one tenant");
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status(StatusCode::kIOError,
                  std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, options_.listen_backlog) < 0) {
    Status status(StatusCode::kIOError,
                  std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status status(StatusCode::kIOError,
                  std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  port_ = ntohs(addr.sin_port);
  listener_ = FrameSocket(fd);

  auth_ = std::make_unique<AuthManager>(
      options_.tenants, options_.session_ttl_seconds, options_.auth_seed);
  service_ =
      std::make_unique<service::QueryService>(ext_, options_.service);
  governor_ = std::make_unique<TenantGovernor>(options_.tenants,
                                               service_->num_workers());
  per_tenant_.clear();
  for (size_t i = 0; i < options_.tenants.size(); ++i) {
    per_tenant_.push_back(std::make_unique<PerTenant>());
  }

  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QbismServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // The listener was closed (shutdown) or broke; either way, stop.
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    uint64_t open = connections_open_.load(std::memory_order_relaxed);
    if (open >= static_cast<uint64_t>(options_.max_connections)) {
      // Over the cap: one busy frame, then an immediate close, so the
      // client backs off instead of hanging in recv.
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      FrameSocket reject(fd);
      ErrorReply busy;
      busy.code = StatusCode::kResourceExhausted;
      busy.reason = ErrorReason::kServerBusy;
      busy.message = "connection cap reached";
      (void)reject.SendFrame(MessageType::kError, 0, 0, EncodeError(busy));
      continue;  // reject's destructor closes the fd
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    uint64_t now_open =
        connections_open_.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t peak = peak_connections_.load(std::memory_order_relaxed);
    while (now_open > peak && !peak_connections_.compare_exchange_weak(
                                  peak, now_open, std::memory_order_relaxed)) {
    }
    auto conn = std::make_unique<Connection>();
    conn->socket = FrameSocket(fd);
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { HandleConnection(raw); });
    ReapFinished();
  }
}

void QbismServer::ReapFinished() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

Status QbismServer::SendCounted(Connection* conn, MessageType type,
                                uint64_t session, uint64_t request_id,
                                const std::vector<uint8_t>& payload) {
  Status status = conn->socket.SendFrame(type, session, request_id, payload);
  if (status.ok()) {
    frames_written_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(kHeaderBytes + payload.size(),
                             std::memory_order_relaxed);
  }
  return status;
}

void QbismServer::PenalizeQuota() {
  const double penalty = options_.quota_penalty_seconds;
  if (penalty <= 0.0 || stopping_.load(std::memory_order_relaxed)) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(penalty));
  quota_penalties_.fetch_add(1, std::memory_order_relaxed);
  double cur = quota_penalty_seconds_.load(std::memory_order_relaxed);
  while (!quota_penalty_seconds_.compare_exchange_weak(
      cur, cur + penalty, std::memory_order_relaxed)) {
  }
}

bool QbismServer::SendError(Connection* conn, uint64_t request_id,
                            ErrorReason reason, const Status& status) {
  ErrorReply error;
  error.code = status.code();
  error.reason = reason;
  error.message = status.message();
  return SendCounted(conn, MessageType::kError, 0, request_id,
                     EncodeError(error))
      .ok();
}

void QbismServer::HandleConnection(Connection* conn) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    WallTimer read_timer;
    Result<Frame> frame = conn->socket.ReadFrame(options_.max_frame_payload);
    double read_seconds = read_timer.Seconds();
    if (!frame.ok()) {
      if (frame.status().IsCorruption()) {
        // A corrupt length-prefixed stream cannot be re-synchronized;
        // report and drop the connection.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        (void)SendError(conn, 0, ErrorReason::kProtocol, frame.status());
      }
      break;  // clean EOF, socket error, or corruption: close
    }
    frames_read_.fetch_add(1, std::memory_order_relaxed);
    bytes_read_.fetch_add(kHeaderBytes + frame->payload.size(),
                          std::memory_order_relaxed);

    const FrameHeader& header = frame->header;
    bool keep = true;
    switch (header.type) {
      case MessageType::kHello: {
        Result<HelloRequest> hello = DecodeHello(frame->payload);
        if (!hello.ok()) {
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          keep = SendError(conn, header.request_id, ErrorReason::kProtocol,
                           hello.status());
          break;
        }
        Result<SessionInfo> session =
            auth_->Login(hello->tenant, hello->secret);
        if (!session.ok()) {
          ErrorReason reason = session.status().IsResourceExhausted()
                                   ? ErrorReason::kQuotaRejected
                                   : ErrorReason::kUnauthorized;
          if (reason == ErrorReason::kUnauthorized) {
            service_->NoteUnauthorized();
          } else {
            service_->NoteQuotaRejected();
            PenalizeQuota();
          }
          keep = SendError(conn, header.request_id, reason, session.status());
          break;
        }
        WelcomeReply welcome;
        welcome.session_token = session->token;
        welcome.session_ttl_seconds = auth_->session_ttl_seconds();
        welcome.chunk_bytes = options_.chunk_bytes;
        keep = SendCounted(conn, MessageType::kWelcome, session->token,
                           header.request_id, EncodeWelcome(welcome))
                   .ok();
        break;
      }
      case MessageType::kPing: {
        Result<int> tenant = auth_->Validate(header.session);
        if (!tenant.ok()) {
          bool expired = tenant.status().IsDeadlineExceeded();
          if (expired) {
            service_->NoteSessionExpired();
          } else {
            service_->NoteUnauthorized();
          }
          keep = SendError(conn, header.request_id,
                           expired ? ErrorReason::kSessionExpired
                                   : ErrorReason::kUnauthorized,
                           tenant.status());
          break;
        }
        keep = SendCounted(conn, MessageType::kPong, header.session,
                           header.request_id, {})
                   .ok();
        break;
      }
      case MessageType::kQuery:
        keep = HandleQuery(conn, *frame, read_seconds);
        break;
      case MessageType::kBye:
        keep = false;
        break;
      default:
        // Server-to-client frame types arriving at the server are a
        // protocol violation.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        keep = SendError(
            conn, header.request_id, ErrorReason::kProtocol,
            Status::InvalidArgument(std::string("unexpected frame type ") +
                                    MessageTypeName(header.type)));
        keep = false;
        break;
    }
    if (!keep) break;
  }
  conn->socket.Close();
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
  conn->done.store(true, std::memory_order_release);
}

bool QbismServer::HandleQuery(Connection* conn, const Frame& frame,
                              double read_seconds) {
  const FrameHeader& header = frame.header;
  WallTimer request_timer;

  // Session first: an unauthenticated peer gets no work done for it.
  Result<int> tenant_result = auth_->Validate(header.session);
  if (!tenant_result.ok()) {
    bool expired = tenant_result.status().IsDeadlineExceeded();
    if (expired) {
      service_->NoteSessionExpired();
    } else {
      service_->NoteUnauthorized();
    }
    return SendError(conn, header.request_id,
                     expired ? ErrorReason::kSessionExpired
                             : ErrorReason::kUnauthorized,
                     tenant_result.status());
  }
  int tenant = *tenant_result;
  PerTenant* tstats = per_tenant_[static_cast<size_t>(tenant)].get();

  // One trace per wire request: kRequest root, tenant-labeled, with the
  // frame receive recorded retroactively as its kAccept child.
  obs::Tracer* tracer = options_.service.tracer;
  obs::TraceContext root_parent{};
  if (tracer != nullptr && tracer->enabled()) {
    root_parent = tracer->StartTrace();
  }
  obs::Span request_span(root_parent, obs::Stage::kRequest);
  request_span.SetLabel(options_.tenants[static_cast<size_t>(tenant)]
                            .name.c_str());
  if (request_span.active()) {
    obs::SpanRecord accept;
    accept.trace_id = root_parent.trace_id;
    accept.span_id = tracer->NextSpanId();
    accept.parent_id = request_span.context().span_id;
    accept.stage = obs::Stage::kAccept;
    accept.start_seconds = tracer->NowSeconds() - read_seconds;
    accept.duration_seconds = read_seconds;
    accept.bytes = kHeaderBytes + frame.payload.size();
    tracer->Record(accept);
  }

  obs::Span decode(request_span.context(), obs::Stage::kDecode);
  decode.SetLabel("frame");
  Result<QueryRequest> query = DecodeQuery(frame.payload);
  decode.End();
  if (!query.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    request_span.SetFailed();
    return SendError(conn, header.request_id, ErrorReason::kProtocol,
                     query.status());
  }

  // Fair-share admission: this is where a greedy tenant's surplus waits
  // (or bounces) while other tenants' reserved slots stay reachable.
  obs::Span admit(request_span.context(), obs::Stage::kAdmit);
  Result<AdmissionSlot> slot = governor_->Admit(tenant);
  admit.End();
  if (!slot.ok()) {
    request_span.SetFailed();
    if (slot.status().IsResourceExhausted()) {
      service_->NoteQuotaRejected();
      tstats->queries_failed.fetch_add(1, std::memory_order_relaxed);
      PenalizeQuota();
      return SendError(conn, header.request_id, ErrorReason::kQuotaRejected,
                       slot.status());
    }
    return SendError(conn, header.request_id, ErrorReason::kShutdown,
                     slot.status());
  }

  service::ServiceRequest request;
  request.spec = query->spec;
  request.render = query->render;
  request.deadline_seconds = query->deadline_seconds;
  request.trace_parent = request_span.context();
  Result<service::ServiceReply> reply = service_->Execute(request);
  slot->Release();
  if (!reply.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    tstats->queries_failed.fetch_add(1, std::memory_order_relaxed);
    request_span.SetFailed();
    ErrorReason reason = reply.status().IsResourceExhausted()
                             ? ErrorReason::kServerBusy
                             : ErrorReason::kQueryFailed;
    return SendError(conn, header.request_id, reason, reply.status());
  }

  // Ship the region in the extension's configured encoding (the codec
  // tags the payload so the client decodes whatever was configured).
  Result<std::vector<uint8_t>> payload =
      EncodeAnswerPayload(reply->result.data, ext_->config().region_encoding);
  if (!payload.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    tstats->queries_failed.fetch_add(1, std::memory_order_relaxed);
    request_span.SetFailed();
    return SendError(conn, header.request_id, ErrorReason::kQueryFailed,
                     payload.status());
  }

  const uint32_t chunk_bytes =
      options_.chunk_bytes > 0 ? options_.chunk_bytes : 1;
  const uint64_t total = payload->size();
  const uint32_t chunks = static_cast<uint32_t>(
      (total + chunk_bytes - 1) / chunk_bytes);

  ResultHeader rh;
  rh.result_runs = reply->result.result_runs;
  rh.result_voxels = reply->result.result_voxels;
  rh.payload_bytes = total;
  rh.chunk_count = chunks;
  rh.chunk_bytes = chunk_bytes;
  rh.cache_hit = reply->cache_hit;
  rh.worker_id = reply->worker_id;
  rh.timing = reply->result.timing;
  rh.info_sql = reply->result.info_sql;
  rh.data_sql = reply->result.data_sql;

  obs::Span ship(request_span.context(), obs::Stage::kShip);
  ship.SetLabel("socket");
  bool sent = SendCounted(conn, MessageType::kResultHeader, header.session,
                          header.request_id, EncodeResultHeader(rh))
                  .ok();
  for (uint64_t off = 0; sent && off < total; off += chunk_bytes) {
    uint64_t n = std::min<uint64_t>(chunk_bytes, total - off);
    std::vector<uint8_t> chunk(payload->begin() + static_cast<ptrdiff_t>(off),
                               payload->begin() +
                                   static_cast<ptrdiff_t>(off + n));
    sent = SendCounted(conn, MessageType::kResultChunk, header.session,
                       header.request_id, chunk)
               .ok();
  }
  double modeled = 0.0;
  if (options_.shape_egress) {
    // The paper's §6.1 accounting over the real socket: each chunk is a
    // data message; one round trip covers request/first-response.
    const net::NetworkCostModel& m = options_.egress_model;
    modeled = static_cast<double>(chunks) * m.per_message_seconds +
              static_cast<double>(total) / m.bandwidth_bytes_per_second +
              m.rtt_seconds;
    double cur = modeled_egress_seconds_.load(std::memory_order_relaxed);
    while (!modeled_egress_seconds_.compare_exchange_weak(
        cur, cur + modeled, std::memory_order_relaxed)) {
    }
    if (options_.egress_wait_scale > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          options_.egress_wait_scale * modeled));
    }
  }
  ship.AddBytes(total);
  if (!sent) {
    ship.SetFailed();
    request_span.SetFailed();
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    tstats->queries_failed.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // Every chunk is on the wire: record the success before the trailer
  // goes out, so any observer the client wakes after seeing result_end
  // is guaranteed to see these counters too. A trailer-only send
  // failure below still severs the connection, but the answer was
  // fully shipped — it is not a query failure.
  ship_bytes_.fetch_add(total, std::memory_order_relaxed);
  tstats->ship_bytes.fetch_add(total, std::memory_order_relaxed);
  queries_ok_.fetch_add(1, std::memory_order_relaxed);
  tstats->queries_ok.fetch_add(1, std::memory_order_relaxed);
  tstats->latency.Record(read_seconds + request_timer.Seconds());

  ResultEnd re;
  re.payload_bytes = total;
  re.chunk_count = chunks;
  re.payload_crc = Crc32(*payload);
  re.modeled_egress_seconds = modeled;
  sent = SendCounted(conn, MessageType::kResultEnd, header.session,
                     header.request_id, EncodeResultEnd(re))
             .ok();
  if (!sent) {
    ship.SetFailed();
    request_span.SetFailed();
    return false;
  }
  ship.End();
  return true;
}

void QbismServer::Shutdown() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Wake admission waiters first so no connection thread is parked in
  // the governor when we sever its socket.
  if (governor_ != nullptr) governor_->Close();
  listener_.ShutdownBoth();
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->socket.ShutdownBoth();
  }
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) break;
      conn = std::move(conns_.front());
      conns_.pop_front();
    }
    if (conn->thread.joinable()) conn->thread.join();
  }
  if (service_ != nullptr) service_->Shutdown();
}

ServerStats QbismServer::stats() const {
  ServerStats out;
  out.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  out.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  out.connections_open = connections_open_.load(std::memory_order_relaxed);
  out.peak_connections = peak_connections_.load(std::memory_order_relaxed);
  out.frames_read = frames_read_.load(std::memory_order_relaxed);
  out.frames_written = frames_written_.load(std::memory_order_relaxed);
  out.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  out.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  out.ship_bytes = ship_bytes_.load(std::memory_order_relaxed);
  out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  out.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  out.queries_failed = queries_failed_.load(std::memory_order_relaxed);
  out.quota_penalties = quota_penalties_.load(std::memory_order_relaxed);
  out.quota_penalty_seconds =
      quota_penalty_seconds_.load(std::memory_order_relaxed);
  out.modeled_egress_seconds =
      modeled_egress_seconds_.load(std::memory_order_relaxed);
  return out;
}

TenantWireStats QbismServer::tenant_stats(int tenant) const {
  TenantWireStats out;
  out.name = options_.tenants[static_cast<size_t>(tenant)].name;
  const PerTenant& t = *per_tenant_[static_cast<size_t>(tenant)];
  out.queries_ok = t.queries_ok.load(std::memory_order_relaxed);
  out.queries_failed = t.queries_failed.load(std::memory_order_relaxed);
  out.ship_bytes = t.ship_bytes.load(std::memory_order_relaxed);
  out.latency = t.latency.Summarize();
  if (governor_ != nullptr) out.admission = governor_->tenant_stats(tenant);
  return out;
}

service::MetricsSnapshot QbismServer::metrics() const {
  return service_->metrics();
}

}  // namespace qbism::server
