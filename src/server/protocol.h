#ifndef QBISM_SERVER_PROTOCOL_H_
#define QBISM_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/result.h"

namespace qbism::server {

/// The QBISM wire protocol: length-prefixed binary frames over TCP.
/// Every frame is a fixed 36-byte header followed by `payload_bytes` of
/// payload, all little-endian:
///
///   offset size field
///   0      4    magic 0x4D534251 ("QBSM")
///   4      2    protocol version (kProtocolVersion)
///   6      2    message type (MessageType)
///   8      4    flags (reserved, must be 0)
///   12     8    session token (0 before HELLO/WELCOME)
///   20     8    request id (client-chosen, echoed on every reply frame)
///   28     4    payload length in bytes
///   32     4    CRC-32 (IEEE 802.3) of the payload bytes
///   36     ..   payload
///
/// The header is self-delimiting, so a reader can frame the stream
/// without knowing any message type, and a corrupt length or checksum
/// is detected before the payload is interpreted. docs/NETWORK.md is
/// the protocol reference.
inline constexpr uint32_t kMagic = 0x4D534251u;  // "QBSM"
inline constexpr uint16_t kProtocolVersion = 1;
inline constexpr size_t kHeaderBytes = 36;

/// Hard ceiling a reader enforces on `payload_bytes` before allocating
/// anything: an adversarial length prefix cannot make the peer reserve
/// gigabytes. Servers and clients may configure a lower limit.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

enum class MessageType : uint16_t {
  kHello = 1,         // client -> server: tenant credentials
  kWelcome = 2,       // server -> client: session token + transfer params
  kQuery = 3,         // client -> server: one QuerySpec request
  kResultHeader = 4,  // server -> client: answer summary + payload size
  kResultChunk = 5,   // server -> client: one slice of the answer payload
  kResultEnd = 6,     // server -> client: totals + whole-payload CRC
  kError = 7,         // server -> client: status code + reason + message
  kPing = 8,          // client -> server: keepalive / session refresh
  kPong = 9,          // server -> client: keepalive ack
  kBye = 10,          // client -> server: orderly close
};

/// Stable name for logs and tests ("hello", "query", ...).
const char* MessageTypeName(MessageType type);

/// Machine-readable reason carried by a kError frame, so clients (and
/// the metrics layer) can distinguish the rejection classes without
/// parsing the message text.
enum class ErrorReason : uint16_t {
  kNone = 0,
  kUnauthorized = 1,    // bad credentials or unknown session token
  kSessionExpired = 2,  // session past its idle TTL; re-HELLO
  kQuotaRejected = 3,   // per-tenant quota / fair-share bound hit
  kProtocol = 4,        // malformed frame or payload
  kServerBusy = 5,      // connection cap or admission queue full
  kShutdown = 6,        // server is stopping
  kQueryFailed = 7,     // the query itself failed (status code says why)
};

const char* ErrorReasonName(ErrorReason reason);

/// Decoded frame header (magic validated and dropped).
struct FrameHeader {
  uint16_t version = kProtocolVersion;
  MessageType type = MessageType::kError;
  uint32_t flags = 0;
  uint64_t session = 0;
  uint64_t request_id = 0;
  uint32_t payload_bytes = 0;
  uint32_t payload_crc = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<uint8_t> payload;
};

/// CRC-32 (IEEE reflected polynomial 0xEDB88320); shared with the
/// write-ahead log's record framing (common/crc32.h).
using qbism::Crc32;

/// Serializes header + payload into one contiguous buffer ready for
/// send(); fills in magic, payload length, and CRC.
std::vector<uint8_t> EncodeFrame(MessageType type, uint64_t session,
                                 uint64_t request_id,
                                 const std::vector<uint8_t>& payload);

/// Parses and validates a 36-byte header. Rejects short buffers, bad
/// magic, unsupported versions, non-zero reserved flags, and payload
/// lengths over `max_payload`. Does NOT check the payload CRC (the
/// payload has not been read yet) — use VerifyPayload once it has.
Result<FrameHeader> DecodeFrameHeader(const uint8_t* bytes, size_t size,
                                      uint32_t max_payload = kMaxFramePayload);

/// CRC check of a fully-read payload against its header.
Status VerifyPayload(const FrameHeader& header,
                     const std::vector<uint8_t>& payload);

/// --- Wire primitives --------------------------------------------------

/// Append-only little-endian writer used by the message codec.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutF64(double v);
  /// u32 length followed by the bytes.
  void PutString(const std::string& s);
  void PutBytes(const uint8_t* data, size_t size);

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian reader over a payload. Every getter
/// fails with Corruption on underrun instead of reading past the end,
/// so truncated or lying payloads surface as clean errors.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int32_t> GetI32();
  Result<double> GetF64();
  /// Reads a u32 length + bytes; enforces `max_bytes` before copying.
  Result<std::string> GetString(uint32_t max_bytes = 1u << 20);
  Result<std::vector<uint8_t>> GetBytes(uint32_t max_bytes);
  /// Reads exactly `n` raw bytes (no length prefix).
  Result<std::vector<uint8_t>> GetRaw(size_t n);

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Need(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace qbism::server

#endif  // QBISM_SERVER_PROTOCOL_H_
