#ifndef QBISM_SERVER_SERVER_H_
#define QBISM_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/channel.h"
#include "server/admission.h"
#include "server/auth.h"
#include "server/codec.h"
#include "server/socket_io.h"
#include "service/query_service.h"

namespace qbism::server {

/// Socket front-end sizing and policy. The inner pool (workers, queue,
/// cache, retries, tracer) is configured through `service`.
struct ServerOptions {
  /// 0 binds a kernel-assigned localhost port; port() reports it.
  uint16_t port = 0;
  int listen_backlog = 512;
  /// Hard cap on concurrent connections; an accept beyond it gets one
  /// kError(server_busy) frame and an immediate close.
  int max_connections = 2048;
  /// Result streaming: the answer payload is sliced into kResultChunk
  /// frames of at most this many bytes — the real-protocol analogue of
  /// the paper's ~1 KB RPC data messages (§5.2/§6.1).
  uint32_t chunk_bytes = 64u << 10;
  /// Reader-side payload ceiling (adversarial length prefixes).
  uint32_t max_frame_payload = 16u << 20;
  double session_ttl_seconds = 300.0;
  uint64_t auth_seed = 0;  // extra entropy for session tokens
  /// Throttle on rejected work: a connection that just drew a quota
  /// rejection (admission bounce or session cap) has its error reply
  /// delayed by this much. Rejections are cheap for the server but a
  /// zero-think-time retry loop turns them into a CPU attack — tens of
  /// thousands of reject round-trips per second starve other tenants'
  /// queries of cycles even though the slot caps hold. Pacing the reply
  /// bounds each connection to ~1/penalty bounces per second no matter
  /// how aggressively the client retries (frames queued back-to-back
  /// still pay it serially, one read per connection thread). 0 disables.
  double quota_penalty_seconds = 0.010;
  std::vector<TenantConfig> tenants;
  service::ServiceOptions service;
  /// Optional egress shaping with the paper's network cost model: every
  /// result ship is charged modeled seconds (chunks as data messages),
  /// accumulated in stats().modeled_egress_seconds; a scale > 0 also
  /// realizes scale x modeled as a real sleep, which keeps the paper's
  /// 69s-vs-15-28s reproduction runnable over real sockets.
  bool shape_egress = false;
  net::NetworkCostModel egress_model;
  double egress_wait_scale = 0.0;
};

/// Aggregate server counters (one consistent-enough snapshot).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  // over the connection cap
  uint64_t connections_open = 0;
  uint64_t peak_connections = 0;
  uint64_t frames_read = 0;
  uint64_t frames_written = 0;
  uint64_t bytes_read = 0;     // wire bytes in (headers + payloads)
  uint64_t bytes_written = 0;  // wire bytes out (headers + payloads)
  /// Answer-payload bytes shipped in kResultChunk frames — the codec's
  /// ship-bytes accounting (sum of EncodeAnswerPayload sizes actually
  /// sent). E19 cross-checks this against client-side receipts.
  uint64_t ship_bytes = 0;
  uint64_t protocol_errors = 0;  // bad frames / payloads / CRC
  uint64_t queries_ok = 0;
  uint64_t queries_failed = 0;
  /// Quota rejections that were penalty-delayed, and the total delay
  /// charged (connection-thread sleep, not service time).
  uint64_t quota_penalties = 0;
  double quota_penalty_seconds = 0.0;
  double modeled_egress_seconds = 0.0;
};

/// Per-tenant wire accounting (admission stats live on the governor).
struct TenantWireStats {
  std::string name;
  uint64_t queries_ok = 0;
  uint64_t queries_failed = 0;
  uint64_t ship_bytes = 0;
  service::LatencySummary latency;  // request read -> last byte shipped
  TenantAdmissionStats admission;
};

/// The real network front end (ROADMAP item 1): a TCP listener on
/// localhost speaking the framed binary protocol of server/protocol.h,
/// thread-per-connection with a connection cap, token-based sessions
/// (AuthManager), per-tenant fair-share admission (TenantGovernor)
/// layered on the QueryService pool, and chunked streaming of query
/// answers. When the service is traced, every wire request becomes one
/// trace: kRequest root -> kAccept (frame receive) / kDecode / kAdmit /
/// kQuery (the service's stage tree) / kShip (socket writes).
///
///   clients ==TCP== accept loop -> connection threads
///                      |  HELLO -> AuthManager (sessions, tokens)
///                      |  QUERY -> TenantGovernor (fair share, quotas)
///                      |            -> QueryService pool -> chunked ship
///
/// The extension must be fully loaded before Start(); the server treats
/// it as read-only, exactly like QueryService.
class QbismServer {
 public:
  QbismServer(qbism::SpatialExtension* ext, ServerOptions options);
  ~QbismServer();

  QbismServer(const QbismServer&) = delete;
  QbismServer& operator=(const QbismServer&) = delete;

  /// Binds, listens, and starts the accept loop + service pool.
  Status Start();

  /// Stops accepting, severs every connection, drains the service.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }

  ServerStats stats() const;
  TenantWireStats tenant_stats(int tenant) const;
  /// Inner service metrics (includes unauthorized / quota_rejected /
  /// session_expired counted at this server's edge).
  service::MetricsSnapshot metrics() const;

  service::QueryService* service() { return service_.get(); }
  AuthManager* auth() { return auth_.get(); }
  TenantGovernor* governor() { return governor_.get(); }

 private:
  struct Connection {
    FrameSocket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  struct PerTenant {
    std::atomic<uint64_t> queries_ok{0};
    std::atomic<uint64_t> queries_failed{0};
    std::atomic<uint64_t> ship_bytes{0};
    service::LatencyRecorder latency;
  };

  void AcceptLoop();
  void HandleConnection(Connection* conn);
  /// One kQuery request end to end; returns false when the connection
  /// should be dropped (send failure).
  bool HandleQuery(Connection* conn, const Frame& frame,
                   double read_seconds);
  bool SendError(Connection* conn, uint64_t request_id, ErrorReason reason,
                 const Status& status);
  /// Sleeps the connection thread for the configured quota penalty
  /// before its rejection reply goes out (no-op when disabled/stopping).
  void PenalizeQuota();
  Status SendCounted(Connection* conn, MessageType type, uint64_t session,
                     uint64_t request_id, const std::vector<uint8_t>& payload);
  void ReapFinished();

  qbism::SpatialExtension* ext_;
  ServerOptions options_;
  std::unique_ptr<service::QueryService> service_;
  std::unique_ptr<AuthManager> auth_;
  std::unique_ptr<TenantGovernor> governor_;
  std::vector<std::unique_ptr<PerTenant>> per_tenant_;

  FrameSocket listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;  // guarded by conns_mu_

  // stats (relaxed atomics; stats() snapshots)
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::atomic<uint64_t> connections_open_{0};
  std::atomic<uint64_t> peak_connections_{0};
  std::atomic<uint64_t> frames_read_{0};
  std::atomic<uint64_t> frames_written_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> ship_bytes_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> queries_ok_{0};
  std::atomic<uint64_t> queries_failed_{0};
  std::atomic<uint64_t> quota_penalties_{0};
  std::atomic<double> quota_penalty_seconds_{0.0};
  std::atomic<double> modeled_egress_seconds_{0.0};
};

}  // namespace qbism::server

#endif  // QBISM_SERVER_SERVER_H_
