#ifndef QBISM_OBS_TRACE_H_
#define QBISM_OBS_TRACE_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace qbism::obs {

/// Stage tags for spans. One query produces a tree: a kQuery root
/// (admission to reply) whose children partition the request's wall
/// time (kQueueWait, kTranslate, kInfo, kData, kShip, kImport,
/// kRender, ...), with the database phase decomposed further by the
/// layers it crosses (kExtract -> kPlan/kShard -> kIo; kDecode for
/// REGION/DATA_REGION unmarshalling). docs/OBSERVABILITY.md is the
/// reference for what each stage covers.
enum class Stage : uint8_t {
  kQuery = 0,   // whole request, admission -> reply (root span)
  kQueueWait,   // admission queue residence (recorded retroactively)
  kCacheProbe,  // shared result-cache probe (hit or miss)
  kTranslate,   // QuerySpec -> the two §3.4 SQL statements
  kInfo,        // the atlas/info query (the paper's "other" phase)
  kData,        // the data query, end to end (SQL exec + UDF depth)
  kPlan,        // LFM read planning (PlanRead / BuildReadPlan)
  kIo,          // device page transfers (LFM reads, any thread)
  kDecode,      // REGION / DATA_REGION gamma-decode + unmarshalling
  kShip,        // network shipping over the simulated channel
  kImport,      // DX executive ImportVolume
  kRender,      // DX executive rendering
  kExtract,     // one vectored EXTRACT_DATA execution
  kShard,       // one extraction shard task (caller or donated helper)
  kScan,        // one streaming whole-field scan (bandregion/volumemean)
  kRetry,       // transient-fault retry backoff sleep
  kIoWait,      // realized modeled I/O+network wait (io_wait_scale)
  kRequest,     // one wire request on the socket server (root span)
  kAccept,      // reading the request frame off the socket
  kAdmit,       // tenant fair-share admission wait (socket server)
  kIngest,      // one online study ingest (warp + band + store, logged)
  kWalSync,     // write-ahead-log page flush (the commit fsync)
  kVacuum,      // reclamation of dead long-field extents
  kOptimize,    // SQL cost-based planning (statistics + join order)
  kCompile,     // SQL plan -> batch-VM bytecode lowering
  kIndexBuild,  // cross-study spatial index pack/rebuild (src/index)
  kIndexProbe,  // one R-tree + bitmap candidate probe
};
inline constexpr int kNumStages = 27;

/// Stable lower-case stage name ("query", "queue", "io", ...).
const char* StageName(Stage stage);

class Tracer;

/// The propagated handle: which tracer (if any) records spans on this
/// thread, which trace (query) the work belongs to, and the span the
/// next child should hang under. Copyable POD; an all-zero context is
/// valid and means "tracing off".
struct TraceContext {
  Tracer* tracer = nullptr;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  // parent span for children opened under this
};

/// The calling thread's current context. Work that crosses threads
/// (TaskPool donation) captures the submitter's context and installs it
/// on the executing thread with ScopedTraceContext, so helper work is
/// attributed to the owning query.
TraceContext& CurrentTraceContext();

/// RAII install/restore of the thread's current context.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx)
      : saved_(CurrentTraceContext()) {
    CurrentTraceContext() = ctx;
  }
  ~ScopedTraceContext() { CurrentTraceContext() = saved_; }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// One finished span. `start_seconds` is relative to the tracer's
/// construction (its epoch), so spans from all threads share a clock.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  Stage stage = Stage::kQuery;
  bool ok = true;
  uint32_t thread = 0;  // stable per-thread hash, not a TID
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  uint64_t pages = 0;  // page transfers attributed to this span
  uint64_t bytes = 0;  // payload bytes attributed to this span
  char label[16] = {0};  // optional short tag ("full", "retry2", ...)
};

/// Aggregated view of one stage's histogram (percentiles are estimated
/// from power-of-two latency buckets; count/total/max are exact).
struct StageSummary {
  Stage stage = Stage::kQuery;
  uint64_t count = 0;
  double total_seconds = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max_seconds = 0.0;
  uint64_t pages = 0;
  uint64_t bytes = 0;
};

struct TracerOptions {
  /// Completed spans kept for DumpTrace; further spans still feed the
  /// stage histograms but their records are dropped (counted).
  size_t span_capacity = 1 << 16;
  bool enabled = true;
};

/// Lock-free per-stage latency histogram: power-of-two nanosecond
/// buckets (bucket i holds durations in [2^i, 2^{i+1}) ns) plus exact
/// count / total / max, all relaxed atomics — recording from many
/// threads never takes a lock.
class StageHistogram {
 public:
  static constexpr int kBuckets = 48;  // 2^48 ns ~ 78 hours

  void Record(uint64_t nanos) {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
    buckets_[BucketOf(nanos)].fetch_add(1, std::memory_order_relaxed);
    uint64_t prev = max_nanos_.load(std::memory_order_relaxed);
    while (nanos > prev && !max_nanos_.compare_exchange_weak(
                               prev, nanos, std::memory_order_relaxed)) {
    }
  }

  void AddPayload(uint64_t pages, uint64_t bytes) {
    if (pages) pages_.fetch_add(pages, std::memory_order_relaxed);
    if (bytes) bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Aggregates the buckets into a summary for `stage`.
  StageSummary Summarize(Stage stage) const;

  /// Not thread-safe against concurrent Record; quiesce first.
  void Reset();

  static int BucketOf(uint64_t nanos) {
    int b = nanos == 0 ? 0 : 63 - std::countl_zero(nanos);
    return b >= kBuckets ? kBuckets - 1 : b;
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_nanos_{0};
  std::atomic<uint64_t> max_nanos_{0};
  std::atomic<uint64_t> pages_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// The tracing sink: hands out trace/span ids, stores finished spans in
/// a bounded lock-free buffer, and aggregates per-stage histograms.
/// One Tracer is shared by a whole service (all workers and helper
/// threads); recording is wait-free. When disabled (or when no tracer
/// is installed in the current context) every Span is inert: the cost
/// of an instrumentation point is one thread-local read and a branch.
///
/// Reset() and the dump accessors may run concurrently with recording
/// (they see a consistent prefix), but Reset() concurrent with
/// recording loses the racing spans; quiesce for exact results.
class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Seconds since this tracer's construction (the span clock).
  double NowSeconds() const;

  /// Fresh trace: new trace id, no parent span.
  TraceContext StartTrace() {
    return TraceContext{this, next_trace_.fetch_add(1, std::memory_order_relaxed),
                        0};
  }

  uint64_t NextSpanId() {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records a finished span: feeds the stage histogram and (capacity
  /// permitting) the span buffer. Used by Span::End and directly for
  /// retroactive spans (queue wait).
  void Record(const SpanRecord& record);

  /// --- Aggregates ------------------------------------------------------

  /// Per-stage summaries for every stage with at least one span, in
  /// Stage order.
  std::vector<StageSummary> StageSummaries() const;

  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Clears spans and histograms (see class comment re concurrency).
  void Reset();

  /// --- Structured export (DumpTrace / DumpStats) -----------------------

  /// Finished spans currently buffered, in completion order.
  std::vector<SpanRecord> Spans() const;

  /// One JSON object per line per span.
  std::string DumpTraceJsonl() const;

  /// chrome://tracing "trace_event" JSON (open chrome://tracing or
  /// https://ui.perfetto.dev and load the file).
  std::string DumpTraceChrome() const;

  /// Human-readable per-stage table (DumpStats).
  std::string DumpStatsTable() const;

  /// Per-stage summaries as a JSON array (embeds in MetricsSnapshot).
  static std::string StagesToJson(const std::vector<StageSummary>& stages);

  Status WriteFile(const std::string& path, const std::string& contents) const;

 private:
  struct Slot {
    std::atomic<uint32_t> ready{0};
    SpanRecord record;
  };

  TracerOptions options_;
  std::atomic<bool> enabled_;
  std::atomic<uint64_t> next_trace_{1};
  std::atomic<uint64_t> next_span_{1};
  std::atomic<uint64_t> next_slot_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
  std::unique_ptr<Slot[]> slots_;
  StageHistogram histograms_[kNumStages];
  double epoch_seconds_ = 0.0;  // steady-clock seconds at construction
};

/// RAII span. Construction captures the parent context (explicitly or
/// from the thread-local current context); destruction or End()
/// records. Inert — no clock reads, no allocation — when the context
/// has no tracer or the tracer is disabled.
class Span {
 public:
  explicit Span(Stage stage) : Span(CurrentTraceContext(), stage) {}
  Span(const TraceContext& parent, Stage stage);
  ~Span() { End(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return tracer_ != nullptr; }

  /// Context for children of this span. Falls through to the parent
  /// context when inert, so nesting code needs no special-casing.
  TraceContext context() const {
    return active()
               ? TraceContext{tracer_, record_.trace_id, record_.span_id}
               : parent_;
  }

  void AddPages(uint64_t pages) { record_.pages += pages; }
  void AddBytes(uint64_t bytes) { record_.bytes += bytes; }
  void SetFailed() { record_.ok = false; }
  void SetLabel(const char* label) {
    if (!active() || label == nullptr) return;
    std::strncpy(record_.label, label, sizeof(record_.label) - 1);
    record_.label[sizeof(record_.label) - 1] = '\0';
  }

  /// Records the span (idempotent; the destructor calls it).
  void End();

 private:
  Tracer* tracer_ = nullptr;
  TraceContext parent_;
  SpanRecord record_;
};

}  // namespace qbism::obs

#endif  // QBISM_OBS_TRACE_H_
