#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

namespace qbism::obs {

namespace {

using Clock = std::chrono::steady_clock;

double SteadySeconds() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

uint32_t ThisThreadTag() {
  // A stable, compact per-thread tag for span attribution. Hash of the
  // opaque std::thread::id; collisions are harmless (display only).
  static thread_local const uint32_t tag = static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  return tag;
}

/// Escapes the (short, controlled) label strings for JSON output.
std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(*s) >= 0x20) out.push_back(*s);
  }
  return out;
}

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kQuery: return "query";
    case Stage::kQueueWait: return "queue";
    case Stage::kCacheProbe: return "cache_probe";
    case Stage::kTranslate: return "translate";
    case Stage::kInfo: return "info";
    case Stage::kData: return "data";
    case Stage::kPlan: return "plan";
    case Stage::kIo: return "io";
    case Stage::kDecode: return "decode";
    case Stage::kShip: return "ship";
    case Stage::kImport: return "import";
    case Stage::kRender: return "render";
    case Stage::kExtract: return "extract";
    case Stage::kShard: return "shard";
    case Stage::kScan: return "scan";
    case Stage::kRetry: return "retry";
    case Stage::kIoWait: return "io_wait";
    case Stage::kRequest: return "request";
    case Stage::kAccept: return "accept";
    case Stage::kAdmit: return "admit";
    case Stage::kIngest: return "ingest";
    case Stage::kWalSync: return "wal_sync";
    case Stage::kVacuum: return "vacuum";
    case Stage::kOptimize: return "optimize";
    case Stage::kCompile: return "compile";
    case Stage::kIndexBuild: return "index_build";
    case Stage::kIndexProbe: return "index_probe";
  }
  return "unknown";
}

TraceContext& CurrentTraceContext() {
  static thread_local TraceContext ctx;
  return ctx;
}

StageSummary StageHistogram::Summarize(Stage stage) const {
  StageSummary out;
  out.stage = stage;
  out.count = count_.load(std::memory_order_relaxed);
  out.total_seconds =
      static_cast<double>(total_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  out.max_seconds =
      static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  out.pages = pages_.load(std::memory_order_relaxed);
  out.bytes = bytes_.load(std::memory_order_relaxed);
  if (out.count == 0) return out;

  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  // Percentile: walk the cumulative histogram; report the geometric
  // midpoint of the bucket the rank lands in (within 41% of the true
  // value by construction of power-of-two buckets).
  auto percentile = [&](double p) -> double {
    uint64_t rank = static_cast<uint64_t>(
        p * static_cast<double>(total > 0 ? total - 1 : 0));
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen > rank) {
        return std::ldexp(1.0, i) * 1.4142135623730951 * 1e-9;
      }
    }
    return out.max_seconds;
  };
  out.p50 = std::min(percentile(0.50), out.max_seconds);
  out.p95 = std::min(percentile(0.95), out.max_seconds);
  out.p99 = std::min(percentile(0.99), out.max_seconds);
  return out;
}

void StageHistogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  total_nanos_.store(0, std::memory_order_relaxed);
  max_nanos_.store(0, std::memory_order_relaxed);
  pages_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Tracer::Tracer(TracerOptions options)
    : options_(options),
      enabled_(options.enabled),
      slots_(new Slot[std::max<size_t>(1, options.span_capacity)]),
      epoch_seconds_(SteadySeconds()) {
  options_.span_capacity = std::max<size_t>(1, options_.span_capacity);
}

double Tracer::NowSeconds() const { return SteadySeconds() - epoch_seconds_; }

void Tracer::Record(const SpanRecord& record) {
  auto& hist = histograms_[static_cast<int>(record.stage)];
  hist.Record(static_cast<uint64_t>(
      std::max(0.0, record.duration_seconds) * 1e9));
  hist.AddPayload(record.pages, record.bytes);
  recorded_.fetch_add(1, std::memory_order_relaxed);

  uint64_t idx = next_slot_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= options_.span_capacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = slots_[idx];
  slot.record = record;
  slot.ready.store(1, std::memory_order_release);
}

std::vector<StageSummary> Tracer::StageSummaries() const {
  std::vector<StageSummary> out;
  for (int i = 0; i < kNumStages; ++i) {
    if (histograms_[i].count() == 0) continue;
    out.push_back(histograms_[i].Summarize(static_cast<Stage>(i)));
  }
  return out;
}

void Tracer::Reset() {
  uint64_t used =
      std::min<uint64_t>(next_slot_.load(std::memory_order_relaxed),
                         options_.span_capacity);
  for (uint64_t i = 0; i < used; ++i) {
    slots_[i].ready.store(0, std::memory_order_relaxed);
  }
  next_slot_.store(0, std::memory_order_relaxed);
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  for (auto& h : histograms_) h.Reset();
}

std::vector<SpanRecord> Tracer::Spans() const {
  uint64_t used =
      std::min<uint64_t>(next_slot_.load(std::memory_order_relaxed),
                         options_.span_capacity);
  std::vector<SpanRecord> out;
  out.reserve(used);
  for (uint64_t i = 0; i < used; ++i) {
    if (slots_[i].ready.load(std::memory_order_acquire) == 0) continue;
    out.push_back(slots_[i].record);
  }
  return out;
}

std::string Tracer::DumpTraceJsonl() const {
  std::ostringstream out;
  char buf[384];
  for (const SpanRecord& s : Spans()) {
    std::snprintf(
        buf, sizeof(buf),
        "{\"trace\":%llu,\"span\":%llu,\"parent\":%llu,\"stage\":\"%s\","
        "\"label\":\"%s\",\"ok\":%s,\"thread\":%u,\"start\":%.9f,"
        "\"duration\":%.9f,\"pages\":%llu,\"bytes\":%llu}\n",
        static_cast<unsigned long long>(s.trace_id),
        static_cast<unsigned long long>(s.span_id),
        static_cast<unsigned long long>(s.parent_id), StageName(s.stage),
        JsonEscape(s.label).c_str(), s.ok ? "true" : "false", s.thread,
        s.start_seconds, s.duration_seconds,
        static_cast<unsigned long long>(s.pages),
        static_cast<unsigned long long>(s.bytes));
    out << buf;
  }
  return out.str();
}

std::string Tracer::DumpTraceChrome() const {
  // The chrome://tracing / Perfetto "trace_event" format: complete
  // ("ph":"X") events with microsecond timestamps. We map trace id to
  // pid so each query renders as its own process row, and the thread
  // tag to tid so donated-helper work shows up on separate tracks
  // within the owning query.
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  char buf[448];
  bool first = true;
  for (const SpanRecord& s : Spans()) {
    std::snprintf(
        buf, sizeof(buf),
        "%s\n{\"name\":\"%s%s%s\",\"cat\":\"qbism\",\"ph\":\"X\","
        "\"pid\":%llu,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
        "\"args\":{\"trace\":%llu,\"span\":%llu,\"parent\":%llu,"
        "\"ok\":%s,\"pages\":%llu,\"bytes\":%llu}}",
        first ? "" : ",", StageName(s.stage), s.label[0] ? ":" : "",
        JsonEscape(s.label).c_str(),
        static_cast<unsigned long long>(s.trace_id), s.thread,
        s.start_seconds * 1e6, s.duration_seconds * 1e6,
        static_cast<unsigned long long>(s.trace_id),
        static_cast<unsigned long long>(s.span_id),
        static_cast<unsigned long long>(s.parent_id), s.ok ? "true" : "false",
        static_cast<unsigned long long>(s.pages),
        static_cast<unsigned long long>(s.bytes));
    out << buf;
    first = false;
  }
  out << "\n]}\n";
  return out.str();
}

std::string Tracer::DumpStatsTable() const {
  std::ostringstream out;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%-12s %9s %12s %10s %10s %10s %10s %12s\n",
                "stage", "count", "total(s)", "p50(ms)", "p95(ms)", "p99(ms)",
                "max(ms)", "pages");
  out << buf;
  for (const StageSummary& s : StageSummaries()) {
    std::snprintf(buf, sizeof(buf),
                  "%-12s %9llu %12.4f %10.3f %10.3f %10.3f %10.3f %12llu\n",
                  StageName(s.stage), static_cast<unsigned long long>(s.count),
                  s.total_seconds, 1e3 * s.p50, 1e3 * s.p95, 1e3 * s.p99,
                  1e3 * s.max_seconds,
                  static_cast<unsigned long long>(s.pages));
    out << buf;
  }
  if (dropped() > 0) {
    std::snprintf(buf, sizeof(buf),
                  "(%llu spans dropped at capacity %llu)\n",
                  static_cast<unsigned long long>(dropped()),
                  static_cast<unsigned long long>(options_.span_capacity));
    out << buf;
  }
  return out.str();
}

std::string Tracer::StagesToJson(const std::vector<StageSummary>& stages) {
  std::ostringstream out;
  out << "[";
  char buf[256];
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageSummary& s = stages[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"stage\":\"%s\",\"count\":%llu,\"total_seconds\":%.6f,"
        "\"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f,\"max\":%.6f,"
        "\"pages\":%llu,\"bytes\":%llu}",
        i ? "," : "", StageName(s.stage),
        static_cast<unsigned long long>(s.count), s.total_seconds, s.p50,
        s.p95, s.p99, s.max_seconds, static_cast<unsigned long long>(s.pages),
        static_cast<unsigned long long>(s.bytes));
    out << buf;
  }
  out << "]";
  return out.str();
}

Status Tracer::WriteFile(const std::string& path,
                         const std::string& contents) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  out << contents;
  out.flush();
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Span::Span(const TraceContext& parent, Stage stage) : parent_(parent) {
  Tracer* tracer = parent.tracer;
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  record_.trace_id = parent.trace_id;
  record_.span_id = tracer->NextSpanId();
  record_.parent_id = parent.span_id;
  record_.stage = stage;
  record_.thread = ThisThreadTag();
  record_.start_seconds = tracer->NowSeconds();
}

void Span::End() {
  if (tracer_ == nullptr) return;
  record_.duration_seconds = tracer_->NowSeconds() - record_.start_seconds;
  tracer_->Record(record_);
  tracer_ = nullptr;
}

}  // namespace qbism::obs
