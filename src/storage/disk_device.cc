#include "storage/disk_device.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/macros.h"

namespace qbism::storage {

namespace {

/// Monotonic device ids key the per-thread ledgers; pointers are not
/// used because a recycled allocation must not inherit an old ledger.
std::atomic<uint64_t> g_next_device_id{1};

uint64_t NewDeviceId() {
  return g_next_device_id.fetch_add(1, std::memory_order_relaxed);
}

std::unordered_map<uint64_t, IoStats>& ThreadLedgers() {
  static thread_local std::unordered_map<uint64_t, IoStats> ledgers;
  return ledgers;
}

}  // namespace

DiskDevice::DiskDevice(uint64_t num_pages, DiskCostModel model)
    : num_pages_(num_pages),
      model_(model),
      bytes_(num_pages * kPageSize, 0),
      device_id_(NewDeviceId()) {}

double DiskDevice::Charge(uint64_t page_no, uint64_t count, bool write) {
  IoStats delta;
  if (page_no != next_sequential_page_) {
    delta.seeks = 1;
    delta.simulated_seconds += model_.seek_seconds;
  }
  delta.simulated_seconds +=
      model_.transfer_seconds_per_page * static_cast<double>(count);
  if (write) {
    delta.pages_written = count;
  } else {
    delta.pages_read = count;
  }
  next_sequential_page_ = page_no + count;

  stats_.pages_read += delta.pages_read;
  stats_.pages_written += delta.pages_written;
  stats_.seeks += delta.seeks;
  stats_.simulated_seconds += delta.simulated_seconds;

  IoStats& ledger = ThreadLedgers()[device_id_];
  ledger.pages_read += delta.pages_read;
  ledger.pages_written += delta.pages_written;
  ledger.seeks += delta.seeks;
  ledger.simulated_seconds += delta.simulated_seconds;
  return delta.simulated_seconds;
}

IoStats DiskDevice::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void DiskDevice::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = IoStats{};
}

IoStats DiskDevice::thread_stats() const { return ThreadLedgers()[device_id_]; }

void DiskDevice::ResetThreadStats() { ThreadLedgers()[device_id_] = IoStats{}; }

void DiskDevice::AddToThreadLedger(const IoStats& delta) {
  IoStats& ledger = ThreadLedgers()[device_id_];
  ledger.pages_read += delta.pages_read;
  ledger.pages_written += delta.pages_written;
  ledger.seeks += delta.seeks;
  ledger.simulated_seconds += delta.simulated_seconds;
}

Status DiskDevice::ReadPage(uint64_t page_no, uint8_t* out) {
  return ReadPages(page_no, 1, out);
}

Status DiskDevice::WritePage(uint64_t page_no, const uint8_t* in) {
  return WritePages(page_no, 1, in);
}

void DiskDevice::InstallFaultPlan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  plan_transfers_ = 0;
  fail_budget_ = plan.page_budget;
  fault_latched_ = false;
  fault_rng_ = Rng(plan.seed);
}

void DiskDevice::ClearFault() { InstallFaultPlan(FaultPlan::None()); }

FaultStats DiskDevice::fault_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fault_stats_;
}

void DiskDevice::ResetFaultStats() {
  std::lock_guard<std::mutex> lock(mu_);
  fault_stats_ = FaultStats{};
}

Status DiskDevice::InjectFault(uint64_t count) {
  uint64_t transfer_no = plan_transfers_++;
  fault_stats_.transfers += 1;
  fault_stats_.pages += count;

  bool fire = fault_latched_;
  switch (plan_.trigger) {
    case FaultPlan::Trigger::kNone:
      break;
    case FaultPlan::Trigger::kPageBudget:
      // Budget semantics: a transfer that does not fit fails atomically
      // and leaves the budget intact, so a smaller transfer may still
      // succeed; once the budget is gone everything fails.
      if (fail_budget_ < count) {
        fire = true;
      } else {
        fail_budget_ -= count;
      }
      break;
    case FaultPlan::Trigger::kAtTransfer:
      fire = fire || transfer_no == plan_.transfer_no;
      break;
    case FaultPlan::Trigger::kEveryKth:
      fire = fire || (plan_.every_k > 0 &&
                      (transfer_no + 1) % plan_.every_k == 0);
      break;
    case FaultPlan::Trigger::kRandom:
      // Always draw so the stream position depends only on the transfer
      // number, not on earlier outcomes.
      fire = fault_rng_.NextDouble() < plan_.probability || fire;
      break;
  }
  if (!fire) return Status::OK();
  if (plan_.durability == FaultDurability::kPersistent &&
      plan_.trigger != FaultPlan::Trigger::kPageBudget) {
    fault_latched_ = true;
  }
  fault_stats_.faults_injected += 1;
  return Status::IOError("injected disk fault (transfer #" +
                         std::to_string(transfer_no) + ")");
}

Status DiskDevice::AccountTransfer(uint64_t page_no, uint64_t count,
                                   bool write) {
  double charged = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    QBISM_RETURN_NOT_OK(InjectFault(count));
    charged = Charge(page_no, count, write);
  }
  // Realize the modeled service time as a wall-clock wait (benchmarks
  // only; scale is 0 everywhere else). Outside mu_ so concurrent
  // transfers wait in parallel, which is the effect being measured.
  double scale = realize_scale_.load(std::memory_order_relaxed);
  if (scale > 0.0 && charged > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(scale * charged));
  }
  return Status::OK();
}

Status DiskDevice::ReadPages(uint64_t page_no, uint64_t count, uint8_t* out) {
  if (page_no + count > num_pages_) {
    return Status::OutOfRange("DiskDevice::ReadPages: beyond device end");
  }
  std::shared_lock<std::shared_mutex> data_lock(data_mu_);
  QBISM_RETURN_NOT_OK(AccountTransfer(page_no, count, /*write=*/false));
  std::memcpy(out, bytes_.data() + page_no * kPageSize, count * kPageSize);
  return Status::OK();
}

Status DiskDevice::ReadPagesBatch(const std::vector<PageReadOp>& ops) {
  for (const PageReadOp& op : ops) {
    if (op.page_no + op.count > num_pages_ || op.count > num_pages_) {
      return Status::OutOfRange("DiskDevice::ReadPagesBatch: beyond device end");
    }
    if (op.count > 0 && op.out == nullptr) {
      return Status::InvalidArgument(
          "DiskDevice::ReadPagesBatch: null destination");
    }
  }
  std::shared_lock<std::shared_mutex> data_lock(data_mu_);
  for (const PageReadOp& op : ops) {
    if (op.count == 0) continue;
    QBISM_RETURN_NOT_OK(AccountTransfer(op.page_no, op.count, /*write=*/false));
    std::memcpy(op.out, bytes_.data() + op.page_no * kPageSize,
                op.count * kPageSize);
  }
  return Status::OK();
}

Status DiskDevice::WritePages(uint64_t page_no, uint64_t count,
                              const uint8_t* in) {
  if (page_no + count > num_pages_) {
    return Status::OutOfRange("DiskDevice::WritePages: beyond device end");
  }
  std::unique_lock<std::shared_mutex> data_lock(data_mu_);
  QBISM_RETURN_NOT_OK(AccountTransfer(page_no, count, /*write=*/true));
  std::memcpy(bytes_.data() + page_no * kPageSize, in, count * kPageSize);
  return Status::OK();
}

std::vector<uint8_t> DiskDevice::CloneContents() const {
  std::shared_lock<std::shared_mutex> data_lock(data_mu_);
  return bytes_;
}

Status DiskDevice::RestoreContents(const std::vector<uint8_t>& contents) {
  std::unique_lock<std::shared_mutex> data_lock(data_mu_);
  if (contents.size() != bytes_.size()) {
    return Status::InvalidArgument(
        "DiskDevice::RestoreContents: size mismatch (" +
        std::to_string(contents.size()) + " vs " +
        std::to_string(bytes_.size()) + " bytes)");
  }
  bytes_ = contents;
  return Status::OK();
}

}  // namespace qbism::storage
