#include "storage/disk_device.h"

#include <cstring>

#include "common/macros.h"

namespace qbism::storage {

DiskDevice::DiskDevice(uint64_t num_pages, DiskCostModel model)
    : num_pages_(num_pages),
      model_(model),
      bytes_(num_pages * kPageSize, 0) {}

void DiskDevice::Charge(uint64_t page_no, uint64_t count, bool write) {
  if (page_no != next_sequential_page_) {
    ++stats_.seeks;
    stats_.simulated_seconds += model_.seek_seconds;
  }
  stats_.simulated_seconds +=
      model_.transfer_seconds_per_page * static_cast<double>(count);
  if (write) {
    stats_.pages_written += count;
  } else {
    stats_.pages_read += count;
  }
  next_sequential_page_ = page_no + count;
}

Status DiskDevice::ReadPage(uint64_t page_no, uint8_t* out) {
  return ReadPages(page_no, 1, out);
}

Status DiskDevice::WritePage(uint64_t page_no, const uint8_t* in) {
  return WritePages(page_no, 1, in);
}

Status DiskDevice::ConsumeFaultBudget(uint64_t count) {
  if (!fail_armed_) return Status::OK();
  if (fail_budget_ < count) {
    return Status::IOError("injected disk fault");
  }
  fail_budget_ -= count;
  return Status::OK();
}

Status DiskDevice::ReadPages(uint64_t page_no, uint64_t count, uint8_t* out) {
  if (page_no + count > num_pages_) {
    return Status::OutOfRange("DiskDevice::ReadPages: beyond device end");
  }
  QBISM_RETURN_NOT_OK(ConsumeFaultBudget(count));
  Charge(page_no, count, /*write=*/false);
  std::memcpy(out, bytes_.data() + page_no * kPageSize, count * kPageSize);
  return Status::OK();
}

Status DiskDevice::WritePages(uint64_t page_no, uint64_t count,
                              const uint8_t* in) {
  if (page_no + count > num_pages_) {
    return Status::OutOfRange("DiskDevice::WritePages: beyond device end");
  }
  QBISM_RETURN_NOT_OK(ConsumeFaultBudget(count));
  Charge(page_no, count, /*write=*/true);
  std::memcpy(bytes_.data() + page_no * kPageSize, in, count * kPageSize);
  return Status::OK();
}

}  // namespace qbism::storage
