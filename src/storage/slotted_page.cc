#include "storage/slotted_page.h"

#include <cstring>

namespace qbism::storage {

namespace {

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
void PutU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
void PutU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint16_t SlotOffset(const uint8_t* page, SlotId slot) {
  return GetU16(page + SlottedPage::kHeaderSize + slot * SlottedPage::kSlotSize);
}
uint16_t SlotLength(const uint8_t* page, SlotId slot) {
  return GetU16(page + SlottedPage::kHeaderSize + slot * SlottedPage::kSlotSize + 2);
}

}  // namespace

void SlottedPage::Init(uint8_t* page) {
  std::memset(page, 0, kPageSize);
  PutU16(page, 0);                                     // slot_count
  PutU16(page + 2, static_cast<uint16_t>(kPageSize));  // free_end
  PutU64(page + 4, 0);                                 // next_page (0 = none)
}

uint16_t SlottedPage::SlotCount(const uint8_t* page) { return GetU16(page); }

uint64_t SlottedPage::NextPage(const uint8_t* page) { return GetU64(page + 4); }

void SlottedPage::SetNextPage(uint8_t* page, uint64_t next) {
  PutU64(page + 4, next);
}

uint64_t SlottedPage::FreeSpace(const uint8_t* page) {
  uint16_t slot_count = GetU16(page);
  uint16_t free_end = GetU16(page + 2);
  uint64_t slots_end = kHeaderSize + static_cast<uint64_t>(slot_count) * kSlotSize;
  if (free_end < slots_end + kSlotSize) return 0;
  return free_end - slots_end - kSlotSize;
}

Result<SlotId> SlottedPage::Insert(uint8_t* page, const uint8_t* data,
                                   uint16_t length) {
  if (length >= kTombstone) {
    return Status::InvalidArgument("SlottedPage: record too long");
  }
  if (FreeSpace(page) < length) {
    return Status::OutOfRange("SlottedPage: page full");
  }
  uint16_t slot_count = GetU16(page);
  uint16_t free_end = GetU16(page + 2);
  uint16_t offset = static_cast<uint16_t>(free_end - length);
  std::memcpy(page + offset, data, length);
  uint8_t* slot_entry = page + kHeaderSize + slot_count * kSlotSize;
  PutU16(slot_entry, offset);
  PutU16(slot_entry + 2, length);
  PutU16(page, static_cast<uint16_t>(slot_count + 1));
  PutU16(page + 2, offset);
  return static_cast<SlotId>(slot_count);
}

Result<std::vector<uint8_t>> SlottedPage::Read(const uint8_t* page,
                                               SlotId slot) {
  if (slot >= GetU16(page)) {
    return Status::NotFound("SlottedPage: bad slot id");
  }
  uint16_t length = SlotLength(page, slot);
  if (length == kTombstone) {
    return Status::NotFound("SlottedPage: record deleted");
  }
  uint16_t offset = SlotOffset(page, slot);
  std::vector<uint8_t> out(length);
  std::memcpy(out.data(), page + offset, length);
  return out;
}

Result<std::pair<const uint8_t*, uint16_t>> SlottedPage::ReadView(
    const uint8_t* page, SlotId slot) {
  if (slot >= GetU16(page)) {
    return Status::NotFound("SlottedPage: bad slot id");
  }
  uint16_t length = SlotLength(page, slot);
  if (length == kTombstone) {
    return Status::NotFound("SlottedPage: record deleted");
  }
  return std::make_pair(page + SlotOffset(page, slot), length);
}

Status SlottedPage::Erase(uint8_t* page, SlotId slot) {
  if (slot >= GetU16(page)) {
    return Status::NotFound("SlottedPage: bad slot id");
  }
  uint8_t* slot_entry = page + kHeaderSize + slot * kSlotSize;
  PutU16(slot_entry + 2, kTombstone);
  return Status::OK();
}

bool SlottedPage::IsLive(const uint8_t* page, SlotId slot) {
  return slot < GetU16(page) && SlotLength(page, slot) != kTombstone;
}

}  // namespace qbism::storage
