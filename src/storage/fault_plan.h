#ifndef QBISM_STORAGE_FAULT_PLAN_H_
#define QBISM_STORAGE_FAULT_PLAN_H_

#include <cstdint>

namespace qbism::storage {

/// What a fired fault does to the transfers after it.
///  - kTransient: only the matched transfer fails; the device recovers
///    immediately (a retried operation succeeds).
///  - kPersistent: once the plan fires, every later transfer fails until
///    the plan is cleared (the device died).
enum class FaultDurability { kTransient, kPersistent };

/// Deterministic, seedable description of which page transfers a
/// DiskDevice fails. A "transfer" is one ReadPages/WritePages call (a
/// single arm movement); transfer numbers are 0-based and relative to
/// the moment the plan was installed, so the same plan replayed against
/// the same access pattern fails the same operation every time — the
/// property the fault-sweep harness is built on.
struct FaultPlan {
  enum class Trigger {
    kNone,        // never fires
    kPageBudget,  // fires once a transfer would exceed the page budget
                  // (the legacy FailAfter semantics; inherently
                  // persistent because failures do not consume budget)
    kAtTransfer,  // fires on transfer #transfer_no exactly
    kEveryKth,    // fires on transfers k-1, 2k-1, ... (every k-th)
    kRandom,      // each transfer fires with probability `probability`,
                  // drawn from a deterministic stream seeded by `seed`
  };

  Trigger trigger = Trigger::kNone;
  FaultDurability durability = FaultDurability::kTransient;
  uint64_t page_budget = 0;   // kPageBudget: pages that still succeed
  uint64_t transfer_no = 0;   // kAtTransfer: 0-based transfer to fail
  uint64_t every_k = 0;       // kEveryKth: period (>= 1)
  double probability = 0.0;   // kRandom: per-transfer failure rate
  uint64_t seed = 0;          // kRandom: stream seed

  /// No faults (the default-constructed plan).
  static FaultPlan None() { return FaultPlan{}; }

  /// Legacy budget semantics: `pages` more pages transfer successfully,
  /// then every access fails until the plan is cleared. A multi-page
  /// transfer that does not fit the remaining budget fails atomically
  /// without consuming it.
  static FaultPlan FailAfterPages(uint64_t pages) {
    FaultPlan plan;
    plan.trigger = Trigger::kPageBudget;
    plan.durability = FaultDurability::kPersistent;
    plan.page_budget = pages;
    return plan;
  }

  /// Fails transfer #n (0-based, counted from installation).
  static FaultPlan FailAtTransfer(
      uint64_t n, FaultDurability durability = FaultDurability::kTransient) {
    FaultPlan plan;
    plan.trigger = Trigger::kAtTransfer;
    plan.durability = durability;
    plan.transfer_no = n;
    return plan;
  }

  /// Fails every k-th transfer (transient): transfers k-1, 2k-1, ...
  static FaultPlan FailEveryKth(uint64_t k) {
    FaultPlan plan;
    plan.trigger = Trigger::kEveryKth;
    plan.every_k = k;
    return plan;
  }

  /// Each transfer fails independently with probability `p`, from a
  /// deterministic seeded stream (transient faults — the model behind
  /// bench_fault_recovery's degradation curves).
  static FaultPlan FailRandom(double p, uint64_t seed) {
    FaultPlan plan;
    plan.trigger = Trigger::kRandom;
    plan.probability = p;
    plan.seed = seed;
    return plan;
  }
};

/// Always-on per-device transfer accounting (counted whether or not a
/// plan is installed). The sweep harness diffs these around a clean run
/// to enumerate the fault points, then around each faulted run to know
/// whether the plan actually fired.
struct FaultStats {
  uint64_t transfers = 0;        // ReadPages/WritePages calls attempted
  uint64_t pages = 0;            // pages attempted across those calls
  uint64_t faults_injected = 0;  // transfers failed by the active plan

  FaultStats operator-(const FaultStats& o) const {
    return {transfers - o.transfers, pages - o.pages,
            faults_injected - o.faults_injected};
  }
};

}  // namespace qbism::storage

#endif  // QBISM_STORAGE_FAULT_PLAN_H_
