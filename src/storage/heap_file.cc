#include "storage/heap_file.h"

#include <mutex>

#include "common/macros.h"

namespace qbism::storage {

HeapFile::HeapFile(BufferPool* pool, PageAllocator* allocator)
    : pool_(pool), allocator_(allocator) {}

Result<uint64_t> HeapFile::AppendPage(uint64_t prev_page) {
  QBISM_ASSIGN_OR_RETURN(uint64_t page_no, allocator_->Allocate());
  QBISM_ASSIGN_OR_RETURN(uint8_t* page, pool_->GetPage(page_no));
  SlottedPage::Init(page);
  QBISM_RETURN_NOT_OK(pool_->MarkDirty(page_no));
  if (prev_page != 0) {
    QBISM_ASSIGN_OR_RETURN(uint8_t* prev, pool_->GetPage(prev_page));
    SlottedPage::SetNextPage(prev, page_no);
    QBISM_RETURN_NOT_OK(pool_->MarkDirty(prev_page));
  }
  ++page_count_;
  return page_no;
}

Result<RecordId> HeapFile::Insert(const std::vector<uint8_t>& record) {
  // Hold the pool latch across the whole operation: GetPage pointers
  // stay valid only while no other thread can trigger an eviction.
  std::lock_guard<std::recursive_mutex> lock(pool_->latch());
  if (record.size() > SlottedPage::kMaxRecordSize) {
    return Status::InvalidArgument(
        "HeapFile::Insert: record exceeds page capacity; store large "
        "values as long fields");
  }
  if (first_page_ == 0) {
    QBISM_ASSIGN_OR_RETURN(first_page_, AppendPage(0));
    last_page_ = first_page_;
  }
  {
    QBISM_ASSIGN_OR_RETURN(uint8_t* page, pool_->GetPage(last_page_));
    if (SlottedPage::FreeSpace(page) >= record.size()) {
      QBISM_ASSIGN_OR_RETURN(
          SlotId slot,
          SlottedPage::Insert(page, record.data(),
                              static_cast<uint16_t>(record.size())));
      QBISM_RETURN_NOT_OK(pool_->MarkDirty(last_page_));
      return RecordId{last_page_, slot};
    }
  }
  QBISM_ASSIGN_OR_RETURN(last_page_, AppendPage(last_page_));
  QBISM_ASSIGN_OR_RETURN(uint8_t* page, pool_->GetPage(last_page_));
  QBISM_ASSIGN_OR_RETURN(
      SlotId slot, SlottedPage::Insert(page, record.data(),
                                       static_cast<uint16_t>(record.size())));
  QBISM_RETURN_NOT_OK(pool_->MarkDirty(last_page_));
  return RecordId{last_page_, slot};
}

Result<std::vector<uint8_t>> HeapFile::Read(const RecordId& rid) {
  std::lock_guard<std::recursive_mutex> lock(pool_->latch());
  QBISM_ASSIGN_OR_RETURN(uint8_t* page, pool_->GetPage(rid.page_no));
  return SlottedPage::Read(page, rid.slot);
}

Status HeapFile::Delete(const RecordId& rid) {
  std::lock_guard<std::recursive_mutex> lock(pool_->latch());
  QBISM_ASSIGN_OR_RETURN(uint8_t* page, pool_->GetPage(rid.page_no));
  QBISM_RETURN_NOT_OK(SlottedPage::Erase(page, rid.slot));
  return pool_->MarkDirty(rid.page_no);
}

Status HeapFile::Scan(
    const std::function<bool(const RecordId&, const std::vector<uint8_t>&)>&
        visit) {
  std::unique_lock<std::recursive_mutex> lock(pool_->latch());
  uint64_t page_no = first_page_;
  while (page_no != 0) {
    // Capture slot count and next pointer up front: the frame pointer
    // may be invalidated by pool activity inside the callback.
    QBISM_ASSIGN_OR_RETURN(uint8_t* page, pool_->GetPage(page_no));
    uint16_t slots = SlottedPage::SlotCount(page);
    uint64_t next = SlottedPage::NextPage(page);
    for (SlotId slot = 0; slot < slots; ++slot) {
      QBISM_ASSIGN_OR_RETURN(uint8_t* cur, pool_->GetPage(page_no));
      if (!SlottedPage::IsLive(cur, slot)) continue;
      QBISM_ASSIGN_OR_RETURN(std::vector<uint8_t> record,
                             SlottedPage::Read(cur, slot));
      // The record is copied out, so drop the pool latch for the
      // callback: the executor evaluates predicates and UDFs (long-field
      // extraction, region decode) in there, and holding the latch
      // across that would serialize every concurrent query.
      lock.unlock();
      bool keep_going = visit(RecordId{page_no, slot}, record);
      lock.lock();
      if (!keep_going) return Status::OK();
    }
    page_no = next;
  }
  return Status::OK();
}

Status HeapFile::ScanBatched(
    const std::function<bool(const std::vector<uint8_t>& bytes,
                             const std::vector<RecordRef>& records)>& visit) {
  std::vector<uint8_t> bytes;
  bytes.reserve(kPageSize);
  std::vector<RecordRef> records;
  std::unique_lock<std::recursive_mutex> lock(pool_->latch());
  uint64_t page_no = first_page_;
  while (page_no != 0) {
    QBISM_ASSIGN_OR_RETURN(uint8_t* page, pool_->GetPage(page_no));
    uint16_t slots = SlottedPage::SlotCount(page);
    uint64_t next = SlottedPage::NextPage(page);
    bytes.clear();
    records.clear();
    // The frame stays valid for the whole copy loop: the latch is held
    // and no pool call happens until the page is fully staged.
    for (SlotId slot = 0; slot < slots; ++slot) {
      if (!SlottedPage::IsLive(page, slot)) continue;
      QBISM_ASSIGN_OR_RETURN(auto view, SlottedPage::ReadView(page, slot));
      records.push_back(RecordRef{RecordId{page_no, slot},
                                  static_cast<uint32_t>(bytes.size()),
                                  view.second});
      bytes.insert(bytes.end(), view.first, view.first + view.second);
    }
    // Latch-free callback, same contract as Scan(): predicates and UDFs
    // may re-enter the pool.
    lock.unlock();
    bool keep_going = records.empty() ? true : visit(bytes, records);
    lock.lock();
    if (!keep_going) return Status::OK();
    page_no = next;
  }
  return Status::OK();
}

}  // namespace qbism::storage
