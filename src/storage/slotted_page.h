#ifndef QBISM_STORAGE_SLOTTED_PAGE_H_
#define QBISM_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk_device.h"

namespace qbism::storage {

/// Slot index within a page.
using SlotId = uint16_t;

/// Operations over a classic slotted page laid out in a 4 KB buffer.
/// Layout:
///   [u16 slot_count][u16 free_end][u64 next_page]
///   [slot 0: u16 offset, u16 length] [slot 1] ...
///   ... free space ...
///   records growing down from free_end.
/// A slot with length 0xFFFF is a tombstone. Records must fit one page.
class SlottedPage {
 public:
  static constexpr uint16_t kHeaderSize = 2 + 2 + 8;
  static constexpr uint16_t kSlotSize = 4;
  static constexpr uint16_t kTombstone = 0xFFFF;
  /// Largest record a fresh page can hold.
  static constexpr uint64_t kMaxRecordSize =
      kPageSize - kHeaderSize - kSlotSize;

  /// Formats an empty page in `page` (kPageSize bytes).
  static void Init(uint8_t* page);

  static uint16_t SlotCount(const uint8_t* page);
  static uint64_t NextPage(const uint8_t* page);
  static void SetNextPage(uint8_t* page, uint64_t next);

  /// Contiguous free bytes available for one more record (including its
  /// slot entry).
  static uint64_t FreeSpace(const uint8_t* page);

  /// Inserts a record; fails with OutOfRange when it does not fit.
  static Result<SlotId> Insert(uint8_t* page, const uint8_t* data,
                               uint16_t length);

  /// Reads a record (copy). Fails on bad slot or tombstone.
  static Result<std::vector<uint8_t>> Read(const uint8_t* page, SlotId slot);

  /// Zero-copy view of a live record's bytes. Fails on bad slot or
  /// tombstone. The pointer is valid only while the page frame stays
  /// resident (callers hold the pool latch across the access).
  static Result<std::pair<const uint8_t*, uint16_t>> ReadView(
      const uint8_t* page, SlotId slot);

  /// Tombstones a record. Space is not compacted (fine for this
  /// workload: the medical schema is append-mostly).
  static Status Erase(uint8_t* page, SlotId slot);

  /// True when the slot holds a live record.
  static bool IsLive(const uint8_t* page, SlotId slot);
};

}  // namespace qbism::storage

#endif  // QBISM_STORAGE_SLOTTED_PAGE_H_
