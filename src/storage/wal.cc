#include "storage/wal.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"
#include "common/macros.h"
#include "obs/trace.h"

namespace qbism::storage {

namespace {

constexpr uint32_t kWalMagic = 0x524C4157u;  // "WALR"
constexpr uint64_t kHeaderBytes = 4 + 4 + 4 + 1 + 8;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

WriteAheadLog::WriteAheadLog(DiskDevice* device) : device_(device) {}

uint64_t WriteAheadLog::BeginTxn() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_txn_++;
}

Status WriteAheadLog::AppendLocked(WalRecordType type, uint64_t txn_id,
                                   const std::vector<uint8_t>& payload) {
  uint64_t frame = kHeaderBytes + payload.size();
  if (log_.size() + frame > capacity_bytes()) {
    return Status::ResourceExhausted(
        "WriteAheadLog: log volume full (" + std::to_string(capacity_bytes()) +
        " bytes); cannot append");
  }
  // Body = [len][type][txn][payload]; the CRC covers exactly the body.
  std::vector<uint8_t> body;
  body.reserve(frame - 8);
  PutU32(&body, static_cast<uint32_t>(payload.size()));
  body.push_back(static_cast<uint8_t>(type));
  PutU64(&body, txn_id);
  body.insert(body.end(), payload.begin(), payload.end());
  std::vector<uint8_t> head;
  head.reserve(8);
  PutU32(&head, kWalMagic);
  PutU32(&head, Crc32(body));
  log_.insert(log_.end(), head.begin(), head.end());
  log_.insert(log_.end(), body.begin(), body.end());
  ++stats_.records;
  stats_.appended_bytes = log_.size();
  return Status::OK();
}

Status WriteAheadLog::Append(WalRecordType type, uint64_t txn_id,
                             const std::vector<uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(type, txn_id, payload);
}

Status WriteAheadLog::SyncLocked() {
  if (clean_prefix_ >= log_.size()) {
    ++stats_.syncs;
    return Status::OK();
  }
  obs::Span span(obs::Stage::kWalSync);
  uint64_t first_page = clean_prefix_ / kPageSize;
  uint64_t last_page = (log_.size() - 1) / kPageSize;
  // One transfer per page, ascending: a fault between any two pages
  // leaves a real torn tail, and a durable later page implies every
  // earlier page is durable.
  std::vector<uint8_t> page(kPageSize);
  for (uint64_t p = first_page; p <= last_page; ++p) {
    uint64_t off = p * kPageSize;
    uint64_t n = std::min<uint64_t>(kPageSize, log_.size() - off);
    std::memcpy(page.data(), log_.data() + off, n);
    if (n < kPageSize) std::memset(page.data() + n, 0, kPageSize - n);
    Status write = device_->WritePage(p, page.data());
    if (!write.ok()) {
      // Pages before p are durable; the clean prefix must not claim p.
      clean_prefix_ = std::max(clean_prefix_,
                               std::min<uint64_t>(off, log_.size()));
      stats_.durable_bytes = clean_prefix_;
      span.SetFailed();
      return write;
    }
    span.AddPages(1);
    ++stats_.pages_synced;
  }
  clean_prefix_ = log_.size();
  stats_.durable_bytes = clean_prefix_;
  ++stats_.syncs;
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncLocked();
}

Status WriteAheadLog::Commit(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t before = log_.size();
  QBISM_RETURN_NOT_OK(AppendLocked(WalRecordType::kCommit, txn_id, {}));
  Status sync = SyncLocked();
  if (!sync.ok()) {
    // Withdraw the commit record: nothing else appended since (we hold
    // the mutex), so it is exactly the log tail. Bytes of it that a
    // partial sync already flushed are stale on the device below the
    // clean prefix, so they will be overwritten by the next sync; and a
    // crash before then replays them as a torn/uncommitted tail.
    log_.resize(before);
    clean_prefix_ = std::min(clean_prefix_, before);
    stats_.appended_bytes = log_.size();
    stats_.durable_bytes = clean_prefix_;
    ++stats_.failed_commits;
    // Advisory abort so a later scan of a healthy log sees the outcome.
    (void)AppendLocked(WalRecordType::kAbort, txn_id, {});
    ++stats_.aborts;
    return sync;
  }
  ++stats_.commits;
  return Status::OK();
}

void WriteAheadLog::Abort(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  (void)AppendLocked(WalRecordType::kAbort, txn_id, {});
  ++stats_.aborts;
}

Result<WriteAheadLog::ScanResult> WriteAheadLog::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  // Read the whole device image.
  std::vector<uint8_t> image(device_->num_pages() * kPageSize);
  QBISM_RETURN_NOT_OK(device_->ReadPages(0, device_->num_pages(), image.data()));

  struct Parsed {
    WalRecord record;
    uint64_t end_offset = 0;
  };
  std::vector<Parsed> records;
  std::vector<uint64_t> commit_txns;
  ScanResult scan;
  uint64_t off = 0;
  uint64_t max_txn = 0;
  while (off + kHeaderBytes <= image.size()) {
    if (GetU32(image.data() + off) != kWalMagic) break;
    uint32_t crc = GetU32(image.data() + off + 4);
    uint32_t payload_len = GetU32(image.data() + off + 8);
    uint64_t frame = kHeaderBytes + payload_len;
    if (off + frame > image.size()) {
      scan.torn_tail = true;
      break;
    }
    // CRC over [len][type][txn][payload].
    if (Crc32(image.data() + off + 8, frame - 8) != crc) {
      scan.torn_tail = true;
      break;
    }
    Parsed p;
    p.record.type = static_cast<WalRecordType>(image[off + 12]);
    p.record.txn_id = GetU64(image.data() + off + 13);
    p.record.payload.assign(image.begin() + static_cast<long>(off + kHeaderBytes),
                            image.begin() + static_cast<long>(off + frame));
    p.end_offset = off + frame;
    max_txn = std::max(max_txn, p.record.txn_id);
    if (p.record.type == WalRecordType::kCommit) {
      commit_txns.push_back(p.record.txn_id);
    }
    records.push_back(std::move(p));
    ++scan.total_records;
    off += frame;
  }

  // Second pass: keep the records of committed transactions, in log
  // order, and find the end of the last committed transaction.
  scan.committed_txns = commit_txns.size();
  auto committed = [&](uint64_t txn) {
    return std::find(commit_txns.begin(), commit_txns.end(), txn) !=
           commit_txns.end();
  };
  for (const Parsed& p : records) {
    if (!committed(p.record.txn_id)) continue;
    if (p.record.type == WalRecordType::kCommit) scan.valid_bytes = p.end_offset;
    if (p.record.type == WalRecordType::kCommit ||
        p.record.type == WalRecordType::kAbort) {
      continue;
    }
    scan.committed.push_back(p.record);
  }

  // Adopt the surviving committed prefix; appends resume after it (any
  // uncommitted tail is overwritten).
  log_.assign(image.begin(), image.begin() + static_cast<long>(scan.valid_bytes));
  clean_prefix_ = scan.valid_bytes;
  next_txn_ = max_txn + 1;
  stats_.appended_bytes = log_.size();
  stats_.durable_bytes = clean_prefix_;
  return scan;
}

WriteAheadLog::Stats WriteAheadLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace qbism::storage
