#ifndef QBISM_STORAGE_BUDDY_ALLOCATOR_H_
#define QBISM_STORAGE_BUDDY_ALLOCATOR_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace qbism::storage {

/// Classic binary buddy allocator over a page range. The Starburst LFM
/// used buddy allocation "to promote contiguity" (§5.1): a long field
/// occupies one power-of-two extent of consecutive pages, so a 2 MB
/// VOLUME is one 512-page sequential read. Offsets and sizes are in
/// pages.
class BuddyAllocator {
 public:
  /// Manages pages [0, num_pages); num_pages must be a power of two.
  explicit BuddyAllocator(uint64_t num_pages);

  /// Allocates the smallest power-of-two extent holding `num_pages`
  /// pages and returns its first page.
  Result<uint64_t> Allocate(uint64_t num_pages);

  /// Frees an extent previously returned by Allocate for exactly
  /// `num_pages` pages (the allocator re-derives the rounded order).
  Status Free(uint64_t start_page, uint64_t num_pages);

  /// Marks the rounded extent for `num_pages` pages at exactly
  /// `start_page` as allocated. WAL replay uses this to re-install
  /// extents at their logged positions; `start_page` must be aligned to
  /// the rounded extent (Allocate only ever returns aligned extents)
  /// and the extent must currently be free.
  Status Reserve(uint64_t start_page, uint64_t num_pages);

  /// Pages currently allocated (sum of rounded extents).
  uint64_t allocated_pages() const { return allocated_pages_; }
  /// Pages currently on the free lists.
  uint64_t free_pages() const;
  uint64_t total_pages() const { return total_pages_; }

  /// Structural self-check used by the fault-sweep harness: every free
  /// block aligned to its order and inside the device, no two free
  /// blocks overlapping, no block beside its free buddy (coalescing
  /// left nothing behind), and free + allocated == total. Returns
  /// Corruption describing the first violation.
  Status CheckInvariants() const;

  /// Rounded extent size for a request (power of two >= num_pages).
  static uint64_t ExtentPages(uint64_t num_pages);

 private:
  int OrderFor(uint64_t num_pages) const;

  uint64_t total_pages_;
  int max_order_;
  // free_lists_[k] holds start pages of free blocks of 2^k pages, kept
  // sorted so allocation is deterministic and low-addressed first.
  std::vector<std::set<uint64_t>> free_lists_;
  uint64_t allocated_pages_ = 0;
};

}  // namespace qbism::storage

#endif  // QBISM_STORAGE_BUDDY_ALLOCATOR_H_
