#include "storage/epoch.h"

#include <vector>

namespace qbism::storage {

namespace {

struct PinEntry {
  const EpochManager* manager = nullptr;
  uint64_t epoch = 0;
};

/// The calling thread's snapshot stack. Scanned backwards so the
/// innermost snapshot for a manager wins; entries for distinct managers
/// (tests running several databases on one thread) coexist.
std::vector<PinEntry>& ThreadPins() {
  thread_local std::vector<PinEntry> pins;
  return pins;
}

}  // namespace

uint64_t EpochManager::Advance() {
  return current_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

uint64_t EpochManager::EnterReader() {
  uint64_t epoch = current();
  std::lock_guard<std::mutex> lock(mu_);
  ++active_[epoch];
  return epoch;
}

void EpochManager::ExitReader(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(epoch);
  if (it == active_.end()) return;  // tolerated: unmatched exit
  if (--it->second == 0) active_.erase(it);
}

uint64_t EpochManager::MinActiveReader() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_.empty()) return current();
  return active_.begin()->first;
}

size_t EpochManager::active_readers() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [epoch, count] : active_) total += count;
  return total;
}

uint64_t EpochManager::PinnedEpoch(const EpochManager* manager) {
  const std::vector<PinEntry>& pins = ThreadPins();
  for (auto it = pins.rbegin(); it != pins.rend(); ++it) {
    if (it->manager == manager) return it->epoch;
  }
  return 0;
}

ReadSnapshot::ReadSnapshot(EpochManager* manager) : manager_(manager) {
  if (manager_ == nullptr) return;
  epoch_ = manager_->EnterReader();
  owns_pin_ = true;
  ThreadPins().push_back(PinEntry{manager_, epoch_});
}

ReadSnapshot::ReadSnapshot(EpochManager* manager, uint64_t adopted_epoch)
    : manager_(manager), epoch_(adopted_epoch) {
  if (manager_ == nullptr || adopted_epoch == 0) {
    manager_ = nullptr;
    epoch_ = 0;
    return;
  }
  ThreadPins().push_back(PinEntry{manager_, epoch_});
}

ReadSnapshot::~ReadSnapshot() {
  if (manager_ == nullptr) return;
  // Snapshots are scoped, so ours is the innermost entry for manager_.
  std::vector<PinEntry>& pins = ThreadPins();
  for (auto it = pins.rbegin(); it != pins.rend(); ++it) {
    if (it->manager == manager_ && it->epoch == epoch_) {
      pins.erase(std::next(it).base());
      break;
    }
  }
  if (owns_pin_) manager_->ExitReader(epoch_);
}

}  // namespace qbism::storage
