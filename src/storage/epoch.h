#ifndef QBISM_STORAGE_EPOCH_H_
#define QBISM_STORAGE_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>

namespace qbism::storage {

/// No-blocking snapshot visibility for the write path (docs/
/// DURABILITY.md): the system moves through a sequence of epochs, and
/// every committed mutation is stamped with the epoch in which it
/// became visible. A reader pins the current epoch for the duration of
/// a query and resolves versioned state as of that epoch, so an ingest
/// committing halfway through the query can neither block it nor tear
/// it. The commit protocol is:
///
///   1. apply the staged changes stamped `current() + 1` (invisible to
///      every pinned reader, which all hold epochs <= current()), then
///   2. Advance(), making them visible to readers that pin afterwards.
///
/// Vacuum uses MinActiveReader() as the reclamation horizon: a version
/// dropped at epoch E can be freed once every active reader's pinned
/// epoch is >= E (readers pinning later start at >= E by construction).
///
/// Thread-safe. Pins are tracked per epoch under a small mutex — one
/// lock acquisition per query, not per page.
class EpochManager {
 public:
  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// The newest visible epoch.
  uint64_t current() const { return current_.load(std::memory_order_acquire); }

  /// Publishes the next epoch (call after applying its changes).
  /// Returns the new current epoch.
  uint64_t Advance();

  /// Pins the current epoch for the calling reader; returns it.
  uint64_t EnterReader();
  /// Releases a pin taken by EnterReader.
  void ExitReader(uint64_t epoch);

  /// The oldest pinned epoch, or current() when no reader is active —
  /// the vacuum horizon.
  uint64_t MinActiveReader() const;
  size_t active_readers() const;

  /// The epoch the calling thread reads as of under `manager`, or 0
  /// when the thread holds no snapshot (0 = "latest committed").
  /// Installed by ReadSnapshot; nested snapshots stack.
  static uint64_t PinnedEpoch(const EpochManager* manager);

 private:
  friend class ReadSnapshot;

  std::atomic<uint64_t> current_{1};
  mutable std::mutex mu_;
  std::map<uint64_t, uint64_t> active_;  // epoch -> pin count; mu_
};

/// RAII reader snapshot: pins the manager's current epoch and installs
/// it as the calling thread's view, so every versioned lookup below
/// (LongFieldManager) resolves against one consistent epoch until the
/// snapshot is destroyed. A null manager makes it a no-op, which keeps
/// call sites unconditional.
///
/// The adopting constructor installs an epoch pinned by *another*
/// thread without taking a new pin: a donated helper running a shard of
/// the owner's query adopts the owner's epoch, relying on the owner's
/// snapshot outliving the helper's work (the owner blocks on its
/// shards).
class ReadSnapshot {
 public:
  explicit ReadSnapshot(EpochManager* manager);
  ReadSnapshot(EpochManager* manager, uint64_t adopted_epoch);
  ~ReadSnapshot();

  ReadSnapshot(const ReadSnapshot&) = delete;
  ReadSnapshot& operator=(const ReadSnapshot&) = delete;

  /// The pinned epoch (0 for a no-op snapshot).
  uint64_t epoch() const { return epoch_; }

 private:
  EpochManager* manager_ = nullptr;
  uint64_t epoch_ = 0;
  bool owns_pin_ = false;
};

}  // namespace qbism::storage

#endif  // QBISM_STORAGE_EPOCH_H_
