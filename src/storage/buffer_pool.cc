#include "storage/buffer_pool.h"

#include "common/macros.h"

namespace qbism::storage {

BufferPool::BufferPool(DiskDevice* device, size_t capacity_pages)
    : device_(device), capacity_(capacity_pages) {
  QBISM_CHECK(capacity_ >= 1);
}

Result<uint8_t*> BufferPool::GetPage(uint64_t page_no) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = index_.find(page_no);
  if (it != index_.end()) {
    ++hits_;
    frames_.splice(frames_.begin(), frames_, it->second);
    return frames_.front().data.data();
  }
  ++misses_;
  if (frames_.size() >= capacity_) {
    QBISM_RETURN_NOT_OK(Evict());
  }
  Frame frame;
  frame.page_no = page_no;
  frame.data.resize(kPageSize);
  QBISM_RETURN_NOT_OK(device_->ReadPage(page_no, frame.data.data()));
  frames_.push_front(std::move(frame));
  index_[page_no] = frames_.begin();
  return frames_.front().data.data();
}

Status BufferPool::MarkDirty(uint64_t page_no) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = index_.find(page_no);
  if (it == index_.end()) {
    return Status::NotFound("BufferPool::MarkDirty: page not resident");
  }
  it->second->dirty = true;
  return Status::OK();
}

Status BufferPool::Evict() {
  QBISM_CHECK(!frames_.empty());
  Frame& victim = frames_.back();
  if (victim.dirty) {
    QBISM_RETURN_NOT_OK(device_->WritePage(victim.page_no, victim.data.data()));
  }
  index_.erase(victim.page_no);
  frames_.pop_back();
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (Frame& frame : frames_) {
    if (frame.dirty) {
      QBISM_RETURN_NOT_OK(device_->WritePage(frame.page_no, frame.data.data()));
      frame.dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace qbism::storage
