#ifndef QBISM_STORAGE_BUFFER_POOL_H_
#define QBISM_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk_device.h"

namespace qbism::storage {

/// LRU buffer pool over a DiskDevice for the relational (heap-file)
/// data. The paper keeps relational tables in a buffered file system
/// while long fields bypass buffering (LFM); mirroring that split lets
/// the benches attribute I/O the same way Table 3 does.
///
/// Concurrency: GetPage hands out a pointer into the LRU frame list, so
/// callers that may race with other threads (heap files, B+-trees under
/// the concurrent query service) must hold `latch()` from the GetPage
/// call until the last use of the pointer — otherwise another thread's
/// miss could evict the frame mid-read. The latch is recursive because
/// index backfill scans a heap file while inserting into a B+-tree on
/// the same pool.
class BufferPool {
 public:
  BufferPool(DiskDevice* device, size_t capacity_pages);

  /// Pool-wide latch; see class comment for the locking protocol.
  std::recursive_mutex& latch() const { return mu_; }

  /// Returns the in-pool frame for a page, reading it on a miss. The
  /// pointer stays valid until the page is evicted; callers use it
  /// immediately and do not retain it across other pool calls.
  Result<uint8_t*> GetPage(uint64_t page_no);

  /// Marks a page dirty so eviction/flush writes it back.
  Status MarkDirty(uint64_t page_no);

  /// Writes all dirty pages back to the device.
  Status FlushAll();

  uint64_t hits() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return misses_;
  }

 private:
  struct Frame {
    uint64_t page_no = 0;
    bool dirty = false;
    std::vector<uint8_t> data;
  };

  Status Evict();

  DiskDevice* device_;
  size_t capacity_;
  mutable std::recursive_mutex mu_;
  // LRU list: front = most recently used. All below guarded by mu_.
  std::list<Frame> frames_;
  std::unordered_map<uint64_t, std::list<Frame>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace qbism::storage

#endif  // QBISM_STORAGE_BUFFER_POOL_H_
