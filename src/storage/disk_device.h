#ifndef QBISM_STORAGE_DISK_DEVICE_H_
#define QBISM_STORAGE_DISK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "storage/fault_plan.h"

namespace qbism::storage {

/// Page size used throughout the storage layer. The paper reports LFM
/// disk I/Os in 4 KB pages (Tables 3 and 4).
inline constexpr uint64_t kPageSize = 4096;

/// Deterministic service-time model for the simulated disk, calibrated
/// to early-90s hardware (the paper's RS/6000 had ~12 ms average
/// positioning time and ~2 MB/s sustained transfer). A page access pays
/// the seek cost only when it does not immediately follow the previous
/// access ("sequential" pages pay transfer only).
struct DiskCostModel {
  double seek_seconds = 0.012;
  double transfer_seconds_per_page = 0.002;
};

/// Cumulative I/O accounting. `simulated_seconds` is the deterministic
/// model time; it stands in for the paper's real-time I/O wait.
struct IoStats {
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  uint64_t seeks = 0;
  double simulated_seconds = 0.0;

  IoStats operator-(const IoStats& o) const {
    return {pages_read - o.pages_read, pages_written - o.pages_written,
            seeks - o.seeks, simulated_seconds - o.simulated_seconds};
  }
};

/// One operation of a scatter-gather read: `count` consecutive pages
/// starting at `page_no`, delivered to `out` (count * kPageSize bytes).
struct PageReadOp {
  uint64_t page_no = 0;
  uint64_t count = 0;
  uint8_t* out = nullptr;
};

/// An in-memory simulated raw disk device with page-granular access,
/// exact I/O counting, and a deterministic cost model. Stands in for the
/// AIX logical volume the Starburst LFM wrote to (§5.1): storage is
/// page-addressed, unbuffered, and every access is charged.
///
/// Thread-safe. Accounting (stats, cost model, fault plan) is
/// serialized on a small internal mutex, but the page *copies* run
/// under a reader-writer lock: concurrent reads of the (immutable
/// during a read) backing store proceed in parallel, so a parallel
/// extraction moves bytes at memory bandwidth instead of convoying on
/// one latch; writes remain exclusive and atomic. Besides the
/// device-wide stats, every transfer is also accumulated into a
/// per-calling-thread ledger so a worker in the concurrent query
/// service can compute exact per-request I/O deltas on a shared device.
class DiskDevice {
 public:
  DiskDevice(uint64_t num_pages, DiskCostModel model = DiskCostModel{});

  uint64_t num_pages() const { return num_pages_; }

  /// Reads one page into `out` (kPageSize bytes).
  Status ReadPage(uint64_t page_no, uint8_t* out);

  /// Writes one page from `in` (kPageSize bytes).
  Status WritePage(uint64_t page_no, const uint8_t* in);

  /// Reads `count` consecutive pages starting at `page_no`.
  Status ReadPages(uint64_t page_no, uint64_t count, uint8_t* out);

  /// Writes `count` consecutive pages.
  Status WritePages(uint64_t page_no, uint64_t count, const uint8_t* in);

  /// Scatter-gather read: performs every op of a planned read in order,
  /// each op one transfer (one arm movement) for accounting and the
  /// fault plan, with the copies of all ops sharing one reader hold on
  /// the store. Ops are validated against the device bounds before any
  /// transfer happens. On an injected fault the batch stops at the
  /// faulting op and returns its IOError: earlier ops have transferred
  /// and are charged, the faulting and later ops are not — exactly the
  /// accounting a mid-batch media error leaves behind.
  Status ReadPagesBatch(const std::vector<PageReadOp>& ops);

  /// Device-wide cumulative stats (all threads).
  IoStats stats() const;
  void ResetStats();

  /// I/O performed by the calling thread on this device since its last
  /// ResetThreadStats(). Exact even when other threads are driving the
  /// device concurrently.
  IoStats thread_stats() const;
  void ResetThreadStats();

  /// Folds `delta` into the calling thread's ledger. Intra-query
  /// parallelism uses this to re-attribute transfers performed by
  /// donated helper threads to the thread that owns the query, keeping
  /// per-request I/O deltas exact (device-wide stats are unaffected —
  /// the helpers' transfers are already in them).
  void AddToThreadLedger(const IoStats& delta);

  /// Installs a deterministic fault plan (replacing any previous one).
  /// Transfer numbering for kAtTransfer/kEveryKth and the kRandom
  /// stream restart at this call, so an identical access pattern fails
  /// identically on every replay.
  void InstallFaultPlan(const FaultPlan& plan);

  /// Removes the active fault plan; subsequent transfers succeed.
  void ClearFault();

  /// Legacy shorthand for FaultPlan::FailAfterPages: after `page_ops`
  /// more pages transfer, every access fails with IOError until
  /// ClearFault() is called.
  void FailAfter(uint64_t page_ops) {
    InstallFaultPlan(FaultPlan::FailAfterPages(page_ops));
  }

  /// When > 0, every transfer additionally sleeps `scale` times its
  /// modeled service time on the calling thread, realizing the
  /// deterministic cost model as wall-clock I/O wait. Benchmarks use
  /// this to measure how well parallel extraction overlaps I/O waits on
  /// any host (including single-core machines, where CPU cannot scale);
  /// leave at the default 0 everywhere else — accounting, fault
  /// injection, and results are unaffected either way.
  void set_realize_scale(double scale) {
    realize_scale_.store(scale, std::memory_order_relaxed);
  }

  /// Cumulative transfer/fault counters (counted with or without an
  /// active plan; never reset by InstallFaultPlan or ClearFault).
  FaultStats fault_stats() const;
  void ResetFaultStats();

  /// Crash-simulation support: snapshot / replace the raw backing
  /// store, bypassing all accounting, cost charging, and fault plans.
  /// The crash-recovery harness clones a device's bytes at the "crash"
  /// point and restores them into a freshly constructed database, which
  /// models exactly what a power failure preserves — the platters, not
  /// the process. RestoreContents requires a byte-for-byte size match.
  std::vector<uint8_t> CloneContents() const;
  Status RestoreContents(const std::vector<uint8_t>& contents);

 private:
  /// Returns the simulated seconds charged for this transfer.
  double Charge(uint64_t page_no, uint64_t count, bool write);
  /// Counts the transfer and applies the active fault plan. Caller
  /// holds mu_. Returns the injected IOError when the plan fires.
  Status InjectFault(uint64_t count);
  /// Accounts one transfer (fault check + charge) under mu_. The data
  /// lock is taken by the caller around the actual copy.
  Status AccountTransfer(uint64_t page_no, uint64_t count, bool write);

  uint64_t num_pages_;
  DiskCostModel model_;
  std::atomic<double> realize_scale_{0.0};
  /// Guards the backing store only: shared for reads, exclusive for
  /// writes. Always acquired before mu_ (never the other way around).
  mutable std::shared_mutex data_mu_;
  std::vector<uint8_t> bytes_;  // guarded by data_mu_
  uint64_t device_id_;
  mutable std::mutex mu_;
  IoStats stats_;                               // guarded by mu_
  uint64_t next_sequential_page_ = UINT64_MAX;  // head position; mu_
  FaultPlan plan_;                              // mu_
  FaultStats fault_stats_;                      // mu_
  uint64_t plan_transfers_ = 0;  // transfers since plan install; mu_
  uint64_t fail_budget_ = 0;     // kPageBudget remaining pages; mu_
  bool fault_latched_ = false;   // persistent plan has fired; mu_
  Rng fault_rng_{0};             // kRandom stream; mu_
};

}  // namespace qbism::storage

#endif  // QBISM_STORAGE_DISK_DEVICE_H_
