#include "storage/long_field.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "common/crc32.h"
#include "common/macros.h"
#include "obs/trace.h"

namespace qbism::storage {

namespace {

uint64_t PagesFor(uint64_t size_bytes) {
  return std::max<uint64_t>(1, (size_bytes + kPageSize - 1) / kPageSize);
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

/// kLfmSet payload: {id, start_page, page_count, size_bytes, crc}.
std::vector<uint8_t> EncodeSetPayload(uint64_t id, uint64_t start_page,
                                      uint64_t page_count, uint64_t size_bytes,
                                      uint32_t content_crc) {
  std::vector<uint8_t> payload;
  payload.reserve(8 * 4 + 4);
  PutU64(&payload, id);
  PutU64(&payload, start_page);
  PutU64(&payload, page_count);
  PutU64(&payload, size_bytes);
  PutU32(&payload, content_crc);
  return payload;
}

std::vector<uint8_t> EncodeDropPayload(uint64_t id) {
  std::vector<uint8_t> payload;
  payload.reserve(8);
  PutU64(&payload, id);
  return payload;
}

}  // namespace

LongFieldManager::LongFieldManager(DiskDevice* device, LfmDurabilityHooks hooks)
    : device_(device),
      wal_(hooks.wal),
      epochs_(hooks.epochs),
      allocator_(device->num_pages()) {}

Result<const LongFieldManager::Entry*> LongFieldManager::Lookup(
    LongFieldId id) const {
  auto it = directory_.find(id.value);
  if (it != directory_.end()) {
    uint64_t epoch = epochs_ ? EpochManager::PinnedEpoch(epochs_) : 0;
    const std::vector<Entry>& versions = it->second;
    for (auto rit = versions.rbegin(); rit != versions.rend(); ++rit) {
      if (epoch == 0) {
        // No snapshot: the latest committed live version.
        if (rit->dropped_epoch == kLive) return &*rit;
      } else if (rit->created_epoch <= epoch && epoch < rit->dropped_epoch) {
        return &*rit;
      }
    }
  }
  return Status::NotFound("LongFieldManager: unknown long field id");
}

LongFieldManager::Entry* LongFieldManager::LatestLiveLocked(uint64_t id) {
  auto it = directory_.find(id);
  if (it == directory_.end()) return nullptr;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (rit->dropped_epoch == kLive) return &*rit;
  }
  return nullptr;
}

const LongFieldManager::Entry* LongFieldManager::LatestLiveLocked(
    uint64_t id) const {
  return const_cast<LongFieldManager*>(this)->LatestLiveLocked(id);
}

Status LongFieldManager::WritePadded(uint64_t start, uint64_t pages,
                                     const std::vector<uint8_t>& bytes) {
  // Write full pages; the tail page is zero-padded.
  std::vector<uint8_t> padded(pages * kPageSize, 0);
  if (!bytes.empty()) {
    std::memcpy(padded.data(), bytes.data(), bytes.size());
  }
  return device_->WritePages(start, pages, padded.data());
}

void LongFieldManager::ApplyOpLocked(const StagedOp& op, uint64_t epoch) {
  Entry* old = LatestLiveLocked(op.id);
  if (old != nullptr) {
    old->dropped_epoch = epoch;
    dead_.push_back(DeadExtent{op.id, old->start_page, epoch});
  }
  if (op.kind == StagedOp::kSet) {
    Entry entry;
    entry.start_page = op.start_page;
    entry.size_bytes = op.size_bytes;
    entry.created_epoch = epoch;
    directory_[op.id].push_back(entry);
  }
}

Status LongFieldManager::LogAndPublish(WalRecordType type,
                                       const std::vector<uint8_t>& payload,
                                       const StagedOp& op) {
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  uint64_t txn = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    txn = open_txn_;
  }
  if (txn != 0) {
    // Join the open transaction: log now, publish at CommitTxn.
    QBISM_RETURN_NOT_OK(wal_->Append(type, txn, payload));
    std::unique_lock<std::shared_mutex> lock(mu_);
    staged_.push_back(op);
    return Status::OK();
  }
  // Auto-commit: this single mutation is its own transaction.
  txn = wal_->BeginTxn();
  QBISM_RETURN_NOT_OK(wal_->Append(type, txn, payload));
  QBISM_RETURN_NOT_OK(wal_->Commit(txn));
  // Durable; publish as the next epoch (stamped before Advance so a
  // reader pinned now cannot see it, and one pinned after sees all of
  // it — see EpochManager's commit protocol).
  uint64_t next_epoch = epochs_ ? epochs_->current() + 1 : 0;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    ApplyOpLocked(op, next_epoch);
  }
  if (epochs_ != nullptr) epochs_->Advance();
  return Status::OK();
}

Result<LongFieldId> LongFieldManager::Create(
    const std::vector<uint8_t>& bytes) {
  uint64_t pages = PagesFor(bytes.size());
  uint64_t start = 0;
  uint64_t id = 0;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    QBISM_ASSIGN_OR_RETURN(start, allocator_.Allocate(pages));
    id = next_id_++;
  }
  // The extent is private until published, so the data write happens
  // outside the directory lock: readers never block on it.
  Status write = WritePadded(start, pages, bytes);
  if (!write.ok()) {
    // The field never existed: hand its extent back so a failed write
    // cannot leak pages.
    std::unique_lock<std::shared_mutex> lock(mu_);
    QBISM_RETURN_NOT_OK(allocator_.Free(start, pages));
    return write;
  }
  if (wal_ == nullptr) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    Entry entry;
    entry.start_page = start;
    entry.size_bytes = bytes.size();
    directory_[id].push_back(entry);
    return LongFieldId{id};
  }
  StagedOp op;
  op.kind = StagedOp::kSet;
  op.id = id;
  op.start_page = start;
  op.size_bytes = bytes.size();
  Status logged = LogAndPublish(
      WalRecordType::kLfmSet,
      EncodeSetPayload(id, start, pages, bytes.size(), Crc32(bytes)), op);
  if (!logged.ok()) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    QBISM_RETURN_NOT_OK(allocator_.Free(start, pages));
    return logged;
  }
  return LongFieldId{id};
}

Result<uint64_t> LongFieldManager::Size(LongFieldId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  QBISM_ASSIGN_OR_RETURN(const Entry* entry, Lookup(id));
  return entry->size_bytes;
}

Result<std::vector<uint8_t>> LongFieldManager::Read(LongFieldId id) const {
  uint64_t size = 0;
  {
    // ReadRange re-acquires the shared lock; shared_mutex is not
    // recursive, so fetch the size in its own critical section.
    std::shared_lock<std::shared_mutex> lock(mu_);
    QBISM_ASSIGN_OR_RETURN(const Entry* entry, Lookup(id));
    size = entry->size_bytes;
  }
  return ReadRange(id, 0, size);
}

Result<std::vector<uint8_t>> LongFieldManager::ReadRange(
    LongFieldId id, uint64_t offset, uint64_t length) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  QBISM_ASSIGN_OR_RETURN(const Entry* entry, Lookup(id));
  // Overflow-safe form of `offset + length > size`: a huge offset must
  // not wrap around and pass the check.
  if (offset > entry->size_bytes || length > entry->size_bytes - offset) {
    return Status::OutOfRange("LongFieldManager::ReadRange: past field end");
  }
  if (length == 0) return std::vector<uint8_t>{};
  uint64_t first_page = offset / kPageSize;
  uint64_t last_page = (offset + length - 1) / kPageSize;
  uint64_t count = last_page - first_page + 1;
  obs::Span span(obs::Stage::kIo);
  span.AddPages(count);
  span.AddBytes(length);
  std::vector<uint8_t> pages(count * kPageSize);
  QBISM_RETURN_NOT_OK(
      device_->ReadPages(entry->start_page + first_page, count, pages.data()));
  std::vector<uint8_t> out(length);
  std::memcpy(out.data(), pages.data() + (offset - first_page * kPageSize),
              length);
  return out;
}

Result<std::vector<std::vector<uint8_t>>> LongFieldManager::ReadRanges(
    LongFieldId id, const std::vector<ByteRange>& ranges) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  QBISM_ASSIGN_OR_RETURN(const Entry* entry, Lookup(id));
  for (const ByteRange& r : ranges) {
    if (r.offset > entry->size_bytes ||
        r.length > entry->size_bytes - r.offset) {
      return Status::OutOfRange("LongFieldManager::ReadRanges: past field end");
    }
  }
  // Distinct pages touched by any range, ascending.
  std::vector<uint64_t> pages;
  for (const ByteRange& r : ranges) {
    if (r.length == 0) continue;
    uint64_t first = r.offset / kPageSize;
    uint64_t last = (r.offset + r.length - 1) / kPageSize;
    for (uint64_t p = first; p <= last; ++p) pages.push_back(p);
  }
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());

  obs::Span span(obs::Stage::kIo);
  span.AddPages(pages.size());

  // Read runs of consecutive pages as single sequential transfers.
  std::unordered_map<uint64_t, std::vector<uint8_t>> cache;
  size_t i = 0;
  while (i < pages.size()) {
    size_t j = i;
    while (j + 1 < pages.size() && pages[j + 1] == pages[j] + 1) ++j;
    uint64_t count = pages[j] - pages[i] + 1;
    std::vector<uint8_t> buf(count * kPageSize);
    QBISM_RETURN_NOT_OK(
        device_->ReadPages(entry->start_page + pages[i], count, buf.data()));
    for (uint64_t k = 0; k < count; ++k) {
      std::vector<uint8_t> page(kPageSize);
      std::memcpy(page.data(), buf.data() + k * kPageSize, kPageSize);
      cache[pages[i] + k] = std::move(page);
    }
    i = j + 1;
  }

  // Assemble each requested range from the page cache.
  std::vector<std::vector<uint8_t>> out;
  out.reserve(ranges.size());
  for (const ByteRange& r : ranges) {
    span.AddBytes(r.length);
    std::vector<uint8_t> buf(r.length);
    uint64_t copied = 0;
    while (copied < r.length) {
      uint64_t pos = r.offset + copied;
      uint64_t page = pos / kPageSize;
      uint64_t in_page = pos % kPageSize;
      uint64_t n = std::min(kPageSize - in_page, r.length - copied);
      std::memcpy(buf.data() + copied, cache.at(page).data() + in_page, n);
      copied += n;
    }
    out.push_back(std::move(buf));
  }
  return out;
}

Result<ReadPlan> LongFieldManager::BuildReadPlan(
    const std::vector<ByteRange>& ranges, uint64_t field_size_bytes,
    const ReadPlanOptions& options) {
  ReadPlan plan;
  // Page intervals (inclusive) per non-empty range, validated the same
  // overflow-safe way as ReadRange.
  std::vector<std::pair<uint64_t, uint64_t>> intervals;
  intervals.reserve(ranges.size());
  for (const ByteRange& r : ranges) {
    if (r.offset > field_size_bytes ||
        r.length > field_size_bytes - r.offset) {
      return Status::OutOfRange("LongFieldManager::BuildReadPlan: past field end");
    }
    if (r.length == 0) continue;
    intervals.emplace_back(r.offset / kPageSize,
                           (r.offset + r.length - 1) / kPageSize);
    plan.bytes_needed += r.length;
  }
  if (intervals.empty()) return plan;
  std::sort(intervals.begin(), intervals.end());

  // One ascending sweep produces both accountings: distinct pages
  // (merging only overlap/adjacency) and the physical extents (merging
  // across gaps of up to gap_fill_pages as well).
  uint64_t touch_first = intervals[0].first;
  uint64_t touch_last = intervals[0].second;
  PlannedExtent extent{intervals[0].first,
                       intervals[0].second - intervals[0].first + 1};
  for (size_t i = 1; i < intervals.size(); ++i) {
    auto [first, last] = intervals[i];
    if (first <= touch_last + 1) {
      touch_last = std::max(touch_last, last);
    } else {
      plan.pages_touched += touch_last - touch_first + 1;
      touch_first = first;
      touch_last = last;
    }
    uint64_t extent_end = extent.first_page + extent.page_count - 1;
    if (first <= extent_end + 1 + options.gap_fill_pages) {
      if (last > extent_end) {
        extent.page_count = last - extent.first_page + 1;
      }
    } else {
      plan.pages_read += extent.page_count;
      plan.extents.push_back(extent);
      extent = PlannedExtent{first, last - first + 1};
    }
  }
  plan.pages_touched += touch_last - touch_first + 1;
  plan.pages_read += extent.page_count;
  plan.extents.push_back(extent);
  return plan;
}

Result<ReadPlan> LongFieldManager::PlanRead(
    LongFieldId id, const std::vector<ByteRange>& ranges,
    const ReadPlanOptions& options) const {
  obs::Span span(obs::Stage::kPlan);
  std::shared_lock<std::shared_mutex> lock(mu_);
  QBISM_ASSIGN_OR_RETURN(const Entry* entry, Lookup(id));
  return BuildReadPlan(ranges, entry->size_bytes, options);
}

Status LongFieldManager::ReadExtents(LongFieldId id,
                                     const std::vector<PlannedExtent>& extents,
                                     const std::vector<uint8_t*>& outs) const {
  if (extents.size() != outs.size()) {
    return Status::InvalidArgument(
        "LongFieldManager::ReadExtents: extents/outs size mismatch");
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  QBISM_ASSIGN_OR_RETURN(const Entry* entry, Lookup(id));
  uint64_t field_pages = entry->PageCount();
  obs::Span span(obs::Stage::kIo);
  std::vector<storage::PageReadOp> ops;
  ops.reserve(extents.size());
  for (size_t i = 0; i < extents.size(); ++i) {
    const PlannedExtent& e = extents[i];
    if (e.first_page > field_pages || e.page_count > field_pages - e.first_page) {
      return Status::OutOfRange(
          "LongFieldManager::ReadExtents: extent past field end");
    }
    span.AddPages(e.page_count);
    span.AddBytes(e.ByteCount());
    ops.push_back(PageReadOp{entry->start_page + e.first_page, e.page_count,
                             outs[i]});
  }
  Status status = device_->ReadPagesBatch(ops);
  if (!status.ok()) span.SetFailed();
  return status;
}

Result<uint64_t> LongFieldManager::PagesTouched(
    LongFieldId id, const std::vector<ByteRange>& ranges) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  QBISM_ASSIGN_OR_RETURN(const Entry* entry, Lookup(id));
  (void)entry;
  std::vector<uint64_t> pages;
  for (const ByteRange& r : ranges) {
    if (r.length == 0) continue;
    uint64_t first = r.offset / kPageSize;
    uint64_t last = (r.offset + r.length - 1) / kPageSize;
    for (uint64_t p = first; p <= last; ++p) pages.push_back(p);
  }
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  return pages.size();
}

Status LongFieldManager::Update(LongFieldId id,
                                const std::vector<uint8_t>& bytes) {
  if (wal_ == nullptr) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    Entry* entry = LatestLiveLocked(id.value);
    if (entry == nullptr) {
      return Status::NotFound("LongFieldManager::Update: unknown id");
    }
    uint64_t new_pages = PagesFor(bytes.size());
    std::vector<uint8_t> padded(new_pages * kPageSize, 0);
    if (!bytes.empty()) {
      std::memcpy(padded.data(), bytes.data(), bytes.size());
    }
    if (BuddyAllocator::ExtentPages(new_pages) ==
        BuddyAllocator::ExtentPages(std::max<uint64_t>(1, entry->PageCount()))) {
      // Fits in place. On a write fault the device performed nothing (the
      // simulated transfer is atomic), so the entry stays as it was.
      QBISM_RETURN_NOT_OK(
          device_->WritePages(entry->start_page, new_pages, padded.data()));
      entry->size_bytes = bytes.size();
      return Status::OK();
    }
    // Reallocate: write the new extent first and only then free the old
    // one, so a failed write neither leaks the new pages nor leaves the
    // directory pointing at a freed extent.
    QBISM_ASSIGN_OR_RETURN(uint64_t start, allocator_.Allocate(new_pages));
    Status write = device_->WritePages(start, new_pages, padded.data());
    if (!write.ok()) {
      QBISM_RETURN_NOT_OK(allocator_.Free(start, new_pages));
      return write;
    }
    QBISM_RETURN_NOT_OK(allocator_.Free(
        entry->start_page, std::max<uint64_t>(1, entry->PageCount())));
    entry->start_page = start;
    entry->size_bytes = bytes.size();
    return Status::OK();
  }

  // Durable mode: always out of place, so pinned readers keep a
  // consistent view of the superseded version until vacuum.
  uint64_t new_pages = PagesFor(bytes.size());
  uint64_t start = 0;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (LatestLiveLocked(id.value) == nullptr) {
      return Status::NotFound("LongFieldManager::Update: unknown id");
    }
    QBISM_ASSIGN_OR_RETURN(start, allocator_.Allocate(new_pages));
  }
  Status write = WritePadded(start, new_pages, bytes);
  if (!write.ok()) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    QBISM_RETURN_NOT_OK(allocator_.Free(start, new_pages));
    return write;
  }
  StagedOp op;
  op.kind = StagedOp::kSet;
  op.id = id.value;
  op.start_page = start;
  op.size_bytes = bytes.size();
  Status logged = LogAndPublish(
      WalRecordType::kLfmSet,
      EncodeSetPayload(id.value, start, new_pages, bytes.size(), Crc32(bytes)),
      op);
  if (!logged.ok()) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    QBISM_RETURN_NOT_OK(allocator_.Free(start, new_pages));
    return logged;
  }
  return Status::OK();
}

Status LongFieldManager::Delete(LongFieldId id) {
  if (wal_ == nullptr) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    Entry* entry = LatestLiveLocked(id.value);
    if (entry == nullptr) {
      return Status::NotFound("LongFieldManager::Delete: unknown id");
    }
    QBISM_RETURN_NOT_OK(allocator_.Free(
        entry->start_page, std::max<uint64_t>(1, entry->PageCount())));
    auto it = directory_.find(id.value);
    it->second.erase(it->second.begin() +
                     (entry - it->second.data()));
    if (it->second.empty()) directory_.erase(it);
    return Status::OK();
  }

  // Durable mode: nothing is mutated until the drop record is durable,
  // so a failed WAL append/sync leaves the field fully intact — no
  // leaked pages, no dangling directory entry, no double free.
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (LatestLiveLocked(id.value) == nullptr) {
      return Status::NotFound("LongFieldManager::Delete: unknown id");
    }
  }
  StagedOp op;
  op.kind = StagedOp::kDrop;
  op.id = id.value;
  return LogAndPublish(WalRecordType::kLfmDrop, EncodeDropPayload(id.value),
                       op);
}

Result<uint64_t> LongFieldManager::BeginTxn() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "LongFieldManager::BeginTxn: no write-ahead log attached");
  }
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (open_txn_ != 0) {
    return Status::FailedPrecondition(
        "LongFieldManager::BeginTxn: a transaction is already open");
  }
  open_txn_ = wal_->BeginTxn();
  return open_txn_;
}

Status LongFieldManager::CommitTxn() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "LongFieldManager::CommitTxn: no write-ahead log attached");
  }
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  uint64_t txn = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (open_txn_ == 0) {
      return Status::FailedPrecondition(
          "LongFieldManager::CommitTxn: no open transaction");
    }
    txn = open_txn_;
  }
  Status commit = wal_->Commit(txn);
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!commit.ok()) {
    // The commit never became durable; roll the staged state back.
    for (const StagedOp& op : staged_) {
      if (op.kind == StagedOp::kSet) {
        QBISM_RETURN_NOT_OK(
            allocator_.Free(op.start_page, PagesFor(op.size_bytes)));
      }
    }
    staged_.clear();
    open_txn_ = 0;
    return commit;
  }
  uint64_t next_epoch = epochs_ ? epochs_->current() + 1 : 0;
  for (const StagedOp& op : staged_) ApplyOpLocked(op, next_epoch);
  staged_.clear();
  open_txn_ = 0;
  lock.unlock();
  if (epochs_ != nullptr) epochs_->Advance();
  return Status::OK();
}

Status LongFieldManager::AbortTxn() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "LongFieldManager::AbortTxn: no write-ahead log attached");
  }
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (open_txn_ == 0) {
    return Status::FailedPrecondition(
        "LongFieldManager::AbortTxn: no open transaction");
  }
  for (const StagedOp& op : staged_) {
    if (op.kind == StagedOp::kSet) {
      QBISM_RETURN_NOT_OK(
          allocator_.Free(op.start_page, PagesFor(op.size_bytes)));
    }
  }
  staged_.clear();
  wal_->Abort(open_txn_);
  open_txn_ = 0;
  return Status::OK();
}

uint64_t LongFieldManager::open_txn() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return open_txn_;
}

LongFieldManager::VacuumStats LongFieldManager::Vacuum() {
  VacuumStats out;
  obs::Span span(obs::Stage::kVacuum);
  // The horizon is sampled before taking the lock; a reader pinning
  // concurrently pins the *current* epoch, which is >= every retired
  // version's dropping epoch that passes the check below.
  uint64_t horizon = epochs_ ? epochs_->MinActiveReader() : UINT64_MAX;
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::vector<DeadExtent> keep;
  for (const DeadExtent& dead : dead_) {
    if (epochs_ != nullptr && dead.dropped_epoch > horizon) {
      keep.push_back(dead);
      ++out.still_pinned;
      continue;
    }
    auto it = directory_.find(dead.id);
    if (it == directory_.end()) continue;
    for (size_t i = 0; i < it->second.size(); ++i) {
      const Entry& entry = it->second[i];
      if (entry.start_page != dead.start_page || entry.dropped_epoch == kLive) {
        continue;
      }
      uint64_t extent_pages = entry.ExtentPageCount();
      if (allocator_
              .Free(entry.start_page, std::max<uint64_t>(1, entry.PageCount()))
              .ok()) {
        ++out.extents_freed;
        out.pages_freed += extent_pages;
      }
      it->second.erase(it->second.begin() + static_cast<long>(i));
      if (it->second.empty()) directory_.erase(it);
      break;
    }
  }
  dead_ = std::move(keep);
  span.AddPages(out.pages_freed);
  return out;
}

uint64_t LongFieldManager::dead_extents() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return dead_.size();
}

Status LongFieldManager::RecoverSet(uint64_t id, uint64_t start_page,
                                    uint64_t page_count, uint64_t size_bytes,
                                    uint32_t content_crc, bool verify_crc) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (Entry* old = LatestLiveLocked(id)) {
      QBISM_RETURN_NOT_OK(allocator_.Free(
          old->start_page, std::max<uint64_t>(1, old->PageCount())));
      auto it = directory_.find(id);
      it->second.erase(it->second.begin() + (old - it->second.data()));
    }
    QBISM_RETURN_NOT_OK(
        allocator_.Reserve(start_page, std::max<uint64_t>(1, page_count)));
    Entry entry;
    entry.start_page = start_page;
    entry.size_bytes = size_bytes;
    directory_[id].push_back(entry);
    next_id_ = std::max(next_id_, id + 1);
  }
  if (verify_crc) {
    uint64_t pages = std::max<uint64_t>(1, page_count);
    std::vector<uint8_t> buf(pages * kPageSize);
    QBISM_RETURN_NOT_OK(device_->ReadPages(start_page, pages, buf.data()));
    if (Crc32(buf.data(), size_bytes) != content_crc) {
      return Status::Corruption(
          "LongFieldManager::RecoverSet: field " + std::to_string(id) +
          " content does not match its committed WAL record");
    }
  }
  return Status::OK();
}

Status LongFieldManager::RecoverDrop(uint64_t id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Entry* entry = LatestLiveLocked(id);
  if (entry == nullptr) return Status::OK();  // replay of a redundant drop
  QBISM_RETURN_NOT_OK(allocator_.Free(
      entry->start_page, std::max<uint64_t>(1, entry->PageCount())));
  auto it = directory_.find(id);
  it->second.erase(it->second.begin() + (entry - it->second.data()));
  if (it->second.empty()) directory_.erase(it);
  return Status::OK();
}

uint64_t LongFieldManager::allocated_pages() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return allocator_.allocated_pages();
}

Status LongFieldManager::CheckPageAccounting() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  QBISM_RETURN_NOT_OK(allocator_.CheckInvariants());
  uint64_t directory_pages = 0;
  for (const auto& [id, versions] : directory_) {
    for (const Entry& entry : versions) {
      directory_pages += entry.ExtentPageCount();
    }
  }
  for (const StagedOp& op : staged_) {
    if (op.kind == StagedOp::kSet) {
      directory_pages += BuddyAllocator::ExtentPages(PagesFor(op.size_bytes));
    }
  }
  if (directory_pages != allocator_.allocated_pages()) {
    return Status::Corruption(
        "LongFieldManager: directory references " +
        std::to_string(directory_pages) + " pages but the allocator holds " +
        std::to_string(allocator_.allocated_pages()) +
        " (leaked or double-freed extent)");
  }
  return Status::OK();
}

}  // namespace qbism::storage
