#include "storage/long_field.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "common/macros.h"
#include "obs/trace.h"

namespace qbism::storage {

LongFieldManager::LongFieldManager(DiskDevice* device)
    : device_(device), allocator_(device->num_pages()) {}

Result<const LongFieldManager::Entry*> LongFieldManager::Lookup(
    LongFieldId id) const {
  auto it = directory_.find(id.value);
  if (it == directory_.end()) {
    return Status::NotFound("LongFieldManager: unknown long field id");
  }
  return &it->second;
}

Result<LongFieldId> LongFieldManager::Create(
    const std::vector<uint8_t>& bytes) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  uint64_t pages = std::max<uint64_t>(1, (bytes.size() + kPageSize - 1) / kPageSize);
  QBISM_ASSIGN_OR_RETURN(uint64_t start, allocator_.Allocate(pages));
  // Write full pages; the tail page is zero-padded.
  std::vector<uint8_t> padded(pages * kPageSize, 0);
  if (!bytes.empty()) {
    std::memcpy(padded.data(), bytes.data(), bytes.size());
  }
  Status write = device_->WritePages(start, pages, padded.data());
  if (!write.ok()) {
    // The field never existed: hand its extent back so a failed write
    // cannot leak pages.
    QBISM_RETURN_NOT_OK(allocator_.Free(start, pages));
    return write;
  }
  LongFieldId id{next_id_++};
  directory_[id.value] = Entry{start, bytes.size()};
  return id;
}

Result<uint64_t> LongFieldManager::Size(LongFieldId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  QBISM_ASSIGN_OR_RETURN(const Entry* entry, Lookup(id));
  return entry->size_bytes;
}

Result<std::vector<uint8_t>> LongFieldManager::Read(LongFieldId id) const {
  uint64_t size = 0;
  {
    // ReadRange re-acquires the shared lock; shared_mutex is not
    // recursive, so fetch the size in its own critical section.
    std::shared_lock<std::shared_mutex> lock(mu_);
    QBISM_ASSIGN_OR_RETURN(const Entry* entry, Lookup(id));
    size = entry->size_bytes;
  }
  return ReadRange(id, 0, size);
}

Result<std::vector<uint8_t>> LongFieldManager::ReadRange(
    LongFieldId id, uint64_t offset, uint64_t length) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  QBISM_ASSIGN_OR_RETURN(const Entry* entry, Lookup(id));
  // Overflow-safe form of `offset + length > size`: a huge offset must
  // not wrap around and pass the check.
  if (offset > entry->size_bytes || length > entry->size_bytes - offset) {
    return Status::OutOfRange("LongFieldManager::ReadRange: past field end");
  }
  if (length == 0) return std::vector<uint8_t>{};
  uint64_t first_page = offset / kPageSize;
  uint64_t last_page = (offset + length - 1) / kPageSize;
  uint64_t count = last_page - first_page + 1;
  obs::Span span(obs::Stage::kIo);
  span.AddPages(count);
  span.AddBytes(length);
  std::vector<uint8_t> pages(count * kPageSize);
  QBISM_RETURN_NOT_OK(
      device_->ReadPages(entry->start_page + first_page, count, pages.data()));
  std::vector<uint8_t> out(length);
  std::memcpy(out.data(), pages.data() + (offset - first_page * kPageSize),
              length);
  return out;
}

Result<std::vector<std::vector<uint8_t>>> LongFieldManager::ReadRanges(
    LongFieldId id, const std::vector<ByteRange>& ranges) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  QBISM_ASSIGN_OR_RETURN(const Entry* entry, Lookup(id));
  for (const ByteRange& r : ranges) {
    if (r.offset > entry->size_bytes ||
        r.length > entry->size_bytes - r.offset) {
      return Status::OutOfRange("LongFieldManager::ReadRanges: past field end");
    }
  }
  // Distinct pages touched by any range, ascending.
  std::vector<uint64_t> pages;
  for (const ByteRange& r : ranges) {
    if (r.length == 0) continue;
    uint64_t first = r.offset / kPageSize;
    uint64_t last = (r.offset + r.length - 1) / kPageSize;
    for (uint64_t p = first; p <= last; ++p) pages.push_back(p);
  }
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());

  obs::Span span(obs::Stage::kIo);
  span.AddPages(pages.size());

  // Read runs of consecutive pages as single sequential transfers.
  std::unordered_map<uint64_t, std::vector<uint8_t>> cache;
  size_t i = 0;
  while (i < pages.size()) {
    size_t j = i;
    while (j + 1 < pages.size() && pages[j + 1] == pages[j] + 1) ++j;
    uint64_t count = pages[j] - pages[i] + 1;
    std::vector<uint8_t> buf(count * kPageSize);
    QBISM_RETURN_NOT_OK(
        device_->ReadPages(entry->start_page + pages[i], count, buf.data()));
    for (uint64_t k = 0; k < count; ++k) {
      std::vector<uint8_t> page(kPageSize);
      std::memcpy(page.data(), buf.data() + k * kPageSize, kPageSize);
      cache[pages[i] + k] = std::move(page);
    }
    i = j + 1;
  }

  // Assemble each requested range from the page cache.
  std::vector<std::vector<uint8_t>> out;
  out.reserve(ranges.size());
  for (const ByteRange& r : ranges) {
    span.AddBytes(r.length);
    std::vector<uint8_t> buf(r.length);
    uint64_t copied = 0;
    while (copied < r.length) {
      uint64_t pos = r.offset + copied;
      uint64_t page = pos / kPageSize;
      uint64_t in_page = pos % kPageSize;
      uint64_t n = std::min(kPageSize - in_page, r.length - copied);
      std::memcpy(buf.data() + copied, cache.at(page).data() + in_page, n);
      copied += n;
    }
    out.push_back(std::move(buf));
  }
  return out;
}

Result<ReadPlan> LongFieldManager::BuildReadPlan(
    const std::vector<ByteRange>& ranges, uint64_t field_size_bytes,
    const ReadPlanOptions& options) {
  ReadPlan plan;
  // Page intervals (inclusive) per non-empty range, validated the same
  // overflow-safe way as ReadRange.
  std::vector<std::pair<uint64_t, uint64_t>> intervals;
  intervals.reserve(ranges.size());
  for (const ByteRange& r : ranges) {
    if (r.offset > field_size_bytes ||
        r.length > field_size_bytes - r.offset) {
      return Status::OutOfRange("LongFieldManager::BuildReadPlan: past field end");
    }
    if (r.length == 0) continue;
    intervals.emplace_back(r.offset / kPageSize,
                           (r.offset + r.length - 1) / kPageSize);
    plan.bytes_needed += r.length;
  }
  if (intervals.empty()) return plan;
  std::sort(intervals.begin(), intervals.end());

  // One ascending sweep produces both accountings: distinct pages
  // (merging only overlap/adjacency) and the physical extents (merging
  // across gaps of up to gap_fill_pages as well).
  uint64_t touch_first = intervals[0].first;
  uint64_t touch_last = intervals[0].second;
  PlannedExtent extent{intervals[0].first,
                       intervals[0].second - intervals[0].first + 1};
  for (size_t i = 1; i < intervals.size(); ++i) {
    auto [first, last] = intervals[i];
    if (first <= touch_last + 1) {
      touch_last = std::max(touch_last, last);
    } else {
      plan.pages_touched += touch_last - touch_first + 1;
      touch_first = first;
      touch_last = last;
    }
    uint64_t extent_end = extent.first_page + extent.page_count - 1;
    if (first <= extent_end + 1 + options.gap_fill_pages) {
      if (last > extent_end) {
        extent.page_count = last - extent.first_page + 1;
      }
    } else {
      plan.pages_read += extent.page_count;
      plan.extents.push_back(extent);
      extent = PlannedExtent{first, last - first + 1};
    }
  }
  plan.pages_touched += touch_last - touch_first + 1;
  plan.pages_read += extent.page_count;
  plan.extents.push_back(extent);
  return plan;
}

Result<ReadPlan> LongFieldManager::PlanRead(
    LongFieldId id, const std::vector<ByteRange>& ranges,
    const ReadPlanOptions& options) const {
  obs::Span span(obs::Stage::kPlan);
  std::shared_lock<std::shared_mutex> lock(mu_);
  QBISM_ASSIGN_OR_RETURN(const Entry* entry, Lookup(id));
  return BuildReadPlan(ranges, entry->size_bytes, options);
}

Status LongFieldManager::ReadExtents(LongFieldId id,
                                     const std::vector<PlannedExtent>& extents,
                                     const std::vector<uint8_t*>& outs) const {
  if (extents.size() != outs.size()) {
    return Status::InvalidArgument(
        "LongFieldManager::ReadExtents: extents/outs size mismatch");
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  QBISM_ASSIGN_OR_RETURN(const Entry* entry, Lookup(id));
  uint64_t field_pages = entry->PageCount();
  obs::Span span(obs::Stage::kIo);
  std::vector<storage::PageReadOp> ops;
  ops.reserve(extents.size());
  for (size_t i = 0; i < extents.size(); ++i) {
    const PlannedExtent& e = extents[i];
    if (e.first_page > field_pages || e.page_count > field_pages - e.first_page) {
      return Status::OutOfRange(
          "LongFieldManager::ReadExtents: extent past field end");
    }
    span.AddPages(e.page_count);
    span.AddBytes(e.ByteCount());
    ops.push_back(PageReadOp{entry->start_page + e.first_page, e.page_count,
                             outs[i]});
  }
  Status status = device_->ReadPagesBatch(ops);
  if (!status.ok()) span.SetFailed();
  return status;
}

Result<uint64_t> LongFieldManager::PagesTouched(
    LongFieldId id, const std::vector<ByteRange>& ranges) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  QBISM_ASSIGN_OR_RETURN(const Entry* entry, Lookup(id));
  (void)entry;
  std::vector<uint64_t> pages;
  for (const ByteRange& r : ranges) {
    if (r.length == 0) continue;
    uint64_t first = r.offset / kPageSize;
    uint64_t last = (r.offset + r.length - 1) / kPageSize;
    for (uint64_t p = first; p <= last; ++p) pages.push_back(p);
  }
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  return pages.size();
}

Status LongFieldManager::Update(LongFieldId id,
                                const std::vector<uint8_t>& bytes) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = directory_.find(id.value);
  if (it == directory_.end()) {
    return Status::NotFound("LongFieldManager::Update: unknown id");
  }
  Entry& entry = it->second;
  uint64_t new_pages = std::max<uint64_t>(1, (bytes.size() + kPageSize - 1) / kPageSize);
  std::vector<uint8_t> padded(new_pages * kPageSize, 0);
  if (!bytes.empty()) {
    std::memcpy(padded.data(), bytes.data(), bytes.size());
  }
  if (BuddyAllocator::ExtentPages(new_pages) ==
      BuddyAllocator::ExtentPages(entry.PageCount())) {
    // Fits in place. On a write fault the device performed nothing (the
    // simulated transfer is atomic), so the entry stays as it was.
    QBISM_RETURN_NOT_OK(
        device_->WritePages(entry.start_page, new_pages, padded.data()));
    entry.size_bytes = bytes.size();
    return Status::OK();
  }
  // Reallocate: write the new extent first and only then free the old
  // one, so a failed write neither leaks the new pages nor leaves the
  // directory pointing at a freed extent.
  QBISM_ASSIGN_OR_RETURN(uint64_t start, allocator_.Allocate(new_pages));
  Status write = device_->WritePages(start, new_pages, padded.data());
  if (!write.ok()) {
    QBISM_RETURN_NOT_OK(allocator_.Free(start, new_pages));
    return write;
  }
  QBISM_RETURN_NOT_OK(allocator_.Free(
      entry.start_page, std::max<uint64_t>(1, entry.PageCount())));
  entry.start_page = start;
  entry.size_bytes = bytes.size();
  return Status::OK();
}

uint64_t LongFieldManager::allocated_pages() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return allocator_.allocated_pages();
}

Status LongFieldManager::CheckPageAccounting() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  QBISM_RETURN_NOT_OK(allocator_.CheckInvariants());
  uint64_t directory_pages = 0;
  for (const auto& [id, entry] : directory_) {
    directory_pages +=
        BuddyAllocator::ExtentPages(std::max<uint64_t>(1, entry.PageCount()));
  }
  if (directory_pages != allocator_.allocated_pages()) {
    return Status::Corruption(
        "LongFieldManager: directory references " +
        std::to_string(directory_pages) + " pages but the allocator holds " +
        std::to_string(allocator_.allocated_pages()) +
        " (leaked or double-freed extent)");
  }
  return Status::OK();
}

Status LongFieldManager::Delete(LongFieldId id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = directory_.find(id.value);
  if (it == directory_.end()) {
    return Status::NotFound("LongFieldManager::Delete: unknown id");
  }
  QBISM_RETURN_NOT_OK(allocator_.Free(
      it->second.start_page, std::max<uint64_t>(1, it->second.PageCount())));
  directory_.erase(it);
  return Status::OK();
}

}  // namespace qbism::storage
