#ifndef QBISM_STORAGE_WAL_H_
#define QBISM_STORAGE_WAL_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk_device.h"

namespace qbism::storage {

/// Redo-record types. The log is pure redo: recovery replays the
/// records of committed transactions in log order and discards
/// everything else, so no undo information is ever written.
enum class WalRecordType : uint8_t {
  /// A long field (re)written: {id, start_page, page_count, size_bytes,
  /// content_crc}. Replay reserves the extent at its logged position
  /// and verifies the on-device content against content_crc, which is
  /// what makes "committed => byte-identical" checkable.
  kLfmSet = 1,
  /// A long field dropped: {id}.
  kLfmDrop = 2,
  /// A relational row inserted: {table name, serialized row}.
  kCatalogRow = 3,
  /// Relational rows deleted: {table name, column name, int64 value}
  /// (replayed as `delete from T where C = v`).
  kCatalogDelete = 4,
  /// Transaction commit marker; always a transaction's last record.
  kCommit = 5,
  /// Advisory abort marker. Replay ignores uncommitted transactions
  /// whether or not an abort record made it to disk.
  kAbort = 6,
  /// Cross-study spatial index maintenance (src/index): a study's
  /// serialized StudySummary upserted with its ingest transaction.
  /// Recovery collects these for SpatialIndexManager::ApplyRecovered
  /// (last-wins per study) instead of replaying them itself — the index
  /// is derived state, and the from-catalog rebuild remains the
  /// fallback when no manager is attached.
  kIndexUpsert = 7,
  /// A study's index entry removed: {int64 study id}.
  kIndexRemove = 8,
};

/// One parsed log record.
struct WalRecord {
  WalRecordType type = WalRecordType::kAbort;
  uint64_t txn_id = 0;
  std::vector<uint8_t> payload;
};

/// The write-ahead log (docs/DURABILITY.md): an append-only sequence of
/// CRC-framed redo records over its own DiskDevice (the simulated log
/// volume). Each record is framed as
///
///   offset size field
///   0      4    magic 0x524C4157 ("WALR")
///   4      4    CRC-32 of bytes [8, end) (length, type, txn, payload)
///   8      4    payload length
///   12     1    record type
///   13     8    transaction id
///   21     ..   payload
///
/// Appends buffer in memory; Sync() flushes dirty pages to the device
/// in ascending order, one page per transfer (so the fault harness can
/// kill between any two log pages, and a torn multi-page tail is a
/// physically realizable crash state). Commit() appends the kCommit
/// record and syncs — the fsync-on-commit durability point. Because
/// pages flush in ascending order and kCommit is a transaction's last
/// record, a durable commit record implies every earlier byte of the
/// log is durable; and because transaction ids are never reused, stale
/// valid-CRC frames left by a withdrawn commit always parse as records
/// of an uncommitted transaction and are discarded by replay.
///
/// Thread-safe: concurrent transactions may interleave their records
/// in the log (records carry their txn id), but a commit's
/// append-and-sync is atomic under the log mutex, so a failed commit
/// can withdraw its own kCommit record before anything else is
/// appended — a transaction reported as failed can never become
/// durable later.
class WriteAheadLog {
 public:
  /// Logs to the whole of `device` (not owned; must outlive this).
  explicit WriteAheadLog(DiskDevice* device);

  /// What a scan of the device found.
  struct ScanResult {
    /// Records of committed transactions, in log order.
    std::vector<WalRecord> committed;
    uint64_t committed_txns = 0;
    uint64_t total_records = 0;  // every well-formed record seen
    /// Bytes up to the end of the last committed transaction — the
    /// offset the log resumes appending at.
    uint64_t valid_bytes = 0;
    /// A trailing record failed framing/CRC (a torn tail from a crash
    /// mid-sync). Everything before it is unaffected.
    bool torn_tail = false;
  };

  /// Scans the device image (crash recovery), adopts the surviving log
  /// as this log's contents truncated to the last committed boundary,
  /// and returns the committed records for replay. Also primes the
  /// transaction-id counter past every id seen. A zeroed (fresh)
  /// device yields an empty result.
  Result<ScanResult> Open();

  /// Opens a transaction (no locking of other writers implied).
  uint64_t BeginTxn();

  /// Appends one record for `txn_id`. Buffers only; durability comes
  /// from Commit()/Sync().
  Status Append(WalRecordType type, uint64_t txn_id,
                const std::vector<uint8_t>& payload);

  /// Appends kCommit and syncs the log through it. On a sync failure
  /// the commit record is withdrawn (the transaction stays uncommitted
  /// forever) and the device error is returned.
  Status Commit(uint64_t txn_id);

  /// Appends an advisory kAbort record; never fails the caller.
  void Abort(uint64_t txn_id);

  /// Flushes every dirty page in ascending order. Stops at the first
  /// device error; pages already written stay durable.
  Status Sync();

  struct Stats {
    uint64_t records = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t failed_commits = 0;  // commits withdrawn on sync failure
    uint64_t syncs = 0;
    uint64_t pages_synced = 0;
    uint64_t appended_bytes = 0;  // current in-memory log size
    uint64_t durable_bytes = 0;   // clean prefix known on the device
  };
  Stats stats() const;

  uint64_t capacity_bytes() const { return device_->num_pages() * kPageSize; }
  DiskDevice* device() const { return device_; }

 private:
  Status SyncLocked();
  Status AppendLocked(WalRecordType type, uint64_t txn_id,
                      const std::vector<uint8_t>& payload);

  DiskDevice* device_;
  mutable std::mutex mu_;
  std::vector<uint8_t> log_;   // full in-memory image; mu_
  uint64_t clean_prefix_ = 0;  // leading bytes matching the device; mu_
  uint64_t next_txn_ = 1;      // mu_
  Stats stats_;                // mu_
};

}  // namespace qbism::storage

#endif  // QBISM_STORAGE_WAL_H_
