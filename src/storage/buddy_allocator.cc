#include "storage/buddy_allocator.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace qbism::storage {

namespace {

bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

BuddyAllocator::BuddyAllocator(uint64_t num_pages) : total_pages_(num_pages) {
  QBISM_CHECK(IsPowerOfTwo(num_pages));
  max_order_ = 63 - __builtin_clzll(num_pages);
  free_lists_.resize(max_order_ + 1);
  free_lists_[max_order_].insert(0);
}

uint64_t BuddyAllocator::ExtentPages(uint64_t num_pages) {
  if (num_pages <= 1) return 1;
  uint64_t extent = 1;
  while (extent < num_pages) extent <<= 1;
  return extent;
}

int BuddyAllocator::OrderFor(uint64_t num_pages) const {
  uint64_t extent = ExtentPages(num_pages);
  return 63 - __builtin_clzll(extent);
}

Result<uint64_t> BuddyAllocator::Allocate(uint64_t num_pages) {
  if (num_pages == 0) {
    return Status::InvalidArgument("BuddyAllocator: zero-page allocation");
  }
  if (num_pages > total_pages_) {
    return Status::OutOfRange("BuddyAllocator: request exceeds device");
  }
  int order = OrderFor(num_pages);
  // Find the smallest order with a free block, splitting down.
  int have = order;
  while (have <= max_order_ && free_lists_[have].empty()) ++have;
  if (have > max_order_) {
    return Status::OutOfRange("BuddyAllocator: out of space");
  }
  uint64_t block = *free_lists_[have].begin();
  free_lists_[have].erase(free_lists_[have].begin());
  while (have > order) {
    --have;
    // Keep the low half, free the high buddy.
    free_lists_[have].insert(block + (uint64_t{1} << have));
  }
  allocated_pages_ += uint64_t{1} << order;
  return block;
}

uint64_t BuddyAllocator::free_pages() const {
  uint64_t total = 0;
  for (size_t k = 0; k < free_lists_.size(); ++k) {
    total += static_cast<uint64_t>(free_lists_[k].size()) << k;
  }
  return total;
}

Status BuddyAllocator::CheckInvariants() const {
  std::vector<std::pair<uint64_t, uint64_t>> blocks;  // [start, end)
  for (size_t k = 0; k < free_lists_.size(); ++k) {
    uint64_t size = uint64_t{1} << k;
    for (uint64_t start : free_lists_[k]) {
      if (start % size != 0) {
        return Status::Corruption("buddy: free block " +
                                  std::to_string(start) + " misaligned for order " +
                                  std::to_string(k));
      }
      if (start + size > total_pages_) {
        return Status::Corruption("buddy: free block " +
                                  std::to_string(start) + " beyond device end");
      }
      if (k < free_lists_.size() - 1 &&
          free_lists_[k].count(start ^ size) != 0) {
        return Status::Corruption("buddy: blocks " + std::to_string(start) +
                                  " and its buddy both free at order " +
                                  std::to_string(k) + " (uncoalesced)");
      }
      blocks.emplace_back(start, start + size);
    }
  }
  std::sort(blocks.begin(), blocks.end());
  uint64_t free_total = 0;
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (i > 0 && blocks[i].first < blocks[i - 1].second) {
      return Status::Corruption("buddy: overlapping free blocks at page " +
                                std::to_string(blocks[i].first));
    }
    free_total += blocks[i].second - blocks[i].first;
  }
  if (free_total + allocated_pages_ != total_pages_) {
    return Status::Corruption(
        "buddy: page accounting broken: " + std::to_string(free_total) +
        " free + " + std::to_string(allocated_pages_) + " allocated != " +
        std::to_string(total_pages_) + " total");
  }
  return Status::OK();
}

Status BuddyAllocator::Reserve(uint64_t start_page, uint64_t num_pages) {
  if (num_pages == 0 || num_pages > total_pages_) {
    return Status::InvalidArgument("BuddyAllocator::Reserve: bad extent");
  }
  int order = OrderFor(num_pages);
  uint64_t size = uint64_t{1} << order;
  if (start_page % size != 0 || start_page + size > total_pages_) {
    return Status::InvalidArgument("BuddyAllocator::Reserve: misaligned extent");
  }
  // Find the free block containing the extent, smallest first.
  for (int k = order; k <= max_order_; ++k) {
    uint64_t candidate = start_page & ~((uint64_t{1} << k) - 1);
    auto it = free_lists_[static_cast<size_t>(k)].find(candidate);
    if (it == free_lists_[static_cast<size_t>(k)].end()) continue;
    free_lists_[static_cast<size_t>(k)].erase(it);
    // Split down, freeing the half not containing the target each time.
    uint64_t block = candidate;
    for (int j = k; j > order; --j) {
      uint64_t half = uint64_t{1} << (j - 1);
      if (start_page < block + half) {
        free_lists_[static_cast<size_t>(j - 1)].insert(block + half);
      } else {
        free_lists_[static_cast<size_t>(j - 1)].insert(block);
        block += half;
      }
    }
    allocated_pages_ += size;
    return Status::OK();
  }
  return Status::InvalidArgument(
      "BuddyAllocator::Reserve: extent at page " + std::to_string(start_page) +
      " is not free");
}

Status BuddyAllocator::Free(uint64_t start_page, uint64_t num_pages) {
  if (num_pages == 0 || start_page >= total_pages_) {
    return Status::InvalidArgument("BuddyAllocator::Free: bad extent");
  }
  int order = OrderFor(num_pages);
  uint64_t size = uint64_t{1} << order;
  if (start_page % size != 0 || start_page + size > total_pages_) {
    return Status::InvalidArgument("BuddyAllocator::Free: misaligned extent");
  }
  allocated_pages_ -= size;
  uint64_t block = start_page;
  int k = order;
  // Coalesce with free buddies as far up as possible.
  while (k < max_order_) {
    uint64_t buddy = block ^ (uint64_t{1} << k);
    auto it = free_lists_[k].find(buddy);
    if (it == free_lists_[k].end()) break;
    free_lists_[k].erase(it);
    block = std::min(block, buddy);
    ++k;
  }
  free_lists_[k].insert(block);
  return Status::OK();
}

}  // namespace qbism::storage
