#include "storage/bptree.h"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "common/macros.h"

namespace qbism::storage {

namespace {

constexpr size_t kIsLeafOffset = 0;
constexpr size_t kCountOffset = 1;
constexpr size_t kNextLeafOffset = 3;
constexpr size_t kEntriesOffset = 11;

constexpr size_t kLeafEntrySize = 8 + 8 + 2;      // key, page, slot
constexpr size_t kInternalEntrySize = 8 + 8;      // key, child
constexpr size_t kLeafCapacity =
    (kPageSize - kEntriesOffset) / kLeafEntrySize;  // 226
constexpr size_t kInternalCapacity =
    (kPageSize - kEntriesOffset - 8) / kInternalEntrySize;  // 254 keys

uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }
int64_t GetI64(const uint8_t* p) {
  int64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
void PutI64(uint8_t* p, int64_t v) { std::memcpy(p, &v, 8); }
uint16_t GetU16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
void PutU16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, 2); }

/// In-memory decoded node: mutated locally, then written back whole.
struct Node {
  bool is_leaf = true;
  uint64_t next_leaf = 0;

  struct LeafEntry {
    int64_t key;
    RecordId rid;
  };
  std::vector<LeafEntry> leaf;  // sorted by (key, rid)

  std::vector<int64_t> keys;        // internal: separator keys
  std::vector<uint64_t> children;   // internal: keys.size() + 1 children

  void Decode(const uint8_t* page) {
    is_leaf = page[kIsLeafOffset] != 0;
    uint16_t count = GetU16(page + kCountOffset);
    next_leaf = GetU64(page + kNextLeafOffset);
    leaf.clear();
    keys.clear();
    children.clear();
    if (is_leaf) {
      leaf.reserve(count);
      const uint8_t* p = page + kEntriesOffset;
      for (uint16_t i = 0; i < count; ++i, p += kLeafEntrySize) {
        leaf.push_back({GetI64(p), RecordId{GetU64(p + 8), GetU16(p + 16)}});
      }
    } else {
      children.reserve(count + 1);
      keys.reserve(count);
      const uint8_t* p = page + kEntriesOffset;
      children.push_back(GetU64(p));
      p += 8;
      for (uint16_t i = 0; i < count; ++i, p += kInternalEntrySize) {
        keys.push_back(GetI64(p));
        children.push_back(GetU64(p + 8));
      }
    }
  }

  void Encode(uint8_t* page) const {
    std::memset(page, 0, kPageSize);
    page[kIsLeafOffset] = is_leaf ? 1 : 0;
    PutU64(page + kNextLeafOffset, next_leaf);
    uint8_t* p = page + kEntriesOffset;
    if (is_leaf) {
      QBISM_CHECK(leaf.size() <= kLeafCapacity);
      PutU16(page + kCountOffset, static_cast<uint16_t>(leaf.size()));
      for (const LeafEntry& e : leaf) {
        PutI64(p, e.key);
        PutU64(p + 8, e.rid.page_no);
        PutU16(p + 16, e.rid.slot);
        p += kLeafEntrySize;
      }
    } else {
      QBISM_CHECK(keys.size() <= kInternalCapacity);
      QBISM_CHECK(children.size() == keys.size() + 1);
      PutU16(page + kCountOffset, static_cast<uint16_t>(keys.size()));
      PutU64(p, children[0]);
      p += 8;
      for (size_t i = 0; i < keys.size(); ++i) {
        PutI64(p, keys[i]);
        PutU64(p + 8, children[i + 1]);
        p += kInternalEntrySize;
      }
    }
  }
};

bool LeafEntryLess(const Node::LeafEntry& a, const Node::LeafEntry& b) {
  if (a.key != b.key) return a.key < b.key;
  if (a.rid.page_no != b.rid.page_no) return a.rid.page_no < b.rid.page_no;
  return a.rid.slot < b.rid.slot;
}

}  // namespace

Result<BPlusTree> BPlusTree::Create(BufferPool* pool,
                                    PageAllocator* allocator) {
  QBISM_ASSIGN_OR_RETURN(uint64_t root, allocator->Allocate());
  Node empty;
  QBISM_ASSIGN_OR_RETURN(uint8_t* page, pool->GetPage(root));
  empty.Encode(page);
  QBISM_RETURN_NOT_OK(pool->MarkDirty(root));
  return BPlusTree(pool, allocator, root);
}

namespace {

Result<Node> LoadNode(BufferPool* pool, uint64_t page_no) {
  QBISM_ASSIGN_OR_RETURN(uint8_t* page, pool->GetPage(page_no));
  Node node;
  node.Decode(page);
  return node;
}

Status StoreNode(BufferPool* pool, uint64_t page_no, const Node& node) {
  QBISM_ASSIGN_OR_RETURN(uint8_t* page, pool->GetPage(page_no));
  node.Encode(page);
  return pool->MarkDirty(page_no);
}

}  // namespace

Result<BPlusTree::SplitResult> BPlusTree::InsertInto(uint64_t page_no,
                                                     int64_t key,
                                                     const RecordId& rid) {
  QBISM_ASSIGN_OR_RETURN(Node node, LoadNode(pool_, page_no));
  if (node.is_leaf) {
    Node::LeafEntry entry{key, rid};
    auto it = std::upper_bound(node.leaf.begin(), node.leaf.end(), entry,
                               LeafEntryLess);
    node.leaf.insert(it, entry);
    if (node.leaf.size() <= kLeafCapacity) {
      QBISM_RETURN_NOT_OK(StoreNode(pool_, page_no, node));
      return SplitResult{};
    }
    // Split: right half moves to a new leaf.
    QBISM_ASSIGN_OR_RETURN(uint64_t right_page, allocator_->Allocate());
    Node right;
    right.is_leaf = true;
    size_t mid = node.leaf.size() / 2;
    right.leaf.assign(node.leaf.begin() + static_cast<int64_t>(mid),
                      node.leaf.end());
    node.leaf.resize(mid);
    right.next_leaf = node.next_leaf;
    node.next_leaf = right_page;
    QBISM_RETURN_NOT_OK(StoreNode(pool_, right_page, right));
    QBISM_RETURN_NOT_OK(StoreNode(pool_, page_no, node));
    return SplitResult{true, right.leaf.front().key, right_page};
  }

  // Internal node: descend into the child for `key`.
  size_t child_index =
      static_cast<size_t>(std::upper_bound(node.keys.begin(), node.keys.end(),
                                           key) -
                          node.keys.begin());
  QBISM_ASSIGN_OR_RETURN(SplitResult child_split,
                         InsertInto(node.children[child_index], key, rid));
  if (!child_split.split) return SplitResult{};

  // Reload: the recursive call may have rewritten pages (ours is not
  // among them, but reloading keeps the logic simple and correct if the
  // buffer pool evicted our frame).
  QBISM_ASSIGN_OR_RETURN(node, LoadNode(pool_, page_no));
  node.keys.insert(node.keys.begin() + static_cast<int64_t>(child_index),
                   child_split.separator);
  node.children.insert(
      node.children.begin() + static_cast<int64_t>(child_index) + 1,
      child_split.right_page);
  if (node.keys.size() <= kInternalCapacity) {
    QBISM_RETURN_NOT_OK(StoreNode(pool_, page_no, node));
    return SplitResult{};
  }
  // Split the internal node; the middle key moves up.
  QBISM_ASSIGN_OR_RETURN(uint64_t right_page, allocator_->Allocate());
  size_t mid = node.keys.size() / 2;
  int64_t separator = node.keys[mid];
  Node right;
  right.is_leaf = false;
  right.keys.assign(node.keys.begin() + static_cast<int64_t>(mid) + 1,
                    node.keys.end());
  right.children.assign(node.children.begin() + static_cast<int64_t>(mid) + 1,
                        node.children.end());
  node.keys.resize(mid);
  node.children.resize(mid + 1);
  QBISM_RETURN_NOT_OK(StoreNode(pool_, right_page, right));
  QBISM_RETURN_NOT_OK(StoreNode(pool_, page_no, node));
  return SplitResult{true, separator, right_page};
}

Status BPlusTree::Insert(int64_t key, const RecordId& rid) {
  // Public tree operations hold the pool latch end to end so node page
  // pointers stay valid (see BufferPool::latch()).
  std::lock_guard<std::recursive_mutex> lock(pool_->latch());
  QBISM_ASSIGN_OR_RETURN(SplitResult split, InsertInto(root_, key, rid));
  if (!split.split) return Status::OK();
  // Grow a new root.
  QBISM_ASSIGN_OR_RETURN(uint64_t new_root, allocator_->Allocate());
  Node root;
  root.is_leaf = false;
  root.keys.push_back(split.separator);
  root.children.push_back(root_);
  root.children.push_back(split.right_page);
  QBISM_RETURN_NOT_OK(StoreNode(pool_, new_root, root));
  root_ = new_root;
  return Status::OK();
}

Result<uint64_t> BPlusTree::FindLeaf(int64_t key) const {
  // Duplicates of a separator key may sit on both sides of it (a split
  // can land between equal keys), so searches descend to the LEFTMOST
  // candidate leaf (lower_bound) and range scans walk right through the
  // leaf chain.
  uint64_t page_no = root_;
  while (true) {
    QBISM_ASSIGN_OR_RETURN(Node node, LoadNode(pool_, page_no));
    if (node.is_leaf) return page_no;
    size_t child_index = static_cast<size_t>(
        std::lower_bound(node.keys.begin(), node.keys.end(), key) -
        node.keys.begin());
    page_no = node.children[child_index];
  }
}

Result<std::vector<RecordId>> BPlusTree::Find(int64_t key) const {
  return FindRange(key, key);
}

Result<std::vector<RecordId>> BPlusTree::FindRange(int64_t lo,
                                                   int64_t hi) const {
  std::lock_guard<std::recursive_mutex> lock(pool_->latch());
  std::vector<RecordId> out;
  if (lo > hi) return out;
  QBISM_ASSIGN_OR_RETURN(uint64_t page_no, FindLeaf(lo));
  while (page_no != 0) {
    QBISM_ASSIGN_OR_RETURN(Node node, LoadNode(pool_, page_no));
    for (const Node::LeafEntry& e : node.leaf) {
      if (e.key < lo) continue;
      if (e.key > hi) return out;
      out.push_back(e.rid);
    }
    page_no = node.next_leaf;
  }
  return out;
}

Status BPlusTree::Scan(
    const std::function<bool(int64_t, const RecordId&)>& visit) const {
  std::lock_guard<std::recursive_mutex> lock(pool_->latch());
  QBISM_ASSIGN_OR_RETURN(uint64_t page_no, LeftmostLeaf());
  while (page_no != 0) {
    QBISM_ASSIGN_OR_RETURN(Node node, LoadNode(pool_, page_no));
    for (const Node::LeafEntry& e : node.leaf) {
      if (!visit(e.key, e.rid)) return Status::OK();
    }
    page_no = node.next_leaf;
  }
  return Status::OK();
}

Result<uint64_t> BPlusTree::LeftmostLeaf() const {
  uint64_t page_no = root_;
  while (true) {
    QBISM_ASSIGN_OR_RETURN(Node node, LoadNode(pool_, page_no));
    if (node.is_leaf) return page_no;
    page_no = node.children.front();
  }
}

Result<uint64_t> BPlusTree::Size() const {
  uint64_t count = 0;
  QBISM_RETURN_NOT_OK(Scan([&](int64_t, const RecordId&) {
    ++count;
    return true;
  }));
  return count;
}

Result<int> BPlusTree::Height() const {
  std::lock_guard<std::recursive_mutex> lock(pool_->latch());
  int height = 1;
  uint64_t page_no = root_;
  while (true) {
    QBISM_ASSIGN_OR_RETURN(Node node, LoadNode(pool_, page_no));
    if (node.is_leaf) return height;
    page_no = node.children.front();
    ++height;
  }
}

}  // namespace qbism::storage
