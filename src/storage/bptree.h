#ifndef QBISM_STORAGE_BPTREE_H_
#define QBISM_STORAGE_BPTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace qbism::storage {

/// Disk-backed B+-tree mapping signed 64-bit keys to RecordIds, with
/// duplicate keys allowed. This is the index substrate the paper lists
/// as future work ("spatial indexing and query optimization techniques
/// for efficiently locating spatial objects in large populations of
/// studies", §7): the SQL layer builds per-column indexes on it so
/// equality predicates over large catalogs stop scanning.
///
/// Layout: one node per 4 KB page.
///   header: [u8 is_leaf][u16 count][u64 next_leaf (leaves only)]
///   leaf entries:     (i64 key, u64 page, u16 slot)   18 bytes
///   internal entries: (i64 key, u64 child)            16 bytes,
///     child[i] holds keys < key[i]; a final right-most child follows
///     the last key.
/// Entries within a node are sorted by (key, rid) so duplicates behave
/// deterministically.
class BPlusTree {
 public:
  /// Creates an empty tree; `pool` and `allocator` must outlive it and
  /// address the same device.
  static Result<BPlusTree> Create(BufferPool* pool, PageAllocator* allocator);

  /// Inserts a (key, rid) pair. Duplicate keys are fine; the exact pair
  /// may be inserted multiple times (index semantics: one entry per
  /// base-table record).
  Status Insert(int64_t key, const RecordId& rid);

  /// All record ids whose key equals `key`.
  Result<std::vector<RecordId>> Find(int64_t key) const;

  /// All record ids with key in [lo, hi] (inclusive), in key order.
  Result<std::vector<RecordId>> FindRange(int64_t lo, int64_t hi) const;

  /// Visits every (key, rid) in ascending key order; return false to
  /// stop.
  Status Scan(const std::function<bool(int64_t, const RecordId&)>& visit) const;

  /// Number of entries.
  Result<uint64_t> Size() const;

  /// Tree height (1 = a single leaf). For tests and EXPLAIN output.
  Result<int> Height() const;

  uint64_t root_page() const { return root_; }

 private:
  BPlusTree(BufferPool* pool, PageAllocator* allocator, uint64_t root)
      : pool_(pool), allocator_(allocator), root_(root) {}

  /// Result of inserting into a subtree: set when the child split and
  /// the parent must add (separator_key, new right node).
  struct SplitResult {
    bool split = false;
    int64_t separator = 0;
    uint64_t right_page = 0;
  };

  Result<SplitResult> InsertInto(uint64_t page_no, int64_t key,
                                 const RecordId& rid);
  Result<uint64_t> LeftmostLeaf() const;
  /// Leaf that may contain `key` (the leaf a search for key lands in).
  Result<uint64_t> FindLeaf(int64_t key) const;

  BufferPool* pool_;
  PageAllocator* allocator_;
  uint64_t root_;
};

}  // namespace qbism::storage

#endif  // QBISM_STORAGE_BPTREE_H_
