#ifndef QBISM_STORAGE_HEAP_FILE_H_
#define QBISM_STORAGE_HEAP_FILE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/slotted_page.h"

namespace qbism::storage {

/// Hands out single pages from a device. Page 0 is reserved (0 doubles
/// as the "no next page" marker in page headers), so allocation starts
/// at page 1.
class PageAllocator {
 public:
  explicit PageAllocator(uint64_t num_pages)
      : num_pages_(num_pages), next_(1) {}

  Result<uint64_t> Allocate() {
    uint64_t page = next_.fetch_add(1, std::memory_order_relaxed);
    if (page >= num_pages_) {
      return Status::OutOfRange("PageAllocator: device full");
    }
    return page;
  }

  uint64_t allocated() const {
    return next_.load(std::memory_order_relaxed) - 1;
  }

 private:
  uint64_t num_pages_;
  std::atomic<uint64_t> next_;
};

/// Physical address of a record.
struct RecordId {
  uint64_t page_no = 0;
  SlotId slot = 0;
  friend bool operator==(const RecordId&, const RecordId&) = default;
};

/// An unordered file of variable-length records over slotted pages
/// chained through next-page pointers. One heap file backs each
/// relational table; large values are stored as long-field handles
/// inside the record, never inline.
class HeapFile {
 public:
  /// `pool` and `allocator` must outlive the file and address the same
  /// device.
  HeapFile(BufferPool* pool, PageAllocator* allocator);

  /// Appends a record. Fails when the record exceeds one page.
  Result<RecordId> Insert(const std::vector<uint8_t>& record);

  /// Reads a live record.
  Result<std::vector<uint8_t>> Read(const RecordId& rid);

  /// Tombstones a record.
  Status Delete(const RecordId& rid);

  /// Visits every live record in file order. The callback returns false
  /// to stop early.
  Status Scan(
      const std::function<bool(const RecordId&, const std::vector<uint8_t>&)>&
          visit);

  /// One live record inside a ScanBatched page buffer.
  struct RecordRef {
    RecordId rid;
    uint32_t offset = 0;
    uint32_t length = 0;
  };

  /// Page-at-a-time scan: every live record of a page is copied into
  /// `bytes` under a single latch acquisition / page lookup, then the
  /// callback runs latch-free over the whole page. The buffers are
  /// reused across pages, so a full scan performs no per-record
  /// allocation — this is the batch VM's scan path; Scan() remains the
  /// row-at-a-time oracle. The callback returns false to stop early.
  Status ScanBatched(
      const std::function<bool(const std::vector<uint8_t>& bytes,
                               const std::vector<RecordRef>& records)>&
          visit);

  uint64_t page_count() const { return page_count_; }

 private:
  Result<uint64_t> AppendPage(uint64_t prev_page);

  BufferPool* pool_;
  PageAllocator* allocator_;
  uint64_t first_page_ = 0;  // 0 = file still empty
  uint64_t last_page_ = 0;
  uint64_t page_count_ = 0;
};

}  // namespace qbism::storage

#endif  // QBISM_STORAGE_HEAP_FILE_H_
