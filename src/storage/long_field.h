#ifndef QBISM_STORAGE_LONG_FIELD_H_
#define QBISM_STORAGE_LONG_FIELD_H_

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buddy_allocator.h"
#include "storage/disk_device.h"
#include "storage/epoch.h"
#include "storage/wal.h"

namespace qbism::storage {

/// Handle to a long field; value 0 is reserved as "null".
struct LongFieldId {
  uint64_t value = 0;
  bool IsNull() const { return value == 0; }
  friend bool operator==(const LongFieldId&, const LongFieldId&) = default;
};

/// A byte range within a long field.
struct ByteRange {
  uint64_t offset = 0;
  uint64_t length = 0;
};

/// Knobs for the read planner.
struct ReadPlanOptions {
  /// Extents whose page gap is at most this many pages are merged into
  /// one physical transfer, reading the gap pages to save an arm
  /// movement ("gap fill"). 0 merges only overlapping/adjacent pages.
  /// On the modeled device a seek costs 6 page transfers, so small gap
  /// fills are almost always a win for Hilbert-clustered runs.
  uint64_t gap_fill_pages = 1;
};

/// One physical extent of a read plan: consecutive field-relative pages
/// fetched as a single sequential transfer.
struct PlannedExtent {
  uint64_t first_page = 0;
  uint64_t page_count = 0;

  uint64_t ByteOffset() const { return first_page * kPageSize; }
  uint64_t ByteCount() const { return page_count * kPageSize; }
  friend bool operator==(const PlannedExtent&, const PlannedExtent&) = default;
};

/// The physical shape of a planned multi-range read: the minimal set of
/// page extents (ascending on-device order — elevator order over the
/// buddy-allocated raw device) covering every requested byte, plus the
/// accounting the coalescing metrics are built on.
struct ReadPlan {
  std::vector<PlannedExtent> extents;
  uint64_t pages_read = 0;     // pages the plan transfers (incl. gap fill)
  uint64_t pages_touched = 0;  // distinct pages the ranges actually need
  uint64_t bytes_needed = 0;   // payload bytes (sum of range lengths)
};

/// Durability hooks wiring the LFM into the write path (both optional;
/// a hookless LFM behaves exactly as before — immediate, unlogged,
/// in-place mutations). With a WAL attached, every mutation appends a
/// redo record and becomes durable at its transaction's commit sync;
/// with an epoch manager attached, mutations are applied as new
/// *versions* so pinned readers keep a consistent pre-mutation view
/// (see docs/DURABILITY.md).
struct LfmDurabilityHooks {
  WriteAheadLog* wal = nullptr;      // not owned; must outlive the LFM
  EpochManager* epochs = nullptr;    // not owned; must outlive the LFM
};

/// The Long Field Manager (§5.1): stores large objects (REGIONs,
/// VOLUMEs, meshes) directly on the disk device using buddy allocation
/// for contiguity. Like Starburst's LFM it performs no internal
/// buffering — every read is charged to the device — and supports fast
/// random I/O to arbitrary pieces of a field, which is what lets the
/// spatial operators read only the pages a query region touches.
///
/// Thread-safe for the query service's read-mostly sharing: reads take
/// a shared lock on the field directory (the device serializes actual
/// page transfers itself); Create/Update/Delete take it exclusively —
/// but only for directory bookkeeping. Data pages of a new or replaced
/// field are written to a private extent *outside* the directory lock,
/// so readers never block on an ingest writing megabytes.
///
/// In durable mode (WAL attached) the directory is *versioned*: Update
/// always goes out of place, the superseded extent is retired (not
/// freed) with the epoch it died in, and a reader holding a
/// ReadSnapshot resolves ids against its pinned epoch. Retired extents
/// are reclaimed by Vacuum() once the last reader that could see them
/// drains. Mutations inside an explicit transaction (BeginTxn /
/// CommitTxn) stage their directory changes and publish them atomically
/// at commit, after the WAL sync; until then the new state is invisible
/// to every reader (including the writer — ingest never reads back
/// uncommitted fields).
class LongFieldManager {
 public:
  /// Manages the whole of `device` (not owned; must outlive this).
  explicit LongFieldManager(DiskDevice* device, LfmDurabilityHooks hooks = {});

  /// Writes a new long field and returns its handle.
  Result<LongFieldId> Create(const std::vector<uint8_t>& bytes);

  /// Size in bytes of an existing field.
  Result<uint64_t> Size(LongFieldId id) const;

  /// Reads the whole field.
  Result<std::vector<uint8_t>> Read(LongFieldId id) const;

  /// Reads bytes [offset, offset+length) of the field. Only the 4 KB
  /// pages covering the range are touched.
  Result<std::vector<uint8_t>> ReadRange(LongFieldId id, uint64_t offset,
                                         uint64_t length) const;

  /// Reads several byte ranges, touching each page at most once and
  /// visiting pages in ascending order (consecutive pages coalesce into
  /// sequential multi-page transfers). Returns one buffer per range, in
  /// input order. This is the access pattern EXTRACT_DATA generates
  /// from a region's run list.
  Result<std::vector<std::vector<uint8_t>>> ReadRanges(
      LongFieldId id, const std::vector<ByteRange>& ranges) const;

  /// Number of distinct pages the given ranges would touch.
  Result<uint64_t> PagesTouched(LongFieldId id,
                                const std::vector<ByteRange>& ranges) const;

  /// --- Vectored read planning (the EXTRACT_DATA fast path) ------------

  /// Pure planning step: maps byte ranges (any order, overlaps allowed)
  /// to the minimal ascending set of page extents under the gap-fill
  /// threshold. Validates every range against `field_size_bytes` with
  /// the same overflow-safe bound as ReadRange. Gap fill only bridges
  /// *between* needed pages; a plan never reads past the last page any
  /// range touches, so pages_read <= pages_touched + filled gaps and a
  /// plan with gap_fill_pages = 0 reads exactly the distinct pages.
  static Result<ReadPlan> BuildReadPlan(const std::vector<ByteRange>& ranges,
                                        uint64_t field_size_bytes,
                                        const ReadPlanOptions& options = {});

  /// BuildReadPlan against an existing field's size.
  Result<ReadPlan> PlanRead(LongFieldId id,
                            const std::vector<ByteRange>& ranges,
                            const ReadPlanOptions& options = {}) const;

  /// Executes (part of) a plan as one scatter-gather device call:
  /// extent i lands in outs[i] (extent.ByteCount() bytes). Extents must
  /// come from a plan for this field. This path goes straight to the
  /// raw device — the LFM is unbuffered, so a streaming extraction can
  /// never evict relational pages from the buffer pool or serialize on
  /// its latch.
  Status ReadExtents(LongFieldId id, const std::vector<PlannedExtent>& extents,
                     const std::vector<uint8_t*>& outs) const;

  /// Overwrites an existing field with new content (may reallocate; in
  /// durable mode always out of place, retiring the old version).
  Status Update(LongFieldId id, const std::vector<uint8_t>& bytes);

  /// Frees the field (in durable mode: retires its current version; the
  /// pages are reclaimed by Vacuum once no reader can see them).
  Status Delete(LongFieldId id);

  /// --- Transactions and reclamation (durable mode only) ---------------

  /// Opens an explicit transaction; subsequent Create/Update/Delete
  /// calls from any thread join it (stage their directory changes and
  /// log under its id) until CommitTxn/AbortTxn. One at a time; the
  /// ingest path serializes writers above this layer. Returns the WAL
  /// transaction id.
  Result<uint64_t> BeginTxn();

  /// Durability point: syncs the WAL through the commit record, then
  /// publishes every staged change as the next epoch. On a sync
  /// failure the transaction is rolled back (staged extents freed,
  /// directory untouched) and the device error returned — a failed
  /// commit can never become durable or visible.
  Status CommitTxn();

  /// Rolls the open transaction back: staged extents are freed, the
  /// directory is untouched, an advisory abort is logged.
  Status AbortTxn();

  /// The open transaction's WAL id, or 0.
  uint64_t open_txn() const;

  struct VacuumStats {
    uint64_t extents_freed = 0;
    uint64_t pages_freed = 0;
    uint64_t still_pinned = 0;  // retired extents a reader can still see
  };

  /// Frees every retired extent whose dropping epoch has drained past
  /// the oldest active reader (no-op without an epoch manager).
  VacuumStats Vacuum();

  /// Retired-but-unreclaimed extents (the vacuum backlog).
  uint64_t dead_extents() const;

  /// --- Crash recovery (driven by Database::Recover) --------------------

  /// Re-installs a committed kLfmSet: reserves the logged extent,
  /// retires any existing live version of `id`, and (when `verify_crc`)
  /// checks the on-device content against `content_crc` — the
  /// committed-implies-byte-identical guarantee. No WAL logging, no
  /// epochs; only valid before the system serves readers.
  Status RecoverSet(uint64_t id, uint64_t start_page, uint64_t page_count,
                    uint64_t size_bytes, uint32_t content_crc, bool verify_crc);

  /// Re-applies a committed kLfmDrop.
  Status RecoverDrop(uint64_t id);

  /// Pages the buddy allocator currently considers allocated (rounded
  /// extents). A failed Create/Update must leave this unchanged.
  uint64_t allocated_pages() const;

  /// Leak/corruption check used by the fault-sweep harness: the buddy
  /// allocator's structural invariants hold, and its allocated-page
  /// total equals the sum of the directory entries' extents — live
  /// versions, retired-but-unvacuumed versions, and staged
  /// (uncommitted) extents — i.e. no failed operation leaked pages or
  /// freed pages still referenced.
  Status CheckPageAccounting() const;

  DiskDevice* device() const { return device_; }
  EpochManager* epochs() const { return epochs_; }
  bool durable() const { return wal_ != nullptr; }

 private:
  /// Marker for a live version.
  static constexpr uint64_t kLive = UINT64_MAX;

  /// One version of a field: the extent holding its bytes plus the
  /// epoch interval [created_epoch, dropped_epoch) in which it is
  /// visible. Hookless mode keeps exactly one version per id with the
  /// interval [0, kLive).
  struct Entry {
    uint64_t start_page = 0;
    uint64_t size_bytes = 0;
    uint64_t created_epoch = 0;
    uint64_t dropped_epoch = kLive;
    uint64_t PageCount() const { return (size_bytes + kPageSize - 1) / kPageSize; }
    uint64_t ExtentPageCount() const {
      return BuddyAllocator::ExtentPages(PageCount() == 0 ? 1 : PageCount());
    }
  };

  /// A retired extent awaiting vacuum.
  struct DeadExtent {
    uint64_t id = 0;
    uint64_t start_page = 0;
    uint64_t dropped_epoch = 0;
  };

  /// A directory change staged by an open transaction.
  struct StagedOp {
    enum Kind { kSet, kDrop } kind = kSet;
    uint64_t id = 0;
    uint64_t start_page = 0;  // kSet only
    uint64_t size_bytes = 0;  // kSet only
  };

  /// Resolves `id` to the version visible at the calling thread's
  /// pinned epoch (or the latest live version without a snapshot).
  /// Callers must hold `mu_` (shared suffices) across the returned
  /// pointer's use.
  Result<const Entry*> Lookup(LongFieldId id) const;

  /// Writes `bytes` as zero-padded full pages at `start`.
  Status WritePadded(uint64_t start, uint64_t pages,
                     const std::vector<uint8_t>& bytes);

  /// Applies one op to the directory, stamping changes `epoch`. Caller
  /// holds mu_ exclusively.
  void ApplyOpLocked(const StagedOp& op, uint64_t epoch);

  /// Latest live version of id, or null. Caller holds mu_.
  Entry* LatestLiveLocked(uint64_t id);
  const Entry* LatestLiveLocked(uint64_t id) const;

  /// Stages or auto-commits one durable mutation whose data pages (if
  /// any) are already on the device: appends the WAL record and either
  /// joins the open transaction or commits immediately. On failure the
  /// caller must free any extent it allocated.
  Status LogAndPublish(WalRecordType type, const std::vector<uint8_t>& payload,
                       const StagedOp& op);

  DiskDevice* device_;
  WriteAheadLog* wal_;
  EpochManager* epochs_;
  mutable std::shared_mutex mu_;
  BuddyAllocator allocator_;  // guarded by mu_
  std::unordered_map<uint64_t, std::vector<Entry>> directory_;  // mu_
  std::vector<DeadExtent> dead_;                                // mu_
  std::vector<StagedOp> staged_;                                // mu_
  uint64_t next_id_ = 1;                                        // mu_
  uint64_t open_txn_ = 0;                                       // mu_
  /// Serializes commits (WAL commit sync + directory publish + epoch
  /// advance) so concurrent auto-commits cannot interleave their
  /// publish/advance pairs. Readers never take it. Acquired before mu_.
  mutable std::mutex commit_mu_;
};

}  // namespace qbism::storage

#endif  // QBISM_STORAGE_LONG_FIELD_H_
