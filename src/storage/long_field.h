#ifndef QBISM_STORAGE_LONG_FIELD_H_
#define QBISM_STORAGE_LONG_FIELD_H_

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buddy_allocator.h"
#include "storage/disk_device.h"

namespace qbism::storage {

/// Handle to a long field; value 0 is reserved as "null".
struct LongFieldId {
  uint64_t value = 0;
  bool IsNull() const { return value == 0; }
  friend bool operator==(const LongFieldId&, const LongFieldId&) = default;
};

/// A byte range within a long field.
struct ByteRange {
  uint64_t offset = 0;
  uint64_t length = 0;
};

/// Knobs for the read planner.
struct ReadPlanOptions {
  /// Extents whose page gap is at most this many pages are merged into
  /// one physical transfer, reading the gap pages to save an arm
  /// movement ("gap fill"). 0 merges only overlapping/adjacent pages.
  /// On the modeled device a seek costs 6 page transfers, so small gap
  /// fills are almost always a win for Hilbert-clustered runs.
  uint64_t gap_fill_pages = 1;
};

/// One physical extent of a read plan: consecutive field-relative pages
/// fetched as a single sequential transfer.
struct PlannedExtent {
  uint64_t first_page = 0;
  uint64_t page_count = 0;

  uint64_t ByteOffset() const { return first_page * kPageSize; }
  uint64_t ByteCount() const { return page_count * kPageSize; }
  friend bool operator==(const PlannedExtent&, const PlannedExtent&) = default;
};

/// The physical shape of a planned multi-range read: the minimal set of
/// page extents (ascending on-device order — elevator order over the
/// buddy-allocated raw device) covering every requested byte, plus the
/// accounting the coalescing metrics are built on.
struct ReadPlan {
  std::vector<PlannedExtent> extents;
  uint64_t pages_read = 0;     // pages the plan transfers (incl. gap fill)
  uint64_t pages_touched = 0;  // distinct pages the ranges actually need
  uint64_t bytes_needed = 0;   // payload bytes (sum of range lengths)
};

/// The Long Field Manager (§5.1): stores large objects (REGIONs,
/// VOLUMEs, meshes) directly on the disk device using buddy allocation
/// for contiguity. Like Starburst's LFM it performs no internal
/// buffering — every read is charged to the device — and supports fast
/// random I/O to arbitrary pieces of a field, which is what lets the
/// spatial operators read only the pages a query region touches.
///
/// Thread-safe for the query service's read-mostly sharing: reads take
/// a shared lock on the field directory (the device serializes actual
/// page transfers itself); Create/Update/Delete take it exclusively.
class LongFieldManager {
 public:
  /// Manages the whole of `device` (not owned; must outlive this).
  explicit LongFieldManager(DiskDevice* device);

  /// Writes a new long field and returns its handle.
  Result<LongFieldId> Create(const std::vector<uint8_t>& bytes);

  /// Size in bytes of an existing field.
  Result<uint64_t> Size(LongFieldId id) const;

  /// Reads the whole field.
  Result<std::vector<uint8_t>> Read(LongFieldId id) const;

  /// Reads bytes [offset, offset+length) of the field. Only the 4 KB
  /// pages covering the range are touched.
  Result<std::vector<uint8_t>> ReadRange(LongFieldId id, uint64_t offset,
                                         uint64_t length) const;

  /// Reads several byte ranges, touching each page at most once and
  /// visiting pages in ascending order (consecutive pages coalesce into
  /// sequential multi-page transfers). Returns one buffer per range, in
  /// input order. This is the access pattern EXTRACT_DATA generates
  /// from a region's run list.
  Result<std::vector<std::vector<uint8_t>>> ReadRanges(
      LongFieldId id, const std::vector<ByteRange>& ranges) const;

  /// Number of distinct pages the given ranges would touch.
  Result<uint64_t> PagesTouched(LongFieldId id,
                                const std::vector<ByteRange>& ranges) const;

  /// --- Vectored read planning (the EXTRACT_DATA fast path) ------------

  /// Pure planning step: maps byte ranges (any order, overlaps allowed)
  /// to the minimal ascending set of page extents under the gap-fill
  /// threshold. Validates every range against `field_size_bytes` with
  /// the same overflow-safe bound as ReadRange. Gap fill only bridges
  /// *between* needed pages; a plan never reads past the last page any
  /// range touches, so pages_read <= pages_touched + filled gaps and a
  /// plan with gap_fill_pages = 0 reads exactly the distinct pages.
  static Result<ReadPlan> BuildReadPlan(const std::vector<ByteRange>& ranges,
                                        uint64_t field_size_bytes,
                                        const ReadPlanOptions& options = {});

  /// BuildReadPlan against an existing field's size.
  Result<ReadPlan> PlanRead(LongFieldId id,
                            const std::vector<ByteRange>& ranges,
                            const ReadPlanOptions& options = {}) const;

  /// Executes (part of) a plan as one scatter-gather device call:
  /// extent i lands in outs[i] (extent.ByteCount() bytes). Extents must
  /// come from a plan for this field. This path goes straight to the
  /// raw device — the LFM is unbuffered, so a streaming extraction can
  /// never evict relational pages from the buffer pool or serialize on
  /// its latch.
  Status ReadExtents(LongFieldId id, const std::vector<PlannedExtent>& extents,
                     const std::vector<uint8_t*>& outs) const;

  /// Overwrites an existing field with new content (may reallocate).
  Status Update(LongFieldId id, const std::vector<uint8_t>& bytes);

  /// Frees the field.
  Status Delete(LongFieldId id);

  /// Pages the buddy allocator currently considers allocated (rounded
  /// extents). A failed Create/Update must leave this unchanged.
  uint64_t allocated_pages() const;

  /// Leak/corruption check used by the fault-sweep harness: the buddy
  /// allocator's structural invariants hold, and its allocated-page
  /// total equals the sum of the directory entries' extents — i.e. no
  /// failed operation leaked pages or freed pages still referenced.
  Status CheckPageAccounting() const;

  DiskDevice* device() const { return device_; }

 private:
  struct Entry {
    uint64_t start_page = 0;
    uint64_t size_bytes = 0;
    uint64_t PageCount() const { return (size_bytes + kPageSize - 1) / kPageSize; }
  };

  /// Callers must hold `mu_` (shared suffices) across the returned
  /// pointer's use.
  Result<const Entry*> Lookup(LongFieldId id) const;

  DiskDevice* device_;
  mutable std::shared_mutex mu_;
  BuddyAllocator allocator_;                      // guarded by mu_
  std::unordered_map<uint64_t, Entry> directory_;  // guarded by mu_
  uint64_t next_id_ = 1;                           // guarded by mu_
};

}  // namespace qbism::storage

#endif  // QBISM_STORAGE_LONG_FIELD_H_
