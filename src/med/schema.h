#ifndef QBISM_MED_SCHEMA_H_
#define QBISM_MED_SCHEMA_H_

#include "common/status.h"
#include "sql/database.h"

namespace qbism::med {

/// Creates the medical-database tables of Figure 1:
///
///   atlas(atlasId, atlasName, n, x0, y0, z0, dx, dy, dz)
///     — coordinate-space description: grid side n, origin, voxel size
///       in real-world mm (§3.3 "resolution and voxel size").
///   neuralSystem(systemId, systemName)
///   neuralStructure(structureId, structureName, systemId)
///   atlasStructure(atlasId, structureId, region, mesh)
///     — REGION long field (interior) + triangular surface mesh.
///   patient(patientId, name, age, sex)
///   rawVolume(studyId, patientId, date, modality, nx, ny, nz, data)
///     — original study in scanline order.
///   warpedVolume(studyId, atlasId, data,
///                m00..m22, tx, ty, tz)
///     — warped VOLUME long field plus the affine warping parameters
///       (atlas -> patient), stored at load time (§3.3).
///   intensityBand(studyId, atlasId, lo, hi, region)
///     — redundant banding index over warpedVolume (§3.3).
Status BootstrapSchema(sql::Database* db);

}  // namespace qbism::med

#endif  // QBISM_MED_SCHEMA_H_
