#include "med/schema.h"

#include "common/macros.h"

namespace qbism::med {

Status BootstrapSchema(sql::Database* db) {
  static const char* kStatements[] = {
      "create table atlas (atlasId int, atlasName string, n int,"
      " x0 double, y0 double, z0 double, dx double, dy double, dz double)",

      "create table neuralSystem (systemId int, systemName string)",

      "create table neuralStructure (structureId int, structureName string,"
      " systemId int)",

      "create table atlasStructure (atlasId int, structureId int,"
      " region longfield, mesh longfield)",

      "create table patient (patientId int, name string, age int,"
      " sex string)",

      "create table rawVolume (studyId int, patientId int, date string,"
      " modality string, nx int, ny int, nz int, data longfield)",

      "create table warpedVolume (studyId int, atlasId int, data longfield,"
      " m00 double, m01 double, m02 double,"
      " m10 double, m11 double, m12 double,"
      " m20 double, m21 double, m22 double,"
      " tx double, ty double, tz double)",

      "create table intensityBand (studyId int, atlasId int, lo int, hi int,"
      " region longfield)",
  };
  for (const char* sql : kStatements) {
    QBISM_ASSIGN_OR_RETURN(sql::ResultSet unused, db->Execute(sql));
    (void)unused;
  }
  return Status::OK();
}

}  // namespace qbism::med
