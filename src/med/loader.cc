#include "med/loader.h"

#include <array>

#include "common/macros.h"
#include "med/phantom.h"
#include "viz/mesh.h"
#include "warp/warp.h"

namespace qbism::med {

using geometry::Affine3;
using region::Region;
using sql::Row;
using sql::Value;
using storage::LongFieldId;
using volume::Volume;

Status StoreStudyRecord(SpatialExtension* ext, const StudyRecord& record,
                        index::StudySummary* summary) {
  sql::Database* db = ext->db();
  const warp::RawVolume& raw = record.raw;

  LongFieldId raw_field;
  if (record.store_raw) {
    QBISM_ASSIGN_OR_RETURN(raw_field, db->lfm()->Create(raw.data()));
  }
  QBISM_RETURN_NOT_OK(db->Insert(
      "rawVolume",
      Row{Value::Int(record.study_id), Value::Int(record.patient_id),
          Value::String(record.date), Value::String(record.modality),
          Value::Int(raw.nx()), Value::Int(raw.ny()), Value::Int(raw.nz()),
          Value::LongField(raw_field)}));

  // Warp to atlas space at load time (the computation is expensive, so
  // the paper stores the result rather than warping per query).
  Affine3 warp_tx = StudyWarp(record.warp_seed, raw.nx(), raw.ny(), raw.nz());
  Volume warped = warp::WarpToAtlas(raw, warp_tx, ext->config().grid,
                                    ext->config().curve);
  QBISM_ASSIGN_OR_RETURN(LongFieldId volume_field, ext->StoreVolume(warped));
  const auto& m = warp_tx.linear();
  const auto& t = warp_tx.translation();
  QBISM_RETURN_NOT_OK(db->Insert(
      "warpedVolume",
      Row{Value::Int(record.study_id), Value::Int(record.atlas_id),
          Value::LongField(volume_field), Value::Double(m[0]),
          Value::Double(m[1]), Value::Double(m[2]), Value::Double(m[3]),
          Value::Double(m[4]), Value::Double(m[5]), Value::Double(m[6]),
          Value::Double(m[7]), Value::Double(m[8]), Value::Double(t.x),
          Value::Double(t.y), Value::Double(t.z)}));

  // Redundant intensity-band index (§3.3).
  if (summary != nullptr) {
    *summary = index::StudySummary{};
    summary->study_id = record.study_id;
    summary->atlas_id = record.atlas_id;
  }
  std::vector<Region> bands = warped.UniformBands(record.band_width);
  int lo = 0;
  for (const Region& band : bands) {
    int hi = std::min(lo + record.band_width - 1, 255);
    QBISM_ASSIGN_OR_RETURN(LongFieldId band_field, ext->StoreRegion(band));
    QBISM_RETURN_NOT_OK(db->Insert(
        "intensityBand",
        Row{Value::Int(record.study_id), Value::Int(record.atlas_id),
            Value::Int(lo), Value::Int(hi), Value::LongField(band_field)}));
    if (summary != nullptr) {
      // Must match SpatialIndexManager::BuildFromCatalog band for band:
      // the crash-recovery path replays this summary from the WAL while
      // a cold start re-derives it from the rows just inserted.
      index::BandSummary bs = index::SummarizeBandRegion(
          static_cast<uint8_t>(lo), static_cast<uint8_t>(hi), band);
      if (bs.voxels > 0) summary->bitmap.SetRange(bs.lo, bs.hi);
      summary->bands.push_back(bs);
    }
    lo += record.band_width;
  }
  return Status::OK();
}

namespace {

/// Bulk-load wrapper: the synthetic corpus's dates are derived from the
/// study id.
Status LoadStudy(SpatialExtension* ext, const LoadOptions& options,
                 int study_id, int patient_id, const std::string& modality,
                 const warp::RawVolume& raw, uint64_t warp_seed,
                 int atlas_id) {
  StudyRecord record;
  record.study_id = study_id;
  record.patient_id = patient_id;
  record.date = "1993-07-0" + std::to_string(1 + study_id % 9);
  record.modality = modality;
  record.raw = raw;
  record.warp_seed = warp_seed;
  record.atlas_id = atlas_id;
  record.band_width = options.band_width;
  record.store_raw = options.store_raw_volumes;
  return StoreStudyRecord(ext, record);
}

}  // namespace

Result<LoadedDataset> PopulateDatabase(SpatialExtension* ext,
                                       const LoadOptions& options) {
  sql::Database* db = ext->db();
  LoadedDataset dataset;

  // Atlas row: 128^3 grid over a 20 x 15 x 30 cm real-world field (§3.1),
  // voxel sizes in millimetres.
  double side = static_cast<double>(ext->config().grid.SideLength());
  QBISM_RETURN_NOT_OK(db->Insert(
      "atlas", Row{Value::Int(dataset.atlas_id), Value::String("Talairach"),
                   Value::Int(static_cast<int64_t>(side)), Value::Double(0),
                   Value::Double(0), Value::Double(0),
                   Value::Double(200.0 / side), Value::Double(150.0 / side),
                   Value::Double(300.0 / side)}));

  // Neural systems and structures.
  std::vector<std::string> systems = StandardNeuralSystems();
  for (size_t i = 0; i < systems.size(); ++i) {
    QBISM_RETURN_NOT_OK(db->Insert(
        "neuralSystem", Row{Value::Int(static_cast<int64_t>(i + 1)),
                            Value::String(systems[i])}));
  }
  auto system_id = [&](const std::string& name) -> int64_t {
    for (size_t i = 0; i < systems.size(); ++i) {
      if (systems[i] == name) return static_cast<int64_t>(i + 1);
    }
    return 0;
  };

  std::vector<PhantomStructure> structures = StandardAtlasStructures();
  for (size_t i = 0; i < structures.size(); ++i) {
    int64_t structure_id = static_cast<int64_t>(i + 1);
    QBISM_RETURN_NOT_OK(
        db->Insert("neuralStructure",
                   Row{Value::Int(structure_id),
                       Value::String(structures[i].name),
                       Value::Int(system_id(structures[i].system))}));

    Region region = Region::FromShape(ext->config().grid, ext->config().curve,
                                      *structures[i].shape);
    QBISM_ASSIGN_OR_RETURN(LongFieldId region_field, ext->StoreRegion(region));
    LongFieldId mesh_field;
    if (options.build_meshes) {
      viz::TriangleMesh mesh = viz::ExtractSurface(region);
      QBISM_ASSIGN_OR_RETURN(mesh_field, db->lfm()->Create(mesh.Serialize()));
    }
    QBISM_RETURN_NOT_OK(db->Insert(
        "atlasStructure",
        Row{Value::Int(dataset.atlas_id), Value::Int(structure_id),
            Value::LongField(region_field), Value::LongField(mesh_field)}));
    dataset.structure_names.push_back(structures[i].name);
  }

  // Patients and studies.
  static const char* kNames[] = {"Ada",  "Boris", "Chen", "Dora",
                                 "Egon", "Fay",   "Gus",  "Hana"};
  int patient_id = 1;
  for (int i = 0; i < options.num_pet_studies; ++i, ++patient_id) {
    QBISM_RETURN_NOT_OK(db->Insert(
        "patient", Row{Value::Int(patient_id),
                       Value::String(kNames[(patient_id - 1) % 8]),
                       Value::Int(30 + 3 * patient_id),
                       Value::String(patient_id % 2 ? "F" : "M")}));
    int study_id = options.first_pet_study_id + i;
    warp::RawVolume raw = GeneratePetStudy(options.seed + i);
    QBISM_RETURN_NOT_OK(LoadStudy(ext, options, study_id, patient_id, "PET",
                                  raw, options.seed + i, dataset.atlas_id));
    dataset.pet_study_ids.push_back(study_id);
  }
  for (int i = 0; i < options.num_mri_studies; ++i, ++patient_id) {
    QBISM_RETURN_NOT_OK(db->Insert(
        "patient", Row{Value::Int(patient_id),
                       Value::String(kNames[(patient_id - 1) % 8]),
                       Value::Int(30 + 3 * patient_id),
                       Value::String(patient_id % 2 ? "F" : "M")}));
    int study_id = options.first_mri_study_id + i;
    warp::RawVolume raw = GenerateMriStudy(options.seed + 100 + i);
    QBISM_RETURN_NOT_OK(LoadStudy(ext, options, study_id, patient_id, "MRI",
                                  raw, options.seed + 100 + i,
                                  dataset.atlas_id));
    dataset.mri_study_ids.push_back(study_id);
  }

  return dataset;
}

Result<warp::RawVolume> LoadRawVolume(SpatialExtension* ext, int study_id) {
  sql::Database* db = ext->db();
  QBISM_ASSIGN_OR_RETURN(
      sql::ResultSet rows,
      db->Execute("select nx, ny, nz, data from rawVolume where studyId = " +
                  std::to_string(study_id)));
  if (rows.rows.empty()) {
    return Status::NotFound("no raw volume for study " +
                            std::to_string(study_id));
  }
  const sql::Row& row = rows.rows.front();
  QBISM_ASSIGN_OR_RETURN(LongFieldId field, row[3].AsLongField());
  if (field.IsNull()) {
    return Status::NotFound("raw data for study " + std::to_string(study_id) +
                            " was not stored (store_raw_volumes = false)");
  }
  QBISM_ASSIGN_OR_RETURN(std::vector<uint8_t> data, db->lfm()->Read(field));
  return warp::RawVolume::Create(
      static_cast<int>(row[0].AsInt().value()),
      static_cast<int>(row[1].AsInt().value()),
      static_cast<int>(row[2].AsInt().value()), std::move(data));
}

Result<volume::Volume> RewarpFromRaw(SpatialExtension* ext, int study_id) {
  QBISM_ASSIGN_OR_RETURN(warp::RawVolume raw, LoadRawVolume(ext, study_id));
  sql::Database* db = ext->db();
  QBISM_ASSIGN_OR_RETURN(
      sql::ResultSet rows,
      db->Execute("select m00, m01, m02, m10, m11, m12, m20, m21, m22,"
                  " tx, ty, tz, data from warpedVolume where studyId = " +
                  std::to_string(study_id)));
  if (rows.rows.empty()) {
    return Status::NotFound("no warped volume for study " +
                            std::to_string(study_id));
  }
  const sql::Row& row = rows.rows.front();
  std::array<double, 9> m{};
  for (int i = 0; i < 9; ++i) {
    QBISM_ASSIGN_OR_RETURN(m[static_cast<size_t>(i)], row[i].AsDouble());
  }
  QBISM_ASSIGN_OR_RETURN(double tx, row[9].AsDouble());
  QBISM_ASSIGN_OR_RETURN(double ty, row[10].AsDouble());
  QBISM_ASSIGN_OR_RETURN(double tz, row[11].AsDouble());
  geometry::Affine3 warp_tx(m, {tx, ty, tz});
  volume::Volume rewarped = warp::WarpToAtlas(raw, warp_tx, ext->config().grid,
                                              ext->config().curve);
  // Verify against the stored warped VOLUME.
  QBISM_ASSIGN_OR_RETURN(LongFieldId volume_field, row[12].AsLongField());
  QBISM_ASSIGN_OR_RETURN(volume::Volume stored,
                         ext->LoadVolume(volume_field));
  if (stored.data() != rewarped.data()) {
    return Status::Corruption("re-warped study " + std::to_string(study_id) +
                              " differs from the stored warped VOLUME");
  }
  return rewarped;
}

}  // namespace qbism::med
