#include "med/phantom.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/rng.h"

namespace qbism::med {

using geometry::Affine3;
using geometry::MakeEllipsoid;
using geometry::MakeHalfSpace;
using geometry::MakeTube;
using geometry::ShapePtr;
using geometry::Vec3d;

std::vector<std::string> StandardNeuralSystems() {
  return {"whole_brain", "limbic", "basal_ganglia", "visual", "motor"};
}

std::vector<PhantomStructure> StandardAtlasStructures() {
  std::vector<PhantomStructure> structures;
  const Vec3d center{64, 64, 64};

  // Whole-brain envelope (shared by several structures).
  ShapePtr brain = MakeEllipsoid(center, {52, 42, 38});

  // ntal1: one hemisphere of the brain (Figure 6a), ~half the envelope.
  structures.push_back(
      {"ntal1", "whole_brain",
       geometry::Intersect(brain, MakeHalfSpace({1, 0, 0}, 64.0))});

  // ntal: thalamus-sized central structure (~16k voxels).
  structures.push_back(
      {"ntal", "whole_brain", MakeEllipsoid({64, 60, 60}, {18, 15, 13})});

  // putamen: the structure named in the §3.4 example query.
  structures.push_back(
      {"putamen", "basal_ganglia", MakeEllipsoid({44, 62, 60}, {8, 12, 9})});

  structures.push_back(
      {"caudate", "basal_ganglia",
       MakeTube({{50, 50, 70}, {54, 60, 74}, {58, 72, 70}}, 5.0)});

  structures.push_back(
      {"hippocampus", "limbic",
       MakeTube({{40, 78, 52}, {46, 86, 50}, {56, 92, 48}, {66, 94, 46}},
                5.5)});

  structures.push_back({"ventricle_l", "whole_brain",
                        MakeEllipsoid({54, 66, 66}, {6, 16, 10})});
  structures.push_back({"ventricle_r", "whole_brain",
                        MakeEllipsoid({74, 66, 66}, {6, 16, 10})});

  structures.push_back(
      {"cerebellum", "motor", MakeEllipsoid({64, 94, 38}, {24, 16, 14})});

  structures.push_back(
      {"brainstem", "motor",
       MakeTube({{64, 80, 44}, {64, 86, 30}, {64, 90, 16}}, 6.0)});

  structures.push_back(
      {"visual_cortex", "visual",
       geometry::Intersect(brain, MakeHalfSpace({0, -1, 0}, -96.0))});

  // cortex_shell: thin outer rind of the brain — many small runs, the
  // speckled end of the region-statistics spectrum.
  structures.push_back(
      {"cortex_shell", "whole_brain",
       geometry::Difference(brain, MakeEllipsoid(center, {46, 36, 32}))});

  QBISM_CHECK(structures.size() == 11);
  return structures;
}

namespace {

/// Adds a Gaussian blob to a float field over its 3-sigma bounding box.
void AddBlob(std::vector<float>* field, int nx, int ny, int nz, double cx,
             double cy, double cz, double sigma, double amplitude) {
  int x0 = std::max(0, static_cast<int>(cx - 3 * sigma));
  int x1 = std::min(nx - 1, static_cast<int>(cx + 3 * sigma));
  int y0 = std::max(0, static_cast<int>(cy - 3 * sigma));
  int y1 = std::min(ny - 1, static_cast<int>(cy + 3 * sigma));
  int z0 = std::max(0, static_cast<int>(cz - 3 * sigma));
  int z1 = std::min(nz - 1, static_cast<int>(cz + 3 * sigma));
  double inv = 1.0 / (2.0 * sigma * sigma);
  for (int z = z0; z <= z1; ++z) {
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        double d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy) +
                    (z - cz) * (z - cz);
        (*field)[(static_cast<size_t>(z) * ny + y) * nx + x] +=
            static_cast<float>(amplitude * std::exp(-d2 * inv));
      }
    }
  }
}

}  // namespace

warp::RawVolume GeneratePetStudy(uint64_t seed) {
  const int nx = 128, ny = 128, nz = 51;
  Rng rng(seed * 0x9e37u + 17);
  std::vector<float> field(static_cast<size_t>(nx) * ny * nz, 0.0f);

  // Brain envelope in patient space.
  const double cx = 64, cy = 64, cz = 25.5;
  const double rx = 50, ry = 42, rz = 22;
  auto inside = [&](double x, double y, double z) {
    double u = (x - cx) / rx, v = (y - cy) / ry, w = (z - cz) / rz;
    return u * u + v * v + w * w <= 1.0;
  };

  // Localized activity blobs ("localized, non-uniform intensity
  // distributions involving sections or layers of brain structures").
  const int blobs = 28;
  for (int k = 0; k < blobs; ++k) {
    double bx, by, bz;
    do {
      bx = rng.NextDoubleIn(cx - rx, cx + rx);
      by = rng.NextDoubleIn(cy - ry, cy + ry);
      bz = rng.NextDoubleIn(cz - rz, cz + rz);
    } while (!inside(bx, by, bz));
    double sigma = rng.NextDoubleIn(2.5, 9.0);
    double amplitude = rng.NextDoubleIn(50.0, 190.0);
    AddBlob(&field, nx, ny, nz, bx, by, bz, sigma, amplitude);
  }

  std::vector<uint8_t> data(field.size(), 0);
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        size_t i = (static_cast<size_t>(z) * ny + y) * nx + x;
        if (!inside(x, y, z)) continue;  // no signal outside the head
        double base = 36.0;              // resting metabolic background
        double value = base + field[i] + rng.NextGaussian() * 5.0;
        data[i] = static_cast<uint8_t>(std::clamp(value, 0.0, 255.0));
      }
    }
  }
  auto raw = warp::RawVolume::Create(nx, ny, nz, std::move(data));
  QBISM_CHECK(raw.ok());
  return raw.MoveValue();
}

warp::RawVolume GenerateMriStudy(uint64_t seed) {
  const int nx = 512, ny = 512, nz = 44;
  Rng rng(seed * 0x85ebu + 3);
  std::vector<uint8_t> data(static_cast<size_t>(nx) * ny * nz, 0);
  const double cx = 256, cy = 256, cz = 22;
  const double rx = 210, ry = 180, rz = 20;
  // Ventricle offsets scaled to this grid.
  const double vx = 40, vy = 10;
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        double u = (x - cx) / rx, v = (y - cy) / ry, w = (z - cz) / rz;
        double rho = std::sqrt(u * u + v * v + w * w);
        if (rho > 1.0) continue;
        double value;
        if (rho > 0.94) {
          value = 215.0;  // skull rim, bright on this synthetic protocol
        } else if (rho > 0.62) {
          value = 150.0;  // gray matter
        } else {
          value = 105.0;  // white matter
        }
        // Dark CSF in two ventricle-like pockets.
        double dl = std::hypot((x - (cx - vx)) / 28.0, (y - (cy + vy)) / 60.0) +
                    std::fabs(z - cz) / 11.0;
        double dr = std::hypot((x - (cx + vx)) / 28.0, (y - (cy + vy)) / 60.0) +
                    std::fabs(z - cz) / 11.0;
        if (dl < 1.0 || dr < 1.0) value = 38.0;
        // Slow spatial modulation plus acquisition noise.
        value += 10.0 * std::sin(x * 0.021) * std::cos(y * 0.017);
        value += rng.NextGaussian() * 4.0;
        data[(static_cast<size_t>(z) * ny + y) * nx + x] =
            static_cast<uint8_t>(std::clamp(value, 0.0, 255.0));
      }
    }
  }
  auto raw = warp::RawVolume::Create(nx, ny, nz, std::move(data));
  QBISM_CHECK(raw.ok());
  return raw.MoveValue();
}

Affine3 StudyWarp(uint64_t seed, int nx, int ny, int nz) {
  Rng rng(seed * 0xc2b2u + 29);
  const double atlas_side = 128.0;
  Vec3d atlas_center{atlas_side / 2, atlas_side / 2, atlas_side / 2};
  Vec3d patient_center{nx / 2.0, ny / 2.0, nz / 2.0};
  double angle = rng.NextDoubleIn(-0.06, 0.06);  // small head tilt
  Vec3d jitter{rng.NextDoubleIn(-2, 2), rng.NextDoubleIn(-2, 2),
               rng.NextDoubleIn(-1, 1)};
  Affine3 scale = Affine3::Scaling(nx / atlas_side, ny / atlas_side,
                                   nz / atlas_side);
  Affine3 rotate = Affine3::RotationAboutAxis(2, angle);
  // atlas -> centered -> rotate -> scale -> patient center (+ jitter).
  return Affine3::Translation(patient_center + jitter)
      .Compose(scale)
      .Compose(rotate)
      .Compose(Affine3::Translation(Vec3d{} - atlas_center));
}

}  // namespace qbism::med
