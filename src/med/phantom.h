#ifndef QBISM_MED_PHANTOM_H_
#define QBISM_MED_PHANTOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/affine.h"
#include "geometry/shapes.h"
#include "warp/warp.h"

namespace qbism::med {

/// One synthetic anatomic structure: name, owning neural system, and the
/// parametric solid that rasterizes to its REGION.
struct PhantomStructure {
  std::string name;
  std::string system;
  geometry::ShapePtr shape;
};

/// The substitute Talairach atlas: 11 parametric structures in the
/// 128^3 atlas space (the paper digitized 11 structures from the
/// Talairach & Tournoux atlas). "ntal" and "ntal1" match the query
/// regions of Table 3 — ntal1 is one brain hemisphere (Figure 6a) and
/// ntal a thalamus-sized interior structure — with voxel counts close
/// to the paper's 162,628 and 16,016.
std::vector<PhantomStructure> StandardAtlasStructures();

/// Names of the neural systems the structures belong to.
std::vector<std::string> StandardNeuralSystems();

/// Synthetic PET-like study in patient space at the paper's native PET
/// resolution (128 x 128 x 51, 8-bit): localized blobs of physiological
/// activity inside a brain envelope over a smooth background plus noise.
/// Deterministic in `seed`.
warp::RawVolume GeneratePetStudy(uint64_t seed);

/// Synthetic MRI-like study (512 x 512 x 44, 8-bit): concentric
/// tissue shells (white/gray matter, CSF, skull rim) plus noise.
warp::RawVolume GenerateMriStudy(uint64_t seed);

/// The affine atlas -> patient registration for a study: anisotropic
/// scale from the 128^3 atlas grid to the study grid composed with a
/// small per-study rotation and translation jitter (the misalignment
/// the paper's warping step corrects).
geometry::Affine3 StudyWarp(uint64_t seed, int nx, int ny, int nz);

}  // namespace qbism::med

#endif  // QBISM_MED_PHANTOM_H_
