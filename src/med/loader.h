#ifndef QBISM_MED_LOADER_H_
#define QBISM_MED_LOADER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/summary.h"
#include "qbism/spatial_extension.h"
#include "warp/warp.h"

namespace qbism::med {

/// Dataset sizing. Defaults reproduce the paper's corpus (§4): 5 PET
/// studies (128x128x51), 3 MRI studies (512x512x44), one atlas with 11
/// structures, every study warped to the 128^3 atlas space and banded
/// into 8 intensity bands of width 32.
struct LoadOptions {
  int num_pet_studies = 5;
  int num_mri_studies = 3;
  uint64_t seed = 42;
  int band_width = 32;
  bool build_meshes = true;
  bool store_raw_volumes = true;
  int first_pet_study_id = 53;  // the paper's example queries study 53
  int first_mri_study_id = 80;
};

/// Handles to what the loader created.
struct LoadedDataset {
  int atlas_id = 1;
  std::vector<int> pet_study_ids;
  std::vector<int> mri_study_ids;
  std::vector<std::string> structure_names;
};

/// Everything needed to store one study: identity columns plus the raw
/// patient-space scan. Both the bulk loader and the online ingest path
/// (qbism::IngestManager) funnel through StoreStudyRecord, so an
/// ingested study is row-for-row identical to a bulk-loaded one.
struct StudyRecord {
  int study_id = 0;
  int patient_id = 0;
  std::string date;
  std::string modality;  // "PET" or "MRI"
  warp::RawVolume raw;
  uint64_t warp_seed = 0;  // seeds the study's registration warp
  int atlas_id = 1;
  int band_width = 32;
  bool store_raw = true;
};

/// Stores one study end to end: raw long field + rawVolume row, warp to
/// atlas space, warped VOLUME, and the intensity-band index (§3.3).
/// When `summary` is non-null it is filled with the study's spatial
/// index summary (src/index), built from the same band regions the
/// intensityBand rows store — byte-identical to what
/// SpatialIndexManager::BuildFromCatalog would derive by re-reading
/// them, which is what keeps the WAL-maintained index and the
/// from-catalog rebuild interchangeable.
Status StoreStudyRecord(SpatialExtension* ext, const StudyRecord& record,
                        index::StudySummary* summary);
inline Status StoreStudyRecord(SpatialExtension* ext,
                               const StudyRecord& record) {
  return StoreStudyRecord(ext, record, nullptr);
}

/// Populates the schema (BootstrapSchema must have been called) with the
/// synthetic corpus: atlas row, neural systems/structures, rasterized
/// structure REGIONs and surface meshes, patients, raw studies, warped
/// VOLUMEs (warp computed and applied at load time, as §3.3 prescribes),
/// and intensity-band REGIONs.
Result<LoadedDataset> PopulateDatabase(SpatialExtension* ext,
                                       const LoadOptions& options);

/// Reads a study's original patient-space data back out of the Raw
/// Volume entity (scanline-order long field + extent columns). Fails
/// when the study does not exist or its raw data was not stored.
Result<warp::RawVolume> LoadRawVolume(SpatialExtension* ext, int study_id);

/// Reconstructs the study's warped VOLUME from the stored raw data and
/// warp parameters (the m00..m22/tx..tz columns of Warped Volume) and
/// verifies nothing was lost at load time: the result must equal the
/// stored warped VOLUME voxel-for-voxel.
Result<volume::Volume> RewarpFromRaw(SpatialExtension* ext, int study_id);

}  // namespace qbism::med

#endif  // QBISM_MED_LOADER_H_
