#include "index/manager.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "common/macros.h"
#include "geometry/vec3.h"
#include "obs/trace.h"
#include "storage/epoch.h"

namespace qbism::index {

namespace {

bool LowerEq(const std::string& a, const char* b) {
  size_t i = 0;
  for (; i < a.size() && b[i] != '\0'; ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return i == a.size() && b[i] == '\0';
}

/// `e` as an int literal, when it is one.
std::optional<int64_t> AsIntLiteral(const sql::Expr& e) {
  if (e.kind != sql::Expr::Kind::kLiteral) return std::nullopt;
  if (e.literal.kind() != sql::Value::Kind::kInt) return std::nullopt;
  auto v = e.literal.AsInt();
  if (!v.ok()) return std::nullopt;
  return *v;
}

bool IsColumnRef(const sql::Expr& e, const std::string& alias,
                 const std::string& column) {
  return e.kind == sql::Expr::Kind::kColumnRef && e.column == column &&
         (e.table.empty() || e.table == alias);
}

const sql::Expr* AsIntersectsCall(const sql::Expr& e) {
  if (e.kind == sql::Expr::Kind::kFunctionCall &&
      LowerEq(e.function, "intersects") && e.args.size() == 2) {
    return &e;
  }
  return nullptr;
}

/// A conjunct that *requires* intersects(...) to be true: the bare call
/// (truthy), or a comparison against an int literal that can only hold
/// when the call returns non-zero. Anything else — including negated
/// forms — yields null and the hook stays out of the query's way.
const sql::Expr* ExtractRequiredIntersects(const sql::Expr& c) {
  if (const sql::Expr* f = AsIntersectsCall(c)) return f;
  if (c.kind != sql::Expr::Kind::kBinary || !c.lhs || !c.rhs) return nullptr;
  const sql::Expr* call = AsIntersectsCall(*c.lhs);
  const sql::Expr* lit_side = c.rhs.get();
  bool call_left = true;
  if (!call) {
    call = AsIntersectsCall(*c.rhs);
    lit_side = c.lhs.get();
    call_left = false;
  }
  if (!call) return nullptr;
  std::optional<int64_t> v = AsIntLiteral(*lit_side);
  if (!v) return nullptr;
  using BinOp = sql::Expr::BinOp;
  BinOp op = c.bin_op;
  if (!call_left) {
    // Mirror so the call is conceptually on the left.
    switch (op) {
      case BinOp::kLt: op = BinOp::kGt; break;
      case BinOp::kLe: op = BinOp::kGe; break;
      case BinOp::kGt: op = BinOp::kLt; break;
      case BinOp::kGe: op = BinOp::kLe; break;
      default: break;
    }
  }
  switch (op) {
    case BinOp::kEq: return *v != 0 ? call : nullptr;   // call = 1
    case BinOp::kNe: return *v == 0 ? call : nullptr;   // call <> 0
    case BinOp::kGt: return *v >= 0 ? call : nullptr;   // call > 0
    case BinOp::kGe: return *v >= 1 ? call : nullptr;   // call >= 1
    default: return nullptr;
  }
}

}  // namespace

SpatialIndexManager::SpatialIndexManager(SpatialExtension* ext,
                                         IndexConfig config)
    : ext_(ext), config_(std::move(config)) {}

uint64_t SpatialIndexManager::CurrentEpoch() const {
  storage::EpochManager* epochs = ext_->db()->epochs();
  return epochs ? epochs->current() : 0;
}

void SpatialIndexManager::BumpPlanVersion() {
  ext_->db()->BumpIndexVersion();
}

Status SpatialIndexManager::BuildFromCatalog() {
  obs::Span span(obs::Stage::kIndexBuild);
  span.SetLabel("catalog");
  std::string sql = "select " + config_.study_column + ", " +
                    config_.atlas_column + ", " + config_.lo_column + ", " +
                    config_.hi_column + ", " + config_.region_column +
                    " from " + config_.table;
  QBISM_ASSIGN_OR_RETURN(sql::ResultSet rs, ext_->db()->Execute(sql));
  std::map<int64_t, StudySummary> summaries;
  for (const sql::Row& row : rs.rows) {
    if (row.size() != 5) {
      return Status::Internal("index build: unexpected row shape");
    }
    QBISM_ASSIGN_OR_RETURN(int64_t study_id, row[0].AsInt());
    QBISM_ASSIGN_OR_RETURN(int64_t atlas_id, row[1].AsInt());
    QBISM_ASSIGN_OR_RETURN(int64_t lo, row[2].AsInt());
    QBISM_ASSIGN_OR_RETURN(int64_t hi, row[3].AsInt());
    if (lo < 0 || hi > 255 || lo > hi) {
      return Status::Corruption("index build: bad band interval");
    }
    if (row[4].is_null()) continue;
    QBISM_ASSIGN_OR_RETURN(storage::LongFieldId field, row[4].AsLongField());
    QBISM_ASSIGN_OR_RETURN(region::Region r, ext_->LoadRegion(field));
    StudySummary& s = summaries[study_id];
    s.study_id = study_id;
    s.atlas_id = atlas_id;
    BandSummary band =
        SummarizeBandRegion(uint8_t(lo), uint8_t(hi), r);
    if (band.voxels > 0) s.bitmap.SetRange(band.lo, band.hi);
    s.bands.push_back(band);
  }

  std::lock_guard<std::mutex> lock(mu_);
  versions_.clear();
  delta_.clear();
  for (auto& [id, summary] : summaries) {
    versions_[id].push_back(
        Version{std::make_shared<const StudySummary>(std::move(summary)), 0});
  }
  QBISM_RETURN_NOT_OK(RebuildPackedLocked());
  authoritative_ = true;
  BumpPlanVersion();
  return Status::OK();
}

Status SpatialIndexManager::RebuildPacked() {
  std::lock_guard<std::mutex> lock(mu_);
  QBISM_RETURN_NOT_OK(RebuildPackedLocked());
  BumpPlanVersion();
  return Status::OK();
}

Status SpatialIndexManager::RebuildPackedLocked() {
  obs::Span span(obs::Stage::kIndexBuild);
  span.SetLabel("pack");
  std::vector<HilbertRTree::Entry> entries;
  for (const auto& [id, vers] : versions_) {
    for (const Version& v : vers) {
      for (const BandSummary& b : v.summary->bands) {
        if (b.voxels == 0) continue;  // empty bands can't intersect
        HilbertRTree::Entry e;
        e.study_id = id;
        e.lo = b.lo;
        e.hi = b.hi;
        e.signature = b.signature;
        e.box = b.box;
        entries.push_back(e);
      }
    }
  }
  sql::Database* db = ext_->db();
  QBISM_ASSIGN_OR_RETURN(
      HilbertRTree tree,
      HilbertRTree::BulkLoad(db->buffer_pool(), db->page_allocator(),
                             ext_->config().grid, ext_->config().curve,
                             std::move(entries)));
  span.AddPages(tree.page_count());
  tree_ = std::make_shared<const HilbertRTree>(std::move(tree));
  delta_.clear();
  ++stats_.rebuilds;
  stats_.tree_entries = tree_->leaf_entries();
  stats_.tree_pages = tree_->page_count();
  stats_.tree_height = tree_->height();
  return Status::OK();
}

Status SpatialIndexManager::ApplyRecovered(
    const std::vector<storage::WalRecord>& records) {
  obs::Span span(obs::Stage::kIndexBuild);
  span.SetLabel("recover");
  std::lock_guard<std::mutex> lock(mu_);
  versions_.clear();
  delta_.clear();
  for (const storage::WalRecord& rec : records) {
    if (rec.type == storage::WalRecordType::kIndexUpsert) {
      QBISM_ASSIGN_OR_RETURN(
          StudySummary s,
          StudySummary::Deserialize(rec.payload.data(), rec.payload.size()));
      // Last-wins: a later record for the same study replaces earlier
      // state entirely (ingest logs the full summary, not a delta).
      versions_[s.study_id].clear();
      versions_[s.study_id].push_back(
          Version{std::make_shared<const StudySummary>(std::move(s)), 0});
    } else if (rec.type == storage::WalRecordType::kIndexRemove) {
      if (rec.payload.size() != 8) {
        return Status::Corruption("kIndexRemove: bad payload");
      }
      uint64_t id = 0;
      for (int b = 0; b < 8; ++b) id |= uint64_t(rec.payload[b]) << (8 * b);
      versions_.erase(int64_t(id));
    }
  }
  QBISM_RETURN_NOT_OK(RebuildPackedLocked());
  authoritative_ = true;
  BumpPlanVersion();
  return Status::OK();
}

Status SpatialIndexManager::StageUpsert(StudySummary summary) {
  std::vector<uint8_t> payload;
  summary.Serialize(&payload);
  QBISM_RETURN_NOT_OK(ext_->db()->LogExtensionRecord(
      storage::WalRecordType::kIndexUpsert, payload));
  std::lock_guard<std::mutex> lock(mu_);
  staged_upserts_.push_back(std::move(summary));
  return Status::OK();
}

Status SpatialIndexManager::StageRemove(int64_t study_id) {
  std::vector<uint8_t> payload(8);
  for (int b = 0; b < 8; ++b) payload[b] = uint8_t(uint64_t(study_id) >> (8 * b));
  QBISM_RETURN_NOT_OK(ext_->db()->LogExtensionRecord(
      storage::WalRecordType::kIndexRemove, payload));
  std::lock_guard<std::mutex> lock(mu_);
  staged_removes_.push_back(study_id);
  return Status::OK();
}

void SpatialIndexManager::PublishStaged() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int64_t id : staged_removes_) RemoveLocked(id);
  for (StudySummary& s : staged_upserts_) {
    UpsertLocked(std::make_shared<const StudySummary>(std::move(s)));
  }
  staged_upserts_.clear();
  staged_removes_.clear();
  ++stats_.publishes;
  BumpPlanVersion();
}

void SpatialIndexManager::DropStaged() {
  std::lock_guard<std::mutex> lock(mu_);
  staged_upserts_.clear();
  staged_removes_.clear();
}

void SpatialIndexManager::UpsertLocked(
    std::shared_ptr<const StudySummary> summary) {
  int64_t id = summary->study_id;
  std::vector<Version>& vers = versions_[id];
  uint64_t epoch = CurrentEpoch();
  if (epoch == 0) {
    vers.clear();  // no epoch machinery: no pinned readers to protect
  } else {
    for (Version& v : vers) {
      if (v.died == 0) v.died = epoch;
    }
  }
  vers.push_back(Version{std::move(summary), 0});
  delta_.insert(id);
}

void SpatialIndexManager::RemoveLocked(int64_t study_id) {
  auto it = versions_.find(study_id);
  if (it == versions_.end()) return;
  uint64_t epoch = CurrentEpoch();
  if (epoch == 0) {
    versions_.erase(it);
    delta_.erase(study_id);
    return;
  }
  for (Version& v : it->second) {
    if (v.died == 0) v.died = epoch;
  }
  delta_.insert(study_id);  // keep the study probe-visible until vacuum
}

void SpatialIndexManager::Vacuum() {
  storage::EpochManager* epochs = ext_->db()->epochs();
  uint64_t horizon = epochs ? epochs->MinActiveReader() : ~uint64_t{0};
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = versions_.begin(); it != versions_.end();) {
    std::vector<Version>& vers = it->second;
    size_t before = vers.size();
    vers.erase(std::remove_if(vers.begin(), vers.end(),
                              [&](const Version& v) {
                                return v.died != 0 && v.died <= horizon;
                              }),
               vers.end());
    stats_.vacuumed_versions += before - vers.size();
    if (vers.empty()) {
      delta_.erase(it->first);
      it = versions_.erase(it);
    } else {
      ++it;
    }
  }
}

bool SpatialIndexManager::StudyMatchesLocked(int64_t study_id,
                                             const BoundingBox& box,
                                             uint64_t sig, uint8_t band_lo,
                                             uint8_t band_hi) const {
  auto it = versions_.find(study_id);
  if (it == versions_.end()) return false;
  for (const Version& v : it->second) {
    // Hierarchical bitmap first: no intensity in the asked range means
    // every in-range band of this version is empty.
    if (!v.summary->bitmap.AnyInRange(band_lo, band_hi)) continue;
    for (const BandSummary& b : v.summary->bands) {
      if (b.voxels == 0) continue;
      if (b.lo < band_lo || b.hi > band_hi) continue;
      if ((b.signature & sig) == 0) continue;
      if (!b.box.Intersects(box)) continue;
      return true;
    }
  }
  return false;
}

Result<std::vector<int64_t>> SpatialIndexManager::ProbeIntersect(
    const region::Region& probe, uint8_t band_lo, uint8_t band_hi) const {
  obs::Span span(obs::Stage::kIndexProbe);
  std::vector<int64_t> out;
  if (probe.Empty() || band_lo > band_hi) return out;
  BoundingBox box = RegionBounds(probe);
  uint64_t sig = RegionSignature(probe);

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.probes;
  std::set<int64_t> candidates;
  uint64_t pages_before = probe_counters_.pages_visited;
  if (tree_ && !tree_->empty()) {
    QBISM_RETURN_NOT_OK(tree_->Probe(
        box, sig, band_lo, band_hi,
        [&](int64_t id) { candidates.insert(id); }, &probe_counters_));
  }
  for (int64_t id : delta_) candidates.insert(id);
  for (int64_t id : candidates) {
    if (StudyMatchesLocked(id, box, sig, band_lo, band_hi)) {
      out.push_back(id);
    }
  }
  span.AddPages(probe_counters_.pages_visited - pages_before);
  return out;
}

bool SpatialIndexManager::authoritative() const {
  std::lock_guard<std::mutex> lock(mu_);
  return authoritative_;
}

sql::planner::CandidateIndexHook SpatialIndexManager::MakeHook() {
  return [this](const std::string& table, const std::string& alias,
                const std::vector<const sql::Expr*>& conjuncts)
             -> std::optional<sql::planner::CandidateSet> {
    if (table != config_.table || !authoritative()) return std::nullopt;

    // One conjunct must *require* an intersects() against the region
    // column with a constant region operand. Without it there is no
    // sound pruning: rows with empty regions still satisfy plain
    // intensity-range predicates.
    const region::GridSpec& grid = ext_->config().grid;
    curve::CurveKind kind = ext_->config().curve;
    std::optional<region::Region> probe;
    for (const sql::Expr* c : conjuncts) {
      const sql::Expr* call = ExtractRequiredIntersects(*c);
      if (!call) continue;
      const sql::Expr* col = call->args[0].get();
      const sql::Expr* arg = call->args[1].get();
      if (!IsColumnRef(*col, alias, config_.region_column)) {
        std::swap(col, arg);  // intersects is symmetric
      }
      if (!IsColumnRef(*col, alias, config_.region_column)) continue;
      // The other operand must be a constant region expression the
      // hook can evaluate without touching storage.
      if (arg->kind != sql::Expr::Kind::kFunctionCall) continue;
      if (LowerEq(arg->function, "fullregion") && arg->args.empty()) {
        probe = region::Region::Full(grid, kind);
        break;
      }
      if (LowerEq(arg->function, "boxregion") && arg->args.size() == 6) {
        int64_t v[6];
        bool all_int = true;
        for (int i = 0; i < 6; ++i) {
          std::optional<int64_t> lit = AsIntLiteral(*arg->args[i]);
          if (!lit) {
            all_int = false;
            break;
          }
          v[i] = *lit;
        }
        if (!all_int) continue;
        geometry::Box3i b{{int(v[0]), int(v[1]), int(v[2])},
                          {int(v[3]), int(v[4]), int(v[5])}};
        probe = region::Region::FromBox(grid, kind, b);
        break;
      }
    }
    if (!probe) return std::nullopt;

    // Band-interval bounds from the remaining conjuncts: only
    // necessary-condition tightenings (lo >= L, hi <= U and their
    // equality/strict forms); anything else leaves the full interval.
    int64_t lo_bound = 0, hi_bound = 255;
    using BinOp = sql::Expr::BinOp;
    for (const sql::Expr* c : conjuncts) {
      if (c->kind != sql::Expr::Kind::kBinary || !c->lhs || !c->rhs) continue;
      const sql::Expr* col = c->lhs.get();
      const sql::Expr* lit = c->rhs.get();
      BinOp op = c->bin_op;
      if (col->kind != sql::Expr::Kind::kColumnRef) {
        std::swap(col, lit);
        switch (op) {  // mirror so the column is on the left
          case BinOp::kLt: op = BinOp::kGt; break;
          case BinOp::kLe: op = BinOp::kGe; break;
          case BinOp::kGt: op = BinOp::kLt; break;
          case BinOp::kGe: op = BinOp::kLe; break;
          default: break;
        }
      }
      std::optional<int64_t> v = AsIntLiteral(*lit);
      if (!v) continue;
      if (IsColumnRef(*col, alias, config_.lo_column)) {
        if (op == BinOp::kGe || op == BinOp::kEq) {
          lo_bound = std::max(lo_bound, *v);
        } else if (op == BinOp::kGt) {
          lo_bound = std::max(lo_bound, *v + 1);
        }
      } else if (IsColumnRef(*col, alias, config_.hi_column)) {
        if (op == BinOp::kLe || op == BinOp::kEq) {
          hi_bound = std::min(hi_bound, *v);
        } else if (op == BinOp::kLt) {
          hi_bound = std::min(hi_bound, *v - 1);
        }
      }
    }
    uint8_t blo = uint8_t(std::clamp<int64_t>(lo_bound, 0, 255));
    uint8_t bhi = uint8_t(std::clamp<int64_t>(hi_bound, 0, 255));
    if (lo_bound > 255 || hi_bound < 0 || blo > bhi) {
      // Contradictory bounds: no band can qualify.
      return sql::planner::CandidateSet{config_.study_column, {},
                                        double(stats().live_studies),
                                        "rtree+bitmap"};
    }

    auto keys = ProbeIntersect(*probe, blo, bhi);
    if (!keys.ok()) return std::nullopt;
    sql::planner::CandidateSet set;
    set.column = config_.study_column;
    set.keys = std::move(*keys);
    set.source = "rtree+bitmap";
    {
      std::lock_guard<std::mutex> lock(mu_);
      uint64_t live = 0;
      for (const auto& [id, vers] : versions_) {
        for (const Version& v : vers) {
          if (v.died == 0) {
            ++live;
            break;
          }
        }
      }
      set.population = double(live);
    }
    return set;
  };
}

IndexStats SpatialIndexManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  IndexStats s = stats_;
  s.live_studies = 0;
  s.live_bands = 0;
  s.dead_versions = 0;
  for (const auto& [id, vers] : versions_) {
    bool live = false;
    for (const Version& v : vers) {
      if (v.died == 0) {
        live = true;
        s.live_bands += v.summary->bands.size();
      } else {
        ++s.dead_versions;
      }
    }
    if (live) ++s.live_studies;
  }
  s.delta_studies = delta_.size();
  return s;
}

ProbeCounters SpatialIndexManager::probe_counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return probe_counters_;
}

}  // namespace qbism::index
