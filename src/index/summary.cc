#include "index/summary.h"

#include <cstring>

#include "curve/engine.h"

namespace qbism::index {

namespace {

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(uint8_t(v));
  out->push_back(uint8_t(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int b = 0; b < 4; ++b) out->push_back(uint8_t(v >> (8 * b)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int b = 0; b < 8; ++b) out->push_back(uint8_t(v >> (8 * b)));
}

struct Cursor {
  const uint8_t* p;
  size_t left;

  bool Take(size_t n) {
    if (left < n) return false;
    p += n;
    left -= n;
    return true;
  }
  uint8_t U8() {
    uint8_t v = p[0];
    Take(1);
    return v;
  }
  uint16_t U16() {
    uint16_t v = uint16_t(p[0]) | uint16_t(p[1]) << 8;
    Take(2);
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    for (int b = 0; b < 4; ++b) v |= uint32_t(p[b]) << (8 * b);
    Take(4);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v |= uint64_t(p[b]) << (8 * b);
    Take(8);
    return v;
  }
};

constexpr size_t kBandBytes = 1 + 1 + 8 + 4 + 8 + 6 * 2;  // 34
constexpr size_t kHeaderBytes =
    8 + 8 + IntensityBitmap::kSerializedSize + 4;  // ids + bitmap + count

}  // namespace

void StudySummary::Serialize(std::vector<uint8_t>* out) const {
  PutU64(out, uint64_t(study_id));
  PutU64(out, uint64_t(atlas_id));
  bitmap.Serialize(out);
  PutU32(out, uint32_t(bands.size()));
  for (const BandSummary& b : bands) {
    PutU8(out, b.lo);
    PutU8(out, b.hi);
    PutU64(out, b.voxels);
    PutU32(out, b.runs);
    PutU64(out, b.signature);
    for (int d = 0; d < 3; ++d) PutU16(out, b.box.min[d]);
    for (int d = 0; d < 3; ++d) PutU16(out, b.box.max[d]);
  }
}

Result<StudySummary> StudySummary::Deserialize(const uint8_t* data,
                                               size_t size) {
  if (size < kHeaderBytes) {
    return Status::Corruption("StudySummary: payload shorter than header");
  }
  Cursor c{data, size};
  StudySummary s;
  s.study_id = int64_t(c.U64());
  s.atlas_id = int64_t(c.U64());
  s.bitmap.Deserialize(c.p);
  c.Take(IntensityBitmap::kSerializedSize);
  uint32_t count = c.U32();
  if (c.left != size_t(count) * kBandBytes) {
    return Status::Corruption("StudySummary: band payload size mismatch");
  }
  s.bands.resize(count);
  for (BandSummary& b : s.bands) {
    b.lo = c.U8();
    b.hi = c.U8();
    b.voxels = c.U64();
    b.runs = c.U32();
    b.signature = c.U64();
    for (int d = 0; d < 3; ++d) b.box.min[d] = c.U16();
    for (int d = 0; d < 3; ++d) b.box.max[d] = c.U16();
  }
  return s;
}

uint64_t RegionSignature(const region::Region& r) {
  int id_bits = r.grid().dims * r.grid().bits;
  uint64_t sig = 0;
  if (id_bits <= 6) {
    // Tiny grids: every id lands in a distinct chunk slot.
    for (const region::Run& run : r.runs()) {
      for (uint64_t id = run.start; id <= run.end; ++id) {
        sig |= uint64_t{1} << id;
      }
    }
    return sig;
  }
  int shift = id_bits - 6;
  for (const region::Run& run : r.runs()) {
    uint64_t a = run.start >> shift;
    uint64_t b = run.end >> shift;
    if (b - a >= 63) return ~uint64_t{0};
    uint64_t mask = (b - a == 63) ? ~uint64_t{0}
                                  : (((uint64_t{1} << (b - a + 1)) - 1) << a);
    sig |= mask;
  }
  return sig;
}

BoundingBox RegionBounds(const region::Region& r) {
  BoundingBox box;
  if (r.Empty()) return box;
  const int dims = r.grid().dims;
  const int bits = r.grid().bits;
  std::vector<region::Octant> octs = r.ToOctants();
  // Decode one id per octant (its minimum curve id); the octant is a
  // cube of side g aligned to multiples of g, so rounding the decoded
  // point down to g gives the min corner without decoding more ids.
  std::vector<uint64_t> ids(octs.size());
  for (size_t i = 0; i < octs.size(); ++i) ids[i] = octs[i].id;
  std::vector<uint32_t> axes(octs.size() * size_t(dims));
  curve::CurveAxesBatch(r.curve_kind(), ids.data(), ids.size(), dims, bits,
                        axes.data());
  bool first = true;
  for (size_t i = 0; i < octs.size(); ++i) {
    uint32_t g = uint32_t{1} << (octs[i].rank / dims);
    BoundingBox ob;
    for (int d = 0; d < 3; ++d) {
      uint32_t c = d < dims ? axes[i * size_t(dims) + size_t(d)] : 0;
      uint32_t lo = d < dims ? (c / g) * g : 0;
      ob.min[d] = uint16_t(lo);
      ob.max[d] = uint16_t(d < dims ? lo + g - 1 : 0);
    }
    if (first) {
      box = ob;
      first = false;
    } else {
      box.ExpandTo(ob);
    }
  }
  return box;
}

BandSummary SummarizeBandRegion(uint8_t lo, uint8_t hi,
                                const region::Region& r) {
  BandSummary b;
  b.lo = lo;
  b.hi = hi;
  b.voxels = r.VoxelCount();
  b.runs = uint32_t(r.RunCount());
  b.signature = RegionSignature(r);
  b.box = RegionBounds(r);
  return b;
}

}  // namespace qbism::index
